"""Must-flag / must-not-flag fixtures for SER001 and SER002."""

from __future__ import annotations

from repro.analysis import analyze_source, get_rule

SIM = "src/repro/simulation/module.py"


def rules_of(findings):
    return [f.rule for f in findings]


class TestSer001ToDictCompleteness:
    def run(self, source, filename=SIM):
        return analyze_source(source, filename=filename, rules=[get_rule("SER001")])

    def test_flags_missing_attribute(self):
        source = (
            "class C:\n"
            "    def __init__(self, a, b):\n"
            "        self.a = a\n"
            "        self.b = b\n"
            "    def to_dict(self):\n"
            "        return {'a': self.a}\n"
        )
        findings = self.run(source)
        assert rules_of(findings) == ["SER001"]
        assert findings[0].line == 4  # anchored at `self.b = b`
        assert "C.b" in findings[0].message

    def test_allows_complete_to_dict(self):
        source = (
            "class C:\n"
            "    def __init__(self, a, b):\n"
            "        self.a = a\n"
            "        self.b = b\n"
            "    def to_dict(self):\n"
            "        return {'a': self.a, 'b': self.b}\n"
        )
        assert self.run(source) == []

    def test_string_key_reference_counts(self):
        source = (
            "class C:\n"
            "    def __init__(self, a):\n"
            "        self.a = a\n"
            "    def to_dict(self):\n"
            "        return {key: getattr_free(self) for key in ['a']}\n"
        )
        assert self.run(source) == []

    def test_fields_loop_is_wildcard_complete(self):
        source = (
            "from dataclasses import dataclass, fields\n"
            "@dataclass\n"
            "class C:\n"
            "    a: int\n"
            "    b: int\n"
            "    def to_dict(self):\n"
            "        return {f.name: getattr(self, f.name) for f in fields(self)}\n"
        )
        assert self.run(source) == []

    def test_dataclass_annotations_are_attrs(self):
        source = (
            "from dataclasses import dataclass\n"
            "@dataclass\n"
            "class C:\n"
            "    a: int\n"
            "    b: int\n"
            "    def to_dict(self):\n"
            "        return {'a': self.a}\n"
        )
        findings = self.run(source)
        assert rules_of(findings) == ["SER001"]
        assert "C.b" in findings[0].message

    def test_derived_fields_allowlist(self):
        source = (
            "class C:\n"
            "    _DERIVED_FIELDS = ('cache',)\n"
            "    def __init__(self, a):\n"
            "        self.a = a\n"
            "        self.cache = {}\n"
            "    def to_dict(self):\n"
            "        return {'a': self.a}\n"
        )
        assert self.run(source) == []

    def test_private_attributes_exempt(self):
        source = (
            "class C:\n"
            "    def __init__(self, a):\n"
            "        self.a = a\n"
            "        self._scratch = None\n"
            "    def to_dict(self):\n"
            "        return {'a': self.a}\n"
        )
        assert self.run(source) == []

    def test_class_without_to_dict_ignored(self):
        source = (
            "class C:\n"
            "    def __init__(self, a):\n"
            "        self.a = a\n"
        )
        assert self.run(source) == []


class TestSer002StateDictPairing:
    def run(self, source, filename=SIM):
        return analyze_source(source, filename=filename, rules=[get_rule("SER002")])

    def test_flags_state_dict_without_load(self):
        source = (
            "class C:\n"
            "    def state_dict(self):\n"
            "        return {}\n"
        )
        findings = self.run(source)
        assert rules_of(findings) == ["SER002"]
        assert "without load_state_dict" in findings[0].message

    def test_flags_load_without_state_dict(self):
        source = (
            "class C:\n"
            "    def load_state_dict(self, state):\n"
            "        pass\n"
        )
        findings = self.run(source)
        assert rules_of(findings) == ["SER002"]
        assert "without state_dict" in findings[0].message

    def test_allows_complete_pair(self):
        source = (
            "class C:\n"
            "    def state_dict(self):\n"
            "        return {}\n"
            "    def load_state_dict(self, state):\n"
            "        pass\n"
        )
        assert self.run(source) == []

    def test_flags_rng_holder_without_protocol(self):
        source = (
            "import numpy as np\n"
            "class C:\n"
            "    def __init__(self, seed):\n"
            "        self.rng = np.random.default_rng(seed)\n"
        )
        findings = self.run(source)
        assert rules_of(findings) == ["SER002"]
        assert findings[0].line == 4

    def test_flags_injected_generator_param_stored(self):
        source = (
            "import numpy as np\n"
            "class C:\n"
            "    def __init__(self, rng: np.random.Generator | None = None):\n"
            "        self._rng = rng if rng is not None else np.random.default_rng(0)\n"
        )
        assert rules_of(self.run(source)) == ["SER002"]

    def test_rng_holder_with_protocol_is_clean(self):
        source = (
            "import numpy as np\n"
            "class C:\n"
            "    def __init__(self, seed):\n"
            "        self.rng = np.random.default_rng(seed)\n"
            "    def state_dict(self):\n"
            "        return {'rng': self.rng.bit_generator.state}\n"
            "    def load_state_dict(self, state):\n"
            "        self.rng.bit_generator.state = state['rng']\n"
        )
        assert self.run(source) == []

    def test_rng_heuristic_scoped_to_stateful_modules(self):
        source = (
            "import numpy as np\n"
            "class C:\n"
            "    def __init__(self, seed):\n"
            "        self.rng = np.random.default_rng(seed)\n"
        )
        # Dataset builders construct short-lived generators; out of scope.
        assert self.run(source, filename="src/repro/datasets/helper.py") == []

    def test_dataclasses_exempt_from_rng_heuristic(self):
        source = (
            "from dataclasses import dataclass\n"
            "import numpy as np\n"
            "@dataclass\n"
            "class C:\n"
            "    seed: int\n"
            "    def __post_init__(self):\n"
            "        pass\n"
        )
        assert self.run(source) == []
