"""Meta-tests: the shipped tree passes the gate; synthetic violations fail it.

These run the real CLI in a subprocess, exactly as ``scripts/ci.sh analysis``
does, so they pin the acceptance criteria end to end: a clean tree exits 0,
and seeding a violation of each rule makes the gate exit non-zero naming the
rule, file and line.
"""

from __future__ import annotations

import json
import os
import subprocess
import sys
from pathlib import Path

import pytest

REPO_ROOT = Path(__file__).resolve().parent.parent.parent


def run_analysis(*arguments: str, cwd: Path = REPO_ROOT) -> subprocess.CompletedProcess:
    environment = dict(os.environ)
    source_root = str(REPO_ROOT / "src")
    existing = environment.get("PYTHONPATH")
    environment["PYTHONPATH"] = (
        f"{source_root}{os.pathsep}{existing}" if existing else source_root
    )
    return subprocess.run(
        [sys.executable, "-m", "repro.analysis", *arguments],
        cwd=cwd,
        env=environment,
        capture_output=True,
        text=True,
    )


class TestShippedTreeIsClean:
    def test_full_tree_exits_zero(self):
        result = run_analysis(
            "--baseline", ".analysis-baseline.json", "src", "README.md", "docs"
        )
        assert result.returncode == 0, result.stdout + result.stderr
        assert "analysis OK" in result.stdout

    def test_shipped_baseline_is_empty(self):
        document = json.loads((REPO_ROOT / ".analysis-baseline.json").read_text())
        assert document == {"version": 1, "entries": []}

    def test_list_rules(self):
        result = run_analysis("--list-rules")
        assert result.returncode == 0
        for rule_id in ("DET001", "DET002", "DET003", "SER001", "SER002",
                        "POOL001", "POOL002", "API001", "DOC001"):
            assert rule_id in result.stdout


@pytest.fixture
def violation_tree(tmp_path):
    """A minimal src-shaped tree the CLI can be pointed at."""

    package = tmp_path / "src" / "repro" / "simulation"
    package.mkdir(parents=True)
    return tmp_path, package


SYNTHETIC_VIOLATIONS = {
    "DET001": "import numpy as np\nx = np.random.rand(3)\n",
    "DET002": "import time\nt = time.time()\n",
    "DET003": "for x in {1, 2, 3}:\n    pass\n",
    "SER001": (
        "class C:\n"
        "    def __init__(self, a, b):\n"
        "        self.a = a\n"
        "        self.b = b\n"
        "    def to_dict(self):\n"
        "        return {'a': self.a}\n"
    ),
    "SER002": (
        "class C:\n"
        "    def state_dict(self):\n"
        "        return {}\n"
    ),
}


class TestSyntheticViolationsFailTheGate:
    @pytest.mark.parametrize("rule_id", sorted(SYNTHETIC_VIOLATIONS))
    def test_violation_exits_nonzero_with_location(self, violation_tree, rule_id):
        root, package = violation_tree
        target = package / "bad.py"
        target.write_text(SYNTHETIC_VIOLATIONS[rule_id])
        result = run_analysis(str(target))
        assert result.returncode == 1, result.stdout + result.stderr
        assert rule_id in result.stdout
        assert "bad.py" in result.stdout
        # Every reported line is `path:line:col: RULE ...`.
        finding_line = next(
            line for line in result.stdout.splitlines() if rule_id in line
        )
        location = finding_line.split(": ")[0]
        assert location.count(":") == 2

    def test_pool_violation(self, tmp_path):
        package = tmp_path / "src" / "repro" / "orchestration"
        package.mkdir(parents=True)
        target = package / "bad.py"
        target.write_text(
            "def run(pool, tasks):\n"
            '    """Run."""\n'
            "    return pool.imap(lambda t: t, tasks)\n"
        )
        result = run_analysis(str(target))
        assert result.returncode == 1
        assert "POOL001" in result.stdout

    def test_doc_violation(self, tmp_path):
        bad = tmp_path / "bad.md"
        bad.write_text("See [missing](nope.md).\n")
        result = run_analysis(str(bad))
        assert result.returncode == 1
        assert "DOC001" in result.stdout

    def test_json_format_reports_violation(self, violation_tree):
        root, package = violation_tree
        target = package / "bad.py"
        target.write_text(SYNTHETIC_VIOLATIONS["DET001"])
        result = run_analysis("--format", "json", str(target))
        assert result.returncode == 1
        document = json.loads(result.stdout)
        assert document["summary"]["errors"] == 1
        assert document["findings"][0]["rule"] == "DET001"

    def test_ci_stage_fails_on_synthetic_violation(self, tmp_path):
        """`scripts/ci.sh analysis` must fail when src/ carries a violation.

        The stage runs from the repo root, so simulate it by invoking the
        same command line the stage uses against a poisoned copy of a file.
        """

        package = tmp_path / "src" / "repro" / "simulation"
        package.mkdir(parents=True)
        (package / "bad.py").write_text(SYNTHETIC_VIOLATIONS["DET001"])
        result = run_analysis(
            "--baseline", str(REPO_ROOT / ".analysis-baseline.json"),
            str(tmp_path / "src"),
        )
        assert result.returncode == 1
        assert "DET001" in result.stdout


class TestBaselineCli:
    def test_write_then_consume_baseline(self, violation_tree):
        root, package = violation_tree
        (package / "bad.py").write_text(SYNTHETIC_VIOLATIONS["DET001"])
        baseline_path = root / "baseline.json"
        written = run_analysis("--write-baseline", str(baseline_path), str(root / "src"))
        assert written.returncode == 0
        gated = run_analysis("--baseline", str(baseline_path), str(root / "src"))
        assert gated.returncode == 0
        assert "1 baselined" in gated.stdout

    def test_unknown_rule_is_usage_error(self):
        result = run_analysis("--rule", "NOPE999", "README.md")
        assert result.returncode == 2
        assert "unknown rule" in result.stderr
