"""Must-flag / must-not-flag fixtures for DOC001 (markdown link checking)."""

from __future__ import annotations

from repro.analysis import analyze_paths, get_rule
from repro.analysis.rules.docs import heading_slugs


def run(tmp_path):
    report = analyze_paths([tmp_path], rules=[get_rule("DOC001")])
    return report.findings


class TestHeadingSlugs:
    def test_github_style_slugging(self):
        markdown = "# Hello World\n## `code` *and* _markup_\n### Sweep, Resume\n"
        slugs = heading_slugs(markdown)
        assert "hello-world" in slugs
        assert "code-and-markup" in slugs
        assert "sweep-resume" in slugs


class TestDoc001Links:
    def test_flags_broken_file_link(self, tmp_path):
        (tmp_path / "a.md").write_text("See [missing](nope.md).\n")
        findings = run(tmp_path)
        assert [f.rule for f in findings] == ["DOC001"]
        assert "nope.md" in findings[0].message
        assert findings[0].line == 1

    def test_flags_missing_anchor_in_other_document(self, tmp_path):
        (tmp_path / "a.md").write_text("See [b](b.md#missing-section).\n")
        (tmp_path / "b.md").write_text("# Present Section\n")
        findings = run(tmp_path)
        assert [f.rule for f in findings] == ["DOC001"]
        assert "missing anchor" in findings[0].message

    def test_flags_missing_self_anchor(self, tmp_path):
        (tmp_path / "a.md").write_text("# Title\nJump to [x](#nowhere).\n")
        findings = run(tmp_path)
        assert [f.rule for f in findings] == ["DOC001"]

    def test_allows_resolving_links_and_anchors(self, tmp_path):
        (tmp_path / "a.md").write_text(
            "# Alpha\nSee [b](b.md#beta), [self](#alpha) and ![img](pic.png).\n"
        )
        (tmp_path / "b.md").write_text("# Beta\n")
        (tmp_path / "pic.png").write_bytes(b"\x89PNG")
        assert run(tmp_path) == []

    def test_allows_external_urls(self, tmp_path):
        (tmp_path / "a.md").write_text(
            "[site](https://example.com) [mail](mailto:x@y.z)\n"
        )
        assert run(tmp_path) == []

    def test_ignores_links_inside_code_fences(self, tmp_path):
        (tmp_path / "a.md").write_text(
            "```\n[not a link](nope.md)\n```\nreal text\n"
        )
        assert run(tmp_path) == []

    def test_relative_links_resolve_from_document_directory(self, tmp_path):
        docs = tmp_path / "docs"
        docs.mkdir()
        (docs / "guide.md").write_text("Back to the [readme](../README.md).\n")
        (tmp_path / "README.md").write_text("# Top\n")
        assert run(tmp_path) == []
