"""Framework-level tests: context, suppressions, baseline, reporters, CLI."""

from __future__ import annotations

import json
from pathlib import Path

import pytest

from repro.analysis import Baseline, Finding, Severity, all_rules, analyze_paths, get_rule
from repro.analysis.context import module_name_for
from repro.analysis.engine import AnalysisReport, analyze_source, collect_files
from repro.analysis.reporters import JSON_REPORT_VERSION, render, render_json, render_text
from repro.analysis.suppressions import extract_suppressions
from repro.exceptions import ConfigurationError


class TestModuleNames:
    def test_src_layout(self):
        assert module_name_for(Path("src/repro/simulation/engine.py")) == "repro.simulation.engine"

    def test_absolute_path_with_src(self):
        path = Path("/work/repo/src/repro/utils/rng.py")
        assert module_name_for(path) == "repro.utils.rng"

    def test_package_init_names_the_package(self):
        assert module_name_for(Path("src/repro/analysis/__init__.py")) == "repro.analysis"

    def test_repro_anchor_without_src(self):
        assert module_name_for(Path("repro/checkpoint/manager.py")) == "repro.checkpoint.manager"

    def test_outside_tree_is_none(self):
        assert module_name_for(Path("scripts/somewhere.py")) is None
        assert module_name_for(Path("docs/README.md")) is None


class TestSuppressions:
    def test_same_line(self):
        source = "import time\nx = time.time()  # repro: allow[DET002] profiling\n"
        assert extract_suppressions(source) == {2: frozenset({"DET002"})}

    def test_own_line_covers_next_line(self):
        source = "# repro: allow[SER001] cache\nx = 1\n"
        suppressions = extract_suppressions(source)
        assert suppressions[1] == frozenset({"SER001"})
        assert suppressions[2] == frozenset({"SER001"})

    def test_multiple_ids_and_reason_text(self):
        source = "y = f()  # repro: allow[DET001, DET002] legacy path, see #42\n"
        assert extract_suppressions(source) == {1: frozenset({"DET001", "DET002"})}

    def test_marker_inside_string_is_ignored(self):
        source = 's = "# repro: allow[DET001]"\n'
        assert extract_suppressions(source) == {}

    def test_suppression_silences_finding(self):
        source = (
            "import numpy as np\n"
            "x = np.random.rand(3)  # repro: allow[DET001] test fixture\n"
        )
        findings = analyze_source(source, filename="src/repro/simulation/f.py")
        assert findings == []

    def test_wrong_id_does_not_silence(self):
        source = (
            "import numpy as np\n"
            "x = np.random.rand(3)  # repro: allow[DET002] wrong rule\n"
        )
        findings = analyze_source(source, filename="src/repro/simulation/f.py")
        assert [f.rule for f in findings] == ["DET001"]


class TestBaseline:
    def _finding(self, rule="DET001", path="src/a.py", code="x = 1"):
        return Finding(
            rule=rule, severity=Severity.ERROR, path=path, line=3, column=0,
            message="m", code=code,
        )

    def test_round_trip(self, tmp_path):
        findings = [self._finding(), self._finding(rule="SER001", code="y = 2")]
        saved = Baseline.from_findings(findings).save(tmp_path / "base.json")
        fresh, grandfathered = Baseline.load(saved).split(findings)
        assert fresh == []
        assert grandfathered == findings

    def test_matching_ignores_line_numbers(self, tmp_path):
        saved = Baseline.from_findings([self._finding()]).save(tmp_path / "base.json")
        moved = Finding(
            rule="DET001", severity=Severity.ERROR, path="src/a.py",
            line=99, column=4, message="m", code="x = 1",
        )
        fresh, grandfathered = Baseline.load(saved).split([moved])
        assert fresh == []
        assert grandfathered == [moved]

    def test_each_entry_absorbs_exactly_one_finding(self, tmp_path):
        saved = Baseline.from_findings([self._finding()]).save(tmp_path / "base.json")
        duplicated = [self._finding(), self._finding()]
        fresh, grandfathered = Baseline.load(saved).split(duplicated)
        assert len(grandfathered) == 1
        assert len(fresh) == 1

    def test_malformed_documents_fail_loudly(self, tmp_path):
        bad = tmp_path / "bad.json"
        bad.write_text("[]")
        with pytest.raises(ConfigurationError):
            Baseline.load(bad)
        bad.write_text('{"version": 99, "entries": []}')
        with pytest.raises(ConfigurationError):
            Baseline.load(bad)
        bad.write_text("not json")
        with pytest.raises(ConfigurationError):
            Baseline.load(bad)


class TestReporters:
    def _report(self):
        finding = Finding(
            rule="DET001", severity=Severity.ERROR, path="src/a.py",
            line=3, column=4, message="bad rng", code="x = rand()",
        )
        warning = Finding(
            rule="API001", severity=Severity.WARNING, path="src/b.py",
            line=1, column=0, message="no docstring", code="def f():",
        )
        return AnalysisReport(
            findings=[finding, warning], files_scanned=2, suppressed=1, baselined=2,
        )

    def test_text_format(self):
        text = render_text(self._report())
        assert "src/a.py:3:4: DET001 error: bad rng" in text
        assert "analysis FAILED: 2 finding(s) (1 error(s), 1 warning(s))" in text
        assert "1 suppressed, 2 baselined" in text

    def test_text_ok_summary(self):
        text = render_text(AnalysisReport(files_scanned=5))
        assert text.startswith("analysis OK: 0 findings")

    def test_json_schema(self):
        document = json.loads(render_json(self._report()))
        assert document["version"] == JSON_REPORT_VERSION
        assert document["files_scanned"] == 2
        assert document["summary"] == {
            "errors": 1, "warnings": 1, "suppressed": 1, "baselined": 2,
        }
        row = document["findings"][0]
        assert set(row) == {"rule", "severity", "path", "line", "column", "message", "code"}
        assert row["rule"] == "DET001"
        assert row["severity"] == "error"
        assert row["line"] == 3

    def test_unknown_format_rejected(self):
        with pytest.raises(ConfigurationError):
            render(self._report(), "yaml")


class TestEngine:
    def test_collect_files_sorted_and_deduplicated(self, tmp_path):
        (tmp_path / "b.py").write_text("x = 1\n")
        (tmp_path / "a.md").write_text("hello\n")
        (tmp_path / "__pycache__").mkdir()
        (tmp_path / "__pycache__" / "c.py").write_text("x = 1\n")
        files = collect_files([tmp_path, tmp_path / "b.py"])
        assert [f.name for f in files] == ["a.md", "b.py"]

    def test_missing_target_raises(self):
        with pytest.raises(ConfigurationError):
            collect_files(["/nonexistent/very/unlikely"])

    def test_syntax_error_becomes_finding(self, tmp_path):
        bad = tmp_path / "broken.py"
        bad.write_text("def f(:\n")
        report = analyze_paths([bad])
        assert len(report.findings) == 1
        assert report.findings[0].rule == "SYNTAX"
        assert not report.ok

    def test_baseline_filters_report(self, tmp_path):
        source = "import numpy as np\nx = np.random.rand()\n"
        target = tmp_path / "src" / "repro" / "simulation" / "mod.py"
        target.parent.mkdir(parents=True)
        target.write_text(source)
        report = analyze_paths([target])
        assert [f.rule for f in report.findings] == ["DET001"]
        baseline = Baseline.from_findings(report.findings)
        rerun = analyze_paths([target], baseline=baseline)
        assert rerun.ok
        assert rerun.baselined == 1

    def test_rule_filter(self, tmp_path):
        source = "import numpy as np\nimport time\nx = np.random.rand()\nt = time.time()\n"
        findings = analyze_source(
            source, filename="src/repro/simulation/mod.py", rules=[get_rule("DET002")]
        )
        assert [f.rule for f in findings] == ["DET002"]


class TestRegistry:
    def test_all_shipped_rules_registered(self):
        ids = [rule.id for rule in all_rules()]
        assert ids == sorted(ids)
        for expected in (
            "DET001", "DET002", "DET003", "SER001", "SER002",
            "POOL001", "POOL002", "API001", "DOC001",
        ):
            assert expected in ids

    def test_unknown_rule_rejected(self):
        with pytest.raises(ConfigurationError):
            get_rule("NOPE999")

    def test_rules_have_summaries_and_severities(self):
        for rule in all_rules():
            assert rule.summary
            assert rule.severity in (Severity.ERROR, Severity.WARNING)
