"""Must-flag / must-not-flag fixtures for POOL001, POOL002 and API001."""

from __future__ import annotations

from repro.analysis import analyze_source, get_rule

ORCH = "src/repro/orchestration/module.py"


def rules_of(findings):
    return [f.rule for f in findings]


class TestPool001UnpicklableCallables:
    def run(self, source, filename=ORCH):
        return analyze_source(source, filename=filename, rules=[get_rule("POOL001")])

    def test_flags_lambda_to_pool_method(self):
        source = (
            "def run(pool, tasks):\n"
            "    return list(pool.imap(lambda t: t, tasks))\n"
        )
        findings = self.run(source)
        assert rules_of(findings) == ["POOL001"]
        assert findings[0].line == 2

    def test_flags_lambda_keyword_argument(self):
        source = (
            "def run(pool, tasks):\n"
            "    return pool.apply_async(func=lambda: 1)\n"
        )
        assert rules_of(self.run(source)) == ["POOL001"]

    def test_flags_nested_function_to_pool(self):
        source = (
            "def run(pool, tasks):\n"
            "    def worker(t):\n"
            "        return t\n"
            "    return list(pool.imap(worker, tasks))\n"
        )
        findings = self.run(source)
        assert rules_of(findings) == ["POOL001"]
        assert "worker" in findings[0].message

    def test_allows_module_level_function(self):
        source = (
            "def _task(t):\n"
            "    return t\n"
            "def run(pool, tasks):\n"
            "    return list(pool.imap(_task, tasks))\n"
        )
        assert self.run(source) == []

    def test_allows_lambda_outside_pool_methods(self):
        source = (
            "def run(tasks):\n"
            "    return sorted(tasks, key=lambda t: t.name)\n"
        )
        assert self.run(source) == []

    def test_out_of_scope_module_exempt(self):
        source = (
            "def run(pool, tasks):\n"
            "    return list(pool.imap(lambda t: t, tasks))\n"
        )
        assert self.run(source, filename="src/repro/compression/x.py") == []


class TestPool002LambdaOnSerializableState:
    def run(self, source, filename=ORCH):
        return analyze_source(source, filename=filename, rules=[get_rule("POOL002")])

    def test_flags_lambda_attribute_on_serializable_class(self):
        source = (
            "class Spec:\n"
            "    def __init__(self):\n"
            "        self.factory = lambda: 1\n"
            "    def to_dict(self):\n"
            "        return {}\n"
        )
        findings = self.run(source)
        assert rules_of(findings) == ["POOL002"]
        assert findings[0].line == 3

    def test_allows_lambda_on_plain_class(self):
        source = (
            "class Registry:\n"
            "    def __init__(self):\n"
            "        self.default = lambda: 1\n"
        )
        assert self.run(source) == []

    def test_allows_local_lambda_variable(self):
        source = (
            "class Spec:\n"
            "    def to_dict(self):\n"
            "        key = lambda t: t.name\n"
            "        return {}\n"
        )
        assert self.run(source) == []


class TestApi001Docstrings:
    def run(self, source, filename=ORCH):
        return analyze_source(source, filename=filename, rules=[get_rule("API001")])

    def test_flags_public_function_without_docstring(self):
        findings = self.run("def run(x):\n    return x\n")
        assert rules_of(findings) == ["API001"]
        assert findings[0].severity.value == "warning"

    def test_flags_public_method_without_docstring(self):
        source = (
            "class Manager:\n"
            '    """A manager."""\n'
            "    def restore(self):\n"
            "        pass\n"
        )
        findings = self.run(source)
        assert rules_of(findings) == ["API001"]
        assert "Manager.restore" in findings[0].message

    def test_allows_documented_function(self):
        source = 'def run(x):\n    """Run it."""\n    return x\n'
        assert self.run(source) == []

    def test_allows_private_function_and_dunder(self):
        source = (
            "def _helper(x):\n"
            "    return x\n"
            "class Manager:\n"
            '    """A manager."""\n'
            "    def _internal(self):\n"
            "        pass\n"
        )
        assert self.run(source) == []

    def test_allows_methods_of_private_class(self):
        source = (
            "class _Worker:\n"
            "    def step(self):\n"
            "        pass\n"
        )
        assert self.run(source) == []

    def test_allows_nested_functions(self):
        source = (
            'def run(x):\n'
            '    """Run it."""\n'
            "    def inner(y):\n"
            "        return y\n"
            "    return inner(x)\n"
        )
        assert self.run(source) == []

    def test_allows_property_setter_sharing_getter_docstring(self):
        source = (
            "class C:\n"
            '    """A C."""\n'
            "    @property\n"
            "    def value(self):\n"
            '        """The value."""\n'
            "        return 1\n"
            "    @value.setter\n"
            "    def value(self, v):\n"
            "        pass\n"
        )
        assert self.run(source) == []

    def test_out_of_scope_module_exempt(self):
        source = "def run(x):\n    return x\n"
        assert self.run(source, filename="src/repro/compression/x.py") == []
