"""Must-flag / must-not-flag fixtures for DET001, DET002 and DET003."""

from __future__ import annotations

from repro.analysis import analyze_source, get_rule

ENGINE = "src/repro/simulation/engine.py"


def rules_of(findings):
    return [f.rule for f in findings]


class TestDet001GlobalRng:
    def run(self, source, filename=ENGINE):
        return analyze_source(source, filename=filename, rules=[get_rule("DET001")])

    def test_flags_numpy_global_functions(self):
        findings = self.run("import numpy as np\nx = np.random.rand(3)\n")
        assert rules_of(findings) == ["DET001"]
        assert findings[0].line == 2

    def test_flags_stdlib_random(self):
        assert rules_of(self.run("import random\nx = random.random()\n")) == ["DET001"]

    def test_flags_from_import(self):
        source = "from random import shuffle\nshuffle([1, 2])\n"
        assert rules_of(self.run(source)) == ["DET001"]

    def test_flags_os_urandom(self):
        assert rules_of(self.run("import os\nx = os.urandom(8)\n")) == ["DET001"]

    def test_flags_unseeded_default_rng(self):
        source = "import numpy as np\ng = np.random.default_rng()\n"
        assert rules_of(self.run(source)) == ["DET001"]

    def test_allows_seeded_default_rng(self):
        source = "import numpy as np\ng = np.random.default_rng(1234)\n"
        assert self.run(source) == []

    def test_allows_injected_generator_methods(self):
        source = "def f(rng):\n    return rng.random(3)\n"
        assert self.run(source) == []

    def test_allows_local_variable_shadowing_random(self):
        source = "def f(random):\n    return random.choice([1])\n"
        # `random` here is a parameter, not the stdlib module: no import binds it.
        assert self.run(source) == []

    def test_sanctioned_seeding_module_exempt(self):
        source = "import numpy as np\ng = np.random.default_rng()\n"
        assert self.run(source, filename="src/repro/utils/rng.py") == []

    def test_outside_repro_tree_exempt(self):
        source = "import random\nx = random.random()\n"
        assert self.run(source, filename="examples/demo.py") == []


class TestDet002WallClock:
    def run(self, source, filename=ENGINE):
        return analyze_source(source, filename=filename, rules=[get_rule("DET002")])

    def test_flags_time_time_call(self):
        findings = self.run("import time\nt = time.time()\n")
        assert rules_of(findings) == ["DET002"]

    def test_flags_perf_counter_reference_without_call(self):
        # A default argument smuggles the clock without ever calling it here.
        source = "import time\ndef f(clock=time.perf_counter):\n    return clock()\n"
        assert rules_of(self.run(source)) == ["DET002"]

    def test_flags_from_import_reference(self):
        source = "from time import monotonic\nt = monotonic()\n"
        findings = self.run(source)
        assert rules_of(findings) == ["DET002"]
        assert findings[0].line == 2

    def test_flags_datetime_now(self):
        source = "import datetime\nt = datetime.datetime.now()\n"
        assert rules_of(self.run(source)) == ["DET002"]

    def test_allows_time_sleep(self):
        assert self.run("import time\ntime.sleep(0)\n") == []

    def test_profiling_module_exempt(self):
        source = "import time\nt = time.perf_counter()\n"
        assert self.run(source, filename="src/repro/utils/profiling.py") == []

    def test_observability_package_exempt(self):
        # The trace emitter's wall-clock timestamps are the sanctioned reason
        # the observability layer reads real time.
        source = "import time\nstamp = time.time()\n"
        assert self.run(source, filename="src/repro/observability/trace.py") == []
        assert self.run(source, filename="src/repro/observability/metrics.py") == []

    def test_observability_lookalike_module_still_flagged(self):
        # Only the real package is sanctioned; a sibling named to resemble it
        # (repro.observability_extras) must not inherit the exemption.
        source = "import time\nstamp = time.time()\n"
        findings = self.run(source, filename="src/repro/observability_extras.py")
        assert rules_of(findings) == ["DET002"]


class TestDet003UnorderedIteration:
    def run(self, source, filename=ENGINE):
        return analyze_source(source, filename=filename, rules=[get_rule("DET003")])

    def test_flags_for_over_set_literal(self):
        assert rules_of(self.run("for x in {1, 2, 3}:\n    pass\n")) == ["DET003"]

    def test_flags_for_over_set_call(self):
        assert rules_of(self.run("for x in set(items):\n    pass\n")) == ["DET003"]

    def test_flags_comprehension_over_set(self):
        assert rules_of(self.run("y = [x for x in {1, 2}]\n")) == ["DET003"]

    def test_flags_set_union(self):
        source = "for x in set(a) | set(b):\n    pass\n"
        assert rules_of(self.run(source)) == ["DET003"]

    def test_flags_through_enumerate(self):
        source = "for i, x in enumerate({1, 2}):\n    pass\n"
        assert rules_of(self.run(source)) == ["DET003"]

    def test_allows_sorted_wrapper(self):
        assert self.run("for x in sorted(set(items)):\n    pass\n") == []

    def test_allows_list_iteration(self):
        assert self.run("for x in [1, 2, 3]:\n    pass\n") == []

    def test_allows_dict_iteration(self):
        # Python dicts are insertion-ordered; only sets are arbitrary.
        assert self.run("for k in {'a': 1}:\n    pass\n") == []

    def test_only_replay_critical_modules_in_scope(self):
        source = "for x in {1, 2, 3}:\n    pass\n"
        assert self.run(source, filename="src/repro/compression/wire.py") == []
        assert rules_of(self.run(source, filename="src/repro/checkpoint/manager.py")) == ["DET003"]
        assert rules_of(self.run(source, filename="src/repro/orchestration/pool.py")) == ["DET003"]
