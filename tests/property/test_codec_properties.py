"""Property-based tests for the compression codecs."""

import numpy as np
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.compression.elias import elias_gamma_decode, elias_gamma_encode, gamma_code_length
from repro.compression.float_codec import FloatCodec
from repro.compression.indices import EliasGammaIndexCodec, RawIndexCodec


@settings(max_examples=60, deadline=None)
@given(values=st.lists(st.integers(min_value=1, max_value=2**40), max_size=200))
def test_elias_gamma_roundtrip(values):
    payload, bits, count = elias_gamma_encode(values)
    assert elias_gamma_decode(payload, bits, count) == values
    assert bits == sum(gamma_code_length(v) for v in values)
    assert len(payload) == (bits + 7) // 8


@settings(max_examples=60, deadline=None)
@given(
    universe=st.integers(min_value=1, max_value=5000),
    seed=st.integers(min_value=0, max_value=2**16),
    fraction=st.floats(min_value=0.01, max_value=1.0),
)
def test_index_codecs_roundtrip(universe, seed, fraction):
    rng = np.random.default_rng(seed)
    count = max(1, min(universe, int(fraction * universe)))
    indices = np.sort(rng.choice(universe, size=count, replace=False))
    for codec in (EliasGammaIndexCodec(), RawIndexCodec()):
        encoded = codec.encode(indices, universe)
        assert np.array_equal(codec.decode(encoded), indices)


@settings(max_examples=60, deadline=None)
@given(
    values=st.lists(
        st.floats(min_value=-1e6, max_value=1e6, allow_nan=False, width=32),
        max_size=300,
    )
)
def test_float_codec_lossless(values):
    array = np.asarray(values, dtype=np.float32)
    codec = FloatCodec()
    restored = codec.decompress(codec.compress(array))
    assert np.array_equal(restored, array)


@settings(max_examples=30, deadline=None)
@given(
    seed=st.integers(min_value=0, max_value=2**16),
    size=st.integers(min_value=1, max_value=2000),
)
def test_float_codec_never_larger_than_raw_plus_overhead(seed, size):
    """DEFLATE adds at most a small constant overhead even on incompressible data."""

    values = np.random.default_rng(seed).normal(size=size).astype(np.float32)
    compressed = FloatCodec().compress(values)
    assert compressed.size_bytes <= 4 * size + 256
