"""Property-based tests (hypothesis) for the wavelet substrate."""

import numpy as np
from hypothesis import given, settings
from hypothesis import strategies as st
from hypothesis.extra.numpy import arrays

from repro.wavelets.dwt import wavedec, waverec
from repro.wavelets.transform import WaveletTransform

WAVELETS = st.sampled_from(["haar", "db2", "sym2", "db3", "db4", "sym4"])

signals = arrays(
    dtype=np.float64,
    shape=st.integers(min_value=16, max_value=300),
    elements=st.floats(min_value=-1e3, max_value=1e3, allow_nan=False, allow_infinity=False),
)


@settings(max_examples=40, deadline=None)
@given(signal=signals, wavelet=WAVELETS, levels=st.integers(min_value=0, max_value=5))
def test_wavedec_waverec_roundtrip(signal, wavelet, levels):
    """Perfect reconstruction for any signal, wavelet family and level count."""

    reconstructed = waverec(wavedec(signal, wavelet, levels))
    scale = max(1.0, float(np.max(np.abs(signal))))
    assert np.allclose(reconstructed, signal, atol=1e-8 * scale)


@settings(max_examples=30, deadline=None)
@given(signal=signals, wavelet=WAVELETS)
def test_energy_preservation_even_lengths(signal, wavelet):
    """Parseval: the orthogonal DWT preserves the L2 norm (even-length signals)."""

    if signal.size % 2 == 1:
        signal = signal[:-1]
    coefficients = wavedec(signal, wavelet, levels=3)
    energy = sum(float(np.sum(band**2)) for band in coefficients.arrays)
    assert np.isclose(energy, float(np.sum(signal**2)), rtol=1e-8, atol=1e-6)


@settings(max_examples=30, deadline=None)
@given(
    size=st.integers(min_value=20, max_value=200),
    seed=st.integers(min_value=0, max_value=2**16),
    scale=st.floats(min_value=1e-3, max_value=1e3),
)
def test_transform_linearity(size, seed, scale):
    """forward(a*x + y) == a*forward(x) + forward(y)."""

    rng = np.random.default_rng(seed)
    transform = WaveletTransform(size)
    x = rng.normal(size=size)
    y = rng.normal(size=size)
    lhs = transform.forward(scale * x + y)
    rhs = scale * transform.forward(x) + transform.forward(y)
    assert np.allclose(lhs, rhs, rtol=1e-9, atol=1e-9 * scale)


@settings(max_examples=30, deadline=None)
@given(signal=signals)
def test_keeping_all_coefficients_is_lossless_sparsification(signal):
    """Sparsifying with a 100% budget must reproduce the model exactly."""

    transform = WaveletTransform(signal.size)
    coefficients = transform.forward(signal)
    assert np.allclose(transform.inverse(coefficients), signal, atol=1e-8)
