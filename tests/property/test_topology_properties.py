"""Property-based tests for topologies and mixing weights."""

import numpy as np
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.topology.graphs import random_regular_topology, ring_topology
from repro.topology.weights import metropolis_hastings_weights


@settings(max_examples=25, deadline=None)
@given(
    num_nodes=st.integers(min_value=4, max_value=40),
    degree=st.integers(min_value=2, max_value=6),
    seed=st.integers(min_value=0, max_value=2**16),
)
def test_regular_topology_and_weights_invariants(num_nodes, degree, seed):
    if degree >= num_nodes or (num_nodes * degree) % 2 != 0:
        return
    topology = random_regular_topology(num_nodes, degree, np.random.default_rng(seed))
    assert topology.is_connected()
    degrees = [topology.degree(node) for node in range(num_nodes)]
    assert set(degrees) == {degree}

    weights = metropolis_hastings_weights(topology)
    assert np.allclose(weights, weights.T)
    assert np.allclose(weights.sum(axis=1), 1.0)
    assert np.all(weights >= -1e-12)


@settings(max_examples=25, deadline=None)
@given(
    num_nodes=st.integers(min_value=3, max_value=60),
    seed=st.integers(min_value=0, max_value=2**16),
)
def test_gossip_preserves_global_average(num_nodes, seed):
    """One mixing step never changes the network-wide average model."""

    topology = ring_topology(num_nodes)
    weights = metropolis_hastings_weights(topology)
    values = np.random.default_rng(seed).normal(size=(num_nodes, 4))
    mixed = weights @ values
    assert np.allclose(mixed.mean(axis=0), values.mean(axis=0), atol=1e-10)


@settings(max_examples=25, deadline=None)
@given(
    num_nodes=st.integers(min_value=3, max_value=30),
    seed=st.integers(min_value=0, max_value=2**16),
)
def test_gossip_contracts_disagreement(num_nodes, seed):
    """Mixing never increases the spread (variance) of node values."""

    topology = ring_topology(num_nodes)
    weights = metropolis_hastings_weights(topology)
    values = np.random.default_rng(seed).normal(size=num_nodes)
    mixed = weights @ values
    assert np.var(mixed) <= np.var(values) + 1e-12
