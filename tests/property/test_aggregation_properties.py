"""Property-based tests for sparse aggregation and sparsification invariants."""

import numpy as np
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.aggregation import SparseContribution, partial_weighted_average
from repro.sparsification.topk import topk_indices


@settings(max_examples=50, deadline=None)
@given(
    seed=st.integers(min_value=0, max_value=2**16),
    size=st.integers(min_value=2, max_value=200),
    neighbors=st.integers(min_value=0, max_value=5),
)
def test_partial_average_stays_in_convex_hull(seed, size, neighbors):
    rng = np.random.default_rng(seed)
    own = rng.normal(size=size)
    weight = 1.0 / (neighbors + 1)
    vectors = [rng.normal(size=size) for _ in range(neighbors)]
    contributions = []
    for vector in vectors:
        count = rng.integers(1, size + 1)
        indices = np.sort(rng.choice(size, size=count, replace=False))
        contributions.append(SparseContribution(weight, indices, vector[indices]))
    result = partial_weighted_average(own, weight, contributions)
    stacked = np.stack([own] + vectors) if vectors else own[None]
    assert np.all(result <= stacked.max(axis=0) + 1e-9)
    assert np.all(result >= stacked.min(axis=0) - 1e-9)


@settings(max_examples=50, deadline=None)
@given(
    seed=st.integers(min_value=0, max_value=2**16),
    size=st.integers(min_value=2, max_value=200),
    neighbors=st.integers(min_value=1, max_value=5),
)
def test_identical_models_are_a_fixed_point(seed, size, neighbors):
    """If every node already holds the same vector, sparse averaging keeps it."""

    rng = np.random.default_rng(seed)
    shared = rng.normal(size=size)
    weight = 1.0 / (neighbors + 1)
    contributions = []
    for _ in range(neighbors):
        count = rng.integers(1, size + 1)
        indices = np.sort(rng.choice(size, size=count, replace=False))
        contributions.append(SparseContribution(weight, indices, shared[indices]))
    result = partial_weighted_average(shared, weight, contributions)
    assert np.allclose(result, shared, atol=1e-12)


@settings(max_examples=50, deadline=None)
@given(
    seed=st.integers(min_value=0, max_value=2**16),
    size=st.integers(min_value=1, max_value=500),
    count=st.integers(min_value=1, max_value=500),
)
def test_topk_invariants(seed, size, count):
    scores = np.random.default_rng(seed).normal(size=size)
    indices = topk_indices(scores, count)
    assert indices.size == min(count, size)
    assert np.unique(indices).size == indices.size
    assert np.all(np.diff(indices) > 0) or indices.size <= 1
    if indices.size < size:
        selected = np.abs(scores[indices])
        rejected = np.abs(np.delete(scores, indices))
        assert selected.min() >= rejected.max() - 1e-12
