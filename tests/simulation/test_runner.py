"""Tests for the round scheduler / experiment runner."""

import numpy as np
import pytest

from repro.baselines import full_sharing_factory, random_sampling_factory
from repro.core import JwinsConfig, jwins_factory
from repro.simulation.runner import build_nodes, run_experiment
from tests.conftest import make_toy_task


def test_build_nodes_all_start_from_same_model(toy_task, small_config):
    nodes = build_nodes(toy_task, full_sharing_factory(), small_config)
    assert len(nodes) == small_config.num_nodes
    reference = nodes[0].get_parameters()
    for node in nodes[1:]:
        assert np.allclose(node.get_parameters(), reference)


def test_build_nodes_partitions_are_disjoint_and_cover_data(toy_task, small_config):
    nodes = build_nodes(toy_task, full_sharing_factory(), small_config)
    total = sum(len(node.dataset) for node in nodes)
    assert total == len(toy_task.train)


def test_run_experiment_produces_history_and_bytes(toy_task, small_config):
    result = run_experiment(toy_task, full_sharing_factory(), small_config)
    assert result.rounds_completed == small_config.rounds
    assert len(result.history) == small_config.rounds // small_config.eval_every
    assert result.total_bytes > 0
    assert result.simulated_time_seconds > 0
    assert result.scheme == "full-sharing"
    assert result.task == "toy"


def test_run_experiment_is_deterministic(toy_task, small_config):
    a = run_experiment(toy_task, full_sharing_factory(), small_config)
    b = run_experiment(toy_task, full_sharing_factory(), small_config)
    assert a.final_accuracy == b.final_accuracy
    assert a.total_bytes == b.total_bytes
    assert [r.test_loss for r in a.history] == [r.test_loss for r in b.history]


def test_different_seeds_differ(toy_task, small_config):
    a = run_experiment(toy_task, full_sharing_factory(), small_config)
    b = run_experiment(toy_task, full_sharing_factory(), small_config.with_seed(99))
    assert a.total_bytes != b.total_bytes or a.final_accuracy != b.final_accuracy


def test_sparse_scheme_sends_fewer_bytes_than_full_sharing(toy_task, small_config):
    full = run_experiment(toy_task, full_sharing_factory(), small_config)
    sparse = run_experiment(toy_task, random_sampling_factory(0.2), small_config)
    assert sparse.total_bytes < full.total_bytes


def test_jwins_runs_and_records_shared_fraction(toy_task, small_config):
    result = run_experiment(
        toy_task, jwins_factory(JwinsConfig.paper_default()), small_config, scheme_name="jwins"
    )
    assert result.scheme == "jwins"
    fractions = [record.average_shared_fraction for record in result.history]
    assert all(0.0 < fraction <= 1.0 for fraction in fractions)
    assert result.total_metadata_bytes > 0


def test_learning_improves_accuracy(toy_task):
    config = make_learning_config()
    result = run_experiment(toy_task, full_sharing_factory(), config)
    assert result.history[0].test_accuracy < result.final_accuracy
    assert result.final_accuracy > 0.5


def make_learning_config():
    from repro.simulation.experiment import ExperimentConfig

    return ExperimentConfig(
        num_nodes=4,
        degree=2,
        rounds=12,
        local_steps=3,
        batch_size=8,
        learning_rate=0.2,
        eval_every=3,
        eval_test_samples=64,
        seed=5,
        partition="shards",
    )


def test_target_accuracy_early_stop(toy_task):
    config = make_learning_config().with_target(0.4, stop=True)
    result = run_experiment(toy_task, full_sharing_factory(), config)
    assert result.reached_target_at_round is not None
    assert result.rounds_completed <= config.rounds


def test_dynamic_topology_runs(toy_task, small_config):
    from dataclasses import replace

    dynamic_config = replace(small_config, dynamic_topology=True)
    result = run_experiment(toy_task, full_sharing_factory(), dynamic_config)
    assert result.rounds_completed == dynamic_config.rounds
