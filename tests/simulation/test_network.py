"""Tests for byte metering."""

import pytest

from repro.compression.sizing import PayloadSize
from repro.exceptions import SimulationError
from repro.simulation.network import ByteMeter


def test_record_send_accounts_all_components():
    meter = ByteMeter(3)
    size = PayloadSize(values_bytes=100, metadata_bytes=10)
    meter.record_send(0, size, copies=4)
    assert meter.values_bytes_per_node[0] == 400
    assert meter.metadata_bytes_per_node[0] == 40
    assert meter.total_bytes_per_node[0] == 4 * size.total_bytes
    assert meter.total_bytes_per_node[1] == 0


def test_total_and_average_bytes():
    meter = ByteMeter(2)
    size = PayloadSize(values_bytes=50, metadata_bytes=0)
    meter.record_send(0, size, copies=1)
    meter.record_send(1, size, copies=1)
    assert meter.total_bytes == 2 * size.total_bytes
    assert meter.average_bytes_per_node == size.total_bytes


def test_round_accounting():
    meter = ByteMeter(2)
    size = PayloadSize(values_bytes=10, metadata_bytes=0)
    meter.record_send(0, size, copies=2)
    first = meter.end_round()
    meter.record_send(1, size, copies=1)
    second = meter.end_round()
    assert first == 2 * size.total_bytes
    assert second == size.total_bytes
    assert meter.per_round_bytes == [first, second]


def test_metadata_totals():
    meter = ByteMeter(1)
    meter.record_send(0, PayloadSize(values_bytes=5, metadata_bytes=7), copies=3)
    assert meter.total_metadata_bytes == 21
    assert meter.total_values_bytes == 15


def test_unknown_node_raises():
    meter = ByteMeter(2)
    with pytest.raises(SimulationError):
        meter.record_send(5, PayloadSize(1, 1))


def test_negative_copies_raise():
    meter = ByteMeter(2)
    with pytest.raises(SimulationError):
        meter.record_send(0, PayloadSize(1, 1), copies=-1)


def test_invalid_size_raises():
    with pytest.raises(SimulationError):
        ByteMeter(0)
