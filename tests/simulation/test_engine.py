"""Tests for the Simulator engine: sync-mode equivalence and observer hooks.

The equivalence tests pin the redesign's central promise: running the
synchronous mode through the :func:`run_experiment` facade produces the
*identical* :class:`ExperimentResult` (history, bytes, simulated time) as the
seed repository's monolithic runner.  ``reference_run_experiment`` below is a
literal port of that seed loop — including its payload-sniffing
shared-fraction heuristic — kept here as the frozen reference.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.baselines import choco_factory, full_sharing_factory
from repro.core import JwinsConfig, jwins_factory
from repro.core.interface import Message, RoundContext
from repro.exceptions import SimulationError
from repro.simulation import (
    AsynchronousMode,
    ExperimentConfig,
    SimulationObserver,
    Simulator,
    SynchronousMode,
    run_experiment,
)
from repro.simulation.engine import build_nodes
from repro.simulation.metrics import ExperimentResult, RoundRecord
from repro.simulation.network import ByteMeter
from repro.topology.graphs import random_regular_topology
from repro.topology.weights import metropolis_hastings_weights
from repro.utils.rng import SeedSequenceFactory
from tests.conftest import make_toy_task


# -- the frozen seed-runner reference ---------------------------------------------


def _seed_shared_fraction(message: Message, model_size: int) -> float:
    """The seed runner's payload-sniffing heuristic, preserved verbatim."""

    values = message.payload.get("values")
    if values is None:
        return 1.0
    return min(1.0, np.asarray(values).size / max(1, model_size))


def _seed_evaluate(nodes, task, config, eval_rng):
    test = task.test
    sample_size = min(config.eval_test_samples, len(test))
    indices = eval_rng.choice(len(test), size=sample_size, replace=False)
    inputs, targets = test.batch(indices)
    if config.eval_nodes is None or config.eval_nodes >= len(nodes):
        evaluated = nodes
    else:
        chosen = eval_rng.choice(len(nodes), size=config.eval_nodes, replace=False)
        evaluated = [nodes[i] for i in chosen]
    losses, accuracies = [], []
    for node in evaluated:
        loss, accuracy = node.evaluate(inputs, targets, task.accuracy_fn)
        losses.append(loss)
        accuracies.append(accuracy)
    return float(np.mean(losses)), float(np.mean(accuracies))


def reference_run_experiment(task, scheme_factory, config, scheme_name=None):
    """Literal port of the seed repository's monolithic ``run_experiment``."""

    seeds = SeedSequenceFactory(config.seed)
    nodes = build_nodes(task, scheme_factory, config)
    model_size = nodes[0].get_parameters().size

    topology_rng = seeds.rng("topology")
    topology = random_regular_topology(config.num_nodes, config.degree, topology_rng)
    weights = metropolis_hastings_weights(topology)

    meter = ByteMeter(config.num_nodes)
    eval_rng = seeds.rng("evaluation")
    drop_rng = seeds.rng("message-drops")
    clock = 0.0

    result = ExperimentResult(
        scheme=scheme_name or nodes[0].scheme.name,
        task=task.name,
        num_nodes=config.num_nodes,
        rounds_completed=0,
        target_accuracy=config.target_accuracy,
    )

    def record_point(round_index, shared_fraction):
        test_loss, test_accuracy = _seed_evaluate(nodes, task, config, eval_rng)
        train_loss = float(np.mean([node.last_train_loss for node in nodes]))
        result.history.append(
            RoundRecord(
                round_index=round_index,
                test_accuracy=test_accuracy,
                test_loss=test_loss,
                train_loss=train_loss,
                cumulative_bytes_per_node=meter.average_bytes_per_node,
                cumulative_metadata_bytes_per_node=float(meter.metadata_bytes_per_node.mean()),
                simulated_time_seconds=clock,
                average_shared_fraction=shared_fraction,
            )
        )
        if (
            config.target_accuracy is not None
            and result.reached_target_at_round is None
            and result.history[-1].test_accuracy >= config.target_accuracy
        ):
            result.reached_target_at_round = round_index

    for round_index in range(config.rounds):
        if config.dynamic_topology and round_index > 0:
            topology = random_regular_topology(config.num_nodes, config.degree, topology_rng)
            weights = metropolis_hastings_weights(topology)

        contexts, messages = [], []
        for node in nodes:
            params_start, params_trained = node.local_training()
            neighbor_weights = {
                neighbor: float(weights[node.node_id, neighbor])
                for neighbor in topology.neighbors(node.node_id)
            }
            context = RoundContext(
                round_index=round_index,
                params_start=params_start,
                params_trained=params_trained,
                self_weight=float(weights[node.node_id, node.node_id]),
                neighbor_weights=neighbor_weights,
                rng=seeds.node_rng(node.node_id, "round", round_index),
            )
            message = node.scheme.prepare(context)
            meter.record_send(node.node_id, message.size, copies=len(neighbor_weights))
            contexts.append(context)
            messages.append(message)

        round_fractions = [_seed_shared_fraction(m, model_size) for m in messages]
        for node, context in zip(nodes, contexts):
            inbox = [messages[neighbor] for neighbor in topology.neighbors(node.node_id)]
            if config.message_drop_probability > 0.0:
                inbox = [
                    m for m in inbox if drop_rng.random() >= config.message_drop_probability
                ]
            new_params = node.scheme.aggregate(context, inbox)
            node.scheme.finalize(context, new_params)
            node.set_parameters(new_params)

        max_bytes = max(
            m.size.total_bytes * len(topology.neighbors(m.sender)) for m in messages
        )
        clock += config.time_model.round_duration(config.local_steps, max_bytes)
        meter.end_round()
        result.rounds_completed = round_index + 1

        is_last = round_index == config.rounds - 1
        if (round_index + 1) % config.eval_every == 0 or is_last:
            record_point(round_index + 1, float(np.mean(round_fractions)))
            if (
                config.stop_at_target
                and config.target_accuracy is not None
                and result.reached_target_at_round is not None
            ):
                break

    result.total_bytes = meter.total_bytes
    result.total_metadata_bytes = meter.total_metadata_bytes
    result.total_values_bytes = meter.total_values_bytes
    result.simulated_time_seconds = clock
    return result


REGRESSION_CONFIG = ExperimentConfig(
    num_nodes=6,
    degree=2,
    rounds=6,
    local_steps=1,
    batch_size=8,
    learning_rate=0.1,
    eval_every=2,
    eval_test_samples=48,
    seed=3,
    partition="shards",
)


@pytest.mark.parametrize(
    "scheme_name, factory_builder",
    [
        ("jwins", lambda: jwins_factory(JwinsConfig.paper_default())),
        ("choco", lambda: choco_factory(fraction=0.2)),
    ],
)
def test_sync_mode_reproduces_the_seed_runner_exactly(scheme_name, factory_builder):
    reference = reference_run_experiment(
        make_toy_task(), factory_builder(), REGRESSION_CONFIG, scheme_name=scheme_name
    )
    current = run_experiment(
        make_toy_task(), factory_builder(), REGRESSION_CONFIG, scheme_name=scheme_name
    )
    assert current.history == reference.history
    assert current.total_bytes == reference.total_bytes
    assert current.total_metadata_bytes == reference.total_metadata_bytes
    assert current.total_values_bytes == reference.total_values_bytes
    assert current.simulated_time_seconds == reference.simulated_time_seconds
    assert current.rounds_completed == reference.rounds_completed
    assert current.reached_target_at_round == reference.reached_target_at_round


def test_sync_mode_equivalence_holds_under_message_drops():
    from dataclasses import replace

    config = replace(REGRESSION_CONFIG, message_drop_probability=0.2)
    reference = reference_run_experiment(make_toy_task(), full_sharing_factory(), config)
    current = run_experiment(make_toy_task(), full_sharing_factory(), config)
    assert current.history == reference.history
    assert current.total_bytes == reference.total_bytes
    assert current.simulated_time_seconds == reference.simulated_time_seconds


# -- engine surface ---------------------------------------------------------------


def test_simulator_mode_follows_config(toy_task, small_config):
    sync = Simulator(toy_task, full_sharing_factory(), small_config)
    assert isinstance(sync.mode, SynchronousMode)
    async_sim = Simulator(
        toy_task, full_sharing_factory(), small_config.with_execution("async")
    )
    assert isinstance(async_sim.mode, AsynchronousMode)


def test_simulator_is_single_shot(toy_task, small_config):
    simulator = Simulator(toy_task, full_sharing_factory(), small_config)
    simulator.run()
    with pytest.raises(SimulationError):
        simulator.run()


def test_sync_result_reports_execution_and_zero_skew(toy_task, small_config):
    result = run_experiment(toy_task, full_sharing_factory(), small_config)
    assert result.execution == "sync"
    assert len(result.per_node_time_seconds) == small_config.num_nodes
    assert result.clock_skew_seconds == 0.0
    assert all(t == result.simulated_time_seconds for t in result.per_node_time_seconds)


def test_callback_hooks_fire(toy_task, small_config):
    simulator = Simulator(toy_task, full_sharing_factory(), small_config)
    rounds, deliveries, evaluations = [], [], []
    simulator.on_round_end(lambda round_index, node_id, now: rounds.append((round_index, node_id)))
    simulator.on_message(lambda message, receiver, now: deliveries.append((message.sender, receiver)))
    simulator.on_evaluate(lambda record: evaluations.append(record))
    result = simulator.run()

    assert [r for r, _ in rounds] == list(range(small_config.rounds))
    assert all(node_id is None for _, node_id in rounds)  # global barrier rounds
    # Every node receives one message per neighbor per round (no drops configured).
    expected = small_config.rounds * sum(
        len(simulator.topology.neighbors(n)) for n in range(small_config.num_nodes)
    )
    assert len(deliveries) == expected
    assert evaluations == result.history


def test_observer_object_receives_all_hooks(toy_task, small_config):
    class Recorder(SimulationObserver):
        def __init__(self):
            self.rounds = 0
            self.messages = 0
            self.records = 0

        def on_round_end(self, round_index, node_id, now):
            self.rounds += 1

        def on_message(self, message, receiver, now):
            self.messages += 1

        def on_evaluate(self, record):
            self.records += 1

    recorder = Recorder()
    simulator = Simulator(toy_task, full_sharing_factory(), small_config)
    simulator.add_observer(recorder)
    result = simulator.run()
    assert recorder.rounds == small_config.rounds
    assert recorder.records == len(result.history)
    assert recorder.messages > 0


def test_observers_do_not_perturb_the_run(toy_task, small_config):
    plain = run_experiment(make_toy_task(), full_sharing_factory(), small_config)
    observed_sim = Simulator(make_toy_task(), full_sharing_factory(), small_config)
    observed_sim.add_observer(SimulationObserver())
    observed = observed_sim.run()
    assert observed.history == plain.history
    assert observed.total_bytes == plain.total_bytes


# -- explicit shared_fraction (replaces the payload sniffing) ---------------------


def test_message_shared_fraction_defaults_to_full_model():
    message = Message(sender=0, kind="anything", payload={})
    assert message.shared_fraction == 1.0


def test_schemes_fill_shared_fraction(toy_task, small_config):
    nodes = build_nodes(toy_task, jwins_factory(JwinsConfig.paper_default()), small_config)
    node = nodes[0]
    params_start, params_trained = node.local_training()
    context = RoundContext(
        round_index=0,
        params_start=params_start,
        params_trained=params_trained,
        self_weight=0.5,
        neighbor_weights={1: 0.5},
        rng=np.random.default_rng(0),
    )
    message = node.scheme.prepare(context)
    assert 0.0 < message.shared_fraction <= 1.0
    # JWINS reports the values it actually packed, relative to the model size.
    expected = min(1.0, message.payload["values"].size / context.model_size)
    assert message.shared_fraction == expected


def test_full_sharing_reports_fraction_one(toy_task, small_config):
    nodes = build_nodes(toy_task, full_sharing_factory(), small_config)
    node = nodes[0]
    params_start, params_trained = node.local_training()
    context = RoundContext(
        round_index=0,
        params_start=params_start,
        params_trained=params_trained,
        self_weight=0.5,
        neighbor_weights={1: 0.5},
        rng=np.random.default_rng(0),
    )
    assert node.scheme.prepare(context).shared_fraction == 1.0


def test_round_context_carries_now_and_node_id(toy_task, small_config):
    seen = []

    class Spy(SimulationObserver):
        pass

    simulator = Simulator(toy_task, full_sharing_factory(), small_config)
    original = simulator.make_context

    def capture(node, round_index, params_start, params_trained, now):
        context = original(node, round_index, params_start, params_trained, now)
        seen.append((context.node_id, context.now))
        return context

    simulator.make_context = capture
    simulator.run()
    assert all(node_id >= 0 for node_id, _ in seen)
    assert seen[0][1] == 0.0  # the first round happens at t=0
