"""Tests for the deterministic discrete-event loop."""

import pytest

from repro.exceptions import SimulationError
from repro.simulation.events import (
    AGGREGATE,
    DELIVER_MESSAGE,
    FINISH_TRAIN,
    START_ROUND,
    Event,
    EventLoop,
)


def test_events_pop_in_time_order():
    loop = EventLoop()
    loop.schedule(3.0, FINISH_TRAIN, 0)
    loop.schedule(1.0, START_ROUND, 1)
    loop.schedule(2.0, DELIVER_MESSAGE, 2)
    times = [loop.pop().time for _ in range(3)]
    assert times == [1.0, 2.0, 3.0]


def test_equal_timestamps_break_ties_by_schedule_order():
    loop = EventLoop()
    # Schedule node ids in an order that differs from both insertion order
    # reversed and sorted order, so only the seq tiebreak can explain the
    # observed pop order.
    for node_id in (5, 2, 9, 0, 7):
        loop.schedule(1.5, AGGREGATE, node_id)
    assert [loop.pop().node_id for _ in range(5)] == [5, 2, 9, 0, 7]


def test_seq_numbers_are_monotonic_across_times():
    loop = EventLoop()
    a = loop.schedule(2.0, START_ROUND, 0)
    b = loop.schedule(1.0, START_ROUND, 1)
    assert (a.seq, b.seq) == (0, 1)
    assert loop.pop() is b
    assert loop.pop() is a


def test_pop_advances_the_clock_and_rejects_the_past():
    loop = EventLoop()
    loop.schedule(1.0, START_ROUND, 0)
    assert loop.now == 0.0
    loop.pop()
    assert loop.now == 1.0
    with pytest.raises(SimulationError):
        loop.schedule(0.5, FINISH_TRAIN, 0)
    # Scheduling exactly at the current time is allowed (zero-delay chaining).
    loop.schedule(1.0, FINISH_TRAIN, 0)


def test_pop_from_empty_loop_raises():
    loop = EventLoop()
    with pytest.raises(SimulationError):
        loop.pop()


def test_peek_len_bool_and_clear():
    loop = EventLoop()
    assert not loop and len(loop) == 0
    assert loop.peek() is None
    first = loop.schedule(1.0, START_ROUND, 3)
    loop.schedule(2.0, FINISH_TRAIN, 3)
    assert loop and len(loop) == 2
    assert loop.peek() is first
    loop.clear()
    assert not loop and loop.peek() is None


def test_event_data_rides_along_and_is_excluded_from_ordering():
    loop = EventLoop()
    payload = {"message": object()}
    event = loop.schedule(1.0, DELIVER_MESSAGE, 4, data=payload)
    assert event.data is payload
    assert loop.pop().data is payload


def test_sort_key_includes_node_id():
    event = Event(time=2.0, kind=START_ROUND, node_id=7, seq=3)
    assert event.sort_key == (2.0, 3, 7)
