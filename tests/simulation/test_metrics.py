"""Tests for experiment metrics and result queries."""

import numpy as np
import pytest

from repro.compression.sizing import GIB
from repro.simulation.metrics import ExperimentResult, RoundRecord


def _result_with_history():
    result = ExperimentResult(scheme="jwins", task="toy", num_nodes=4, rounds_completed=30)
    accuracies = [0.2, 0.4, 0.55, 0.6, 0.62]
    for index, accuracy in enumerate(accuracies):
        result.history.append(
            RoundRecord(
                round_index=(index + 1) * 10,
                test_accuracy=accuracy,
                test_loss=1.0 - accuracy,
                train_loss=1.0 - accuracy,
                cumulative_bytes_per_node=(index + 1) * 1000.0,
                cumulative_metadata_bytes_per_node=(index + 1) * 10.0,
                simulated_time_seconds=(index + 1) * 5.0,
                average_shared_fraction=0.37,
            )
        )
    result.total_bytes = 4 * 5000.0
    return result


def test_final_and_best_accuracy():
    result = _result_with_history()
    assert result.final_accuracy == pytest.approx(0.62)
    assert result.best_accuracy == pytest.approx(0.62)
    assert result.final_loss == pytest.approx(0.38)


def test_empty_history_yields_nan():
    result = ExperimentResult(scheme="x", task="y", num_nodes=2, rounds_completed=0)
    assert np.isnan(result.final_accuracy)
    assert np.isnan(result.best_accuracy)


def test_average_bytes_per_node_and_gib():
    result = _result_with_history()
    assert result.average_bytes_per_node == pytest.approx(5000.0)
    assert result.total_gib == pytest.approx(20000.0 / GIB)


def test_curves_have_matching_lengths():
    result = _result_with_history()
    rounds, accuracy = result.accuracy_curve()
    _, loss = result.loss_curve()
    _, sent = result.bytes_curve()
    assert rounds.shape == accuracy.shape == loss.shape == sent.shape
    assert np.all(np.diff(rounds) > 0)
    assert np.all(np.diff(sent) > 0)


def test_rounds_bytes_time_to_accuracy():
    result = _result_with_history()
    assert result.rounds_to_accuracy(0.5) == 30
    assert result.bytes_to_accuracy(0.5) == pytest.approx(3000.0)
    assert result.time_to_accuracy(0.5) == pytest.approx(15.0)


def test_unreachable_target_returns_none():
    result = _result_with_history()
    assert result.rounds_to_accuracy(0.99) is None
    assert result.bytes_to_accuracy(0.99) is None
    assert result.time_to_accuracy(0.99) is None
