"""Tests for the experiment configuration."""

import pytest

from repro.exceptions import ConfigurationError
from repro.simulation.experiment import ExperimentConfig


def test_defaults_are_valid():
    config = ExperimentConfig()
    assert config.num_nodes == 16
    assert config.degree == 4


@pytest.mark.parametrize(
    "kwargs",
    [
        {"num_nodes": 1},
        {"degree": 0},
        {"degree": 16, "num_nodes": 16},
        {"rounds": 0},
        {"local_steps": 0},
        {"batch_size": 0},
        {"learning_rate": 0.0},
        {"eval_every": 0},
        {"partition": "bogus"},
        {"stop_at_target": True},
        {"momentum": -0.1},
        {"momentum": 1.0},
        {"momentum": 1.5},
        {"eval_test_samples": 0},
        {"eval_test_samples": -5},
        {"execution": "bogus"},
        {"compute_speed_range": (0.0, 2.0)},
        {"compute_speed_range": (3.0, 2.0)},
        {"bandwidth_scale_range": (-1.0, 1.0)},
        {"link_latency_jitter_seconds": -0.1},
    ],
)
def test_invalid_configurations_raise(kwargs):
    with pytest.raises(ConfigurationError):
        ExperimentConfig(**kwargs)


def test_momentum_boundaries_are_valid():
    assert ExperimentConfig(momentum=0.0).momentum == 0.0
    assert ExperimentConfig(momentum=0.99).momentum == 0.99


def test_with_rounds_and_seed_return_copies():
    config = ExperimentConfig(rounds=10, seed=1)
    more_rounds = config.with_rounds(50)
    other_seed = config.with_seed(9)
    assert more_rounds.rounds == 50 and config.rounds == 10
    assert other_seed.seed == 9 and config.seed == 1


def test_with_target_enables_stop():
    config = ExperimentConfig().with_target(0.8)
    assert config.target_accuracy == 0.8
    assert config.stop_at_target


def test_with_execution_switches_mode_and_validates():
    config = ExperimentConfig()
    assert config.execution == "sync"
    async_config = config.with_execution("async")
    assert async_config.execution == "async" and config.execution == "sync"
    with pytest.raises(ConfigurationError):
        config.with_execution("turbo")


def test_resolved_time_model_lifts_heterogeneity_knobs():
    from repro.simulation.timing import HeterogeneousTimeModel, TimeModel

    config = ExperimentConfig(
        compute_speed_range=(1.0, 3.0),
        bandwidth_scale_range=(0.25, 1.0),
        link_latency_jitter_seconds=0.01,
    )
    model = config.resolved_time_model()
    assert isinstance(model, HeterogeneousTimeModel)
    assert model.compute_speed_range == (1.0, 3.0)
    assert model.bandwidth_scale_range == (0.25, 1.0)
    assert model.compute_seconds_per_step == TimeModel().compute_seconds_per_step


def test_resolved_time_model_prefers_an_explicit_heterogeneous_model():
    from repro.simulation.timing import HeterogeneousTimeModel

    explicit = HeterogeneousTimeModel(compute_speed_range=(1.0, 8.0))
    config = ExperimentConfig(time_model=explicit, compute_speed_range=(1.0, 2.0))
    assert config.resolved_time_model() is explicit
