"""Tests for the experiment configuration."""

import pytest

from repro.exceptions import ConfigurationError
from repro.simulation.experiment import ExperimentConfig


def test_defaults_are_valid():
    config = ExperimentConfig()
    assert config.num_nodes == 16
    assert config.degree == 4


@pytest.mark.parametrize(
    "kwargs",
    [
        {"num_nodes": 1},
        {"degree": 0},
        {"degree": 16, "num_nodes": 16},
        {"rounds": 0},
        {"local_steps": 0},
        {"batch_size": 0},
        {"learning_rate": 0.0},
        {"eval_every": 0},
        {"partition": "bogus"},
        {"stop_at_target": True},
    ],
)
def test_invalid_configurations_raise(kwargs):
    with pytest.raises(ConfigurationError):
        ExperimentConfig(**kwargs)


def test_with_rounds_and_seed_return_copies():
    config = ExperimentConfig(rounds=10, seed=1)
    more_rounds = config.with_rounds(50)
    other_seed = config.with_seed(9)
    assert more_rounds.rounds == 50 and config.rounds == 10
    assert other_seed.seed == 9 and config.seed == 1


def test_with_target_enables_stop():
    config = ExperimentConfig().with_target(0.8)
    assert config.target_accuracy == 0.8
    assert config.stop_at_target
