"""The arena engine's determinism contract: byte-identity with the per-node twin.

Every test here runs the same configuration through both engines —
``engine="pernode"`` (the reference) and ``engine="arena"`` (the batched
``(N, d)`` twin from :mod:`repro.simulation.arena`) — and requires the
serialized :class:`~repro.simulation.metrics.ExperimentResult` payloads to be
byte-for-byte equal.  The matrix covers the paper's schemes and scenario
machinery plus the awkward edge shapes: a single-row arena, a round where every
node is offline, a node churning out mid-run, and odd parameter-tensor lengths
flowing through the batched DWT.
"""

from __future__ import annotations

import json

import numpy as np
import pytest

from repro.baselines import choco_factory, full_sharing_factory
from repro.core import JwinsConfig, jwins_factory
from repro.core.adaptive import adaptive_jwins_factory
from repro.exceptions import ConfigurationError, ExperimentPaused, SimulationError
from repro.nn.module import Parameter
from repro.nn.optim import SGD
from repro.scenarios import get_scenario
from repro.scenarios.schedule import NodeOutage, ScenarioSchedule, ScenarioState
from repro.simulation import (
    ENGINES,
    ExperimentConfig,
    NodeArenas,
    resume_experiment,
    run_experiment,
)
from repro.simulation.arena import ArenaSGD, _jwins_batch_plan, build_arena_nodes
from repro.simulation.engine import Simulator
from tests.conftest import make_toy_task

ROUNDS = 5


def build_config(**overrides) -> ExperimentConfig:
    base = dict(
        num_nodes=6,
        degree=2,
        rounds=ROUNDS,
        local_steps=2,
        batch_size=8,
        learning_rate=0.1,
        eval_every=2,
        eval_test_samples=48,
        seed=3,
        partition="shards",
    )
    base.update(overrides)
    return ExperimentConfig(**base)


def dumps(result) -> str:
    return json.dumps(result.to_dict(), sort_keys=True)


def assert_engines_agree(factory_builder, config, task_kwargs=None):
    """Run ``config`` under both engines and require byte-equal results."""

    kwargs = task_kwargs or {}
    pernode = run_experiment(make_toy_task(**kwargs), factory_builder(), config)
    arena = run_experiment(
        make_toy_task(**kwargs), factory_builder(), config.with_engine("arena")
    )
    assert dumps(arena) == dumps(pernode)
    return arena


# -- the pinned equivalence matrix -------------------------------------------------


EQUIVALENCE_CASES = {
    "jwins-sync": {},
    "momentum": {"momentum": 0.9},
    "drops": {"message_drop_probability": 0.3},
    "dynamic-topology": {"dynamic_topology": True, "momentum": 0.9},
    "churn-partition": {
        "scenario": get_scenario("churn-partition", num_nodes=6, rounds=ROUNDS).to_dict()
    },
    "byzantine": {
        "scenario": get_scenario("byzantine", num_nodes=6, rounds=ROUNDS).to_dict()
    },
    "async": {"execution": "async", "compute_speed_range": (1.0, 3.0)},
}


@pytest.mark.parametrize("case", sorted(EQUIVALENCE_CASES))
def test_arena_matches_pernode(case):
    assert_engines_agree(jwins_factory, build_config(**EQUIVALENCE_CASES[case]))


def test_arena_matches_pernode_at_twenty_nodes():
    """The acceptance pin: arena sync-mode is byte-identical at N <= 20."""

    config = build_config(num_nodes=20, degree=4, rounds=3)
    assert_engines_agree(jwins_factory, config)


def test_arena_matches_pernode_adaptive():
    """AdaptiveJwinsScheme only overrides the score hook, so it batches too."""

    assert_engines_agree(adaptive_jwins_factory, build_config())


def test_arena_matches_pernode_no_accumulation():
    config = JwinsConfig(use_accumulation=False)
    assert_engines_agree(lambda: jwins_factory(config), build_config())


def test_arena_matches_pernode_identity_transform():
    config = JwinsConfig(use_wavelet=False)
    assert_engines_agree(lambda: jwins_factory(config), build_config())


@pytest.mark.parametrize("factory_builder", [full_sharing_factory, choco_factory])
def test_arena_fallback_schemes_match_pernode(factory_builder):
    """Non-JWINS schemes take the per-node fallback path on arena-backed state."""

    assert_engines_agree(factory_builder, build_config())


# -- edge shapes -------------------------------------------------------------------


def test_arena_matches_pernode_odd_tensor_lengths():
    """Odd per-tensor lengths (240/15/30/2, d=287) through the batched DWT."""

    kwargs = dict(hidden=15, num_classes=2)
    task = make_toy_task(**kwargs)
    model = task.model_factory(np.random.default_rng(0))
    sizes = [parameter.size for parameter in model.parameters()]
    assert sum(sizes) % 2 == 1, "the fixture should exercise an odd model size"
    assert_engines_agree(jwins_factory, build_config(), task_kwargs=kwargs)


class _AllOfflineRound(ScenarioSchedule):
    """A schedule whose round 1 has no active nodes at all.

    The stock :meth:`ScenarioSchedule.state_at` refuses empty rounds (they are
    almost always a configuration mistake), so the test builds the state
    directly to pin down that both engines survive a fully idle round.
    """

    def state_at(self, round_index: int, num_nodes: int) -> ScenarioState:
        if round_index == 1:
            return ScenarioState(
                round_index=1,
                active=(),
                partition_ids=(None,) * num_nodes,
                slowdowns=(1.0,) * num_nodes,
            )
        return super().state_at(round_index, num_nodes)


def test_arena_matches_pernode_all_nodes_offline_round():
    config = build_config(scenario=_AllOfflineRound(name="all-offline-round-1"))
    result = assert_engines_agree(jwins_factory, config)
    assert result.rounds_completed == ROUNDS


def test_arena_matches_pernode_node_churns_out_mid_run():
    scenario = ScenarioSchedule(
        name="mid-run-churn",
        outages=(NodeOutage(node=2, start_round=1, end_round=3),),
    )
    assert_engines_agree(jwins_factory, build_config(scenario=scenario))


def test_single_row_arena_step_matches_sgd():
    """N=1: one batched step over a (1, d) arena equals per-tensor SGD exactly."""

    shapes = [(15, 16), (15,), (2, 15), (2,)]
    arenas = NodeArenas(1, shapes)
    rng = np.random.default_rng(11)
    arenas.params[0] = rng.normal(size=arenas.model_size)
    arenas.grads[0] = rng.normal(size=arenas.model_size)
    arenas.velocity[0] = rng.normal(size=arenas.model_size)

    parameters = []
    for column_range, shape in zip(arenas.slices, arenas.shapes):
        parameter = Parameter(arenas.params[0, column_range].reshape(shape).copy())
        parameter.grad = arenas.grads[0, column_range].reshape(shape).copy()
        parameters.append(parameter)
    reference = SGD(parameters, lr=0.1, momentum=0.9)
    reference.load_state_dict(
        {
            "velocity": [
                arenas.velocity[0, column_range].reshape(shape).copy()
                for column_range, shape in zip(arenas.slices, arenas.shapes)
            ]
        }
    )

    for _ in range(3):
        reference.step()
        arenas.step_rows(np.array([0]), lr=0.1, momentum=0.9)

    flat_reference = np.concatenate(
        [parameter.value.ravel() for parameter in parameters]
    )
    np.testing.assert_array_equal(arenas.params[0], flat_reference)


# -- interrupt + resume ------------------------------------------------------------


def pause_at(config: ExperimentConfig, rounds: int):
    simulator = Simulator(make_toy_task(), jwins_factory(), config)
    simulator.on_round_end(
        lambda r, n, now: (
            simulator.request_checkpoint_stop()
            if simulator.result.rounds_completed >= rounds
            else None
        )
    )
    with pytest.raises(ExperimentPaused) as info:
        simulator.run()
    return info.value.snapshot


def json_roundtrip(snapshot):
    from repro.checkpoint import SimulationSnapshot

    return SimulationSnapshot.from_dict(
        json.loads(json.dumps(snapshot.to_dict(), sort_keys=True))
    )


def test_arena_interrupt_resume_is_byte_identical():
    config = build_config(momentum=0.9).with_engine("arena")
    uninterrupted = run_experiment(make_toy_task(), jwins_factory(), config)
    snapshot = pause_at(config, 3)
    assert snapshot.rounds_completed == 3
    resumed = resume_experiment(
        make_toy_task(), jwins_factory(), config, json_roundtrip(snapshot)
    )
    assert dumps(resumed) == dumps(uninterrupted)


@pytest.mark.parametrize(
    "pause_engine,resume_engine",
    [("pernode", "arena"), ("arena", "pernode")],
)
def test_snapshots_cross_engines(pause_engine, resume_engine):
    """Checkpoints are engine-agnostic: pause under one engine, resume under the other."""

    config = build_config(momentum=0.9)
    uninterrupted = run_experiment(make_toy_task(), jwins_factory(), config)
    snapshot = pause_at(config.with_engine(pause_engine), 3)
    resumed = resume_experiment(
        make_toy_task(),
        jwins_factory(),
        config.with_engine(resume_engine),
        json_roundtrip(snapshot),
    )
    assert dumps(resumed) == dumps(uninterrupted)


# -- arena plumbing ----------------------------------------------------------------


def test_build_arena_nodes_rebinds_views():
    """Node parameters, gradients and momentum all alias the shared arenas."""

    config = build_config()
    nodes, arenas = build_arena_nodes(make_toy_task(), jwins_factory(), config)
    assert len(nodes) == config.num_nodes
    assert arenas.params.shape == (config.num_nodes, arenas.model_size)
    for node in nodes:
        for parameter in node.model.parameters():
            assert np.shares_memory(parameter.value, arenas.params)
            assert np.shares_memory(parameter.grad, arenas.grads)
        assert isinstance(node.optimizer, ArenaSGD)
        np.testing.assert_array_equal(
            node.get_parameters(), arenas.params[node.node_id]
        )


def test_arena_sgd_load_state_dict_writes_through_views():
    config = build_config(momentum=0.9)
    nodes, arenas = build_arena_nodes(make_toy_task(), jwins_factory(), config)
    node = nodes[2]
    replacement = [np.full(shape, 0.25) for shape in arenas.shapes]
    node.optimizer.load_state_dict({"velocity": replacement})
    np.testing.assert_array_equal(
        arenas.velocity[2], np.full(arenas.model_size, 0.25)
    )
    for buffer, parameter in zip(node.optimizer._velocity, node.model.parameters()):
        assert np.shares_memory(buffer, arenas.velocity)
        assert buffer.shape == parameter.value.shape


def test_arena_sgd_rejects_mismatched_momentum_buffers():
    config = build_config()
    nodes, arenas = build_arena_nodes(make_toy_task(), jwins_factory(), config)
    with pytest.raises(SimulationError):
        nodes[0].optimizer.load_state_dict({"velocity": [np.zeros(3)]})


def test_node_arenas_validates_construction():
    with pytest.raises(SimulationError):
        NodeArenas(0, [(4,)])
    with pytest.raises(SimulationError):
        NodeArenas(3, [])


def test_step_rows_with_no_active_rows_is_a_no_op():
    arenas = NodeArenas(2, [(3,)])
    arenas.params[:] = 1.0
    arenas.grads[:] = 5.0
    arenas.step_rows(np.array([], dtype=np.int64), lr=0.1, momentum=0.9)
    np.testing.assert_array_equal(arenas.params, np.ones((2, 3)))
    np.testing.assert_array_equal(arenas.velocity, np.zeros((2, 3)))


def test_jwins_batch_plan_rejects_heterogeneous_schemes():
    config = build_config()
    jwins_nodes, _ = build_arena_nodes(make_toy_task(), jwins_factory(), config)
    baseline_nodes, _ = build_arena_nodes(
        make_toy_task(), full_sharing_factory(), config
    )
    assert _jwins_batch_plan([]) is None
    assert _jwins_batch_plan(baseline_nodes) is None
    assert _jwins_batch_plan(jwins_nodes[:1] + baseline_nodes[1:]) is None
    plan = _jwins_batch_plan(jwins_nodes)
    assert plan is not None
    assert plan.transform is jwins_nodes[0].scheme.transform


def test_engine_knob_is_validated():
    assert ENGINES == ("pernode", "arena")
    with pytest.raises(ConfigurationError):
        build_config(engine="vectorized")
    config = build_config()
    assert config.engine == "pernode"
    assert config.with_engine("arena").engine == "arena"
    assert config.with_engine("arena").to_dict()["engine"] == "arena"
