"""Tests for the wall-clock model."""

import pytest

from repro.simulation.timing import TimeModel


def test_round_duration_components():
    model = TimeModel(compute_seconds_per_step=0.1, bandwidth_bytes_per_second=1000, latency_seconds=0.5)
    duration = model.round_duration(local_steps=3, max_bytes_sent_by_a_node=2000)
    assert duration == pytest.approx(0.3 + 2.0 + 0.5)


def test_more_bytes_means_longer_round():
    model = TimeModel()
    fast = model.round_duration(2, 1_000)
    slow = model.round_duration(2, 10_000_000)
    assert slow > fast


def test_zero_bytes_still_costs_compute_and_latency():
    model = TimeModel(compute_seconds_per_step=0.01, latency_seconds=0.2)
    assert model.round_duration(5, 0) == pytest.approx(0.05 + 0.2)


def test_negative_arguments_raise():
    model = TimeModel()
    with pytest.raises(ValueError):
        model.round_duration(-1, 0)
    with pytest.raises(ValueError):
        model.round_duration(1, -5)


def test_default_bandwidth_models_edge_uplink():
    """The default cluster model makes the network the bottleneck (10 Mbit/s uplink)."""

    assert TimeModel().bandwidth_bytes_per_second == pytest.approx(10e6 / 8)
