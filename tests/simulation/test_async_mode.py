"""Smoke and determinism tests for the asynchronous gossip execution mode."""

from dataclasses import replace

import pytest

from repro.baselines import choco_factory, full_sharing_factory
from repro.core import JwinsConfig, jwins_factory
from repro.exceptions import ConfigurationError
from repro.simulation import ExperimentConfig, Simulator, run_experiment
from tests.conftest import make_toy_task

ASYNC_CONFIG = ExperimentConfig(
    num_nodes=6,
    degree=2,
    rounds=6,
    local_steps=1,
    batch_size=8,
    learning_rate=0.1,
    eval_every=2,
    eval_test_samples=48,
    seed=3,
    partition="shards",
    execution="async",
    compute_speed_range=(1.0, 4.0),
    bandwidth_scale_range=(0.5, 1.0),
    link_latency_jitter_seconds=0.05,
)


def test_async_mode_runs_to_completion_with_stragglers():
    result = run_experiment(make_toy_task(), full_sharing_factory(), ASYNC_CONFIG)
    assert result.execution == "async"
    assert result.rounds_completed == ASYNC_CONFIG.rounds
    assert len(result.history) == ASYNC_CONFIG.rounds // ASYNC_CONFIG.eval_every
    assert result.total_bytes > 0
    assert result.simulated_time_seconds > 0


def test_async_mode_meters_one_byte_round_per_global_round():
    simulator = Simulator(make_toy_task(), full_sharing_factory(), ASYNC_CONFIG)
    result = simulator.run()
    per_round = simulator.meter.per_round_bytes
    assert len(per_round) == result.rounds_completed
    assert all(bytes_sent > 0 for bytes_sent in per_round)


def test_async_mode_reports_per_node_clock_skew():
    result = run_experiment(make_toy_task(), full_sharing_factory(), ASYNC_CONFIG)
    assert len(result.per_node_time_seconds) == ASYNC_CONFIG.num_nodes
    # With a 1-4x compute spread the stragglers must measurably lag.
    assert result.clock_skew_seconds > 0.0
    assert result.simulated_time_seconds == max(result.per_node_time_seconds)


def test_async_mode_is_deterministic():
    a = run_experiment(make_toy_task(), jwins_factory(JwinsConfig.paper_default()), ASYNC_CONFIG)
    b = run_experiment(make_toy_task(), jwins_factory(JwinsConfig.paper_default()), ASYNC_CONFIG)
    assert a.history == b.history
    assert a.total_bytes == b.total_bytes
    assert a.per_node_time_seconds == b.per_node_time_seconds


def test_async_mode_with_message_drops_still_learns_rounds():
    def count_deliveries(config):
        deliveries = []
        simulator = Simulator(make_toy_task(), full_sharing_factory(), config)
        simulator.on_message(lambda message, receiver, now: deliveries.append(receiver))
        result = simulator.run()
        return result, len(deliveries)

    lossy, lossy_deliveries = count_deliveries(
        replace(ASYNC_CONFIG, message_drop_probability=0.3)
    )
    lossless, lossless_deliveries = count_deliveries(ASYNC_CONFIG)
    # Gossip degrades gracefully: the run still completes every round, but
    # strictly fewer deliveries reach the receivers.  The sender's uplink
    # bytes are metered either way, so totals stay in the same ballpark.
    assert lossy.rounds_completed == ASYNC_CONFIG.rounds
    assert lossy_deliveries < lossless_deliveries
    assert lossy.total_bytes > 0


def test_async_mode_supports_stateful_choco():
    result = run_experiment(make_toy_task(), choco_factory(fraction=0.3), ASYNC_CONFIG)
    assert result.rounds_completed == ASYNC_CONFIG.rounds
    assert 0.0 < result.history[-1].average_shared_fraction < 1.0


def test_async_message_hook_sees_in_flight_deliveries():
    deliveries = []
    simulator = Simulator(make_toy_task(), full_sharing_factory(), ASYNC_CONFIG)
    simulator.on_message(lambda message, receiver, now: deliveries.append(now))
    simulator.run()
    assert deliveries
    # Delivery timestamps are causally ordered by the event loop.
    assert deliveries == sorted(deliveries)


def test_async_round_end_hook_reports_the_finishing_node():
    finishing_nodes = set()
    simulator = Simulator(make_toy_task(), full_sharing_factory(), ASYNC_CONFIG)
    simulator.on_round_end(lambda round_index, node_id, now: finishing_nodes.add(node_id))
    simulator.run()
    assert finishing_nodes == set(range(ASYNC_CONFIG.num_nodes))


def test_async_supports_dynamic_topology():
    # Historically rejected; the scenario subsystem made rewiring well-defined
    # under gossip (the policy fires on global-round advancement).
    config = replace(ASYNC_CONFIG, dynamic_topology=True)
    result = run_experiment(make_toy_task(), full_sharing_factory(), config)
    assert result.rounds_completed == config.rounds
    assert result.execution == "async"


def test_async_dynamic_topology_is_deterministic():
    config = replace(ASYNC_CONFIG, dynamic_topology=True)
    first = run_experiment(make_toy_task(), full_sharing_factory(), config)
    second = run_experiment(make_toy_task(), full_sharing_factory(), config)
    assert first.to_dict() == second.to_dict()


def test_async_early_stop_at_target():
    config = replace(
        ASYNC_CONFIG,
        rounds=12,
        target_accuracy=0.0,  # any evaluation reaches this immediately
        stop_at_target=True,
    )
    result = run_experiment(make_toy_task(), full_sharing_factory(), config)
    assert result.reached_target_at_round is not None
    assert result.rounds_completed < config.rounds


def test_homogeneous_async_has_much_smaller_skew_than_stragglers():
    homogeneous = replace(
        ASYNC_CONFIG,
        compute_speed_range=(1.0, 1.0),
        bandwidth_scale_range=(1.0, 1.0),
        link_latency_jitter_seconds=0.0,
    )
    flat = run_experiment(make_toy_task(), full_sharing_factory(), homogeneous)
    skewed = run_experiment(make_toy_task(), full_sharing_factory(), ASYNC_CONFIG)
    # Residual skew in a homogeneous cluster comes only from per-node payload
    # compression differences — orders of magnitude below straggler skew.
    assert flat.clock_skew_seconds < 0.01 * flat.simulated_time_seconds
    assert flat.clock_skew_seconds < 0.1 * skewed.clock_skew_seconds
