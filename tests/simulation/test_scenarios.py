"""Engine-level scenario tests: churn, partitions, stragglers, both modes.

The two pins that matter most:

* legacy ``dynamic_topology=True`` synchronous runs must stay bit-identical
  to the pre-scenario behavior (checked against the frozen seed-runner port
  in :mod:`tests.simulation.test_engine`);
* scenario runs themselves must be deterministic — same seed, same schedule,
  bit-identical ``to_dict()`` output across reruns.
"""

from __future__ import annotations

from dataclasses import replace

import numpy as np
import pytest

from repro.baselines import full_sharing_factory
from repro.scenarios import (
    NodeOutage,
    PartitionWindow,
    ScenarioSchedule,
    StragglerWindow,
    get_scenario,
)
from repro.simulation import ExperimentConfig, Simulator, run_experiment
from repro.topology.policy import GeneratorPolicy
from tests.conftest import make_toy_task
from tests.simulation.test_engine import REGRESSION_CONFIG, reference_run_experiment

CONFIG = ExperimentConfig(
    num_nodes=6,
    degree=2,
    rounds=6,
    local_steps=1,
    batch_size=8,
    learning_rate=0.1,
    eval_every=2,
    eval_test_samples=48,
    seed=3,
    partition="shards",
)

HALVES = PartitionWindow(start_round=0, end_round=6, groups=((0, 1, 2), (3, 4, 5)))


def _run(config):
    return run_experiment(make_toy_task(), full_sharing_factory(), config)


# -- legacy equivalence pins -------------------------------------------------------


def test_legacy_dynamic_topology_matches_the_frozen_seed_runner():
    config = replace(REGRESSION_CONFIG, dynamic_topology=True)
    reference = reference_run_experiment(make_toy_task(), full_sharing_factory(), config)
    current = _run(config)
    assert current.history == reference.history
    assert current.total_bytes == reference.total_bytes
    assert current.simulated_time_seconds == reference.simulated_time_seconds
    assert current.scenario_rounds == []  # rewiring alone records no event trace


def test_dynamic_scenario_equals_legacy_flag_bit_for_bit():
    legacy = _run(replace(CONFIG, dynamic_topology=True))
    scenario = _run(
        replace(CONFIG, scenario=ScenarioSchedule(
            name="dynamic", topology=GeneratorPolicy(rewire_every=1)
        ))
    )
    assert scenario.history == legacy.history
    assert scenario.total_bytes == legacy.total_bytes
    assert scenario.simulated_time_seconds == legacy.simulated_time_seconds


def test_trivial_scenario_equals_no_scenario_bit_for_bit():
    plain = _run(CONFIG)
    trivial = _run(replace(CONFIG, scenario=ScenarioSchedule()))
    assert trivial.to_dict() == plain.to_dict()


def test_scenario_and_legacy_flag_are_mutually_exclusive():
    from repro.exceptions import ConfigurationError

    with pytest.raises(ConfigurationError, match="mutually exclusive"):
        replace(CONFIG, dynamic_topology=True, scenario=ScenarioSchedule())


# -- determinism -------------------------------------------------------------------


@pytest.mark.parametrize("execution", ["sync", "async"])
def test_churn_partition_runs_are_bit_identical_across_reruns(execution):
    scenario = get_scenario("churn-partition", num_nodes=6, rounds=6)
    config = replace(CONFIG, scenario=scenario, execution=execution)
    first = _run(config)
    second = _run(config)
    assert first.to_dict() == second.to_dict()
    assert first.scenario_rounds  # the event trace is populated


# -- churn semantics ---------------------------------------------------------------


def test_offline_node_is_frozen_and_traced_in_sync_mode():
    scenario = ScenarioSchedule(
        name="one-out", outages=(NodeOutage(node=0, start_round=1, end_round=3),)
    )
    config = replace(CONFIG, scenario=scenario)
    simulator = Simulator(make_toy_task(), full_sharing_factory(), config)
    snapshots: list[list[np.ndarray]] = []
    simulator.on_round_end(
        lambda round_index, node_id, now: snapshots.append(
            [node.get_parameters() for node in simulator.nodes]
        )
    )
    result = simulator.run()

    # Node 0 sat out rounds 1 and 2: its parameters froze, the others moved.
    assert np.array_equal(snapshots[1][0], snapshots[0][0])
    assert np.array_equal(snapshots[2][0], snapshots[1][0])
    assert not np.array_equal(snapshots[3][0], snapshots[2][0])  # rejoined
    assert not np.array_equal(snapshots[1][1], snapshots[0][1])

    assert [row["round"] for row in result.scenario_rounds] == list(range(6))
    assert result.scenario_rounds[0]["active_nodes"] == [0, 1, 2, 3, 4, 5]
    assert result.scenario_rounds[1]["active_nodes"] == [1, 2, 3, 4, 5]
    assert result.scenario_rounds[3]["active_nodes"] == [0, 1, 2, 3, 4, 5]


@pytest.mark.parametrize("execution", ["sync", "async"])
def test_offline_node_neither_sends_nor_receives(execution):
    scenario = ScenarioSchedule(
        name="one-out", outages=(NodeOutage(node=0, start_round=0, end_round=6),)
    )
    simulator = Simulator(
        make_toy_task(),
        full_sharing_factory(),
        replace(CONFIG, scenario=scenario, execution=execution),
    )
    touched: set[int] = set()
    simulator.on_message(
        lambda message, receiver, now: touched.update((message.sender, receiver))
    )
    simulator.run()
    assert 0 not in touched


@pytest.mark.parametrize("execution", ["sync", "async"])
def test_churn_run_completes_all_rounds(execution):
    scenario = get_scenario("churn", num_nodes=6, rounds=6)
    result = _run(replace(CONFIG, scenario=scenario, execution=execution))
    assert result.rounds_completed == CONFIG.rounds
    assert len(result.scenario_rounds) == CONFIG.rounds


# -- partition semantics -----------------------------------------------------------


@pytest.mark.parametrize("execution", ["sync", "async"])
def test_partition_blocks_every_cross_group_delivery(execution):
    scenario = ScenarioSchedule(name="split", partitions=(HALVES,))
    config = replace(CONFIG, scenario=scenario, execution=execution)
    simulator = Simulator(make_toy_task(), full_sharing_factory(), config)
    crossings = []
    group = {node: 0 if node < 3 else 1 for node in range(6)}
    simulator.on_message(
        lambda message, receiver, now: crossings.append((message.sender, receiver))
        if group[message.sender] != group[receiver]
        else None
    )
    result = simulator.run()
    assert crossings == []
    assert result.scenario_rounds[0]["partition_ids"] == [0, 0, 0, 1, 1, 1]


def test_partition_window_closes_again():
    window = PartitionWindow(start_round=1, end_round=3, groups=((0, 1, 2), (3, 4, 5)))
    scenario = ScenarioSchedule(name="brief-split", partitions=(window,))
    simulator = Simulator(
        make_toy_task(), full_sharing_factory(), replace(CONFIG, scenario=scenario)
    )
    by_round: dict[int, list[tuple[int, int]]] = {}
    current_round = [0]
    group = {node: 0 if node < 3 else 1 for node in range(6)}

    def on_message(message, receiver, now):
        if group[message.sender] != group[receiver]:
            by_round.setdefault(current_round[0], []).append((message.sender, receiver))

    def on_round_end(round_index, node_id, now):
        current_round[0] = round_index + 1

    simulator.on_message(on_message).on_round_end(on_round_end)
    result = simulator.run()
    assert 1 not in by_round and 2 not in by_round  # window open: no crossings
    assert by_round.get(0) or by_round.get(3)  # closed windows do cross
    assert result.scenario_rounds[1]["partition_ids"] == [0, 0, 0, 1, 1, 1]
    assert result.scenario_rounds[3]["partition_ids"] == [None] * 6


# -- straggler semantics -----------------------------------------------------------


def test_stragglers_stretch_the_synchronous_clock():
    window = StragglerWindow(start_round=0, end_round=6, nodes=(0,), slowdown=5.0)
    scenario = ScenarioSchedule(name="slow", stragglers=(window,))
    baseline = _run(CONFIG)
    slowed = _run(replace(CONFIG, scenario=scenario))
    assert slowed.simulated_time_seconds > baseline.simulated_time_seconds
    # The accuracy trajectory is untouched: stragglers only cost time.
    assert [r.test_accuracy for r in slowed.history] == [
        r.test_accuracy for r in baseline.history
    ]


def test_stragglers_skew_the_asynchronous_clocks():
    window = StragglerWindow(start_round=0, end_round=6, nodes=(0,), slowdown=5.0)
    scenario = ScenarioSchedule(name="slow", stragglers=(window,))
    result = _run(replace(CONFIG, scenario=scenario, execution="async"))
    times = result.per_node_time_seconds
    assert times[0] == max(times)
    assert result.clock_skew_seconds > 0.0


# -- serialization of the trace ----------------------------------------------------


def test_result_with_scenario_trace_round_trips_exactly():
    import json

    from repro.simulation import ExperimentResult

    scenario = get_scenario("churn-partition", num_nodes=6, rounds=6)
    result = _run(replace(CONFIG, scenario=scenario))
    rebuilt = ExperimentResult.from_dict(json.loads(json.dumps(result.to_dict())))
    assert rebuilt == result
    assert rebuilt.scenario_rounds == result.scenario_rounds


# -- byzantine semantics -----------------------------------------------------------


def _byzantine_schedule(mode: str) -> ScenarioSchedule:
    from repro.scenarios import ByzantineWindow

    return ScenarioSchedule(
        name=f"byz-{mode}",
        byzantine=(
            ByzantineWindow(start_round=1, end_round=4, nodes=(4, 5), mode=mode),
        ),
    )


@pytest.mark.parametrize("execution", ["sync", "async"])
@pytest.mark.parametrize("mode", ["random-gradient", "sign-flip", "stale-replay"])
def test_byzantine_runs_are_bit_identical_across_reruns(mode, execution):
    config = replace(CONFIG, scenario=_byzantine_schedule(mode), execution=execution)
    assert _run(config).to_dict() == _run(config).to_dict()


@pytest.mark.parametrize("mode", ["random-gradient", "sign-flip", "stale-replay"])
def test_byzantine_window_changes_the_learning_dynamics(mode):
    honest = _run(CONFIG)
    attacked = _run(replace(CONFIG, scenario=_byzantine_schedule(mode)))
    assert [r.test_accuracy for r in attacked.history] != [
        r.test_accuracy for r in honest.history
    ]


@pytest.mark.parametrize("execution", ["sync", "async"])
def test_byzantine_sends_are_counted_per_mode(execution):
    from repro.observability.metrics import MetricsRegistry

    registry = MetricsRegistry()
    config = replace(CONFIG, scenario=_byzantine_schedule("sign-flip"), execution=execution)
    run_experiment(
        make_toy_task(), full_sharing_factory(), config, metrics=registry
    )
    # 2 attackers x 3 in-window rounds, all under the sign-flip label.
    assert registry.counter("engine_byzantine_sends", mode="sign-flip").value == 6.0
    assert registry.counter("engine_byzantine_sends", mode="stale-replay").value == 0.0
    assert registry.counter("engine_byzantine_sends", mode="random-gradient").value == 0.0


def test_sign_flip_mirrors_the_update_exactly():
    """The corrupted model is params_start - (params_trained - params_start)."""

    config = replace(CONFIG, scenario=_byzantine_schedule("sign-flip"))
    simulator = Simulator(make_toy_task(), full_sharing_factory(), config)
    state = config.scenario.state_at(1, config.num_nodes)
    params_start = np.arange(4, dtype=np.float64)
    params_trained = params_start + np.array([1.0, -2.0, 0.5, 0.0])
    corrupted = simulator.apply_byzantine(4, 1, state, params_start, params_trained)
    assert np.array_equal(corrupted, params_start - (params_trained - params_start))
    # Honest nodes pass through untouched.
    honest = simulator.apply_byzantine(0, 1, state, params_start, params_trained)
    assert honest is params_trained


def test_stale_replay_freezes_the_first_in_window_model():
    config = replace(CONFIG, scenario=_byzantine_schedule("stale-replay"))
    simulator = Simulator(make_toy_task(), full_sharing_factory(), config)
    state = config.scenario.state_at(1, config.num_nodes)
    first = np.array([1.0, 2.0, 3.0])
    later = np.array([9.0, 9.0, 9.0])
    frozen = simulator.apply_byzantine(4, 1, state, np.zeros(3), first)
    assert np.array_equal(frozen, first)
    replayed = simulator.apply_byzantine(4, 2, state, np.zeros(3), later)
    assert np.array_equal(replayed, first)  # still the round-1 model
    # Once the node turns honest again the frozen model is discarded.
    honest_state = config.scenario.state_at(5, config.num_nodes)
    passthrough = simulator.apply_byzantine(4, 5, honest_state, np.zeros(3), later)
    assert passthrough is later
    assert 4 not in simulator._byzantine_stale
