"""Tests for the simulation node."""

import numpy as np
import pytest

from repro.baselines.full_sharing import FullSharingScheme
from repro.datasets.base import Dataset
from repro.exceptions import SimulationError
from repro.simulation.node import SimulationNode
from tests.conftest import make_toy_task


def _make_node(task, node_id=0, local_steps=3, batch_size=8):
    model = task.make_model(np.random.default_rng(0))
    scheme = FullSharingScheme(node_id, model.num_parameters, seed=1)
    return SimulationNode(
        node_id=node_id,
        dataset=task.train,
        model=model,
        loss=task.make_loss(),
        scheme=scheme,
        learning_rate=0.1,
        batch_size=batch_size,
        local_steps=local_steps,
        rng=np.random.default_rng(7),
    )


def test_local_training_changes_parameters_and_reports_loss():
    task = make_toy_task()
    node = _make_node(task)
    start, trained = node.local_training()
    assert start.shape == trained.shape
    assert not np.allclose(start, trained)
    assert np.isfinite(node.last_train_loss)


def test_parameters_roundtrip():
    task = make_toy_task()
    node = _make_node(task)
    vector = np.random.default_rng(1).normal(size=node.get_parameters().size)
    node.set_parameters(vector)
    assert np.allclose(node.get_parameters(), vector)


def test_sample_batch_respects_batch_size():
    task = make_toy_task()
    node = _make_node(task, batch_size=16)
    inputs, targets = node.sample_batch()
    assert inputs.shape[0] == 16
    assert targets.shape[0] == 16


def test_sample_batch_with_tiny_partition_uses_replacement():
    task = make_toy_task(train_samples=40, test_samples=16)
    small = Dataset(task.train.inputs[:4], task.train.targets[:4])
    model = task.make_model(np.random.default_rng(0))
    node = SimulationNode(
        node_id=0,
        dataset=small,
        model=model,
        loss=task.make_loss(),
        scheme=FullSharingScheme(0, model.num_parameters, seed=1),
        learning_rate=0.1,
        batch_size=8,
        local_steps=1,
        rng=np.random.default_rng(0),
    )
    inputs, _ = node.sample_batch()
    assert inputs.shape[0] == 4


def test_evaluate_returns_loss_and_accuracy():
    task = make_toy_task()
    node = _make_node(task)
    loss, accuracy = node.evaluate(task.test.inputs, task.test.targets, task.accuracy_fn)
    assert np.isfinite(loss)
    assert 0.0 <= accuracy <= 1.0


def test_training_reduces_loss_over_many_steps():
    task = make_toy_task()
    node = _make_node(task, local_steps=40, batch_size=16)
    loss_before, _ = node.evaluate(task.test.inputs, task.test.targets, task.accuracy_fn)
    node.local_training()
    loss_after, _ = node.evaluate(task.test.inputs, task.test.targets, task.accuracy_fn)
    assert loss_after < loss_before


def test_empty_partition_rejected():
    task = make_toy_task()
    model = task.make_model(np.random.default_rng(0))
    empty = Dataset(task.train.inputs[:0], task.train.targets[:0])
    with pytest.raises(SimulationError):
        SimulationNode(
            node_id=0,
            dataset=empty,
            model=model,
            loss=task.make_loss(),
            scheme=FullSharingScheme(0, model.num_parameters, seed=1),
            learning_rate=0.1,
            batch_size=4,
            local_steps=1,
            rng=np.random.default_rng(0),
        )


def test_invalid_batch_size_rejected():
    task = make_toy_task()
    model = task.make_model(np.random.default_rng(0))
    with pytest.raises(SimulationError):
        SimulationNode(
            node_id=0,
            dataset=task.train,
            model=model,
            loss=task.make_loss(),
            scheme=FullSharingScheme(0, model.num_parameters, seed=1),
            learning_rate=0.1,
            batch_size=0,
            local_steps=1,
            rng=np.random.default_rng(0),
        )
