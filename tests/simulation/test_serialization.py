"""Exact round-trip tests for the experiment (de)serialization layer.

The JSONL result store persists every run as ``to_dict()`` output, so the
round trips must be *exact*: ``from_dict(json.loads(json.dumps(to_dict(x))))``
has to compare equal to ``x``, bit for bit, including numpy-scalar inputs.
"""

from __future__ import annotations

import json

import numpy as np
import pytest

from repro.exceptions import ConfigurationError
from repro.simulation import (
    ExperimentConfig,
    ExperimentResult,
    HeterogeneousTimeModel,
    RoundRecord,
    TimeModel,
    time_model_from_dict,
)


def _json_round_trip(data):
    return json.loads(json.dumps(data))


def _record(round_index: int = 4) -> RoundRecord:
    return RoundRecord(
        round_index=round_index,
        test_accuracy=float(np.float64(0.62347190112)),
        test_loss=1.0831,
        train_loss=0.77,
        cumulative_bytes_per_node=123456.789,
        cumulative_metadata_bytes_per_node=np.float64(1024.5),
        simulated_time_seconds=17.25,
        average_shared_fraction=0.37,
    )


class TestTimeModelRoundTrip:
    def test_uniform_round_trip_is_exact(self):
        model = TimeModel(
            compute_seconds_per_step=0.035,
            bandwidth_bytes_per_second=2.5e6,
            latency_seconds=0.011,
        )
        rebuilt = time_model_from_dict(_json_round_trip(model.to_dict()))
        assert rebuilt == model
        assert type(rebuilt) is TimeModel

    def test_heterogeneous_round_trip_is_exact(self):
        model = HeterogeneousTimeModel(
            compute_seconds_per_step=0.02,
            compute_speed_range=(1.0, 4.0),
            bandwidth_scale_range=(0.5, 1.0),
            link_latency_jitter_seconds=0.003,
        )
        rebuilt = time_model_from_dict(_json_round_trip(model.to_dict()))
        assert rebuilt == model
        assert type(rebuilt) is HeterogeneousTimeModel

    def test_unknown_kind_rejected(self):
        with pytest.raises(ConfigurationError, match="time-model kind"):
            time_model_from_dict({"kind": "quantum"})


class TestExperimentConfigRoundTrip:
    def test_default_config_round_trip_is_exact(self):
        config = ExperimentConfig()
        assert ExperimentConfig.from_dict(_json_round_trip(config.to_dict())) == config

    def test_fully_customized_config_round_trip_is_exact(self):
        config = ExperimentConfig(
            num_nodes=12,
            degree=3,
            dynamic_topology=True,
            partition="shards",
            shards_per_node=3,
            rounds=21,
            local_steps=4,
            batch_size=16,
            learning_rate=0.125,
            momentum=0.9,
            eval_every=7,
            eval_test_samples=96,
            eval_nodes=4,
            seed=42,
            message_drop_probability=0.1,
            target_accuracy=0.8,
            stop_at_target=True,
            time_model=TimeModel(compute_seconds_per_step=0.05),
            compute_speed_range=(1.0, 3.0),
            bandwidth_scale_range=(0.25, 1.0),
            link_latency_jitter_seconds=0.002,
        )
        rebuilt = ExperimentConfig.from_dict(_json_round_trip(config.to_dict()))
        assert rebuilt == config
        # Tuple-typed fields must come back as tuples, not JSON lists.
        assert isinstance(rebuilt.compute_speed_range, tuple)
        assert isinstance(rebuilt.bandwidth_scale_range, tuple)

    def test_heterogeneous_time_model_survives(self):
        config = ExperimentConfig(
            time_model=HeterogeneousTimeModel(compute_speed_range=(1.0, 2.0))
        )
        rebuilt = ExperimentConfig.from_dict(_json_round_trip(config.to_dict()))
        assert rebuilt == config
        assert isinstance(rebuilt.time_model, HeterogeneousTimeModel)

    def test_scenario_survives_the_round_trip(self):
        from repro.scenarios import ScenarioSchedule, get_scenario

        config = ExperimentConfig(
            num_nodes=8, scenario=get_scenario("churn-partition", num_nodes=8, rounds=50)
        )
        rebuilt = ExperimentConfig.from_dict(_json_round_trip(config.to_dict()))
        assert rebuilt == config
        assert isinstance(rebuilt.scenario, ScenarioSchedule)
        assert rebuilt.scenario.to_dict() == config.scenario.to_dict()

    def test_unknown_field_rejected(self):
        data = ExperimentConfig().to_dict()
        data["warp_factor"] = 9
        with pytest.raises(ConfigurationError, match="warp_factor"):
            ExperimentConfig.from_dict(data)

    def test_from_dict_revalidates(self):
        data = ExperimentConfig().to_dict()
        data["num_nodes"] = 1
        with pytest.raises(ConfigurationError):
            ExperimentConfig.from_dict(data)


class TestRoundRecordRoundTrip:
    def test_round_trip_is_exact(self):
        record = _record()
        rebuilt = RoundRecord.from_dict(_json_round_trip(record.to_dict()))
        assert rebuilt == record

    def test_numpy_scalars_become_native_floats(self):
        data = _record().to_dict()
        assert all(isinstance(v, (int, float)) for v in data.values())
        assert not any(isinstance(v, np.generic) for v in data.values())


class TestExperimentResultRoundTrip:
    def _result(self) -> ExperimentResult:
        return ExperimentResult(
            scheme="jwins",
            task="cifar10",
            num_nodes=8,
            rounds_completed=16,
            history=[_record(4), _record(8), _record(16)],
            total_bytes=np.float64(987654.25),
            total_metadata_bytes=1234.0,
            total_values_bytes=986420.25,
            simulated_time_seconds=321.5,
            target_accuracy=0.6,
            reached_target_at_round=8,
            execution="async",
            per_node_time_seconds=[310.0, 321.5, 299.875],
        )

    def test_round_trip_is_exact(self):
        result = self._result()
        rebuilt = ExperimentResult.from_dict(_json_round_trip(result.to_dict()))
        assert rebuilt == result
        # Derived views keep working on the rebuilt object.
        assert rebuilt.final_accuracy == result.final_accuracy
        assert rebuilt.clock_skew_seconds == result.clock_skew_seconds

    def test_none_fields_round_trip(self):
        result = ExperimentResult(
            scheme="full-sharing", task="toy", num_nodes=4, rounds_completed=0
        )
        rebuilt = ExperimentResult.from_dict(_json_round_trip(result.to_dict()))
        assert rebuilt == result
        assert rebuilt.target_accuracy is None
        assert rebuilt.reached_target_at_round is None

    def test_real_run_round_trip_is_exact(self, toy_task, small_config):
        from repro.baselines import full_sharing_factory
        from repro.simulation import run_experiment

        result = run_experiment(toy_task, full_sharing_factory(), small_config)
        rebuilt = ExperimentResult.from_dict(_json_round_trip(result.to_dict()))
        assert rebuilt == result
