"""Tests for the multi-level discrete wavelet transform."""

import numpy as np
import pytest

from repro.exceptions import WaveletError
from repro.wavelets.dwt import (
    dwt_single,
    idwt_single,
    max_decomposition_level,
    wavedec,
    waverec,
)


@pytest.mark.parametrize("wavelet", ["haar", "db2", "sym2", "db3", "db4", "sym4"])
@pytest.mark.parametrize("length", [16, 64, 100])
def test_single_level_perfect_reconstruction(wavelet, length):
    rng = np.random.default_rng(0)
    signal = rng.normal(size=length)
    approx, detail, padded = dwt_single(signal, wavelet)
    assert approx.size == detail.size == (length + length % 2) // 2
    restored = idwt_single(approx, detail, wavelet, padded=padded)
    assert np.allclose(restored, signal, atol=1e-10)


@pytest.mark.parametrize("wavelet", ["haar", "sym2", "db4"])
@pytest.mark.parametrize("length", [17, 33, 1001])
def test_multilevel_perfect_reconstruction_odd_lengths(wavelet, length):
    rng = np.random.default_rng(1)
    signal = rng.normal(size=length)
    coefficients = wavedec(signal, wavelet, levels=4)
    restored = waverec(coefficients)
    assert restored.size == length
    assert np.allclose(restored, signal, atol=1e-9)


def test_levels_clamped_to_maximum():
    signal = np.arange(20, dtype=float)
    coefficients = wavedec(signal, "sym2", levels=10)
    assert coefficients.levels == max_decomposition_level(20, "sym2")


def test_zero_levels_is_identity():
    signal = np.arange(10, dtype=float)
    coefficients = wavedec(signal, "sym2", levels=0)
    assert coefficients.levels == 0
    assert np.allclose(waverec(coefficients), signal)


def test_energy_preserved_for_even_lengths():
    """The periodized orthogonal DWT preserves the L2 norm (Parseval)."""

    rng = np.random.default_rng(2)
    signal = rng.normal(size=256)
    coefficients = wavedec(signal, "sym2", levels=4)
    total = sum(float(np.sum(band**2)) for band in coefficients.arrays)
    assert total == pytest.approx(float(np.sum(signal**2)), rel=1e-10)


def test_linearity_of_transform():
    rng = np.random.default_rng(3)
    a = rng.normal(size=128)
    b = rng.normal(size=128)
    ca = np.concatenate(wavedec(a, "db2", 3).arrays)
    cb = np.concatenate(wavedec(b, "db2", 3).arrays)
    cab = np.concatenate(wavedec(2.0 * a - 0.5 * b, "db2", 3).arrays)
    assert np.allclose(cab, 2.0 * ca - 0.5 * cb, atol=1e-10)


def test_max_level_decreases_with_filter_length():
    assert max_decomposition_level(64, "haar") >= max_decomposition_level(64, "db4")


def test_empty_signal_raises():
    with pytest.raises(WaveletError):
        wavedec(np.zeros(0), "sym2", 2)


def test_too_short_signal_for_single_level_raises():
    with pytest.raises(WaveletError):
        dwt_single(np.zeros(1), "haar")


def test_mismatched_band_lengths_raise():
    with pytest.raises(WaveletError):
        idwt_single(np.zeros(4), np.zeros(5), "haar")


def test_negative_levels_raise():
    with pytest.raises(WaveletError):
        wavedec(np.zeros(32), "sym2", levels=-1)


def test_coefficient_count_close_to_signal_length():
    signal = np.zeros(1000)
    coefficients = wavedec(signal, "sym2", 4)
    assert signal.size <= coefficients.total_size <= signal.size + coefficients.levels
