"""Tests for the multi-level discrete wavelet transform."""

import numpy as np
import pytest

from repro.exceptions import WaveletError
from repro.wavelets.dwt import (
    dwt_single,
    idwt_single,
    max_decomposition_level,
    wavedec,
    waverec,
)


@pytest.mark.parametrize("wavelet", ["haar", "db2", "sym2", "db3", "db4", "sym4"])
@pytest.mark.parametrize("length", [16, 64, 100])
def test_single_level_perfect_reconstruction(wavelet, length):
    rng = np.random.default_rng(0)
    signal = rng.normal(size=length)
    approx, detail, padded = dwt_single(signal, wavelet)
    assert approx.size == detail.size == (length + length % 2) // 2
    restored = idwt_single(approx, detail, wavelet, padded=padded)
    assert np.allclose(restored, signal, atol=1e-10)


@pytest.mark.parametrize("wavelet", ["haar", "sym2", "db4"])
@pytest.mark.parametrize("length", [17, 33, 1001])
def test_multilevel_perfect_reconstruction_odd_lengths(wavelet, length):
    rng = np.random.default_rng(1)
    signal = rng.normal(size=length)
    coefficients = wavedec(signal, wavelet, levels=4)
    restored = waverec(coefficients)
    assert restored.size == length
    assert np.allclose(restored, signal, atol=1e-9)


def test_levels_clamped_to_maximum():
    signal = np.arange(20, dtype=float)
    coefficients = wavedec(signal, "sym2", levels=10)
    assert coefficients.levels == max_decomposition_level(20, "sym2")


def test_zero_levels_is_identity():
    signal = np.arange(10, dtype=float)
    coefficients = wavedec(signal, "sym2", levels=0)
    assert coefficients.levels == 0
    assert np.allclose(waverec(coefficients), signal)


def test_energy_preserved_for_even_lengths():
    """The periodized orthogonal DWT preserves the L2 norm (Parseval)."""

    rng = np.random.default_rng(2)
    signal = rng.normal(size=256)
    coefficients = wavedec(signal, "sym2", levels=4)
    total = sum(float(np.sum(band**2)) for band in coefficients.arrays)
    assert total == pytest.approx(float(np.sum(signal**2)), rel=1e-10)


def test_linearity_of_transform():
    rng = np.random.default_rng(3)
    a = rng.normal(size=128)
    b = rng.normal(size=128)
    ca = np.concatenate(wavedec(a, "db2", 3).arrays)
    cb = np.concatenate(wavedec(b, "db2", 3).arrays)
    cab = np.concatenate(wavedec(2.0 * a - 0.5 * b, "db2", 3).arrays)
    assert np.allclose(cab, 2.0 * ca - 0.5 * cb, atol=1e-10)


def test_max_level_decreases_with_filter_length():
    assert max_decomposition_level(64, "haar") >= max_decomposition_level(64, "db4")


def test_empty_signal_raises():
    with pytest.raises(WaveletError):
        wavedec(np.zeros(0), "sym2", 2)


def test_too_short_signal_for_single_level_raises():
    with pytest.raises(WaveletError):
        dwt_single(np.zeros(1), "haar")


def test_mismatched_band_lengths_raise():
    with pytest.raises(WaveletError):
        idwt_single(np.zeros(4), np.zeros(5), "haar")


def test_negative_levels_raise():
    with pytest.raises(WaveletError):
        wavedec(np.zeros(32), "sym2", levels=-1)


def test_coefficient_count_close_to_signal_length():
    signal = np.zeros(1000)
    coefficients = wavedec(signal, "sym2", 4)
    assert signal.size <= coefficients.total_size <= signal.size + coefficients.levels


# -- vectorized vs reference equivalence ------------------------------------------------
#
# The vectorized analysis (strided windows) and synthesis (cached gather
# matrices) must reproduce the original scalar loops bit for bit — the
# sync-mode determinism pin depends on it.

def test_vectorized_dwt_bit_identical_to_reference_all_wavelets():
    from repro.wavelets.dwt import dwt_single_reference, idwt_single_reference
    from repro.wavelets.filters import available_wavelets

    rng = np.random.default_rng(7)
    for wavelet in available_wavelets():
        for length in (2, 5, 16, 33, 100, 257):
            signal = rng.standard_normal(length)
            approx, detail, padded = dwt_single(signal, wavelet)
            ref_approx, ref_detail, ref_padded = dwt_single_reference(signal, wavelet)
            assert padded == ref_padded
            assert approx.tobytes() == ref_approx.tobytes(), (wavelet, length)
            assert detail.tobytes() == ref_detail.tobytes(), (wavelet, length)
            restored = idwt_single(approx, detail, wavelet, padded)
            ref_restored = idwt_single_reference(approx, detail, wavelet, padded)
            assert restored.tobytes() == ref_restored.tobytes(), (wavelet, length)


@pytest.mark.parametrize("length", [3, 17, 101, 1001])
def test_odd_length_signals_bit_identical_to_reference(length):
    # Odd lengths exercise the zero-padding path through the vectorized DWT.
    from repro.wavelets.dwt import dwt_single_reference, idwt_single_reference

    rng = np.random.default_rng(length)
    signal = rng.standard_normal(length)
    approx, detail, padded = dwt_single(signal, "sym2")
    ref = dwt_single_reference(signal, "sym2")
    assert padded is True and ref[2] is True
    assert approx.tobytes() == ref[0].tobytes()
    assert detail.tobytes() == ref[1].tobytes()
    assert (
        idwt_single(approx, detail, "sym2", padded).tobytes()
        == idwt_single_reference(approx, detail, "sym2", padded).tobytes()
    )


def test_zero_signal_probe_bit_identical():
    # WaveletTransform's layout probe decomposes an all-zeros vector; signed
    # zeros from negative taps must not leak into the vectorized output.
    from repro.wavelets.dwt import dwt_single_reference

    for wavelet in ("haar", "sym2", "db4"):
        approx, detail, _ = dwt_single(np.zeros(64), wavelet)
        ref_approx, ref_detail, _ = dwt_single_reference(np.zeros(64), wavelet)
        assert approx.tobytes() == ref_approx.tobytes()
        assert detail.tobytes() == ref_detail.tobytes()


def test_synthesis_gather_cache_reused_across_calls():
    from repro.wavelets import dwt as dwt_module

    dwt_module._SYNTHESIS_GATHER_CACHE.clear()
    signal = np.random.default_rng(3).standard_normal(64)
    approx, detail, padded = dwt_single(signal, "sym2")
    idwt_single(approx, detail, "sym2", padded)
    entries = len(dwt_module._SYNTHESIS_GATHER_CACHE)
    assert entries == 2  # one per filter (dec_lo / dec_hi) at this length
    idwt_single(approx, detail, "sym2", padded)
    assert len(dwt_module._SYNTHESIS_GATHER_CACHE) == entries
