"""Tests for the ModelTransform abstractions."""

import numpy as np
import pytest

from repro.exceptions import WaveletError
from repro.wavelets.transform import (
    FourierTransform,
    IdentityTransform,
    WaveletTransform,
    make_transform,
)


@pytest.mark.parametrize("size", [50, 333, 1000])
def test_wavelet_transform_roundtrip(size):
    rng = np.random.default_rng(size)
    transform = WaveletTransform(size, wavelet="sym2", levels=4)
    vector = rng.normal(size=size)
    assert np.allclose(transform.inverse(transform.forward(vector)), vector, atol=1e-9)


def test_wavelet_transform_is_linear():
    rng = np.random.default_rng(0)
    transform = WaveletTransform(200)
    a, b = rng.normal(size=200), rng.normal(size=200)
    lhs = transform.forward(3.0 * a + b)
    rhs = 3.0 * transform.forward(a) + transform.forward(b)
    assert np.allclose(lhs, rhs, atol=1e-10)


def test_identity_transform_is_identity():
    transform = IdentityTransform(10)
    vector = np.arange(10.0)
    assert np.array_equal(transform.forward(vector), vector)
    assert np.array_equal(transform.inverse(vector), vector)
    assert transform.coefficient_size() == 10


def test_fourier_transform_roundtrip():
    transform = FourierTransform(77)
    vector = np.random.default_rng(5).normal(size=77)
    assert np.allclose(transform.inverse(transform.forward(vector)), vector, atol=1e-10)


def test_make_transform_factory_names():
    assert isinstance(make_transform("wavelet", 64), WaveletTransform)
    assert isinstance(make_transform("fft", 64), FourierTransform)
    assert isinstance(make_transform("identity", 64), IdentityTransform)
    with pytest.raises(WaveletError):
        make_transform("dct", 64)


def test_wrong_input_length_raises():
    transform = WaveletTransform(100)
    with pytest.raises(WaveletError):
        transform.forward(np.zeros(99))


def test_levels_clamped_for_tiny_models():
    transform = WaveletTransform(10, wavelet="sym2", levels=4)
    assert transform.levels <= 2
    vector = np.random.default_rng(1).normal(size=10)
    assert np.allclose(transform.inverse(transform.forward(vector)), vector, atol=1e-10)


def test_nonpositive_model_size_raises():
    with pytest.raises(WaveletError):
        IdentityTransform(0)


def test_sparsifying_low_frequency_band_keeps_most_energy():
    """Keeping only the deepest approximation band reconstructs a smooth signal well."""

    size = 512
    grid = np.linspace(0.0, 4.0 * np.pi, size)
    smooth = np.sin(grid) + 0.5 * np.cos(0.5 * grid)
    transform = WaveletTransform(size, wavelet="sym2", levels=4)
    coefficients = transform.forward(smooth)
    kept = np.zeros_like(coefficients)
    band = transform.layout.band_slices()[0]
    kept[band] = coefficients[band]
    reconstructed = transform.inverse(kept)
    energy_ratio = np.sum(reconstructed**2) / np.sum(smooth**2)
    assert energy_ratio > 0.9
