"""Tests for wavelet filter banks."""

import numpy as np
import pytest

from repro.exceptions import WaveletError
from repro.wavelets.filters import available_wavelets, get_filter_bank


@pytest.mark.parametrize("name", available_wavelets())
def test_lowpass_sums_to_sqrt2(name):
    bank = get_filter_bank(name)
    assert bank.dec_lo.sum() == pytest.approx(np.sqrt(2.0), abs=1e-10)


@pytest.mark.parametrize("name", available_wavelets())
def test_highpass_sums_to_zero(name):
    bank = get_filter_bank(name)
    assert bank.dec_hi.sum() == pytest.approx(0.0, abs=1e-10)


@pytest.mark.parametrize("name", available_wavelets())
def test_filters_are_orthonormal(name):
    bank = get_filter_bank(name)
    assert np.dot(bank.dec_lo, bank.dec_lo) == pytest.approx(1.0, abs=1e-10)
    assert np.dot(bank.dec_hi, bank.dec_hi) == pytest.approx(1.0, abs=1e-10)
    assert np.dot(bank.dec_lo, bank.dec_hi) == pytest.approx(0.0, abs=1e-10)


@pytest.mark.parametrize("name", available_wavelets())
def test_double_shift_orthogonality(name):
    """Shifted-by-two copies of the filters must be orthogonal (PR condition)."""

    bank = get_filter_bank(name)
    taps = bank.length
    for shift in range(2, taps, 2):
        low = np.dot(bank.dec_lo[:-shift], bank.dec_lo[shift:])
        high = np.dot(bank.dec_hi[:-shift], bank.dec_hi[shift:])
        assert low == pytest.approx(0.0, abs=1e-10)
        assert high == pytest.approx(0.0, abs=1e-10)


def test_sym2_is_alias_of_db2():
    assert np.allclose(get_filter_bank("sym2").dec_lo, get_filter_bank("db2").dec_lo)


def test_reconstruction_filters_are_reversed_decomposition():
    bank = get_filter_bank("db3")
    assert np.allclose(bank.rec_lo, bank.dec_lo[::-1])
    assert np.allclose(bank.rec_hi, bank.dec_hi[::-1])


def test_unknown_wavelet_raises():
    with pytest.raises(WaveletError):
        get_filter_bank("db99")


def test_available_wavelets_contains_paper_default():
    assert "sym2" in available_wavelets()
