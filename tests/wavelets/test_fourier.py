"""Tests for the packed real-FFT transform."""

import numpy as np
import pytest

from repro.exceptions import WaveletError
from repro.wavelets.fourier import fft_forward, fft_inverse


@pytest.mark.parametrize("length", [8, 9, 100, 101, 1024])
def test_roundtrip(length):
    rng = np.random.default_rng(length)
    signal = rng.normal(size=length)
    packed, layout = fft_forward(signal)
    assert packed.size == length
    assert np.allclose(fft_inverse(packed, layout), signal, atol=1e-10)


def test_dc_component_is_sum():
    signal = np.array([1.0, 2.0, 3.0, 4.0])
    packed, _ = fft_forward(signal)
    assert packed[0] == pytest.approx(signal.sum())


def test_empty_signal_raises():
    with pytest.raises(WaveletError):
        fft_forward(np.zeros(0))


def test_inverse_wrong_size_raises():
    packed, layout = fft_forward(np.arange(10.0))
    with pytest.raises(WaveletError):
        fft_inverse(packed[:-1], layout)
