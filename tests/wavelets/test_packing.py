"""Tests for coefficient packing."""

import numpy as np
import pytest

from repro.exceptions import WaveletError
from repro.wavelets.dwt import wavedec, waverec
from repro.wavelets.packing import pack_coefficients, unpack_coefficients


def test_pack_unpack_roundtrip():
    rng = np.random.default_rng(0)
    signal = rng.normal(size=300)
    coefficients = wavedec(signal, "sym2", 4)
    vector, layout = pack_coefficients(coefficients)
    assert vector.size == layout.total_size
    restored = unpack_coefficients(vector, layout)
    assert np.allclose(waverec(restored), signal, atol=1e-9)


def test_band_slices_cover_vector_exactly():
    signal = np.random.default_rng(1).normal(size=128)
    _, layout = pack_coefficients(wavedec(signal, "db2", 3))
    slices = layout.band_slices()
    assert slices[0].start == 0
    assert slices[-1].stop == layout.total_size
    for previous, current in zip(slices, slices[1:]):
        assert previous.stop == current.start


def test_unpack_wrong_size_raises():
    signal = np.random.default_rng(2).normal(size=64)
    vector, layout = pack_coefficients(wavedec(signal, "haar", 2))
    with pytest.raises(WaveletError):
        unpack_coefficients(vector[:-1], layout)


def test_modifying_packed_vector_changes_reconstruction():
    signal = np.random.default_rng(3).normal(size=64)
    vector, layout = pack_coefficients(wavedec(signal, "sym2", 3))
    vector = vector.copy()
    vector[:] = 0.0
    reconstructed = waverec(unpack_coefficients(vector, layout))
    assert np.allclose(reconstructed, 0.0, atol=1e-12)
