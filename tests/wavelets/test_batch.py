"""Batched DWT kernels: per-row bit-identity with the single-signal path.

The arena engine (:mod:`repro.simulation.arena`) replaces per-node
``forward``/``inverse`` transform calls with one batched pass over a stacked
``(N, d)`` matrix.  Its determinism contract therefore rests entirely on the
guarantee pinned here: row ``r`` of every ``*_batch`` output is byte-for-byte
equal to the corresponding single-signal call on row ``r`` — across wavelets,
decomposition depths, odd signal lengths and single-row batches.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.exceptions import WaveletError
from repro.wavelets.dwt import (
    dwt_single,
    dwt_single_batch,
    idwt_single,
    idwt_single_batch,
    wavedec,
    wavedec_batch,
    waverec,
    waverec_batch,
)
from repro.wavelets.transform import FourierTransform, IdentityTransform, WaveletTransform

LENGTHS = [16, 64, 287, 1000]  # even, power-of-two, odd (the d=287 toy model), round
WAVELETS = ["haar", "sym2", "db4"]


def stacked_signals(rows: int, length: int, seed: int = 0) -> np.ndarray:
    return np.random.default_rng(seed).normal(size=(rows, length))


@pytest.mark.parametrize("length", LENGTHS)
@pytest.mark.parametrize("wavelet", WAVELETS)
def test_dwt_single_batch_matches_per_row(length, wavelet):
    signals = stacked_signals(5, length)
    approx, detail, padded = dwt_single_batch(signals, wavelet)
    for row in range(signals.shape[0]):
        ref_approx, ref_detail, ref_padded = dwt_single(signals[row], wavelet)
        assert padded == ref_padded
        np.testing.assert_array_equal(approx[row], ref_approx)
        np.testing.assert_array_equal(detail[row], ref_detail)


@pytest.mark.parametrize("length", LENGTHS)
@pytest.mark.parametrize("wavelet", WAVELETS)
def test_idwt_single_batch_matches_per_row(length, wavelet):
    signals = stacked_signals(5, length, seed=1)
    approx, detail, padded = dwt_single_batch(signals, wavelet)
    rebuilt = idwt_single_batch(approx, detail, wavelet, padded)
    for row in range(signals.shape[0]):
        np.testing.assert_array_equal(
            rebuilt[row], idwt_single(approx[row], detail[row], wavelet, padded)
        )


@pytest.mark.parametrize("length", LENGTHS)
@pytest.mark.parametrize("wavelet", WAVELETS)
@pytest.mark.parametrize("levels", [1, 4])
def test_wavedec_batch_matches_per_row(length, wavelet, levels):
    signals = stacked_signals(4, length, seed=2)
    bands, pad_flags = wavedec_batch(signals, wavelet, levels)
    for row in range(signals.shape[0]):
        reference = wavedec(signals[row], wavelet, levels)
        assert len(bands) == len(reference.arrays)
        assert pad_flags == reference.pad_flags
        for band_matrix, band_values in zip(bands, reference.arrays):
            np.testing.assert_array_equal(band_matrix[row], band_values)


@pytest.mark.parametrize("length", LENGTHS)
@pytest.mark.parametrize("wavelet", WAVELETS)
def test_waverec_batch_matches_per_row(length, wavelet):
    signals = stacked_signals(4, length, seed=3)
    bands, pad_flags = wavedec_batch(signals, wavelet, 4)
    rebuilt = waverec_batch(bands, pad_flags, wavelet, original_length=length)
    for row in range(signals.shape[0]):
        reference = wavedec(signals[row], wavelet, 4)
        np.testing.assert_array_equal(rebuilt[row], waverec(reference))


def test_single_row_batch_is_supported():
    """N=1: the arena engine's smallest stacking still round-trips exactly."""

    signals = stacked_signals(1, 287, seed=4)
    bands, pad_flags = wavedec_batch(signals, "sym2", 4)
    rebuilt = waverec_batch(bands, pad_flags, "sym2", original_length=287)
    np.testing.assert_array_equal(rebuilt[0], waverec(wavedec(signals[0], "sym2", 4)))


# -- ModelTransform batch entry points ---------------------------------------------


@pytest.mark.parametrize("model_size", [64, 287])
def test_wavelet_transform_batch_matches_per_row(model_size):
    transform = WaveletTransform(model_size)
    matrix = stacked_signals(6, model_size, seed=5)
    forward = transform.forward_batch(matrix)
    assert forward.shape == (6, transform.coefficient_size())
    for row in range(matrix.shape[0]):
        np.testing.assert_array_equal(forward[row], transform.forward(matrix[row]))
    inverse = transform.inverse_batch(forward)
    for row in range(matrix.shape[0]):
        np.testing.assert_array_equal(inverse[row], transform.inverse(forward[row]))


def test_identity_transform_batch_copies_rows():
    transform = IdentityTransform(32)
    matrix = stacked_signals(3, 32, seed=6)
    forward = transform.forward_batch(matrix)
    np.testing.assert_array_equal(forward, matrix)
    assert not np.shares_memory(forward, matrix)
    np.testing.assert_array_equal(transform.inverse_batch(forward), matrix)


def test_default_batch_implementation_loops_per_row():
    """Transforms without a batched kernel fall back to per-row calls."""

    transform = FourierTransform(48)
    matrix = stacked_signals(4, 48, seed=7)
    forward = transform.forward_batch(matrix)
    for row in range(matrix.shape[0]):
        np.testing.assert_array_equal(forward[row], transform.forward(matrix[row]))
    inverse = transform.inverse_batch(forward)
    for row in range(matrix.shape[0]):
        np.testing.assert_array_equal(inverse[row], transform.inverse(forward[row]))


def test_batch_shape_validation():
    transform = WaveletTransform(64)
    with pytest.raises(WaveletError):
        transform.forward_batch(np.zeros(64))  # 1-D: must be stacked
    with pytest.raises(WaveletError):
        transform.forward_batch(np.zeros((3, 63)))
    with pytest.raises(WaveletError):
        transform.inverse_batch(np.zeros((3, transform.coefficient_size() + 1)))
