"""Tests for the residual accumulator."""

import numpy as np
import pytest

from repro.exceptions import ConfigurationError
from repro.sparsification.accumulation import ResidualAccumulator


def test_add_accumulates_across_calls():
    accumulator = ResidualAccumulator(4)
    accumulator.add(np.array([1.0, 0.0, -1.0, 2.0]))
    accumulator.add(np.array([1.0, 1.0, 1.0, 1.0]))
    assert np.array_equal(accumulator.scores, [2.0, 1.0, 0.0, 3.0])


def test_reset_indices_zeroes_only_selected():
    accumulator = ResidualAccumulator(5)
    accumulator.add(np.arange(5.0))
    accumulator.reset_indices(np.array([1, 3]))
    assert np.array_equal(accumulator.scores, [0.0, 0.0, 2.0, 0.0, 4.0])


def test_reset_all():
    accumulator = ResidualAccumulator(3)
    accumulator.add(np.ones(3))
    accumulator.reset_all()
    assert np.array_equal(accumulator.scores, np.zeros(3))


def test_scores_view_is_read_only():
    accumulator = ResidualAccumulator(3)
    with pytest.raises(ValueError):
        accumulator.scores[0] = 1.0


def test_size_mismatch_raises():
    accumulator = ResidualAccumulator(3)
    with pytest.raises(ConfigurationError):
        accumulator.add(np.ones(4))


def test_reset_out_of_range_raises():
    accumulator = ResidualAccumulator(3)
    with pytest.raises(ConfigurationError):
        accumulator.reset_indices(np.array([5]))


def test_invalid_size_raises():
    with pytest.raises(ConfigurationError):
        ResidualAccumulator(0)


def test_slow_coordinates_eventually_dominate():
    """Accumulation lets small-but-steady changes overtake one-off spikes."""

    accumulator = ResidualAccumulator(2)
    accumulator.add(np.array([1.0, 0.3]))
    accumulator.reset_indices(np.array([0]))  # coordinate 0 was shared
    for _ in range(5):
        accumulator.add(np.array([0.05, 0.3]))
    assert accumulator.scores[1] > accumulator.scores[0]
