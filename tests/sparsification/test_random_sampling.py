"""Tests for random-sampling sparsification."""

import numpy as np
import pytest

from repro.exceptions import ConfigurationError
from repro.sparsification.random_sampling import RandomSamplingSparsifier


def test_selection_size_and_range():
    sparsifier = RandomSamplingSparsifier(seed=1)
    indices = sparsifier.select(np.zeros(100), 25)
    assert indices.size == 25
    assert indices.min() >= 0 and indices.max() < 100
    assert np.unique(indices).size == 25


def test_selection_changes_across_rounds():
    sparsifier = RandomSamplingSparsifier(seed=1)
    first = sparsifier.select(np.zeros(1000), 100)
    second = sparsifier.select(np.zeros(1000), 100)
    assert not np.array_equal(first, second)


def test_selection_reproducible_for_same_seed():
    a = RandomSamplingSparsifier(seed=9).select(np.zeros(500), 50)
    b = RandomSamplingSparsifier(seed=9).select(np.zeros(500), 50)
    assert np.array_equal(a, b)


def test_selection_independent_of_scores():
    sparsifier_a = RandomSamplingSparsifier(seed=3)
    sparsifier_b = RandomSamplingSparsifier(seed=3)
    a = sparsifier_a.select(np.zeros(200), 20)
    b = sparsifier_b.select(np.random.default_rng(0).normal(size=200), 20)
    assert np.array_equal(a, b)


def test_count_clamped_to_size():
    sparsifier = RandomSamplingSparsifier(seed=2)
    indices = sparsifier.select(np.zeros(10), 50)
    assert indices.size == 10


def test_invalid_count_raises():
    with pytest.raises(ConfigurationError):
        RandomSamplingSparsifier(seed=1).select(np.zeros(10), 0)


def test_last_seed_reflects_previous_selection():
    sparsifier = RandomSamplingSparsifier(seed=5)
    with pytest.raises(ConfigurationError):
        sparsifier.last_seed()
    sparsifier.select(np.zeros(10), 2)
    assert sparsifier.last_seed() == sparsifier.current_seed - 1
