"""Tests for TopK sparsification."""

import numpy as np
import pytest

from repro.exceptions import ConfigurationError
from repro.sparsification.base import fraction_to_count
from repro.sparsification.topk import TopKSparsifier, topk_indices


def test_topk_selects_largest_magnitudes():
    scores = np.array([0.1, -5.0, 2.0, 0.0, -3.0])
    indices = topk_indices(scores, 2)
    assert np.array_equal(indices, [1, 4])


def test_topk_indices_sorted():
    scores = np.random.default_rng(0).normal(size=100)
    indices = topk_indices(scores, 17)
    assert np.all(np.diff(indices) > 0)
    assert indices.size == 17


def test_topk_count_larger_than_size_returns_all():
    indices = topk_indices(np.arange(5.0), 10)
    assert np.array_equal(indices, np.arange(5))


def test_topk_count_zero_raises():
    with pytest.raises(ConfigurationError):
        topk_indices(np.arange(5.0), 0)


def test_topk_threshold_property():
    """Every selected score is at least as large as every rejected score."""

    scores = np.random.default_rng(1).normal(size=500)
    indices = topk_indices(scores, 50)
    selected = np.abs(scores[indices])
    rejected = np.abs(np.delete(scores, indices))
    assert selected.min() >= rejected.max() - 1e-12


def test_sparsifier_select_fraction():
    sparsifier = TopKSparsifier()
    scores = np.random.default_rng(2).normal(size=200)
    indices = sparsifier.select_fraction(scores, 0.25)
    assert indices.size == 50


def test_fraction_to_count_bounds():
    assert fraction_to_count(0.1, 100) == 10
    assert fraction_to_count(1.0, 7) == 7
    assert fraction_to_count(0.001, 100) == 1
    with pytest.raises(ConfigurationError):
        fraction_to_count(0.0, 100)
    with pytest.raises(ConfigurationError):
        fraction_to_count(1.5, 100)
