"""Tests for mixing-weight matrices."""

import numpy as np
import pytest

from repro.topology.graphs import random_regular_topology, ring_topology, star_topology
from repro.topology.weights import metropolis_hastings_weights, uniform_neighbor_weights


@pytest.fixture
def topology():
    return random_regular_topology(12, 4, np.random.default_rng(0))


def test_metropolis_hastings_doubly_stochastic(topology):
    weights = metropolis_hastings_weights(topology)
    assert np.allclose(weights.sum(axis=0), 1.0)
    assert np.allclose(weights.sum(axis=1), 1.0)
    assert np.all(weights >= -1e-12)


def test_metropolis_hastings_symmetric(topology):
    weights = metropolis_hastings_weights(topology)
    assert np.allclose(weights, weights.T)


def test_metropolis_hastings_zero_on_non_edges(topology):
    weights = metropolis_hastings_weights(topology)
    adjacency = topology.adjacency_matrix()
    off_diagonal = ~np.eye(topology.num_nodes, dtype=bool)
    assert np.all(weights[off_diagonal & (adjacency == 0)] == 0)


def test_metropolis_hastings_regular_graph_values(topology):
    """On a d-regular graph every edge weight is 1 / (d + 1)."""

    weights = metropolis_hastings_weights(topology)
    for u, v in topology.edges:
        assert weights[u, v] == pytest.approx(1.0 / 5.0)


def test_metropolis_hastings_star_graph_handles_degree_imbalance():
    weights = metropolis_hastings_weights(star_topology(6))
    assert np.allclose(weights.sum(axis=1), 1.0)
    assert np.all(np.diag(weights) >= 0)


def test_gossip_step_preserves_average(topology):
    weights = metropolis_hastings_weights(topology)
    values = np.random.default_rng(1).normal(size=(topology.num_nodes, 3))
    mixed = weights @ values
    assert np.allclose(mixed.mean(axis=0), values.mean(axis=0))


def test_repeated_gossip_converges_to_consensus():
    topology = ring_topology(8)
    weights = metropolis_hastings_weights(topology)
    values = np.random.default_rng(2).normal(size=8)
    mixed = values.copy()
    for _ in range(200):
        mixed = weights @ mixed
    assert np.allclose(mixed, values.mean(), atol=1e-6)


def test_uniform_neighbor_weights_row_stochastic(topology):
    weights = uniform_neighbor_weights(topology)
    assert np.allclose(weights.sum(axis=1), 1.0)
    assert np.all(weights >= 0)
