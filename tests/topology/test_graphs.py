"""Tests for communication topologies."""

import numpy as np
import pytest

from repro.exceptions import TopologyError
from repro.topology.graphs import (
    DynamicTopology,
    Topology,
    fully_connected_topology,
    random_regular_topology,
    ring_topology,
    star_topology,
)


def test_random_regular_topology_degrees():
    topology = random_regular_topology(16, 4, np.random.default_rng(0))
    assert topology.num_nodes == 16
    for node in range(16):
        assert topology.degree(node) == 4
    assert topology.is_connected()


def test_random_regular_topology_is_deterministic_per_rng():
    a = random_regular_topology(12, 4, np.random.default_rng(7))
    b = random_regular_topology(12, 4, np.random.default_rng(7))
    assert a.edges == b.edges


def test_random_regular_odd_product_raises():
    with pytest.raises(TopologyError):
        random_regular_topology(5, 3, np.random.default_rng(0))


def test_random_regular_degree_too_large_raises():
    with pytest.raises(TopologyError):
        random_regular_topology(4, 4, np.random.default_rng(0))


def test_ring_topology_structure():
    topology = ring_topology(6)
    assert len(topology.edges) == 6
    assert topology.neighbors(0) == [1, 5]
    assert topology.is_connected()


def test_fully_connected_topology():
    topology = fully_connected_topology(5)
    assert len(topology.edges) == 10
    for node in range(5):
        assert topology.degree(node) == 4


def test_star_topology():
    topology = star_topology(7, center=2)
    assert topology.degree(2) == 6
    assert all(topology.degree(node) == 1 for node in range(7) if node != 2)


def test_star_invalid_center_raises():
    with pytest.raises(TopologyError):
        star_topology(4, center=9)


def test_topology_rejects_self_loops():
    with pytest.raises(TopologyError):
        Topology(num_nodes=3, edges=((0, 0),))


def test_topology_rejects_unknown_nodes():
    with pytest.raises(TopologyError):
        Topology(num_nodes=3, edges=((0, 5),))


def test_adjacency_matrix_symmetric():
    topology = random_regular_topology(10, 3, np.random.default_rng(1))
    matrix = topology.adjacency_matrix()
    assert np.array_equal(matrix, matrix.T)
    assert matrix.sum() == 10 * 3


def test_dynamic_topology_changes_every_round():
    dynamic = DynamicTopology(12, 4, np.random.default_rng(2))
    first = dynamic.current.edges
    second = dynamic.advance().edges
    third = dynamic.advance().edges
    assert dynamic.current.edges == third
    assert first != second or second != third
    assert all(
        dynamic.current.degree(node) == 4 for node in range(12)
    )
