"""Tests for topology generators and the TopologyPolicy layer."""

from __future__ import annotations

import json

import numpy as np
import pytest

from repro.exceptions import ConfigurationError, TopologyError
from repro.topology import (
    TOPOLOGY_GENERATORS,
    GeneratorPolicy,
    TopologyPolicy,
    clustered_topology,
    random_regular_topology,
    small_world_topology,
    topology_policy_from_dict,
)


@pytest.fixture
def rng():
    return np.random.default_rng(42)


class TestSmallWorld:
    def test_connected_and_correct_size(self, rng):
        topology = small_world_topology(20, 4, 0.2, rng)
        assert topology.num_nodes == 20
        assert topology.is_connected()

    def test_beta_zero_is_a_ring_lattice(self, rng):
        topology = small_world_topology(12, 4, 0.0, rng)
        # Every node keeps exactly its k ring neighbors when nothing rewires.
        assert all(topology.degree(node) == 4 for node in range(12))

    def test_rejects_bad_parameters(self, rng):
        with pytest.raises(TopologyError):
            small_world_topology(10, 1, 0.2, rng)
        with pytest.raises(TopologyError):
            small_world_topology(10, 10, 0.2, rng)
        with pytest.raises(TopologyError):
            small_world_topology(10, 4, 1.5, rng)

    def test_deterministic_given_rng_state(self):
        first = small_world_topology(16, 4, 0.3, np.random.default_rng(7))
        second = small_world_topology(16, 4, 0.3, np.random.default_rng(7))
        assert first.edges == second.edges


class TestClustered:
    def test_connected_with_contiguous_clusters(self, rng):
        topology = clustered_topology(16, 2, 2, rng)
        assert topology.num_nodes == 16
        assert topology.is_connected()

    def test_large_clusters_stay_sparse(self, rng):
        topology = clustered_topology(32, 2, 1, rng)
        # 16-node clusters get a 4-regular interior, not a 16-clique.
        max_degree = max(topology.degree(node) for node in range(32))
        assert max_degree < 15

    def test_two_clusters_respect_the_bridge_budget(self, rng):
        topology = clustered_topology(16, 2, 1, rng)
        crossings = [
            (u, v) for u, v in topology.edges if (u < 8) != (v < 8)
        ]
        assert len(crossings) == 1  # the cluster pair is wired once, not twice

    def test_rejects_bad_parameters(self, rng):
        with pytest.raises(TopologyError):
            clustered_topology(16, 1, 2, rng)
        with pytest.raises(TopologyError):
            clustered_topology(6, 4, 2, rng)
        with pytest.raises(TopologyError):
            clustered_topology(16, 2, 0, rng)


class TestGeneratorPolicy:
    def test_default_matches_plain_random_regular(self):
        policy = GeneratorPolicy()
        sampled = policy.initial(10, 4, np.random.default_rng(3))
        direct = random_regular_topology(10, 4, np.random.default_rng(3))
        assert sampled.edges == direct.edges

    def test_satisfies_the_protocol(self):
        assert isinstance(GeneratorPolicy(), TopologyPolicy)

    def test_static_policy_never_rewires(self, rng):
        policy = GeneratorPolicy(rewire_every=0)
        assert policy.rewire(5, 10, 4, rng) is None

    def test_rewire_every_round(self, rng):
        policy = GeneratorPolicy(rewire_every=1)
        assert policy.rewire(0, 10, 4, rng) is None  # round 0 keeps the initial graph
        assert policy.rewire(1, 10, 4, rng) is not None
        assert policy.rewire(2, 10, 4, rng) is not None

    def test_periodic_rewiring(self, rng):
        policy = GeneratorPolicy(rewire_every=3)
        fires = [r for r in range(10) if policy.rewire(r, 10, 4, rng) is not None]
        assert fires == [3, 6, 9]

    def test_every_registered_generator_builds(self, rng):
        for name in TOPOLOGY_GENERATORS:
            topology = GeneratorPolicy(generator=name).initial(12, 4, rng)
            assert topology.num_nodes == 12
            assert topology.is_connected()

    def test_unknown_generator_rejected(self):
        with pytest.raises(ConfigurationError, match="unknown topology generator"):
            GeneratorPolicy(generator="torus")

    def test_unknown_parameter_rejected_at_sampling(self, rng):
        policy = GeneratorPolicy(generator="ring", params=(("twist", 3),))
        with pytest.raises(ConfigurationError, match="invalid parameters"):
            policy.initial(8, 2, rng)

    def test_params_are_canonically_sorted(self):
        a = GeneratorPolicy(generator="clustered", params=(("num_clusters", 2), ("bridges", 1)))
        b = GeneratorPolicy(generator="clustered", params=(("bridges", 1), ("num_clusters", 2)))
        assert a == b
        assert a.params == (("bridges", 1), ("num_clusters", 2))

    def test_round_trip_is_exact(self):
        policy = GeneratorPolicy(
            generator="small-world", rewire_every=2, params=(("beta", 0.4),)
        )
        rebuilt = topology_policy_from_dict(json.loads(json.dumps(policy.to_dict())))
        assert rebuilt == policy

    def test_from_dict_rejects_unknown_fields(self):
        with pytest.raises(ConfigurationError, match="unknown topology-policy"):
            GeneratorPolicy.from_dict({"generator": "ring", "cadence": 2})
