"""Tests for the Dataset and LearningTask abstractions."""

import numpy as np
import pytest

from repro.datasets.base import (
    Dataset,
    classification_accuracy,
    iterate_minibatches,
    rating_accuracy,
)
from repro.exceptions import DatasetError


def _dataset(samples=10):
    inputs = np.arange(samples * 2, dtype=float).reshape(samples, 2)
    targets = np.arange(samples)
    return Dataset(inputs, targets)


def test_len_and_getitem():
    dataset = _dataset(5)
    assert len(dataset) == 5
    x, y = dataset[3]
    assert np.array_equal(x, [6.0, 7.0])
    assert y == 3


def test_mismatched_lengths_raise():
    with pytest.raises(DatasetError):
        Dataset(np.zeros((3, 2)), np.zeros(4))


def test_client_ids_length_checked():
    with pytest.raises(DatasetError):
        Dataset(np.zeros((3, 2)), np.zeros(3), client_ids=np.zeros(2))


def test_subset_preserves_client_ids():
    dataset = Dataset(np.zeros((4, 2)), np.arange(4), client_ids=np.array([0, 0, 1, 1]))
    sub = dataset.subset(np.array([2, 3]))
    assert len(sub) == 2
    assert np.array_equal(sub.client_ids, [1, 1])


def test_subset_out_of_range_raises():
    with pytest.raises(DatasetError):
        _dataset(3).subset(np.array([5]))


def test_batch_returns_requested_rows():
    dataset = _dataset(6)
    inputs, targets = dataset.batch(np.array([0, 5]))
    assert inputs.shape == (2, 2)
    assert np.array_equal(targets, [0, 5])


def test_iterate_minibatches_covers_dataset_once():
    dataset = _dataset(10)
    seen = []
    for inputs, targets in iterate_minibatches(dataset, batch_size=3):
        seen.extend(targets.tolist())
    assert sorted(seen) == list(range(10))


def test_iterate_minibatches_shuffles_with_rng():
    dataset = _dataset(32)
    ordered = [t for _, targets in iterate_minibatches(dataset, 8) for t in targets]
    shuffled = [
        t
        for _, targets in iterate_minibatches(dataset, 8, np.random.default_rng(0))
        for t in targets
    ]
    assert sorted(ordered) == sorted(shuffled)
    assert ordered != shuffled


def test_iterate_minibatches_invalid_batch_size():
    with pytest.raises(DatasetError):
        list(iterate_minibatches(_dataset(4), 0))


def test_classification_accuracy():
    outputs = np.array([[0.9, 0.1], [0.2, 0.8], [0.6, 0.4], [0.3, 0.7]])
    targets = np.array([0, 1, 1, 1])
    assert classification_accuracy(outputs, targets) == pytest.approx(0.75)


def test_rating_accuracy_within_tolerance():
    predictions = np.array([3.0, 4.6, 1.0])
    targets = np.array([3.4, 4.0, 2.0])
    assert rating_accuracy(predictions, targets) == pytest.approx(1 / 3)


def test_learning_task_model_size(toy_task):
    assert toy_task.model_size > 0
    model = toy_task.make_model(np.random.default_rng(0))
    assert model.num_parameters == toy_task.model_size
