"""Tests for the synthetic data generators."""

import numpy as np
import pytest

from repro.datasets.synthetic import (
    make_class_images,
    make_client_character_sequences,
    make_client_images,
    make_rating_triples,
)
from repro.exceptions import DatasetError


def test_class_images_shapes_and_labels():
    rng = np.random.default_rng(0)
    images, labels = make_class_images(rng, 50, 4, image_size=8, channels=3)
    assert images.shape == (50, 3, 8, 8)
    assert labels.shape == (50,)
    assert set(np.unique(labels)).issubset(set(range(4)))


def test_class_images_are_class_separable():
    """Noise-free samples from the same class are identical; different classes differ."""

    rng = np.random.default_rng(1)
    images, labels = make_class_images(rng, 100, 3, image_size=8, channels=1, noise=0.0)
    class0 = images[labels == 0]
    class1 = images[labels == 1]
    assert np.allclose(class0[0], class0[1])
    assert not np.allclose(class0[0], class1[0])


def test_class_images_invalid_arguments():
    rng = np.random.default_rng(2)
    with pytest.raises(DatasetError):
        make_class_images(rng, 0, 3)
    with pytest.raises(DatasetError):
        make_class_images(rng, 10, 1)


def test_client_images_grouping_and_class_restriction():
    rng = np.random.default_rng(3)
    images, labels, clients = make_client_images(
        rng, num_clients=6, samples_per_client=10, num_classes=8, classes_per_client=2,
        image_size=8,
    )
    assert images.shape[0] == labels.shape[0] == clients.shape[0] == 60
    for client in range(6):
        client_labels = labels[clients == client]
        assert len(client_labels) == 10
        assert np.unique(client_labels).size <= 2


def test_rating_triples_ranges_and_clients():
    rng = np.random.default_rng(4)
    pairs, ratings, clients = make_rating_triples(
        rng, num_users=5, num_items=20, samples_per_user=6
    )
    assert pairs.shape == (30, 2)
    assert np.all((ratings >= 1.0) & (ratings <= 5.0))
    assert np.array_equal(clients, pairs[:, 0])
    assert pairs[:, 1].max() < 20


def test_rating_triples_items_unique_per_user():
    rng = np.random.default_rng(5)
    pairs, _, _ = make_rating_triples(rng, num_users=3, num_items=10, samples_per_user=8)
    for user in range(3):
        items = pairs[pairs[:, 0] == user, 1]
        assert np.unique(items).size == items.size


def test_character_sequences_shapes_and_vocab():
    rng = np.random.default_rng(6)
    sequences, targets, clients = make_client_character_sequences(
        rng, num_clients=4, samples_per_client=5, vocab_size=12, sequence_length=7
    )
    assert sequences.shape == (20, 7)
    assert targets.shape == (20,)
    assert clients.shape == (20,)
    assert sequences.max() < 12 and sequences.min() >= 0
    assert targets.max() < 12


def test_character_sequences_are_predictable():
    """With highly deterministic transitions, the next character correlates with the last."""

    rng = np.random.default_rng(7)
    sequences, targets, _ = make_client_character_sequences(
        rng, num_clients=2, samples_per_client=200, vocab_size=6, sequence_length=5,
        determinism=50.0, styles=1,
    )
    last_chars = sequences[:, -1]
    # For a near-deterministic chain the most likely next character given the
    # last character dominates, so a frequency predictor beats chance by far.
    per_char_predictability = []
    for char in np.unique(last_chars):
        char_targets = targets[last_chars == char]
        counts = np.bincount(char_targets, minlength=6)
        per_char_predictability.append(counts.max() / counts.sum())
    assert np.mean(per_char_predictability) > 0.7
    assert np.mean(per_char_predictability) > 1.0 / 6.0 + 0.2


def test_character_sequences_invalid_arguments():
    rng = np.random.default_rng(8)
    with pytest.raises(DatasetError):
        make_client_character_sequences(rng, 2, 2, vocab_size=1)
