"""Tests for the five paper workload task factories."""

import numpy as np
import pytest

from repro.datasets import (
    TASK_FACTORIES,
    make_celeba_task,
    make_cifar10_task,
    make_femnist_task,
    make_movielens_task,
    make_shakespeare_task,
)


def test_registry_contains_all_five_datasets():
    assert set(TASK_FACTORIES) == {"cifar10", "femnist", "celeba", "shakespeare", "movielens"}


def test_cifar10_task_shapes():
    task = make_cifar10_task(seed=1, train_samples=64, test_samples=32)
    assert task.train.inputs.shape == (64, 3, 16, 16)
    assert task.test.inputs.shape == (32, 3, 16, 16)
    assert task.train.client_ids is None
    model = task.make_model(np.random.default_rng(0))
    outputs = model.forward(task.test.inputs[:4])
    assert outputs.shape == (4, 10)


def test_cifar10_task_deterministic_given_seed():
    a = make_cifar10_task(seed=5, train_samples=32, test_samples=16)
    b = make_cifar10_task(seed=5, train_samples=32, test_samples=16)
    assert np.array_equal(a.train.inputs, b.train.inputs)
    assert np.array_equal(a.train.targets, b.train.targets)


def test_cifar10_train_and_test_share_prototypes():
    """A model that fits the training set must transfer to the test set."""

    task = make_cifar10_task(seed=2, train_samples=128, test_samples=64, noise=0.3)
    # Nearest-prototype classification using the train class means.
    train, test = task.train, task.test
    means = np.stack(
        [train.inputs[train.targets == c].mean(axis=0).ravel() for c in range(10)]
    )
    distances = ((test.inputs.reshape(len(test), -1)[:, None, :] - means[None]) ** 2).sum(-1)
    accuracy = float(np.mean(distances.argmin(axis=1) == test.targets))
    assert accuracy > 0.8


def test_femnist_task_has_clients():
    task = make_femnist_task(seed=1, num_clients=12, samples_per_client=8)
    assert task.train.client_ids is not None
    assert task.train.inputs.shape[1:] == (1, 16, 16)
    assert np.unique(task.train.client_ids).size > 1


def test_celeba_task_binary_labels():
    task = make_celeba_task(seed=1, num_clients=10, samples_per_client=8)
    assert set(np.unique(task.train.targets)).issubset({0, 1})
    assert task.train.inputs.shape[1] == 3


def test_shakespeare_task_sequences():
    task = make_shakespeare_task(seed=1, num_clients=8, samples_per_client=6, sequence_length=9)
    assert task.train.inputs.shape[1] == 9
    assert task.train.inputs.dtype.kind == "i"
    model = task.make_model(np.random.default_rng(0))
    assert model.forward(task.train.inputs[:3]).shape[1] == 20


def test_movielens_task_model_and_metric():
    task = make_movielens_task(seed=1, num_users=10, num_items=12, samples_per_user=6)
    model = task.make_model(np.random.default_rng(0))
    predictions = model.forward(task.test.inputs[:5])
    assert predictions.shape == (5,)
    accuracy = task.accuracy_fn(predictions, task.test.targets[:5])
    assert 0.0 <= accuracy <= 1.0


@pytest.mark.parametrize("name", sorted(TASK_FACTORIES))
def test_every_task_is_trainable_one_step(name):
    """One SGD step on every task must run end to end and produce finite loss."""

    factory = TASK_FACTORIES[name]
    task = (
        factory(seed=3, train_samples=32, test_samples=16)
        if name == "cifar10"
        else factory(seed=3)
    )
    model = task.make_model(np.random.default_rng(0))
    loss = task.make_loss()
    inputs, targets = task.train.batch(np.arange(min(8, len(task.train))))
    model.zero_grad()
    value = loss.forward(model.forward(inputs), targets)
    model.backward(loss.backward())
    assert np.isfinite(value)
