"""Tests for non-IID data partitioning."""

import numpy as np
import pytest

from repro.datasets.base import Dataset
from repro.datasets.partition import (
    client_partition,
    iid_partition,
    partition_dataset,
    shard_partition,
)
from repro.exceptions import DatasetError


def _labels(num_samples=200, num_classes=10, seed=0):
    return np.random.default_rng(seed).integers(0, num_classes, size=num_samples)


def test_iid_partition_covers_all_samples():
    parts = iid_partition(100, 4, np.random.default_rng(0))
    merged = np.sort(np.concatenate(parts))
    assert np.array_equal(merged, np.arange(100))
    assert all(20 <= len(p) <= 30 for p in parts)


def test_iid_partition_too_many_nodes_raises():
    with pytest.raises(DatasetError):
        iid_partition(3, 4, np.random.default_rng(0))


def test_shard_partition_is_a_partition():
    labels = _labels()
    parts = shard_partition(labels, 8, np.random.default_rng(1), shards_per_node=2)
    merged = np.sort(np.concatenate(parts))
    assert np.array_equal(merged, np.arange(labels.size))


def test_shard_partition_limits_classes_per_node():
    """With 2 shards per node each node sees at most ~4 distinct classes (paper setup)."""

    labels = _labels(num_samples=1000)
    parts = shard_partition(labels, 10, np.random.default_rng(2), shards_per_node=2)
    for part in parts:
        assert np.unique(labels[part]).size <= 4


def test_shard_partition_more_shards_more_classes():
    labels = _labels(num_samples=1000)
    two = shard_partition(labels, 10, np.random.default_rng(3), shards_per_node=2)
    four = shard_partition(labels, 10, np.random.default_rng(3), shards_per_node=4)
    mean_classes_two = np.mean([np.unique(labels[p]).size for p in two])
    mean_classes_four = np.mean([np.unique(labels[p]).size for p in four])
    assert mean_classes_four > mean_classes_two


def test_shard_partition_too_few_samples_raises():
    with pytest.raises(DatasetError):
        shard_partition(_labels(10), 8, np.random.default_rng(0), shards_per_node=2)


def test_client_partition_keeps_clients_whole():
    clients = np.repeat(np.arange(12), 5)
    parts = client_partition(clients, 4, np.random.default_rng(4))
    merged = np.sort(np.concatenate(parts))
    assert np.array_equal(merged, np.arange(clients.size))
    for part in parts:
        part_clients = np.unique(clients[part])
        # Every client in this node must have all of its 5 samples here.
        assert len(part) == 5 * part_clients.size


def test_client_partition_fewer_clients_than_nodes_raises():
    with pytest.raises(DatasetError):
        client_partition(np.array([0, 0, 1, 1]), 3, np.random.default_rng(0))


def test_partition_dataset_auto_uses_clients_when_available():
    dataset = Dataset(np.zeros((20, 2)), np.zeros(20, dtype=int), client_ids=np.repeat(np.arange(4), 5))
    parts = partition_dataset(dataset, 2, np.random.default_rng(0), scheme="auto")
    assert sum(len(p) for p in parts) == 20


def test_partition_dataset_auto_falls_back_to_shards():
    dataset = Dataset(np.zeros((40, 2)), np.tile(np.arange(4), 10))
    parts = partition_dataset(dataset, 4, np.random.default_rng(0), scheme="auto")
    assert sum(len(p) for p in parts) == 40


def test_partition_dataset_rejects_unknown_scheme():
    dataset = Dataset(np.zeros((10, 2)), np.zeros(10, dtype=int))
    with pytest.raises(DatasetError):
        partition_dataset(dataset, 2, np.random.default_rng(0), scheme="bogus")


def test_partition_dataset_clients_without_ids_raises():
    dataset = Dataset(np.zeros((10, 2)), np.zeros(10, dtype=int))
    with pytest.raises(DatasetError):
        partition_dataset(dataset, 2, np.random.default_rng(0), scheme="clients")


def test_partition_dataset_shards_requires_integer_labels():
    dataset = Dataset(np.zeros((10, 2)), np.zeros(10, dtype=float))
    with pytest.raises(DatasetError):
        partition_dataset(dataset, 2, np.random.default_rng(0), scheme="shards")
