"""Tests for the JWINS configuration."""

import pytest

from repro.core.config import JwinsConfig
from repro.core.cutoff import CutoffDistribution
from repro.exceptions import ConfigurationError


def test_paper_default_uses_wavelet_accumulation_and_random_cutoff():
    config = JwinsConfig.paper_default()
    assert config.wavelet == "sym2"
    assert config.levels == 4
    assert config.use_wavelet and config.use_accumulation and config.use_random_cutoff
    assert config.index_codec == "elias-gamma"


def test_low_budget_distribution():
    config = JwinsConfig.low_budget(0.2)
    assert config.expected_sharing_fraction == pytest.approx(0.2)


def test_ablation_constructors_flip_one_switch_each():
    base = JwinsConfig.paper_default()
    assert not base.without_wavelet().use_wavelet
    assert not base.without_accumulation().use_accumulation
    assert not base.without_random_cutoff().use_random_cutoff
    # The original configuration is unchanged (frozen dataclass).
    assert base.use_wavelet and base.use_accumulation and base.use_random_cutoff


def test_invalid_codec_names_raise():
    with pytest.raises(ConfigurationError):
        JwinsConfig(index_codec="zip")
    with pytest.raises(ConfigurationError):
        JwinsConfig(float_codec="jpeg")


def test_negative_levels_raise():
    with pytest.raises(ConfigurationError):
        JwinsConfig(levels=-1)


def test_custom_cutoff_is_used():
    config = JwinsConfig(cutoff=CutoffDistribution.fixed(0.5))
    assert config.expected_sharing_fraction == 0.5
