"""Tests for the adaptive (band-weighted) JWINS variant."""

import numpy as np
import pytest

from repro.core.adaptive import (
    AdaptiveJwinsScheme,
    adaptive_jwins_factory,
    apply_band_weights,
    band_weights_for,
)
from repro.core.config import JwinsConfig
from repro.core.cutoff import CutoffDistribution
from repro.core.interface import RoundContext
from repro.exceptions import ConfigurationError
from repro.wavelets.transform import WaveletTransform

MODEL_SIZE = 96


def _context(trained, neighbors=()):
    weight = 1.0 / (len(neighbors) + 1)
    return RoundContext(
        round_index=0,
        params_start=np.zeros(MODEL_SIZE),
        params_trained=trained,
        self_weight=weight,
        neighbor_weights={n: weight for n in neighbors},
        rng=np.random.default_rng(0),
    )


def test_band_weights_shape_and_monotonicity():
    layout = WaveletTransform(MODEL_SIZE).layout
    weights = band_weights_for(layout, approximation_boost=2.0)
    assert weights.size == len(layout.band_sizes)
    assert weights[0] == pytest.approx(2.0)
    assert weights[-1] == pytest.approx(1.0)
    assert np.all(np.diff(weights) <= 0)


def test_band_weights_invalid_boost():
    layout = WaveletTransform(MODEL_SIZE).layout
    with pytest.raises(ConfigurationError):
        band_weights_for(layout, approximation_boost=0.0)


def test_apply_band_weights_scales_each_band():
    transform = WaveletTransform(MODEL_SIZE)
    layout = transform.layout
    scores = np.ones(layout.total_size)
    weights = np.arange(1, len(layout.band_sizes) + 1, dtype=float)
    adjusted = apply_band_weights(scores, layout, weights)
    for band, weight in zip(layout.band_slices(), weights):
        assert np.allclose(adjusted[band], weight)


def test_apply_band_weights_validates_sizes():
    layout = WaveletTransform(MODEL_SIZE).layout
    with pytest.raises(ConfigurationError):
        apply_band_weights(np.ones(3), layout, np.ones(len(layout.band_sizes)))
    with pytest.raises(ConfigurationError):
        apply_band_weights(np.ones(layout.total_size), layout, np.ones(1 + len(layout.band_sizes)))


def test_adaptive_scheme_requires_wavelet():
    with pytest.raises(ConfigurationError):
        AdaptiveJwinsScheme(0, MODEL_SIZE, seed=1, config=JwinsConfig(use_wavelet=False))


def test_adaptive_scheme_biases_selection_towards_coarse_bands():
    """With a large boost the approximation band dominates the selection."""

    config = JwinsConfig(cutoff=CutoffDistribution.fixed(0.1), use_random_cutoff=False)
    plain = AdaptiveJwinsScheme(0, MODEL_SIZE, seed=1, config=config, approximation_boost=1.0)
    boosted = AdaptiveJwinsScheme(1, MODEL_SIZE, seed=1, config=config, approximation_boost=50.0)
    trained = np.random.default_rng(3).normal(size=MODEL_SIZE)

    plain_message = plain.prepare(_context(trained))
    boosted_message = boosted.prepare(_context(trained))
    layout = WaveletTransform(MODEL_SIZE).layout
    approx_band = layout.band_slices()[0]
    in_approx_boosted = np.sum(
        (boosted_message.payload["indices"] >= approx_band.start)
        & (boosted_message.payload["indices"] < approx_band.stop)
    )
    in_approx_plain = np.sum(
        (plain_message.payload["indices"] >= approx_band.start)
        & (plain_message.payload["indices"] < approx_band.stop)
    )
    assert in_approx_boosted >= in_approx_plain


def test_adaptive_scheme_round_trip_without_neighbors():
    config = JwinsConfig(cutoff=CutoffDistribution.fixed(0.4), use_random_cutoff=False)
    scheme = AdaptiveJwinsScheme(0, MODEL_SIZE, seed=1, config=config)
    trained = np.random.default_rng(5).normal(size=MODEL_SIZE)
    context = _context(trained)
    scheme.prepare(context)
    new_params = scheme.aggregate(context, [])
    assert np.allclose(new_params, trained, atol=1e-8)


def test_factory_builds_adaptive_schemes():
    scheme = adaptive_jwins_factory(approximation_boost=3.0)(2, MODEL_SIZE, 7)
    assert isinstance(scheme, AdaptiveJwinsScheme)
    assert scheme.node_id == 2
    assert scheme.name == "jwins-adaptive"
