"""Tests for the wavelet parameter ranking (Equations 3 and 4)."""

import numpy as np
import pytest

from repro.core.ranking import WaveletRanker
from repro.wavelets.transform import IdentityTransform, WaveletTransform


@pytest.fixture
def identity_ranker():
    return WaveletRanker(IdentityTransform(8), use_accumulation=True)


def test_round_scores_equation3(identity_ranker):
    """V' = V + T(x_trained - x_start), with V initially zero."""

    start = np.zeros(8)
    trained = np.arange(8.0)
    scores = identity_ranker.round_scores(start, trained)
    assert np.allclose(scores, trained - start)
    # The persistent accumulator is not modified by computing round scores.
    assert np.allclose(identity_ranker.scores, 0.0)


def test_end_of_round_equation4(identity_ranker):
    start = np.zeros(8)
    final = np.full(8, 2.0)
    identity_ranker.end_of_round(start, final)
    assert np.allclose(identity_ranker.scores, 2.0)


def test_mark_shared_resets_selected_entries(identity_ranker):
    identity_ranker.end_of_round(np.zeros(8), np.arange(8.0))
    identity_ranker.mark_shared(np.array([0, 1, 2]))
    assert np.allclose(identity_ranker.scores[:3], 0.0)
    assert np.allclose(identity_ranker.scores[3:], np.arange(3.0, 8.0))


def test_unshared_coordinates_accumulate_across_rounds(identity_ranker):
    """A coordinate that keeps changing but is never shared grows in score."""

    for round_index in range(1, 4):
        start = np.zeros(8)
        final = np.zeros(8)
        final[5] = 1.0
        identity_ranker.end_of_round(start, final)
    assert identity_ranker.scores[5] == pytest.approx(3.0)


def test_round_scores_include_history(identity_ranker):
    identity_ranker.end_of_round(np.zeros(8), np.ones(8))
    scores = identity_ranker.round_scores(np.zeros(8), np.full(8, 0.5))
    assert np.allclose(scores, 1.5)


def test_accumulation_disabled_only_uses_local_change():
    ranker = WaveletRanker(IdentityTransform(4), use_accumulation=False)
    ranker.end_of_round(np.zeros(4), np.ones(4))  # should be ignored
    scores = ranker.round_scores(np.zeros(4), np.full(4, 0.25))
    assert np.allclose(scores, 0.25)
    assert np.allclose(ranker.scores, 0.0)
    ranker.mark_shared(np.array([0]))  # no-op, must not raise


def test_wavelet_domain_scores_capture_parameter_changes():
    """A localized parameter change produces wavelet scores that reconstruct it."""

    transform = WaveletTransform(64, wavelet="sym2", levels=3)
    ranker = WaveletRanker(transform, use_accumulation=True)
    start = np.zeros(64)
    trained = np.zeros(64)
    trained[10:14] = 1.0
    scores = ranker.round_scores(start, trained)
    assert scores.size == transform.coefficient_size()
    assert np.allclose(transform.inverse(scores), trained - start, atol=1e-9)


def test_coefficient_size_matches_transform():
    transform = WaveletTransform(100)
    ranker = WaveletRanker(transform)
    assert ranker.coefficient_size == transform.coefficient_size()
