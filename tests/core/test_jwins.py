"""Tests for the JWINS sharing scheme (Algorithm 1)."""

import numpy as np
import pytest

from repro.core.config import JwinsConfig
from repro.core.cutoff import CutoffDistribution
from repro.core.interface import Message, RoundContext
from repro.core.jwins import JwinsScheme, jwins_factory
from repro.exceptions import SimulationError
from repro.wavelets.transform import IdentityTransform, WaveletTransform

MODEL_SIZE = 120


def _context(round_index=0, start=None, trained=None, neighbors=(1, 2), rng_seed=0):
    start = np.zeros(MODEL_SIZE) if start is None else start
    trained = np.ones(MODEL_SIZE) if trained is None else trained
    weight = 1.0 / (len(neighbors) + 1)
    return RoundContext(
        round_index=round_index,
        params_start=start,
        params_trained=trained,
        self_weight=weight,
        neighbor_weights={n: weight for n in neighbors},
        rng=np.random.default_rng(rng_seed),
    )


def _scheme(config=None, node_id=0):
    return JwinsScheme(node_id, MODEL_SIZE, seed=1, config=config)


def test_prepare_produces_sparse_wavelet_message():
    config = JwinsConfig(cutoff=CutoffDistribution.fixed(0.25), use_random_cutoff=False)
    scheme = _scheme(config)
    message = scheme.prepare(_context())
    indices = message.payload["indices"]
    values = message.payload["values"]
    assert message.kind == "jwins-partial-wavelets"
    assert indices.size == values.size
    assert indices.size == pytest.approx(0.25 * scheme.ranker.coefficient_size, abs=1)
    assert message.size.values_bytes > 0
    assert message.size.metadata_bytes > 0


def test_shared_values_are_wavelet_coefficients_of_trained_model():
    config = JwinsConfig(cutoff=CutoffDistribution.fixed(0.5), use_random_cutoff=False)
    scheme = _scheme(config)
    trained = np.random.default_rng(3).normal(size=MODEL_SIZE)
    context = _context(trained=trained)
    message = scheme.prepare(context)
    coefficients = scheme.transform.forward(trained)
    assert np.allclose(message.payload["values"], coefficients[message.payload["indices"]])


def test_alpha_sampled_from_cutoff_distribution():
    scheme = _scheme(JwinsConfig.paper_default())
    alphas = set()
    for round_index in range(30):
        context = _context(round_index=round_index, rng_seed=round_index)
        message = scheme.prepare(context)
        alphas.add(message.payload["alpha"])
    assert alphas.issubset({0.10, 0.15, 0.20, 0.25, 0.30, 0.40, 1.00})
    assert len(alphas) >= 3


def test_without_random_cutoff_uses_expected_fraction_every_round():
    config = JwinsConfig.paper_default().without_random_cutoff()
    scheme = _scheme(config)
    sizes = set()
    for round_index in range(5):
        message = scheme.prepare(_context(round_index=round_index, rng_seed=round_index))
        sizes.add(message.payload["indices"].size)
    assert len(sizes) == 1


def test_without_wavelet_uses_identity_transform():
    scheme = _scheme(JwinsConfig.paper_default().without_wavelet())
    assert isinstance(scheme.transform, IdentityTransform)
    assert isinstance(_scheme().transform, WaveletTransform)


def test_aggregate_without_neighbors_recovers_trained_model():
    """With no neighbors the round is a no-op up to transform round-trip error."""

    scheme = _scheme(JwinsConfig(cutoff=CutoffDistribution.fixed(0.3), use_random_cutoff=False))
    trained = np.random.default_rng(1).normal(size=MODEL_SIZE)
    context = RoundContext(
        round_index=0,
        params_start=np.zeros(MODEL_SIZE),
        params_trained=trained,
        self_weight=1.0,
        neighbor_weights={},
        rng=np.random.default_rng(0),
    )
    scheme.prepare(context)
    new_params = scheme.aggregate(context, [])
    assert np.allclose(new_params, trained, atol=1e-8)


def test_two_identical_nodes_stay_identical():
    """If both nodes hold the same model, averaging must not change it."""

    config = JwinsConfig(cutoff=CutoffDistribution.fixed(0.4), use_random_cutoff=False)
    scheme_a = JwinsScheme(0, MODEL_SIZE, seed=1, config=config)
    scheme_b = JwinsScheme(1, MODEL_SIZE, seed=2, config=config)
    trained = np.random.default_rng(5).normal(size=MODEL_SIZE)
    context_a = RoundContext(0, np.zeros(MODEL_SIZE), trained, 0.5, {1: 0.5}, np.random.default_rng(0))
    context_b = RoundContext(0, np.zeros(MODEL_SIZE), trained, 0.5, {0: 0.5}, np.random.default_rng(1))
    message_a = scheme_a.prepare(context_a)
    message_b = scheme_b.prepare(context_b)
    new_a = scheme_a.aggregate(context_a, [message_b])
    new_b = scheme_b.aggregate(context_b, [message_a])
    assert np.allclose(new_a, trained, atol=1e-8)
    assert np.allclose(new_b, trained, atol=1e-8)


def test_full_alpha_exchange_matches_dense_average():
    """With alpha = 100% on both nodes JWINS reduces to full-sharing averaging."""

    config = JwinsConfig(cutoff=CutoffDistribution.fixed(1.0), use_random_cutoff=False)
    scheme_a = JwinsScheme(0, MODEL_SIZE, seed=1, config=config)
    scheme_b = JwinsScheme(1, MODEL_SIZE, seed=2, config=config)
    rng = np.random.default_rng(7)
    trained_a = rng.normal(size=MODEL_SIZE)
    trained_b = rng.normal(size=MODEL_SIZE)
    context_a = RoundContext(0, np.zeros(MODEL_SIZE), trained_a, 0.5, {1: 0.5}, np.random.default_rng(0))
    context_b = RoundContext(0, np.zeros(MODEL_SIZE), trained_b, 0.5, {0: 0.5}, np.random.default_rng(1))
    message_a = scheme_a.prepare(context_a)
    message_b = scheme_b.prepare(context_b)
    new_a = scheme_a.aggregate(context_a, [message_b])
    expected = 0.5 * (trained_a + trained_b)
    assert np.allclose(new_a, expected, atol=1e-8)


def test_accumulator_reset_for_shared_coefficients():
    config = JwinsConfig(
        cutoff=CutoffDistribution.fixed(0.25), use_random_cutoff=False, use_wavelet=False
    )
    scheme = _scheme(config)
    trained = np.zeros(MODEL_SIZE)
    trained[:10] = 5.0  # large change in the first ten coordinates
    context = _context(trained=trained, neighbors=())
    context.neighbor_weights = {}
    context.self_weight = 1.0
    message = scheme.prepare(context)
    shared = message.payload["indices"]
    assert set(range(10)).issubset(set(shared.tolist()))
    new_params = scheme.aggregate(context, [])
    scheme.finalize(context, new_params)
    # Shared coordinates were reset before the end-of-round update, so their
    # score equals only the whole-round change; they did not double-count.
    assert np.allclose(scheme.ranker.scores[:10], trained[:10], atol=1e-9)


def test_aggregate_before_prepare_raises():
    scheme = _scheme()
    with pytest.raises(SimulationError):
        scheme.aggregate(_context(), [])


def test_incompatible_message_kind_raises():
    scheme = _scheme()
    context = _context(neighbors=(1,))
    scheme.prepare(context)
    alien = Message(sender=1, kind="full-model", payload={"values": np.ones(MODEL_SIZE)})
    with pytest.raises(SimulationError):
        scheme.aggregate(context, [alien])


def test_message_from_non_neighbor_raises():
    scheme = _scheme()
    context = _context(neighbors=(1,))
    scheme.prepare(context)
    other = JwinsScheme(9, MODEL_SIZE, seed=3)
    other_context = _context(neighbors=(0,))
    foreign = other.prepare(other_context)
    foreign = Message(sender=9, kind=foreign.kind, payload=foreign.payload, size=foreign.size)
    with pytest.raises(SimulationError):
        scheme.aggregate(context, [foreign])


def test_factory_builds_independent_schemes():
    factory = jwins_factory(JwinsConfig.paper_default())
    scheme_a = factory(0, MODEL_SIZE, 1)
    scheme_b = factory(1, MODEL_SIZE, 2)
    assert scheme_a is not scheme_b
    assert scheme_a.node_id == 0 and scheme_b.node_id == 1


def test_metadata_smaller_than_values_with_elias_gamma():
    config = JwinsConfig(cutoff=CutoffDistribution.fixed(0.3), use_random_cutoff=False)
    scheme = _scheme(config)
    message = scheme.prepare(_context(trained=np.random.default_rng(0).normal(size=MODEL_SIZE)))
    assert message.size.metadata_bytes < message.size.values_bytes
