"""Tests for partial (sparse) weighted averaging."""

import numpy as np
import pytest

from repro.core.aggregation import SparseContribution, partial_weighted_average
from repro.exceptions import SimulationError


def test_no_contributions_returns_own_vector():
    own = np.arange(5.0)
    result = partial_weighted_average(own, 1.0, [])
    assert np.array_equal(result, own)
    assert result is not own


def test_full_contributions_match_dense_average():
    own = np.array([1.0, 2.0, 3.0])
    other = np.array([3.0, 4.0, 5.0])
    contribution = SparseContribution(0.5, np.arange(3), other)
    result = partial_weighted_average(own, 0.5, [contribution])
    assert np.allclose(result, 0.5 * own + 0.5 * other)


def test_missing_entries_filled_with_own_values():
    own = np.array([1.0, 1.0, 1.0, 1.0])
    contribution = SparseContribution(0.5, np.array([1]), np.array([3.0]))
    result = partial_weighted_average(own, 0.5, [contribution])
    assert np.allclose(result, [1.0, 2.0, 1.0, 1.0])


def test_multiple_sparse_contributions():
    own = np.zeros(4)
    contributions = [
        SparseContribution(0.25, np.array([0, 1]), np.array([4.0, 4.0])),
        SparseContribution(0.25, np.array([1, 2]), np.array([8.0, 8.0])),
    ]
    result = partial_weighted_average(own, 0.5, contributions)
    assert np.allclose(result, [1.0, 3.0, 2.0, 0.0])


def test_weights_above_one_rejected():
    own = np.zeros(3)
    contribution = SparseContribution(0.7, np.array([0]), np.array([1.0]))
    with pytest.raises(SimulationError):
        partial_weighted_average(own, 0.5, [contribution])


def test_missing_mass_keeps_own_values():
    """A dropped neighbor (weights summing below one) leaves own values in place."""

    own = np.full(3, 2.0)
    contribution = SparseContribution(0.25, np.array([0]), np.array([6.0]))
    result = partial_weighted_average(own, 0.5, [contribution])
    assert np.allclose(result, [3.0, 2.0, 2.0])


def test_indices_out_of_range_raise():
    own = np.zeros(3)
    contribution = SparseContribution(0.5, np.array([7]), np.array([1.0]))
    with pytest.raises(SimulationError):
        partial_weighted_average(own, 0.5, [contribution])


def test_mismatched_indices_values_raise():
    with pytest.raises(SimulationError):
        SparseContribution(0.5, np.array([1, 2]), np.array([1.0]))


def test_average_bounded_by_contributing_values():
    """Every coordinate of the result lies within the convex hull of inputs."""

    rng = np.random.default_rng(0)
    own = rng.normal(size=20)
    others = [rng.normal(size=20) for _ in range(3)]
    contributions = [
        SparseContribution(0.25, np.arange(20), other) for other in others
    ]
    result = partial_weighted_average(own, 0.25, contributions)
    stacked = np.stack([own] + others)
    assert np.all(result <= stacked.max(axis=0) + 1e-12)
    assert np.all(result >= stacked.min(axis=0) - 1e-12)
