"""Tests for the randomized communication cut-off."""

import numpy as np
import pytest

from repro.core.cutoff import DEFAULT_ALPHAS, CutoffDistribution
from repro.exceptions import ConfigurationError


def test_default_distribution_matches_paper():
    distribution = CutoffDistribution.uniform()
    assert distribution.alphas == DEFAULT_ALPHAS
    assert np.allclose(distribution.probabilities, 1.0 / len(DEFAULT_ALPHAS))
    # Expected fraction ~37%, which is why random sampling uses 37% in Table I.
    assert distribution.expected_fraction() == pytest.approx(0.3428, abs=1e-3)


def test_sample_only_returns_configured_alphas():
    distribution = CutoffDistribution.uniform()
    rng = np.random.default_rng(0)
    samples = {distribution.sample(rng) for _ in range(200)}
    assert samples.issubset(set(DEFAULT_ALPHAS))
    assert len(samples) > 3


def test_empirical_mean_close_to_expected():
    distribution = CutoffDistribution.uniform()
    rng = np.random.default_rng(1)
    samples = [distribution.sample(rng) for _ in range(3000)]
    assert np.mean(samples) == pytest.approx(distribution.expected_fraction(), abs=0.02)


def test_fixed_distribution():
    distribution = CutoffDistribution.fixed(0.25)
    rng = np.random.default_rng(2)
    assert all(distribution.sample(rng) == 0.25 for _ in range(10))
    assert distribution.expected_fraction() == 0.25


def test_budgeted_twenty_percent_matches_paper():
    """Budget 20%: p(alpha=100%) = 0.1 and alpha ~= 10% otherwise."""

    distribution = CutoffDistribution.budgeted(0.20)
    assert distribution.expected_fraction() == pytest.approx(0.20, abs=1e-9)
    full_probability = dict(zip(distribution.alphas, distribution.probabilities))[1.0]
    assert full_probability == pytest.approx(0.10)
    small_alpha = min(distribution.alphas)
    assert small_alpha == pytest.approx(0.111, abs=0.01)


def test_budgeted_ten_percent_matches_paper():
    """Budget 10%: p(alpha=100%) = 0.05 and alpha ~= 5% otherwise."""

    distribution = CutoffDistribution.budgeted(0.10)
    assert distribution.expected_fraction() == pytest.approx(0.10, abs=1e-9)
    full_probability = dict(zip(distribution.alphas, distribution.probabilities))[1.0]
    assert full_probability == pytest.approx(0.05)
    assert min(distribution.alphas) == pytest.approx(0.0526, abs=0.005)


def test_budgeted_full_budget_is_full_sharing():
    distribution = CutoffDistribution.budgeted(1.0)
    assert distribution.alphas == (1.0,)


def test_nodes_sample_different_alphas_in_same_round():
    """Figure 3 left: in one round different nodes pick different fractions."""

    distribution = CutoffDistribution.uniform()
    alphas = [
        distribution.sample(np.random.default_rng(node)) for node in range(96)
    ]
    assert len(set(alphas)) >= 4


def test_invalid_distributions_raise():
    with pytest.raises(ConfigurationError):
        CutoffDistribution((0.5, 1.0), (0.5, 0.4))
    with pytest.raises(ConfigurationError):
        CutoffDistribution((0.0,), (1.0,))
    with pytest.raises(ConfigurationError):
        CutoffDistribution((), ())
    with pytest.raises(ConfigurationError):
        CutoffDistribution((0.5,), (-1.0,))
    with pytest.raises(ConfigurationError):
        CutoffDistribution.budgeted(0.0)


def test_max_fraction():
    assert CutoffDistribution.uniform().max_fraction() == 1.0
    assert CutoffDistribution.fixed(0.3).max_fraction() == 0.3
