"""CLI coverage for the checkpoint subsystem: run/sweep flags, fork, store.

Every failure path must exit through a clean ``SystemExit`` message, matching
the CLI contract — never a traceback.
"""

from __future__ import annotations

import json

import pytest

from repro.checkpoint import CheckpointManager, SimulationSnapshot, preemption
from repro.cli import main
from repro.orchestration import ResultStore

RUN_ARGS = [
    "run",
    "--workload",
    "movielens",
    "--scheme",
    "jwins",
    "--nodes",
    "4",
    "--degree",
    "2",
    "--rounds",
    "4",
    "--seed",
    "3",
]

SWEEP_ARGS = [
    "sweep",
    "--workload",
    "movielens",
    "--scheme",
    "jwins",
    "full-sharing",
    "--nodes",
    "4",
    "--degree",
    "2",
    "--rounds",
    "2",
]


@pytest.fixture(autouse=True)
def clean_preemption():
    preemption.reset()
    yield
    preemption.reset()


def checkpoint_args(tmp_path, every: int = 1) -> list[str]:
    return ["--checkpoint-every", str(every), "--checkpoint-dir", str(tmp_path / "ck")]


def only_snapshot(tmp_path):
    manager = CheckpointManager(tmp_path / "ck")
    keys = list(manager.keys())
    assert len(keys) == 1
    return manager.path_for(keys[0])


# -- run ------------------------------------------------------------------------------
def test_run_with_checkpointing_matches_plain_run(tmp_path, capsys):
    assert main(RUN_ARGS) == 0
    plain = capsys.readouterr().out
    assert main(RUN_ARGS + checkpoint_args(tmp_path)) == 0
    checkpointed = capsys.readouterr().out
    # The summary table (accuracy, bytes, simulated time) must be identical.
    assert plain.splitlines()[-3:] == checkpointed.splitlines()[-3:]
    assert only_snapshot(tmp_path).exists()


def test_run_resume_from_final_snapshot(tmp_path, capsys):
    assert main(RUN_ARGS + checkpoint_args(tmp_path, every=2)) == 0
    reference = capsys.readouterr().out
    snapshot_path = only_snapshot(tmp_path)
    assert (
        main(RUN_ARGS + ["--resume-from", str(snapshot_path)]) == 0
    )
    resumed = capsys.readouterr().out
    assert reference.splitlines()[-3:] == resumed.splitlines()[-3:]


def test_run_paused_by_preemption_exits_130(tmp_path, capsys):
    preemption.preempt_after_round(2)
    exit_code = main(RUN_ARGS + checkpoint_args(tmp_path))
    output = capsys.readouterr().out
    assert exit_code == 130
    assert "paused jwins at round 2" in output
    assert "--resume-from" in output
    # Resume completes and matches the uninterrupted run.
    preemption.reset()
    assert main(RUN_ARGS + ["--resume-from", str(only_snapshot(tmp_path))]) == 0
    resumed = capsys.readouterr().out
    assert main(RUN_ARGS) == 0
    plain = capsys.readouterr().out
    assert resumed.splitlines()[-3:] == plain.splitlines()[-3:]


def test_run_checkpoint_every_requires_dir():
    with pytest.raises(SystemExit, match="--checkpoint-dir"):
        main(RUN_ARGS + ["--checkpoint-every", "2"])


def test_run_negative_checkpoint_every_rejected():
    with pytest.raises(SystemExit, match="non-negative"):
        main(RUN_ARGS + ["--checkpoint-every", "-1"])


def test_run_resume_from_missing_file_exits_cleanly(tmp_path):
    with pytest.raises(SystemExit, match="cannot read snapshot"):
        main(RUN_ARGS + ["--resume-from", str(tmp_path / "absent.ckpt.json")])


def test_run_resume_from_corrupt_file_exits_cleanly(tmp_path):
    path = tmp_path / "broken.ckpt.json"
    path.write_text("{ not json")
    with pytest.raises(SystemExit, match="not valid JSON"):
        main(RUN_ARGS + ["--resume-from", str(path)])


def test_run_resume_from_tampered_snapshot_exits_cleanly(tmp_path):
    assert main(RUN_ARGS + checkpoint_args(tmp_path, every=2)) == 0
    path = only_snapshot(tmp_path)
    document = json.loads(path.read_text())
    document["snapshot"]["rounds_completed"] = 1
    path.write_text(json.dumps(document))
    with pytest.raises(SystemExit, match="integrity check"):
        main(RUN_ARGS + ["--resume-from", str(path)])


def test_run_resume_from_mismatched_spec_exits_cleanly(tmp_path):
    assert main(RUN_ARGS + checkpoint_args(tmp_path, every=2)) == 0
    path = only_snapshot(tmp_path)
    mismatched = [arg if arg != "3" else "4" for arg in RUN_ARGS]  # other seed
    with pytest.raises(SystemExit, match="does not match this invocation"):
        main(mismatched + ["--resume-from", str(path)])


def test_run_resume_from_requires_single_scheme(tmp_path):
    with pytest.raises(SystemExit, match="exactly one"):
        main(
            RUN_ARGS[:3]
            + ["--scheme", "jwins", "full-sharing", "--resume-from", str(tmp_path / "x")]
        )


# -- sweep ----------------------------------------------------------------------------
def test_sweep_dry_run_prints_hashes_and_touches_nothing(tmp_path, capsys):
    store = tmp_path / "store.jsonl"
    exit_code = main(SWEEP_ARGS + ["--store", str(store), "--dry-run"])
    output = capsys.readouterr().out
    assert exit_code == 0
    assert not store.exists()
    lines = [line for line in output.splitlines() if "movielens/" in line]
    assert len(lines) == 2
    for line in lines:
        digest = line.split()[0]
        assert len(digest) == 64 and int(digest, 16) >= 0
        assert "seed=" in line
    assert "2 cell(s), 2 unique" in output


def test_sweep_dry_run_marks_duplicates(capsys):
    exit_code = main(
        SWEEP_ARGS + ["--seeds", "5", "5", "--dry-run", "--store", "ignored.jsonl"]
    )
    output = capsys.readouterr().out
    assert exit_code == 0
    assert "(duplicate: executes once)" in output
    assert "4 cell(s), 2 unique" in output


def test_sweep_preempted_resumes_to_identical_store(tmp_path, capsys):
    reference = tmp_path / "reference.jsonl"
    assert main(SWEEP_ARGS + ["--store", str(reference)]) == 0
    capsys.readouterr()

    interrupted = tmp_path / "interrupted.jsonl"
    sweep_ck = SWEEP_ARGS + [
        "--store",
        str(interrupted),
        "--checkpoint-dir",
        str(tmp_path / "ck"),
    ]
    preemption.preempt_after_round(1)
    assert main(sweep_ck) == 130
    assert "sweep interrupted" in capsys.readouterr().out
    assert main(sweep_ck) == 0
    capsys.readouterr()
    assert reference.read_bytes() == interrupted.read_bytes()


def test_sweep_negative_checkpoint_every_rejected(tmp_path):
    with pytest.raises(SystemExit, match="non-negative"):
        main(SWEEP_ARGS + ["--store", str(tmp_path / "s"), "--checkpoint-every", "-2"])


# -- fork -----------------------------------------------------------------------------
def make_paused_snapshot(tmp_path) -> str:
    preemption.preempt_after_round(2)
    assert main(RUN_ARGS + checkpoint_args(tmp_path)) == 130
    preemption.reset()
    return str(only_snapshot(tmp_path))


def test_fork_unchanged_and_with_scenario(tmp_path, capsys):
    snapshot_path = make_paused_snapshot(tmp_path)
    capsys.readouterr()
    store = tmp_path / "forks.jsonl"

    assert main(["fork", "--snapshot", snapshot_path, "--store", str(store)]) == 0
    first = capsys.readouterr().out
    assert "forked movielens/jwins from round 2" in first

    assert (
        main(
            [
                "fork",
                "--snapshot",
                snapshot_path,
                "--scenario",
                "churn",
                "--store",
                str(store),
            ]
        )
        == 0
    )
    capsys.readouterr()
    reloaded = ResultStore(store)
    assert len(reloaded) == 2  # unchanged and scenario forks are hash-distinct
    for key in reloaded.keys():
        assert reloaded.get_spec(key).lineage is not None


def test_fork_trace_into_a_directory_uses_the_forked_hash(tmp_path, capsys):
    snapshot_path = make_paused_snapshot(tmp_path)
    trace_dir = tmp_path / "traces"
    trace_dir.mkdir()
    capsys.readouterr()
    assert main(["fork", "--snapshot", snapshot_path, "--trace", str(trace_dir)]) == 0
    output = capsys.readouterr().out
    traces = list(trace_dir.glob("*.trace.jsonl"))
    assert len(traces) == 1
    assert f"trace written to {traces[0]}" in output
    lines = traces[0].read_text(encoding="utf-8").splitlines()
    assert json.loads(lines[0])["kind"] == "manifest"
    assert json.loads(lines[-1])["kind"] == "run_end"


def test_fork_missing_snapshot_exits_cleanly(tmp_path):
    with pytest.raises(SystemExit, match="cannot read snapshot"):
        main(["fork", "--snapshot", str(tmp_path / "absent.json")])


def test_fork_structural_mutation_exits_cleanly(tmp_path):
    snapshot_path = make_paused_snapshot(tmp_path)
    with pytest.raises(SystemExit, match="structural"):
        main(["fork", "--snapshot", snapshot_path, "--set", "num_nodes=8"])


def test_fork_exhausted_rounds_exits_cleanly(tmp_path):
    snapshot_path = make_paused_snapshot(tmp_path)
    with pytest.raises(SystemExit, match="cannot fork"):
        main(["fork", "--snapshot", snapshot_path, "--rounds", "1"])


# -- store ----------------------------------------------------------------------------
def test_store_compact_drops_superseded_and_corrupt_rows(tmp_path, capsys):
    store_path = tmp_path / "store.jsonl"
    assert main(SWEEP_ARGS + ["--store", str(store_path)]) == 0
    assert main(SWEEP_ARGS + ["--store", str(store_path), "--force"]) == 0
    with store_path.open("a") as handle:
        handle.write('{"truncated": \n')
    capsys.readouterr()

    before = ResultStore(store_path)
    results_before = {key: before.get(key).to_dict() for key in before.keys()}

    assert main(["store", "compact", "--store", str(store_path)]) == 0
    output = capsys.readouterr().out
    assert "5 line(s) -> 2 row(s)" in output
    assert "dropped 2 superseded, 1 corrupt" in output

    after = ResultStore(store_path)
    assert {key: after.get(key).to_dict() for key in after.keys()} == results_before
    assert len(store_path.read_text().splitlines()) == 2
    # Compacting an already-compact store is a no-op.
    assert main(["store", "compact", "--store", str(store_path)]) == 0
    assert "2 line(s) -> 2 row(s)" in capsys.readouterr().out


def test_store_compact_missing_file_exits_cleanly(tmp_path):
    with pytest.raises(SystemExit, match="does not exist"):
        main(["store", "compact", "--store", str(tmp_path / "absent.jsonl")])


def test_snapshot_verify_reports_spec_hash(tmp_path):
    snapshot_path = make_paused_snapshot(tmp_path)
    report = SimulationSnapshot.verify(snapshot_path)
    assert report["rounds_completed"] == 2
    assert report["spec_hash"] is not None
    assert report["execution"] == "sync"
