"""Tests for run-until-target comparisons (Figure 5 protocol)."""

import pytest

from repro.baselines import full_sharing_factory, random_sampling_factory
from repro.evaluation.targets import compare_to_target
from repro.simulation.experiment import ExperimentConfig
from tests.conftest import make_toy_task


@pytest.fixture(scope="module")
def comparison():
    task = make_toy_task(train_samples=160, test_samples=64)
    config = ExperimentConfig(
        num_nodes=4,
        degree=2,
        rounds=10,
        local_steps=2,
        batch_size=8,
        learning_rate=0.2,
        eval_every=2,
        eval_test_samples=64,
        seed=2,
        partition="shards",
    )
    return compare_to_target(
        task,
        reference_factory=random_sampling_factory(0.2),
        reference_name="random-sampling",
        challenger_factories={"full-sharing": full_sharing_factory()},
        config=config,
        target_fraction_of_best=0.9,
    )


def test_target_derived_from_reference_best_accuracy(comparison):
    reference = comparison.run("random-sampling")
    assert comparison.target_accuracy == pytest.approx(0.9 * reference.result.best_accuracy)
    assert reference.reached  # the reference reaches 90% of its own best accuracy


def test_all_schemes_present(comparison):
    assert set(comparison.runs) == {"random-sampling", "full-sharing"}


def test_reached_runs_expose_rounds_bytes_and_time(comparison):
    for run in comparison.runs.values():
        if run.reached:
            assert run.rounds_to_target is not None
            assert run.bytes_per_node_to_target is not None
            assert run.simulated_seconds_to_target is not None


def test_full_sharing_needs_no_more_rounds_than_reference(comparison):
    """Full sharing converges at least as fast (in rounds) as 20% random sampling."""

    full = comparison.run("full-sharing")
    reference = comparison.run("random-sampling")
    assert full.reached
    assert full.rounds_to_target <= reference.rounds_to_target


def test_speedup_computation(comparison):
    full = comparison.run("full-sharing")
    reference = comparison.run("random-sampling")
    speedup = full.speedup_over(reference)
    assert speedup is None or speedup > 0
