"""Tests for the reporting helpers."""

import pytest

from repro.evaluation.reporting import format_table, summarize_results, table1_rows
from repro.exceptions import ConfigurationError
from repro.simulation.metrics import ExperimentResult, RoundRecord


def _result(scheme, accuracy, total_bytes):
    result = ExperimentResult(scheme=scheme, task="toy", num_nodes=4, rounds_completed=10)
    result.history.append(
        RoundRecord(
            round_index=10,
            test_accuracy=accuracy,
            test_loss=1.0 - accuracy,
            train_loss=0.5,
            cumulative_bytes_per_node=total_bytes / 4,
            cumulative_metadata_bytes_per_node=10.0,
            simulated_time_seconds=12.0,
            average_shared_fraction=0.4,
        )
    )
    result.total_bytes = total_bytes
    return result


def test_format_table_aligns_columns():
    text = format_table(["a", "bb"], [["x", "y"], ["longer", "z"]])
    lines = text.splitlines()
    assert len(lines) == 4
    assert lines[0].startswith("a")
    assert all(len(line) >= len("longer") for line in lines[1:])


def test_table1_rows_computes_savings():
    results = {
        "full-sharing": _result("full-sharing", 0.6, 1000.0),
        "random-sampling": _result("random-sampling", 0.4, 400.0),
        "jwins": _result("jwins", 0.58, 370.0),
    }
    row = table1_rows("cifar10", results, paper_savings_percent=62.2)
    assert row[0] == "cifar10"
    assert row[1] == "60.0"
    assert row[-2] == "63.0%"
    assert row[-1] == "62.2%"


def test_table1_rows_missing_scheme_raises_configuration_error():
    results = {
        "full-sharing": _result("full-sharing", 0.6, 1000.0),
        "jwins": _result("jwins", 0.58, 370.0),
    }
    with pytest.raises(ConfigurationError, match="missing: random-sampling"):
        table1_rows("cifar10", results)


def test_table1_rows_lists_every_missing_scheme():
    with pytest.raises(ConfigurationError) as excinfo:
        table1_rows("cifar10", {})
    message = str(excinfo.value)
    for scheme in ("full-sharing", "random-sampling", "jwins"):
        assert scheme in message


def test_table1_rows_zero_total_bytes_reports_zero_savings():
    # A degenerate store (e.g. zero-round runs) must not divide by zero.
    results = {
        "full-sharing": _result("full-sharing", 0.6, 0.0),
        "random-sampling": _result("random-sampling", 0.4, 0.0),
        "jwins": _result("jwins", 0.58, 0.0),
    }
    row = table1_rows("cifar10", results)
    assert row[-1] == "0.0%"


def test_summarize_results_contains_all_schemes():
    results = {
        "full-sharing": _result("full-sharing", 0.6, 1000.0),
        "jwins": _result("jwins", 0.58, 370.0),
    }
    text = summarize_results(results)
    assert "full-sharing" in text
    assert "jwins" in text
    assert "final acc" in text
