"""Tests for the workload registry."""

import pytest

from repro.evaluation.workloads import WORKLOADS, get_workload
from repro.exceptions import ConfigurationError


def test_all_five_paper_workloads_registered():
    assert set(WORKLOADS) == {"cifar10", "movielens", "shakespeare", "celeba", "femnist"}


def test_get_workload_case_insensitive():
    assert get_workload("CIFAR10").name == "cifar10"


def test_get_workload_unknown_raises():
    with pytest.raises(ConfigurationError):
        get_workload("imagenet")


@pytest.mark.parametrize("name", sorted(WORKLOADS))
def test_workload_tasks_are_buildable(name):
    workload = get_workload(name)
    task = workload.make_task(seed=1)
    assert len(task.train) > 0
    assert len(task.test) > 0
    assert task.model_size > 0
    assert workload.config.num_nodes >= 2


@pytest.mark.parametrize("name", sorted(WORKLOADS))
def test_paper_reference_numbers_are_consistent(name):
    """Sanity-check the transcription of Table I: JWINS saves 60%+ of the bytes."""

    paper = get_workload(name).paper
    implied_savings = 100.0 * (1.0 - paper.jwins_gib / paper.full_sharing_gib)
    assert implied_savings == pytest.approx(paper.network_savings_percent, abs=1.0)
    assert paper.jwins_accuracy >= paper.random_sampling_accuracy


def test_cifar_uses_shard_partitioning_and_others_use_clients():
    assert get_workload("cifar10").config.partition == "shards"
    for name in ("femnist", "celeba", "shakespeare", "movielens"):
        assert get_workload(name).config.partition == "clients"
