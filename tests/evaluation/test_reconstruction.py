"""Tests for the Figure 2 reconstruction-error experiment."""

import numpy as np
import pytest

from repro.evaluation.reconstruction import (
    reconstruction_error_experiment,
    sparsified_reconstruction,
)
from tests.conftest import make_toy_task


def test_sparsified_reconstruction_shapes_and_budget():
    rng = np.random.default_rng(0)
    parameters = rng.normal(size=200)
    for method in ("wavelet", "fft", "identity", "random-sampling"):
        reconstructed = sparsified_reconstruction(parameters, method, 0.2, rng)
        assert reconstructed.shape == parameters.shape


def test_full_budget_reconstruction_is_exact():
    rng = np.random.default_rng(1)
    parameters = rng.normal(size=128)
    for method in ("wavelet", "fft", "identity"):
        reconstructed = sparsified_reconstruction(parameters, method, 1.0, rng)
        assert np.allclose(reconstructed, parameters, atol=1e-9)


def test_identity_reconstruction_keeps_topk_entries():
    rng = np.random.default_rng(2)
    parameters = np.zeros(50)
    parameters[:5] = 10.0
    reconstructed = sparsified_reconstruction(parameters, "identity", 0.1, rng)
    assert np.allclose(reconstructed, parameters)


def test_experiment_curves_are_cumulative_and_ordered():
    task = make_toy_task(train_samples=96, test_samples=32)
    curves = reconstruction_error_experiment(
        task, epochs=3, budget=0.1, batch_size=16, seed=2
    )
    assert curves.epochs == [1, 2, 3]
    for series in curves.cumulative_mse.values():
        assert len(series) == 3
        assert all(b >= a for a, b in zip(series, series[1:]))


def test_wavelet_loses_less_information_than_random_sampling():
    """The headline claim of Figure 2."""

    task = make_toy_task(train_samples=128, test_samples=32, hidden=24)
    curves = reconstruction_error_experiment(
        task, epochs=4, budget=0.1, batch_size=16, seed=3
    )
    assert curves.final("wavelet") < curves.final("random-sampling")
    assert curves.ranking()[0] in {"wavelet", "fft"}
