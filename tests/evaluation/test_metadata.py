"""Tests for the Figure 9 metadata-compression experiment."""

import pytest

from repro.core.cutoff import CutoffDistribution
from repro.evaluation.metadata import metadata_compression_experiment


def test_uncompressed_metadata_is_about_half_the_message():
    comparison = metadata_compression_experiment(model_size=10000, rounds=8, seed=1)
    # Raw 32-bit indices are as large as the (uncompressed) values, i.e. roughly
    # half of the message ("approx. 50% of the communication is wasted").
    assert 0.35 <= comparison.raw_metadata_fraction <= 0.6


def test_elias_gamma_compresses_metadata_by_several_times():
    comparison = metadata_compression_experiment(model_size=10000, rounds=8, seed=1)
    assert comparison.compression_ratio > 4.0
    assert comparison.compressed_metadata_bytes < comparison.raw_metadata_bytes


def test_fixed_full_cutoff_gives_dense_indices():
    comparison = metadata_compression_experiment(
        model_size=2000, rounds=3, cutoff=CutoffDistribution.fixed(1.0), seed=2
    )
    # Dense index lists cost ~1 bit per index under Elias gamma: far below raw.
    assert comparison.compression_ratio > 20.0


def test_results_are_deterministic_per_seed():
    a = metadata_compression_experiment(model_size=3000, rounds=5, seed=7)
    b = metadata_compression_experiment(model_size=3000, rounds=5, seed=7)
    assert a == b
