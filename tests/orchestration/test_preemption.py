"""Preemptible sweeps: checkpoint on interrupt, resume mid-spec, same bytes.

The store produced by an interrupted-then-resumed sweep must be byte-for-byte
identical to an uninterrupted run's — including under pool execution, where
each worker checkpoints its own in-flight cell.
"""

from __future__ import annotations

import json

import pytest

from repro.checkpoint import CheckpointManager, preemption
from repro.exceptions import CheckpointError
from repro.orchestration import ExperimentSpec, ResultStore, SchemeSpec, run_sweep
from repro.orchestration.pool import SweepObserver

OVERRIDES = {
    "num_nodes": 4,
    "degree": 2,
    "rounds": 4,
    "eval_every": 2,
    "eval_test_samples": 32,
}


def make_specs() -> list[ExperimentSpec]:
    return [
        ExperimentSpec("movielens", SchemeSpec("jwins", {}, label="jwins"), OVERRIDES),
        ExperimentSpec(
            "movielens", SchemeSpec("full-sharing", {}, label="full-sharing"), OVERRIDES
        ),
    ]


@pytest.fixture(autouse=True)
def clean_preemption():
    preemption.reset()
    yield
    preemption.reset()


def store_bytes(path) -> bytes:
    return path.read_bytes()


def test_serial_preempt_and_resume_store_is_byte_identical(tmp_path):
    reference = tmp_path / "reference.jsonl"
    run_sweep(make_specs(), ResultStore(reference))

    interrupted = tmp_path / "interrupted.jsonl"
    checkpoints = tmp_path / "checkpoints"

    class Recorder(SweepObserver):
        pauses: list = []

        def on_pause(self, spec, rounds_completed):
            self.pauses.append((spec.label, rounds_completed))

    preemption.preempt_after_round(2)
    outcome = run_sweep(
        make_specs(),
        ResultStore(interrupted),
        observer=Recorder(),
        checkpoint_dir=str(checkpoints),
        checkpoint_every=1,
    )
    assert outcome.interrupted
    assert [spec.label for spec in outcome.paused] == ["movielens/jwins"]
    assert outcome.executed == []
    assert Recorder.pauses == [("movielens/jwins", 2)]

    # preemption.reset() ran inside run_sweep's cleanup; the second invocation
    # resumes the paused cell mid-spec and runs the untouched one.
    resumed = run_sweep(
        make_specs(), ResultStore(interrupted), checkpoint_dir=str(checkpoints)
    )
    assert not resumed.interrupted
    assert len(resumed.executed) == 2
    assert store_bytes(reference) == store_bytes(interrupted)


def test_pool_checkpointed_sweep_matches_serial(tmp_path):
    """Checkpoint-enabled pool execution stays byte-identical to serial."""

    serial = tmp_path / "serial.jsonl"
    pooled = tmp_path / "pooled.jsonl"
    run_sweep(make_specs(), ResultStore(serial))
    outcome = run_sweep(
        make_specs(),
        ResultStore(pooled),
        workers=2,
        checkpoint_dir=str(tmp_path / "ck"),
        checkpoint_every=1,
    )
    assert not outcome.interrupted and len(outcome.executed) == 2
    assert store_bytes(serial) == store_bytes(pooled)


def test_mid_spec_resume_consumes_the_snapshot(tmp_path):
    """The paused cell restarts from its snapshot, not from round zero."""

    checkpoints = tmp_path / "checkpoints"
    spec = make_specs()[0]

    preemption.preempt_after_round(2)
    run_sweep(
        [spec], ResultStore(), checkpoint_dir=str(checkpoints), checkpoint_every=1
    )
    manager = CheckpointManager(checkpoints)
    snapshot = manager.load_for_spec(spec)
    assert snapshot is not None and snapshot.rounds_completed == 2

    outcome = run_sweep([spec], ResultStore(), checkpoint_dir=str(checkpoints))
    assert len(outcome.executed) == 1
    # The resume lineage row proves the mid-spec restart.
    actions = [row["action"] for row in manager.lineage()]
    assert "resume" in actions
    resume_rows = [row for row in manager.lineage() if row["action"] == "resume"]
    assert resume_rows[-1]["round"] == 2


def test_lineage_log_records_saves_and_resumes(tmp_path):
    checkpoints = tmp_path / "checkpoints"
    spec = make_specs()[0]
    preemption.preempt_after_round(2)
    run_sweep(
        [spec], ResultStore(), checkpoint_dir=str(checkpoints), checkpoint_every=1
    )
    run_sweep([spec], ResultStore(), checkpoint_dir=str(checkpoints))

    rows = CheckpointManager(checkpoints).lineage()
    assert [row["action"] for row in rows].count("resume") == 1
    save_rounds = [row["round"] for row in rows if row["action"] == "save"]
    assert save_rounds == sorted(save_rounds)
    assert all(row["key"] == spec.content_hash() for row in rows)


def test_lineage_stays_out_of_the_store(tmp_path):
    """Store rows carry no checkpoint provenance — that is what keeps the
    interrupted-and-resumed store byte-identical to the uninterrupted one."""

    checkpoints = tmp_path / "checkpoints"
    store_path = tmp_path / "store.jsonl"
    spec = make_specs()[0]
    preemption.preempt_after_round(2)
    run_sweep(
        [spec],
        ResultStore(store_path),
        checkpoint_dir=str(checkpoints),
        checkpoint_every=1,
    )
    run_sweep([spec], ResultStore(store_path), checkpoint_dir=str(checkpoints))
    with store_path.open() as handle:
        rows = [json.loads(line) for line in handle if line.strip()]
    assert len(rows) == 1
    assert set(rows[0]) == {"key", "spec", "result"}


def test_spec_run_refuses_a_foreign_snapshot(tmp_path):
    checkpoints = tmp_path / "checkpoints"
    specs = make_specs()
    preemption.preempt_after_round(2)
    run_sweep(
        [specs[0]], ResultStore(), checkpoint_dir=str(checkpoints), checkpoint_every=1
    )
    preemption.reset()
    snapshot = CheckpointManager(checkpoints).load_for_spec(specs[0])
    with pytest.raises(CheckpointError, match="refusing to resume"):
        specs[1].run(snapshot=snapshot)


def test_manager_detects_misfiled_snapshot(tmp_path):
    checkpoints = tmp_path / "checkpoints"
    specs = make_specs()
    preemption.preempt_after_round(2)
    run_sweep(
        [specs[0]], ResultStore(), checkpoint_dir=str(checkpoints), checkpoint_every=1
    )
    preemption.reset()
    manager = CheckpointManager(checkpoints)
    # File the snapshot under the wrong spec's key, as a rename/tamper would.
    manager.path_for(specs[0].content_hash()).rename(
        manager.path_for(specs[1].content_hash())
    )
    with pytest.raises(CheckpointError, match="does not belong"):
        manager.load_for_spec(specs[1])
