"""Tests for the JSONL result store: persistence, resume keys, corruption."""

import json

import pytest

from repro.orchestration.schemes import SchemeSpec
from repro.orchestration.spec import ExperimentSpec
from repro.orchestration.store import ResultStore
from repro.simulation import ExperimentResult

TINY = {"num_nodes": 4, "degree": 2, "rounds": 2, "eval_every": 1, "eval_test_samples": 32}


def _spec(seed=1):
    return ExperimentSpec("movielens", SchemeSpec("jwins"), {**TINY, "seed": seed})


def _result(scheme="jwins"):
    return ExperimentResult(
        scheme=scheme, task="movielens", num_nodes=4, rounds_completed=2, total_bytes=100.0
    )


def test_in_memory_store_round_trips():
    store = ResultStore()
    spec = _spec()
    store.put(spec, _result())
    assert spec in store
    assert len(store) == 1
    assert store.get(spec) == _result()


def test_persistence_across_instances(tmp_path):
    path = tmp_path / "results.jsonl"
    spec = _spec()
    ResultStore(path).put(spec, _result())
    reloaded = ResultStore(path)
    assert spec in reloaded
    assert reloaded.get(spec) == _result()
    assert reloaded.get_spec(spec.content_hash()) == spec


def test_missing_spec_returns_none():
    store = ResultStore()
    assert store.get(_spec()) is None
    assert _spec() not in store


def test_changed_spec_misses_the_store(tmp_path):
    path = tmp_path / "results.jsonl"
    store = ResultStore(path)
    store.put(_spec(seed=1), _result())
    # Any config change produces a different content hash: the old result is
    # invisible (invalidated), not silently reused.
    assert _spec(seed=2) not in ResultStore(path)


def test_last_write_wins_per_key(tmp_path):
    path = tmp_path / "results.jsonl"
    store = ResultStore(path)
    spec = _spec()
    store.put(spec, _result())
    updated = _result()
    updated.total_bytes = 999.0
    store.put(spec, updated)
    reloaded = ResultStore(path)
    assert len(reloaded) == 1
    assert reloaded.get(spec).total_bytes == 999.0


def test_accepts_result_dicts():
    store = ResultStore()
    spec = _spec()
    store.put(spec, _result().to_dict())
    assert store.get(spec) == _result()


def test_truncated_final_line_is_discarded(tmp_path):
    path = tmp_path / "results.jsonl"
    store = ResultStore(path)
    store.put(_spec(seed=1), _result())
    store.put(_spec(seed=2), _result())
    # Simulate a writer killed mid-line.
    with path.open("a", encoding="utf-8") as handle:
        handle.write('{"key": "abc", "spec": {"wor')
    reloaded = ResultStore(path)
    assert len(reloaded) == 2
    assert reloaded.discarded_lines == 1


def test_non_record_json_is_discarded(tmp_path):
    path = tmp_path / "results.jsonl"
    path.write_text(json.dumps({"not": "a record"}) + "\n", encoding="utf-8")
    reloaded = ResultStore(path)
    assert len(reloaded) == 0
    assert reloaded.discarded_lines == 1


def test_items_yields_spec_result_pairs(tmp_path):
    path = tmp_path / "results.jsonl"
    store = ResultStore(path)
    store.put(_spec(seed=1), _result())
    store.put(_spec(seed=2), _result())
    pairs = list(ResultStore(path).items())
    assert len(pairs) == 2
    assert {spec.overrides["seed"] for spec, _ in pairs} == {1, 2}
    assert all(isinstance(result, ExperimentResult) for _, result in pairs)


def test_store_creates_parent_directories(tmp_path):
    path = tmp_path / "nested" / "dir" / "results.jsonl"
    ResultStore(path).put(_spec(), _result())
    assert path.exists()
