"""Scenarios as a sweepable axis: hashing, resume and worker determinism."""

from __future__ import annotations

import json

from repro.orchestration.pool import run_sweep
from repro.orchestration.schemes import SchemeSpec
from repro.orchestration.spec import ExperimentSpec
from repro.orchestration.store import ResultStore
from repro.orchestration.sweep import Sweep
from repro.scenarios import get_scenario

TINY = {"num_nodes": 4, "degree": 2, "rounds": 3, "eval_every": 1, "eval_test_samples": 32}

CHURN = get_scenario("churn-partition", num_nodes=4, rounds=3).to_dict()
STATIC = get_scenario("static", num_nodes=4, rounds=3).to_dict()


def _scenario_sweep() -> Sweep:
    return Sweep(
        name="scenario-axis",
        workloads=("movielens",),
        schemes=(SchemeSpec("full-sharing"),),
        axes={"scenario": (STATIC, CHURN)},
        base_overrides=TINY,
    )


def test_scenario_axis_expands_with_readable_labels():
    cells = _scenario_sweep().cells()
    assert len(cells) == 2
    assert [cell.label for cell in cells] == [
        "movielens/full-sharing/scenario=static",
        "movielens/full-sharing/scenario=churn-partition",
    ]


def test_scenario_spec_hash_survives_the_json_round_trip():
    spec = ExperimentSpec(
        workload="movielens",
        scheme=SchemeSpec("full-sharing"),
        overrides={**TINY, "scenario": CHURN},
    )
    rebuilt = ExperimentSpec.from_dict(json.loads(json.dumps(spec.to_dict())))
    assert rebuilt == spec
    assert rebuilt.content_hash() == spec.content_hash()


def test_scenario_change_invalidates_the_hash():
    base = ExperimentSpec(
        workload="movielens", scheme=SchemeSpec("full-sharing"), overrides=dict(TINY)
    )
    churned = ExperimentSpec(
        workload="movielens",
        scheme=SchemeSpec("full-sharing"),
        overrides={**TINY, "scenario": CHURN},
    )
    assert base.content_hash() != churned.content_hash()


def test_scenario_spec_builds_a_config_with_the_schedule():
    spec = ExperimentSpec(
        workload="movielens",
        scheme=SchemeSpec("full-sharing"),
        overrides={**TINY, "scenario": CHURN},
    )
    _, _, config, _ = spec.build()
    assert config.scenario is not None
    assert config.scenario.name == "churn-partition"
    assert config.scenario.to_dict() == CHURN


def test_churn_sweep_is_bit_identical_serial_vs_pool(tmp_path):
    sweep = _scenario_sweep()
    serial_store = ResultStore(tmp_path / "serial.jsonl")
    pool_store = ResultStore(tmp_path / "pool.jsonl")
    run_sweep(sweep, serial_store, workers=1)
    run_sweep(sweep, pool_store, workers=2)
    serial_bytes = (tmp_path / "serial.jsonl").read_bytes()
    pool_bytes = (tmp_path / "pool.jsonl").read_bytes()
    assert serial_bytes == pool_bytes


def test_churn_sweep_resumes_from_its_store(tmp_path):
    sweep = _scenario_sweep()
    store = ResultStore(tmp_path / "store.jsonl")
    first = run_sweep(sweep, store, workers=1)
    assert len(first.executed) == 2
    resumed = run_sweep(sweep, ResultStore(tmp_path / "store.jsonl"), workers=1)
    assert len(resumed.executed) == 0
    assert len(resumed.skipped) == 2
    for spec in sweep.expand():
        assert resumed.result_for(spec).to_dict() == first.result_for(spec).to_dict()
