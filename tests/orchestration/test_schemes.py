"""Tests for the declarative scheme registry."""

import pytest

from repro.exceptions import ConfigurationError
from repro.orchestration.schemes import (
    SCHEME_REGISTRY,
    SchemeSpec,
    available_schemes,
    build_scheme_factory,
    describe_schemes,
)


@pytest.mark.parametrize("name", available_schemes())
def test_every_registered_scheme_builds(name):
    factory = build_scheme_factory(name)
    scheme = factory(0, 200, 1)
    assert hasattr(scheme, "prepare")
    assert hasattr(scheme, "aggregate")


def test_registry_covers_cli_choices():
    assert set(available_schemes()) == {
        "jwins",
        "jwins-adaptive",
        "full-sharing",
        "random-sampling",
        "topk",
        "choco",
        "quantized",
    }


def test_params_configure_the_scheme():
    scheme = build_scheme_factory("jwins", {"budget": 0.2})(0, 200, 1)
    assert scheme.config.expected_sharing_fraction == pytest.approx(0.2)


def test_unknown_scheme_raises():
    with pytest.raises(ConfigurationError, match="unknown scheme"):
        build_scheme_factory("magic")


def test_unknown_param_raises_and_names_allowed():
    with pytest.raises(ConfigurationError, match="allowed: fraction, gamma"):
        build_scheme_factory("choco", {"momentum": 0.9})


def test_param_on_parameterless_scheme_raises():
    with pytest.raises(ConfigurationError, match="allowed: none"):
        build_scheme_factory("full-sharing", {"fraction": 0.5})


def test_describe_schemes_lists_everything():
    text = describe_schemes()
    for name in SCHEME_REGISTRY:
        assert name in text


class TestSchemeSpec:
    def test_default_label_is_name(self):
        assert SchemeSpec("jwins").label == "jwins"

    def test_label_includes_sorted_params(self):
        spec = SchemeSpec("choco", {"gamma": 0.6, "fraction": 0.2})
        assert spec.label == "choco[fraction=0.2,gamma=0.6]"

    def test_explicit_label_wins(self):
        assert SchemeSpec("choco", {"fraction": 0.2}, label="choco@20%").label == "choco@20%"

    def test_invalid_spec_fails_at_construction(self):
        with pytest.raises(ConfigurationError):
            SchemeSpec("jwins", {"fraction": 0.5})

    def test_round_trip(self):
        spec = SchemeSpec("choco", {"fraction": 0.2, "gamma": 0.6}, label="choco@20%")
        assert SchemeSpec.from_dict(spec.to_dict()) == spec

    def test_coerce_accepts_strings_and_mappings(self):
        assert SchemeSpec.coerce("jwins") == SchemeSpec("jwins")
        assert SchemeSpec.coerce({"name": "jwins"}) == SchemeSpec("jwins")
        spec = SchemeSpec("topk", {"fraction": 0.1})
        assert SchemeSpec.coerce(spec) is spec
