"""Tests for the sweep executor: resume, observers and parallel determinism.

These pin the two orchestration acceptance criteria:

* an interrupted sweep resumes without recomputing completed cells (proven by
  counting executed specs through a :class:`SweepObserver`);
* a 2-worker run of the Table I grid on the synthetic workloads matches the
  serial run's accuracies and byte counts exactly (bit-identical results).
"""

import pytest

from repro.orchestration.pool import SweepObserver, run_sweep
from repro.orchestration.schemes import SchemeSpec
from repro.orchestration.spec import ExperimentSpec
from repro.orchestration.store import ResultStore
from repro.orchestration.sweep import Sweep
from repro.orchestration.artifacts import table1_sweep

TINY = {"num_nodes": 4, "degree": 2, "rounds": 2, "eval_every": 1, "eval_test_samples": 32}


class CountingObserver(SweepObserver):
    def __init__(self):
        self.started = []
        self.executed = []
        self.skipped = []

    def on_start(self, spec):
        self.started.append(spec)

    def on_result(self, spec, result):
        self.executed.append(spec)

    def on_skip(self, spec, result):
        self.skipped.append(spec)


class InterruptAfter(SweepObserver):
    """Simulates the user hitting Ctrl-C after N completed cells."""

    def __init__(self, cells: int):
        self.cells = cells
        self.completed = 0

    def on_result(self, spec, result):
        self.completed += 1
        if self.completed >= self.cells:
            raise KeyboardInterrupt


def _sweep(**kwargs):
    defaults = dict(
        name="test",
        workloads=("movielens",),
        schemes=(SchemeSpec("jwins"), SchemeSpec("full-sharing")),
        axes={"seed": (1, 2)},
        base_overrides=TINY,
    )
    defaults.update(kwargs)
    return Sweep(**defaults)


class TestSerialExecution:
    def test_all_cells_execute_and_outcome_is_complete(self):
        observer = CountingObserver()
        outcome = run_sweep(_sweep(), observer=observer)
        assert len(outcome.executed) == 4
        assert len(outcome.skipped) == 0
        assert len(outcome.results) == 4
        assert [s.content_hash() for s in observer.started] == [
            s.content_hash() for s in observer.executed
        ]
        for spec in outcome.specs:
            assert outcome.result_for(spec).rounds_completed == 2

    def test_labelled_results_include_axis_values(self):
        outcome = run_sweep(_sweep())
        labels = list(outcome.labelled_results())
        assert "movielens/jwins/seed=1" in labels
        assert "movielens/jwins/seed=2" in labels
        assert len(labels) == 4

    def test_duplicate_cells_execute_once(self):
        sweep = _sweep(axes={"seed": (3, 3)})  # same cell twice
        observer = CountingObserver()
        outcome = run_sweep(sweep, observer=observer)
        assert len(outcome.specs) == 4  # the sweep still lists every occurrence
        assert len(observer.executed) == 2  # but each unique cell ran once
        assert len(outcome.results) == 2
        for spec in outcome.specs:
            assert outcome.result_for(spec).rounds_completed == 2

    def test_accepts_plain_spec_lists(self):
        specs = [ExperimentSpec("movielens", "jwins", {**TINY, "seed": 1})]
        outcome = run_sweep(specs)
        assert outcome.name == "adhoc"
        assert len(outcome.executed) == 1

    def test_invalid_worker_count_rejected(self):
        with pytest.raises(ValueError, match="workers"):
            run_sweep(_sweep(), workers=0)


class TestResume:
    def test_interrupted_sweep_resumes_without_recomputing(self, tmp_path):
        """Acceptance: interrupt after 2 of 4 cells, resume runs exactly 2."""

        store_path = tmp_path / "results.jsonl"
        sweep = _sweep()

        with pytest.raises(KeyboardInterrupt):
            run_sweep(sweep, ResultStore(store_path), observer=InterruptAfter(2))
        assert len(ResultStore(store_path)) == 2

        observer = CountingObserver()
        outcome = run_sweep(sweep, ResultStore(store_path), observer=observer)
        assert len(observer.executed) == 2  # only the missing cells ran
        assert len(observer.skipped) == 2  # the completed ones were reused
        assert len(outcome.results) == 4  # but the outcome is complete

        # A third run recomputes nothing at all.
        observer = CountingObserver()
        run_sweep(sweep, ResultStore(store_path), observer=observer)
        assert len(observer.executed) == 0
        assert len(observer.skipped) == 4

    def test_skipped_results_equal_executed_ones(self, tmp_path):
        store_path = tmp_path / "results.jsonl"
        sweep = _sweep()
        first = run_sweep(sweep, ResultStore(store_path))
        second = run_sweep(sweep, ResultStore(store_path))
        for key, result in first.results.items():
            assert second.results[key].to_dict() == result.to_dict()

    def test_config_change_invalidates_stored_cells(self, tmp_path):
        store_path = tmp_path / "results.jsonl"
        run_sweep(_sweep(), ResultStore(store_path))
        observer = CountingObserver()
        changed = _sweep(base_overrides={**TINY, "rounds": 3})
        run_sweep(changed, ResultStore(store_path), observer=observer)
        assert len(observer.executed) == 4  # nothing matched the old hashes
        assert len(observer.skipped) == 0

    def test_force_reexecutes_stored_cells(self, tmp_path):
        store_path = tmp_path / "results.jsonl"
        run_sweep(_sweep(), ResultStore(store_path))
        observer = CountingObserver()
        run_sweep(_sweep(), ResultStore(store_path), observer=observer, force=True)
        assert len(observer.executed) == 4
        assert len(observer.skipped) == 0


class TestParallelDeterminism:
    def test_two_worker_table1_grid_matches_serial_exactly(self):
        """Acceptance: parallel and serial runs are bit-identical.

        Uses the Table I grid (full sharing, random sampling, JWINS) on the
        synthetic movielens workload at test scale.
        """

        sweep = table1_sweep(workloads=("movielens",), scale=TINY)
        serial = run_sweep(sweep, ResultStore(), workers=1)
        parallel = run_sweep(sweep, ResultStore(), workers=2)

        assert len(serial.results) == len(parallel.results) == 3
        for spec in sweep.expand():
            a = serial.result_for(spec)
            b = parallel.result_for(spec)
            # Bit-identical accuracies, byte counts and full histories.
            assert a.to_dict() == b.to_dict()
            assert a.final_accuracy == b.final_accuracy
            assert a.total_bytes == b.total_bytes

    def test_parallel_run_fills_the_store_like_serial(self, tmp_path):
        sweep = _sweep()
        serial_store = ResultStore(tmp_path / "serial.jsonl")
        parallel_store = ResultStore(tmp_path / "parallel.jsonl")
        run_sweep(sweep, serial_store, workers=1)
        run_sweep(sweep, parallel_store, workers=2)
        for spec in sweep.expand():
            assert serial_store.get(spec).to_dict() == parallel_store.get(spec).to_dict()

    def test_parallel_resume_skips_stored_cells(self, tmp_path):
        store_path = tmp_path / "results.jsonl"
        sweep = _sweep()
        run_sweep(sweep.expand()[:2], ResultStore(store_path))
        observer = CountingObserver()
        outcome = run_sweep(sweep, ResultStore(store_path), workers=2, observer=observer)
        assert len(observer.skipped) == 2
        assert len(observer.executed) == 2
        assert len(outcome.results) == 4
