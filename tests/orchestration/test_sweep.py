"""Tests for Sweep expansion."""

import pytest

from repro.exceptions import ConfigurationError
from repro.orchestration.schemes import SchemeSpec
from repro.orchestration.sweep import Sweep

TINY = {"num_nodes": 4, "degree": 2, "rounds": 2, "eval_every": 1, "eval_test_samples": 32}


def _sweep(**kwargs):
    defaults = dict(
        name="test",
        workloads=("movielens",),
        schemes=(SchemeSpec("jwins"), SchemeSpec("full-sharing")),
        base_overrides=TINY,
    )
    defaults.update(kwargs)
    return Sweep(**defaults)


def test_expansion_is_the_full_product():
    sweep = _sweep(
        workloads=("movielens", "cifar10"),
        axes={"seed": (1, 2, 3)},
    )
    specs = sweep.expand()
    assert len(sweep) == 2 * 2 * 3
    assert len(specs) == len(sweep)
    assert len({spec.content_hash() for spec in specs}) == len(specs)


def test_expansion_order_is_deterministic():
    assert [c.label for c in _sweep(axes={"seed": (1, 2)}).cells()] == [
        "movielens/jwins/seed=1",
        "movielens/full-sharing/seed=1",
        "movielens/jwins/seed=2",
        "movielens/full-sharing/seed=2",
    ]


def test_axis_values_override_base_overrides():
    sweep = _sweep(axes={"rounds": (3,)})
    spec = sweep.expand()[0]
    assert spec.overrides["rounds"] == 3
    assert spec.overrides["num_nodes"] == 4


def test_bare_scheme_names_are_coerced():
    sweep = _sweep(schemes=("jwins", "topk"))
    assert all(isinstance(scheme, SchemeSpec) for scheme in sweep.schemes)


def test_task_seed_propagates_to_every_cell():
    sweep = _sweep(task_seed=7)
    assert all(spec.task_seed == 7 for spec in sweep.expand())


def test_round_trip():
    sweep = _sweep(axes={"seed": (1, 2)}, task_seed=3)
    rebuilt = Sweep.from_dict(sweep.to_dict())
    assert rebuilt == sweep
    assert [s.content_hash() for s in rebuilt.expand()] == [
        s.content_hash() for s in sweep.expand()
    ]


@pytest.mark.parametrize(
    "kwargs, match",
    [
        (dict(name=""), "non-empty name"),
        (dict(workloads=()), "at least one workload"),
        (dict(schemes=()), "at least one workload"),
        (dict(axes={"seed": ()}), "no values"),
        (dict(schemes=("jwins", "jwins")), "labels must be unique"),
    ],
)
def test_invalid_sweeps_rejected(kwargs, match):
    with pytest.raises(ConfigurationError, match=match):
        _sweep(**kwargs)


def test_duplicate_schemes_allowed_with_distinct_labels():
    sweep = _sweep(
        schemes=(
            SchemeSpec("jwins", {"budget": 0.2}, label="jwins@20%"),
            SchemeSpec("jwins", {"budget": 0.1}, label="jwins@10%"),
        )
    )
    assert len(sweep.expand()) == 2
