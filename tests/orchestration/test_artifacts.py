"""Tests for the artifact regeneration layer."""

import pytest

from repro.exceptions import ConfigurationError
from repro.orchestration.artifacts import (
    ARTIFACTS,
    TABLE1_WORKLOADS,
    fig6_sweep,
    fig7_sweep,
    get_artifact,
    regenerate,
    render_fig7,
    render_table1,
    table1_sweep,
)
from repro.orchestration.pool import run_sweep
from repro.orchestration.store import ResultStore

TINY = {"num_nodes": 4, "degree": 2, "rounds": 2, "eval_every": 1, "eval_test_samples": 32}


class TestSweepDefinitions:
    def test_table1_grid_shape(self):
        sweep = table1_sweep()
        assert len(sweep) == len(TABLE1_WORKLOADS) * 3
        labels = {scheme.label for scheme in sweep.schemes}
        assert labels == {"full-sharing", "random-sampling", "jwins"}

    def test_fig7_grid_covers_static_and_dynamic(self):
        cells = fig7_sweep().cells()
        assert len(cells) == 6
        assert {cell.axes["dynamic_topology"] for cell in cells} == {False, True}
        # The dynamic-topology experiment pins the dataset seed the benchmark used.
        assert all(cell.spec.task_seed == 3 for cell in cells)

    def test_fig6_budget_cells(self):
        sweep = fig6_sweep()
        labels = [scheme.label for scheme in sweep.schemes]
        assert labels == [
            "full-sharing",
            "jwins@20%",
            "choco@20%",
            "jwins@10%",
            "choco@10%",
        ]

    def test_scale_merges_into_every_cell(self):
        sweep = table1_sweep(workloads=("movielens",), scale={"rounds": 2})
        assert all(spec.overrides["rounds"] == 2 for spec in sweep.expand())
        # Unscaled fields keep the benchmark defaults.
        assert all(spec.overrides["num_nodes"] == 8 for spec in sweep.expand())

    def test_registry_lookup(self):
        assert get_artifact("table1").name == "table1"
        with pytest.raises(ConfigurationError, match="unknown artifact"):
            get_artifact("fig99")
        assert set(ARTIFACTS) == {"table1", "fig6", "fig7"}


class TestRendering:
    def test_table1_render_from_filled_store(self):
        store = ResultStore()
        run_sweep(table1_sweep(workloads=("movielens",), scale=TINY), store)
        reports = render_table1(store, workloads=("movielens",), scale=TINY)
        assert set(reports) == {"table1_fig4_movielens"}
        report = reports["table1_fig4_movielens"]
        assert "movielens" in report
        assert "Figure 4 accuracy curves" in report
        assert "metadata sent by JWINS" in report

    def test_fig7_render_from_filled_store(self):
        store = ResultStore()
        run_sweep(fig7_sweep(scale=TINY), store)
        report = render_fig7(store, scale=TINY)["fig7_dynamic_topology"]
        for row in (
            "full-sharing static",
            "full-sharing dynamic",
            "jwins dynamic",
            "choco dynamic",
        ):
            assert row in report

    def test_missing_cell_raises_with_preset_hint(self):
        with pytest.raises(ConfigurationError, match="sweep --preset table1"):
            render_table1(ResultStore(), workloads=("movielens",), scale=TINY)

    def test_regenerate_writes_files(self, tmp_path):
        store = ResultStore()
        run_sweep(table1_sweep(workloads=TABLE1_WORKLOADS, scale=TINY), store)
        run_sweep(fig6_sweep(scale=TINY), store)
        run_sweep(fig7_sweep(scale=TINY), store)
        written = regenerate(store, tmp_path, scale=TINY)
        names = {path.name for path in written}
        assert "fig7_dynamic_topology.txt" in names
        assert "fig6_jwins_vs_choco.txt" in names
        assert {f"table1_fig4_{w}.txt" for w in TABLE1_WORKLOADS} <= names
        for path in written:
            assert path.read_text(encoding="utf-8").strip()

    def test_regenerate_subset(self, tmp_path):
        store = ResultStore()
        run_sweep(fig7_sweep(scale=TINY), store)
        written = regenerate(store, tmp_path, names=["fig7"], scale=TINY)
        assert [path.name for path in written] == ["fig7_dynamic_topology.txt"]
