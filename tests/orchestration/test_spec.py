"""Tests for ExperimentSpec: hashing, seeding, serialization, materialization."""

import json

import pytest

from repro.exceptions import ConfigurationError
from repro.orchestration.schemes import SchemeSpec
from repro.orchestration.spec import ExperimentSpec
from repro.simulation import HeterogeneousTimeModel

TINY = {"num_nodes": 4, "degree": 2, "rounds": 2, "eval_every": 1, "eval_test_samples": 32}


def _spec(**kwargs):
    defaults = dict(workload="movielens", scheme=SchemeSpec("jwins"), overrides=TINY)
    defaults.update(kwargs)
    return ExperimentSpec(**defaults)


class TestIdentity:
    def test_round_trip_through_json_is_exact(self):
        spec = _spec(task_seed=7)
        rebuilt = ExperimentSpec.from_dict(json.loads(json.dumps(spec.to_dict())))
        assert rebuilt == spec
        assert rebuilt.content_hash() == spec.content_hash()

    def test_hash_is_stable_across_tuple_vs_list_overrides(self):
        a = _spec(overrides={**TINY, "compute_speed_range": (1.0, 2.0)})
        b = _spec(overrides={**TINY, "compute_speed_range": [1.0, 2.0]})
        assert a == b
        assert a.content_hash() == b.content_hash()

    def test_hash_changes_with_any_field(self):
        base = _spec()
        assert base.content_hash() != _spec(workload="cifar10").content_hash()
        assert base.content_hash() != _spec(scheme=SchemeSpec("topk")).content_hash()
        assert (
            base.content_hash()
            != _spec(overrides={**TINY, "rounds": 3}).content_hash()
        )
        assert base.content_hash() != _spec(task_seed=5).content_hash()

    def test_unknown_workload_fails_at_construction(self):
        with pytest.raises(ConfigurationError, match="unknown workload"):
            _spec(workload="imagenet")

    def test_non_json_override_rejected(self):
        with pytest.raises(ConfigurationError, match="not JSON-serializable"):
            _spec(overrides={**TINY, "time_model": object()})

    def test_scheme_strings_are_coerced(self):
        assert ExperimentSpec("movielens", "jwins").scheme == SchemeSpec("jwins")

    def test_label(self):
        assert _spec().label == "movielens/jwins"


class TestSeeding:
    def test_explicit_seed_override_wins(self):
        spec = _spec(overrides={**TINY, "seed": 123})
        assert spec.resolved_seed() == 123

    def test_derived_seed_is_deterministic_and_positive(self):
        spec = _spec()
        assert spec.resolved_seed() == _spec().resolved_seed()
        assert spec.resolved_seed() >= 1

    def test_distinct_specs_get_distinct_derived_seeds(self):
        assert _spec().resolved_seed() != _spec(workload="cifar10").resolved_seed()

    def test_task_seed_defaults_to_experiment_seed(self):
        spec = _spec(overrides={**TINY, "seed": 9})
        assert spec.resolved_task_seed() == 9
        assert _spec(task_seed=3).resolved_task_seed() == 3


class TestMaterialization:
    def test_build_applies_overrides(self):
        task, factory, config, workload = _spec(overrides={**TINY, "seed": 5}).build()
        assert workload.name == "movielens"
        assert config.num_nodes == 4
        assert config.rounds == 2
        assert config.seed == 5
        assert task.name == "movielens"
        scheme = factory(0, 100, 1)
        assert hasattr(scheme, "prepare")

    def test_build_coerces_range_and_time_model_overrides(self):
        spec = _spec(
            overrides={
                **TINY,
                "execution": "async",
                "compute_speed_range": [1.0, 3.0],
                "time_model": HeterogeneousTimeModel().to_dict(),
            }
        )
        _, _, config, _ = spec.build()
        assert config.execution == "async"
        assert config.compute_speed_range == (1.0, 3.0)
        assert isinstance(config.time_model, HeterogeneousTimeModel)

    def test_unknown_override_field_raises_configuration_error(self):
        with pytest.raises(ConfigurationError, match="movielens/jwins"):
            _spec(overrides={**TINY, "warp_factor": 9}).build()

    def test_run_produces_result_with_scheme_label(self):
        result = _spec(overrides={**TINY, "seed": 2}).run()
        assert result.scheme == "jwins"
        assert result.rounds_completed == 2
        assert result.total_bytes > 0

    def test_same_spec_runs_identically(self):
        a = _spec(overrides={**TINY, "seed": 2}).run()
        b = _spec(overrides={**TINY, "seed": 2}).run()
        assert a.to_dict() == b.to_dict()
