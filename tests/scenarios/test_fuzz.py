"""Property tests for the scenario fuzzer (repro.scenarios.fuzz).

Three layers:

* the *generator* — every produced case is well-formed, serializable and
  deterministic in (seed, index), and the distribution actually covers the
  event space (all window kinds, both execution modes, every Byzantine mode);
* the *shrinker* — greedy delta-debugging reaches a minimal case under a
  known predicate;
* the *oracles* — a sampled case passes them, and the injected-chaos
  self-test path catches deliberately broken determinism and shrinks it
  while keeping the Byzantine window the bug lives in.
"""

from __future__ import annotations

import json
import os
import subprocess
import sys

from repro.scenarios.fuzz import (
    ORACLES,
    FuzzCase,
    _oracle_rerun,
    forensics_for_case,
    generate_case,
    install_chaos,
    main,
    run_case,
    shrink_case,
)
from repro.scenarios.schedule import (
    BYZANTINE_MODES,
    ByzantineWindow,
    NodeOutage,
    PartitionWindow,
    ScenarioSchedule,
    StragglerWindow,
)
from repro.topology.policy import GeneratorPolicy


# -- generation --------------------------------------------------------------------
def test_generated_cases_are_well_formed_and_round_trip():
    for index in range(40):
        case = generate_case(0, index)
        assert 4 <= case.num_nodes <= 6
        assert 3 <= case.rounds <= 6
        assert case.execution in ("sync", "async")
        # Every window fits the deployment and can actually open.
        case.schedule.validate_for(case.num_nodes, rounds=case.rounds)
        # No combination of outages empties a round (node 0 is the anchor).
        for round_index in range(case.rounds):
            assert case.schedule.state_at(round_index, case.num_nodes).active
        # The case survives its own JSON round trip exactly (what --replay needs).
        rebuilt = FuzzCase.from_dict(json.loads(json.dumps(case.to_dict())))
        assert rebuilt == case
        assert rebuilt.to_dict() == case.to_dict()


def test_generation_is_a_pure_function_of_seed_and_index():
    for index in range(10):
        assert generate_case(3, index) == generate_case(3, index)
    assert generate_case(3, 0) != generate_case(4, 0)


def test_generation_covers_the_event_space():
    cases = [generate_case(1, index) for index in range(60)]
    assert {case.execution for case in cases} == {"sync", "async"}
    assert any(case.schedule.outages for case in cases)
    assert any(case.schedule.partitions for case in cases)
    assert any(case.schedule.stragglers for case in cases)
    assert any(case.schedule.byzantine for case in cases)
    assert any(case.schedule.topology.rewire_every > 0 for case in cases)
    assert any(case.drop_probability > 0 for case in cases)
    # Permanent departures (end_round=None) are part of the distribution.
    assert any(
        outage.end_round is None for case in cases for outage in case.schedule.outages
    )
    modes = {window.mode for case in cases for window in case.schedule.byzantine}
    assert modes == set(BYZANTINE_MODES)


def test_ensure_byzantine_guarantees_an_attack_window():
    for index in range(20):
        case = generate_case(0, index, ensure_byzantine=True)
        assert case.schedule.byzantine


def test_case_spec_embeds_the_schedule_and_offsets_seeds():
    case = generate_case(0, 0)
    spec = case.spec("movielens", "jwins")
    assert spec.overrides["scenario"] == case.schedule.to_dict()
    assert spec.overrides["rounds"] == case.rounds
    companion = case.spec("movielens", "jwins", seed_offset=1)
    assert companion.overrides["seed"] == spec.overrides["seed"] + 1
    assert companion.content_hash() != spec.content_hash()


# -- shrinking ---------------------------------------------------------------------
def test_shrinker_reaches_a_minimal_case():
    case = FuzzCase(
        index=0,
        num_nodes=4,
        rounds=6,
        execution="sync",
        drop_probability=0.15,
        run_seed=9,
        schedule=ScenarioSchedule(
            name="shrink-me",
            topology=GeneratorPolicy(
                generator="small-world", rewire_every=2, params=(("beta", 0.2),)
            ),
            outages=(NodeOutage(node=1, start_round=1, end_round=3),),
            partitions=(
                PartitionWindow(start_round=0, end_round=4, groups=((0, 1), (2, 3))),
            ),
            stragglers=(
                StragglerWindow(start_round=2, end_round=5, nodes=(2,), slowdown=2.0),
            ),
            byzantine=(
                ByzantineWindow(start_round=0, end_round=6, nodes=(3,), mode="sign-flip"),
                ByzantineWindow(
                    start_round=1, end_round=4, nodes=(2,), mode="stale-replay"
                ),
            ),
        ),
    )

    # A pure stand-in for "the bug": any schedule with a byzantine window fails.
    shrunk = shrink_case(case, lambda candidate: bool(candidate.schedule.byzantine))

    assert len(shrunk.schedule.byzantine) == 1
    (window,) = shrunk.schedule.byzantine
    assert window.end_round == window.start_round + 1  # truncated to one round
    assert shrunk.schedule.outages == ()
    assert shrunk.schedule.partitions == ()
    assert shrunk.schedule.stragglers == ()
    assert shrunk.schedule.topology == GeneratorPolicy()
    assert shrunk.drop_probability == 0.0
    assert shrunk.rounds == 2  # the floor of the rounds reduction
    # The minimum is still a valid, runnable case.
    shrunk.schedule.validate_for(shrunk.num_nodes, rounds=shrunk.rounds)


def test_shrinker_returns_the_case_unchanged_at_a_fixpoint():
    case = FuzzCase(
        index=0,
        num_nodes=4,
        rounds=2,
        execution="sync",
        drop_probability=0.0,
        run_seed=1,
        schedule=ScenarioSchedule(name="already-minimal"),
    )
    assert shrink_case(case, lambda candidate: True) == case


# -- oracles -----------------------------------------------------------------------
def test_a_sampled_case_passes_every_oracle():
    assert run_case(generate_case(0, 0)) is None


def test_injected_chaos_is_caught_and_shrunk_in_process():
    case = generate_case(0, 0, ensure_byzantine=True)
    uninstall = install_chaos()
    try:
        detail = _oracle_rerun(case, "movielens", "jwins")
        assert detail is not None  # the rerun oracle must ring

        def still_fails(candidate: FuzzCase) -> bool:
            return _oracle_rerun(candidate, "movielens", "jwins") is not None

        shrunk = shrink_case(case, still_fails)
        # The bug lives in the byzantine send path: shrinking must keep it.
        assert shrunk.schedule.byzantine
        assert len(shrunk.to_dict()["schedule"]["byzantine"]) <= len(
            case.to_dict()["schedule"]["byzantine"]
        )
    finally:
        uninstall()
    # With the chaos uninstalled the same case is deterministic again.
    assert _oracle_rerun(case, "movielens", "jwins") is None


def test_forensics_localize_injected_chaos_to_a_round():
    """The root-cause pipeline: chaos -> traced re-run -> divergent record."""

    case = generate_case(0, 0, ensure_byzantine=True)
    uninstall = install_chaos()
    try:
        diff = forensics_for_case(case, "movielens", "jwins", oracle="rerun")
    finally:
        uninstall()
    assert diff is not None and not diff.identical
    assert isinstance(diff.round, int)  # the divergent round is named
    assert diff.seq is not None and diff.kind is not None
    assert diff.drifts, "the divergent record must name at least one field"
    rendered = diff.render()
    assert "first divergent record" in rendered
    assert "origin:" in rendered


def test_forensics_return_none_when_traces_agree():
    case = generate_case(0, 0)
    assert forensics_for_case(case, "movielens", "jwins", oracle="rerun") is None


# -- the CLI entry point -----------------------------------------------------------
def test_main_smoke_run_passes():
    assert main(["--cases", "1", "--seed", "0"]) == 0


def test_main_rejects_unknown_oracles():
    assert main(["--cases", "1", "--seed", "0", "--oracles", "bogus"]) == 2


def test_main_replay_of_a_passing_case(tmp_path, capsys):
    report = {
        "workload": "movielens",
        "scheme": "jwins",
        "case": generate_case(0, 0).to_dict(),
    }
    path = tmp_path / "report.json"
    path.write_text(json.dumps(report), encoding="utf-8")
    assert main(["--replay", str(path)]) == 0
    assert "did not reproduce" in capsys.readouterr().out


def test_module_self_test_catches_injected_nondeterminism():
    """End to end, as CI runs it: `python -m repro.scenarios.fuzz --self-test`."""

    env = dict(os.environ)
    env["PYTHONPATH"] = "src" + os.pathsep + env.get("PYTHONPATH", "")
    completed = subprocess.run(
        [sys.executable, "-m", "repro.scenarios.fuzz", "--self-test", "--cases", "1", "--seed", "0"],
        capture_output=True,
        text=True,
        env=env,
        cwd=os.path.dirname(os.path.dirname(os.path.dirname(os.path.abspath(__file__)))),
    )
    assert completed.returncode == 0, completed.stdout + completed.stderr
    assert "caught" in completed.stdout


def test_oracle_names_are_stable():
    # scripts/ci.sh and the README document these names; renaming is a breaking
    # change to saved failure reports.
    assert ORACLES == ("rerun", "workers", "resume", "trace")
