"""Tests for the named scenario presets."""

from __future__ import annotations

import json

import pytest

from repro.baselines import full_sharing_factory
from repro.exceptions import ConfigurationError
from repro.scenarios import (
    BUNDLED_TRACES,
    SCENARIO_PRESETS,
    bundled_trace_path,
    describe_scenarios,
    get_scenario,
)
from repro.scenarios.schedule import ScenarioSchedule
from repro.simulation import ExperimentConfig, run_experiment
from tests.conftest import make_toy_task


@pytest.mark.parametrize("name", sorted(SCENARIO_PRESETS))
@pytest.mark.parametrize("num_nodes,rounds", [(4, 3), (8, 20), (16, 40)])
def test_every_preset_builds_and_round_trips(name, num_nodes, rounds):
    schedule = get_scenario(name, num_nodes=num_nodes, rounds=rounds)
    schedule.validate_for(num_nodes)
    rebuilt = ScenarioSchedule.from_dict(json.loads(json.dumps(schedule.to_dict())))
    assert rebuilt == schedule
    # Every scheduled round keeps at least one node alive.
    for round_index in range(rounds):
        assert schedule.state_at(round_index, num_nodes).active


def test_preset_names_are_their_schedule_names():
    for name in SCENARIO_PRESETS:
        assert get_scenario(name, num_nodes=8, rounds=10).name == name


def test_unknown_preset_rejected():
    with pytest.raises(ConfigurationError, match="unknown scenario"):
        get_scenario("meteor-strike", num_nodes=8, rounds=10)


def test_lookup_is_case_insensitive():
    assert get_scenario("CHURN", num_nodes=8, rounds=10).name == "churn"


def test_churn_preset_schedules_outages():
    schedule = get_scenario("churn", num_nodes=8, rounds=20)
    assert schedule.outages
    assert all(outage.end_round is not None for outage in schedule.outages)


def test_partition_preset_splits_into_halves():
    schedule = get_scenario("partition", num_nodes=8, rounds=21)
    (window,) = schedule.partitions
    assert window.groups == ((0, 1, 2, 3), (4, 5, 6, 7))
    assert 0 < window.start_round < window.end_round <= 21


def test_describe_scenarios_lists_every_preset():
    text = describe_scenarios()
    for name in SCENARIO_PRESETS:
        assert name in text


def test_byzantine_preset_schedules_an_attack_window():
    schedule = get_scenario("byzantine", num_nodes=8, rounds=20)
    (window,) = schedule.byzantine
    assert window.mode == "sign-flip"
    assert window.nodes == (6, 7)  # the last quarter of the deployment
    assert 0 < window.start_round < window.end_round <= 20


def test_trace_presets_compile_the_bundled_traces():
    for name in BUNDLED_TRACES:
        path = bundled_trace_path(name)
        assert path.is_file(), path
        schedule = get_scenario(f"trace-{name}", num_nodes=4, rounds=12)
        assert schedule.has_events
    with pytest.raises(ConfigurationError, match="unknown bundled trace"):
        bundled_trace_path("metropolitan")


def test_trace_presets_clip_to_small_deployments():
    # The bundled traces reference nodes/rounds beyond a smoke deployment;
    # the preset must clip rather than reject.
    for name in BUNDLED_TRACES:
        schedule = get_scenario(f"trace-{name}", num_nodes=2, rounds=3)
        schedule.validate_for(2, rounds=3)


@pytest.mark.parametrize("execution", ["sync", "async"])
@pytest.mark.parametrize("name", sorted(SCENARIO_PRESETS))
def test_every_preset_actually_runs_in_both_modes(name, execution):
    """Satellite coverage: presets are runnable, not just constructible."""

    num_nodes, rounds = 4, 3
    schedule = get_scenario(name, num_nodes=num_nodes, rounds=rounds)
    config = ExperimentConfig(
        num_nodes=num_nodes,
        degree=2,
        rounds=rounds,
        local_steps=1,
        batch_size=8,
        learning_rate=0.1,
        eval_every=2,
        eval_test_samples=32,
        seed=7,
        partition="shards",
        execution=execution,
        scenario=schedule,
        **(
            {"compute_speed_range": (1.0, 2.0), "link_latency_jitter_seconds": 0.01}
            if execution == "async"
            else {}
        ),
    )
    result = run_experiment(make_toy_task(), full_sharing_factory(), config)
    assert result.rounds_completed == rounds
    if schedule.has_events:
        assert result.scenario_rounds
