"""Tests for the named scenario presets."""

from __future__ import annotations

import json

import pytest

from repro.exceptions import ConfigurationError
from repro.scenarios import SCENARIO_PRESETS, describe_scenarios, get_scenario
from repro.scenarios.schedule import ScenarioSchedule


@pytest.mark.parametrize("name", sorted(SCENARIO_PRESETS))
@pytest.mark.parametrize("num_nodes,rounds", [(4, 3), (8, 20), (16, 40)])
def test_every_preset_builds_and_round_trips(name, num_nodes, rounds):
    schedule = get_scenario(name, num_nodes=num_nodes, rounds=rounds)
    schedule.validate_for(num_nodes)
    rebuilt = ScenarioSchedule.from_dict(json.loads(json.dumps(schedule.to_dict())))
    assert rebuilt == schedule
    # Every scheduled round keeps at least one node alive.
    for round_index in range(rounds):
        assert schedule.state_at(round_index, num_nodes).active


def test_preset_names_are_their_schedule_names():
    for name in SCENARIO_PRESETS:
        assert get_scenario(name, num_nodes=8, rounds=10).name == name


def test_unknown_preset_rejected():
    with pytest.raises(ConfigurationError, match="unknown scenario"):
        get_scenario("meteor-strike", num_nodes=8, rounds=10)


def test_lookup_is_case_insensitive():
    assert get_scenario("CHURN", num_nodes=8, rounds=10).name == "churn"


def test_churn_preset_schedules_outages():
    schedule = get_scenario("churn", num_nodes=8, rounds=20)
    assert schedule.outages
    assert all(outage.end_round is not None for outage in schedule.outages)


def test_partition_preset_splits_into_halves():
    schedule = get_scenario("partition", num_nodes=8, rounds=21)
    (window,) = schedule.partitions
    assert window.groups == ((0, 1, 2, 3), (4, 5, 6, 7))
    assert 0 < window.start_round < window.end_round <= 21


def test_describe_scenarios_lists_every_preset():
    text = describe_scenarios()
    for name in SCENARIO_PRESETS:
        assert name in text
