"""Tests for ScenarioSchedule: validation, state computation, round trips."""

from __future__ import annotations

import json

import pytest

from repro.exceptions import ConfigurationError
from repro.scenarios import (
    NodeOutage,
    PartitionWindow,
    ScenarioSchedule,
    StragglerWindow,
)
from repro.topology.policy import GeneratorPolicy


def _rich_schedule() -> ScenarioSchedule:
    return ScenarioSchedule(
        name="everything",
        topology=GeneratorPolicy(
            generator="small-world", rewire_every=2, params=(("beta", 0.25),)
        ),
        outages=(
            NodeOutage(node=1, start_round=2, end_round=4),
            NodeOutage(node=3, start_round=5),  # never returns
        ),
        partitions=(
            PartitionWindow(start_round=3, end_round=6, groups=((0, 1), (2, 3))),
        ),
        stragglers=(
            StragglerWindow(start_round=1, end_round=8, nodes=(0,), slowdown=3.0),
            StragglerWindow(start_round=4, end_round=6, nodes=(0, 2), slowdown=2.0),
        ),
    )


class TestValidation:
    def test_default_is_trivial(self):
        schedule = ScenarioSchedule()
        assert schedule.is_trivial
        assert not schedule.has_events

    def test_events_make_it_non_trivial(self):
        schedule = ScenarioSchedule(outages=(NodeOutage(node=0, start_round=1, end_round=2),))
        assert schedule.has_events and not schedule.is_trivial

    def test_rewiring_alone_is_non_trivial_but_event_free(self):
        schedule = ScenarioSchedule(topology=GeneratorPolicy(rewire_every=1))
        assert not schedule.has_events
        assert not schedule.is_trivial

    def test_rejects_bad_windows(self):
        with pytest.raises(ConfigurationError):
            NodeOutage(node=0, start_round=3, end_round=3)
        with pytest.raises(ConfigurationError):
            NodeOutage(node=-1, start_round=0, end_round=1)
        with pytest.raises(ConfigurationError):
            PartitionWindow(start_round=0, end_round=2, groups=((0, 1),))
        with pytest.raises(ConfigurationError):
            PartitionWindow(start_round=0, end_round=2, groups=((0, 1), (1, 2)))
        with pytest.raises(ConfigurationError):
            StragglerWindow(start_round=0, end_round=2, nodes=(0,), slowdown=0.5)
        with pytest.raises(ConfigurationError):
            StragglerWindow(start_round=0, end_round=2, nodes=(), slowdown=2.0)

    def test_validate_for_checks_node_ids(self):
        schedule = ScenarioSchedule(outages=(NodeOutage(node=9, start_round=0, end_round=1),))
        with pytest.raises(ConfigurationError, match="node 9"):
            schedule.validate_for(4)
        schedule.validate_for(10)  # fits a larger deployment

    def test_all_nodes_offline_rejected(self):
        schedule = ScenarioSchedule(
            outages=tuple(NodeOutage(node=n, start_round=1, end_round=2) for n in range(3))
        )
        with pytest.raises(ConfigurationError, match="no active nodes"):
            schedule.state_at(1, 3)


class TestStateAt:
    def test_trivial_state(self):
        state = ScenarioSchedule().state_at(0, 4)
        assert state.active == (0, 1, 2, 3)
        assert state.partition_ids == (None, None, None, None)
        assert state.slowdowns == (1.0, 1.0, 1.0, 1.0)
        assert state.max_slowdown() == 1.0
        assert state.allows(0, 3)

    def test_outage_windows(self):
        schedule = _rich_schedule()
        assert schedule.state_at(1, 4).active == (0, 1, 2, 3)
        assert schedule.state_at(2, 4).active == (0, 2, 3)  # node 1 down
        assert schedule.state_at(4, 4).active == (0, 1, 2, 3)  # node 1 back
        assert schedule.state_at(7, 4).active == (0, 1, 2)  # node 3 gone forever
        assert not schedule.state_at(2, 4).is_active(1)
        assert not schedule.state_at(2, 4).allows(0, 1)  # offline receiver
        assert not schedule.state_at(2, 4).allows(1, 0)  # offline sender

    def test_partition_window(self):
        schedule = _rich_schedule()
        inside = schedule.state_at(4, 4)
        assert inside.partition_ids == (0, 0, 1, 1)
        assert inside.allows(0, 1)
        assert not inside.allows(1, 2)
        outside = schedule.state_at(6, 4)
        assert outside.partition_ids == (None,) * 4
        assert outside.allows(1, 2)

    def test_unlisted_nodes_form_the_remainder_group(self):
        schedule = ScenarioSchedule(
            partitions=(PartitionWindow(start_round=0, end_round=2, groups=((0,), (1,))),)
        )
        state = schedule.state_at(0, 4)
        assert state.allows(2, 3)  # both unlisted: they keep talking
        assert not state.allows(0, 2)

    def test_overlapping_stragglers_multiply(self):
        schedule = _rich_schedule()
        assert schedule.state_at(2, 4).slowdowns[0] == 3.0
        assert schedule.state_at(4, 4).slowdowns[0] == 6.0
        assert schedule.state_at(4, 4).slowdowns[2] == 2.0
        assert schedule.state_at(4, 4).max_slowdown() == 6.0

    def test_max_slowdown_ignores_offline_nodes(self):
        schedule = ScenarioSchedule(
            outages=(NodeOutage(node=0, start_round=0, end_round=2),),
            stragglers=(StragglerWindow(start_round=0, end_round=2, nodes=(0,), slowdown=9.0),),
        )
        assert schedule.state_at(0, 4).max_slowdown() == 1.0


class TestRoundTrips:
    def test_trivial_round_trip_is_exact(self):
        schedule = ScenarioSchedule()
        rebuilt = ScenarioSchedule.from_dict(json.loads(json.dumps(schedule.to_dict())))
        assert rebuilt == schedule

    def test_rich_round_trip_is_exact(self):
        schedule = _rich_schedule()
        rebuilt = ScenarioSchedule.from_dict(json.loads(json.dumps(schedule.to_dict())))
        assert rebuilt == schedule
        assert rebuilt.to_dict() == schedule.to_dict()

    def test_unknown_fields_rejected(self):
        data = ScenarioSchedule().to_dict()
        data["weather"] = "rainy"
        with pytest.raises(ConfigurationError, match="weather"):
            ScenarioSchedule.from_dict(data)

    def test_constructor_coerces_nested_dicts(self):
        data = _rich_schedule().to_dict()
        schedule = ScenarioSchedule(
            name=data["name"],
            topology=data["topology"],
            outages=tuple(data["outages"]),
            partitions=tuple(data["partitions"]),
            stragglers=tuple(data["stragglers"]),
        )
        assert schedule == _rich_schedule()
