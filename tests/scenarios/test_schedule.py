"""Tests for ScenarioSchedule: validation, state computation, round trips."""

from __future__ import annotations

import json

import pytest

from repro.exceptions import ConfigurationError
from repro.scenarios import (
    BYZANTINE_MODES,
    ByzantineWindow,
    NodeOutage,
    PartitionWindow,
    ScenarioSchedule,
    StragglerWindow,
)
from repro.topology.policy import GeneratorPolicy


def _rich_schedule() -> ScenarioSchedule:
    return ScenarioSchedule(
        name="everything",
        topology=GeneratorPolicy(
            generator="small-world", rewire_every=2, params=(("beta", 0.25),)
        ),
        outages=(
            NodeOutage(node=1, start_round=2, end_round=4),
            NodeOutage(node=3, start_round=5),  # never returns
        ),
        partitions=(
            PartitionWindow(start_round=3, end_round=6, groups=((0, 1), (2, 3))),
        ),
        stragglers=(
            StragglerWindow(start_round=1, end_round=8, nodes=(0,), slowdown=3.0),
            StragglerWindow(start_round=4, end_round=6, nodes=(0, 2), slowdown=2.0),
        ),
        byzantine=(
            ByzantineWindow(start_round=2, end_round=5, nodes=(2,), mode="sign-flip"),
            ByzantineWindow(
                start_round=3, end_round=7, nodes=(1, 2), mode="stale-replay"
            ),
        ),
    )


class TestValidation:
    def test_default_is_trivial(self):
        schedule = ScenarioSchedule()
        assert schedule.is_trivial
        assert not schedule.has_events

    def test_events_make_it_non_trivial(self):
        schedule = ScenarioSchedule(outages=(NodeOutage(node=0, start_round=1, end_round=2),))
        assert schedule.has_events and not schedule.is_trivial

    def test_rewiring_alone_is_non_trivial_but_event_free(self):
        schedule = ScenarioSchedule(topology=GeneratorPolicy(rewire_every=1))
        assert not schedule.has_events
        assert not schedule.is_trivial

    def test_rejects_bad_windows(self):
        with pytest.raises(ConfigurationError):
            NodeOutage(node=0, start_round=3, end_round=3)
        with pytest.raises(ConfigurationError):
            NodeOutage(node=-1, start_round=0, end_round=1)
        with pytest.raises(ConfigurationError):
            PartitionWindow(start_round=0, end_round=2, groups=((0, 1),))
        with pytest.raises(ConfigurationError):
            PartitionWindow(start_round=0, end_round=2, groups=((0, 1), (1, 2)))
        with pytest.raises(ConfigurationError):
            StragglerWindow(start_round=0, end_round=2, nodes=(0,), slowdown=0.5)
        with pytest.raises(ConfigurationError):
            StragglerWindow(start_round=0, end_round=2, nodes=(), slowdown=2.0)

    def test_validate_for_checks_node_ids(self):
        schedule = ScenarioSchedule(outages=(NodeOutage(node=9, start_round=0, end_round=1),))
        with pytest.raises(ConfigurationError, match="node 9"):
            schedule.validate_for(4)
        schedule.validate_for(10)  # fits a larger deployment

    def test_all_nodes_offline_rejected(self):
        schedule = ScenarioSchedule(
            outages=tuple(NodeOutage(node=n, start_round=1, end_round=2) for n in range(3))
        )
        with pytest.raises(ConfigurationError, match="no active nodes"):
            schedule.state_at(1, 3)


class TestStateAt:
    def test_trivial_state(self):
        state = ScenarioSchedule().state_at(0, 4)
        assert state.active == (0, 1, 2, 3)
        assert state.partition_ids == (None, None, None, None)
        assert state.slowdowns == (1.0, 1.0, 1.0, 1.0)
        assert state.max_slowdown() == 1.0
        assert state.allows(0, 3)

    def test_outage_windows(self):
        schedule = _rich_schedule()
        assert schedule.state_at(1, 4).active == (0, 1, 2, 3)
        assert schedule.state_at(2, 4).active == (0, 2, 3)  # node 1 down
        assert schedule.state_at(4, 4).active == (0, 1, 2, 3)  # node 1 back
        assert schedule.state_at(7, 4).active == (0, 1, 2)  # node 3 gone forever
        assert not schedule.state_at(2, 4).is_active(1)
        assert not schedule.state_at(2, 4).allows(0, 1)  # offline receiver
        assert not schedule.state_at(2, 4).allows(1, 0)  # offline sender

    def test_partition_window(self):
        schedule = _rich_schedule()
        inside = schedule.state_at(4, 4)
        assert inside.partition_ids == (0, 0, 1, 1)
        assert inside.allows(0, 1)
        assert not inside.allows(1, 2)
        outside = schedule.state_at(6, 4)
        assert outside.partition_ids == (None,) * 4
        assert outside.allows(1, 2)

    def test_unlisted_nodes_form_the_remainder_group(self):
        schedule = ScenarioSchedule(
            partitions=(PartitionWindow(start_round=0, end_round=2, groups=((0,), (1,))),)
        )
        state = schedule.state_at(0, 4)
        assert state.allows(2, 3)  # both unlisted: they keep talking
        assert not state.allows(0, 2)

    def test_overlapping_stragglers_multiply(self):
        schedule = _rich_schedule()
        assert schedule.state_at(2, 4).slowdowns[0] == 3.0
        assert schedule.state_at(4, 4).slowdowns[0] == 6.0
        assert schedule.state_at(4, 4).slowdowns[2] == 2.0
        assert schedule.state_at(4, 4).max_slowdown() == 6.0

    def test_max_slowdown_ignores_offline_nodes(self):
        schedule = ScenarioSchedule(
            outages=(NodeOutage(node=0, start_round=0, end_round=2),),
            stragglers=(StragglerWindow(start_round=0, end_round=2, nodes=(0,), slowdown=9.0),),
        )
        assert schedule.state_at(0, 4).max_slowdown() == 1.0


class TestRoundTrips:
    def test_trivial_round_trip_is_exact(self):
        schedule = ScenarioSchedule()
        rebuilt = ScenarioSchedule.from_dict(json.loads(json.dumps(schedule.to_dict())))
        assert rebuilt == schedule

    def test_rich_round_trip_is_exact(self):
        schedule = _rich_schedule()
        rebuilt = ScenarioSchedule.from_dict(json.loads(json.dumps(schedule.to_dict())))
        assert rebuilt == schedule
        assert rebuilt.to_dict() == schedule.to_dict()

    def test_unknown_fields_rejected(self):
        data = ScenarioSchedule().to_dict()
        data["weather"] = "rainy"
        with pytest.raises(ConfigurationError, match="weather"):
            ScenarioSchedule.from_dict(data)

    def test_constructor_coerces_nested_dicts(self):
        data = _rich_schedule().to_dict()
        schedule = ScenarioSchedule(
            name=data["name"],
            topology=data["topology"],
            outages=tuple(data["outages"]),
            partitions=tuple(data["partitions"]),
            stragglers=tuple(data["stragglers"]),
            byzantine=tuple(data["byzantine"]),
        )
        assert schedule == _rich_schedule()


class TestByzantine:
    def test_rejects_bad_windows(self):
        with pytest.raises(ConfigurationError):
            ByzantineWindow(start_round=3, end_round=3, nodes=(0,), mode="sign-flip")
        with pytest.raises(ConfigurationError):
            ByzantineWindow(start_round=0, end_round=2, nodes=(), mode="sign-flip")
        with pytest.raises(ConfigurationError):
            ByzantineWindow(start_round=0, end_round=2, nodes=(1, 1), mode="sign-flip")
        with pytest.raises(ConfigurationError, match="unknown byzantine mode"):
            ByzantineWindow(start_round=0, end_round=2, nodes=(0,), mode="gaslight")

    def test_nodes_are_sorted_and_modes_enumerated(self):
        window = ByzantineWindow(start_round=0, end_round=2, nodes=(3, 1), mode="sign-flip")
        assert window.nodes == (1, 3)
        for mode in BYZANTINE_MODES:
            ByzantineWindow(start_round=0, end_round=1, nodes=(0,), mode=mode)

    def test_state_resolution_is_earliest_declared_wins(self):
        schedule = _rich_schedule()
        # Round 2: only the first window ([2, 5) sign-flip on node 2) is open.
        state = schedule.state_at(2, 4)
        assert state.byzantine == (None, None, "sign-flip", None)
        assert state.byzantine_mode(2) == "sign-flip"
        assert state.byzantine_mode(0) is None
        # Round 4: both windows open; node 2 keeps the earliest-declared mode,
        # node 1 only appears in the second window.
        state = schedule.state_at(4, 4)
        assert state.byzantine == (None, "stale-replay", "sign-flip", None)
        # Round 6: only the second window is still open.
        state = schedule.state_at(6, 4)
        assert state.byzantine == (None, "stale-replay", "stale-replay", None)

    def test_trivial_schedule_reports_everyone_honest(self):
        state = ScenarioSchedule().state_at(0, 4)
        assert state.byzantine_mode(3) is None

    def test_byzantine_alone_makes_schedule_non_trivial(self):
        schedule = ScenarioSchedule(
            byzantine=(ByzantineWindow(start_round=0, end_round=1, nodes=(0,), mode="sign-flip"),)
        )
        assert schedule.has_events and not schedule.is_trivial

    def test_validate_for_checks_byzantine_node_ids(self):
        schedule = ScenarioSchedule(
            byzantine=(ByzantineWindow(start_round=0, end_round=1, nodes=(7,), mode="sign-flip"),)
        )
        with pytest.raises(ConfigurationError, match="node 7"):
            schedule.validate_for(4)
        schedule.validate_for(8)


class TestValidateForRounds:
    def test_window_opening_past_the_run_is_named_in_the_error(self):
        schedule = ScenarioSchedule(
            name="late",
            outages=(NodeOutage(node=1, start_round=9, end_round=11),),
        )
        with pytest.raises(ConfigurationError) as excinfo:
            schedule.validate_for(4, rounds=5)
        message = str(excinfo.value)
        assert "'late'" in message
        assert "outage" in message
        assert '"start_round": 9' in message  # the offending window, as JSON
        assert "5 round(s)" in message

    def test_every_window_kind_is_checked(self):
        late = dict(start_round=6, end_round=8)
        for schedule in (
            ScenarioSchedule(outages=(NodeOutage(node=0, **late),)),
            ScenarioSchedule(
                partitions=(PartitionWindow(groups=((0,), (1,)), **late),)
            ),
            ScenarioSchedule(
                stragglers=(StragglerWindow(nodes=(0,), slowdown=2.0, **late),)
            ),
            ScenarioSchedule(
                byzantine=(ByzantineWindow(nodes=(0,), mode="sign-flip", **late),)
            ),
        ):
            with pytest.raises(ConfigurationError, match="starts at round 6"):
                schedule.validate_for(4, rounds=5)

    def test_windows_merely_ending_past_the_run_are_legal(self):
        schedule = ScenarioSchedule(
            outages=(NodeOutage(node=1, start_round=2, end_round=50),),
            byzantine=(
                ByzantineWindow(start_round=0, end_round=99, nodes=(0,), mode="sign-flip"),
            ),
        )
        schedule.validate_for(4, rounds=5)  # truncated by the run, not an error

    def test_rich_schedule_passes_when_rounds_suffice(self):
        _rich_schedule().validate_for(4, rounds=8)

    def test_without_rounds_only_node_ids_are_checked(self):
        schedule = ScenarioSchedule(
            outages=(NodeOutage(node=0, start_round=100, end_round=101),)
        )
        schedule.validate_for(4)  # rounds unknown: nothing to flag


class TestFromTrace:
    def test_consecutive_offline_rounds_merge_into_one_outage(self):
        rows = [
            {"node": 2, "round": 5, "available": False},
            {"node": 2, "round": 7, "available": False},
            {"node": 2, "round": 6, "available": False},
            {"node": 0, "round": 1, "available": False},
        ]
        schedule = ScenarioSchedule.from_trace(rows, name="merge")
        assert schedule.outages == (
            NodeOutage(node=0, start_round=1, end_round=2),
            NodeOutage(node=2, start_round=5, end_round=8),
        )

    def test_gaps_split_outages(self):
        rows = [
            {"node": 1, "round": 0, "available": False},
            {"node": 1, "round": 2, "available": False},
        ]
        schedule = ScenarioSchedule.from_trace(rows)
        assert schedule.outages == (
            NodeOutage(node=1, start_round=0, end_round=1),
            NodeOutage(node=1, start_round=2, end_round=3),
        )

    def test_available_true_rows_are_ignored(self):
        rows = [{"node": 0, "round": 3, "available": True}]
        assert ScenarioSchedule.from_trace(rows).is_trivial

    def test_slowdown_rows_group_into_straggler_windows(self):
        rows = [
            {"node": 1, "start_round": 2, "end_round": 5, "slowdown": 2.5},
            {"node": 3, "start_round": 2, "end_round": 5, "slowdown": 2.5},
            {"node": 0, "round": 4, "slowdown": 1.5},
        ]
        schedule = ScenarioSchedule.from_trace(rows)
        assert schedule.stragglers == (
            StragglerWindow(start_round=2, end_round=5, nodes=(1, 3), slowdown=2.5),
            StragglerWindow(start_round=4, end_round=5, nodes=(0,), slowdown=1.5),
        )

    def test_clipping_drops_out_of_range_rows(self):
        rows = [
            {"node": 9, "round": 0, "available": False},  # node past deployment
            {"node": 1, "round": 8, "available": False},  # window past the run
            {"node": 1, "start_round": 2, "end_round": 9, "slowdown": 2.0},
        ]
        schedule = ScenarioSchedule.from_trace(rows, num_nodes=4, rounds=4)
        assert schedule.outages == ()
        assert schedule.stragglers == (
            StragglerWindow(start_round=2, end_round=4, nodes=(1,), slowdown=2.0),
        )
        schedule.validate_for(4, rounds=4)

    def test_malformed_rows_name_the_row(self):
        bad_rows = [
            ([{"round": 0, "available": False}], "missing 'node'"),
            ([{"node": 0, "round": 1}], "exactly one of"),
            ([{"node": 0, "round": 1, "available": False, "slowdown": 2.0}], "exactly one of"),
            ([{"node": 0, "available": False}], "needs 'round' or both"),
            ([{"node": 0, "round": 1, "start_round": 0, "end_round": 2, "available": False}], "not both"),
            ([{"node": 0, "start_round": 3, "end_round": 3, "available": False}], "empty or negative"),
            ([{"node": 0, "round": 1, "slowdown": 0.5}], "slowdown must be >= 1"),
            ([{"node": 0, "round": 1, "available": False, "weather": "rainy"}], "unknown field"),
        ]
        for rows, fragment in bad_rows:
            with pytest.raises(ConfigurationError, match="trace row 1") as excinfo:
                ScenarioSchedule.from_trace(rows)
            assert fragment in str(excinfo.value)

    def test_jsonl_file_with_comments_and_bad_line_numbers(self, tmp_path):
        path = tmp_path / "trace.jsonl"
        path.write_text(
            "# header comment\n"
            "\n"
            '{"node": 0, "round": 1, "available": false}\n'
            "not json\n",
            encoding="utf-8",
        )
        with pytest.raises(ConfigurationError, match="line 4"):
            ScenarioSchedule.from_trace(path)
        path.write_text(
            "# header comment\n"
            '{"node": 0, "round": 1, "available": false}\n',
            encoding="utf-8",
        )
        schedule = ScenarioSchedule.from_trace(path, name="from-file")
        assert schedule.name == "from-file"
        assert schedule.outages == (NodeOutage(node=0, start_round=1, end_round=2),)

    def test_missing_file_raises_configuration_error(self, tmp_path):
        with pytest.raises(ConfigurationError, match="cannot read trace file"):
            ScenarioSchedule.from_trace(tmp_path / "absent.jsonl")

    def test_round_trips_exactly(self):
        rows = [
            {"node": 1, "round": 0, "available": False},
            {"node": 2, "start_round": 1, "end_round": 3, "slowdown": 3.0},
        ]
        schedule = ScenarioSchedule.from_trace(rows, name="rt")
        rebuilt = ScenarioSchedule.from_dict(json.loads(json.dumps(schedule.to_dict())))
        assert rebuilt == schedule
