"""Shared fixtures: small tasks and configurations that keep tests fast."""

from __future__ import annotations

import numpy as np
import pytest

from repro.datasets.base import Dataset, LearningTask, classification_accuracy
from repro.datasets.synthetic import make_class_images
from repro.nn.losses import CrossEntropyLoss
from repro.nn.models import MLPClassifier
from repro.simulation.experiment import ExperimentConfig


@pytest.fixture
def rng() -> np.random.Generator:
    return np.random.default_rng(1234)


def make_toy_task(
    seed: int = 7,
    train_samples: int = 160,
    test_samples: int = 64,
    num_classes: int = 4,
    image_size: int = 4,
    hidden: int = 16,
) -> LearningTask:
    """A tiny, quickly learnable classification task used across the test suite.

    The model is a small MLP over 1x4x4 synthetic class-prototype images, so a
    full decentralized experiment over a handful of rounds runs in well under a
    second.
    """

    generator = np.random.default_rng(seed)
    inputs, labels = make_class_images(
        generator, train_samples + test_samples, num_classes, image_size=image_size, channels=1,
        noise=0.5,
    )
    train = Dataset(inputs[:train_samples], labels[:train_samples])
    test = Dataset(inputs[train_samples:], labels[train_samples:])
    input_size = image_size * image_size
    return LearningTask(
        name="toy",
        train=train,
        test=test,
        model_factory=lambda model_rng: MLPClassifier(input_size, hidden, num_classes, model_rng),
        loss_factory=CrossEntropyLoss,
        accuracy_fn=classification_accuracy,
    )


@pytest.fixture
def toy_task() -> LearningTask:
    return make_toy_task()


@pytest.fixture
def small_config() -> ExperimentConfig:
    """A 6-node configuration that completes in a fraction of a second."""

    return ExperimentConfig(
        num_nodes=6,
        degree=2,
        rounds=4,
        local_steps=1,
        batch_size=8,
        learning_rate=0.1,
        eval_every=2,
        eval_test_samples=48,
        seed=3,
        partition="shards",
    )
