"""Tests for the jwins-repro command-line interface."""

import pytest

from repro.cli import build_parser, main, scheme_factory_from_name


def test_parser_defaults():
    args = build_parser().parse_args([])
    assert args.workload == "cifar10"
    assert args.scheme == ["jwins", "full-sharing"]
    assert args.seed == 1


def test_parser_rejects_unknown_scheme():
    with pytest.raises(SystemExit):
        build_parser().parse_args(["--scheme", "magic"])


@pytest.mark.parametrize(
    "name",
    ["jwins", "jwins-adaptive", "full-sharing", "random-sampling", "topk", "choco", "quantized"],
)
def test_scheme_factory_from_name_builds_every_scheme(name):
    args = build_parser().parse_args([])
    factory = scheme_factory_from_name(name, args)
    scheme = factory(0, 200, 1)
    assert hasattr(scheme, "prepare")
    assert hasattr(scheme, "aggregate")


def test_budget_configures_jwins_distribution():
    args = build_parser().parse_args(["--budget", "0.2"])
    scheme = scheme_factory_from_name("jwins", args)(0, 200, 1)
    assert scheme.config.expected_sharing_fraction == pytest.approx(0.2)


def test_invalid_budget_rejected():
    with pytest.raises(SystemExit):
        main(["--budget", "1.5", "--nodes", "4", "--rounds", "1"])


def test_main_runs_small_experiment(capsys):
    exit_code = main(
        [
            "--workload",
            "movielens",
            "--scheme",
            "jwins",
            "--nodes",
            "4",
            "--degree",
            "2",
            "--rounds",
            "2",
            "--seed",
            "3",
        ]
    )
    captured = capsys.readouterr().out
    assert exit_code == 0
    assert "running jwins" in captured
    assert "final acc" in captured


def test_parser_accepts_execution_mode():
    args = build_parser().parse_args(["--execution", "async", "--slowdown", "3.0"])
    assert args.execution == "async"
    assert args.slowdown == 3.0


def test_invalid_slowdown_rejected():
    with pytest.raises(SystemExit):
        main(["--slowdown", "0.5", "--nodes", "4", "--rounds", "1"])


def test_invalid_drop_probability_rejected():
    with pytest.raises(SystemExit):
        main(["--drop-probability", "1.5", "--nodes", "4", "--rounds", "1"])


def test_main_runs_async_experiment(capsys):
    exit_code = main(
        [
            "--workload",
            "movielens",
            "--scheme",
            "jwins",
            "--nodes",
            "4",
            "--degree",
            "2",
            "--rounds",
            "2",
            "--seed",
            "3",
            "--execution",
            "async",
            "--slowdown",
            "4.0",
        ]
    )
    captured = capsys.readouterr().out
    assert exit_code == 0
    assert "execution=async" in captured
    assert "running jwins" in captured


def test_main_compares_multiple_schemes(capsys):
    exit_code = main(
        [
            "--workload",
            "movielens",
            "--scheme",
            "jwins",
            "random-sampling",
            "--nodes",
            "4",
            "--degree",
            "2",
            "--rounds",
            "2",
            "--seed",
            "3",
        ]
    )
    captured = capsys.readouterr().out
    assert exit_code == 0
    assert "jwins" in captured
    assert "random-sampling" in captured
