"""Tests for the jwins-repro command-line interface."""

import pytest

from repro.cli import build_cli_parser, build_parser, main, scheme_factory_from_name


def test_parser_defaults():
    args = build_parser().parse_args([])
    assert args.workload == "cifar10"
    assert args.scheme == ["jwins", "full-sharing"]
    assert args.seed == 1


def test_parser_rejects_unknown_scheme():
    with pytest.raises(SystemExit):
        build_parser().parse_args(["--scheme", "magic"])


@pytest.mark.parametrize(
    "name",
    ["jwins", "jwins-adaptive", "full-sharing", "random-sampling", "topk", "choco", "quantized"],
)
def test_scheme_factory_from_name_builds_every_scheme(name):
    args = build_parser().parse_args([])
    factory = scheme_factory_from_name(name, args)
    scheme = factory(0, 200, 1)
    assert hasattr(scheme, "prepare")
    assert hasattr(scheme, "aggregate")


def test_budget_configures_jwins_distribution():
    args = build_parser().parse_args(["--budget", "0.2"])
    scheme = scheme_factory_from_name("jwins", args)(0, 200, 1)
    assert scheme.config.expected_sharing_fraction == pytest.approx(0.2)


def test_invalid_budget_rejected():
    with pytest.raises(SystemExit):
        main(["--budget", "1.5", "--nodes", "4", "--rounds", "1"])


def test_main_runs_small_experiment(capsys):
    exit_code = main(
        [
            "--workload",
            "movielens",
            "--scheme",
            "jwins",
            "--nodes",
            "4",
            "--degree",
            "2",
            "--rounds",
            "2",
            "--seed",
            "3",
        ]
    )
    captured = capsys.readouterr().out
    assert exit_code == 0
    assert "running jwins" in captured
    assert "final acc" in captured


def test_parser_accepts_execution_mode():
    args = build_parser().parse_args(["--execution", "async", "--slowdown", "3.0"])
    assert args.execution == "async"
    assert args.slowdown == 3.0


def test_invalid_slowdown_rejected():
    with pytest.raises(SystemExit):
        main(["--slowdown", "0.5", "--nodes", "4", "--rounds", "1"])


def test_invalid_drop_probability_rejected():
    with pytest.raises(SystemExit):
        main(["--drop-probability", "1.5", "--nodes", "4", "--rounds", "1"])


def test_main_runs_async_experiment(capsys):
    exit_code = main(
        [
            "--workload",
            "movielens",
            "--scheme",
            "jwins",
            "--nodes",
            "4",
            "--degree",
            "2",
            "--rounds",
            "2",
            "--seed",
            "3",
            "--execution",
            "async",
            "--slowdown",
            "4.0",
        ]
    )
    captured = capsys.readouterr().out
    assert exit_code == 0
    assert "execution=async" in captured
    assert "running jwins" in captured


def test_explicit_run_subcommand_equals_flat_invocation(capsys):
    flat_args = [
        "--workload", "movielens", "--scheme", "jwins",
        "--nodes", "4", "--degree", "2", "--rounds", "2", "--seed", "3",
    ]
    assert main(flat_args) == 0
    flat_output = capsys.readouterr().out
    assert main(["run", *flat_args]) == 0
    assert capsys.readouterr().out == flat_output


def test_list_workloads_exits_zero_and_prints_registry(capsys):
    assert main(["--list-workloads"]) == 0
    captured = capsys.readouterr().out
    for name in ("cifar10", "movielens", "shakespeare", "celeba", "femnist"):
        assert name in captured


def test_list_schemes_exits_zero_and_prints_registry(capsys):
    assert main(["--list-schemes"]) == 0
    captured = capsys.readouterr().out
    for name in ("jwins", "full-sharing", "choco", "quantized", "topk"):
        assert name in captured


def test_list_flags_do_not_run_experiments(capsys):
    assert main(["--list-schemes", "--list-workloads"]) == 0
    assert "running" not in capsys.readouterr().out


SWEEP_ARGS = [
    "sweep",
    "--workload", "movielens",
    "--scheme", "jwins", "full-sharing",
    "--nodes", "4", "--degree", "2", "--rounds", "2",
    "--seeds", "3",
]


def test_sweep_subcommand_runs_and_persists(tmp_path, capsys):
    store = tmp_path / "results.jsonl"
    assert main([*SWEEP_ARGS, "--store", str(store)]) == 0
    captured = capsys.readouterr().out
    assert "executed 2 cell(s), skipped 0" in captured
    assert "movielens/jwins" in captured
    assert store.exists()


def test_sweep_subcommand_resumes_from_store(tmp_path, capsys):
    store = tmp_path / "results.jsonl"
    assert main([*SWEEP_ARGS, "--store", str(store)]) == 0
    capsys.readouterr()
    assert main([*SWEEP_ARGS, "--store", str(store)]) == 0
    assert "executed 0 cell(s), skipped 2" in capsys.readouterr().out


def test_sweep_subcommand_parallel_matches_serial(tmp_path, capsys):
    serial, parallel = tmp_path / "serial.jsonl", tmp_path / "parallel.jsonl"
    assert main([*SWEEP_ARGS, "--store", str(serial), "--workers", "1"]) == 0
    serial_summary = capsys.readouterr().out.split("executed")[1]
    assert main([*SWEEP_ARGS, "--store", str(parallel), "--workers", "2"]) == 0
    assert capsys.readouterr().out.split("executed")[1] == serial_summary


def test_sweep_preset_and_regenerate_round_trip(tmp_path, capsys):
    store = tmp_path / "results.jsonl"
    scale = ["num_nodes=4", "degree=2", "rounds=2", "eval_every=1", "eval_test_samples=32"]
    assert main(["sweep", "--preset", "fig7", "--store", str(store), "--scale", *scale]) == 0
    capsys.readouterr()
    output = tmp_path / "artifacts"
    assert (
        main([
            "regenerate", "--store", str(store), "--artifact", "fig7",
            "--output", str(output), "--scale", *scale,
        ])
        == 0
    )
    assert "wrote" in capsys.readouterr().out
    assert (output / "fig7_dynamic_topology.txt").exists()


def test_regenerate_missing_store_rejected(tmp_path):
    with pytest.raises(SystemExit, match="empty or missing"):
        main(["regenerate", "--store", str(tmp_path / "absent.jsonl")])


def test_sweep_unknown_workload_rejected_cleanly(tmp_path):
    with pytest.raises(SystemExit, match="invalid sweep"):
        main(["sweep", "--workload", "bogus", "--scheme", "jwins",
              "--store", str(tmp_path / "s.jsonl")])


def test_sweep_unknown_scale_field_rejected_cleanly(tmp_path, capsys):
    with pytest.raises(SystemExit, match="invalid sweep"):
        main(["sweep", "--preset", "fig7", "--store", str(tmp_path / "s.jsonl"),
              "--scale", "warp_factor=9"])


def test_invalid_scale_entry_rejected(tmp_path):
    with pytest.raises(SystemExit, match="FIELD=VALUE"):
        main(["sweep", "--preset", "fig7", "--store", str(tmp_path / "s.jsonl"),
              "--scale", "numnodes4"])


def test_invalid_worker_count_rejected(tmp_path):
    with pytest.raises(SystemExit, match="--workers"):
        main([*SWEEP_ARGS, "--store", str(tmp_path / "s.jsonl"), "--workers", "0"])


def test_cli_parser_knows_all_subcommands():
    parser = build_cli_parser()
    for argv in (["run"], ["sweep"], ["regenerate", "--store", "x"]):
        args = parser.parse_args(argv)
        assert callable(args.handler)


def test_main_compares_multiple_schemes(capsys):
    exit_code = main(
        [
            "--workload",
            "movielens",
            "--scheme",
            "jwins",
            "random-sampling",
            "--nodes",
            "4",
            "--degree",
            "2",
            "--rounds",
            "2",
            "--seed",
            "3",
        ]
    )
    captured = capsys.readouterr().out
    assert exit_code == 0
    assert "jwins" in captured
    assert "random-sampling" in captured


# -- scenarios --------------------------------------------------------------------


def test_list_scenarios_exits_zero_and_prints_presets(capsys):
    assert main(["--list-scenarios"]) == 0
    captured = capsys.readouterr().out
    for name in ("static", "dynamic", "churn", "partition", "stragglers"):
        assert name in captured
    assert "running" not in captured


def test_run_with_scenario_preset(capsys):
    exit_code = main(
        ["--workload", "movielens", "--scheme", "jwins", "--nodes", "4",
         "--degree", "2", "--rounds", "3", "--scenario", "churn-partition"]
    )
    captured = capsys.readouterr().out
    assert exit_code == 0
    assert "scenario=churn-partition" in captured
    assert "final acc" in captured


def test_run_with_scenario_json_file(tmp_path, capsys):
    import json

    from repro.scenarios import get_scenario

    path = tmp_path / "my-scenario.json"
    path.write_text(json.dumps(get_scenario("partition", num_nodes=4, rounds=3).to_dict()))
    exit_code = main(
        ["--workload", "movielens", "--scheme", "jwins", "--nodes", "4",
         "--degree", "2", "--rounds", "3", "--scenario", str(path)]
    )
    assert exit_code == 0
    assert "scenario=partition" in capsys.readouterr().out


def test_run_async_with_scenario(capsys):
    exit_code = main(
        ["--workload", "movielens", "--scheme", "jwins", "--nodes", "4",
         "--degree", "2", "--rounds", "3", "--scenario", "churn",
         "--execution", "async"]
    )
    captured = capsys.readouterr().out
    assert exit_code == 0
    assert "execution=async scenario=churn" in captured


def test_run_async_with_dynamic_topology_now_works(capsys):
    exit_code = main(
        ["--workload", "movielens", "--scheme", "jwins", "--nodes", "4",
         "--degree", "2", "--rounds", "2", "--dynamic-topology",
         "--execution", "async"]
    )
    assert exit_code == 0
    assert "final acc" in capsys.readouterr().out


def test_unknown_scenario_rejected_cleanly():
    with pytest.raises(SystemExit, match="unknown scenario"):
        main(["--workload", "movielens", "--scheme", "jwins", "--nodes", "4",
              "--degree", "2", "--rounds", "2", "--scenario", "meteor-strike"])


def test_bad_scenario_file_rejected_cleanly(tmp_path):
    path = tmp_path / "broken.json"
    path.write_text("{not json")
    with pytest.raises(SystemExit, match="not valid JSON"):
        main(["--workload", "movielens", "--scheme", "jwins", "--nodes", "4",
              "--degree", "2", "--rounds", "2", "--scenario", str(path)])


def test_scenario_and_dynamic_topology_flags_conflict():
    with pytest.raises(SystemExit, match="mutually exclusive"):
        main(["--workload", "movielens", "--scheme", "jwins", "--nodes", "4",
              "--degree", "2", "--rounds", "2", "--scenario", "churn",
              "--dynamic-topology"])


def test_scenario_too_large_for_deployment_rejected_cleanly(tmp_path):
    import json

    from repro.scenarios import get_scenario

    path = tmp_path / "big.json"
    path.write_text(json.dumps(get_scenario("churn", num_nodes=16, rounds=40).to_dict()))
    with pytest.raises(SystemExit, match="nodes"):
        main(["--workload", "movielens", "--scheme", "jwins", "--nodes", "4",
              "--degree", "2", "--rounds", "2", "--scenario", str(path)])


def test_sweep_with_scenario_axis(tmp_path, capsys):
    store = tmp_path / "results.jsonl"
    exit_code = main(
        ["sweep", "--workload", "movielens", "--scheme", "jwins",
         "--nodes", "4", "--degree", "2", "--rounds", "3",
         "--scenario", "static", "churn-partition", "--store", str(store)]
    )
    captured = capsys.readouterr().out
    assert exit_code == 0
    assert "executed 2 cell(s), skipped 0" in captured
    assert "scenario=churn-partition" in captured
    assert store.exists()
