"""End-to-end integration tests: whole experiments through the public API."""

import numpy as np
import pytest

from repro.baselines import (
    choco_factory,
    full_sharing_factory,
    random_sampling_factory,
    topk_sharing_factory,
)
from repro.core import JwinsConfig, jwins_factory
from repro.simulation import ExperimentConfig, run_experiment
from tests.conftest import make_toy_task


@pytest.fixture(scope="module")
def task():
    return make_toy_task(seed=11, train_samples=240, test_samples=96, num_classes=4)


@pytest.fixture(scope="module")
def config():
    return ExperimentConfig(
        num_nodes=6,
        degree=2,
        rounds=15,
        local_steps=2,
        batch_size=8,
        learning_rate=0.2,
        eval_every=3,
        eval_test_samples=96,
        seed=4,
        partition="shards",
    )


@pytest.fixture(scope="module")
def results(task, config):
    factories = {
        "full-sharing": full_sharing_factory(),
        "random-sampling": random_sampling_factory(0.34),
        "jwins": jwins_factory(JwinsConfig.paper_default()),
        "choco": choco_factory(fraction=0.2, gamma=0.6),
        "topk": topk_sharing_factory(0.34),
    }
    return {
        name: run_experiment(task, factory, config, scheme_name=name)
        for name, factory in factories.items()
    }


def test_every_scheme_learns_something(results):
    for name, result in results.items():
        assert result.final_accuracy > 0.3, name
        assert np.isfinite(result.final_loss), name


def test_full_sharing_reaches_good_accuracy(results):
    assert results["full-sharing"].final_accuracy > 0.6


def test_jwins_close_to_full_sharing(results):
    """Table I claim: JWINS is within a few points of full sharing."""

    gap = results["full-sharing"].final_accuracy - results["jwins"].final_accuracy
    assert gap < 0.15


def test_jwins_beats_or_matches_random_sampling(results):
    assert results["jwins"].final_accuracy >= results["random-sampling"].final_accuracy - 0.05


def test_sparse_schemes_save_bytes(results):
    full_bytes = results["full-sharing"].total_bytes
    for name in ("jwins", "random-sampling", "choco"):
        assert results[name].total_bytes < full_bytes, name


def test_jwins_network_savings_match_budget(results):
    """With the default alpha list JWINS sends roughly 35-50% of full sharing."""

    ratio = results["jwins"].total_bytes / results["full-sharing"].total_bytes
    assert 0.2 < ratio < 0.7


def test_metadata_accounted_only_for_sparse_schemes(results):
    assert results["full-sharing"].total_metadata_bytes == 0
    assert results["jwins"].total_metadata_bytes > 0
    assert results["choco"].total_metadata_bytes > 0


def test_simulated_time_increases_with_bytes(results):
    assert (
        results["full-sharing"].simulated_time_seconds
        > results["random-sampling"].simulated_time_seconds
    )


def test_histories_are_monotone_in_rounds(results):
    for result in results.values():
        rounds = [record.round_index for record in result.history]
        assert rounds == sorted(rounds)
        sent = [record.cumulative_bytes_per_node for record in result.history]
        assert all(b >= a for a, b in zip(sent, sent[1:]))
