"""Integration tests for the lossy-network / churn model.

The paper argues that JWINS, unlike CHOCO, keeps no per-neighbor replicas and
is therefore "flexible to nodes leaving and joining".  The simulator models
this with a per-delivery message drop probability; these tests check that the
round loop keeps running and that full sharing and JWINS still learn when a
fifth of the messages never arrive.
"""

from dataclasses import replace

import pytest

from repro.baselines import choco_factory, full_sharing_factory
from repro.core import JwinsConfig, jwins_factory
from repro.exceptions import ConfigurationError
from repro.simulation import ExperimentConfig, run_experiment
from tests.conftest import make_toy_task


@pytest.fixture(scope="module")
def task():
    return make_toy_task(seed=41, train_samples=200, test_samples=80)


@pytest.fixture(scope="module")
def lossy_config():
    return ExperimentConfig(
        num_nodes=6,
        degree=2,
        rounds=10,
        local_steps=2,
        batch_size=8,
        learning_rate=0.2,
        eval_every=5,
        eval_test_samples=80,
        seed=13,
        partition="shards",
        message_drop_probability=0.2,
    )


def test_invalid_drop_probability_rejected():
    with pytest.raises(ConfigurationError):
        ExperimentConfig(message_drop_probability=1.0)
    with pytest.raises(ConfigurationError):
        ExperimentConfig(message_drop_probability=-0.1)


def test_full_sharing_learns_despite_drops(task, lossy_config):
    result = run_experiment(task, full_sharing_factory(), lossy_config)
    assert result.rounds_completed == lossy_config.rounds
    assert result.final_accuracy > 0.5


def test_jwins_learns_despite_drops(task, lossy_config):
    result = run_experiment(task, jwins_factory(JwinsConfig.paper_default()), lossy_config)
    assert result.rounds_completed == lossy_config.rounds
    assert result.final_accuracy > 0.4


def test_choco_round_loop_survives_drops(task, lossy_config):
    """CHOCO's quality may degrade under loss, but the system must not crash."""

    result = run_experiment(task, choco_factory(0.2, 0.6), lossy_config)
    assert result.rounds_completed == lossy_config.rounds


def test_drops_do_not_change_metered_bytes(task, lossy_config):
    """Bytes are metered at the sender, so the uplink cost is loss-independent.

    The payloads themselves differ slightly (the models diverge once messages
    are lost, and the float codec's compressed size depends on the values), so
    the comparison allows a small relative tolerance.
    """

    lossless = replace(lossy_config, message_drop_probability=0.0)
    lossy = run_experiment(task, full_sharing_factory(), lossy_config)
    clean = run_experiment(task, full_sharing_factory(), lossless)
    assert lossy.total_bytes == pytest.approx(clean.total_bytes, rel=0.05)


def test_heavy_loss_degrades_learning(task, lossy_config):
    """With almost every message dropped, mixing slows down or stalls."""

    heavy = replace(lossy_config, message_drop_probability=0.95, rounds=8)
    light = replace(lossy_config, message_drop_probability=0.0, rounds=8)
    degraded = run_experiment(task, full_sharing_factory(), heavy)
    healthy = run_experiment(task, full_sharing_factory(), light)
    assert degraded.final_accuracy <= healthy.final_accuracy + 0.05
