"""Integration tests for the ablation variants and dynamic topologies."""

from dataclasses import replace

import pytest

from repro.baselines import choco_factory, full_sharing_factory
from repro.core import JwinsConfig, jwins_factory
from repro.simulation import ExperimentConfig, run_experiment
from tests.conftest import make_toy_task


@pytest.fixture(scope="module")
def task():
    return make_toy_task(seed=21, train_samples=200, test_samples=80)


@pytest.fixture(scope="module")
def config():
    return ExperimentConfig(
        num_nodes=6,
        degree=2,
        rounds=10,
        local_steps=2,
        batch_size=8,
        learning_rate=0.2,
        eval_every=5,
        eval_test_samples=80,
        seed=9,
        partition="shards",
    )


def test_ablation_variants_all_run(task, config):
    base = JwinsConfig.paper_default()
    variants = {
        "jwins": base,
        "no-wavelet": base.without_wavelet(),
        "no-accumulation": base.without_accumulation(),
        "no-random-cutoff": base.without_random_cutoff(),
    }
    results = {
        name: run_experiment(task, jwins_factory(variant), config, scheme_name=name)
        for name, variant in variants.items()
    }
    for name, result in results.items():
        assert result.rounds_completed == config.rounds, name
        assert result.final_accuracy > 0.25, name


def test_dynamic_topology_full_sharing_and_jwins_learn(task, config):
    dynamic = replace(config, dynamic_topology=True)
    full = run_experiment(task, full_sharing_factory(), dynamic)
    jwins = run_experiment(task, jwins_factory(JwinsConfig.paper_default()), dynamic)
    assert full.final_accuracy > 0.5
    assert jwins.final_accuracy > 0.4


def test_dynamic_topology_hurts_choco_more_than_jwins(task, config):
    """Figure 7: CHOCO's error feedback is tied to fixed neighbors."""

    dynamic = replace(config, dynamic_topology=True, rounds=12)
    static = replace(config, rounds=12)
    choco_static = run_experiment(task, choco_factory(0.2, 0.6), static)
    choco_dynamic = run_experiment(task, choco_factory(0.2, 0.6), dynamic)
    jwins_dynamic = run_experiment(task, jwins_factory(JwinsConfig.paper_default()), dynamic)
    # JWINS keeps working under a changing topology; CHOCO does not outperform it there.
    assert jwins_dynamic.final_accuracy >= choco_dynamic.final_accuracy - 0.05
    assert choco_static.final_accuracy >= choco_dynamic.final_accuracy - 0.1


def test_low_budget_jwins_still_learns(task, config):
    low_budget = JwinsConfig.low_budget(0.1)
    result = run_experiment(task, jwins_factory(low_budget), config)
    assert result.final_accuracy > 0.3
    full = run_experiment(task, full_sharing_factory(), config)
    assert result.total_bytes < 0.35 * full.total_bytes
