"""CLI coverage for the observability surface: trace diff, summarize-dir,
``top``, and the ``--status`` heartbeat flags.

Same contract as the rest of the CLI suite: failure paths exit through a clean
``SystemExit`` message, success paths return 0 — except ``trace diff``, whose
exit code *is* the verdict (0 identical, 1 divergent), mirroring ``cmp``.
"""

from __future__ import annotations

import json
from pathlib import Path

import pytest

from repro.checkpoint import preemption
from repro.cli import main
from repro.observability.status import load_status

RUN_ARGS = [
    "run",
    "--workload", "movielens",
    "--scheme", "jwins",
    "--nodes", "4", "--degree", "2", "--rounds", "2", "--seed", "3",
]

SWEEP_ARGS = [
    "sweep",
    "--workload", "movielens",
    "--scheme", "jwins", "full-sharing",
    "--nodes", "4", "--degree", "2", "--rounds", "2",
]


@pytest.fixture(autouse=True)
def clean_preemption():
    preemption.reset()
    yield
    preemption.reset()


def _traced_sweep(tmp_path, name: str) -> Path:
    trace_dir = tmp_path / name
    store = tmp_path / f"{name}.jsonl"
    assert main([*SWEEP_ARGS, "--store", str(store), "--trace", str(trace_dir)]) == 0
    return trace_dir


def _tampered_copy(trace_path: Path, out_path: Path) -> None:
    """Rewrite one evaluate record's loss: a minimal synthetic divergence."""

    lines = trace_path.read_text(encoding="utf-8").splitlines()
    for index, line in enumerate(lines):
        record = json.loads(line)
        if record.get("kind") == "evaluate":
            record["loss"] += 1e-3
            lines[index] = json.dumps(record, sort_keys=True)
            break
    else:  # pragma: no cover - trace always evaluates
        raise AssertionError("no evaluate record to tamper with")
    out_path.write_text("\n".join(lines) + "\n", encoding="utf-8")


# -- trace diff -----------------------------------------------------------------------
def test_trace_diff_identical_runs_exit_zero(tmp_path, capsys):
    dir_a = _traced_sweep(tmp_path, "a")
    dir_b = _traced_sweep(tmp_path, "b")
    names = sorted(path.name for path in dir_a.glob("*.trace.jsonl"))
    assert names == sorted(path.name for path in dir_b.glob("*.trace.jsonl"))
    capsys.readouterr()
    assert main(["trace", "diff", str(dir_a / names[0]), str(dir_b / names[0])]) == 0
    assert "IDENTICAL" in capsys.readouterr().out


def test_trace_diff_divergence_exits_one_with_forensics(tmp_path, capsys):
    dir_a = _traced_sweep(tmp_path, "a")
    original = next(iter(sorted(dir_a.glob("*.trace.jsonl"))))
    tampered = tmp_path / "tampered.trace.jsonl"
    _tampered_copy(original, tampered)
    capsys.readouterr()
    assert main(["trace", "diff", str(original), str(tampered)]) == 1
    output = capsys.readouterr().out
    assert "first divergent record" in output
    assert "field 'loss'" in output
    assert "origin:" in output


def test_trace_diff_json_output_is_machine_readable(tmp_path, capsys):
    dir_a = _traced_sweep(tmp_path, "a")
    original = next(iter(sorted(dir_a.glob("*.trace.jsonl"))))
    tampered = tmp_path / "tampered.trace.jsonl"
    _tampered_copy(original, tampered)
    capsys.readouterr()
    assert main(["trace", "diff", "--json", str(original), str(tampered)]) == 1
    document = json.loads(capsys.readouterr().out)
    assert document["identical"] is False
    assert document["kind"] == "evaluate"
    assert any(drift["field"] == "loss" for drift in document["drifts"])


def test_trace_diff_missing_operands_exit_cleanly(tmp_path):
    present = tmp_path / "x.trace.jsonl"
    present.write_text('{"kind": "manifest", "seq": 0}\n', encoding="utf-8")
    with pytest.raises(SystemExit, match="two traces"):
        main(["trace", "diff", str(present)])
    with pytest.raises(SystemExit, match="does not exist"):
        main(["trace", "diff", str(present), str(tmp_path / "absent.jsonl")])


# -- trace summarize on a sweep directory ---------------------------------------------
def test_trace_summarize_accepts_a_sweep_directory(tmp_path, capsys):
    trace_dir = _traced_sweep(tmp_path, "a")
    capsys.readouterr()
    assert main(["trace", "summarize", str(trace_dir)]) == 0
    output = capsys.readouterr().out
    assert "2 cell trace(s)" in output
    assert "totals:" in output
    assert "jwins" in output and "full-sharing" in output


def test_trace_summarize_rejects_two_paths(tmp_path):
    trace_dir = _traced_sweep(tmp_path, "a")
    with pytest.raises(SystemExit, match="single path"):
        main(["trace", "summarize", str(trace_dir), str(trace_dir)])


# -- the --status heartbeat -----------------------------------------------------------
def test_sweep_status_flag_leaves_a_terminal_document(tmp_path, capsys):
    status_dir = tmp_path / "status"
    store = tmp_path / "store.jsonl"
    assert main([*SWEEP_ARGS, "--store", str(store), "--status", str(status_dir)]) == 0
    document = load_status(status_dir)
    assert document["state"] == "done"
    assert len(document["cells"]) == 2
    assert all(cell["state"] == "done" for cell in document["cells"].values())
    # Labels carry the sweep axes, not bare hashes.
    assert any("movielens" in cell["label"] for cell in document["cells"].values())


def test_run_status_flag_leaves_a_terminal_document(tmp_path, capsys):
    status_dir = tmp_path / "status"
    assert main([*RUN_ARGS, "--status", str(status_dir)]) == 0
    document = load_status(status_dir)
    assert document["state"] == "done"
    assert all(cell["state"] == "done" for cell in document["cells"].values())


def test_status_flag_does_not_change_stored_bytes(tmp_path, capsys):
    bare = tmp_path / "bare.jsonl"
    monitored = tmp_path / "monitored.jsonl"
    assert main([*SWEEP_ARGS, "--store", str(bare)]) == 0
    assert main(
        [*SWEEP_ARGS, "--store", str(monitored), "--status", str(tmp_path / "status")]
    ) == 0
    assert bare.read_bytes() == monitored.read_bytes()


# -- top ------------------------------------------------------------------------------
def test_top_once_renders_a_finished_sweep(tmp_path, capsys):
    status_dir = tmp_path / "status"
    store = tmp_path / "store.jsonl"
    assert main([*SWEEP_ARGS, "--store", str(store), "--status", str(status_dir)]) == 0
    capsys.readouterr()
    assert main(["top", str(status_dir), "--once"]) == 0
    output = capsys.readouterr().out
    assert "state=done" in output
    assert "cells:" in output


def test_top_once_missing_directory_exits_one(tmp_path, capsys):
    assert main(["top", str(tmp_path / "absent"), "--once"]) == 1
    assert "no status document" in capsys.readouterr().out
