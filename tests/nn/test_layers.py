"""Tests for dense, embedding and utility layers."""

import numpy as np
import pytest

from repro.exceptions import ModelError
from repro.nn.activations import ReLU, Sigmoid, Tanh
from repro.nn.layers import Dropout, Embedding, Flatten, Linear


@pytest.fixture
def rng():
    return np.random.default_rng(0)


def test_linear_forward_shape_and_bias(rng):
    layer = Linear(4, 3, rng)
    outputs = layer.forward(np.zeros((5, 4)))
    assert outputs.shape == (5, 3)
    assert np.allclose(outputs, layer.bias.value)


def test_linear_accepts_single_sample(rng):
    layer = Linear(4, 2, rng)
    assert layer.forward(np.zeros(4)).shape == (1, 2)


def test_linear_backward_shapes_and_grad_accumulation(rng):
    layer = Linear(4, 3, rng)
    inputs = rng.normal(size=(6, 4))
    layer.forward(inputs)
    grad_in = layer.backward(np.ones((6, 3)))
    assert grad_in.shape == inputs.shape
    assert layer.weight.grad.shape == (3, 4)
    assert np.allclose(layer.bias.grad, 6.0)


def test_linear_wrong_input_size_raises(rng):
    with pytest.raises(ModelError):
        Linear(4, 3, rng).forward(np.zeros((2, 5)))


def test_linear_backward_before_forward_raises(rng):
    with pytest.raises(ModelError):
        Linear(4, 3, rng).backward(np.zeros((2, 3)))


def test_embedding_lookup_and_gradient(rng):
    layer = Embedding(10, 4, rng)
    ids = np.array([[1, 2], [2, 3]])
    outputs = layer.forward(ids)
    assert outputs.shape == (2, 2, 4)
    assert np.allclose(outputs[0, 1], outputs[1, 0])
    layer.backward(np.ones((2, 2, 4)))
    # Id 2 appears twice so its gradient is twice as large as id 1's.
    assert np.allclose(layer.weight.grad[2], 2.0)
    assert np.allclose(layer.weight.grad[1], 1.0)
    assert np.allclose(layer.weight.grad[5], 0.0)


def test_embedding_rejects_float_ids(rng):
    with pytest.raises(ModelError):
        Embedding(10, 4, rng).forward(np.zeros((2, 2)))


def test_embedding_rejects_out_of_range_ids(rng):
    with pytest.raises(ModelError):
        Embedding(4, 2, rng).forward(np.array([[5]]))


def test_flatten_roundtrip():
    layer = Flatten()
    inputs = np.arange(24.0).reshape(2, 3, 4)
    outputs = layer.forward(inputs)
    assert outputs.shape == (2, 12)
    assert layer.backward(outputs).shape == inputs.shape


def test_dropout_disabled_in_eval_mode(rng):
    layer = Dropout(0.5, rng)
    layer.training = False
    inputs = np.ones((4, 4))
    assert np.array_equal(layer.forward(inputs), inputs)


def test_dropout_scales_surviving_units(rng):
    layer = Dropout(0.5, rng)
    inputs = np.ones((2000,))
    outputs = layer.forward(inputs)
    assert set(np.unique(outputs)).issubset({0.0, 2.0})
    assert outputs.mean() == pytest.approx(1.0, abs=0.1)


def test_dropout_invalid_rate(rng):
    with pytest.raises(ModelError):
        Dropout(1.0, rng)


def test_relu_masks_negative_inputs():
    layer = ReLU()
    outputs = layer.forward(np.array([-1.0, 2.0, -3.0]))
    assert np.array_equal(outputs, [0.0, 2.0, 0.0])
    grads = layer.backward(np.ones(3))
    assert np.array_equal(grads, [0.0, 1.0, 0.0])


def test_tanh_gradient_matches_derivative():
    layer = Tanh()
    x = np.array([0.3, -0.7])
    layer.forward(x)
    grads = layer.backward(np.ones(2))
    assert np.allclose(grads, 1.0 - np.tanh(x) ** 2)


def test_sigmoid_extreme_inputs_are_stable():
    layer = Sigmoid()
    outputs = layer.forward(np.array([-1000.0, 0.0, 1000.0]))
    assert np.all(np.isfinite(outputs))
    assert outputs[0] == pytest.approx(0.0)
    assert outputs[1] == pytest.approx(0.5)
    assert outputs[2] == pytest.approx(1.0)
