"""Tests for loss functions."""

import numpy as np
import pytest

from repro.exceptions import ModelError
from repro.nn.losses import CrossEntropyLoss, MSELoss, log_softmax, softmax


def test_softmax_rows_sum_to_one():
    logits = np.random.default_rng(0).normal(size=(5, 7))
    probabilities = softmax(logits)
    assert np.allclose(probabilities.sum(axis=1), 1.0)
    assert np.all(probabilities >= 0)


def test_softmax_stable_for_large_logits():
    probabilities = softmax(np.array([[1000.0, 0.0], [0.0, -1000.0]]))
    assert np.all(np.isfinite(probabilities))


def test_log_softmax_matches_log_of_softmax():
    logits = np.random.default_rng(1).normal(size=(4, 3))
    assert np.allclose(log_softmax(logits), np.log(softmax(logits)))


def test_cross_entropy_uniform_logits():
    loss = CrossEntropyLoss()
    value = loss.forward(np.zeros((3, 4)), np.array([0, 1, 2]))
    assert value == pytest.approx(np.log(4.0))


def test_cross_entropy_perfect_prediction_is_small():
    loss = CrossEntropyLoss()
    logits = np.array([[100.0, 0.0], [0.0, 100.0]])
    assert loss.forward(logits, np.array([0, 1])) < 1e-6


def test_cross_entropy_gradient_sums_to_zero_per_row():
    loss = CrossEntropyLoss()
    logits = np.random.default_rng(2).normal(size=(6, 5))
    loss.forward(logits, np.array([0, 1, 2, 3, 4, 0]))
    grad = loss.backward()
    assert grad.shape == logits.shape
    assert np.allclose(grad.sum(axis=1), 0.0, atol=1e-12)


def test_cross_entropy_gradient_matches_numerical():
    loss = CrossEntropyLoss()
    rng = np.random.default_rng(3)
    logits = rng.normal(size=(2, 3))
    targets = np.array([1, 2])
    loss.forward(logits, targets)
    analytic = loss.backward()
    numeric = np.zeros_like(logits)
    epsilon = 1e-6
    for i in range(2):
        for j in range(3):
            perturbed = logits.copy()
            perturbed[i, j] += epsilon
            plus = loss.forward(perturbed, targets)
            perturbed[i, j] -= 2 * epsilon
            minus = loss.forward(perturbed, targets)
            numeric[i, j] = (plus - minus) / (2 * epsilon)
    assert np.allclose(analytic, numeric, atol=1e-6)


def test_cross_entropy_rejects_float_targets():
    with pytest.raises(ModelError):
        CrossEntropyLoss().forward(np.zeros((2, 2)), np.zeros(2))


def test_cross_entropy_rejects_out_of_range_targets():
    with pytest.raises(ModelError):
        CrossEntropyLoss().forward(np.zeros((2, 2)), np.array([0, 5]))


def test_cross_entropy_predictions_argmax():
    loss = CrossEntropyLoss()
    logits = np.array([[0.1, 0.9], [0.8, 0.2]])
    assert np.array_equal(loss.predictions(logits), [1, 0])


def test_mse_value_and_gradient():
    loss = MSELoss()
    predictions = np.array([1.0, 2.0, 3.0])
    targets = np.array([1.0, 1.0, 1.0])
    assert loss.forward(predictions, targets) == pytest.approx((0 + 1 + 4) / 3)
    grad = loss.backward()
    assert np.allclose(grad, 2.0 * (predictions - targets) / 3)


def test_mse_reshapes_targets():
    loss = MSELoss()
    value = loss.forward(np.zeros((2, 1)), np.array([1.0, 1.0]))
    assert value == pytest.approx(1.0)


def test_backward_before_forward_raises():
    with pytest.raises(ModelError):
        CrossEntropyLoss().backward()
    with pytest.raises(ModelError):
        MSELoss().backward()
