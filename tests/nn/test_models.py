"""Tests for the model zoo."""

import numpy as np
import pytest

from repro.exceptions import ModelError
from repro.nn.losses import CrossEntropyLoss, MSELoss
from repro.nn.models import (
    CelebACNN,
    CharLSTM,
    FEMNISTCNN,
    GNLeNet,
    MatrixFactorization,
    MLPClassifier,
)
from repro.nn.module import get_flat_parameters, set_flat_parameters
from repro.nn.optim import SGD


@pytest.fixture
def rng():
    return np.random.default_rng(0)


def test_gnlenet_forward_shape(rng):
    model = GNLeNet(rng, image_size=16, num_classes=10)
    outputs = model.forward(rng.normal(size=(2, 3, 16, 16)))
    assert outputs.shape == (2, 10)


def test_femnist_cnn_single_channel(rng):
    model = FEMNISTCNN(rng, image_size=16, num_classes=10)
    assert model.forward(rng.normal(size=(3, 1, 16, 16))).shape == (3, 10)


def test_celeba_cnn_binary_output(rng):
    model = CelebACNN(rng, image_size=16)
    assert model.forward(rng.normal(size=(2, 3, 16, 16))).shape == (2, 2)


def test_conv_classifier_rejects_bad_image_size(rng):
    with pytest.raises(ModelError):
        GNLeNet(rng, image_size=10)


def test_char_lstm_forward_shape(rng):
    model = CharLSTM(vocab_size=12, rng=rng, embedding_dim=4, hidden_size=6, num_layers=2)
    ids = rng.integers(0, 12, size=(5, 8))
    assert model.forward(ids).shape == (5, 12)


def test_char_lstm_rejects_one_dimensional_input(rng):
    model = CharLSTM(vocab_size=5, rng=rng)
    with pytest.raises(ModelError):
        model.forward(np.array([1, 2, 3]))


def test_matrix_factorization_prediction_shape(rng):
    model = MatrixFactorization(6, 9, rng, embedding_dim=4)
    pairs = np.array([[0, 1], [5, 8], [2, 2]])
    assert model.forward(pairs).shape == (3,)


def test_matrix_factorization_rejects_bad_input(rng):
    model = MatrixFactorization(6, 9, rng)
    with pytest.raises(ModelError):
        model.forward(np.array([1, 2, 3]))


def test_backward_accumulates_gradients_in_every_parameter(rng):
    model = GNLeNet(rng, image_size=8, num_classes=4)
    loss = CrossEntropyLoss()
    inputs = rng.normal(size=(4, 3, 8, 8))
    targets = rng.integers(0, 4, size=4)
    loss.forward(model.forward(inputs), targets)
    model.backward(loss.backward())
    grads = [np.abs(p.grad).sum() for p in model.parameters()]
    assert all(g > 0 for g in grads)


def test_model_parameters_roundtrip_flat_vector(rng):
    model = CharLSTM(vocab_size=8, rng=rng, embedding_dim=3, hidden_size=4)
    vector = np.random.default_rng(1).normal(size=model.num_parameters)
    set_flat_parameters(model, vector)
    assert np.allclose(get_flat_parameters(model), vector)


def test_mlp_learns_separable_problem(rng):
    """A small end-to-end training loop must reduce the loss substantially."""

    model = MLPClassifier(4, 16, 2, rng)
    loss = CrossEntropyLoss()
    optimizer = SGD(model.parameters(), lr=0.2)
    data_rng = np.random.default_rng(7)
    inputs = data_rng.normal(size=(64, 4))
    targets = (inputs[:, 0] + inputs[:, 1] > 0).astype(np.int64)

    first_loss = None
    for _ in range(150):
        model.zero_grad()
        value = loss.forward(model.forward(inputs), targets)
        if first_loss is None:
            first_loss = value
        model.backward(loss.backward())
        optimizer.step()
    assert value < first_loss * 0.3


def test_matrix_factorization_learns_ratings(rng):
    model = MatrixFactorization(5, 5, rng, embedding_dim=3)
    loss = MSELoss()
    optimizer = SGD(model.parameters(), lr=0.1)
    pairs = np.array([[u, i] for u in range(5) for i in range(5)])
    ratings = np.array([(u + i) % 5 + 1.0 for u in range(5) for i in range(5)])
    for _ in range(300):
        model.zero_grad()
        value = loss.forward(model.forward(pairs), ratings)
        model.backward(loss.backward())
        optimizer.step()
    assert value < 0.5
