"""Tests for the SGD optimizer."""

import numpy as np
import pytest

from repro.exceptions import ModelError
from repro.nn.module import Parameter
from repro.nn.optim import SGD


def test_plain_sgd_step():
    parameter = Parameter(np.array([1.0, 2.0]))
    parameter.grad[:] = [0.5, -0.5]
    SGD([parameter], lr=0.1).step()
    assert np.allclose(parameter.value, [0.95, 2.05])


def test_momentum_accumulates_velocity():
    parameter = Parameter(np.array([0.0]))
    optimizer = SGD([parameter], lr=1.0, momentum=0.9)
    parameter.grad[:] = [1.0]
    optimizer.step()
    first = parameter.value.copy()
    parameter.grad[:] = [1.0]
    optimizer.step()
    second_step = first - parameter.value
    # The second step is larger than the first because of the velocity term.
    assert second_step > 1.0
    assert first == pytest.approx(-1.0)


def test_weight_decay_shrinks_weights():
    parameter = Parameter(np.array([10.0]))
    parameter.grad[:] = [0.0]
    SGD([parameter], lr=0.1, weight_decay=0.5).step()
    assert parameter.value[0] == pytest.approx(10.0 - 0.1 * 0.5 * 10.0)


def test_zero_grad_clears_gradients():
    parameter = Parameter(np.array([1.0]))
    parameter.grad[:] = [3.0]
    optimizer = SGD([parameter], lr=0.1)
    optimizer.zero_grad()
    assert parameter.grad[0] == 0.0


def test_minimizes_quadratic():
    parameter = Parameter(np.array([5.0]))
    optimizer = SGD([parameter], lr=0.1)
    for _ in range(200):
        parameter.grad[:] = 2.0 * parameter.value
        optimizer.step()
    assert abs(parameter.value[0]) < 1e-6


@pytest.mark.parametrize("kwargs", [{"lr": 0.0}, {"lr": 0.1, "momentum": 1.0}, {"lr": 0.1, "weight_decay": -1.0}])
def test_invalid_hyperparameters_raise(kwargs):
    with pytest.raises(ModelError):
        SGD([Parameter(np.zeros(1))], **kwargs)
