"""Tests for the LSTM layers."""

import numpy as np
import pytest

from repro.exceptions import ModelError
from repro.nn.rnn import LSTM, LSTMLayer


@pytest.fixture
def rng():
    return np.random.default_rng(0)


def test_lstm_layer_output_shape(rng):
    layer = LSTMLayer(5, 7, rng)
    outputs = layer.forward(rng.normal(size=(3, 6, 5)))
    assert outputs.shape == (3, 6, 7)


def test_lstm_layer_backward_shapes(rng):
    layer = LSTMLayer(4, 3, rng)
    inputs = rng.normal(size=(2, 5, 4))
    outputs = layer.forward(inputs)
    grad_in = layer.backward(np.ones_like(outputs))
    assert grad_in.shape == inputs.shape
    assert layer.weight_ih.grad.shape == (12, 4)
    assert layer.weight_hh.grad.shape == (12, 3)
    assert layer.bias.grad.shape == (12,)


def test_lstm_outputs_bounded_by_tanh(rng):
    layer = LSTMLayer(3, 4, rng)
    outputs = layer.forward(rng.normal(size=(2, 10, 3)) * 10)
    assert np.all(np.abs(outputs) <= 1.0)


def test_lstm_hidden_state_evolves_over_time(rng):
    layer = LSTMLayer(2, 3, rng)
    constant_input = np.ones((1, 6, 2))
    outputs = layer.forward(constant_input)
    # With constant inputs, successive hidden states still differ (state builds up).
    assert not np.allclose(outputs[0, 0], outputs[0, -1])


def test_stacked_lstm_shapes(rng):
    model = LSTM(4, 6, num_layers=3, rng=rng)
    inputs = rng.normal(size=(2, 5, 4))
    outputs = model.forward(inputs)
    assert outputs.shape == (2, 5, 6)
    assert model.backward(np.ones_like(outputs)).shape == inputs.shape
    assert len(model.layers) == 3


def test_lstm_rejects_wrong_feature_dimension(rng):
    layer = LSTMLayer(4, 3, rng)
    with pytest.raises(ModelError):
        layer.forward(np.zeros((2, 5, 6)))


def test_lstm_rejects_invalid_dimensions(rng):
    with pytest.raises(ModelError):
        LSTMLayer(0, 3, rng)
    with pytest.raises(ModelError):
        LSTM(3, 3, num_layers=0, rng=rng)


def test_lstm_gradient_matches_numerical(rng):
    """Finite-difference check of the full BPTT on a tiny layer."""

    layer = LSTMLayer(2, 2, rng)
    inputs = rng.normal(size=(1, 3, 2))

    def loss_value() -> float:
        return float(np.sum(layer.forward(inputs) ** 2))

    loss_value()
    grad_outputs = 2.0 * layer.forward(inputs)
    layer.backward(grad_outputs)
    analytic = layer.weight_ih.grad.copy()

    numeric = np.zeros_like(analytic)
    epsilon = 1e-6
    for i in range(analytic.shape[0]):
        for j in range(analytic.shape[1]):
            layer.weight_ih.value[i, j] += epsilon
            plus = loss_value()
            layer.weight_ih.value[i, j] -= 2 * epsilon
            minus = loss_value()
            layer.weight_ih.value[i, j] += epsilon
            numeric[i, j] = (plus - minus) / (2 * epsilon)
    assert np.allclose(analytic, numeric, atol=1e-5)
