"""Tests for the Module/Parameter system and flat-vector bridge."""

import numpy as np
import pytest

from repro.exceptions import ModelError
from repro.nn.layers import Linear
from repro.nn.models import MLPClassifier
from repro.nn.module import (
    Parameter,
    Sequential,
    get_flat_gradients,
    get_flat_parameters,
    set_flat_parameters,
)


@pytest.fixture
def rng():
    return np.random.default_rng(0)


def test_parameter_tracks_shape_and_grad(rng):
    parameter = Parameter(rng.normal(size=(3, 4)), name="w")
    assert parameter.shape == (3, 4)
    assert parameter.size == 12
    assert np.all(parameter.grad == 0)
    parameter.grad += 1.0
    parameter.zero_grad()
    assert np.all(parameter.grad == 0)


def test_parameters_discovered_in_deterministic_order(rng):
    model_a = MLPClassifier(6, 5, 3, np.random.default_rng(1))
    model_b = MLPClassifier(6, 5, 3, np.random.default_rng(1))
    shapes_a = [p.shape for p in model_a.parameters()]
    shapes_b = [p.shape for p in model_b.parameters()]
    assert shapes_a == shapes_b
    assert np.array_equal(get_flat_parameters(model_a), get_flat_parameters(model_b))


def test_num_parameters_matches_flat_vector(rng):
    model = MLPClassifier(8, 4, 2, rng)
    assert model.num_parameters == get_flat_parameters(model).size


def test_set_flat_parameters_roundtrip(rng):
    model = MLPClassifier(8, 4, 2, rng)
    vector = np.random.default_rng(3).normal(size=model.num_parameters)
    set_flat_parameters(model, vector)
    assert np.allclose(get_flat_parameters(model), vector)


def test_set_flat_parameters_wrong_size_raises(rng):
    model = MLPClassifier(8, 4, 2, rng)
    with pytest.raises(ModelError):
        set_flat_parameters(model, np.zeros(model.num_parameters + 1))


def test_zero_grad_clears_all_gradients(rng):
    model = MLPClassifier(4, 3, 2, rng)
    for parameter in model.parameters():
        parameter.grad += 1.0
    model.zero_grad()
    assert np.all(get_flat_gradients(model) == 0)


def test_train_eval_propagates_to_submodules(rng):
    model = MLPClassifier(4, 3, 2, rng)
    model.eval()
    assert all(not module.training for module in model.modules())
    model.train()
    assert all(module.training for module in model.modules())


def test_sequential_composes_forward_and_backward(rng):
    model = Sequential(Linear(5, 4, rng), Linear(4, 2, rng))
    inputs = rng.normal(size=(3, 5))
    outputs = model.forward(inputs)
    assert outputs.shape == (3, 2)
    grad_in = model.backward(np.ones_like(outputs))
    assert grad_in.shape == inputs.shape
    assert model.num_parameters == 5 * 4 + 4 + 4 * 2 + 2


def test_modules_in_lists_are_discovered(rng):
    model = Sequential(Linear(3, 3, rng), Linear(3, 3, rng))
    assert len(list(model.modules())) == 3
    assert len(model.parameters()) == 4
