"""Numerical gradient checks for every model architecture.

These are the strongest correctness tests of the NN substrate: the analytic
backward pass of each model is compared against central finite differences of
the loss with respect to every parameter.
"""

import numpy as np
import pytest

from repro.nn.losses import CrossEntropyLoss, MSELoss
from repro.nn.models import CharLSTM, ConvClassifier, MatrixFactorization, MLPClassifier
from repro.nn.module import get_flat_gradients, get_flat_parameters, set_flat_parameters


def _numerical_gradient(model, loss, inputs, targets, epsilon=1e-6):
    base = get_flat_parameters(model)
    grad = np.zeros_like(base)
    for index in range(base.size):
        perturbed = base.copy()
        perturbed[index] += epsilon
        set_flat_parameters(model, perturbed)
        plus = loss.forward(model.forward(inputs), targets)
        perturbed[index] -= 2 * epsilon
        set_flat_parameters(model, perturbed)
        minus = loss.forward(model.forward(inputs), targets)
        grad[index] = (plus - minus) / (2 * epsilon)
    set_flat_parameters(model, base)
    return grad


def _analytic_gradient(model, loss, inputs, targets):
    model.zero_grad()
    loss.forward(model.forward(inputs), targets)
    model.backward(loss.backward())
    return get_flat_gradients(model)


def _relative_error(analytic, numeric):
    scale = max(1e-8, float(np.max(np.abs(numeric))))
    return float(np.max(np.abs(analytic - numeric))) / scale


def test_mlp_gradients_match():
    rng = np.random.default_rng(0)
    model = MLPClassifier(6, 5, 3, rng)
    loss = CrossEntropyLoss()
    inputs = rng.normal(size=(3, 6))
    targets = rng.integers(0, 3, size=3)
    error = _relative_error(
        _analytic_gradient(model, loss, inputs, targets),
        _numerical_gradient(model, loss, inputs, targets),
    )
    assert error < 1e-6


def test_conv_classifier_gradients_match():
    rng = np.random.default_rng(1)
    model = ConvClassifier(2, 8, 3, rng, channels=(2, 3), hidden=5)
    loss = CrossEntropyLoss()
    inputs = rng.normal(size=(2, 2, 8, 8))
    targets = rng.integers(0, 3, size=2)
    error = _relative_error(
        _analytic_gradient(model, loss, inputs, targets),
        _numerical_gradient(model, loss, inputs, targets),
    )
    assert error < 1e-5


def test_char_lstm_gradients_match():
    rng = np.random.default_rng(2)
    model = CharLSTM(5, rng, embedding_dim=3, hidden_size=4, num_layers=2)
    loss = CrossEntropyLoss()
    inputs = rng.integers(0, 5, size=(2, 4))
    targets = rng.integers(0, 5, size=2)
    error = _relative_error(
        _analytic_gradient(model, loss, inputs, targets),
        _numerical_gradient(model, loss, inputs, targets),
    )
    assert error < 1e-5


def test_matrix_factorization_gradients_match():
    rng = np.random.default_rng(3)
    model = MatrixFactorization(4, 5, rng, embedding_dim=3)
    loss = MSELoss()
    pairs = np.stack([rng.integers(0, 4, size=6), rng.integers(0, 5, size=6)], axis=1)
    ratings = rng.normal(size=6)
    error = _relative_error(
        _analytic_gradient(model, loss, pairs, ratings),
        _numerical_gradient(model, loss, pairs, ratings),
    )
    assert error < 1e-6


@pytest.mark.parametrize("batch", [1, 4])
def test_gradients_scale_with_batch_size(batch):
    """Cross-entropy averages over the batch, so gradients stay O(1) in batch size."""

    rng = np.random.default_rng(4)
    model = MLPClassifier(4, 4, 2, rng)
    loss = CrossEntropyLoss()
    inputs = rng.normal(size=(batch, 4))
    targets = rng.integers(0, 2, size=batch)
    grad = _analytic_gradient(model, loss, inputs, targets)
    assert np.max(np.abs(grad)) < 10.0
