"""Tests for convolution and pooling layers."""

import numpy as np
import pytest

from repro.exceptions import ModelError
from repro.nn.conv import Conv2d, MaxPool2d


@pytest.fixture
def rng():
    return np.random.default_rng(0)


def test_conv_output_shape(rng):
    layer = Conv2d(3, 8, kernel_size=3, rng=rng, padding=1)
    outputs = layer.forward(rng.normal(size=(2, 3, 8, 8)))
    assert outputs.shape == (2, 8, 8, 8)


def test_conv_output_shape_no_padding_stride(rng):
    layer = Conv2d(1, 2, kernel_size=3, rng=rng, stride=2)
    outputs = layer.forward(rng.normal(size=(1, 1, 9, 9)))
    assert outputs.shape == (1, 2, 4, 4)


def test_conv_matches_manual_computation(rng):
    layer = Conv2d(1, 1, kernel_size=2, rng=rng, bias=False)
    layer.weight.value[...] = np.array([[[[1.0, 2.0], [3.0, 4.0]]]])
    inputs = np.arange(9.0).reshape(1, 1, 3, 3)
    outputs = layer.forward(inputs)
    # Top-left window [[0,1],[3,4]] -> 0*1 + 1*2 + 3*3 + 4*4 = 27.
    assert outputs[0, 0, 0, 0] == pytest.approx(27.0)
    assert outputs.shape == (1, 1, 2, 2)


def test_conv_backward_shapes(rng):
    layer = Conv2d(2, 4, kernel_size=3, rng=rng, padding=1)
    inputs = rng.normal(size=(3, 2, 6, 6))
    outputs = layer.forward(inputs)
    grad_in = layer.backward(np.ones_like(outputs))
    assert grad_in.shape == inputs.shape
    assert layer.weight.grad.shape == layer.weight.value.shape
    assert layer.bias.grad.shape == (4,)


def test_conv_rejects_wrong_channel_count(rng):
    layer = Conv2d(3, 4, kernel_size=3, rng=rng)
    with pytest.raises(ModelError):
        layer.forward(np.zeros((1, 2, 8, 8)))


def test_conv_rejects_empty_output(rng):
    layer = Conv2d(1, 1, kernel_size=5, rng=rng)
    with pytest.raises(ModelError):
        layer.forward(np.zeros((1, 1, 3, 3)))


def test_maxpool_selects_window_maximum():
    layer = MaxPool2d(2)
    inputs = np.array([[[[1.0, 2.0], [3.0, 4.0]]]])
    assert layer.forward(inputs)[0, 0, 0, 0] == 4.0


def test_maxpool_backward_routes_gradient_to_argmax():
    layer = MaxPool2d(2)
    inputs = np.array([[[[1.0, 2.0], [3.0, 4.0]]]])
    layer.forward(inputs)
    grad = layer.backward(np.array([[[[5.0]]]]))
    expected = np.array([[[[0.0, 0.0], [0.0, 5.0]]]])
    assert np.array_equal(grad, expected)


def test_maxpool_rejects_non_divisible_input():
    with pytest.raises(ModelError):
        MaxPool2d(2).forward(np.zeros((1, 1, 3, 4)))


def test_maxpool_preserves_batch_and_channels(rng):
    layer = MaxPool2d(2)
    outputs = layer.forward(rng.normal(size=(5, 7, 8, 8)))
    assert outputs.shape == (5, 7, 4, 4)
