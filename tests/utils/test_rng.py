"""Tests for deterministic RNG derivation."""

import numpy as np

from repro.utils.rng import SeedSequenceFactory, derive_rng, spawn_seeds


def test_same_namespace_same_stream():
    a = derive_rng(42, "topology").random(5)
    b = derive_rng(42, "topology").random(5)
    assert np.array_equal(a, b)


def test_different_namespace_different_stream():
    a = derive_rng(42, "topology").random(5)
    b = derive_rng(42, "init").random(5)
    assert not np.array_equal(a, b)


def test_different_seed_different_stream():
    a = derive_rng(1, "x").random(5)
    b = derive_rng(2, "x").random(5)
    assert not np.array_equal(a, b)


def test_integer_namespace_components():
    a = derive_rng(5, "node", 0).random(3)
    b = derive_rng(5, "node", 1).random(3)
    assert not np.array_equal(a, b)


def test_spawn_seeds_count_and_determinism():
    seeds_a = spawn_seeds(9, 10, "nodes")
    seeds_b = spawn_seeds(9, 10, "nodes")
    assert seeds_a == seeds_b
    assert len(seeds_a) == 10
    assert len(set(seeds_a)) == 10


def test_factory_node_rng_independent_per_node():
    factory = SeedSequenceFactory(seed=3)
    a = factory.node_rng(0, "batches").random(4)
    b = factory.node_rng(1, "batches").random(4)
    assert not np.array_equal(a, b)


def test_factory_node_seed_stable():
    factory = SeedSequenceFactory(seed=3)
    assert factory.node_seed(2, "scheme") == factory.node_seed(2, "scheme")
    assert factory.node_seed(2, "scheme") != factory.node_seed(3, "scheme")
