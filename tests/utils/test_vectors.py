"""Tests for flat-vector helpers."""

import numpy as np
import pytest

from repro.utils.vectors import flatten_arrays, unflatten_vector


def test_flatten_then_unflatten_roundtrip():
    arrays = [np.arange(6).reshape(2, 3), np.ones((4,)), np.zeros((2, 2, 2))]
    flat = flatten_arrays(arrays)
    assert flat.shape == (6 + 4 + 8,)
    restored = unflatten_vector(flat, [a.shape for a in arrays])
    for original, back in zip(arrays, restored):
        assert np.array_equal(original, back)


def test_flatten_empty_list():
    assert flatten_arrays([]).shape == (0,)


def test_unflatten_size_mismatch_raises():
    with pytest.raises(ValueError):
        unflatten_vector(np.zeros(5), [(2, 3)])


def test_unflatten_returns_copies():
    flat = np.arange(4, dtype=np.float64)
    restored = unflatten_vector(flat, [(2, 2)])
    restored[0][0, 0] = 99.0
    assert flat[0] == 0.0
