"""Tests for statistics helpers."""

import numpy as np
import pytest

from repro.utils.statistics import ConfidenceInterval, RunningMean, mean_confidence_interval


def test_confidence_interval_single_sample_has_zero_width():
    interval = mean_confidence_interval([3.5])
    assert interval.mean == pytest.approx(3.5)
    assert interval.half_width == 0.0


def test_confidence_interval_contains_mean():
    interval = mean_confidence_interval([1.0, 2.0, 3.0, 4.0, 5.0])
    assert interval.mean == pytest.approx(3.0)
    assert 3.0 in interval
    assert interval.low < 3.0 < interval.high


def test_confidence_interval_width_grows_with_variance():
    tight = mean_confidence_interval([1.0, 1.01, 0.99, 1.0, 1.0])
    wide = mean_confidence_interval([0.0, 2.0, -1.0, 3.0, 1.0])
    assert wide.half_width > tight.half_width


def test_confidence_interval_empty_raises():
    with pytest.raises(ValueError):
        mean_confidence_interval([])


def test_confidence_interval_bounds_symmetric():
    interval = ConfidenceInterval(mean=2.0, half_width=0.5, confidence=0.95)
    assert interval.low == pytest.approx(1.5)
    assert interval.high == pytest.approx(2.5)


def test_running_mean_matches_numpy():
    values = np.random.default_rng(0).normal(size=100)
    running = RunningMean()
    running.update_many(values)
    assert running.mean == pytest.approx(float(values.mean()))
    assert running.count == 100


def test_running_mean_weighted_update():
    running = RunningMean()
    running.update(1.0, weight=1.0)
    running.update(3.0, weight=3.0)
    assert running.mean == pytest.approx(2.5)


def test_running_mean_rejects_nonpositive_weight():
    running = RunningMean()
    with pytest.raises(ValueError):
        running.update(1.0, weight=0.0)
