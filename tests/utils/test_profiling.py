"""Tests for the phase-timer profiler and its engine integration."""

import numpy as np
import pytest

from repro.baselines.full_sharing import full_sharing_factory
from repro.simulation.engine import Simulator
from repro.simulation.experiment import ExperimentConfig
from repro.simulation.metrics import ExperimentResult
from repro.simulation.runner import run_experiment
from repro.utils.profiling import Profiler, format_profile
from tests.conftest import make_toy_task


class FakeClock:
    """Deterministic clock advancing by a fixed step per reading."""

    def __init__(self, step: float = 1.0) -> None:
        self.now = 0.0
        self.step = step

    def __call__(self) -> float:
        self.now += self.step
        return self.now


def test_profiler_totals_counts_and_rounds():
    profiler = Profiler(clock=FakeClock())
    with profiler.phase("train"):
        pass  # clock advances 1.0 inside
    with profiler.phase("train"):
        pass
    with profiler.phase("encode"):
        pass
    profiler.mark_round(0)
    with profiler.phase("train"):
        pass
    profiler.mark_round(1)

    assert profiler.totals == {"train": 3.0, "encode": 1.0}
    assert profiler.counts == {"train": 3, "encode": 1}
    rows = profiler.round_rows
    assert rows[0] == {"round": 0.0, "train": 2.0, "encode": 1.0}
    assert rows[1] == {"round": 1.0, "train": 1.0}


def test_mark_round_without_activity_adds_no_row():
    profiler = Profiler(clock=FakeClock())
    profiler.mark_round(0)
    assert profiler.round_rows == []


def test_flush_recovers_work_after_last_round_mark():
    profiler = Profiler(clock=FakeClock())
    with profiler.phase("train"):
        pass
    profiler.mark_round(0)
    # The run's closing evaluation lands after the final round boundary; a
    # flush must attribute it to a trailing row instead of dropping it.
    with profiler.phase("evaluate"):
        pass
    profiler.flush(1)
    assert profiler.round_rows == [
        {"round": 0.0, "train": 1.0},
        {"round": 1.0, "evaluate": 1.0},
    ]
    # Flushing again with nothing pending adds no empty row.
    profiler.flush(2)
    assert len(profiler.round_rows) == 2


def _tiny_config(**overrides) -> ExperimentConfig:
    base = dict(
        num_nodes=4, degree=2, rounds=3, local_steps=1, batch_size=4,
        eval_every=2, eval_test_samples=16, seed=5,
    )
    base.update(overrides)
    return ExperimentConfig(**base)


@pytest.mark.parametrize("execution", ["sync", "async"])
def test_engine_fills_phase_seconds(execution):
    task = make_toy_task(seed=5)
    profiler = Profiler()
    result = run_experiment(
        task,
        full_sharing_factory(),
        _tiny_config(execution=execution),
        profiler=profiler,
    )
    assert set(result.phase_seconds) == {"train", "encode", "aggregate", "evaluate"}
    assert all(seconds >= 0.0 for seconds in result.phase_seconds.values())
    # 3 rounds x 4 nodes of each per-node phase
    assert profiler.counts["train"] == 12
    assert profiler.counts["encode"] == 12
    assert result.round_phase_seconds
    # every phase total equals the sum of its per-round attribution
    for phase, total in result.phase_seconds.items():
        attributed = sum(row.get(phase, 0.0) for row in result.round_phase_seconds)
        assert attributed == pytest.approx(total)


def test_sync_round_rows_attribute_evaluate_to_triggering_round():
    task = make_toy_task(seed=5)
    profiler = Profiler()
    result = run_experiment(
        task,
        full_sharing_factory(),
        _tiny_config(eval_every=1),
        profiler=profiler,
    )
    # One row per round, no phantom trailing row, and with eval_every=1 every
    # row carries the evaluation its own round triggered.
    assert [row["round"] for row in result.round_phase_seconds] == [0.0, 1.0, 2.0]
    assert all("evaluate" in row for row in result.round_phase_seconds)


def test_profiled_run_is_bit_identical_to_unprofiled():
    task = make_toy_task(seed=5)
    plain = run_experiment(task, full_sharing_factory(), _tiny_config())
    profiled = run_experiment(
        task, full_sharing_factory(), _tiny_config(), profiler=Profiler()
    )
    assert plain.history == profiled.history
    assert plain.total_bytes == profiled.total_bytes
    assert plain.simulated_time_seconds == profiled.simulated_time_seconds
    # only the wall-clock fields may differ
    plain_dict, profiled_dict = plain.to_dict(), profiled.to_dict()
    for key in ("phase_seconds", "round_phase_seconds", "memory"):
        plain_dict.pop(key), profiled_dict.pop(key)
    assert plain_dict == profiled_dict


def test_result_serialization_roundtrips_profile_fields():
    import json

    result = ExperimentResult(
        scheme="jwins", task="toy", num_nodes=2, rounds_completed=1,
        phase_seconds={"train": 0.25, "encode": 0.125},
        round_phase_seconds=[{"round": 0.0, "train": 0.25, "encode": 0.125}],
    )
    restored = ExperimentResult.from_dict(json.loads(json.dumps(result.to_dict())))
    assert restored == result
    # legacy payloads without the profile keys still load
    legacy = result.to_dict()
    legacy.pop("phase_seconds"), legacy.pop("round_phase_seconds")
    assert ExperimentResult.from_dict(legacy).phase_seconds == {}


def test_format_profile_renders_table():
    text = format_profile({"train": 2.0, "encode": 1.0}, rounds_completed=4,
                          counts={"train": 8, "encode": 8})
    assert "train" in text and "encode" in text
    assert "66.7%" in text and "ms/round" in text and "calls" in text
    assert format_profile({}).startswith("no profile recorded")


def test_simulator_profile_helper_is_noop_without_profiler():
    task = make_toy_task(seed=5)
    simulator = Simulator(task, full_sharing_factory(), _tiny_config())
    with simulator.profile("train"):
        value = np.sum(np.ones(3))
    assert value == 3.0
    assert simulator.profiler is None
