"""Tests for the random-sampling sharing scheme."""

import numpy as np
import pytest

from repro.baselines.random_sampling import RandomSamplingScheme, random_sampling_factory
from repro.core.interface import RoundContext
from repro.exceptions import SimulationError

SIZE = 200


def _context(trained, round_index=0, neighbors=(1,)):
    weight = 1.0 / (len(neighbors) + 1)
    return RoundContext(
        round_index=round_index,
        params_start=np.zeros(SIZE),
        params_trained=trained,
        self_weight=weight,
        neighbor_weights={n: weight for n in neighbors},
        rng=np.random.default_rng(round_index),
    )


def test_shares_requested_fraction():
    scheme = RandomSamplingScheme(0, SIZE, seed=1, fraction=0.25)
    message = scheme.prepare(_context(np.random.default_rng(0).normal(size=SIZE)))
    assert message.payload["indices"].size == 50
    assert message.payload["values"].size == 50


def test_metadata_is_only_a_seed():
    scheme = RandomSamplingScheme(0, SIZE, seed=1, fraction=0.25)
    message = scheme.prepare(_context(np.zeros(SIZE)))
    assert message.size.metadata_bytes == 8


def test_selection_changes_each_round_but_is_reproducible():
    scheme_a = RandomSamplingScheme(0, SIZE, seed=1, fraction=0.2)
    scheme_b = RandomSamplingScheme(0, SIZE, seed=1, fraction=0.2)
    trained = np.zeros(SIZE)
    first_a = scheme_a.prepare(_context(trained, round_index=0)).payload["indices"]
    first_b = scheme_b.prepare(_context(trained, round_index=0)).payload["indices"]
    second_a = scheme_a.prepare(_context(trained, round_index=1)).payload["indices"]
    assert np.array_equal(first_a, first_b)
    assert not np.array_equal(first_a, second_a)


def test_values_match_selected_parameters():
    scheme = RandomSamplingScheme(0, SIZE, seed=3, fraction=0.3)
    trained = np.random.default_rng(2).normal(size=SIZE)
    message = scheme.prepare(_context(trained))
    assert np.allclose(message.payload["values"], trained[message.payload["indices"]])


def test_aggregation_fills_missing_with_own_values():
    scheme = RandomSamplingScheme(0, SIZE, seed=1, fraction=0.5)
    peer = RandomSamplingScheme(1, SIZE, seed=2, fraction=0.5)
    own = np.zeros(SIZE)
    other = np.ones(SIZE)
    context = _context(own)
    scheme.prepare(context)
    peer_message = peer.prepare(_context(other))
    result = scheme.aggregate(context, [peer_message])
    shared = peer_message.payload["indices"]
    unshared = np.setdiff1d(np.arange(SIZE), shared)
    assert np.allclose(result[shared], 0.5)
    assert np.allclose(result[unshared], 0.0)


def test_invalid_fraction_raises():
    with pytest.raises(SimulationError):
        RandomSamplingScheme(0, SIZE, seed=1, fraction=0.0)


def test_factory_uses_fraction():
    scheme = random_sampling_factory(fraction=0.1)(0, SIZE, 1)
    message = scheme.prepare(_context(np.zeros(SIZE)))
    assert message.payload["indices"].size == 20
