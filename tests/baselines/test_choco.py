"""Tests for the CHOCO-SGD baseline."""

import numpy as np
import pytest

from repro.baselines.choco import ChocoScheme, choco_factory
from repro.core.interface import Message, RoundContext
from repro.exceptions import SimulationError

SIZE = 50


def _context(trained, neighbors=(1,), round_index=0):
    weight = 1.0 / (len(neighbors) + 1)
    return RoundContext(
        round_index=round_index,
        params_start=np.zeros(SIZE),
        params_trained=trained,
        self_weight=weight,
        neighbor_weights={n: weight for n in neighbors},
        rng=np.random.default_rng(round_index),
    )


def test_message_is_topk_of_difference_to_public_copy():
    scheme = ChocoScheme(0, SIZE, seed=1, fraction=0.2, gamma=0.5)
    trained = np.zeros(SIZE)
    trained[:5] = np.array([5.0, -4.0, 3.0, -2.0, 1.0])
    message = scheme.prepare(_context(trained))
    # x_hat starts at zero, so the difference is the trained model itself and
    # the TopK picks its largest entries.
    assert message.payload["indices"].size == 10
    assert set(range(5)).issubset(set(message.payload["indices"].tolist()))


def test_public_copy_converges_to_private_model():
    """Repeatedly compressing the difference drives x_hat towards the model."""

    scheme = ChocoScheme(0, SIZE, seed=1, fraction=0.3, gamma=0.8)
    trained = np.random.default_rng(0).normal(size=SIZE)
    context = RoundContext(0, np.zeros(SIZE), trained, 1.0, {}, np.random.default_rng(0))
    for _ in range(20):
        scheme.prepare(context)
        scheme.aggregate(context, [])
    assert np.allclose(scheme._x_hat, trained, atol=1e-6)


def test_gossip_correction_moves_towards_neighbor():
    scheme_a = ChocoScheme(0, SIZE, seed=1, fraction=1.0, gamma=1.0)
    scheme_b = ChocoScheme(1, SIZE, seed=2, fraction=1.0, gamma=1.0)
    model_a = np.zeros(SIZE)
    model_b = np.ones(SIZE)
    context_a = _context(model_a, neighbors=(1,))
    context_b = _context(model_b, neighbors=(0,))
    message_a = scheme_a.prepare(context_a)
    message_b = scheme_b.prepare(context_b)
    new_a = scheme_a.aggregate(context_a, [message_b])
    new_b = scheme_b.aggregate(context_b, [message_a])
    # With full compression and gamma=1 this is exact D-PSGD averaging.
    assert np.allclose(new_a, 0.5)
    assert np.allclose(new_b, 0.5)


def test_two_nodes_converge_to_consensus_over_rounds():
    scheme_a = ChocoScheme(0, SIZE, seed=1, fraction=0.3, gamma=0.6)
    scheme_b = ChocoScheme(1, SIZE, seed=2, fraction=0.3, gamma=0.6)
    model_a = np.zeros(SIZE)
    model_b = np.ones(SIZE)
    for round_index in range(60):
        context_a = _context(model_a, neighbors=(1,), round_index=round_index)
        context_b = _context(model_b, neighbors=(0,), round_index=round_index)
        message_a = scheme_a.prepare(context_a)
        message_b = scheme_b.prepare(context_b)
        model_a = scheme_a.aggregate(context_a, [message_b])
        model_b = scheme_b.aggregate(context_b, [message_a])
    assert np.allclose(model_a, model_b, atol=0.05)
    assert np.allclose(model_a, 0.5, atol=0.1)


def test_messages_meter_values_and_metadata():
    scheme = ChocoScheme(0, SIZE, seed=1, fraction=0.2, gamma=0.5)
    message = scheme.prepare(_context(np.random.default_rng(3).normal(size=SIZE)))
    assert message.size.values_bytes > 0
    assert message.size.metadata_bytes > 0


def test_aggregate_before_prepare_raises():
    scheme = ChocoScheme(0, SIZE, seed=1)
    with pytest.raises(SimulationError):
        scheme.aggregate(_context(np.zeros(SIZE)), [])


def test_incompatible_message_rejected():
    scheme = ChocoScheme(0, SIZE, seed=1)
    context = _context(np.zeros(SIZE))
    scheme.prepare(context)
    with pytest.raises(SimulationError):
        scheme.aggregate(context, [Message(sender=1, kind="full-model", payload={})])


def test_invalid_hyperparameters_raise():
    with pytest.raises(SimulationError):
        ChocoScheme(0, SIZE, seed=1, fraction=0.0)
    with pytest.raises(SimulationError):
        ChocoScheme(0, SIZE, seed=1, gamma=0.0)


def test_factory_sets_budget_and_gamma():
    scheme = choco_factory(fraction=0.1, gamma=0.3)(4, SIZE, 2)
    assert scheme.fraction == 0.1
    assert scheme.gamma == 0.3
    assert scheme.node_id == 4
