"""Tests for the TopK parameter-sharing baseline."""

import numpy as np

from repro.baselines.topk_sharing import TopKSharingScheme, topk_sharing_factory
from repro.core.interface import RoundContext
from repro.wavelets.transform import IdentityTransform

SIZE = 64


def _context(start, trained, neighbors=()):
    weight = 1.0 / (len(neighbors) + 1)
    return RoundContext(
        round_index=0,
        params_start=start,
        params_trained=trained,
        self_weight=weight,
        neighbor_weights={n: weight for n in neighbors},
        rng=np.random.default_rng(0),
    )


def test_topk_operates_in_parameter_domain():
    scheme = TopKSharingScheme(0, SIZE, seed=1, fraction=0.25)
    assert isinstance(scheme.transform, IdentityTransform)
    assert scheme.name == "topk-sharing"


def test_topk_selects_largest_parameter_changes():
    scheme = TopKSharingScheme(0, SIZE, seed=1, fraction=0.125)
    start = np.zeros(SIZE)
    trained = np.zeros(SIZE)
    big_movers = np.array([3, 17, 40, 63])
    trained[big_movers] = 10.0
    trained[np.array([5, 6])] = 0.01
    message = scheme.prepare(_context(start, trained))
    assert set(big_movers.tolist()).issubset(set(message.payload["indices"].tolist()))


def test_fixed_fraction_every_round():
    scheme = TopKSharingScheme(0, SIZE, seed=1, fraction=0.5)
    rng = np.random.default_rng(1)
    sizes = set()
    for _ in range(3):
        message = scheme.prepare(_context(np.zeros(SIZE), rng.normal(size=SIZE)))
        sizes.add(message.payload["indices"].size)
    assert sizes == {32}


def test_accumulation_recovers_starved_coordinates():
    """A coordinate with small steady changes is eventually selected."""

    scheme = TopKSharingScheme(0, SIZE, seed=1, fraction=1.0 / SIZE, use_accumulation=True)
    start = np.zeros(SIZE)
    selected_history = []
    for round_index in range(30):
        trained = start.copy()
        trained[0] += 1.0      # always the biggest mover
        trained[1] += 0.2      # small but steady
        context = _context(start, trained)
        message = scheme.prepare(context)
        selected_history.append(set(message.payload["indices"].tolist()))
        new_params = scheme.aggregate(context, [])
        scheme.finalize(context, new_params)
        start = new_params
    assert any(1 in selected for selected in selected_history)


def test_factory_configuration():
    scheme = topk_sharing_factory(fraction=0.25, use_accumulation=False)(2, SIZE, 9)
    assert scheme.node_id == 2
    assert not scheme.config.use_accumulation
