"""Tests for the full-sharing baseline."""

import numpy as np
import pytest

from repro.baselines.full_sharing import FullSharingScheme, full_sharing_factory
from repro.core.interface import Message, RoundContext
from repro.exceptions import SimulationError

SIZE = 40


def _context(trained, neighbors, self_weight=None):
    weight = 1.0 / (len(neighbors) + 1)
    return RoundContext(
        round_index=0,
        params_start=np.zeros(SIZE),
        params_trained=trained,
        self_weight=self_weight if self_weight is not None else weight,
        neighbor_weights={n: weight for n in neighbors},
        rng=np.random.default_rng(0),
    )


def test_message_contains_full_model():
    scheme = FullSharingScheme(0, SIZE, seed=1)
    trained = np.random.default_rng(1).normal(size=SIZE)
    message = scheme.prepare(_context(trained, (1,)))
    assert np.array_equal(message.payload["values"], trained)
    assert message.size.metadata_bytes == 0
    assert message.size.values_bytes > 0


def test_aggregation_is_weighted_average():
    scheme = FullSharingScheme(0, SIZE, seed=1)
    trained = np.ones(SIZE)
    neighbor_model = np.full(SIZE, 3.0)
    context = _context(trained, (1,))
    scheme.prepare(context)
    message = Message(sender=1, kind="full-model", payload={"values": neighbor_model})
    result = scheme.aggregate(context, [message])
    assert np.allclose(result, 2.0)


def test_aggregation_rejects_weights_above_one():
    scheme = FullSharingScheme(0, SIZE, seed=1)
    context = _context(np.ones(SIZE), (1,), self_weight=0.9)
    with pytest.raises(SimulationError):
        scheme.aggregate(context, [Message(sender=1, kind="full-model", payload={"values": np.ones(SIZE)})])


def test_aggregation_tolerates_missing_messages():
    """A dropped neighbor message leaves that neighbor's weight on the own model."""

    scheme = FullSharingScheme(0, SIZE, seed=1)
    trained = np.full(SIZE, 2.0)
    context = _context(trained, (1, 2))
    scheme.prepare(context)
    only_one = Message(sender=1, kind="full-model", payload={"values": np.full(SIZE, 5.0)})
    result = scheme.aggregate(context, [only_one])
    # Weight 1/3 each: 2 * (2/3) + 5 * (1/3) = 3.
    assert np.allclose(result, 3.0)


def test_incompatible_message_rejected():
    scheme = FullSharingScheme(0, SIZE, seed=1)
    context = _context(np.ones(SIZE), (1,))
    alien = Message(sender=1, kind="jwins-partial-wavelets", payload={})
    with pytest.raises(SimulationError):
        scheme.aggregate(context, [alien])


def test_non_neighbor_message_rejected():
    scheme = FullSharingScheme(0, SIZE, seed=1)
    context = _context(np.ones(SIZE), (1,))
    stranger = Message(sender=5, kind="full-model", payload={"values": np.ones(SIZE)})
    with pytest.raises(SimulationError):
        scheme.aggregate(context, [stranger])


def test_uncompressed_size_is_four_bytes_per_parameter():
    scheme = FullSharingScheme(0, SIZE, seed=1, compress=False)
    message = scheme.prepare(_context(np.ones(SIZE), (1,)))
    assert message.size.values_bytes == 4 * SIZE + 4


def test_factory_builds_scheme_per_node():
    factory = full_sharing_factory()
    assert factory(3, SIZE, 7).node_id == 3
