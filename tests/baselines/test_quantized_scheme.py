"""Tests for the quantized full-sharing baseline."""

import numpy as np
import pytest

from repro.baselines.quantized import QuantizedSharingScheme, quantized_sharing_factory
from repro.core.interface import Message, RoundContext
from repro.exceptions import SimulationError

SIZE = 300


def _context(trained, neighbors=(1,)):
    weight = 1.0 / (len(neighbors) + 1)
    return RoundContext(
        round_index=0,
        params_start=np.zeros(SIZE),
        params_trained=trained,
        self_weight=weight,
        neighbor_weights={n: weight for n in neighbors},
        rng=np.random.default_rng(0),
    )


def test_message_is_smaller_than_raw_model():
    scheme = QuantizedSharingScheme(0, SIZE, seed=1, bits=4, bucket_size=256)
    message = scheme.prepare(_context(np.random.default_rng(0).normal(size=SIZE)))
    assert message.size.values_bytes < 4 * SIZE
    assert message.size.metadata_bytes == 0
    # 4-bit quantization uses 5 bits per value plus one norm per bucket.
    expected = 0
    for start in range(0, SIZE, 256):
        bucket = min(256, SIZE - start)
        expected += 4 + (bucket * 5 + 7) // 8
    assert message.size.values_bytes == expected


def test_bucketing_reduces_quantization_error():
    trained = np.random.default_rng(4).normal(size=SIZE)
    coarse = QuantizedSharingScheme(0, SIZE, seed=1, bits=4, bucket_size=SIZE)
    fine = QuantizedSharingScheme(0, SIZE, seed=1, bits=4, bucket_size=32)
    coarse_error = np.linalg.norm(coarse.prepare(_context(trained)).payload["values"] - trained)
    fine_error = np.linalg.norm(fine.prepare(_context(trained)).payload["values"] - trained)
    assert fine_error <= coarse_error


def test_invalid_bucket_size_rejected():
    with pytest.raises(SimulationError):
        QuantizedSharingScheme(0, SIZE, seed=1, bucket_size=0)


def test_payload_approximates_model():
    scheme = QuantizedSharingScheme(0, SIZE, seed=1, bits=8)
    trained = np.random.default_rng(1).normal(size=SIZE)
    message = scheme.prepare(_context(trained))
    relative_error = np.linalg.norm(message.payload["values"] - trained) / np.linalg.norm(trained)
    assert relative_error < 0.2


def test_aggregation_averages_dequantized_models():
    scheme = QuantizedSharingScheme(0, SIZE, seed=1, bits=8)
    own = np.zeros(SIZE)
    neighbor_values = np.full(SIZE, 2.0)
    context = _context(own)
    scheme.prepare(context)
    message = Message(
        sender=1, kind="quantized-full-model", payload={"values": neighbor_values, "bits": 8}
    )
    result = scheme.aggregate(context, [message])
    assert np.allclose(result, 1.0)


def test_incompatible_message_rejected():
    scheme = QuantizedSharingScheme(0, SIZE, seed=1)
    context = _context(np.zeros(SIZE))
    with pytest.raises(SimulationError):
        scheme.aggregate(context, [Message(sender=1, kind="full-model", payload={})])


def test_factory_sets_bits():
    scheme = quantized_sharing_factory(bits=2)(3, SIZE, 5)
    assert scheme.bits == 2
    assert scheme.node_id == 3


def test_end_to_end_learning_with_quantized_sharing():
    """The quantized baseline plugs into the simulator and still learns."""

    from repro.simulation import ExperimentConfig, run_experiment
    from tests.conftest import make_toy_task

    task = make_toy_task(seed=31, train_samples=160, test_samples=64)
    config = ExperimentConfig(
        num_nodes=4,
        degree=2,
        rounds=10,
        local_steps=2,
        batch_size=8,
        learning_rate=0.2,
        eval_every=5,
        eval_test_samples=64,
        seed=6,
        partition="shards",
    )
    result = run_experiment(task, quantized_sharing_factory(bits=6), config)
    assert result.final_accuracy > 0.4
    assert result.total_metadata_bytes == 0
