"""The forensic trace differ: first-divergence localization + causal backtrace.

Hand-built traces pin the localization logic exactly (field drift, arrays,
reordered kinds, truncation, the backtrace's agree/diverged verdicts); a real
double-run pins the happy path (identical traces stay identical through the
differ, wall sections ignored).
"""

from __future__ import annotations

import json

import pytest

from repro.baselines.full_sharing import full_sharing_factory
from repro.observability.forensics import (
    SMALL_ARRAY_LIMIT,
    FieldDrift,
    diff_traces,
)
from repro.observability.trace import TraceEmitter
from repro.simulation.experiment import ExperimentConfig
from repro.simulation.runner import run_experiment
from tests.conftest import make_toy_task


def _manifest(seq=0, **extra):
    return {"kind": "manifest", "seq": seq, "scheme": "jwins", "seed": 7, **extra}


def _message(seq, sender, receiver, nbytes=100.0, now=0.1):
    return {
        "kind": "message", "seq": seq, "sender": sender, "receiver": receiver,
        "bytes": nbytes, "now": now,
    }


def _round(seq, round_index, node=0, now=0.2):
    return {"kind": "round", "seq": seq, "round": round_index, "node": node, "now": now}


def _evaluate(seq, round_index, accuracy=0.5, loss=1.0):
    return {
        "kind": "evaluate", "seq": seq, "round": round_index,
        "accuracy": accuracy, "loss": loss, "bytes_per_node": 100.0,
    }


def _trace(rounds=2, nodes=2):
    """A tiny synthetic trace: per round, node deliveries then round ends."""

    records = [_manifest()]
    seq = 1
    for round_index in range(1, rounds + 1):
        for sender in range(nodes):
            records.append(_message(seq, sender, (sender + 1) % nodes))
            seq += 1
        for node in range(nodes):
            records.append(_round(seq, round_index, node))
            seq += 1
        records.append(_evaluate(seq, round_index))
        seq += 1
    records.append({"kind": "run_end", "seq": seq, "rounds_completed": rounds})
    return records


def test_identical_traces_report_identical():
    diff = diff_traces(_trace(), _trace())
    assert diff.identical
    assert diff.seq is None and diff.drifts == []
    assert "IDENTICAL" in diff.render()


def test_wall_sections_are_ignored():
    a, b = _trace(), _trace()
    a[0]["wall"] = {"unix_time": 1.0}
    b[0]["wall"] = {"unix_time": 999.0}
    assert diff_traces(a, b).identical


def test_field_drift_is_localized_with_numeric_deltas():
    a, b = _trace(), _trace()
    target = next(r for r in b if r["kind"] == "evaluate" and r["round"] == 2)
    target["loss"] += 1e-3
    diff = diff_traces(a, b, a_label="ref", b_label="bad")
    assert not diff.identical
    assert diff.kind == "evaluate" and diff.reason == "field-drift"
    assert diff.seq == target["seq"] and diff.round == 2
    (drift,) = diff.drifts
    assert drift.field == "loss"
    assert drift.abs_delta == pytest.approx(1e-3)
    assert drift.rel_delta == pytest.approx(1e-3 / (1.0 + 1e-3))
    # All deliveries before the evaluate matched, so the verdict is local.
    assert "node-local computation" in diff.origin
    rendered = diff.render()
    assert "ref" in rendered and "bad" in rendered
    assert "field 'loss'" in rendered


def test_divergent_message_names_the_sender_in_the_backtrace():
    a, b = _trace(), _trace()
    target = next(r for r in b if r["kind"] == "message" and r["seq"] > 5)
    target["bytes"] += 8.0
    diff = diff_traces(a, b)
    assert diff.kind == "message" and diff.reason == "field-drift"
    assert f"sender {target['sender']}" in diff.origin
    deliveries = [
        delivery
        for entry in diff.backtrace
        for delivery in entry["deliveries"]
    ]
    divergent = [d for d in deliveries if not d["agree"]]
    assert [d["seq"] for d in divergent] == [target["seq"]]
    assert divergent[0]["sender"] == target["sender"]
    assert "DIVERGED" in diff.render()


def test_truncated_trace_is_classified():
    a = _trace()
    b = _trace()[:-3]
    diff = diff_traces(a, b)
    assert not diff.identical
    assert diff.reason == "truncated"
    assert diff.a_record is not None and diff.b_record is None
    assert diff.seq == b[-1]["seq"] + 1
    assert "ends before" in diff.origin


def test_reordered_records_are_a_kind_mismatch():
    a, b = _trace(), _trace()
    # Swap a message and a round record in b: same seqs, different kinds.
    first_round = next(i for i, r in enumerate(b) if r["kind"] == "round")
    b[first_round - 1], b[first_round] = (
        {**b[first_round], "seq": b[first_round - 1]["seq"]},
        {**b[first_round - 1], "seq": b[first_round]["seq"]},
    )
    diff = diff_traces(a, b)
    assert diff.reason == "kind-mismatch"
    assert "/" in diff.kind
    assert "schedules" in diff.origin


def test_small_arrays_get_per_element_drift():
    a, b = _trace(), _trace()
    a[0]["hist"] = [1.0, 2.0, 3.0]
    b[0]["hist"] = [1.0, 2.5, 3.0]
    diff = diff_traces(a, b)
    (drift,) = diff.drifts
    assert drift.field == "hist[1]"
    assert drift.abs_delta == pytest.approx(0.5)


def test_large_arrays_get_a_summary_drift():
    n = SMALL_ARRAY_LIMIT + 4
    a, b = _trace(), _trace()
    a[0]["hist"] = [0.0] * n
    changed = [0.0] * n
    changed[3] = 0.25
    changed[7] = 0.5
    b[0]["hist"] = changed
    diff = diff_traces(a, b)
    (drift,) = diff.drifts
    assert drift.field == "hist"
    assert "first at index 3" in drift.note
    assert "2/" in drift.note and "max abs delta 0.5" in drift.note


def test_missing_field_is_reported_as_a_note():
    a, b = _trace(), _trace()
    del b[0]["seed"]
    diff = diff_traces(a, b)
    assert any(
        drift.field == "seed" and drift.note == "field present in only one trace"
        for drift in diff.drifts
    )


def test_to_dict_round_trips_through_json():
    a, b = _trace(), _trace()
    b[-1]["rounds_completed"] += 1
    diff = diff_traces(a, b)
    document = json.loads(json.dumps(diff.to_dict(), sort_keys=True))
    assert document["identical"] is False
    assert document["seq"] == diff.seq
    assert document["drifts"][0]["field"] == "rounds_completed"


def test_real_double_run_diffs_identical(tmp_path):
    config = ExperimentConfig(
        num_nodes=4, degree=2, rounds=2, local_steps=1, batch_size=4,
        eval_every=1, eval_test_samples=16, seed=5,
    )
    paths = []
    for index in range(2):
        task = make_toy_task(seed=5)
        path = tmp_path / f"run{index}.trace.jsonl"
        run_experiment(task, full_sharing_factory(), config, trace=TraceEmitter(path))
        paths.append(path)
    diff = diff_traces(paths[0], paths[1])
    assert diff.identical
    assert diff.a_records == diff.b_records > 0


def test_field_drift_describe_is_stable():
    drift = FieldDrift(field="loss", a_value=1.0, b_value=2.0, abs_delta=1.0, rel_delta=0.5)
    assert "field 'loss'" in drift.describe()
    assert drift.to_dict() == {
        "field": "loss", "a": 1.0, "b": 2.0, "abs_delta": 1.0, "rel_delta": 0.5,
    }
