"""Telemetry stays outside the determinism contract — pinned end to end.

Four guarantees:

* a fully instrumented run (profiler + metrics + trace) produces results
  bit-identical to a bare run;
* stored rows are byte-identical with telemetry on or off (the store scrubs);
* a stripped trace is byte-stable across reruns (the fifth determinism
  oracle);
* sweep telemetry (merged metrics, per-cell traces) is identical for any
  worker count.
"""

from __future__ import annotations

import pytest

from repro.baselines.full_sharing import full_sharing_factory
from repro.observability.metrics import MetricsRegistry
from repro.observability.trace import TraceEmitter, read_trace, strip_wall
from repro.orchestration.pool import run_sweep
from repro.orchestration.schemes import SchemeSpec
from repro.orchestration.spec import ExperimentSpec
from repro.orchestration.store import ResultStore
from repro.orchestration.sweep import Sweep
from repro.simulation.experiment import ExperimentConfig
from repro.simulation.runner import run_experiment
from repro.utils.profiling import Profiler
from tests.conftest import make_toy_task

TINY = {"num_nodes": 4, "degree": 2, "rounds": 2, "eval_every": 1, "eval_test_samples": 32}


class FixedClock:
    def __init__(self, start: float = 1000.0) -> None:
        self.now = start

    def __call__(self) -> float:
        self.now += 1.0
        return self.now


def _tiny_config(**overrides) -> ExperimentConfig:
    base = dict(
        num_nodes=4, degree=2, rounds=3, local_steps=1, batch_size=4,
        eval_every=2, eval_test_samples=16, seed=5,
    )
    base.update(overrides)
    return ExperimentConfig(**base)


def _sweep() -> Sweep:
    return Sweep(
        name="telemetry",
        workloads=("movielens",),
        schemes=(SchemeSpec("jwins"), SchemeSpec("full-sharing")),
        base_overrides=TINY,
    )


@pytest.mark.parametrize("execution", ["sync", "async"])
def test_instrumented_run_is_bit_identical_to_plain(tmp_path, execution):
    task = make_toy_task(seed=5)
    plain = run_experiment(task, full_sharing_factory(), _tiny_config(execution=execution))
    instrumented = run_experiment(
        task,
        full_sharing_factory(),
        _tiny_config(execution=execution),
        profiler=Profiler(),
        metrics=MetricsRegistry(),
        trace=TraceEmitter(tmp_path / "run.trace.jsonl"),
    )
    assert plain.history == instrumented.history
    assert plain.total_bytes == instrumented.total_bytes
    assert plain.simulated_time_seconds == instrumented.simulated_time_seconds


def test_engine_populates_the_metrics_catalog():
    task = make_toy_task(seed=5)
    registry = MetricsRegistry()
    result = run_experiment(
        task, full_sharing_factory(), _tiny_config(), metrics=registry
    )
    # 4 nodes x degree 2 x 3 rounds, nothing dropped or suppressed.
    assert registry.value("engine_messages_delivered{scheme=full-sharing}") == 24
    assert registry.value("net_messages_sent{scheme=full-sharing}") == 24
    assert registry.value("engine_rounds_completed") == 3
    assert registry.value("engine_messages_dropped") == 0
    assert registry.value("engine_messages_suppressed") == 0
    assert registry.value("engine_evaluations") == len(result.history)
    # The byte counters agree with the result's own accounting.
    assert registry.value("net_bytes_sent{scheme=full-sharing}") == result.total_bytes
    assert (
        registry.value("net_bytes_received{scheme=full-sharing}") == result.total_bytes
    )
    latency = registry.histogram("engine_round_latency_seconds")
    assert latency.count == 3  # sync mode: one observation per global round


def test_trace_records_cover_the_run(tmp_path):
    task = make_toy_task(seed=5)
    path = tmp_path / "run.trace.jsonl"
    run_experiment(
        task,
        full_sharing_factory(),
        _tiny_config(),
        profiler=Profiler(),
        trace=TraceEmitter(path, wall_clock=FixedClock()),
    )
    records = read_trace(path)
    kinds = [record["kind"] for record in records]
    assert kinds[0] == "manifest"
    assert kinds[-1] == "run_end"
    assert kinds.count("round") == 3
    assert kinds.count("message") == 24
    assert "evaluate" in kinds
    manifest = records[0]
    assert manifest["scheme"] == "full-sharing"
    assert manifest["num_nodes"] == 4 and manifest["seed"] == 5
    assert "python" in manifest["versions"] and "numpy" in manifest["versions"]
    run_end = records[-1]
    assert run_end["rounds_completed"] == 3
    # Profiler seconds and RSS ride in the wall section, never as plain fields.
    assert "phase_seconds" in run_end["wall"]
    assert run_end["wall"]["peak_rss_bytes"] > 0
    assert "phase_seconds" not in {k for r in records for k in r if k != "wall"}


def test_stripped_trace_is_byte_stable_across_reruns(tmp_path):
    documents = []
    raw = []
    for index, start in enumerate((10.0, 777777.0)):
        task = make_toy_task(seed=5)
        path = tmp_path / f"run{index}.trace.jsonl"
        run_experiment(
            task,
            full_sharing_factory(),
            _tiny_config(),
            profiler=Profiler(),
            trace=TraceEmitter(path, wall_clock=FixedClock(start=start)),
        )
        documents.append(strip_wall(path))
        raw.append(path.read_bytes())
    assert raw[0] != raw[1]  # the wall clocks genuinely differed
    assert documents[0] == documents[1]


def test_store_rows_byte_identical_with_and_without_telemetry(tmp_path):
    bare_store = tmp_path / "bare.jsonl"
    instrumented_store = tmp_path / "telemetry.jsonl"
    run_sweep(_sweep(), ResultStore(bare_store))
    run_sweep(
        _sweep(),
        ResultStore(instrumented_store),
        profile=True,
        metrics=MetricsRegistry(),
        trace_dir=tmp_path / "traces",
    )
    assert bare_store.read_bytes() == instrumented_store.read_bytes()
    # The telemetry itself still reached the caller's side channels.
    assert list((tmp_path / "traces").glob("*.trace.jsonl"))


def test_sweep_telemetry_is_identical_across_worker_counts(tmp_path):
    registries = {}
    trace_dirs = {}
    for workers in (1, 2):
        registry = MetricsRegistry()
        trace_dir = tmp_path / f"traces-{workers}"
        run_sweep(
            _sweep(),
            ResultStore(tmp_path / f"store-{workers}.jsonl"),
            workers=workers,
            metrics=registry,
            trace_dir=trace_dir,
        )
        registries[workers] = registry
        trace_dirs[workers] = trace_dir
    assert registries[1].to_dict() == registries[2].to_dict()
    files = {
        workers: sorted(path.name for path in trace_dirs[workers].iterdir())
        for workers in (1, 2)
    }
    assert files[1] == files[2] and len(files[1]) == 2
    for name in files[1]:
        assert strip_wall(trace_dirs[1] / name) == strip_wall(trace_dirs[2] / name)


def test_checkpointing_run_counts_saves_in_the_registry(tmp_path):
    registry = MetricsRegistry()
    spec = ExperimentSpec("movielens", SchemeSpec("jwins"), overrides={**TINY, "seed": 1})
    spec.run(
        checkpoint_dir=tmp_path / "ckpts",
        checkpoint_every=1,
        metrics=registry,
    )
    assert registry.value("checkpoint_saves") >= 2  # one per round at cadence 1
    assert registry.value("checkpoint_bytes_written") > 0
    assert registry.value("engine_snapshots_captured") >= 2
