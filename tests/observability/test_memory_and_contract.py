"""Unit tests for memory tracking and the telemetry-scrub contract."""

from __future__ import annotations

import pytest

from repro.observability.contract import TELEMETRY_RESULT_FIELDS, scrub_telemetry
from repro.observability.memory import MemoryTracker, peak_rss_bytes


class TestPeakRss:
    def test_reports_a_plausible_positive_value(self):
        peak = peak_rss_bytes()
        # A running CPython interpreter needs at least a few MiB; anything
        # smaller means the kilobyte/byte unit conversion broke.
        assert peak > 4 * 2**20

    def test_is_monotone_nondecreasing(self):
        first = peak_rss_bytes()
        ballast = [bytes(1024) for _ in range(1000)]
        assert peak_rss_bytes() >= first
        del ballast


class TestMemoryTracker:
    def test_disabled_tracker_is_a_noop(self):
        tracker = MemoryTracker()
        tracker.start()
        assert tracker.stop() == {}

    def test_stop_without_start_returns_empty(self):
        assert MemoryTracker(top_n=3).stop() == {}

    def test_negative_top_n_rejected(self):
        with pytest.raises(ValueError):
            MemoryTracker(top_n=-1)

    def test_tracks_peak_and_attributes_sites(self):
        tracker = MemoryTracker(top_n=3)
        tracker.start()
        ballast = [bytearray(64 * 1024) for _ in range(16)]
        stats = tracker.stop()
        del ballast
        assert stats["tracemalloc_peak_bytes"] >= 16 * 64 * 1024
        assert 1 <= len(stats["tracemalloc_top"]) <= 3
        site = stats["tracemalloc_top"][0]
        assert ":" in site["site"] and site["bytes"] > 0 and site["count"] > 0

    def test_tracker_is_single_shot(self):
        tracker = MemoryTracker(top_n=1)
        tracker.start()
        assert tracker.stop() != {}
        assert tracker.stop() == {}


class TestScrubTelemetry:
    def test_resets_present_fields_to_empty_defaults(self):
        row = {
            "scheme": "jwins",
            "phase_seconds": {"train": 1.25},
            "round_phase_seconds": [{"round": 0.0, "train": 1.25}],
            "memory": {"peak_rss_bytes": 12345},
        }
        scrubbed = scrub_telemetry(row)
        assert scrubbed["scheme"] == "jwins"
        assert scrubbed["phase_seconds"] == {}
        assert scrubbed["round_phase_seconds"] == []
        assert scrubbed["memory"] == {}

    def test_absent_fields_stay_absent(self):
        # Legacy rows never carried the telemetry keys; scrubbing must not
        # invent them, or old stores would change bytes on rewrite.
        legacy = {"scheme": "jwins", "rounds_completed": 3}
        assert scrub_telemetry(legacy) == legacy

    def test_input_mapping_is_not_mutated(self):
        row = {"phase_seconds": {"train": 1.0}}
        scrub_telemetry(row)
        assert row["phase_seconds"] == {"train": 1.0}

    def test_field_list_matches_result_defaults(self):
        # Every telemetry field must exist on ExperimentResult with exactly
        # the empty default the scrub resets it to.
        from repro.simulation.metrics import ExperimentResult

        result = ExperimentResult(
            scheme="jwins", task="toy", num_nodes=2, rounds_completed=0
        )
        payload = result.to_dict()
        for name, default in TELEMETRY_RESULT_FIELDS.items():
            assert payload[name] == default()
