"""The status heartbeat: atomic, live, and invisible to the determinism contract.

Four layers:

* the :class:`CellStatusWriter` unit behaviour (throttling, forced lifecycle
  writes, rounds/sec + ETA arithmetic) under an injected clock;
* the :class:`StatusBoard` bookkeeping (register/skip/done/pause, live-cell
  overlay, terminal finalize);
* a real 2-worker ``run_sweep`` polled mid-flight: every observed
  ``status.json`` must parse (atomic replace, never a torn read) and the
  final document must be terminal with every cell done;
* the contract pin: stored rows are byte-identical with status + metrics +
  trace + profile all enabled vs all disabled.
"""

from __future__ import annotations

import io
import json
import threading

from repro.observability.metrics import MetricsRegistry
from repro.observability.status import (
    CellStatusWriter,
    StatusBoard,
    load_status,
    render_status,
    watch_status,
)
from repro.orchestration.pool import run_sweep
from repro.orchestration.schemes import SchemeSpec
from repro.orchestration.store import ResultStore
from repro.orchestration.sweep import Sweep

TINY = {"num_nodes": 4, "degree": 2, "rounds": 2, "eval_every": 1, "eval_test_samples": 32}


class ManualClock:
    def __init__(self, start: float = 1000.0) -> None:
        self.now = start

    def __call__(self) -> float:
        return self.now


def _sweep() -> Sweep:
    return Sweep(
        name="statusy",
        workloads=("movielens",),
        schemes=(SchemeSpec("jwins"), SchemeSpec("full-sharing")),
        base_overrides=TINY,
    )


def _cell_doc(writer: CellStatusWriter) -> dict:
    return json.loads(writer.path.read_text(encoding="utf-8"))


# -- CellStatusWriter ---------------------------------------------------------------
def test_writer_throttles_round_writes_but_forces_lifecycle(tmp_path):
    clock = ManualClock()
    writer = CellStatusWriter(
        tmp_path, "a" * 64, total_rounds=10, wall_clock=clock, min_interval=0.5
    )
    writer.start()
    assert _cell_doc(writer)["state"] == "running"
    assert _cell_doc(writer)["rounds_completed"] == 0

    writer.on_round(1)  # same instant: throttled, file unchanged
    assert _cell_doc(writer)["rounds_completed"] == 0

    clock.now += 1.0
    writer.on_round(2)  # past the throttle: lands
    document = _cell_doc(writer)
    assert document["rounds_completed"] == 2
    assert document["rounds_per_sec"] == 2.0  # 2 rounds / 1 elapsed second
    assert document["eta_seconds"] == 4.0  # 8 remaining / 2 per sec

    writer.on_checkpoint(3)  # same instant, but checkpoints always write
    document = _cell_doc(writer)
    assert document["last_checkpoint_round"] == 3
    assert document["rounds_completed"] == 3

    writer.finish()
    assert _cell_doc(writer)["state"] == "done"


def test_writer_embeds_a_metrics_snapshot(tmp_path):
    registry = MetricsRegistry()
    registry.counter("c").inc(5)
    writer = CellStatusWriter(tmp_path, "b" * 64, registry=registry)
    writer.start()
    assert "c" in _cell_doc(writer)["metrics"]


# -- StatusBoard --------------------------------------------------------------------
def test_board_lifecycle_counts_and_terminal_states(tmp_path):
    clock = ManualClock()
    board = StatusBoard(tmp_path, sweep_name="s", workers=2, wall_clock=clock)
    board.register_cells([("k1", "cell-one", 4), ("k2", "cell-two", 4)])
    document = load_status(tmp_path)
    assert document["state"] == "running"
    assert document["counts"]["pending"] == 2

    board.mark_skipped("k1")
    heartbeat = board.heartbeat_for("k2")
    clock.now += 1.0
    heartbeat.on_round(3)
    board.refresh()
    document = load_status(tmp_path)
    assert document["counts"]["skipped"] == 1
    assert document["cells"]["k2"]["state"] == "running"
    assert document["cells"]["k2"]["rounds_completed"] == 3
    assert document["cells"]["k2"]["label"] == "cell-two"  # board label wins

    board.mark_done("k2", 4)
    assert not heartbeat.path.exists()  # live file consumed on the verdict
    board.finalize("done")
    document = load_status(tmp_path)
    assert document["state"] == "done"
    assert {cell["state"] for cell in document["cells"].values()} == {"skipped", "done"}


def test_finalize_interrupted_flips_running_cells_to_paused(tmp_path):
    board = StatusBoard(tmp_path)
    board.register_cells([("k1", "one", 4)])
    board.heartbeat_for("k1")
    board.refresh()
    assert load_status(tmp_path)["cells"]["k1"]["state"] == "running"
    board.finalize("interrupted")
    document = load_status(tmp_path)
    assert document["state"] == "interrupted"
    assert document["cells"]["k1"]["state"] == "paused"


def test_board_merges_live_cell_metrics(tmp_path):
    board = StatusBoard(tmp_path)
    board.register_cells([("k1", "one", 2)])
    done = MetricsRegistry()
    done.counter("c").inc(2)
    board.merge_metrics(done)
    live = MetricsRegistry()
    live.counter("c").inc(3)
    board.heartbeat_for("k1", registry=live)
    board.refresh()
    document = load_status(tmp_path)
    assert document["metrics"]["c"]["value"] == 5  # finished + live, merged


# -- mid-flight atomicity over a real pool sweep ------------------------------------
def test_status_json_is_always_parsable_during_a_pool_sweep(tmp_path):
    status_dir = tmp_path / "status"
    stop = threading.Event()
    observed: list[dict] = []
    torn: list[Exception] = []

    def poll() -> None:
        while not stop.is_set():
            try:
                observed.append(load_status(status_dir))
            except FileNotFoundError:
                pass  # before the first write
            except json.JSONDecodeError as error:  # pragma: no cover - the bug
                torn.append(error)

    poller = threading.Thread(target=poll, daemon=True)
    poller.start()
    try:
        run_sweep(
            _sweep(),
            ResultStore(tmp_path / "store.jsonl"),
            workers=2,
            status_dir=status_dir,
        )
    finally:
        stop.set()
        poller.join(timeout=10.0)
    assert not torn, f"torn status.json reads: {torn}"
    assert observed, "the poller never saw a status document"
    final = load_status(status_dir)
    assert final["state"] == "done"
    assert len(final["cells"]) == 2
    assert all(cell["state"] == "done" for cell in final["cells"].values())
    assert final["counts"]["done"] == 2


def test_sweep_skip_path_reports_skipped_cells(tmp_path):
    store = ResultStore(tmp_path / "store.jsonl")
    run_sweep(_sweep(), store)
    run_sweep(_sweep(), store, status_dir=tmp_path / "status")
    document = load_status(tmp_path / "status")
    assert document["state"] == "done"
    assert all(cell["state"] == "skipped" for cell in document["cells"].values())


# -- the contract pin ---------------------------------------------------------------
def test_store_rows_byte_identical_with_full_telemetry_and_status(tmp_path):
    bare_store = tmp_path / "bare.jsonl"
    instrumented_store = tmp_path / "full.jsonl"
    run_sweep(_sweep(), ResultStore(bare_store))
    run_sweep(
        _sweep(),
        ResultStore(instrumented_store),
        profile=True,
        metrics=MetricsRegistry(),
        trace_dir=tmp_path / "traces",
        status_dir=tmp_path / "status",
    )
    assert bare_store.read_bytes() == instrumented_store.read_bytes()
    assert (tmp_path / "status" / "status.json").exists()


# -- read side ----------------------------------------------------------------------
def test_render_and_watch_once(tmp_path):
    board = StatusBoard(tmp_path, sweep_name="render-me", workers=1)
    board.register_cells([("k1", "my-cell", 3)])
    board.mark_done("k1", 3)
    board.finalize("done")
    frame = render_status(load_status(tmp_path))
    assert "sweep=render-me" in frame and "state=done" in frame
    assert "my-cell" in frame and "3/3" in frame

    stream = io.StringIO()
    assert watch_status(tmp_path, once=True, stream=stream) == 0
    assert "state=done" in stream.getvalue()

    missing = io.StringIO()
    assert watch_status(tmp_path / "absent", once=True, stream=missing) == 1
    assert "no status document" in missing.getvalue()
