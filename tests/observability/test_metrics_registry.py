"""Unit tests for the metrics registry: instruments, merge, null stubs."""

from __future__ import annotations

import json

import pytest

from repro.observability.metrics import (
    NULL_METRICS,
    Counter,
    Gauge,
    Histogram,
    MetricsRegistry,
    NullMetricsRegistry,
)


class TestInstruments:
    def test_counter_accumulates(self):
        counter = Counter()
        counter.inc()
        counter.inc(2.5)
        assert counter.value == 3.5

    def test_gauge_overwrites(self):
        gauge = Gauge()
        gauge.set(7.0)
        gauge.set(3.0)
        assert gauge.value == 3.0

    def test_histogram_tracks_count_mean_extrema(self):
        histogram = Histogram()
        for value in (2.0, 8.0, 5.0):
            histogram.observe(value)
        assert histogram.count == 3
        assert histogram.mean == 5.0
        assert histogram.minimum == 2.0
        assert histogram.maximum == 8.0

    def test_empty_histogram_serializes_without_inf(self):
        payload = Histogram().to_dict()
        assert payload["min"] is None and payload["max"] is None
        # The document must survive a JSON round trip (inf would not).
        restored = Histogram.from_dict(json.loads(json.dumps(payload)))
        assert restored.count == 0
        restored.observe(4.0)
        assert restored.minimum == 4.0 and restored.maximum == 4.0

    def test_histogram_mean_is_zero_before_first_sample(self):
        assert Histogram().mean == 0.0


class TestRegistry:
    def test_get_or_create_returns_same_instrument(self):
        registry = MetricsRegistry()
        assert registry.counter("events") is registry.counter("events")
        registry.counter("events").inc(3)
        assert registry.value("events") == 3

    def test_labels_are_part_of_the_key_and_sorted(self):
        registry = MetricsRegistry()
        registry.counter("bytes", scheme="jwins").inc(10)
        registry.counter("bytes", scheme="choco").inc(20)
        assert "bytes{scheme=jwins}" in registry
        assert registry.value("bytes{scheme=choco}") == 20
        # Label order in the call never changes the key.
        a = registry.counter("m", b=1, a=2)
        b = registry.counter("m", a=2, b=1)
        assert a is b

    def test_kind_mismatch_is_rejected(self):
        registry = MetricsRegistry()
        registry.counter("rounds")
        with pytest.raises(ValueError, match="already registered"):
            registry.gauge("rounds")

    def test_value_of_a_histogram_is_rejected(self):
        registry = MetricsRegistry()
        registry.histogram("latency").observe(1.0)
        with pytest.raises(ValueError, match="histogram"):
            registry.value("latency")

    def test_items_are_sorted_by_key(self):
        registry = MetricsRegistry()
        registry.counter("zeta")
        registry.counter("alpha")
        assert [key for key, _ in registry.items()] == ["alpha", "zeta"]

    def test_serialization_roundtrip(self):
        registry = MetricsRegistry()
        registry.counter("sent", scheme="jwins").inc(42)
        registry.gauge("rounds").set(7)
        registry.histogram("latency").observe(0.5)
        payload = json.loads(json.dumps(registry.to_dict()))
        restored = MetricsRegistry.from_dict(payload)
        assert restored.to_dict() == registry.to_dict()

    def test_render_lists_every_instrument(self):
        registry = MetricsRegistry()
        registry.counter("sent").inc(3)
        registry.histogram("latency").observe(2.0)
        text = registry.render()
        assert "sent" in text and "latency" in text and "count=1" in text
        assert MetricsRegistry().render() == "no metrics recorded"


class TestMerge:
    def _registry(self, sent: float, rounds: float, samples: list[float]) -> MetricsRegistry:
        registry = MetricsRegistry()
        registry.counter("sent").inc(sent)
        registry.gauge("rounds").set(rounds)
        for value in samples:
            registry.histogram("latency").observe(value)
        return registry

    def test_counters_add_gauges_max_histograms_pool(self):
        merged = self._registry(10, 3, [1.0]).merge(self._registry(5, 8, [4.0, 2.0]))
        assert merged.value("sent") == 15
        assert merged.value("rounds") == 8
        histogram = merged.histogram("latency")
        assert histogram.count == 3
        assert histogram.minimum == 1.0 and histogram.maximum == 4.0

    def test_merge_is_order_independent(self):
        parts = [
            self._registry(10, 3, [1.0]),
            self._registry(5, 8, [4.0]),
            self._registry(2, 1, [0.5, 9.0]),
        ]
        forward = MetricsRegistry()
        for part in parts:
            forward.merge(part)
        backward = MetricsRegistry()
        for part in reversed(parts):
            backward.merge(part)
        assert forward.to_dict() == backward.to_dict()

    def test_merge_accepts_to_dict_payloads(self):
        # Pool workers ship their registry across the process boundary as the
        # serialized payload; merging it must equal merging the live registry.
        worker = self._registry(10, 3, [1.0])
        via_object = MetricsRegistry().merge(worker)
        via_payload = MetricsRegistry().merge(worker.to_dict())
        assert via_object.to_dict() == via_payload.to_dict()

    def test_merge_kind_conflict_is_rejected(self):
        a = MetricsRegistry()
        a.counter("x")
        b = MetricsRegistry()
        b.gauge("x")
        with pytest.raises(ValueError, match="cannot merge"):
            a.merge(b)


class TestNullRegistry:
    def test_disabled_registry_accumulates_nothing(self):
        registry = NullMetricsRegistry()
        registry.counter("sent", scheme="jwins").inc(100)
        registry.gauge("rounds").set(5)
        registry.histogram("latency").observe(1.0)
        assert registry.to_dict() == {}
        assert len(registry) == 0
        assert not registry.enabled

    def test_instruments_are_one_shared_stub(self):
        # Hot loops cache the instrument once; the null path must hand out a
        # single allocation-free object for every name and kind.
        assert NULL_METRICS.counter("a") is NULL_METRICS.histogram("b")
        assert NULL_METRICS.counter("a").value == 0.0
        assert NULL_METRICS.histogram("b").mean == 0.0
