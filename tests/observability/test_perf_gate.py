"""The perf regression gate: scripts/check_perf.py exit codes and output."""

from __future__ import annotations

import json
import subprocess
import sys
from pathlib import Path

REPO_ROOT = Path(__file__).resolve().parent.parent.parent
CHECK_PERF = REPO_ROOT / "scripts" / "check_perf.py"


def _document(train: float, total: float, rss: int = 100 * 2**20) -> dict:
    return {
        "version": 1,
        "area": "engine",
        "phases": {
            "sync_smoke": {
                "total_seconds": total,
                "phase_seconds": {"train": train, "aggregate": 0.002},
                "peak_rss_bytes": rss,
            }
        },
    }


def _run(tmp_path: Path, baseline: dict | None, current: dict, *extra: str):
    current_path = tmp_path / "current.json"
    current_path.write_text(json.dumps(current), encoding="utf-8")
    baseline_path = tmp_path / "baseline.json"
    if baseline is not None:
        baseline_path.write_text(json.dumps(baseline), encoding="utf-8")
    return subprocess.run(
        [
            sys.executable, str(CHECK_PERF),
            "--current", str(current_path),
            "--baseline", str(baseline_path),
            *extra,
        ],
        capture_output=True,
        text=True,
    )


def test_unchanged_timings_pass(tmp_path):
    document = _document(train=0.5, total=1.0)
    completed = _run(tmp_path, document, document)
    assert completed.returncode == 0, completed.stdout
    assert "perf gate OK" in completed.stdout


def test_regression_beyond_threshold_fails_with_readable_diff(tmp_path):
    completed = _run(
        tmp_path, _document(train=0.5, total=1.0), _document(train=0.8, total=1.3)
    )
    assert completed.returncode == 1
    assert "REGRESSION" in completed.stdout
    assert "sync_smoke/train" in completed.stdout
    assert "--update" in completed.stdout  # tells the dev how to accept it


def test_tiny_timings_are_exempt_from_the_threshold(tmp_path):
    # 2ms -> 3ms is +50% but under the floor: jitter, not a regression.
    completed = _run(
        tmp_path, _document(train=0.002, total=0.004), _document(train=0.003, total=0.004)
    )
    assert completed.returncode == 0, completed.stdout
    assert "exempt" in completed.stdout


def test_improvements_never_fail(tmp_path):
    completed = _run(
        tmp_path, _document(train=0.5, total=1.0), _document(train=0.2, total=0.5)
    )
    assert completed.returncode == 0
    assert "improved" in completed.stdout


def test_phases_missing_from_the_baseline_are_skipped(tmp_path):
    current = _document(train=99.0, total=99.0)
    current["phases"]["brand_new"] = current["phases"].pop("sync_smoke")
    completed = _run(tmp_path, _document(train=0.5, total=1.0), current)
    assert completed.returncode == 0
    assert "without a baseline" in completed.stdout


def test_update_writes_the_snapshot(tmp_path):
    current = _document(train=0.5, total=1.0)
    completed = _run(tmp_path, None, current, "--update")
    assert completed.returncode == 0
    written = json.loads((tmp_path / "baseline.json").read_text(encoding="utf-8"))
    assert written == current


def test_missing_baseline_is_a_clear_error(tmp_path):
    completed = _run(tmp_path, None, _document(train=0.5, total=1.0))
    assert completed.returncode != 0
    assert "--update" in completed.stderr + completed.stdout


def test_committed_snapshot_exists_and_covers_smoke_phases():
    # The CI perf stage benchmarks under ENGINE_BENCH_SMOKE=1; the committed
    # snapshot must hold the smoke phase keys or the stage compares nothing.
    snapshot = json.loads(
        (REPO_ROOT / "benchmarks" / "BENCH_engine.snapshot.json").read_text(
            encoding="utf-8"
        )
    )
    assert {"sync_smoke", "async_smoke"} <= set(snapshot["phases"])
