"""Unit tests for the JSONL trace emitter and its wall split."""

from __future__ import annotations

import json

from repro.observability.trace import (
    WALL_KEY,
    TraceEmitter,
    read_trace,
    strip_wall,
    summarize_trace,
)


class FixedClock:
    """Injectable wall clock advancing by a fixed step per reading."""

    def __init__(self, start: float = 1000.0, step: float = 1.0) -> None:
        self.now = start
        self.step = step

    def __call__(self) -> float:
        self.now += self.step
        return self.now


def test_emitter_writes_sequenced_records_with_wall_section(tmp_path):
    path = tmp_path / "run.trace.jsonl"
    with TraceEmitter(path, wall_clock=FixedClock()) as trace:
        trace.begin_run({"scheme": "jwins", "seed": 1})
        trace.emit("round", {"round": 0, "now": 1.5})
        trace.emit("round", {"round": 1, "now": 3.0}, wall={"extra": "x"})
    records = read_trace(path)
    assert [r["kind"] for r in records] == ["manifest", "round", "round"]
    assert [r["seq"] for r in records] == [0, 1, 2]
    assert records[0]["scheme"] == "jwins"
    assert all(WALL_KEY in r and "unix_time" in r[WALL_KEY] for r in records)
    assert records[2][WALL_KEY]["extra"] == "x"


def test_emitter_creates_parent_directories(tmp_path):
    path = tmp_path / "deep" / "nested" / "run.trace.jsonl"
    with TraceEmitter(path) as trace:
        trace.emit("round", {"round": 0})
    assert path.exists()


def test_lines_are_valid_sorted_key_json(tmp_path):
    path = tmp_path / "run.trace.jsonl"
    with TraceEmitter(path) as trace:
        trace.emit("message", {"sender": 1, "receiver": 0, "bytes": 10})
    (line,) = path.read_text(encoding="utf-8").splitlines()
    record = json.loads(line)
    assert json.dumps(record, sort_keys=True) == line


def test_strip_wall_is_identical_across_different_clocks(tmp_path):
    paths = []
    for index, start in enumerate((100.0, 99999.0)):
        path = tmp_path / f"run{index}.trace.jsonl"
        with TraceEmitter(path, wall_clock=FixedClock(start=start)) as trace:
            trace.begin_run({"scheme": "jwins", "seed": 1})
            trace.emit("round", {"round": 0, "now": 1.5})
        paths.append(path)
    # Raw files differ (the timestamps moved) ...
    assert paths[0].read_bytes() != paths[1].read_bytes()
    # ... the stripped documents do not: the fifth determinism oracle.
    assert strip_wall(paths[0]) == strip_wall(paths[1])
    assert WALL_KEY not in strip_wall(paths[0])


def test_strip_wall_of_empty_trace_is_empty_string(tmp_path):
    path = tmp_path / "empty.trace.jsonl"
    path.write_text("", encoding="utf-8")
    assert strip_wall(path) == ""


def test_summarize_groups_runs_at_manifest_boundaries(tmp_path):
    path = tmp_path / "two-runs.trace.jsonl"
    with TraceEmitter(path, wall_clock=FixedClock()) as trace:
        for scheme in ("jwins", "full-sharing"):
            trace.begin_run({"scheme": scheme, "seed": 1, "spec_hash": "a" * 64})
            trace.emit("round", {"round": 0, "node": 0, "now": 1.0})
            trace.emit("message", {"sender": 1, "receiver": 0, "bytes": 7, "now": 1.0})
            trace.emit(
                "run_end",
                {"rounds_completed": 1, "total_bytes": 7.0},
                wall={"peak_rss_bytes": 2 * 2**20},
            )
    text = summarize_trace(path)
    assert "2 run(s)" in text
    assert "scheme=jwins" in text and "scheme=full-sharing" in text
    assert "spec=aaaaaaaaaaaa..." in text
    assert "messages_received" in text
    assert "peak_rss: 2.0 MiB" in text


def test_summarize_empty_trace(tmp_path):
    path = tmp_path / "empty.trace.jsonl"
    path.write_text("", encoding="utf-8")
    assert "is empty" in summarize_trace(path)
