"""Tests for the QSGD-style stochastic quantizer."""

import numpy as np
import pytest

from repro.compression.quantization import QsgdQuantizer
from repro.exceptions import CodecError


def test_roundtrip_preserves_norm_and_signs():
    rng = np.random.default_rng(0)
    values = rng.normal(size=500)
    quantizer = QsgdQuantizer(bits=8, rng=np.random.default_rng(1))
    quantized = quantizer.quantize(values)
    restored = quantizer.dequantize(quantized)
    assert restored.shape == values.shape
    nonzero = restored != 0
    assert np.array_equal(np.sign(restored[nonzero]), np.sign(values[nonzero]))
    assert quantized.norm == pytest.approx(float(np.linalg.norm(values)))


def test_quantization_is_unbiased_in_expectation():
    values = np.array([0.3, -0.7, 0.1, 0.9])
    quantizer = QsgdQuantizer(bits=2, rng=np.random.default_rng(2))
    average = np.zeros_like(values)
    trials = 4000
    for _ in range(trials):
        average += quantizer.dequantize(quantizer.quantize(values))
    average /= trials
    assert np.allclose(average, values, atol=0.02)


def test_more_bits_means_smaller_error():
    rng = np.random.default_rng(3)
    values = rng.normal(size=1000)
    errors = {}
    for bits in (2, 4, 8):
        quantizer = QsgdQuantizer(bits=bits, rng=np.random.default_rng(4))
        restored = quantizer.dequantize(quantizer.quantize(values))
        errors[bits] = float(np.mean((restored - values) ** 2))
    assert errors[8] < errors[4] < errors[2]


def test_size_bytes_scales_with_bits():
    values = np.ones(800)
    small = QsgdQuantizer(bits=2).quantize(values)
    large = QsgdQuantizer(bits=8).quantize(values)
    assert small.size_bytes < large.size_bytes
    # 2-bit quantization: 1 sign bit + 2 level bits per value plus the norm.
    assert small.size_bytes == 4 + (800 * 3 + 7) // 8


def test_zero_vector_roundtrip():
    quantizer = QsgdQuantizer(bits=4)
    quantized = quantizer.quantize(np.zeros(10))
    assert np.array_equal(quantizer.dequantize(quantized), np.zeros(10))


def test_bit_width_mismatch_raises():
    quantized = QsgdQuantizer(bits=4).quantize(np.ones(5))
    with pytest.raises(CodecError):
        QsgdQuantizer(bits=8).dequantize(quantized)


def test_invalid_bits_raise():
    with pytest.raises(CodecError):
        QsgdQuantizer(bits=0)
    with pytest.raises(CodecError):
        QsgdQuantizer(bits=20)
