"""Tests for the bit-level reader/writer."""

import pytest

from repro.compression.bitstream import BitReader, BitWriter
from repro.exceptions import CodecError


def test_write_read_single_bits():
    writer = BitWriter()
    bits = [1, 0, 1, 1, 0, 0, 1, 0, 1]
    for bit in bits:
        writer.write_bit(bit)
    reader = BitReader(writer.getvalue(), writer.bit_length)
    assert [reader.read_bit() for _ in bits] == bits


def test_write_read_fixed_width_integers():
    writer = BitWriter()
    values = [(5, 3), (0, 1), (1023, 10), (7, 3)]
    for value, width in values:
        writer.write_bits(value, width)
    reader = BitReader(writer.getvalue(), writer.bit_length)
    assert [reader.read_bits(width) for _, width in values] == [v for v, _ in values]


def test_unary_roundtrip():
    writer = BitWriter()
    for count in [0, 1, 5, 13]:
        writer.write_unary(count)
    reader = BitReader(writer.getvalue(), writer.bit_length)
    assert [reader.read_unary() for _ in range(4)] == [0, 1, 5, 13]


def test_bit_length_tracks_written_bits():
    writer = BitWriter()
    writer.write_bits(3, 2)
    writer.write_unary(4)
    assert writer.bit_length == 2 + 5


def test_value_too_large_for_width_raises():
    writer = BitWriter()
    with pytest.raises(CodecError):
        writer.write_bits(8, 3)


def test_invalid_bit_raises():
    writer = BitWriter()
    with pytest.raises(CodecError):
        writer.write_bit(2)


def test_reading_past_end_raises():
    writer = BitWriter()
    writer.write_bit(1)
    reader = BitReader(writer.getvalue(), writer.bit_length)
    reader.read_bit()
    with pytest.raises(CodecError):
        reader.read_bit()


def test_bit_length_larger_than_data_raises():
    with pytest.raises(CodecError):
        BitReader(b"\x00", 9)


def test_remaining_counts_down():
    writer = BitWriter()
    writer.write_bits(5, 4)
    reader = BitReader(writer.getvalue(), writer.bit_length)
    assert reader.remaining == 4
    reader.read_bits(3)
    assert reader.remaining == 1
