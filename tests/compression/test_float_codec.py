"""Tests for float payload codecs."""

import numpy as np
import pytest

from repro.compression.float_codec import Float16Codec, FloatCodec, RawFloatCodec
from repro.exceptions import CodecError


def test_lossless_roundtrip_exact_at_float32():
    rng = np.random.default_rng(0)
    values = rng.normal(scale=0.03, size=4096).astype(np.float32)
    codec = FloatCodec()
    restored = codec.decompress(codec.compress(values))
    assert np.array_equal(restored, values)


def test_compresses_smooth_payloads():
    values = np.linspace(0.0, 1.0, 8192, dtype=np.float32)
    codec = FloatCodec()
    compressed = codec.compress(values)
    assert compressed.size_bytes < values.size * 4 * 0.6


def test_empty_payload_roundtrip():
    codec = FloatCodec()
    restored = codec.decompress(codec.compress(np.zeros(0, dtype=np.float32)))
    assert restored.size == 0


def test_single_value_roundtrip():
    codec = FloatCodec()
    value = np.array([3.14159], dtype=np.float32)
    assert np.array_equal(codec.decompress(codec.compress(value)), value)


def test_raw_codec_size_is_four_bytes_per_value():
    codec = RawFloatCodec()
    compressed = codec.compress(np.ones(100))
    assert compressed.size_bytes == 400 + 4
    assert np.array_equal(codec.decompress(compressed), np.ones(100, dtype=np.float32))


def test_float16_codec_is_lossy_but_small():
    rng = np.random.default_rng(1)
    values = rng.normal(size=256).astype(np.float32)
    codec = Float16Codec()
    compressed = codec.compress(values)
    assert compressed.size_bytes == 2 * 256 + 4
    restored = codec.decompress(compressed)
    assert np.allclose(restored, values, atol=1e-2)


def test_wrong_codec_rejected():
    values = np.ones(8, dtype=np.float32)
    compressed = RawFloatCodec().compress(values)
    with pytest.raises(CodecError):
        FloatCodec().decompress(compressed)


def test_invalid_level_rejected():
    with pytest.raises(CodecError):
        FloatCodec(level=0)


def test_special_values_preserved():
    values = np.array([0.0, -0.0, np.inf, -np.inf, 1e-38, -1e38], dtype=np.float32)
    codec = FloatCodec()
    restored = codec.decompress(codec.compress(values))
    assert np.array_equal(np.isinf(restored), np.isinf(values))
    assert np.array_equal(restored, values)
