"""Tests for the index codecs (sparsification metadata)."""

import numpy as np
import pytest

from repro.compression.indices import (
    EliasGammaIndexCodec,
    RawIndexCodec,
    SeedIndexCodec,
    random_indices_from_seed,
)
from repro.exceptions import CodecError


@pytest.fixture
def indices():
    rng = np.random.default_rng(0)
    return np.sort(rng.choice(5000, size=800, replace=False))


def test_raw_codec_roundtrip(indices):
    codec = RawIndexCodec()
    encoded = codec.encode(indices, 5000)
    assert np.array_equal(codec.decode(encoded), indices)
    assert encoded.size_bytes >= 4 * indices.size


def test_elias_codec_roundtrip(indices):
    codec = EliasGammaIndexCodec()
    encoded = codec.encode(indices, 5000)
    assert np.array_equal(codec.decode(encoded), indices)


def test_elias_is_smaller_than_raw(indices):
    raw = RawIndexCodec().encode(indices, 5000)
    gamma = EliasGammaIndexCodec().encode(indices, 5000)
    assert gamma.size_bytes < raw.size_bytes / 2


def test_elias_handles_unsorted_input():
    codec = EliasGammaIndexCodec()
    shuffled = np.array([9, 3, 7, 0, 5])
    encoded = codec.encode(shuffled, 10)
    assert np.array_equal(codec.decode(encoded), np.sort(shuffled))


def test_elias_dense_selection_costs_about_one_bit_per_index():
    codec = EliasGammaIndexCodec()
    encoded = codec.encode(np.arange(8000), 8000)
    assert encoded.size_bytes < 8000 / 8 + 64


def test_duplicate_indices_rejected():
    with pytest.raises(CodecError):
        EliasGammaIndexCodec().encode(np.array([1, 1, 2]), 10)


def test_out_of_range_indices_rejected():
    with pytest.raises(CodecError):
        RawIndexCodec().encode(np.array([0, 10]), 10)


def test_decoding_with_wrong_codec_raises(indices):
    encoded = RawIndexCodec().encode(indices, 5000)
    with pytest.raises(CodecError):
        EliasGammaIndexCodec().decode(encoded)


def test_random_indices_from_seed_deterministic():
    a = random_indices_from_seed(7, 50, 1000)
    b = random_indices_from_seed(7, 50, 1000)
    assert np.array_equal(a, b)
    assert np.unique(a).size == 50


def test_random_indices_too_many_raises():
    with pytest.raises(CodecError):
        random_indices_from_seed(1, 11, 10)


def test_seed_codec_roundtrip():
    seed = 99
    expected = random_indices_from_seed(seed, 64, 512)
    codec = SeedIndexCodec(seed)
    encoded = codec.encode(expected, 512)
    assert encoded.payload == b""
    assert encoded.size_bytes < 20
    assert np.array_equal(codec.decode(encoded), expected)


def test_seed_codec_rejects_foreign_indices():
    codec = SeedIndexCodec(1)
    with pytest.raises(CodecError):
        codec.encode(np.array([1, 2, 3]), 512)
