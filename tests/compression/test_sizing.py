"""Tests for payload size accounting."""

import pytest

from repro.compression.sizing import GIB, KIB, MIB, PayloadSize, format_bytes


def test_total_includes_header():
    size = PayloadSize(values_bytes=100, metadata_bytes=20)
    assert size.total_bytes == 100 + 20 + size.header_bytes


def test_addition_accumulates_all_components():
    a = PayloadSize(values_bytes=10, metadata_bytes=1)
    b = PayloadSize(values_bytes=20, metadata_bytes=2)
    total = a + b
    assert total.values_bytes == 30
    assert total.metadata_bytes == 3
    assert total.header_bytes == a.header_bytes + b.header_bytes


def test_units_are_binary():
    assert KIB == 1024
    assert MIB == 1024**2
    assert GIB == 1024**3


@pytest.mark.parametrize(
    "count, expected",
    [
        (512, "512.00 B"),
        (2048, "2.00 KiB"),
        (3 * MIB, "3.00 MiB"),
        (5 * GIB, "5.00 GiB"),
        (1024**4 * 1.5, "1.50 TiB"),
    ],
)
def test_format_bytes(count, expected):
    assert format_bytes(count) == expected
