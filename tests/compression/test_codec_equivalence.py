"""Byte-for-byte equivalence of the vectorized codecs against their references.

The vectorized hot path (``pack_bitfields``, the Elias-gamma kernels, the
quantized wire format, the float compressor) must produce *exactly* the bytes
of the original bit-serial implementations — the determinism contract of the
metering layer depends on it.  Every test here asserts payload equality, not
just value round trips.
"""

import numpy as np
import pytest

from repro.compression.bitstream import BitWriter, pack_bitfields, unpack_bits
from repro.compression.elias import (
    elias_gamma_decode,
    elias_gamma_decode_array,
    elias_gamma_decode_reference,
    elias_gamma_encode,
    elias_gamma_encode_reference,
)
from repro.compression.float_codec import FloatCodec, float_compress_reference
from repro.compression.indices import EliasGammaIndexCodec
from repro.compression.quantization import (
    QsgdQuantizer,
    pack_quantized,
    pack_quantized_reference,
    unpack_quantized,
    unpack_quantized_reference,
)
from repro.exceptions import CodecError


# -- pack_bitfields vs BitWriter --------------------------------------------------------
def test_pack_bitfields_matches_bitwriter():
    rng = np.random.default_rng(0)
    widths = rng.integers(0, 20, size=500)
    values = np.array([int(rng.integers(0, 1 << w)) if w else 0 for w in widths])
    writer = BitWriter()
    for value, width in zip(values, widths):
        writer.write_bits(int(value), int(width))
    payload, bit_length = pack_bitfields(values, widths)
    assert payload == writer.getvalue()
    assert bit_length == writer.bit_length


def test_pack_bitfields_empty():
    assert pack_bitfields(np.array([], dtype=np.int64), np.array([], dtype=np.int64)) == (b"", 0)


def test_pack_bitfields_rejects_overflow_and_negative():
    with pytest.raises(CodecError):
        pack_bitfields(np.array([4]), np.array([2]))
    with pytest.raises(CodecError):
        pack_bitfields(np.array([-1]), np.array([8]))
    with pytest.raises(CodecError):
        pack_bitfields(np.array([1]), np.array([64]))


def test_unpack_bits_matches_packbits_layout():
    payload = bytes([0b10110000, 0b01000000])
    assert unpack_bits(payload, 10).tolist() == [1, 0, 1, 1, 0, 0, 0, 0, 0, 1]
    with pytest.raises(CodecError):
        unpack_bits(payload, 17)


# -- Elias gamma ------------------------------------------------------------------------
EDGE_SEQUENCES = [
    [],                                  # empty index list
    [1],                                 # single value
    [1] * 257,                           # run of minimal gaps crossing a byte boundary
    [2**31],                             # single maximal fast-path-adjacent gap
    [2**32 - 1],                         # largest value the vectorized kernel handles
    [2**32, 1, 7],                       # forces the reference fallback
    list(range(1, 100)),
    [5, 1, 1, 9, 1000000, 1, 3],
]


@pytest.mark.parametrize("values", EDGE_SEQUENCES, ids=lambda v: f"n={len(v)}")
def test_gamma_encode_matches_reference(values):
    assert elias_gamma_encode(values) == elias_gamma_encode_reference(values)


@pytest.mark.parametrize("values", EDGE_SEQUENCES, ids=lambda v: f"n={len(v)}")
def test_gamma_decode_matches_reference(values):
    payload, bits, count = elias_gamma_encode_reference(values)
    assert elias_gamma_decode(payload, bits, count) == elias_gamma_decode_reference(
        payload, bits, count
    )


@pytest.mark.parametrize("seed", range(5))
def test_gamma_roundtrip_property(seed):
    rng = np.random.default_rng(seed)
    size = int(rng.integers(1, 2000))
    high = int(rng.choice([2, 10, 1000, 2**20, 2**31]))
    values = rng.integers(1, high + 1, size=size)
    reference = elias_gamma_encode_reference(values)
    assert elias_gamma_encode(values) == reference
    decoded = elias_gamma_decode_array(*reference)
    assert decoded.tolist() == values.tolist()


def test_gamma_decode_error_parity():
    payload, bits, count = elias_gamma_encode([1, 2, 3, 4])
    for args in [(payload, bits, count - 1), (payload, bits, count + 1), (payload, bits - 2, count)]:
        with pytest.raises(CodecError):
            elias_gamma_decode_reference(*args)
        with pytest.raises(CodecError):
            elias_gamma_decode(*args)
    with pytest.raises(CodecError):
        elias_gamma_decode(payload, len(payload) * 8 + 1, count)


def test_gamma_rejects_nonpositive_like_reference():
    for bad in ([0], [3, 0, 2], [-5]):
        with pytest.raises(CodecError):
            elias_gamma_encode(bad)
        with pytest.raises(CodecError):
            elias_gamma_encode_reference(bad)


# -- index codec edge cases -------------------------------------------------------------
@pytest.mark.parametrize(
    "indices,universe",
    [
        ([], 100),                        # empty index list
        ([0], 1),                         # single index, singleton universe
        ([41], 1000),                     # single index mid-universe
        ([0, 999_999], 1_000_000),        # maximal gap between two indices
        ([999_999], 1_000_000),           # maximal first-index gap
        (list(range(64)), 64),            # dense: every gap is 1
    ],
)
def test_index_codec_edges_roundtrip_and_match_reference(indices, universe):
    codec = EliasGammaIndexCodec()
    encoded = codec.encode(np.array(indices, dtype=np.int64), universe)
    gaps = np.diff(np.sort(np.asarray(indices, dtype=np.int64)), prepend=-1)
    ref_payload, ref_bits, ref_count = elias_gamma_encode_reference(gaps)
    assert encoded.payload == ref_payload
    assert (encoded.bit_length, encoded.count) == (ref_bits, ref_count)
    assert codec.decode(encoded).tolist() == sorted(indices)


@pytest.mark.parametrize("seed", range(3))
def test_index_codec_random_property(seed):
    rng = np.random.default_rng(100 + seed)
    universe = int(rng.choice([50, 10_000, 1_000_000]))
    count = int(rng.integers(1, min(universe, 5000) + 1))
    indices = np.sort(rng.choice(universe, size=count, replace=False))
    codec = EliasGammaIndexCodec()
    encoded = codec.encode(indices, universe)
    gaps = np.diff(indices.astype(np.int64), prepend=-1)
    assert encoded.payload == elias_gamma_encode_reference(gaps)[0]
    assert np.array_equal(codec.decode(encoded), indices)


# -- quantized wire format --------------------------------------------------------------
@pytest.mark.parametrize("bits", [1, 4, 9, 16])
@pytest.mark.parametrize("size", [0, 1, 7, 513])
def test_quantized_pack_matches_reference(bits, size):
    quantizer = QsgdQuantizer(bits=bits, rng=np.random.default_rng(7))
    vector = quantizer.quantize(np.random.default_rng(size).standard_normal(size))
    packed = pack_quantized(vector)
    assert packed == pack_quantized_reference(vector)
    assert len(packed) == vector.size_bytes

    restored_fast = unpack_quantized(packed, bits, size)
    restored_ref = unpack_quantized_reference(packed, bits, size)
    assert np.array_equal(restored_fast.signs, restored_ref.signs)
    assert np.array_equal(restored_fast.levels, restored_ref.levels)
    # signs*levels (all dequantization uses) survives the wire exactly.
    assert np.array_equal(
        restored_fast.signs * restored_fast.levels, vector.signs * vector.levels
    )
    assert np.allclose(quantizer.dequantize(restored_fast), quantizer.dequantize(vector))


def test_quantized_unpack_rejects_truncated_payload():
    quantizer = QsgdQuantizer(bits=4)
    vector = quantizer.quantize(np.ones(16))
    packed = pack_quantized(vector)
    with pytest.raises(CodecError):
        unpack_quantized(packed[:-1], 4, 16)
    with pytest.raises(CodecError):
        unpack_quantized(b"", 4, 0)


# -- float codec ------------------------------------------------------------------------
@pytest.mark.parametrize("size", [0, 1, 33, 4096])
def test_float_compress_matches_reference(size):
    values = np.random.default_rng(size).standard_normal(size)
    assert FloatCodec().compress(values) == float_compress_reference(values)
