"""Tests for the general-purpose float codecs (DEFLATE / LZMA baselines)."""

import numpy as np
import pytest

from repro.compression.float_codec import DeflateFloatCodec, FloatCodec, LzmaFloatCodec
from repro.exceptions import CodecError


@pytest.fixture
def smooth_payload():
    grid = np.linspace(0.0, 1.0, 4096, dtype=np.float32)
    return np.sin(grid * 12.0).astype(np.float32) * 0.05


@pytest.mark.parametrize("codec_class", [DeflateFloatCodec, LzmaFloatCodec])
def test_lossless_roundtrip(codec_class, smooth_payload):
    codec = codec_class()
    restored = codec.decompress(codec.compress(smooth_payload))
    assert np.array_equal(restored, smooth_payload)


@pytest.mark.parametrize("codec_class", [DeflateFloatCodec, LzmaFloatCodec])
def test_random_data_roundtrip(codec_class):
    values = np.random.default_rng(0).normal(size=777).astype(np.float32)
    codec = codec_class()
    assert np.array_equal(codec.decompress(codec.compress(values)), values)


def test_predictive_codec_beats_plain_deflate_on_model_like_payloads(smooth_payload):
    """The Fpzip-like predictive codec compresses smooth payloads better than raw DEFLATE."""

    predictive = FloatCodec().compress(smooth_payload).size_bytes
    plain = DeflateFloatCodec().compress(smooth_payload).size_bytes
    assert predictive <= plain


def test_wrong_codec_rejected(smooth_payload):
    compressed = DeflateFloatCodec().compress(smooth_payload)
    with pytest.raises(CodecError):
        LzmaFloatCodec().decompress(compressed)


def test_invalid_parameters_rejected():
    with pytest.raises(CodecError):
        DeflateFloatCodec(level=0)
    with pytest.raises(CodecError):
        LzmaFloatCodec(preset=10)


def test_empty_payload_roundtrip():
    for codec in (DeflateFloatCodec(), LzmaFloatCodec()):
        restored = codec.decompress(codec.compress(np.zeros(0, dtype=np.float32)))
        assert restored.size == 0
