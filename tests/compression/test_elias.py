"""Tests for Elias gamma coding."""

import numpy as np
import pytest

from repro.compression.elias import elias_gamma_decode, elias_gamma_encode, gamma_code_length
from repro.exceptions import CodecError


def test_known_code_lengths():
    # gamma(1) = "1" (1 bit), gamma(2) = "010" (3 bits), gamma(5) = "00101" (5 bits).
    assert gamma_code_length(1) == 1
    assert gamma_code_length(2) == 3
    assert gamma_code_length(5) == 5
    assert gamma_code_length(255) == 15


def test_roundtrip_small_values():
    values = [1, 2, 3, 4, 5, 6, 7, 8, 15, 16, 255, 256]
    payload, bits, count = elias_gamma_encode(values)
    assert elias_gamma_decode(payload, bits, count) == values


def test_roundtrip_random_values():
    rng = np.random.default_rng(0)
    values = rng.integers(1, 1_000_000, size=300).tolist()
    payload, bits, count = elias_gamma_encode(values)
    assert elias_gamma_decode(payload, bits, count) == values


def test_bit_length_matches_sum_of_code_lengths():
    values = [1, 7, 300, 42]
    _, bits, _ = elias_gamma_encode(values)
    assert bits == sum(gamma_code_length(v) for v in values)


def test_small_gaps_compress_well():
    ones = [1] * 1000
    payload, bits, _ = elias_gamma_encode(ones)
    assert bits == 1000
    assert len(payload) == 125


def test_zero_rejected():
    with pytest.raises(CodecError):
        elias_gamma_encode([0])


def test_negative_rejected():
    with pytest.raises(CodecError):
        elias_gamma_encode([3, -1])


def test_decode_with_leftover_bits_raises():
    payload, bits, count = elias_gamma_encode([1, 2, 3])
    with pytest.raises(CodecError):
        elias_gamma_decode(payload, bits, count - 1)


def test_empty_sequence():
    payload, bits, count = elias_gamma_encode([])
    assert count == 0
    assert elias_gamma_decode(payload, bits, count) == []
