"""Exactness tests for the checkpoint codecs.

Every codec must be lossless through a full JSON round trip — the determinism
contract's fourth pillar (interrupt + resume is byte-identical) rests on it.
"""

from __future__ import annotations

import json
import math

import numpy as np
import pytest

from repro.checkpoint.serialization import (
    decode_rng_state,
    decode_value,
    encode_rng_state,
    encode_value,
    new_rng_from_state,
)
from repro.compression.sizing import PayloadSize
from repro.core.interface import Message, RoundContext
from repro.exceptions import CheckpointError
from repro.simulation.events import DELIVER_MESSAGE, Event


def roundtrip(value):
    """Encode, push through real JSON text, decode."""

    return decode_value(json.loads(json.dumps(encode_value(value))))


# -- arrays ---------------------------------------------------------------------------
@pytest.mark.parametrize(
    "array",
    [
        np.arange(7, dtype=np.float64) / 3.0,
        np.array([], dtype=np.float64),
        np.array([np.nan, np.inf, -np.inf, -0.0, 1e-308]),
        np.arange(12, dtype=np.int64).reshape(3, 4),
        np.array([True, False, True]),
        np.arange(6, dtype=np.float32).reshape(2, 3) * np.float32(0.1),
    ],
)
def test_array_roundtrip_is_bit_exact(array):
    restored = roundtrip(array)
    assert restored.dtype == array.dtype
    assert restored.shape == array.shape
    assert np.array_equal(
        restored.view(np.uint8) if restored.size else restored,
        array.view(np.uint8) if array.size else array,
    )


def test_restored_array_is_writable():
    restored = roundtrip(np.zeros(4))
    restored[0] = 1.0  # frombuffer views are read-only; decode must copy


def test_noncontiguous_array_roundtrip():
    array = np.arange(20, dtype=np.float64).reshape(4, 5)[:, ::2]
    restored = roundtrip(array)
    assert np.array_equal(restored, array)


# -- rng streams ----------------------------------------------------------------------
def test_rng_state_roundtrip_reproduces_stream():
    rng = np.random.default_rng(1234)
    rng.random(17)  # consume a partial buffer so has_uint32 paths are hit
    rng.integers(0, 100, 3)
    state = json.loads(json.dumps(encode_rng_state(rng)))
    clone = new_rng_from_state(state)
    assert np.array_equal(rng.random(32), clone.random(32))
    assert np.array_equal(rng.integers(0, 10**9, 8), clone.integers(0, 10**9, 8))


def test_decode_rng_state_rejects_wrong_bit_generator():
    rng = np.random.default_rng(0)
    with pytest.raises(CheckpointError):
        decode_rng_state(rng, {"bit_generator": "Philox", "state": {}})


def test_generator_inside_value_roundtrips():
    rng = np.random.default_rng(5)
    rng.random(3)
    restored = roundtrip({"stream": rng})
    assert np.array_equal(restored["stream"].random(5), rng.random(5))


# -- scalars and containers -----------------------------------------------------------
def test_scalars_and_nan_roundtrip():
    value = {"a": 1, "b": -0.5, "c": None, "d": True, "e": "text", "nan": float("nan")}
    restored = roundtrip(value)
    assert restored["a"] == 1 and restored["d"] is True
    assert math.isnan(restored["nan"])


def test_numpy_scalars_become_native():
    restored = roundtrip({"i": np.int64(7), "f": np.float64(0.25), "b": np.bool_(True)})
    assert restored == {"i": 7, "f": 0.25, "b": True}
    assert type(restored["i"]) is int and type(restored["f"]) is float


def test_int_keyed_mapping_preserves_keys_and_order():
    mapping = {3: 0.3, 1: 0.1, 2: 0.2}
    restored = roundtrip(mapping)
    assert restored == mapping
    assert list(restored) == [3, 1, 2]  # insertion order fixes FP summation order


def test_tuples_come_back_as_lists():
    assert roundtrip((1, 2, (3, 4))) == [1, 2, [3, 4]]


def test_reserved_marker_key_is_refused():
    with pytest.raises(CheckpointError):
        encode_value({"__ndarray__": 1})


def test_unencodable_type_is_refused():
    with pytest.raises(CheckpointError):
        encode_value(object())


# -- simulation objects ---------------------------------------------------------------
def make_message():
    return Message(
        sender=2,
        kind="jwins-partial-wavelets",
        payload={
            "indices": np.array([1, 5, 9], dtype=np.int64),
            "values": np.array([0.1, -0.2, 0.3]),
            "alpha": 0.37,
            "coefficient_size": 16,
        },
        size=PayloadSize(values_bytes=12, metadata_bytes=3),
        shared_fraction=0.1875,
    )


def test_message_roundtrip():
    message = make_message()
    restored = roundtrip(message)
    assert isinstance(restored, Message)
    assert restored.sender == 2 and restored.kind == message.kind
    assert restored.size == message.size
    assert restored.shared_fraction == message.shared_fraction
    assert np.array_equal(restored.payload["indices"], message.payload["indices"])
    assert np.array_equal(restored.payload["values"], message.payload["values"])


def test_event_roundtrip_preserves_seq_and_payload():
    event = Event(
        time=1.5,
        kind=DELIVER_MESSAGE,
        node_id=4,
        seq=17,
        data={"message": make_message(), "round": 3},
    )
    restored = roundtrip(event)
    assert isinstance(restored, Event)
    assert restored.sort_key == event.sort_key
    assert restored.data["round"] == 3
    assert isinstance(restored.data["message"], Message)


def test_round_context_roundtrip_with_partially_consumed_rng():
    rng = np.random.default_rng(99)
    rng.random(4)
    context = RoundContext(
        round_index=6,
        params_start=np.arange(5, dtype=np.float64),
        params_trained=np.arange(5, dtype=np.float64) + 0.5,
        self_weight=0.4,
        neighbor_weights={3: 0.3, 1: 0.3},
        rng=rng,
        now=2.25,
        node_id=0,
    )
    restored = roundtrip(context)
    assert isinstance(restored, RoundContext)
    assert restored.round_index == 6 and restored.node_id == 0
    assert restored.neighbor_weights == {3: 0.3, 1: 0.3}
    assert list(restored.neighbor_weights) == [3, 1]
    assert np.array_equal(restored.params_trained, context.params_trained)
    # The restored RNG continues exactly where the original stream stands.
    assert np.array_equal(restored.rng.random(6), rng.random(6))
