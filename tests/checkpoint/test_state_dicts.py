"""Round-trip tests for every ``state_dict``/``load_state_dict`` pair.

A fresh instance that loads the captured state must behave identically to the
original from that point on — these are the building blocks the snapshot
layer composes.
"""

from __future__ import annotations

import json

import numpy as np
import pytest

from repro.baselines import (
    choco_factory,
    full_sharing_factory,
    quantized_sharing_factory,
    random_sampling_factory,
    topk_sharing_factory,
)
from repro.checkpoint.serialization import decode_value, encode_value
from repro.core import adaptive_jwins_factory, jwins_factory
from repro.core.interface import RoundContext
from repro.exceptions import ModelError, SimulationError
from repro.nn.layers import Linear
from repro.nn.module import Sequential, get_flat_parameters
from repro.nn.optim import SGD
from repro.simulation.events import EventLoop, START_ROUND
from repro.simulation.network import ByteMeter
from repro.compression.sizing import PayloadSize
from repro.utils.profiling import Profiler

MODEL_SIZE = 64

FACTORIES = {
    "jwins": jwins_factory(),
    "jwins-adaptive": adaptive_jwins_factory(),
    "full-sharing": full_sharing_factory(),
    "random-sampling": random_sampling_factory(),
    "topk": topk_sharing_factory(),
    "choco": choco_factory(),
    "quantized": quantized_sharing_factory(),
}


def make_context(rng_seed: int, round_index: int) -> RoundContext:
    rng = np.random.default_rng(rng_seed)
    params_start = rng.normal(size=MODEL_SIZE)
    return RoundContext(
        round_index=round_index,
        params_start=params_start,
        params_trained=params_start + 0.01 * rng.normal(size=MODEL_SIZE),
        self_weight=0.5,
        neighbor_weights={1: 0.5},
        rng=np.random.default_rng(1000 + round_index),
        node_id=0,
    )


def drive_rounds(scheme, rounds: int, start: int = 0) -> list[np.ndarray]:
    """Run full prepare/aggregate/finalize rounds; return the new params."""

    outputs = []
    for round_index in range(start, start + rounds):
        context = make_context(round_index, round_index)
        scheme.prepare(context)
        new_params = scheme.aggregate(context, [])
        scheme.finalize(context, new_params)
        outputs.append(new_params)
    return outputs


@pytest.mark.parametrize("name", sorted(FACTORIES))
def test_scheme_state_roundtrip_preserves_behavior(name):
    factory = FACTORIES[name]
    original = factory(0, MODEL_SIZE, 7)
    drive_rounds(original, 3)

    state = decode_value(json.loads(json.dumps(encode_value(original.state_dict()))))
    clone = factory(0, MODEL_SIZE, 7)
    clone.load_state_dict(state)

    continued = drive_rounds(original, 2, start=3)
    resumed = drive_rounds(clone, 2, start=3)
    for a, b in zip(continued, resumed):
        assert np.array_equal(a, b)


@pytest.mark.parametrize("name", sorted(FACTORIES))
def test_scheme_state_roundtrip_at_round_zero(name):
    factory = FACTORIES[name]
    original = factory(0, MODEL_SIZE, 7)
    clone = factory(0, MODEL_SIZE, 7)
    clone.load_state_dict(
        decode_value(json.loads(json.dumps(encode_value(original.state_dict()))))
    )
    a = drive_rounds(original, 2)
    b = drive_rounds(clone, 2)
    for x, y in zip(a, b):
        assert np.array_equal(x, y)


def test_scheme_state_roundtrip_mid_round():
    """State captured between prepare and aggregate (async in-flight case)."""

    scheme = jwins_factory()(0, MODEL_SIZE, 7)
    neighbor = jwins_factory()(1, MODEL_SIZE, 8)
    context = make_context(0, 0)
    scheme.prepare(context)
    inbox = [neighbor.prepare(make_context(1, 0))]
    state = decode_value(json.loads(json.dumps(encode_value(scheme.state_dict()))))
    assert state["own_coefficients"] is not None

    clone = jwins_factory()(0, MODEL_SIZE, 7)
    clone.load_state_dict(state)
    expected = scheme.aggregate(context, inbox)
    actual = clone.aggregate(context, inbox)
    assert np.array_equal(expected, actual)


def test_stateless_scheme_rejects_foreign_state():
    scheme = full_sharing_factory()(0, MODEL_SIZE, 7)
    with pytest.raises(SimulationError):
        scheme.load_state_dict({"x": 1})


def test_choco_rejects_wrong_model_size():
    scheme = choco_factory()(0, MODEL_SIZE, 7)
    other = choco_factory()(0, MODEL_SIZE * 2, 7)
    with pytest.raises(SimulationError):
        scheme.load_state_dict(other.state_dict())


# -- optimizer ------------------------------------------------------------------------
def make_model(seed: int) -> Sequential:
    rng = np.random.default_rng(seed)
    return Sequential(Linear(4, 8, rng), Linear(8, 2, rng))


def test_sgd_state_roundtrip_continues_identically():
    model_a, model_b = make_model(3), make_model(3)
    opt_a = SGD(model_a.parameters(), lr=0.1, momentum=0.9)
    opt_b = SGD(model_b.parameters(), lr=0.1, momentum=0.9)

    rng = np.random.default_rng(11)
    def step(model, opt):
        inputs = rng_inputs
        model.zero_grad()
        out = model.forward(inputs)
        model.backward(np.ones_like(out))
        opt.step()

    for _ in range(3):
        rng_inputs = rng.normal(size=(5, 4))
        step(model_a, opt_a)
    state = decode_value(json.loads(json.dumps(encode_value(opt_a.state_dict()))))
    # Sync model_b to model_a, then overlay the optimizer state.
    from repro.nn.module import set_flat_parameters

    set_flat_parameters(model_b, get_flat_parameters(model_a))
    opt_b.load_state_dict(state)
    rng_inputs = rng.normal(size=(5, 4))
    step(model_a, opt_a)
    step(model_b, opt_b)
    assert np.array_equal(get_flat_parameters(model_a), get_flat_parameters(model_b))


def test_sgd_rejects_mismatched_buffers():
    opt = SGD(make_model(3).parameters(), lr=0.1)
    with pytest.raises(ModelError):
        opt.load_state_dict({"velocity": [np.zeros(3)]})


# -- byte meter -----------------------------------------------------------------------
def test_byte_meter_state_roundtrip():
    meter = ByteMeter(3)
    meter.record_send(0, PayloadSize(100, 10), copies=2)
    meter.end_round()
    meter.record_send(1, PayloadSize(50, 5))
    state = decode_value(json.loads(json.dumps(encode_value(meter.state_dict()))))

    clone = ByteMeter(3)
    clone.load_state_dict(state)
    assert clone.total_bytes == meter.total_bytes
    assert clone.per_round_bytes == meter.per_round_bytes
    assert np.array_equal(clone.total_bytes_per_node, meter.total_bytes_per_node)
    assert clone.end_round() == meter.end_round()


def test_byte_meter_rejects_wrong_node_count():
    meter = ByteMeter(3)
    with pytest.raises(SimulationError):
        ByteMeter(4).load_state_dict(meter.state_dict())


# -- profiler -------------------------------------------------------------------------
def test_profiler_state_roundtrip():
    ticks = iter(range(100))
    profiler = Profiler(clock=lambda: float(next(ticks)))
    with profiler.phase("train"):
        pass
    profiler.mark_round(0)
    with profiler.phase("encode"):
        pass
    state = json.loads(json.dumps(profiler.state_dict()))
    clone = Profiler()
    clone.load_state_dict(state)
    assert clone.totals == profiler.totals
    assert clone.counts == profiler.counts
    assert clone.round_rows == profiler.round_rows
    clone.mark_round(1)  # the open since-mark row travelled too
    assert clone.round_rows[-1]["round"] == 1.0


# -- event loop -----------------------------------------------------------------------
def test_event_loop_restore_preserves_order_and_counter():
    loop = EventLoop()
    loop.schedule(2.0, START_ROUND, 1)
    loop.schedule(1.0, START_ROUND, 0)
    loop.schedule(1.0, START_ROUND, 2)
    loop.pop()  # advance the clock

    events = loop.pending()
    clone = EventLoop()
    clone.restore(events, next_seq=loop.next_seq, now=loop.now)
    assert clone.now == loop.now
    order = [clone.pop() for _ in range(len(clone))]
    expected = [loop.pop() for _ in range(len(loop))]
    assert [e.sort_key for e in order] == [e.sort_key for e in expected]
    # New schedules continue the counter without colliding.
    event = clone.schedule(5.0, START_ROUND, 0)
    assert event.seq >= max(e.seq for e in order) + 1


def test_event_loop_restore_rejects_seq_collision():
    loop = EventLoop()
    event = loop.schedule(1.0, START_ROUND, 0)
    clone = EventLoop()
    with pytest.raises(SimulationError):
        clone.restore([event], next_seq=0, now=0.0)
