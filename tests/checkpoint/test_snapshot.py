"""SimulationSnapshot identity, persistence and integrity tests."""

from __future__ import annotations

import json

import pytest

from repro.checkpoint import SimulationSnapshot
from repro.core import jwins_factory
from repro.exceptions import CheckpointError, ExperimentPaused
from repro.simulation import ExperimentConfig
from repro.simulation.engine import Simulator
from tests.conftest import make_toy_task


def small_config(**overrides) -> ExperimentConfig:
    base = dict(
        num_nodes=4,
        degree=2,
        rounds=4,
        local_steps=1,
        batch_size=8,
        learning_rate=0.1,
        eval_every=2,
        eval_test_samples=32,
        seed=3,
        partition="shards",
    )
    base.update(overrides)
    return ExperimentConfig(**base)


def pause_at(config: ExperimentConfig, rounds: int) -> SimulationSnapshot:
    """Run a fresh toy simulation, pausing after ``rounds`` completed rounds."""

    simulator = Simulator(make_toy_task(), jwins_factory(), config)
    simulator.on_round_end(
        lambda r, n, now: (
            simulator.request_checkpoint_stop()
            if simulator.result.rounds_completed >= rounds
            else None
        )
    )
    with pytest.raises(ExperimentPaused) as info:
        simulator.run()
    return info.value.snapshot


def test_to_dict_from_dict_is_exact():
    snapshot = pause_at(small_config(), 2)
    payload = json.loads(json.dumps(snapshot.to_dict(), sort_keys=True))
    clone = SimulationSnapshot.from_dict(payload)
    assert clone.to_dict() == snapshot.to_dict()
    assert clone.content_hash() == snapshot.content_hash()


def test_content_hash_changes_with_state():
    early = pause_at(small_config(), 1)
    late = pause_at(small_config(), 2)
    assert early.content_hash() != late.content_hash()


def test_save_load_verify(tmp_path):
    snapshot = pause_at(small_config(), 2)
    path = tmp_path / "run.ckpt.json"
    snapshot.save(path)
    loaded = SimulationSnapshot.load(path)
    assert loaded.content_hash() == snapshot.content_hash()

    report = SimulationSnapshot.verify(path)
    assert report["rounds_completed"] == 2
    assert report["execution"] == "sync"
    assert report["num_nodes"] == 4
    assert report["hash"] == snapshot.content_hash()
    assert report["spec_hash"] is None  # engine-level run, no spec embedded


def test_load_rejects_missing_file(tmp_path):
    with pytest.raises(CheckpointError, match="cannot read"):
        SimulationSnapshot.load(tmp_path / "absent.ckpt.json")


def test_load_rejects_non_json(tmp_path):
    path = tmp_path / "bad.ckpt.json"
    path.write_text("not json at all")
    with pytest.raises(CheckpointError, match="not valid JSON"):
        SimulationSnapshot.load(path)


def test_load_rejects_foreign_document(tmp_path):
    path = tmp_path / "other.json"
    path.write_text(json.dumps({"hello": "world"}))
    with pytest.raises(CheckpointError, match="not a jwins-repro checkpoint"):
        SimulationSnapshot.load(path)


def test_load_rejects_tampered_payload(tmp_path):
    snapshot = pause_at(small_config(), 2)
    path = tmp_path / "run.ckpt.json"
    snapshot.save(path)
    document = json.loads(path.read_text())
    document["snapshot"]["rounds_completed"] = 99
    path.write_text(json.dumps(document))
    with pytest.raises(CheckpointError, match="integrity check"):
        SimulationSnapshot.load(path)


def test_load_rejects_wrong_version(tmp_path):
    snapshot = pause_at(small_config(), 2)
    path = tmp_path / "run.ckpt.json"
    snapshot.save(path)
    document = json.loads(path.read_text())
    document["version"] = 999
    path.write_text(json.dumps(document))
    with pytest.raises(CheckpointError, match="schema version"):
        SimulationSnapshot.load(path)


def test_from_dict_rejects_unknown_fields():
    snapshot = pause_at(small_config(), 2)
    payload = snapshot.to_dict()
    payload["mystery"] = 1
    with pytest.raises(CheckpointError, match="unknown snapshot field"):
        SimulationSnapshot.from_dict(payload)


def test_from_dict_rejects_missing_fields():
    with pytest.raises(CheckpointError, match="missing field"):
        SimulationSnapshot.from_dict({"execution": "sync"})


def test_restore_rejects_wrong_execution_mode():
    snapshot = pause_at(small_config(), 2)
    simulator = Simulator(
        make_toy_task(), jwins_factory(), small_config(execution="async")
    )
    with pytest.raises(CheckpointError, match="execution mode"):
        Simulator(
            make_toy_task(),
            jwins_factory(),
            small_config(execution="async"),
            resume_from=snapshot,
        )
    del simulator


def test_restore_rejects_wrong_node_count():
    snapshot = pause_at(small_config(), 2)
    with pytest.raises(CheckpointError, match="nodes"):
        Simulator(
            make_toy_task(),
            jwins_factory(),
            small_config(num_nodes=6),
            resume_from=snapshot,
        )


def test_restore_rejects_exhausted_round_budget():
    snapshot = pause_at(small_config(), 3)
    with pytest.raises(CheckpointError, match="completed"):
        Simulator(
            make_toy_task(),
            jwins_factory(),
            small_config(rounds=2),
            resume_from=snapshot,
        )
