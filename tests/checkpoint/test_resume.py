"""The fourth determinism pillar: interrupt + resume is byte-identical.

Both execution modes, with and without an active scenario schedule, with
cadence snapshots and with explicit stop requests — in every case the resumed
:class:`~repro.simulation.metrics.ExperimentResult` must serialize to exactly
the bytes the uninterrupted run produces.
"""

from __future__ import annotations

import json

import pytest

from repro.baselines import choco_factory
from repro.checkpoint import CheckpointManager, SimulationSnapshot, capture_snapshot
from repro.core import jwins_factory
from repro.exceptions import ExperimentPaused
from repro.scenarios import get_scenario
from repro.scenarios.schedule import BYZANTINE_MODES, ByzantineWindow, ScenarioSchedule
from repro.simulation import (
    ExperimentConfig,
    resume_experiment,
    run_experiment,
)
from repro.simulation.engine import Simulator
from tests.conftest import make_toy_task

ROUNDS = 6


def build_config(execution: str, scenario: bool) -> ExperimentConfig:
    overrides = dict(
        num_nodes=6,
        degree=2,
        rounds=ROUNDS,
        local_steps=1,
        batch_size=8,
        learning_rate=0.1,
        eval_every=2,
        eval_test_samples=48,
        seed=3,
        partition="shards",
        execution=execution,
        message_drop_probability=0.1,
    )
    if execution == "async":
        overrides.update(
            compute_speed_range=(1.0, 2.0), link_latency_jitter_seconds=0.01
        )
    if scenario:
        overrides["scenario"] = get_scenario(
            "churn-partition", num_nodes=6, rounds=ROUNDS
        ).to_dict()
    return ExperimentConfig(**overrides)


def pause_at(config: ExperimentConfig, rounds: int, factory=jwins_factory):
    simulator = Simulator(make_toy_task(), factory(), config)
    simulator.on_round_end(
        lambda r, n, now: (
            simulator.request_checkpoint_stop()
            if simulator.result.rounds_completed >= rounds
            else None
        )
    )
    with pytest.raises(ExperimentPaused) as info:
        simulator.run()
    return info.value.snapshot


def json_roundtrip(snapshot) -> SimulationSnapshot:
    return SimulationSnapshot.from_dict(
        json.loads(json.dumps(snapshot.to_dict(), sort_keys=True))
    )


@pytest.mark.parametrize("execution", ["sync", "async"])
@pytest.mark.parametrize("scenario", [False, True])
def test_interrupt_resume_is_byte_identical(execution, scenario):
    config = build_config(execution, scenario)
    uninterrupted = run_experiment(make_toy_task(), jwins_factory(), config)

    snapshot = pause_at(config, 3)
    assert snapshot.rounds_completed == 3
    resumed = resume_experiment(
        make_toy_task(), jwins_factory(), config, json_roundtrip(snapshot)
    )
    assert json.dumps(resumed.to_dict(), sort_keys=True) == json.dumps(
        uninterrupted.to_dict(), sort_keys=True
    )


@pytest.mark.parametrize("execution", ["sync", "async"])
def test_interrupt_resume_choco(execution):
    """CHOCO's cross-round correction state survives the pause exactly."""

    config = build_config(execution, scenario=False)
    uninterrupted = run_experiment(make_toy_task(), choco_factory(), config)
    snapshot = pause_at(config, 3, factory=choco_factory)
    resumed = resume_experiment(
        make_toy_task(), choco_factory(), config, json_roundtrip(snapshot)
    )
    assert resumed.to_dict() == uninterrupted.to_dict()


def test_round_zero_snapshot_resumes_full_run():
    """Edge: a snapshot taken before any round ran (sync, nothing in flight)."""

    config = build_config("sync", scenario=False)
    uninterrupted = run_experiment(make_toy_task(), jwins_factory(), config)

    simulator = Simulator(make_toy_task(), jwins_factory(), config)
    snapshot = capture_snapshot(simulator, {"kind": "sync", "clock": 0.0})
    assert snapshot.rounds_completed == 0
    resumed = resume_experiment(
        make_toy_task(), jwins_factory(), config, json_roundtrip(snapshot)
    )
    assert resumed.to_dict() == uninterrupted.to_dict()


@pytest.mark.parametrize("execution", ["sync", "async"])
def test_final_round_snapshot_yields_complete_result(execution):
    """Edge: a snapshot taken at the very last round resumes to the full result."""

    config = build_config(execution, scenario=False)
    uninterrupted = run_experiment(make_toy_task(), jwins_factory(), config)

    snapshots = []
    checkpointed = run_experiment(
        make_toy_task(),
        jwins_factory(),
        config,
        checkpoint_every=ROUNDS,
        checkpoint_sink=snapshots.append,
    )
    assert checkpointed.to_dict() == uninterrupted.to_dict()
    assert snapshots[-1].rounds_completed == ROUNDS
    resumed = resume_experiment(
        make_toy_task(), jwins_factory(), config, json_roundtrip(snapshots[-1])
    )
    assert resumed.to_dict() == uninterrupted.to_dict()


def test_async_snapshot_captures_in_flight_messages():
    """A mid-gossip snapshot holds queued deliveries and live contexts."""

    config = build_config("async", scenario=False)
    snapshot = pause_at(config, 2)
    kinds = [
        event["__event__"]["kind"] for event in snapshot.mode_state["loop"]["events"]
    ]
    assert kinds, "the paused gossip queue should not be empty"
    # There is always at least one node mid-round when the global minimum
    # advances: either a live context or an undelivered message must exist.
    has_context = any(c is not None for c in snapshot.mode_state["contexts"])
    has_delivery = "deliver-message" in kinds
    assert has_context or has_delivery


def test_sync_snapshot_has_no_in_flight_state():
    """Edge: the sync barrier leaves nothing in flight at a boundary."""

    config = build_config("sync", scenario=False)
    snapshot = pause_at(config, 2)
    assert snapshot.mode_state == {
        "kind": "sync",
        "clock": snapshot.mode_state["clock"],
    }


def test_cadence_checkpoints_do_not_change_results(tmp_path):
    """checkpoint_every=k produces identical results and k-boundary snapshots."""

    config = build_config("sync", scenario=False)
    plain = run_experiment(make_toy_task(), jwins_factory(), config)

    manager = CheckpointManager(tmp_path)
    seen_rounds = []
    checkpointed = run_experiment(
        make_toy_task(),
        jwins_factory(),
        config,
        checkpoint_every=2,
        checkpoint_sink=lambda snap: seen_rounds.append(snap.rounds_completed)
        or manager.save(snap, "toy"),
    )
    assert checkpointed.to_dict() == plain.to_dict()
    assert seen_rounds == [2, 4, 6]

    # The latest (final) snapshot resumes straight to the complete result.
    resumed = resume_experiment(
        make_toy_task(), jwins_factory(), config, manager.load("toy")
    )
    assert resumed.to_dict() == plain.to_dict()


def _byzantine_config(execution: str, mode: str) -> ExperimentConfig:
    """build_config, but under a byzantine window that straddles the pause."""

    schedule = ScenarioSchedule(
        name=f"byz-{mode}",
        byzantine=(
            ByzantineWindow(start_round=1, end_round=5, nodes=(4, 5), mode=mode),
        ),
    )
    overrides = dict(
        num_nodes=6,
        degree=2,
        rounds=ROUNDS,
        local_steps=1,
        batch_size=8,
        learning_rate=0.1,
        eval_every=2,
        eval_test_samples=48,
        seed=3,
        partition="shards",
        execution=execution,
        message_drop_probability=0.1,
        scenario=schedule.to_dict(),
    )
    if execution == "async":
        overrides.update(
            compute_speed_range=(1.0, 2.0), link_latency_jitter_seconds=0.01
        )
    return ExperimentConfig(**overrides)


@pytest.mark.parametrize("execution", ["sync", "async"])
@pytest.mark.parametrize("mode", sorted(BYZANTINE_MODES))
def test_interrupt_resume_under_byzantine_window(execution, mode):
    """Pausing *inside* an attack window resumes byte-for-byte.

    The stale-replay variant is the sharp edge: the frozen replay models live
    in ``Simulator._byzantine_stale`` and must survive the snapshot's JSON
    round trip, or the resumed attacker replays a different model.
    """

    config = _byzantine_config(execution, mode)
    uninterrupted = run_experiment(make_toy_task(), jwins_factory(), config)

    snapshot = pause_at(config, 3)  # round 3 is mid-window ([1, 5))
    if mode == "stale-replay":
        # The held replay models are part of the snapshot, keyed by node.
        assert [entry[0] for entry in snapshot.byzantine] == [4, 5]
    else:
        assert snapshot.byzantine == []

    resumed = resume_experiment(
        make_toy_task(), jwins_factory(), config, json_roundtrip(snapshot)
    )
    assert json.dumps(resumed.to_dict(), sort_keys=True) == json.dumps(
        uninterrupted.to_dict(), sort_keys=True
    )


def test_byzantine_run_differs_from_honest_run():
    """Sanity: the attack window actually changes the learning dynamics."""

    honest = run_experiment(
        make_toy_task(), jwins_factory(), build_config("sync", scenario=False)
    )
    attacked = run_experiment(
        make_toy_task(), jwins_factory(), _byzantine_config("sync", "sign-flip")
    )
    assert honest.history != attacked.history


def test_resume_after_early_target_stop():
    """stop_at_target interacts correctly with a pause before the stop."""

    config = ExperimentConfig(
        num_nodes=4,
        degree=2,
        rounds=ROUNDS,
        local_steps=1,
        batch_size=8,
        learning_rate=0.1,
        eval_every=1,
        eval_test_samples=32,
        seed=3,
        partition="shards",
        # The toy run evaluates to ~34% after round 1 and ~42% after round 2
        # (deterministic for this seed): the target fires strictly after the
        # pause point below, exercising the pause-then-early-stop path.
        target_accuracy=0.40,
        stop_at_target=True,
    )
    uninterrupted = run_experiment(make_toy_task(), jwins_factory(), config)
    assert uninterrupted.reached_target_at_round == 2
    snapshot = pause_at(config, 1)
    resumed = resume_experiment(
        make_toy_task(), jwins_factory(), config, json_roundtrip(snapshot)
    )
    assert resumed.to_dict() == uninterrupted.to_dict()
