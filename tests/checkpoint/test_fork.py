"""Forking: replaying a snapshot under a mutated config axis.

Pinned guarantees: an unchanged fork is bit-identical to a plain resume (and
therefore to the uninterrupted run), and any fork's spec hash is distinct
from both the parent's and a from-scratch run of the mutated configuration.
"""

from __future__ import annotations

import json

import pytest

from repro.checkpoint import CheckpointManager, preemption
from repro.exceptions import CheckpointError, ConfigurationError
from repro.observability.trace import TraceEmitter
from repro.orchestration import (
    ExperimentSpec,
    ResultStore,
    SchemeSpec,
    build_forked_spec,
    run_fork,
    run_sweep,
)
from repro.scenarios import get_scenario

ROUNDS = 5

BASE_OVERRIDES = {
    "num_nodes": 4,
    "degree": 2,
    "rounds": ROUNDS,
    "eval_every": 2,
    "eval_test_samples": 32,
}


def make_spec(**extra) -> ExperimentSpec:
    return ExperimentSpec(
        "movielens",
        SchemeSpec("jwins", {}, label="jwins"),
        {**BASE_OVERRIDES, **extra},
    )


@pytest.fixture
def paused(tmp_path):
    """A spec paused at round 2 with its snapshot in a checkpoint dir."""

    spec = make_spec()
    preemption.preempt_after_round(2)
    try:
        outcome = run_sweep(
            [spec],
            ResultStore(),
            checkpoint_dir=str(tmp_path / "ck"),
            checkpoint_every=1,
        )
    finally:
        preemption.reset()
    assert outcome.paused == [spec]
    snapshot = CheckpointManager(tmp_path / "ck").load_for_spec(spec)
    assert snapshot is not None and snapshot.rounds_completed == 2
    return spec, snapshot


def test_unchanged_fork_is_bit_identical_to_resume(paused):
    spec, snapshot = paused
    uninterrupted = spec.run()
    forked_spec, forked_result = run_fork(snapshot)
    assert forked_result.to_dict() == uninterrupted.to_dict()
    # ... while the spec identity records the fork.
    assert forked_spec.content_hash() != spec.content_hash()
    assert forked_spec.lineage["parent"] == spec.content_hash()
    assert forked_spec.lineage["snapshot"] == snapshot.content_hash()
    assert forked_spec.lineage["round"] == 2


def test_fork_spec_round_trips_with_lineage(paused):
    spec, snapshot = paused
    forked = build_forked_spec(snapshot)
    clone = ExperimentSpec.from_dict(forked.to_dict())
    assert clone == forked
    assert clone.content_hash() == forked.content_hash()


def test_lineage_free_spec_hash_is_unchanged():
    """Adding the lineage field must not shift historical content hashes."""

    spec = make_spec()
    assert "lineage" not in spec.to_dict()
    assert ExperimentSpec.from_dict(spec.to_dict()).content_hash() == spec.content_hash()


def test_scenario_fork_produces_valid_distinct_row(paused, tmp_path):
    spec, snapshot = paused
    scenario = get_scenario("churn", num_nodes=4, rounds=ROUNDS).to_dict()
    forked_spec, forked_result = run_fork(snapshot, {"scenario": scenario})

    assert forked_result.rounds_completed == ROUNDS
    assert forked_result.scenario_rounds  # the replayed future saw churn
    # Hash-distinct from the parent, from the unchanged fork, and from a
    # from-scratch run of the mutated config (no lineage).
    unchanged = build_forked_spec(snapshot)
    from_scratch = make_spec(scenario=scenario, seed=spec.resolved_seed())
    hashes = {
        spec.content_hash(),
        unchanged.content_hash(),
        forked_spec.content_hash(),
        from_scratch.content_hash(),
    }
    assert len(hashes) == 4

    # The forked row is a valid store row.
    store = ResultStore(tmp_path / "forks.jsonl")
    store.put(forked_spec, forked_result)
    reloaded = ResultStore(tmp_path / "forks.jsonl")
    assert reloaded.get(forked_spec).to_dict() == forked_result.to_dict()
    assert reloaded.get_spec(forked_spec.content_hash()).lineage == forked_spec.lineage


def test_fork_trace_dir_never_clobbers_the_parent_cell_trace(paused, tmp_path):
    """Regression: a fork traced into the parent sweep's --trace directory used
    to need an explicit filename; deriving it from the *forked* spec's hash
    (lineage included) guarantees it can never overwrite the parent's file."""

    spec, snapshot = paused
    trace_dir = tmp_path / "traces"
    trace_dir.mkdir()
    parent_trace = trace_dir / f"{spec.content_hash()}.trace.jsonl"
    parent_trace.write_text('{"kind": "manifest"}\n', encoding="utf-8")
    parent_bytes = parent_trace.read_bytes()

    forked_spec, _ = run_fork(snapshot, trace_dir=trace_dir)

    assert forked_spec.content_hash() != spec.content_hash()
    forked_trace = trace_dir / f"{forked_spec.content_hash()}.trace.jsonl"
    assert forked_trace.exists() and forked_trace != parent_trace
    assert parent_trace.read_bytes() == parent_bytes  # untouched
    lines = forked_trace.read_text(encoding="utf-8").splitlines()
    assert json.loads(lines[0])["kind"] == "manifest"
    assert json.loads(lines[-1])["kind"] == "run_end"


def test_fork_rejects_trace_and_trace_dir_together(paused, tmp_path):
    spec, snapshot = paused
    with pytest.raises(ConfigurationError):
        run_fork(
            snapshot,
            trace=TraceEmitter(tmp_path / "x.trace.jsonl"),
            trace_dir=tmp_path,
        )


def test_fork_can_extend_the_round_budget(paused):
    spec, snapshot = paused
    forked_spec, forked_result = run_fork(snapshot, {"rounds": ROUNDS + 3})
    assert forked_result.rounds_completed == ROUNDS + 3


def test_fork_rejects_structural_mutations(paused):
    spec, snapshot = paused
    for field in ("num_nodes", "execution", "seed"):
        with pytest.raises(ConfigurationError, match="structural"):
            build_forked_spec(snapshot, {field: 8})


def test_fork_rejects_exhausted_round_budget(paused):
    spec, snapshot = paused
    with pytest.raises(CheckpointError, match="completed"):
        run_fork(snapshot, {"rounds": 1})


def test_fork_requires_an_embedded_spec(paused):
    spec, snapshot = paused
    snapshot.spec = None
    with pytest.raises(CheckpointError, match="embed"):
        build_forked_spec(snapshot)
