"""FEMNIST-like handwritten-character classification task (LEAF benchmark).

Samples are grouped by the client who "wrote" them; a client favours a subset
of classes, which reproduces the moderate non-IIDness the paper observes for
FEMNIST (nodes likely carry samples of each class, although disproportionately).
"""

from __future__ import annotations

from repro.datasets.base import Dataset, LearningTask, classification_accuracy
from repro.datasets.synthetic import make_client_images
from repro.nn.losses import CrossEntropyLoss
from repro.nn.models import FEMNISTCNN
from repro.utils.rng import derive_rng

__all__ = ["NUM_CLASSES", "make_femnist_task"]

NUM_CLASSES = 10


def make_femnist_task(
    seed: int,
    num_clients: int = 64,
    samples_per_client: int = 30,
    test_fraction: float = 0.2,
    image_size: int = 16,
    classes_per_client: int = 6,
) -> LearningTask:
    """Build the FEMNIST-like :class:`~repro.datasets.base.LearningTask`."""

    rng = derive_rng(seed, "femnist")
    images, labels, clients = make_client_images(
        rng,
        num_clients=num_clients,
        samples_per_client=samples_per_client,
        num_classes=NUM_CLASSES,
        image_size=image_size,
        channels=1,
        classes_per_client=classes_per_client,
    )
    split = derive_rng(seed, "femnist", "split")
    test_mask = split.random(images.shape[0]) < test_fraction
    train = Dataset(images[~test_mask], labels[~test_mask], clients[~test_mask])
    test = Dataset(images[test_mask], labels[test_mask], clients[test_mask])
    return LearningTask(
        name="femnist",
        train=train,
        test=test,
        model_factory=lambda model_rng: FEMNISTCNN(
            model_rng, image_size=image_size, num_classes=NUM_CLASSES
        ),
        loss_factory=CrossEntropyLoss,
        accuracy_fn=classification_accuracy,
    )
