"""CelebA-like binary attribute classification task (LEAF benchmark).

Each client corresponds to a celebrity; the task is a two-class attribute
prediction (e.g. smiling / not smiling), which is why the paper's CelebA
accuracies are high even under non-IID partitioning.
"""

from __future__ import annotations

from repro.datasets.base import Dataset, LearningTask, classification_accuracy
from repro.datasets.synthetic import make_client_images
from repro.nn.losses import CrossEntropyLoss
from repro.nn.models import CelebACNN
from repro.utils.rng import derive_rng

__all__ = ["NUM_CLASSES", "make_celeba_task"]

NUM_CLASSES = 2


def make_celeba_task(
    seed: int,
    num_clients: int = 64,
    samples_per_client: int = 24,
    test_fraction: float = 0.2,
    image_size: int = 16,
) -> LearningTask:
    """Build the CelebA-like :class:`~repro.datasets.base.LearningTask`."""

    rng = derive_rng(seed, "celeba")
    images, labels, clients = make_client_images(
        rng,
        num_clients=num_clients,
        samples_per_client=samples_per_client,
        num_classes=NUM_CLASSES,
        image_size=image_size,
        channels=3,
        classes_per_client=None,
    )
    split = derive_rng(seed, "celeba", "split")
    test_mask = split.random(images.shape[0]) < test_fraction
    train = Dataset(images[~test_mask], labels[~test_mask], clients[~test_mask])
    test = Dataset(images[test_mask], labels[test_mask], clients[test_mask])
    return LearningTask(
        name="celeba",
        train=train,
        test=test,
        model_factory=lambda model_rng: CelebACNN(
            model_rng, image_size=image_size, num_classes=NUM_CLASSES
        ),
        loss_factory=CrossEntropyLoss,
        accuracy_fn=classification_accuracy,
    )
