"""Synthetic data generators.

The paper evaluates on CIFAR-10, MovieLens and the LEAF benchmarks, none of
which can be downloaded in this offline environment.  The generators here
produce class-conditional synthetic data with the same *shape* as those tasks
(multi-channel images, user/item rating pairs, character sequences grouped by
client) so that the decentralized-learning dynamics the paper studies — the
gap between full sharing, random sampling and JWINS under non-IID partitioning
— are exercised end to end.
"""

from __future__ import annotations

import numpy as np

from repro.exceptions import DatasetError

__all__ = [
    "make_class_images",
    "make_client_character_sequences",
    "make_client_images",
    "make_rating_triples",
]


def _smooth_prototype(
    rng: np.random.Generator, channels: int, image_size: int, smoothness: int = 3
) -> np.ndarray:
    """A random low-frequency image prototype for one class."""

    coarse = rng.normal(size=(channels, smoothness, smoothness))
    # Bilinear-ish upsampling by repetition keeps the prototype low frequency,
    # which is what makes the classes separable by a small CNN.
    repeat = int(np.ceil(image_size / smoothness))
    image = np.repeat(np.repeat(coarse, repeat, axis=1), repeat, axis=2)
    return image[:, :image_size, :image_size]


def make_class_images(
    rng: np.random.Generator,
    num_samples: int,
    num_classes: int,
    image_size: int = 16,
    channels: int = 3,
    noise: float = 0.6,
) -> tuple[np.ndarray, np.ndarray]:
    """Class-conditional images: one smooth prototype per class plus noise.

    Returns ``(images, labels)`` with images in NCHW layout.
    """

    if num_samples <= 0 or num_classes <= 1:
        raise DatasetError("need at least one sample and two classes")
    prototypes = np.stack(
        [_smooth_prototype(rng, channels, image_size) for _ in range(num_classes)]
    )
    labels = rng.integers(0, num_classes, size=num_samples)
    images = prototypes[labels] + noise * rng.normal(
        size=(num_samples, channels, image_size, image_size)
    )
    return images.astype(np.float64), labels.astype(np.int64)


def make_client_images(
    rng: np.random.Generator,
    num_clients: int,
    samples_per_client: int,
    num_classes: int,
    image_size: int = 16,
    channels: int = 1,
    noise: float = 0.6,
    classes_per_client: int | None = None,
) -> tuple[np.ndarray, np.ndarray, np.ndarray]:
    """Client-grouped images (LEAF style): each client favours a few classes.

    Returns ``(images, labels, client_ids)``.  When ``classes_per_client`` is
    given each client only holds samples from that many classes, which is how
    FEMNIST/CelebA become non-IID when clients are spread over nodes.
    """

    if num_clients <= 0 or samples_per_client <= 0:
        raise DatasetError("num_clients and samples_per_client must be positive")
    prototypes = np.stack(
        [_smooth_prototype(rng, channels, image_size) for _ in range(num_classes)]
    )
    images: list[np.ndarray] = []
    labels: list[np.ndarray] = []
    clients: list[np.ndarray] = []
    for client in range(num_clients):
        if classes_per_client is None:
            client_classes = np.arange(num_classes)
        else:
            client_classes = rng.choice(
                num_classes, size=min(classes_per_client, num_classes), replace=False
            )
        client_labels = rng.choice(client_classes, size=samples_per_client)
        client_images = prototypes[client_labels] + noise * rng.normal(
            size=(samples_per_client, channels, image_size, image_size)
        )
        images.append(client_images)
        labels.append(client_labels)
        clients.append(np.full(samples_per_client, client))
    return (
        np.concatenate(images).astype(np.float64),
        np.concatenate(labels).astype(np.int64),
        np.concatenate(clients).astype(np.int64),
    )


def make_rating_triples(
    rng: np.random.Generator,
    num_users: int,
    num_items: int,
    samples_per_user: int,
    latent_dim: int = 6,
    noise: float = 0.25,
    rating_range: tuple[float, float] = (1.0, 5.0),
) -> tuple[np.ndarray, np.ndarray, np.ndarray]:
    """MovieLens-like rating triples from a ground-truth latent factor model.

    Returns ``(pairs, ratings, client_ids)`` where ``pairs`` is an integer
    array of ``(user, item)`` columns and ``client_ids`` equals the user id
    (each user's ratings belong to that user, as in MovieLens).
    """

    if num_users <= 0 or num_items <= 0 or samples_per_user <= 0:
        raise DatasetError("MovieLens-like generator dimensions must be positive")
    low, high = rating_range
    user_factors = rng.normal(scale=0.8, size=(num_users, latent_dim))
    item_factors = rng.normal(scale=0.8, size=(num_items, latent_dim))
    user_bias = rng.normal(scale=0.3, size=num_users)
    item_bias = rng.normal(scale=0.3, size=num_items)
    middle = (low + high) / 2.0

    pairs: list[np.ndarray] = []
    ratings: list[np.ndarray] = []
    clients: list[np.ndarray] = []
    for user in range(num_users):
        items = rng.choice(num_items, size=min(samples_per_user, num_items), replace=False)
        scores = (
            middle
            + user_factors[user] @ item_factors[items].T
            + user_bias[user]
            + item_bias[items]
            + noise * rng.normal(size=items.size)
        )
        scores = np.clip(scores, low, high)
        pairs.append(np.stack([np.full(items.size, user), items], axis=1))
        ratings.append(scores)
        clients.append(np.full(items.size, user))
    return (
        np.concatenate(pairs).astype(np.int64),
        np.concatenate(ratings).astype(np.float64),
        np.concatenate(clients).astype(np.int64),
    )


def make_client_character_sequences(
    rng: np.random.Generator,
    num_clients: int,
    samples_per_client: int,
    vocab_size: int = 20,
    sequence_length: int = 12,
    styles: int = 4,
    determinism: float = 6.0,
) -> tuple[np.ndarray, np.ndarray, np.ndarray]:
    """Shakespeare-like next-character data grouped by client.

    Text is generated from per-style Markov chains (a "style" loosely plays
    the role of a speaker in the Shakespeare corpus); each client writes in a
    single style, which makes the partitioned data non-IID.  Returns
    ``(sequences, next_chars, client_ids)``.
    """

    if vocab_size < 2 or sequence_length < 2:
        raise DatasetError("vocab_size and sequence_length must be at least 2")
    style_transitions = []
    for _ in range(styles):
        logits = rng.normal(size=(vocab_size, vocab_size)) * determinism
        probabilities = np.exp(logits - logits.max(axis=1, keepdims=True))
        style_transitions.append(probabilities / probabilities.sum(axis=1, keepdims=True))

    sequences: list[np.ndarray] = []
    targets: list[np.ndarray] = []
    clients: list[np.ndarray] = []
    for client in range(num_clients):
        transition = style_transitions[client % styles]
        for _ in range(samples_per_client):
            chars = np.zeros(sequence_length + 1, dtype=np.int64)
            chars[0] = rng.integers(0, vocab_size)
            for position in range(1, sequence_length + 1):
                chars[position] = rng.choice(vocab_size, p=transition[chars[position - 1]])
            sequences.append(chars[:-1])
            targets.append(chars[-1])
            clients.append(client)
    return (
        np.stack(sequences).astype(np.int64),
        np.asarray(targets, dtype=np.int64),
        np.asarray(clients, dtype=np.int64),
    )
