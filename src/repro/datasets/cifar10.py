"""CIFAR-10-like image classification task.

The paper's hardest workload: 10 balanced classes, partitioned into label
shards so that each node only sees samples from a handful of classes
(Section IV-B d).  The synthetic stand-in keeps the 3-channel image structure
and 10 classes at a reduced resolution.
"""

from __future__ import annotations

import numpy as np

from repro.datasets.base import Dataset, LearningTask, classification_accuracy
from repro.datasets.synthetic import make_class_images
from repro.nn.losses import CrossEntropyLoss
from repro.nn.models import GNLeNet
from repro.utils.rng import derive_rng

__all__ = ["NUM_CLASSES", "make_cifar10_task"]

NUM_CLASSES = 10


def make_cifar10_task(
    seed: int,
    train_samples: int = 2000,
    test_samples: int = 400,
    image_size: int = 16,
    noise: float = 0.6,
) -> LearningTask:
    """Build the CIFAR-10-like :class:`~repro.datasets.base.LearningTask`."""

    train_rng = derive_rng(seed, "cifar10", "train")
    test_rng = derive_rng(seed, "cifar10", "test")
    # The class prototypes must be common to train and test, so draw them from
    # a dedicated generator and reuse it for both splits.
    proto_rng = derive_rng(seed, "cifar10", "prototypes")
    prototype_state = proto_rng.bit_generator.state

    def _generate(rng: np.random.Generator, count: int) -> tuple[np.ndarray, np.ndarray]:
        generator = np.random.default_rng(0)
        generator.bit_generator.state = prototype_state
        images, labels = make_class_images(
            generator, count, NUM_CLASSES, image_size=image_size, channels=3, noise=0.0
        )
        images += noise * rng.normal(size=images.shape)
        return images, labels

    train_inputs, train_labels = _generate(train_rng, train_samples)
    test_inputs, test_labels = _generate(test_rng, test_samples)

    return LearningTask(
        name="cifar10",
        train=Dataset(train_inputs, train_labels),
        test=Dataset(test_inputs, test_labels),
        model_factory=lambda rng: GNLeNet(rng, image_size=image_size, num_classes=NUM_CLASSES),
        loss_factory=CrossEntropyLoss,
        accuracy_fn=classification_accuracy,
    )
