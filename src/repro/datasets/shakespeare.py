"""Shakespeare-like next-character prediction task (LEAF benchmark).

Each client writes in one of a few "styles" (per-style Markov chains stand in
for speakers of the play); the model is the paper's stacked LSTM.  As in the
paper, only a subset of clients is distributed over the training nodes.
"""

from __future__ import annotations

from repro.datasets.base import Dataset, LearningTask, classification_accuracy
from repro.datasets.synthetic import make_client_character_sequences
from repro.nn.losses import CrossEntropyLoss
from repro.nn.models import CharLSTM
from repro.utils.rng import derive_rng

__all__ = ["VOCAB_SIZE", "make_shakespeare_task"]

VOCAB_SIZE = 20


def make_shakespeare_task(
    seed: int,
    num_clients: int = 48,
    samples_per_client: int = 24,
    test_fraction: float = 0.2,
    sequence_length: int = 10,
    styles: int = 4,
) -> LearningTask:
    """Build the Shakespeare-like :class:`~repro.datasets.base.LearningTask`."""

    rng = derive_rng(seed, "shakespeare")
    sequences, targets, clients = make_client_character_sequences(
        rng,
        num_clients=num_clients,
        samples_per_client=samples_per_client,
        vocab_size=VOCAB_SIZE,
        sequence_length=sequence_length,
        styles=styles,
    )
    split = derive_rng(seed, "shakespeare", "split")
    test_mask = split.random(sequences.shape[0]) < test_fraction
    train = Dataset(sequences[~test_mask], targets[~test_mask], clients[~test_mask])
    test = Dataset(sequences[test_mask], targets[test_mask], clients[test_mask])
    return LearningTask(
        name="shakespeare",
        train=train,
        test=test,
        model_factory=lambda model_rng: CharLSTM(
            VOCAB_SIZE, model_rng, embedding_dim=8, hidden_size=24, num_layers=2
        ),
        loss_factory=CrossEntropyLoss,
        accuracy_fn=classification_accuracy,
    )
