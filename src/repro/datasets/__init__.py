"""Dataset substrate: synthetic stand-ins for the paper's five workloads."""

from repro.datasets.base import (
    Dataset,
    LearningTask,
    classification_accuracy,
    iterate_minibatches,
    rating_accuracy,
)
from repro.datasets.celeba import make_celeba_task
from repro.datasets.cifar10 import make_cifar10_task
from repro.datasets.femnist import make_femnist_task
from repro.datasets.movielens import make_movielens_task
from repro.datasets.partition import (
    client_partition,
    iid_partition,
    partition_dataset,
    shard_partition,
)
from repro.datasets.shakespeare import make_shakespeare_task
from repro.datasets.synthetic import (
    make_class_images,
    make_client_character_sequences,
    make_client_images,
    make_rating_triples,
)

TASK_FACTORIES = {
    "cifar10": make_cifar10_task,
    "femnist": make_femnist_task,
    "celeba": make_celeba_task,
    "shakespeare": make_shakespeare_task,
    "movielens": make_movielens_task,
}
"""Mapping from workload name to its task factory (the five paper datasets)."""

__all__ = [
    "Dataset",
    "LearningTask",
    "classification_accuracy",
    "iterate_minibatches",
    "rating_accuracy",
    "make_celeba_task",
    "make_cifar10_task",
    "make_femnist_task",
    "make_movielens_task",
    "make_shakespeare_task",
    "client_partition",
    "iid_partition",
    "partition_dataset",
    "shard_partition",
    "make_class_images",
    "make_client_character_sequences",
    "make_client_images",
    "make_rating_triples",
    "TASK_FACTORIES",
]
