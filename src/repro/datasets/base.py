"""Dataset abstractions shared by every learning task.

A :class:`Dataset` is an in-memory pair of input and target arrays.  A
:class:`LearningTask` bundles a train/test dataset with the model factory,
loss and accuracy metric for that task; the decentralized simulator only ever
interacts with tasks through this interface, which is what makes it possible
to swap in the five paper workloads (or new ones) without touching the
simulator.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, Iterator

import numpy as np

from repro.exceptions import DatasetError
from repro.nn.losses import Loss
from repro.nn.module import Module

__all__ = ["Dataset", "LearningTask", "iterate_minibatches"]


class Dataset:
    """An in-memory supervised dataset.

    Parameters
    ----------
    inputs:
        Array of model inputs, first axis indexes samples.
    targets:
        Array of targets, first axis indexes samples.
    client_ids:
        Optional per-sample client identifier, used by the client-based
        non-IID partitioner (LEAF-style datasets group samples by the user
        who produced them).
    """

    def __init__(
        self,
        inputs: np.ndarray,
        targets: np.ndarray,
        client_ids: np.ndarray | None = None,
    ) -> None:
        inputs = np.asarray(inputs)
        targets = np.asarray(targets)
        if inputs.shape[0] != targets.shape[0]:
            raise DatasetError(
                f"inputs ({inputs.shape[0]}) and targets ({targets.shape[0]}) disagree on sample count"
            )
        if client_ids is not None:
            client_ids = np.asarray(client_ids)
            if client_ids.shape[0] != inputs.shape[0]:
                raise DatasetError("client_ids must have one entry per sample")
        self.inputs = inputs
        self.targets = targets
        self.client_ids = client_ids

    def __len__(self) -> int:
        return int(self.inputs.shape[0])

    def __getitem__(self, index: int) -> tuple[np.ndarray, np.ndarray]:
        return self.inputs[index], self.targets[index]

    def subset(self, indices: np.ndarray) -> "Dataset":
        """Return a new dataset restricted to ``indices``."""

        indices = np.asarray(indices, dtype=np.int64)
        if indices.size and (indices.min() < 0 or indices.max() >= len(self)):
            raise DatasetError("subset indices out of range")
        clients = self.client_ids[indices] if self.client_ids is not None else None
        return Dataset(self.inputs[indices], self.targets[indices], clients)

    def batch(self, indices: np.ndarray) -> tuple[np.ndarray, np.ndarray]:
        """Return the (inputs, targets) mini-batch at ``indices``."""

        indices = np.asarray(indices, dtype=np.int64)
        return self.inputs[indices], self.targets[indices]


def iterate_minibatches(
    dataset: Dataset,
    batch_size: int,
    rng: np.random.Generator | None = None,
) -> Iterator[tuple[np.ndarray, np.ndarray]]:
    """Yield mini-batches covering ``dataset`` once (shuffled when ``rng`` given)."""

    if batch_size <= 0:
        raise DatasetError("batch_size must be positive")
    order = np.arange(len(dataset))
    if rng is not None:
        rng.shuffle(order)
    for start in range(0, len(dataset), batch_size):
        yield dataset.batch(order[start : start + batch_size])


def classification_accuracy(outputs: np.ndarray, targets: np.ndarray) -> float:
    """Top-1 accuracy for classification outputs (logits per class)."""

    predictions = np.asarray(outputs).argmax(axis=-1)
    return float(np.mean(predictions == np.asarray(targets)))


def rating_accuracy(outputs: np.ndarray, targets: np.ndarray, tolerance: float = 0.5) -> float:
    """Fraction of predicted ratings within ``tolerance`` of the true rating.

    The recommendation task is a regression problem; the paper reports it on
    the same accuracy axis as the classification tasks, so we use the standard
    "hit within half a star" notion of accuracy.
    """

    outputs = np.asarray(outputs, dtype=np.float64).reshape(-1)
    targets = np.asarray(targets, dtype=np.float64).reshape(-1)
    return float(np.mean(np.abs(outputs - targets) <= tolerance))


@dataclass
class LearningTask:
    """A complete learning task: data, model factory, loss and metric."""

    name: str
    train: Dataset
    test: Dataset
    model_factory: Callable[[np.random.Generator], Module]
    loss_factory: Callable[[], Loss]
    accuracy_fn: Callable[[np.ndarray, np.ndarray], float] = field(
        default=classification_accuracy
    )

    def make_model(self, rng: np.random.Generator) -> Module:
        """Instantiate a fresh model for this task."""

        return self.model_factory(rng)

    def make_loss(self) -> Loss:
        """Instantiate the task loss."""

        return self.loss_factory()

    @property
    def model_size(self) -> int:
        """Number of parameters of the task model (probed with a fixed seed)."""

        probe = self.make_model(np.random.default_rng(0))
        return probe.num_parameters
