"""MovieLens-like recommendation task (matrix factorization).

Ratings are generated from a ground-truth latent factor model; each user's
ratings belong to that user, so the client-based partitioner distributes whole
users across nodes exactly as the paper does with the real MovieLens data.
Accuracy is reported as the fraction of predictions within half a star of the
true rating, which plays the role of the accuracy axis in the paper's plots.
"""

from __future__ import annotations

from functools import partial

from repro.datasets.base import Dataset, LearningTask, rating_accuracy
from repro.datasets.synthetic import make_rating_triples
from repro.nn.losses import MSELoss
from repro.nn.models import MatrixFactorization
from repro.utils.rng import derive_rng

__all__ = ["make_movielens_task"]


def make_movielens_task(
    seed: int,
    num_users: int = 64,
    num_items: int = 80,
    samples_per_user: int = 30,
    test_fraction: float = 0.2,
    embedding_dim: int = 8,
) -> LearningTask:
    """Build the MovieLens-like :class:`~repro.datasets.base.LearningTask`."""

    rng = derive_rng(seed, "movielens")
    pairs, ratings, clients = make_rating_triples(
        rng,
        num_users=num_users,
        num_items=num_items,
        samples_per_user=samples_per_user,
    )
    split = derive_rng(seed, "movielens", "split")
    test_mask = split.random(pairs.shape[0]) < test_fraction
    train = Dataset(pairs[~test_mask], ratings[~test_mask], clients[~test_mask])
    test = Dataset(pairs[test_mask], ratings[test_mask], clients[test_mask])
    return LearningTask(
        name="movielens",
        train=train,
        test=test,
        model_factory=partial(
            _make_model, num_users=num_users, num_items=num_items, embedding_dim=embedding_dim
        ),
        loss_factory=MSELoss,
        accuracy_fn=rating_accuracy,
    )


def _make_model(model_rng, num_users: int, num_items: int, embedding_dim: int):
    return MatrixFactorization(num_users, num_items, model_rng, embedding_dim=embedding_dim)
