"""Non-IID data partitioning across decentralized-learning nodes.

The paper uses two partitioning schemes (Section IV-B d):

* **Label shards** for CIFAR-10: sort samples by label, cut the sorted order
  into ``shards_per_node * num_nodes`` shards and give each node
  ``shards_per_node`` random shards, which bounds the number of classes a node
  can see (2 shards per node → at most 4 classes in the paper's setting).
* **Client grouping** for the LEAF datasets and MovieLens: samples are grouped
  by the client who produced them and each node receives an equal number of
  whole clients.

An IID partitioner is included for ablation experiments.
"""

from __future__ import annotations

import numpy as np

from repro.datasets.base import Dataset
from repro.exceptions import DatasetError

__all__ = ["client_partition", "iid_partition", "partition_dataset", "shard_partition"]


def iid_partition(
    num_samples: int, num_nodes: int, rng: np.random.Generator
) -> list[np.ndarray]:
    """Uniformly shuffle samples and split them into ``num_nodes`` equal parts."""

    if num_nodes <= 0 or num_samples < num_nodes:
        raise DatasetError("need at least one sample per node")
    order = rng.permutation(num_samples)
    return [np.sort(chunk) for chunk in np.array_split(order, num_nodes)]


def shard_partition(
    labels: np.ndarray,
    num_nodes: int,
    rng: np.random.Generator,
    shards_per_node: int = 2,
) -> list[np.ndarray]:
    """Label-shard partitioning (the CIFAR-10 scheme of the paper)."""

    labels = np.asarray(labels)
    num_samples = labels.shape[0]
    if num_nodes <= 0 or shards_per_node <= 0:
        raise DatasetError("num_nodes and shards_per_node must be positive")
    total_shards = num_nodes * shards_per_node
    if num_samples < total_shards:
        raise DatasetError(
            f"cannot cut {num_samples} samples into {total_shards} shards"
        )
    # Sort by label (ties broken randomly so repeated runs differ only via rng).
    jitter = rng.random(num_samples)
    sorted_indices = np.lexsort((jitter, labels))
    shards = np.array_split(sorted_indices, total_shards)
    shard_order = rng.permutation(total_shards)
    assignments: list[np.ndarray] = []
    for node in range(num_nodes):
        chosen = shard_order[node * shards_per_node : (node + 1) * shards_per_node]
        assignments.append(np.sort(np.concatenate([shards[index] for index in chosen])))
    return assignments


def client_partition(
    client_ids: np.ndarray, num_nodes: int, rng: np.random.Generator
) -> list[np.ndarray]:
    """Distribute whole clients across nodes, an equal number per node."""

    client_ids = np.asarray(client_ids)
    unique_clients = np.unique(client_ids)
    if unique_clients.size < num_nodes:
        raise DatasetError(
            f"cannot spread {unique_clients.size} clients over {num_nodes} nodes"
        )
    order = rng.permutation(unique_clients)
    groups = np.array_split(order, num_nodes)
    assignments: list[np.ndarray] = []
    for group in groups:
        mask = np.isin(client_ids, group)
        assignments.append(np.flatnonzero(mask))
    return assignments


def partition_dataset(
    dataset: Dataset,
    num_nodes: int,
    rng: np.random.Generator,
    scheme: str = "auto",
    shards_per_node: int = 2,
) -> list[Dataset]:
    """Split ``dataset`` into one local dataset per node.

    ``scheme`` is one of ``"shards"``, ``"clients"``, ``"iid"`` or ``"auto"``
    (clients when the dataset carries client ids, shards otherwise — matching
    how the paper treats CIFAR-10 versus the LEAF datasets).
    """

    key = scheme.lower()
    if key == "auto":
        key = "clients" if dataset.client_ids is not None else "shards"
    if key == "iid":
        parts = iid_partition(len(dataset), num_nodes, rng)
    elif key == "shards":
        labels = dataset.targets
        if not np.issubdtype(np.asarray(labels).dtype, np.integer):
            raise DatasetError("shard partitioning requires integer class labels")
        parts = shard_partition(labels, num_nodes, rng, shards_per_node)
    elif key == "clients":
        if dataset.client_ids is None:
            raise DatasetError("client partitioning requires per-sample client ids")
        parts = client_partition(dataset.client_ids, num_nodes, rng)
    else:
        raise DatasetError(f"unknown partitioning scheme {scheme!r}")
    return [dataset.subset(indices) for indices in parts]
