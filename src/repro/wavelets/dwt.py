"""Discrete wavelet transform with periodic boundary handling.

This is the substrate that replaces PyWavelets in the original JWINS
implementation.  Only what JWINS needs is implemented: the one-dimensional
orthogonal DWT of a flat parameter vector, multi-level decomposition and the
exact inverse.

The analysis operator uses circular (periodized) boundary extension.  For an
even-length signal and orthonormal filters the operator is orthogonal, hence
the synthesis step is simply its transpose and reconstruction is exact up to
floating-point error.  Odd-length inputs are zero-padded by one element at the
level where the odd length occurs; the padding is recorded so the inverse can
trim it again.

The hot path is vectorized without changing a single output bit:

* analysis views the periodically extended signal as a strided window matrix
  (``np.lib.stride_tricks.as_strided``), eliminating the per-tap
  ``(2i + k) % length`` index computation;
* synthesis gathers through index/tap matrices precomputed per
  ``(length, filter)`` and cached across rounds, eliminating the per-tap
  ``np.add.at`` scatter (the slowest numpy primitive in the old loop).

Both paths accumulate taps in exactly the original order, so they are
bit-identical to :func:`dwt_single_reference`/:func:`idwt_single_reference`
(the original scalar-loop implementations, kept as the equivalence-test
ground truth).
"""

from __future__ import annotations

from collections import OrderedDict
from dataclasses import dataclass

import numpy as np

from repro.exceptions import WaveletError
from repro.wavelets.filters import WaveletFilterBank, get_filter_bank

__all__ = [
    "MultiLevelCoefficients",
    "dwt_single",
    "dwt_single_batch",
    "dwt_single_reference",
    "idwt_single",
    "idwt_single_batch",
    "idwt_single_reference",
    "max_decomposition_level",
    "wavedec",
    "wavedec_batch",
    "waverec",
    "waverec_batch",
]


def _analysis_reference(signal: np.ndarray, taps: np.ndarray) -> np.ndarray:
    """Per-tap modulo-gather analysis (the original loop; ground truth)."""

    length = signal.size
    half = length // 2
    # Positions (2 * i + k) mod length for i in [0, half) and k in [0, taps).
    starts = 2 * np.arange(half)
    out = np.zeros(half, dtype=np.float64)
    for k, tap in enumerate(taps):
        out += tap * signal[(starts + k) % length]
    return out


def _synthesis_accumulate_reference(
    coefficients: np.ndarray, taps: np.ndarray, length: int, out: np.ndarray
) -> None:
    """Per-tap ``np.add.at`` synthesis (the original loop; ground truth)."""

    starts = 2 * np.arange(coefficients.size)
    for k, tap in enumerate(taps):
        np.add.at(out, (starts + k) % length, tap * coefficients)


def _analysis(signal: np.ndarray, taps: np.ndarray) -> np.ndarray:
    """Circularly filter ``signal`` with ``taps`` and downsample by two.

    Reads window ``i`` as the strided slice ``extended[2i : 2i + K]`` of the
    cyclically extended signal instead of gathering ``(2i + k) % length`` per
    tap.  Columns are accumulated in tap order, exactly like
    :func:`_analysis_reference`, so the result is bit-identical.
    """

    length = signal.size
    half = length // 2
    window = taps.size
    # The last window starts at 2*(half-1) and reaches 2*half - 2 + window - 1;
    # np.resize repeats the signal cyclically, which is the periodic extension.
    needed = max(length, 2 * half - 2 + window)
    extended = signal if needed == length else np.resize(signal, needed)
    stride = extended.strides[0]
    windows = np.lib.stride_tricks.as_strided(
        extended, shape=(half, window), strides=(2 * stride, stride), writeable=False
    )
    # Start from zeros and accumulate per tap, mirroring the reference loop
    # operation for operation (this keeps even signed zeros bit-identical).
    out = np.zeros(half, dtype=np.float64)
    for k in range(window):
        out += taps[k] * windows[:, k]
    return out


#: LRU cache of synthesis gather matrices keyed by ``(length, filter bytes)``.
#: An entry costs ~16 bytes per output sample per tap pair, so the cache is
#: bounded: least-recently-used entries are evicted beyond this many.  One
#: model uses two filters per decomposition level (well under the cap), so
#: steady-state rounds always hit.
_SYNTHESIS_CACHE_MAX_ENTRIES = 64
_SYNTHESIS_GATHER_CACHE: "OrderedDict[tuple[int, bytes], tuple[np.ndarray, np.ndarray]]" = (
    OrderedDict()
)


def _synthesis_gather_matrices(
    length: int, taps: np.ndarray
) -> tuple[np.ndarray, np.ndarray]:
    """Precompute the synthesis gather for an even ``length`` and even-tap filter.

    Output position ``j`` of the transposed analysis operator receives exactly
    one contribution per parity-matching tap ``k``: ``taps[k] *
    coefficients[i]`` with ``2i + k = j (mod length)``.  Returns
    ``(coefficient_indices, tap_values)``, both of shape
    ``(length, taps.size // 2)``, with taps ordered ascending per row so the
    accumulation order matches :func:`_synthesis_accumulate_reference`.
    """

    key = (length, taps.tobytes())
    cached = _SYNTHESIS_GATHER_CACHE.get(key)
    if cached is not None:
        _SYNTHESIS_GATHER_CACHE.move_to_end(key)
        return cached
    window = taps.size
    outputs = np.arange(length)[:, None]
    # Row j uses taps of j's parity, ascending: k = (j % 2) + 2m.
    tap_indices = (outputs % 2) + 2 * np.arange(window // 2)[None, :]
    coefficient_indices = ((outputs - tap_indices) % length) // 2
    # Fortran order makes each per-tap column contiguous for the gather loop.
    matrices = (
        np.asfortranarray(coefficient_indices),
        np.asfortranarray(taps[tap_indices]),
    )
    _SYNTHESIS_GATHER_CACHE[key] = matrices
    while len(_SYNTHESIS_GATHER_CACHE) > _SYNTHESIS_CACHE_MAX_ENTRIES:
        _SYNTHESIS_GATHER_CACHE.popitem(last=False)
    return matrices


def _synthesis_accumulate(
    coefficients: np.ndarray, taps: np.ndarray, length: int, out: np.ndarray
) -> None:
    """Accumulate the transpose of :func:`_analysis` into ``out``.

    Uses the cached gather matrices when the filter has an even number of taps
    (every shipped wavelet does) and ``length == 2 * coefficients.size`` (the
    periodized invariant); falls back to the reference scatter otherwise.
    Accumulation follows ascending tap order per output, making the result
    bit-identical to :func:`_synthesis_accumulate_reference`.
    """

    if taps.size % 2 or length != 2 * coefficients.size:
        _synthesis_accumulate_reference(coefficients, taps, length, out)
        return
    coefficient_indices, tap_values = _synthesis_gather_matrices(length, taps)
    for m in range(tap_values.shape[1]):
        out += tap_values[:, m] * coefficients[coefficient_indices[:, m]]


def _analysis_batch(signals: np.ndarray, taps: np.ndarray) -> np.ndarray:
    """Row-wise :func:`_analysis` over a stacked ``(N, length)`` signal matrix.

    Each row is filtered and downsampled exactly like the single-signal path:
    the cyclic extension appends leading columns (the same values
    ``np.resize`` repeats), the strided view reads window ``i`` of row ``r``
    as ``extended[r, 2i : 2i + K]``, and taps accumulate in the original
    order.  Because every operation is elementwise per row, row ``r`` of the
    result is bit-identical to ``_analysis(signals[r], taps)``.
    """

    count, length = signals.shape
    half = length // 2
    window = taps.size
    needed = max(length, 2 * half - 2 + window)
    if needed == length:
        extended = np.ascontiguousarray(signals)
    else:
        # Cyclic extension by column blocks: repeat the signal prefix until
        # the last window fits, mirroring np.resize's flat repetition per row.
        parts = [signals]
        remaining = needed - length
        while remaining > 0:
            take = min(length, remaining)
            parts.append(signals[:, :take])
            remaining -= take
        extended = np.ascontiguousarray(np.concatenate(parts, axis=1))
    row_stride, col_stride = extended.strides
    windows = np.lib.stride_tricks.as_strided(
        extended,
        shape=(count, half, window),
        strides=(row_stride, 2 * col_stride, col_stride),
        writeable=False,
    )
    out = np.zeros((count, half), dtype=np.float64)
    for k in range(window):
        out += taps[k] * windows[:, :, k]
    return out


def _synthesis_accumulate_batch(
    coefficients: np.ndarray, taps: np.ndarray, length: int, out: np.ndarray
) -> None:
    """Row-wise :func:`_synthesis_accumulate` over ``(N, length // 2)`` rows.

    Shares the cached gather matrices with the single-signal path and
    accumulates taps in the same ascending order, so each output row is
    bit-identical to the per-row call.  Falls back to the reference scatter
    per row for odd-tap filters or non-periodized lengths.
    """

    if taps.size % 2 or length != 2 * coefficients.shape[1]:
        for row in range(coefficients.shape[0]):
            _synthesis_accumulate_reference(coefficients[row], taps, length, out[row])
        return
    coefficient_indices, tap_values = _synthesis_gather_matrices(length, taps)
    for m in range(tap_values.shape[1]):
        out += tap_values[:, m] * coefficients[:, coefficient_indices[:, m]]


def dwt_single(
    signal: np.ndarray, wavelet: str | WaveletFilterBank = "sym2"
) -> tuple[np.ndarray, np.ndarray, bool]:
    """One level of the periodized DWT.

    Returns ``(approximation, detail, padded)`` where ``padded`` indicates the
    input was zero-padded by one element to reach an even length.
    """

    bank = wavelet if isinstance(wavelet, WaveletFilterBank) else get_filter_bank(wavelet)
    values = np.asarray(signal, dtype=np.float64).ravel()
    if values.size < 2:
        raise WaveletError("dwt_single requires a signal with at least 2 elements")
    padded = values.size % 2 == 1
    if padded:
        values = np.concatenate([values, np.zeros(1)])
    approx = _analysis(values, bank.dec_lo)
    detail = _analysis(values, bank.dec_hi)
    return approx, detail, padded


def idwt_single(
    approx: np.ndarray,
    detail: np.ndarray,
    wavelet: str | WaveletFilterBank = "sym2",
    padded: bool = False,
) -> np.ndarray:
    """Invert one level of the periodized DWT."""

    bank = wavelet if isinstance(wavelet, WaveletFilterBank) else get_filter_bank(wavelet)
    approx = np.asarray(approx, dtype=np.float64).ravel()
    detail = np.asarray(detail, dtype=np.float64).ravel()
    if approx.size != detail.size:
        raise WaveletError(
            f"approximation ({approx.size}) and detail ({detail.size}) lengths differ"
        )
    length = 2 * approx.size
    out = np.zeros(length, dtype=np.float64)
    _synthesis_accumulate(approx, bank.dec_lo, length, out)
    _synthesis_accumulate(detail, bank.dec_hi, length, out)
    if padded:
        out = out[:-1]
    return out


def dwt_single_reference(
    signal: np.ndarray, wavelet: str | WaveletFilterBank = "sym2"
) -> tuple[np.ndarray, np.ndarray, bool]:
    """Scalar-loop version of :func:`dwt_single` (equivalence-test ground truth)."""

    bank = wavelet if isinstance(wavelet, WaveletFilterBank) else get_filter_bank(wavelet)
    values = np.asarray(signal, dtype=np.float64).ravel()
    if values.size < 2:
        raise WaveletError("dwt_single requires a signal with at least 2 elements")
    padded = values.size % 2 == 1
    if padded:
        values = np.concatenate([values, np.zeros(1)])
    approx = _analysis_reference(values, bank.dec_lo)
    detail = _analysis_reference(values, bank.dec_hi)
    return approx, detail, padded


def idwt_single_reference(
    approx: np.ndarray,
    detail: np.ndarray,
    wavelet: str | WaveletFilterBank = "sym2",
    padded: bool = False,
) -> np.ndarray:
    """Scalar-loop version of :func:`idwt_single` (equivalence-test ground truth)."""

    bank = wavelet if isinstance(wavelet, WaveletFilterBank) else get_filter_bank(wavelet)
    approx = np.asarray(approx, dtype=np.float64).ravel()
    detail = np.asarray(detail, dtype=np.float64).ravel()
    if approx.size != detail.size:
        raise WaveletError(
            f"approximation ({approx.size}) and detail ({detail.size}) lengths differ"
        )
    length = 2 * approx.size
    out = np.zeros(length, dtype=np.float64)
    _synthesis_accumulate_reference(approx, bank.dec_lo, length, out)
    _synthesis_accumulate_reference(detail, bank.dec_hi, length, out)
    if padded:
        out = out[:-1]
    return out


def max_decomposition_level(length: int, wavelet: str | WaveletFilterBank = "sym2") -> int:
    """Largest decomposition level for a signal of ``length`` elements.

    A level is allowed as long as the signal entering it has at least twice the
    filter length, which guarantees the circular analysis operator stays
    orthogonal.
    """

    bank = wavelet if isinstance(wavelet, WaveletFilterBank) else get_filter_bank(wavelet)
    level = 0
    current = int(length)
    while current >= 2 * bank.length:
        current = (current + 1) // 2
        level += 1
    return level


@dataclass(frozen=True)
class MultiLevelCoefficients:
    """Coefficients of a multi-level DWT.

    ``arrays`` stores, in order, the deepest approximation followed by the
    detail bands from deepest to shallowest (the PyWavelets ``wavedec``
    convention).  ``pad_flags[j]`` records whether the input to level ``j``
    (counting from the shallowest level, ``j == 0`` being the original signal)
    was zero-padded by one element.
    """

    wavelet: str
    arrays: tuple[np.ndarray, ...]
    pad_flags: tuple[bool, ...]
    original_length: int

    @property
    def levels(self) -> int:
        return len(self.arrays) - 1

    @property
    def total_size(self) -> int:
        return int(sum(a.size for a in self.arrays))


def wavedec(
    signal: np.ndarray,
    wavelet: str | WaveletFilterBank = "sym2",
    levels: int | None = 4,
) -> MultiLevelCoefficients:
    """Multi-level periodized wavelet decomposition of a 1-D signal.

    Parameters
    ----------
    signal:
        Flat vector to decompose.
    wavelet:
        Wavelet name or a prebuilt :class:`WaveletFilterBank`.
    levels:
        Number of decomposition levels.  ``None`` uses the maximum level; a
        requested level larger than the maximum is clamped to the maximum (the
        paper observed no benefit beyond four levels, and very small vectors
        cannot support four).
    """

    bank = wavelet if isinstance(wavelet, WaveletFilterBank) else get_filter_bank(wavelet)
    values = np.asarray(signal, dtype=np.float64).ravel()
    if values.size == 0:
        raise WaveletError("cannot decompose an empty signal")
    limit = max_decomposition_level(values.size, bank)
    if levels is None:
        levels = limit
    if levels < 0:
        raise WaveletError("levels must be non-negative")
    levels = min(int(levels), limit)

    details: list[np.ndarray] = []
    pad_flags: list[bool] = []
    current = values
    for _ in range(levels):
        approx, detail, padded = dwt_single(current, bank)
        details.append(detail)
        pad_flags.append(padded)
        current = approx
    arrays = tuple([current] + list(reversed(details)))
    return MultiLevelCoefficients(
        wavelet=bank.name,
        arrays=arrays,
        pad_flags=tuple(pad_flags),
        original_length=values.size,
    )


def waverec(coefficients: MultiLevelCoefficients) -> np.ndarray:
    """Invert :func:`wavedec`, returning the reconstructed flat signal."""

    bank = get_filter_bank(coefficients.wavelet)
    arrays = coefficients.arrays
    if len(arrays) == 1:
        return np.asarray(arrays[0], dtype=np.float64).copy()
    current = np.asarray(arrays[0], dtype=np.float64)
    # Details are stored deepest-first; pad flags are stored shallowest-first.
    for depth, detail in enumerate(arrays[1:]):
        level_index = coefficients.levels - 1 - depth
        padded = coefficients.pad_flags[level_index]
        current = idwt_single(current, detail, bank, padded=padded)
    if current.size != coefficients.original_length:
        raise WaveletError(
            "reconstructed length does not match the original signal length: "
            f"{current.size} != {coefficients.original_length}"
        )
    return current


# -- batched (N, length) variants --------------------------------------------------
def dwt_single_batch(
    signals: np.ndarray, wavelet: str | WaveletFilterBank = "sym2"
) -> tuple[np.ndarray, np.ndarray, bool]:
    """One DWT level over a stacked ``(N, length)`` matrix of signals.

    Returns ``(approximations, details, padded)`` with one row per input row;
    ``padded`` is shared because every row has the same length.  Row ``r`` of
    each output is bit-identical to ``dwt_single(signals[r], wavelet)`` — the
    batched analysis performs the same elementwise tap accumulation, just
    across all rows at once (the arena engine's stacked-coefficient path).
    """

    bank = wavelet if isinstance(wavelet, WaveletFilterBank) else get_filter_bank(wavelet)
    values = np.asarray(signals, dtype=np.float64)
    if values.ndim != 2:
        raise WaveletError(f"dwt_single_batch expects a 2-D matrix, got ndim={values.ndim}")
    if values.shape[1] < 2:
        raise WaveletError("dwt_single_batch requires signals with at least 2 elements")
    padded = values.shape[1] % 2 == 1
    if padded:
        values = np.concatenate([values, np.zeros((values.shape[0], 1))], axis=1)
    approx = _analysis_batch(values, bank.dec_lo)
    detail = _analysis_batch(values, bank.dec_hi)
    return approx, detail, padded


def idwt_single_batch(
    approx: np.ndarray,
    detail: np.ndarray,
    wavelet: str | WaveletFilterBank = "sym2",
    padded: bool = False,
) -> np.ndarray:
    """Invert one DWT level over stacked ``(N, length // 2)`` coefficient rows.

    The inverse of :func:`dwt_single_batch`: row ``r`` of the result is
    bit-identical to ``idwt_single(approx[r], detail[r], wavelet, padded)``.
    """

    bank = wavelet if isinstance(wavelet, WaveletFilterBank) else get_filter_bank(wavelet)
    approx = np.asarray(approx, dtype=np.float64)
    detail = np.asarray(detail, dtype=np.float64)
    if approx.ndim != 2 or detail.ndim != 2:
        raise WaveletError("idwt_single_batch expects 2-D coefficient matrices")
    if approx.shape != detail.shape:
        raise WaveletError(
            f"approximation {approx.shape} and detail {detail.shape} shapes differ"
        )
    length = 2 * approx.shape[1]
    out = np.zeros((approx.shape[0], length), dtype=np.float64)
    _synthesis_accumulate_batch(approx, bank.dec_lo, length, out)
    _synthesis_accumulate_batch(detail, bank.dec_hi, length, out)
    if padded:
        out = out[:, :-1]
    return out


def wavedec_batch(
    signals: np.ndarray,
    wavelet: str | WaveletFilterBank = "sym2",
    levels: int | None = 4,
) -> tuple[list[np.ndarray], tuple[bool, ...]]:
    """Multi-level decomposition of a stacked ``(N, length)`` signal matrix.

    Returns ``(bands, pad_flags)`` where ``bands`` lists 2-D matrices in the
    :func:`wavedec` order (deepest approximation first, then details deepest
    to shallowest) and ``pad_flags`` matches
    :attr:`MultiLevelCoefficients.pad_flags` (identical for every row, since
    all rows share one length).  Row ``r`` of each band is bit-identical to
    the corresponding band of ``wavedec(signals[r], wavelet, levels)``.
    """

    bank = wavelet if isinstance(wavelet, WaveletFilterBank) else get_filter_bank(wavelet)
    values = np.asarray(signals, dtype=np.float64)
    if values.ndim != 2:
        raise WaveletError(f"wavedec_batch expects a 2-D matrix, got ndim={values.ndim}")
    if values.shape[1] == 0:
        raise WaveletError("cannot decompose empty signals")
    limit = max_decomposition_level(values.shape[1], bank)
    if levels is None:
        levels = limit
    if levels < 0:
        raise WaveletError("levels must be non-negative")
    levels = min(int(levels), limit)

    details: list[np.ndarray] = []
    pad_flags: list[bool] = []
    current = values
    for _ in range(levels):
        approx, detail, padded = dwt_single_batch(current, bank)
        details.append(detail)
        pad_flags.append(padded)
        current = approx
    return [current] + list(reversed(details)), tuple(pad_flags)


def waverec_batch(
    bands: list[np.ndarray],
    pad_flags: tuple[bool, ...],
    wavelet: str | WaveletFilterBank = "sym2",
    original_length: int | None = None,
) -> np.ndarray:
    """Invert :func:`wavedec_batch`, returning the ``(N, length)`` signal matrix.

    ``bands`` and ``pad_flags`` follow the :func:`wavedec_batch` conventions;
    ``original_length``, when given, validates the reconstructed width.  Row
    ``r`` of the result is bit-identical to reconstructing row ``r``'s bands
    through :func:`waverec`.
    """

    bank = wavelet if isinstance(wavelet, WaveletFilterBank) else get_filter_bank(wavelet)
    if not bands:
        raise WaveletError("waverec_batch needs at least one coefficient band")
    if len(bands) == 1:
        return np.asarray(bands[0], dtype=np.float64).copy()
    current = np.asarray(bands[0], dtype=np.float64)
    levels = len(bands) - 1
    # Details are stored deepest-first; pad flags are stored shallowest-first.
    for depth, detail in enumerate(bands[1:]):
        padded = pad_flags[levels - 1 - depth]
        current = idwt_single_batch(current, np.asarray(detail, dtype=np.float64), bank, padded=padded)
    if original_length is not None and current.shape[1] != original_length:
        raise WaveletError(
            "reconstructed length does not match the original signal length: "
            f"{current.shape[1]} != {original_length}"
        )
    return current
