"""Discrete wavelet transform with periodic boundary handling.

This is the substrate that replaces PyWavelets in the original JWINS
implementation.  Only what JWINS needs is implemented: the one-dimensional
orthogonal DWT of a flat parameter vector, multi-level decomposition and the
exact inverse.

The analysis operator uses circular (periodized) boundary extension.  For an
even-length signal and orthonormal filters the operator is orthogonal, hence
the synthesis step is simply its transpose and reconstruction is exact up to
floating-point error.  Odd-length inputs are zero-padded by one element at the
level where the odd length occurs; the padding is recorded so the inverse can
trim it again.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.exceptions import WaveletError
from repro.wavelets.filters import WaveletFilterBank, get_filter_bank

__all__ = [
    "MultiLevelCoefficients",
    "dwt_single",
    "idwt_single",
    "max_decomposition_level",
    "wavedec",
    "waverec",
]


def _analysis(signal: np.ndarray, taps: np.ndarray) -> np.ndarray:
    """Circularly filter ``signal`` with ``taps`` and downsample by two."""

    length = signal.size
    half = length // 2
    # Positions (2 * i + k) mod length for i in [0, half) and k in [0, taps).
    starts = 2 * np.arange(half)
    out = np.zeros(half, dtype=np.float64)
    for k, tap in enumerate(taps):
        out += tap * signal[(starts + k) % length]
    return out


def _synthesis_accumulate(
    coefficients: np.ndarray, taps: np.ndarray, length: int, out: np.ndarray
) -> None:
    """Accumulate the transpose of :func:`_analysis` into ``out``."""

    starts = 2 * np.arange(coefficients.size)
    for k, tap in enumerate(taps):
        np.add.at(out, (starts + k) % length, tap * coefficients)


def dwt_single(
    signal: np.ndarray, wavelet: str | WaveletFilterBank = "sym2"
) -> tuple[np.ndarray, np.ndarray, bool]:
    """One level of the periodized DWT.

    Returns ``(approximation, detail, padded)`` where ``padded`` indicates the
    input was zero-padded by one element to reach an even length.
    """

    bank = wavelet if isinstance(wavelet, WaveletFilterBank) else get_filter_bank(wavelet)
    values = np.asarray(signal, dtype=np.float64).ravel()
    if values.size < 2:
        raise WaveletError("dwt_single requires a signal with at least 2 elements")
    padded = values.size % 2 == 1
    if padded:
        values = np.concatenate([values, np.zeros(1)])
    approx = _analysis(values, bank.dec_lo)
    detail = _analysis(values, bank.dec_hi)
    return approx, detail, padded


def idwt_single(
    approx: np.ndarray,
    detail: np.ndarray,
    wavelet: str | WaveletFilterBank = "sym2",
    padded: bool = False,
) -> np.ndarray:
    """Invert one level of the periodized DWT."""

    bank = wavelet if isinstance(wavelet, WaveletFilterBank) else get_filter_bank(wavelet)
    approx = np.asarray(approx, dtype=np.float64).ravel()
    detail = np.asarray(detail, dtype=np.float64).ravel()
    if approx.size != detail.size:
        raise WaveletError(
            f"approximation ({approx.size}) and detail ({detail.size}) lengths differ"
        )
    length = 2 * approx.size
    out = np.zeros(length, dtype=np.float64)
    _synthesis_accumulate(approx, bank.dec_lo, length, out)
    _synthesis_accumulate(detail, bank.dec_hi, length, out)
    if padded:
        out = out[:-1]
    return out


def max_decomposition_level(length: int, wavelet: str | WaveletFilterBank = "sym2") -> int:
    """Largest decomposition level for a signal of ``length`` elements.

    A level is allowed as long as the signal entering it has at least twice the
    filter length, which guarantees the circular analysis operator stays
    orthogonal.
    """

    bank = wavelet if isinstance(wavelet, WaveletFilterBank) else get_filter_bank(wavelet)
    level = 0
    current = int(length)
    while current >= 2 * bank.length:
        current = (current + 1) // 2
        level += 1
    return level


@dataclass(frozen=True)
class MultiLevelCoefficients:
    """Coefficients of a multi-level DWT.

    ``arrays`` stores, in order, the deepest approximation followed by the
    detail bands from deepest to shallowest (the PyWavelets ``wavedec``
    convention).  ``pad_flags[j]`` records whether the input to level ``j``
    (counting from the shallowest level, ``j == 0`` being the original signal)
    was zero-padded by one element.
    """

    wavelet: str
    arrays: tuple[np.ndarray, ...]
    pad_flags: tuple[bool, ...]
    original_length: int

    @property
    def levels(self) -> int:
        return len(self.arrays) - 1

    @property
    def total_size(self) -> int:
        return int(sum(a.size for a in self.arrays))


def wavedec(
    signal: np.ndarray,
    wavelet: str | WaveletFilterBank = "sym2",
    levels: int | None = 4,
) -> MultiLevelCoefficients:
    """Multi-level periodized wavelet decomposition of a 1-D signal.

    Parameters
    ----------
    signal:
        Flat vector to decompose.
    wavelet:
        Wavelet name or a prebuilt :class:`WaveletFilterBank`.
    levels:
        Number of decomposition levels.  ``None`` uses the maximum level; a
        requested level larger than the maximum is clamped to the maximum (the
        paper observed no benefit beyond four levels, and very small vectors
        cannot support four).
    """

    bank = wavelet if isinstance(wavelet, WaveletFilterBank) else get_filter_bank(wavelet)
    values = np.asarray(signal, dtype=np.float64).ravel()
    if values.size == 0:
        raise WaveletError("cannot decompose an empty signal")
    limit = max_decomposition_level(values.size, bank)
    if levels is None:
        levels = limit
    if levels < 0:
        raise WaveletError("levels must be non-negative")
    levels = min(int(levels), limit)

    details: list[np.ndarray] = []
    pad_flags: list[bool] = []
    current = values
    for _ in range(levels):
        approx, detail, padded = dwt_single(current, bank)
        details.append(detail)
        pad_flags.append(padded)
        current = approx
    arrays = tuple([current] + list(reversed(details)))
    return MultiLevelCoefficients(
        wavelet=bank.name,
        arrays=arrays,
        pad_flags=tuple(pad_flags),
        original_length=values.size,
    )


def waverec(coefficients: MultiLevelCoefficients) -> np.ndarray:
    """Invert :func:`wavedec`, returning the reconstructed flat signal."""

    bank = get_filter_bank(coefficients.wavelet)
    arrays = coefficients.arrays
    if len(arrays) == 1:
        return np.asarray(arrays[0], dtype=np.float64).copy()
    current = np.asarray(arrays[0], dtype=np.float64)
    # Details are stored deepest-first; pad flags are stored shallowest-first.
    for depth, detail in enumerate(arrays[1:]):
        level_index = coefficients.levels - 1 - depth
        padded = coefficients.pad_flags[level_index]
        current = idwt_single(current, detail, bank, padded=padded)
    if current.size != coefficients.original_length:
        raise WaveletError(
            "reconstructed length does not match the original signal length: "
            f"{current.size} != {coefficients.original_length}"
        )
    return current
