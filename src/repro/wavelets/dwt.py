"""Discrete wavelet transform with periodic boundary handling.

This is the substrate that replaces PyWavelets in the original JWINS
implementation.  Only what JWINS needs is implemented: the one-dimensional
orthogonal DWT of a flat parameter vector, multi-level decomposition and the
exact inverse.

The analysis operator uses circular (periodized) boundary extension.  For an
even-length signal and orthonormal filters the operator is orthogonal, hence
the synthesis step is simply its transpose and reconstruction is exact up to
floating-point error.  Odd-length inputs are zero-padded by one element at the
level where the odd length occurs; the padding is recorded so the inverse can
trim it again.

The hot path is vectorized without changing a single output bit:

* analysis views the periodically extended signal as a strided window matrix
  (``np.lib.stride_tricks.as_strided``), eliminating the per-tap
  ``(2i + k) % length`` index computation;
* synthesis gathers through index/tap matrices precomputed per
  ``(length, filter)`` and cached across rounds, eliminating the per-tap
  ``np.add.at`` scatter (the slowest numpy primitive in the old loop).

Both paths accumulate taps in exactly the original order, so they are
bit-identical to :func:`dwt_single_reference`/:func:`idwt_single_reference`
(the original scalar-loop implementations, kept as the equivalence-test
ground truth).
"""

from __future__ import annotations

from collections import OrderedDict
from dataclasses import dataclass

import numpy as np

from repro.exceptions import WaveletError
from repro.wavelets.filters import WaveletFilterBank, get_filter_bank

__all__ = [
    "MultiLevelCoefficients",
    "dwt_single",
    "dwt_single_reference",
    "idwt_single",
    "idwt_single_reference",
    "max_decomposition_level",
    "wavedec",
    "waverec",
]


def _analysis_reference(signal: np.ndarray, taps: np.ndarray) -> np.ndarray:
    """Per-tap modulo-gather analysis (the original loop; ground truth)."""

    length = signal.size
    half = length // 2
    # Positions (2 * i + k) mod length for i in [0, half) and k in [0, taps).
    starts = 2 * np.arange(half)
    out = np.zeros(half, dtype=np.float64)
    for k, tap in enumerate(taps):
        out += tap * signal[(starts + k) % length]
    return out


def _synthesis_accumulate_reference(
    coefficients: np.ndarray, taps: np.ndarray, length: int, out: np.ndarray
) -> None:
    """Per-tap ``np.add.at`` synthesis (the original loop; ground truth)."""

    starts = 2 * np.arange(coefficients.size)
    for k, tap in enumerate(taps):
        np.add.at(out, (starts + k) % length, tap * coefficients)


def _analysis(signal: np.ndarray, taps: np.ndarray) -> np.ndarray:
    """Circularly filter ``signal`` with ``taps`` and downsample by two.

    Reads window ``i`` as the strided slice ``extended[2i : 2i + K]`` of the
    cyclically extended signal instead of gathering ``(2i + k) % length`` per
    tap.  Columns are accumulated in tap order, exactly like
    :func:`_analysis_reference`, so the result is bit-identical.
    """

    length = signal.size
    half = length // 2
    window = taps.size
    # The last window starts at 2*(half-1) and reaches 2*half - 2 + window - 1;
    # np.resize repeats the signal cyclically, which is the periodic extension.
    needed = max(length, 2 * half - 2 + window)
    extended = signal if needed == length else np.resize(signal, needed)
    stride = extended.strides[0]
    windows = np.lib.stride_tricks.as_strided(
        extended, shape=(half, window), strides=(2 * stride, stride), writeable=False
    )
    # Start from zeros and accumulate per tap, mirroring the reference loop
    # operation for operation (this keeps even signed zeros bit-identical).
    out = np.zeros(half, dtype=np.float64)
    for k in range(window):
        out += taps[k] * windows[:, k]
    return out


#: LRU cache of synthesis gather matrices keyed by ``(length, filter bytes)``.
#: An entry costs ~16 bytes per output sample per tap pair, so the cache is
#: bounded: least-recently-used entries are evicted beyond this many.  One
#: model uses two filters per decomposition level (well under the cap), so
#: steady-state rounds always hit.
_SYNTHESIS_CACHE_MAX_ENTRIES = 64
_SYNTHESIS_GATHER_CACHE: "OrderedDict[tuple[int, bytes], tuple[np.ndarray, np.ndarray]]" = (
    OrderedDict()
)


def _synthesis_gather_matrices(
    length: int, taps: np.ndarray
) -> tuple[np.ndarray, np.ndarray]:
    """Precompute the synthesis gather for an even ``length`` and even-tap filter.

    Output position ``j`` of the transposed analysis operator receives exactly
    one contribution per parity-matching tap ``k``: ``taps[k] *
    coefficients[i]`` with ``2i + k = j (mod length)``.  Returns
    ``(coefficient_indices, tap_values)``, both of shape
    ``(length, taps.size // 2)``, with taps ordered ascending per row so the
    accumulation order matches :func:`_synthesis_accumulate_reference`.
    """

    key = (length, taps.tobytes())
    cached = _SYNTHESIS_GATHER_CACHE.get(key)
    if cached is not None:
        _SYNTHESIS_GATHER_CACHE.move_to_end(key)
        return cached
    window = taps.size
    outputs = np.arange(length)[:, None]
    # Row j uses taps of j's parity, ascending: k = (j % 2) + 2m.
    tap_indices = (outputs % 2) + 2 * np.arange(window // 2)[None, :]
    coefficient_indices = ((outputs - tap_indices) % length) // 2
    # Fortran order makes each per-tap column contiguous for the gather loop.
    matrices = (
        np.asfortranarray(coefficient_indices),
        np.asfortranarray(taps[tap_indices]),
    )
    _SYNTHESIS_GATHER_CACHE[key] = matrices
    while len(_SYNTHESIS_GATHER_CACHE) > _SYNTHESIS_CACHE_MAX_ENTRIES:
        _SYNTHESIS_GATHER_CACHE.popitem(last=False)
    return matrices


def _synthesis_accumulate(
    coefficients: np.ndarray, taps: np.ndarray, length: int, out: np.ndarray
) -> None:
    """Accumulate the transpose of :func:`_analysis` into ``out``.

    Uses the cached gather matrices when the filter has an even number of taps
    (every shipped wavelet does) and ``length == 2 * coefficients.size`` (the
    periodized invariant); falls back to the reference scatter otherwise.
    Accumulation follows ascending tap order per output, making the result
    bit-identical to :func:`_synthesis_accumulate_reference`.
    """

    if taps.size % 2 or length != 2 * coefficients.size:
        _synthesis_accumulate_reference(coefficients, taps, length, out)
        return
    coefficient_indices, tap_values = _synthesis_gather_matrices(length, taps)
    for m in range(tap_values.shape[1]):
        out += tap_values[:, m] * coefficients[coefficient_indices[:, m]]


def dwt_single(
    signal: np.ndarray, wavelet: str | WaveletFilterBank = "sym2"
) -> tuple[np.ndarray, np.ndarray, bool]:
    """One level of the periodized DWT.

    Returns ``(approximation, detail, padded)`` where ``padded`` indicates the
    input was zero-padded by one element to reach an even length.
    """

    bank = wavelet if isinstance(wavelet, WaveletFilterBank) else get_filter_bank(wavelet)
    values = np.asarray(signal, dtype=np.float64).ravel()
    if values.size < 2:
        raise WaveletError("dwt_single requires a signal with at least 2 elements")
    padded = values.size % 2 == 1
    if padded:
        values = np.concatenate([values, np.zeros(1)])
    approx = _analysis(values, bank.dec_lo)
    detail = _analysis(values, bank.dec_hi)
    return approx, detail, padded


def idwt_single(
    approx: np.ndarray,
    detail: np.ndarray,
    wavelet: str | WaveletFilterBank = "sym2",
    padded: bool = False,
) -> np.ndarray:
    """Invert one level of the periodized DWT."""

    bank = wavelet if isinstance(wavelet, WaveletFilterBank) else get_filter_bank(wavelet)
    approx = np.asarray(approx, dtype=np.float64).ravel()
    detail = np.asarray(detail, dtype=np.float64).ravel()
    if approx.size != detail.size:
        raise WaveletError(
            f"approximation ({approx.size}) and detail ({detail.size}) lengths differ"
        )
    length = 2 * approx.size
    out = np.zeros(length, dtype=np.float64)
    _synthesis_accumulate(approx, bank.dec_lo, length, out)
    _synthesis_accumulate(detail, bank.dec_hi, length, out)
    if padded:
        out = out[:-1]
    return out


def dwt_single_reference(
    signal: np.ndarray, wavelet: str | WaveletFilterBank = "sym2"
) -> tuple[np.ndarray, np.ndarray, bool]:
    """Scalar-loop version of :func:`dwt_single` (equivalence-test ground truth)."""

    bank = wavelet if isinstance(wavelet, WaveletFilterBank) else get_filter_bank(wavelet)
    values = np.asarray(signal, dtype=np.float64).ravel()
    if values.size < 2:
        raise WaveletError("dwt_single requires a signal with at least 2 elements")
    padded = values.size % 2 == 1
    if padded:
        values = np.concatenate([values, np.zeros(1)])
    approx = _analysis_reference(values, bank.dec_lo)
    detail = _analysis_reference(values, bank.dec_hi)
    return approx, detail, padded


def idwt_single_reference(
    approx: np.ndarray,
    detail: np.ndarray,
    wavelet: str | WaveletFilterBank = "sym2",
    padded: bool = False,
) -> np.ndarray:
    """Scalar-loop version of :func:`idwt_single` (equivalence-test ground truth)."""

    bank = wavelet if isinstance(wavelet, WaveletFilterBank) else get_filter_bank(wavelet)
    approx = np.asarray(approx, dtype=np.float64).ravel()
    detail = np.asarray(detail, dtype=np.float64).ravel()
    if approx.size != detail.size:
        raise WaveletError(
            f"approximation ({approx.size}) and detail ({detail.size}) lengths differ"
        )
    length = 2 * approx.size
    out = np.zeros(length, dtype=np.float64)
    _synthesis_accumulate_reference(approx, bank.dec_lo, length, out)
    _synthesis_accumulate_reference(detail, bank.dec_hi, length, out)
    if padded:
        out = out[:-1]
    return out


def max_decomposition_level(length: int, wavelet: str | WaveletFilterBank = "sym2") -> int:
    """Largest decomposition level for a signal of ``length`` elements.

    A level is allowed as long as the signal entering it has at least twice the
    filter length, which guarantees the circular analysis operator stays
    orthogonal.
    """

    bank = wavelet if isinstance(wavelet, WaveletFilterBank) else get_filter_bank(wavelet)
    level = 0
    current = int(length)
    while current >= 2 * bank.length:
        current = (current + 1) // 2
        level += 1
    return level


@dataclass(frozen=True)
class MultiLevelCoefficients:
    """Coefficients of a multi-level DWT.

    ``arrays`` stores, in order, the deepest approximation followed by the
    detail bands from deepest to shallowest (the PyWavelets ``wavedec``
    convention).  ``pad_flags[j]`` records whether the input to level ``j``
    (counting from the shallowest level, ``j == 0`` being the original signal)
    was zero-padded by one element.
    """

    wavelet: str
    arrays: tuple[np.ndarray, ...]
    pad_flags: tuple[bool, ...]
    original_length: int

    @property
    def levels(self) -> int:
        return len(self.arrays) - 1

    @property
    def total_size(self) -> int:
        return int(sum(a.size for a in self.arrays))


def wavedec(
    signal: np.ndarray,
    wavelet: str | WaveletFilterBank = "sym2",
    levels: int | None = 4,
) -> MultiLevelCoefficients:
    """Multi-level periodized wavelet decomposition of a 1-D signal.

    Parameters
    ----------
    signal:
        Flat vector to decompose.
    wavelet:
        Wavelet name or a prebuilt :class:`WaveletFilterBank`.
    levels:
        Number of decomposition levels.  ``None`` uses the maximum level; a
        requested level larger than the maximum is clamped to the maximum (the
        paper observed no benefit beyond four levels, and very small vectors
        cannot support four).
    """

    bank = wavelet if isinstance(wavelet, WaveletFilterBank) else get_filter_bank(wavelet)
    values = np.asarray(signal, dtype=np.float64).ravel()
    if values.size == 0:
        raise WaveletError("cannot decompose an empty signal")
    limit = max_decomposition_level(values.size, bank)
    if levels is None:
        levels = limit
    if levels < 0:
        raise WaveletError("levels must be non-negative")
    levels = min(int(levels), limit)

    details: list[np.ndarray] = []
    pad_flags: list[bool] = []
    current = values
    for _ in range(levels):
        approx, detail, padded = dwt_single(current, bank)
        details.append(detail)
        pad_flags.append(padded)
        current = approx
    arrays = tuple([current] + list(reversed(details)))
    return MultiLevelCoefficients(
        wavelet=bank.name,
        arrays=arrays,
        pad_flags=tuple(pad_flags),
        original_length=values.size,
    )


def waverec(coefficients: MultiLevelCoefficients) -> np.ndarray:
    """Invert :func:`wavedec`, returning the reconstructed flat signal."""

    bank = get_filter_bank(coefficients.wavelet)
    arrays = coefficients.arrays
    if len(arrays) == 1:
        return np.asarray(arrays[0], dtype=np.float64).copy()
    current = np.asarray(arrays[0], dtype=np.float64)
    # Details are stored deepest-first; pad flags are stored shallowest-first.
    for depth, detail in enumerate(arrays[1:]):
        level_index = coefficients.levels - 1 - depth
        padded = coefficients.pad_flags[level_index]
        current = idwt_single(current, detail, bank, padded=padded)
    if current.size != coefficients.original_length:
        raise WaveletError(
            "reconstructed length does not match the original signal length: "
            f"{current.size} != {coefficients.original_length}"
        )
    return current
