"""Fast-Fourier-transform representation of a flat model vector.

The paper's Figure 2 compares sparsification in the wavelet domain against
sparsification in the FFT domain and plain random sampling of parameters.
This module provides the FFT counterpart: the forward transform maps a real
vector of length ``n`` onto a real coefficient vector of the same length
(packed real and imaginary parts of the half-spectrum) so that the downstream
sparsification code can treat wavelet and Fourier coefficients identically.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.exceptions import WaveletError

__all__ = ["FourierLayout", "fft_forward", "fft_inverse"]


@dataclass(frozen=True)
class FourierLayout:
    """Metadata describing how a real FFT spectrum was packed."""

    original_length: int

    @property
    def spectrum_bins(self) -> int:
        return self.original_length // 2 + 1


def fft_forward(signal: np.ndarray) -> tuple[np.ndarray, FourierLayout]:
    """Transform ``signal`` to a real coefficient vector of equal length.

    The real FFT of a length-``n`` real signal has ``n // 2 + 1`` complex bins.
    The DC bin is always real, and for even ``n`` the Nyquist bin is real too,
    so the packed representation ``[real parts | imaginary parts of interior
    bins]`` has exactly ``n`` degrees of freedom.
    """

    values = np.asarray(signal, dtype=np.float64).ravel()
    if values.size == 0:
        raise WaveletError("cannot transform an empty signal")
    spectrum = np.fft.rfft(values)
    layout = FourierLayout(original_length=values.size)
    interior = spectrum[1 : values.size - values.size // 2]
    packed = np.concatenate([spectrum.real, interior.imag])
    if packed.size != values.size:  # pragma: no cover - defensive invariant
        raise WaveletError("packed FFT representation has unexpected size")
    return packed, layout


def fft_inverse(packed: np.ndarray, layout: FourierLayout) -> np.ndarray:
    """Invert :func:`fft_forward`."""

    values = np.asarray(packed, dtype=np.float64).ravel()
    length = layout.original_length
    if values.size != length:
        raise WaveletError(
            f"packed FFT vector has {values.size} elements, expected {length}"
        )
    bins = layout.spectrum_bins
    real = values[:bins]
    interior_count = length - bins
    imag = np.zeros(bins, dtype=np.float64)
    imag[1 : 1 + interior_count] = values[bins:]
    spectrum = real + 1j * imag
    return np.fft.irfft(spectrum, n=length)
