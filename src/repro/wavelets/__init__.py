"""Wavelet substrate: filter banks, DWT/IDWT and coefficient-domain transforms."""

from repro.wavelets.dwt import (
    MultiLevelCoefficients,
    dwt_single,
    idwt_single,
    max_decomposition_level,
    wavedec,
    waverec,
)
from repro.wavelets.filters import WaveletFilterBank, available_wavelets, get_filter_bank
from repro.wavelets.fourier import FourierLayout, fft_forward, fft_inverse
from repro.wavelets.packing import CoefficientLayout, pack_coefficients, unpack_coefficients
from repro.wavelets.transform import (
    FourierTransform,
    IdentityTransform,
    ModelTransform,
    WaveletTransform,
    make_transform,
)

__all__ = [
    "MultiLevelCoefficients",
    "dwt_single",
    "idwt_single",
    "max_decomposition_level",
    "wavedec",
    "waverec",
    "WaveletFilterBank",
    "available_wavelets",
    "get_filter_bank",
    "FourierLayout",
    "fft_forward",
    "fft_inverse",
    "CoefficientLayout",
    "pack_coefficients",
    "unpack_coefficients",
    "FourierTransform",
    "IdentityTransform",
    "ModelTransform",
    "WaveletTransform",
    "make_transform",
]
