"""Orthogonal wavelet filter banks.

The paper uses a four-level discrete wavelet decomposition with Symlet-2
(Sym2) wavelets (PyWavelets' ``sym2``).  This module provides the standard
orthonormal filter coefficients for the Haar, Daubechies and Symlet families
and derives the quadrature-mirror high-pass and reconstruction filters from
the decomposition low-pass filter.

Note that, as in PyWavelets, ``sym2``/``sym3`` coincide with ``db2``/``db3``:
the "least asymmetric" construction only differs from plain Daubechies
wavelets for order >= 4.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro.exceptions import WaveletError

__all__ = ["WaveletFilterBank", "available_wavelets", "get_filter_bank"]

_SQRT2 = float(np.sqrt(2.0))

# Decomposition low-pass filters (orthonormal, PyWavelets coefficient order).
_DEC_LO: dict[str, tuple[float, ...]] = {
    "haar": (1.0 / _SQRT2, 1.0 / _SQRT2),
    "db2": (
        -0.12940952255092145,
        0.22414386804185735,
        0.836516303737469,
        0.48296291314469025,
    ),
    "db3": (
        0.035226291882100656,
        -0.08544127388224149,
        -0.13501102001039084,
        0.4598775021193313,
        0.8068915093133388,
        0.3326705529509569,
    ),
    "db4": (
        -0.010597401784997278,
        0.032883011666982945,
        0.030841381835986965,
        -0.18703481171888114,
        -0.02798376941698385,
        0.6308807679295904,
        0.7148465705525415,
        0.23037781330885523,
    ),
    "sym4": (
        -0.07576571478927333,
        -0.02963552764599851,
        0.49761866763201545,
        0.8037387518059161,
        0.29785779560527736,
        -0.09921954357684722,
        -0.012603967262037833,
        0.0322231006040427,
    ),
}
# Symlets of order 2 and 3 are identical to the corresponding Daubechies wavelets.
_ALIASES = {"db1": "haar", "sym2": "db2", "sym3": "db3"}


@dataclass(frozen=True)
class WaveletFilterBank:
    """The four filters of an orthogonal wavelet.

    Attributes
    ----------
    name:
        Canonical wavelet name (aliases such as ``sym2`` are preserved as the
        requested name).
    dec_lo, dec_hi:
        Decomposition (analysis) low-pass and high-pass filters.
    rec_lo, rec_hi:
        Reconstruction (synthesis) filters; for orthogonal wavelets these are
        the time-reversed decomposition filters.
    """

    name: str
    dec_lo: np.ndarray = field(repr=False)
    dec_hi: np.ndarray = field(repr=False)
    rec_lo: np.ndarray = field(repr=False)
    rec_hi: np.ndarray = field(repr=False)

    @property
    def length(self) -> int:
        """Filter length (number of taps)."""

        return int(self.dec_lo.size)


def available_wavelets() -> list[str]:
    """Return the names of all supported wavelets (including aliases)."""

    return sorted(set(_DEC_LO) | set(_ALIASES))


def _quadrature_mirror(dec_lo: np.ndarray) -> np.ndarray:
    """Derive the decomposition high-pass filter from the low-pass filter."""

    taps = dec_lo.size
    signs = np.array([(-1.0) ** k for k in range(taps)])
    return signs * dec_lo[::-1]


def get_filter_bank(name: str) -> WaveletFilterBank:
    """Return the :class:`WaveletFilterBank` for wavelet ``name``.

    Raises
    ------
    WaveletError
        If the wavelet is not one of :func:`available_wavelets`.
    """

    key = name.lower()
    canonical = _ALIASES.get(key, key)
    if canonical not in _DEC_LO:
        raise WaveletError(
            f"unknown wavelet {name!r}; available: {', '.join(available_wavelets())}"
        )
    dec_lo = np.asarray(_DEC_LO[canonical], dtype=np.float64)
    dec_hi = _quadrature_mirror(dec_lo)
    return WaveletFilterBank(
        name=key,
        dec_lo=dec_lo,
        dec_hi=dec_hi,
        rec_lo=dec_lo[::-1].copy(),
        rec_hi=dec_hi[::-1].copy(),
    )
