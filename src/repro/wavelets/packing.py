"""Packing multi-level wavelet coefficients into a single flat vector.

JWINS ranks, sparsifies, transmits and averages wavelet coefficients as one
flat vector (the same way it treats the model parameters themselves).  The
:class:`CoefficientLayout` records how that flat vector maps back onto the
per-level coefficient bands so the inverse transform can be applied after
averaging.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.exceptions import WaveletError
from repro.wavelets.dwt import MultiLevelCoefficients

__all__ = ["CoefficientLayout", "pack_coefficients", "unpack_coefficients"]


@dataclass(frozen=True)
class CoefficientLayout:
    """Shape metadata needed to unpack a flat coefficient vector."""

    wavelet: str
    band_sizes: tuple[int, ...]
    pad_flags: tuple[bool, ...]
    original_length: int

    @property
    def total_size(self) -> int:
        return int(sum(self.band_sizes))

    @property
    def levels(self) -> int:
        return len(self.band_sizes) - 1

    def band_slices(self) -> list[slice]:
        """Return the slice of the flat vector occupied by each band."""

        slices: list[slice] = []
        offset = 0
        for size in self.band_sizes:
            slices.append(slice(offset, offset + size))
            offset += size
        return slices


def pack_coefficients(
    coefficients: MultiLevelCoefficients,
) -> tuple[np.ndarray, CoefficientLayout]:
    """Flatten ``coefficients`` into ``(vector, layout)``."""

    vector = np.concatenate([np.asarray(a, dtype=np.float64).ravel() for a in coefficients.arrays])
    layout = CoefficientLayout(
        wavelet=coefficients.wavelet,
        band_sizes=tuple(int(a.size) for a in coefficients.arrays),
        pad_flags=coefficients.pad_flags,
        original_length=coefficients.original_length,
    )
    return vector, layout


def unpack_coefficients(
    vector: np.ndarray, layout: CoefficientLayout
) -> MultiLevelCoefficients:
    """Rebuild :class:`MultiLevelCoefficients` from a flat vector and its layout."""

    values = np.asarray(vector, dtype=np.float64).ravel()
    if values.size != layout.total_size:
        raise WaveletError(
            f"coefficient vector has {values.size} elements, layout expects {layout.total_size}"
        )
    arrays: list[np.ndarray] = []
    for band in layout.band_slices():
        arrays.append(values[band].copy())
    return MultiLevelCoefficients(
        wavelet=layout.wavelet,
        arrays=tuple(arrays),
        pad_flags=layout.pad_flags,
        original_length=layout.original_length,
    )
