"""High-level transforms between the parameter domain and a coefficient domain.

JWINS' parameter ranking, selection and averaging all operate on a flat
coefficient vector.  The :class:`ModelTransform` interface abstracts which
domain that vector lives in:

* :class:`WaveletTransform` — the JWINS default (four-level Sym2 DWT);
* :class:`FourierTransform` — used in the Figure 2 comparison;
* :class:`IdentityTransform` — no transform at all, which turns JWINS into a
  plain TopK-on-parameter-changes scheme (the "JWINS without wavelet"
  ablation of Figure 8).

All transforms are linear and map a length-``n`` parameter vector to a
coefficient vector whose length is reported by :meth:`ModelTransform.coefficient_size`.
"""

from __future__ import annotations

from abc import ABC, abstractmethod

import numpy as np

from repro.exceptions import WaveletError
from repro.wavelets.dwt import (
    max_decomposition_level,
    wavedec,
    wavedec_batch,
    waverec,
    waverec_batch,
)
from repro.wavelets.fourier import FourierLayout, fft_forward, fft_inverse
from repro.wavelets.packing import CoefficientLayout, pack_coefficients, unpack_coefficients

__all__ = [
    "FourierTransform",
    "IdentityTransform",
    "ModelTransform",
    "WaveletTransform",
    "make_transform",
]


class ModelTransform(ABC):
    """Invertible linear map between parameter vectors and coefficient vectors."""

    def __init__(self, model_size: int) -> None:
        if model_size <= 0:
            raise WaveletError("model_size must be positive")
        self._model_size = int(model_size)

    @property
    def model_size(self) -> int:
        """Length of the parameter vectors this transform accepts."""

        return self._model_size

    @abstractmethod
    def coefficient_size(self) -> int:
        """Length of the coefficient vectors produced by :meth:`forward`."""

    @abstractmethod
    def forward(self, vector: np.ndarray) -> np.ndarray:
        """Map a parameter vector to its coefficient representation."""

    @abstractmethod
    def inverse(self, coefficients: np.ndarray) -> np.ndarray:
        """Map a coefficient vector back to the parameter domain."""

    def _check_input(self, vector: np.ndarray) -> np.ndarray:
        values = np.asarray(vector, dtype=np.float64).ravel()
        if values.size != self._model_size:
            raise WaveletError(
                f"expected a vector of length {self._model_size}, got {values.size}"
            )
        return values

    # -- batched (N, size) entry points -------------------------------------------
    def forward_batch(self, matrix: np.ndarray) -> np.ndarray:
        """Map a stacked ``(N, model_size)`` matrix to ``(N, coefficient_size)``.

        Row ``r`` of the result equals ``forward(matrix[r])`` bit for bit —
        that contract is what lets the arena engine batch DWT calls over all
        nodes and stay byte-identical to the per-node path.  The default
        implementation simply loops over rows; transforms with a true batched
        kernel (:class:`WaveletTransform`) override it.
        """

        matrix = self._check_batch(matrix, self._model_size)
        return np.stack([self.forward(row) for row in matrix])

    def inverse_batch(self, coefficients: np.ndarray) -> np.ndarray:
        """Map stacked ``(N, coefficient_size)`` rows back to ``(N, model_size)``.

        The inverse of :meth:`forward_batch`, with the same per-row
        bit-identity contract to :meth:`inverse`; the default loops over rows.
        """

        coefficients = self._check_batch(coefficients, self.coefficient_size())
        return np.stack([self.inverse(row) for row in coefficients])

    def _check_batch(self, matrix: np.ndarray, width: int) -> np.ndarray:
        values = np.asarray(matrix, dtype=np.float64)
        if values.ndim != 2 or values.shape[1] != width:
            raise WaveletError(
                f"expected an (N, {width}) matrix, got shape {values.shape}"
            )
        return values


class IdentityTransform(ModelTransform):
    """The trivial transform: coefficients are the parameters themselves."""

    def coefficient_size(self) -> int:
        return self._model_size

    def forward(self, vector: np.ndarray) -> np.ndarray:
        return self._check_input(vector).copy()

    def inverse(self, coefficients: np.ndarray) -> np.ndarray:
        return self._check_input(coefficients).copy()

    def forward_batch(self, matrix: np.ndarray) -> np.ndarray:
        """Copy the stacked rows through unchanged (trivially bit-identical)."""

        return self._check_batch(matrix, self._model_size).copy()

    def inverse_batch(self, coefficients: np.ndarray) -> np.ndarray:
        """Copy the stacked rows through unchanged (trivially bit-identical)."""

        return self._check_batch(coefficients, self._model_size).copy()


class WaveletTransform(ModelTransform):
    """Multi-level DWT of the flat parameter vector (JWINS default).

    Parameters
    ----------
    model_size:
        Number of model parameters.
    wavelet:
        Wavelet family name (default ``sym2`` as in the paper).
    levels:
        Number of decomposition levels (default 4 as in the paper); clamped to
        the maximum supported by ``model_size``.
    """

    def __init__(self, model_size: int, wavelet: str = "sym2", levels: int = 4) -> None:
        super().__init__(model_size)
        self.wavelet = wavelet
        self.levels = min(int(levels), max_decomposition_level(model_size, wavelet))
        # The coefficient layout only depends on the model size, so compute it
        # once from a probe vector and reuse it for every forward/inverse call.
        probe = wavedec(np.zeros(model_size), wavelet, self.levels)
        _, self._layout = pack_coefficients(probe)

    @property
    def layout(self) -> CoefficientLayout:
        """Band layout of the packed coefficient vector."""

        return self._layout

    def coefficient_size(self) -> int:
        return self._layout.total_size

    def forward(self, vector: np.ndarray) -> np.ndarray:
        values = self._check_input(vector)
        coefficients = wavedec(values, self.wavelet, self.levels)
        packed, _ = pack_coefficients(coefficients)
        return packed

    def inverse(self, coefficients: np.ndarray) -> np.ndarray:
        unpacked = unpack_coefficients(coefficients, self._layout)
        return waverec(unpacked)

    def forward_batch(self, matrix: np.ndarray) -> np.ndarray:
        """Batched DWT of stacked parameter rows (one kernel pass, all nodes).

        Decomposes the whole ``(N, model_size)`` matrix through
        :func:`~repro.wavelets.dwt.wavedec_batch` and packs the bands along
        axis 1 — row ``r`` is bit-identical to ``forward(matrix[r])`` because
        the batched analysis accumulates taps in the same elementwise order
        and the band concatenation mirrors the single-row packing.
        """

        matrix = self._check_batch(matrix, self._model_size)
        bands, pad_flags = wavedec_batch(matrix, self.wavelet, self.levels)
        if pad_flags != self._layout.pad_flags or tuple(
            band.shape[1] for band in bands
        ) != self._layout.band_sizes:
            raise WaveletError("batched decomposition disagrees with the probe layout")
        return np.concatenate(bands, axis=1)

    def inverse_batch(self, coefficients: np.ndarray) -> np.ndarray:
        """Batched inverse DWT of stacked coefficient rows (arena aggregate path).

        Unpacks along axis 1 using the precomputed layout and reconstructs
        every row in one :func:`~repro.wavelets.dwt.waverec_batch` pass, bit
        for bit equal to per-row :meth:`inverse` calls.
        """

        coefficients = self._check_batch(coefficients, self.coefficient_size())
        bands = [coefficients[:, band] for band in self._layout.band_slices()]
        return waverec_batch(
            bands, self._layout.pad_flags, self.wavelet, self._layout.original_length
        )


class FourierTransform(ModelTransform):
    """Real FFT of the flat parameter vector (Figure 2 baseline)."""

    def __init__(self, model_size: int) -> None:
        super().__init__(model_size)
        self._layout = FourierLayout(original_length=model_size)

    def coefficient_size(self) -> int:
        return self._model_size

    def forward(self, vector: np.ndarray) -> np.ndarray:
        packed, _ = fft_forward(self._check_input(vector))
        return packed

    def inverse(self, coefficients: np.ndarray) -> np.ndarray:
        values = np.asarray(coefficients, dtype=np.float64).ravel()
        return fft_inverse(values, self._layout)


def make_transform(
    name: str, model_size: int, wavelet: str = "sym2", levels: int = 4
) -> ModelTransform:
    """Factory for transforms by name (``"wavelet"``, ``"fft"`` or ``"identity"``)."""

    key = name.lower()
    if key == "wavelet":
        return WaveletTransform(model_size, wavelet=wavelet, levels=levels)
    if key in {"fft", "fourier"}:
        return FourierTransform(model_size)
    if key in {"identity", "none"}:
        return IdentityTransform(model_size)
    raise WaveletError(f"unknown transform {name!r}; expected 'wavelet', 'fft' or 'identity'")
