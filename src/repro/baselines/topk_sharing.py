"""TopK parameter sparsification baseline.

Plain TopK in the parameter domain with residual accumulation and a fixed
sharing fraction — the scheme the paper's ablation calls "JWINS without
wavelet" and discards because it over-fits to local data.  It is implemented
as a thin configuration of :class:`~repro.core.jwins.JwinsScheme`, which makes
the relationship explicit and keeps a single, well-tested code path.
"""

from __future__ import annotations

from repro.core.config import JwinsConfig
from repro.core.cutoff import CutoffDistribution
from repro.core.jwins import JwinsScheme

__all__ = ["TopKSharingScheme", "topk_sharing_factory"]


class TopKSharingScheme(JwinsScheme):
    """TopK-by-accumulated-change parameter sharing with a fixed fraction."""

    name = "topk-sharing"

    def __init__(
        self,
        node_id: int,
        model_size: int,
        seed: int,
        fraction: float = 0.37,
        use_accumulation: bool = True,
    ) -> None:
        config = JwinsConfig(
            cutoff=CutoffDistribution.fixed(fraction),
            use_wavelet=False,
            use_accumulation=use_accumulation,
            use_random_cutoff=False,
        )
        super().__init__(node_id, model_size, seed, config)


def topk_sharing_factory(fraction: float = 0.37, use_accumulation: bool = True):
    """Factory for :class:`TopKSharingScheme` nodes."""

    def factory(node_id: int, model_size: int, seed: int) -> TopKSharingScheme:
        return TopKSharingScheme(
            node_id, model_size, seed, fraction=fraction, use_accumulation=use_accumulation
        )

    return factory
