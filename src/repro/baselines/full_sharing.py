"""Full-sharing baseline (plain D-PSGD communication).

Every round the node sends its entire trained parameter vector to every
neighbor and computes the Metropolis–Hastings weighted average of its own and
all received models.  This is the accuracy reference of the paper — the best
models, at the highest communication cost.
"""

from __future__ import annotations

import numpy as np

from repro.compression.float_codec import FloatCodec, RawFloatCodec
from repro.compression.sizing import PayloadSize
from repro.core.interface import Message, RoundContext, SharingScheme
from repro.exceptions import SimulationError

__all__ = ["FullSharingScheme", "full_sharing_factory"]

MESSAGE_KIND = "full-model"


class FullSharingScheme(SharingScheme):
    """Share the complete model with all neighbors each round."""

    name = "full-sharing"

    def __init__(self, node_id: int, model_size: int, seed: int, compress: bool = True) -> None:
        self.node_id = int(node_id)
        self.model_size = int(model_size)
        self._codec = FloatCodec() if compress else RawFloatCodec()

    def prepare(self, context: RoundContext) -> Message:
        values = np.asarray(context.params_trained, dtype=np.float64)
        compressed = self._codec.compress(values)
        size = PayloadSize(values_bytes=compressed.size_bytes, metadata_bytes=0)
        return Message(
            sender=self.node_id,
            kind=MESSAGE_KIND,
            payload={"values": values.copy()},
            size=size,
            shared_fraction=1.0,
        )

    def aggregate(self, context: RoundContext, messages: list[Message]) -> np.ndarray:
        # Own-centered form of the weighted average: a neighbor whose message
        # never arrived implicitly contributes the node's own model, so the
        # scheme degrades gracefully under message loss or churn.
        own = np.asarray(context.params_trained, dtype=np.float64)
        result = own.copy()
        total_weight = context.self_weight
        for message in messages:
            if message.kind != MESSAGE_KIND:
                raise SimulationError(
                    f"full sharing received an incompatible message of kind {message.kind!r}"
                )
            weight = context.neighbor_weights.get(message.sender)
            if weight is None:
                raise SimulationError(
                    f"received a message from non-neighbor node {message.sender}"
                )
            result += weight * (np.asarray(message.payload["values"], dtype=np.float64) - own)
            total_weight += weight
        if total_weight > 1.0 + 1e-6:
            raise SimulationError(
                f"mixing weights must not exceed 1 for a stable average, got {total_weight}"
            )
        return result


def full_sharing_factory(compress: bool = True):
    """Factory for :class:`FullSharingScheme` nodes."""

    def factory(node_id: int, model_size: int, seed: int) -> FullSharingScheme:
        return FullSharingScheme(node_id, model_size, seed, compress=compress)

    return factory
