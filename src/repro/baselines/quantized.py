"""Quantized full sharing: the quantization branch of ML compression.

The paper's background section (II-B) splits communication compression into
sparsification (JWINS, random sampling, TopK, CHOCO's operator) and
quantization (QSGD and friends).  This baseline covers the latter family: each
node shares its *entire* model every round, but quantized with the QSGD
stochastic quantizer to a few bits per parameter.  Aggregation is plain
D-PSGD weighted averaging over the dequantized models, so accuracy degrades
gracefully with the bit width while bytes shrink roughly by ``32 / (bits+1)``.
"""

from __future__ import annotations

import numpy as np

from repro.compression.quantization import QsgdQuantizer
from repro.compression.sizing import PayloadSize
from repro.core.interface import Message, RoundContext, SharingScheme
from repro.exceptions import SimulationError

__all__ = ["QuantizedSharingScheme", "quantized_sharing_factory"]

MESSAGE_KIND = "quantized-full-model"


class QuantizedSharingScheme(SharingScheme):
    """Share the full model quantized to ``bits`` bits per parameter.

    As in practical QSGD deployments, the parameter vector is quantized in
    buckets (one scaling norm per ``bucket_size`` consecutive parameters)
    rather than with a single global norm — a single norm over tens of
    thousands of parameters would make the per-coordinate quantization noise
    overwhelm the signal.
    """

    name = "quantized-sharing"

    def __init__(
        self,
        node_id: int,
        model_size: int,
        seed: int,
        bits: int = 4,
        bucket_size: int = 256,
    ) -> None:
        if bucket_size <= 0:
            raise SimulationError("bucket_size must be positive")
        self.node_id = int(node_id)
        self.model_size = int(model_size)
        self.bits = int(bits)
        self.bucket_size = int(bucket_size)
        self._quantizer = QsgdQuantizer(bits=bits, rng=np.random.default_rng(seed))

    def prepare(self, context: RoundContext) -> Message:
        trained = np.asarray(context.params_trained, dtype=np.float64)
        dequantized = np.empty_like(trained)
        values_bytes = 0
        for start in range(0, trained.size, self.bucket_size):
            bucket = trained[start : start + self.bucket_size]
            quantized = self._quantizer.quantize(bucket)
            dequantized[start : start + self.bucket_size] = self._quantizer.dequantize(quantized)
            values_bytes += quantized.size_bytes
        size = PayloadSize(values_bytes=values_bytes, metadata_bytes=0)
        return Message(
            sender=self.node_id,
            kind=MESSAGE_KIND,
            payload={"values": dequantized, "bits": self.bits},
            size=size,
            shared_fraction=1.0,
        )

    def aggregate(self, context: RoundContext, messages: list[Message]) -> np.ndarray:
        # Own-centered weighted average (see FullSharingScheme.aggregate): a
        # missing neighbor message implicitly contributes the own model.
        own = np.asarray(context.params_trained, dtype=np.float64)
        result = own.copy()
        total_weight = context.self_weight
        for message in messages:
            if message.kind != MESSAGE_KIND:
                raise SimulationError(
                    f"quantized sharing received an incompatible message of kind {message.kind!r}"
                )
            weight = context.neighbor_weights.get(message.sender)
            if weight is None:
                raise SimulationError(
                    f"received a message from non-neighbor node {message.sender}"
                )
            result += weight * (np.asarray(message.payload["values"], dtype=np.float64) - own)
            total_weight += weight
        if total_weight > 1.0 + 1e-6:
            raise SimulationError(
                f"mixing weights must not exceed 1 for a stable average, got {total_weight}"
            )
        return result

    # -- checkpointing -----------------------------------------------------------
    def state_dict(self) -> dict:
        """The stochastic-rounding RNG state (the scheme's only mutable state)."""

        return {"quantizer": self._quantizer.state_dict()}

    def load_state_dict(self, state) -> None:
        """Restore state captured by :meth:`state_dict`."""

        self._quantizer.load_state_dict(state["quantizer"])


def quantized_sharing_factory(bits: int = 4, bucket_size: int = 256):
    """Factory for :class:`QuantizedSharingScheme` nodes."""

    def factory(node_id: int, model_size: int, seed: int) -> QuantizedSharingScheme:
        return QuantizedSharingScheme(
            node_id, model_size, seed, bits=bits, bucket_size=bucket_size
        )

    return factory
