"""Baseline sharing schemes: full sharing, random sampling, TopK and CHOCO-SGD."""

from repro.baselines.choco import ChocoScheme, choco_factory
from repro.baselines.full_sharing import FullSharingScheme, full_sharing_factory
from repro.baselines.quantized import QuantizedSharingScheme, quantized_sharing_factory
from repro.baselines.random_sampling import RandomSamplingScheme, random_sampling_factory
from repro.baselines.topk_sharing import TopKSharingScheme, topk_sharing_factory

__all__ = [
    "ChocoScheme",
    "choco_factory",
    "FullSharingScheme",
    "full_sharing_factory",
    "QuantizedSharingScheme",
    "quantized_sharing_factory",
    "RandomSamplingScheme",
    "random_sampling_factory",
    "TopKSharingScheme",
    "topk_sharing_factory",
]
