"""CHOCO-SGD baseline (Koloskova et al., ICML 2019) — memory-efficient variant.

CHOCO-SGD is the state-of-the-art communication-compressed decentralized
learning algorithm the paper compares against (Section IV-D).  Each node keeps
a *public* copy ``x_hat`` of its own model and the weighted sum ``s`` of the
public copies of its neighborhood.  Every round it compresses the difference
between its freshly trained private model and its public copy with TopK, sends
only that compressed difference, and applies a gossip correction scaled by the
consensus step size ``gamma`` — the extra hyperparameter the paper points out
CHOCO is highly sensitive to.

Because the correction state is tied to fixed neighbors, CHOCO is unsuitable
for dynamic topologies (Figure 7), which the simulator reproduces faithfully:
with a re-sampled topology the stale ``s`` makes learning stall.
"""

from __future__ import annotations

import numpy as np

from repro.compression.float_codec import FloatCodec, RawFloatCodec
from repro.compression.indices import EliasGammaIndexCodec
from repro.compression.sizing import PayloadSize
from repro.core.interface import Message, RoundContext, SharingScheme
from repro.exceptions import SimulationError
from repro.sparsification.base import fraction_to_count
from repro.sparsification.topk import topk_indices

__all__ = ["ChocoScheme", "choco_factory"]

MESSAGE_KIND = "choco-compressed-difference"


class ChocoScheme(SharingScheme):
    """Memory-efficient CHOCO-SGD with TopK compression."""

    name = "choco"

    def __init__(
        self,
        node_id: int,
        model_size: int,
        seed: int,
        fraction: float = 0.2,
        gamma: float = 0.6,
        compress: bool = True,
    ) -> None:
        if not 0.0 < fraction <= 1.0:
            raise SimulationError("compression fraction must be in (0, 1]")
        if gamma <= 0.0:
            raise SimulationError("consensus step size gamma must be positive")
        self.node_id = int(node_id)
        self.model_size = int(model_size)
        self.fraction = float(fraction)
        self.gamma = float(gamma)
        self._codec = FloatCodec() if compress else RawFloatCodec()
        self._index_codec = EliasGammaIndexCodec()
        # Public copy of the own model and weighted neighborhood sum.
        self._x_hat = np.zeros(model_size, dtype=np.float64)
        self._neighborhood_sum = np.zeros(model_size, dtype=np.float64)
        self._own_update: tuple[np.ndarray, np.ndarray] | None = None

    def prepare(self, context: RoundContext) -> Message:
        trained = np.asarray(context.params_trained, dtype=np.float64)
        difference = trained - self._x_hat
        count = fraction_to_count(self.fraction, self.model_size)
        indices = topk_indices(difference, count)
        values = difference[indices]
        self._own_update = (indices, values)

        compressed = self._codec.compress(values)
        encoded = self._index_codec.encode(indices, self.model_size)
        size = PayloadSize(
            values_bytes=compressed.size_bytes, metadata_bytes=encoded.size_bytes
        )
        payload = {"indices": indices, "values": values}
        return Message(
            sender=self.node_id,
            kind=MESSAGE_KIND,
            payload=payload,
            size=size,
            shared_fraction=min(1.0, values.size / max(1, self.model_size)),
        )

    def aggregate(self, context: RoundContext, messages: list[Message]) -> np.ndarray:
        if self._own_update is None:
            raise SimulationError("aggregate called before prepare")
        own_indices, own_values = self._own_update
        trained = np.asarray(context.params_trained, dtype=np.float64)

        # Update the public copy of the own model: x_hat += Q(x - x_hat).
        self._x_hat[own_indices] += own_values
        # Update the weighted neighborhood sum with every public-copy update,
        # including the node's own (weight W[i][i]).
        self._neighborhood_sum[own_indices] += context.self_weight * own_values
        for message in messages:
            if message.kind != MESSAGE_KIND:
                raise SimulationError(
                    f"CHOCO received an incompatible message of kind {message.kind!r}"
                )
            weight = context.neighbor_weights.get(message.sender)
            if weight is None:
                raise SimulationError(
                    f"received a message from non-neighbor node {message.sender}"
                )
            indices = np.asarray(message.payload["indices"], dtype=np.int64)
            values = np.asarray(message.payload["values"], dtype=np.float64)
            self._neighborhood_sum[indices] += weight * values

        self._own_update = None
        # Gossip correction towards the neighborhood average of public copies.
        return trained + self.gamma * (self._neighborhood_sum - self._x_hat)

    # -- checkpointing -----------------------------------------------------------
    def state_dict(self) -> dict:
        """Public copy, neighborhood sum and the in-flight update (if any)."""

        own_update = (
            None
            if self._own_update is None
            else [self._own_update[0].copy(), self._own_update[1].copy()]
        )
        return {
            "x_hat": self._x_hat.copy(),
            "neighborhood_sum": self._neighborhood_sum.copy(),
            "own_update": own_update,
        }

    def load_state_dict(self, state) -> None:
        """Restore state captured by :meth:`state_dict`."""

        x_hat = np.asarray(state["x_hat"], dtype=np.float64)
        neighborhood_sum = np.asarray(state["neighborhood_sum"], dtype=np.float64)
        if x_hat.size != self.model_size or neighborhood_sum.size != self.model_size:
            raise SimulationError(
                "checkpointed CHOCO state does not match this node's model size"
            )
        self._x_hat = x_hat.copy()
        self._neighborhood_sum = neighborhood_sum.copy()
        own_update = state["own_update"]
        self._own_update = (
            None
            if own_update is None
            else (
                np.asarray(own_update[0], dtype=np.int64),
                np.asarray(own_update[1], dtype=np.float64),
            )
        )


def choco_factory(fraction: float = 0.2, gamma: float = 0.6, compress: bool = True):
    """Factory for :class:`ChocoScheme` nodes with the given budget and step size."""

    def factory(node_id: int, model_size: int, seed: int) -> ChocoScheme:
        return ChocoScheme(
            node_id, model_size, seed, fraction=fraction, gamma=gamma, compress=compress
        )

    return factory
