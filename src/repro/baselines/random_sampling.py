"""Random-sampling sparsification baseline.

A fixed fraction of model parameters is selected uniformly at random each
round and shared; thanks to the shared pseudo-random seed, only the seed (one
integer) travels as metadata.  This is the network-savings baseline of the
paper (37 % of the parameters per round in the Table I experiments, to match
JWINS' average budget).
"""

from __future__ import annotations

import numpy as np

from repro.compression.float_codec import FloatCodec, RawFloatCodec
from repro.compression.indices import random_indices_from_seed
from repro.compression.sizing import PayloadSize
from repro.core.aggregation import SparseContribution, partial_weighted_average
from repro.core.interface import Message, RoundContext, SharingScheme
from repro.exceptions import SimulationError
from repro.sparsification.base import fraction_to_count

__all__ = ["RandomSamplingScheme", "random_sampling_factory"]

MESSAGE_KIND = "random-sampled-parameters"

#: Wire cost of shipping the sampling seed instead of explicit indices.
SEED_METADATA_BYTES = 8


class RandomSamplingScheme(SharingScheme):
    """Share a random fixed-size subset of parameters each round."""

    name = "random-sampling"

    def __init__(
        self,
        node_id: int,
        model_size: int,
        seed: int,
        fraction: float = 0.37,
        compress: bool = True,
    ) -> None:
        if not 0.0 < fraction <= 1.0:
            raise SimulationError("sharing fraction must be in (0, 1]")
        self.node_id = int(node_id)
        self.model_size = int(model_size)
        self.fraction = float(fraction)
        self._seed = int(seed)
        self._codec = FloatCodec() if compress else RawFloatCodec()

    def _round_seed(self, round_index: int) -> int:
        return (self._seed * 1_000_003 + round_index) & 0x7FFFFFFF

    def prepare(self, context: RoundContext) -> Message:
        count = fraction_to_count(self.fraction, self.model_size)
        round_seed = self._round_seed(context.round_index)
        indices = random_indices_from_seed(round_seed, count, self.model_size)
        values = np.asarray(context.params_trained, dtype=np.float64)[indices]
        compressed = self._codec.compress(values)
        size = PayloadSize(
            values_bytes=compressed.size_bytes, metadata_bytes=SEED_METADATA_BYTES
        )
        payload = {"indices": indices, "values": values, "seed": round_seed}
        return Message(
            sender=self.node_id,
            kind=MESSAGE_KIND,
            payload=payload,
            size=size,
            shared_fraction=min(1.0, values.size / max(1, self.model_size)),
        )

    def aggregate(self, context: RoundContext, messages: list[Message]) -> np.ndarray:
        own = np.asarray(context.params_trained, dtype=np.float64)
        contributions = []
        for message in messages:
            if message.kind != MESSAGE_KIND:
                raise SimulationError(
                    f"random sampling received an incompatible message of kind {message.kind!r}"
                )
            weight = context.neighbor_weights.get(message.sender)
            if weight is None:
                raise SimulationError(
                    f"received a message from non-neighbor node {message.sender}"
                )
            contributions.append(
                SparseContribution(
                    weight=weight,
                    indices=message.payload["indices"],
                    values=message.payload["values"],
                )
            )
        return partial_weighted_average(own, context.self_weight, contributions)


def random_sampling_factory(fraction: float = 0.37, compress: bool = True):
    """Factory for :class:`RandomSamplingScheme` nodes with the given fraction."""

    def factory(node_id: int, model_size: int, seed: int) -> RandomSamplingScheme:
        return RandomSamplingScheme(node_id, model_size, seed, fraction=fraction, compress=compress)

    return factory
