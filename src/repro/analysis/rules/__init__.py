"""Rule modules; importing this package registers every built-in rule."""

from repro.analysis.rules import api, determinism, docs, pool, serialization

__all__ = ["api", "determinism", "docs", "pool", "serialization"]
