"""DOC001: internal markdown links must resolve.

The markdown counterpart of the AST rules: every ``[text](target)`` /
``![alt](target)`` link with a relative target must point at an existing
file, and ``#fragment`` anchors must match a GitHub-style heading slug in
the target (or current) document.  This rule replaced the former
``scripts/check_docs_links.py`` one-off; ``scripts/ci.sh docs`` now runs
``python -m repro.analysis --rule DOC001``.
"""

from __future__ import annotations

import re
from typing import Iterator

from repro.analysis.context import FileContext
from repro.analysis.core import Finding, Rule, Severity, register_rule

#: ``[text](target)`` and ``![alt](target)`` — the only link syntax we use.
LINK_PATTERN = re.compile(r"!?\[[^\]]*\]\(([^)\s]+)\)")
SCHEME_PATTERN = re.compile(r"^[a-zA-Z][a-zA-Z0-9+.-]*:")
HEADING_PATTERN = re.compile(r"^#{1,6}\s+(.*)$", re.MULTILINE)
#: Fenced code block delimiters; links inside fences are not real links.
FENCE_PATTERN = re.compile(r"^(```|~~~)")


def heading_slugs(markdown: str) -> set[str]:
    """GitHub-style anchor slugs for every heading in ``markdown``."""

    slugs: set[str] = set()
    for heading in HEADING_PATTERN.findall(markdown):
        text = re.sub(r"[`*_]", "", heading.strip()).lower()
        slug = re.sub(r"[^\w\- ]", "", text).replace(" ", "-")
        slugs.add(slug)
    return slugs


@register_rule
class MarkdownLinksResolve(Rule):
    """DOC001: relative markdown links point at real files and anchors."""

    id = "DOC001"
    severity = Severity.ERROR
    summary = "relative markdown links and #anchors must resolve"
    file_suffixes = (".md",)

    def check_file(self, ctx: FileContext) -> Iterator[Finding]:
        """Validate every non-external link in the document."""

        in_fence = False
        for number, line in enumerate(ctx.lines, start=1):
            if FENCE_PATTERN.match(line.lstrip()):
                in_fence = not in_fence
                continue
            if in_fence:
                continue
            for match in LINK_PATTERN.finditer(line):
                target = match.group(1)
                if SCHEME_PATTERN.match(target):
                    continue  # external URL (https:, mailto:, ...)
                file_part, _, fragment = target.partition("#")
                resolved = (
                    (ctx.path.parent / file_part).resolve() if file_part else ctx.path
                )
                if not resolved.exists():
                    yield self.finding(
                        ctx,
                        number,
                        match.start(),
                        f"broken link -> {target}",
                    )
                    continue
                if fragment and resolved.suffix.lower() == ".md":
                    document = resolved.read_text(encoding="utf-8")
                    if fragment.lower() not in heading_slugs(document):
                        yield self.finding(
                            ctx,
                            number,
                            match.start(),
                            f"missing anchor -> {target}",
                        )
