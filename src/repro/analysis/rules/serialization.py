"""Serialization-completeness rules.

Checkpoint fidelity depends on two protocols staying complete as classes
grow fields: the ``to_dict``/``from_dict`` config codec and the
``state_dict``/``load_state_dict`` mutable-state protocol.  A field added to
``__init__`` but forgotten in ``to_dict`` silently truncates snapshots —
exactly the drift these rules make impossible.
"""

from __future__ import annotations

import ast
from typing import Iterator

from repro.analysis.context import FileContext
from repro.analysis.core import Finding, Rule, Severity, register_rule

#: ``to_dict`` bodies calling any of these are treated as wildcard-complete —
#: they enumerate fields dynamically rather than naming them one by one.
_WILDCARD_CALLS = {"fields", "asdict", "getattr", "vars"}

#: Class attribute naming attrs that are deliberately not serialized
#: (caches, derived values): ``_DERIVED_FIELDS = ("x", ...)``.
_DERIVED_ATTR = "_DERIVED_FIELDS"


def _method(cls: ast.ClassDef, name: str) -> ast.FunctionDef | None:
    for stmt in cls.body:
        if isinstance(stmt, (ast.FunctionDef, ast.AsyncFunctionDef)) and stmt.name == name:
            return stmt
    return None


def _is_dataclass(cls: ast.ClassDef, ctx: FileContext) -> bool:
    for decorator in cls.decorator_list:
        target = decorator.func if isinstance(decorator, ast.Call) else decorator
        origin = ctx.resolve(target)
        if origin in {"dataclasses.dataclass", "dataclasses"}:
            return True
        if isinstance(target, ast.Name) and target.id == "dataclass":
            return True
    return False


def _self_name(func: ast.FunctionDef) -> str | None:
    if func.args.args:
        return func.args.args[0].arg
    return None


def _init_attrs(cls: ast.ClassDef) -> dict[str, int]:
    """Attr name -> line of its first assignment (dataclass fields + __init__)."""

    attrs: dict[str, int] = {}
    # Dataclass-style annotated class attributes (skip ClassVar).
    for stmt in cls.body:
        if isinstance(stmt, ast.AnnAssign) and isinstance(stmt.target, ast.Name):
            annotation = ast.unparse(stmt.annotation)
            if "ClassVar" in annotation:
                continue
            attrs.setdefault(stmt.target.id, stmt.lineno)
    init = _method(cls, "__init__")
    if init is not None:
        self_name = _self_name(init)
        if self_name is not None:
            for node in ast.walk(init):
                targets: list[ast.expr] = []
                if isinstance(node, ast.Assign):
                    targets = list(node.targets)
                elif isinstance(node, (ast.AnnAssign, ast.AugAssign)):
                    targets = [node.target]
                for target in targets:
                    if (
                        isinstance(target, ast.Attribute)
                        and isinstance(target.value, ast.Name)
                        and target.value.id == self_name
                    ):
                        attrs.setdefault(target.attr, target.lineno)
    return attrs


def _derived_fields(cls: ast.ClassDef) -> set[str]:
    for stmt in cls.body:
        targets: list[ast.expr] = []
        if isinstance(stmt, ast.Assign):
            targets = stmt.targets
        elif isinstance(stmt, ast.AnnAssign) and stmt.value is not None:
            targets = [stmt.target]
        for target in targets:
            if isinstance(target, ast.Name) and target.id == _DERIVED_ATTR:
                value = stmt.value
                if isinstance(value, (ast.Tuple, ast.List, ast.Set)):
                    return {
                        element.value
                        for element in value.elts
                        if isinstance(element, ast.Constant)
                        and isinstance(element.value, str)
                    }
    return set()


def _to_dict_references(func: ast.FunctionDef) -> tuple[set[str], bool]:
    """(names referenced in ``to_dict``, is it wildcard-complete?)."""

    self_name = _self_name(func)
    referenced: set[str] = set()
    wildcard = False
    for node in ast.walk(func):
        if (
            isinstance(node, ast.Attribute)
            and isinstance(node.value, ast.Name)
            and node.value.id == self_name
        ):
            referenced.add(node.attr)
        elif isinstance(node, ast.Constant) and isinstance(node.value, str):
            referenced.add(node.value)
        elif isinstance(node, ast.Call):
            target = node.func
            name = target.attr if isinstance(target, ast.Attribute) else (
                target.id if isinstance(target, ast.Name) else None
            )
            if name in _WILDCARD_CALLS:
                wildcard = True
    return referenced, wildcard


@register_rule
class ToDictCompleteness(Rule):
    """SER001: every ``__init__`` attribute must appear in ``to_dict``.

    Attributes are collected from dataclass field annotations and ``self.X``
    assignments in ``__init__``; ``to_dict`` satisfies a field by referencing
    ``self.X``, naming ``"X"`` as a string key, or enumerating dynamically
    (``fields(self)``/``getattr``/``vars``/``asdict``).  Deliberately derived
    attributes are declared in a ``_DERIVED_FIELDS`` class tuple.
    """

    id = "SER001"
    severity = Severity.ERROR
    summary = (
        "every attribute assigned in __init__ must be referenced in to_dict "
        "(or listed in _DERIVED_FIELDS)"
    )
    node_types = (ast.ClassDef,)

    def applies_to(self, ctx: FileContext) -> bool:
        return ctx.module_in("repro")

    def visit(self, node: ast.AST, ctx: FileContext) -> Iterator[Finding]:
        assert isinstance(node, ast.ClassDef)
        to_dict = _method(node, "to_dict")
        if to_dict is None:
            return
        referenced, wildcard = _to_dict_references(to_dict)
        if wildcard:
            return
        derived = _derived_fields(node)
        for attr, line in sorted(_init_attrs(node).items(), key=lambda kv: kv[1]):
            if attr.startswith("_") or attr in derived or attr in referenced:
                continue
            yield self.finding(
                ctx,
                line,
                0,
                f"{node.name}.{attr} is set in __init__ but never referenced in "
                f"to_dict; serialize it or list it in {_DERIVED_ATTR}",
            )


#: Calls whose result stored on ``self`` marks a class as RNG-stateful.
_RNG_FACTORIES = {"numpy.random.default_rng", "repro.utils.rng.derive_rng"}
#: Annotations marking an injected generator parameter.
_GENERATOR_ANNOTATIONS = {"Generator", "np.random.Generator", "numpy.random.Generator"}


def _stores_rng_state(cls: ast.ClassDef, ctx: FileContext) -> int | None:
    """Line of the first ``self.x = <rng>`` assignment in ``__init__``, if any."""

    init = _method(cls, "__init__")
    if init is None:
        return None
    self_name = _self_name(init)
    if self_name is None:
        return None
    generator_params = set()
    for arg in init.args.args + init.args.kwonlyargs:
        if arg.annotation is not None:
            annotation = ast.unparse(arg.annotation).replace('"', "").replace("'", "")
            if any(marker in annotation for marker in _GENERATOR_ANNOTATIONS):
                generator_params.add(arg.arg)

    def is_rng_expr(expr: ast.expr) -> bool:
        if isinstance(expr, ast.Call) and ctx.resolve(expr.func) in _RNG_FACTORIES:
            return True
        if isinstance(expr, ast.Name) and expr.id in generator_params:
            return True
        if isinstance(expr, ast.IfExp):
            return is_rng_expr(expr.body) or is_rng_expr(expr.orelse)
        if isinstance(expr, ast.BoolOp):
            return any(is_rng_expr(value) for value in expr.values)
        return False

    for node in ast.walk(init):
        if isinstance(node, ast.Assign) and is_rng_expr(node.value):
            for target in node.targets:
                if (
                    isinstance(target, ast.Attribute)
                    and isinstance(target.value, ast.Name)
                    and target.value.id == self_name
                ):
                    return target.lineno
    return None


@register_rule
class StateDictPairing(Rule):
    """SER002: ``state_dict``/``load_state_dict`` come in pairs, and
    RNG-holding classes must implement them.

    A class with only one half of the protocol can be checkpointed but not
    restored (or vice versa).  Separately, in the stateful-model modules any
    non-dataclass class whose ``__init__`` stores a ``numpy`` Generator on
    ``self`` must expose the pair — otherwise its RNG stream silently resets
    across interrupt-resume.
    """

    id = "SER002"
    severity = Severity.ERROR
    summary = (
        "state_dict/load_state_dict must be implemented together; classes "
        "holding RNG state must implement both"
    )
    node_types = (ast.ClassDef,)

    #: Modules where the RNG-stateful heuristic applies (snapshot-reachable).
    _STATEFUL_MODULES = (
        "repro.simulation",
        "repro.core",
        "repro.baselines",
        "repro.sparsification",
        "repro.compression",
    )

    def applies_to(self, ctx: FileContext) -> bool:
        return ctx.module_in("repro")

    def visit(self, node: ast.AST, ctx: FileContext) -> Iterator[Finding]:
        assert isinstance(node, ast.ClassDef)
        has_save = _method(node, "state_dict") is not None
        has_load = _method(node, "load_state_dict") is not None
        if has_save != has_load:
            present, missing = (
                ("state_dict", "load_state_dict") if has_save else ("load_state_dict", "state_dict")
            )
            yield self.finding(
                ctx,
                node.lineno,
                node.col_offset,
                f"{node.name} defines {present} without {missing}; the snapshot "
                "protocol requires both",
            )
            return
        if has_save or _is_dataclass(node, ctx):
            return
        if not ctx.module_in(*self._STATEFUL_MODULES):
            return
        rng_line = _stores_rng_state(node, ctx)
        if rng_line is not None:
            yield self.finding(
                ctx,
                rng_line,
                0,
                f"{node.name} stores a numpy Generator on self but implements "
                "neither state_dict nor load_state_dict; its RNG stream cannot "
                "survive interrupt-resume",
            )
