"""API001: public orchestration/checkpoint surface must be documented.

These two packages are the repo's operator-facing API (sweep specs, pool
execution, snapshot/restore); every public function and method there needs a
docstring so ``--list-rules``-style introspection and the architecture docs
stay truthful.
"""

from __future__ import annotations

import ast
from typing import Iterator

from repro.analysis.context import FileContext
from repro.analysis.core import Finding, Rule, Severity, register_rule


def _is_public(name: str) -> bool:
    return not name.startswith("_")


@register_rule
class PublicApiDocstrings(Rule):
    """API001: public functions/methods in the operator-facing packages
    must carry docstrings."""

    id = "API001"
    severity = Severity.WARNING
    summary = (
        "public functions and methods in repro.orchestration/repro.checkpoint "
        "must have docstrings"
    )
    node_types = (ast.FunctionDef, ast.AsyncFunctionDef)

    def applies_to(self, ctx: FileContext) -> bool:
        return ctx.module_in("repro.orchestration", "repro.checkpoint")

    def visit(self, node: ast.AST, ctx: FileContext) -> Iterator[Finding]:
        assert isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef))
        if not _is_public(node.name) or ast.get_docstring(node) is not None:
            return
        parent = ctx.parents.get(node)
        if isinstance(parent, ast.ClassDef):
            # Public method of a public class (private classes are internal).
            if not _is_public(parent.name):
                return
            if not self._at_top_level(parent, ctx):
                return
            kind = f"method {parent.name}.{node.name}"
        elif isinstance(parent, ast.Module):
            kind = f"function {node.name}"
        else:
            # Nested functions are implementation detail, not API surface.
            return
        # Property setters/deleters share the getter's docstring.
        for decorator in node.decorator_list:
            if (
                isinstance(decorator, ast.Attribute)
                and decorator.attr in {"setter", "deleter"}
            ):
                return
        yield self.finding(
            ctx,
            node.lineno,
            node.col_offset,
            f"public {kind} has no docstring",
        )

    @staticmethod
    def _at_top_level(cls: ast.ClassDef, ctx: FileContext) -> bool:
        return isinstance(ctx.parents.get(cls), ast.Module)
