"""POOL001: nothing unpicklable may cross the multiprocessing boundary.

The sweep pool ships tasks to workers with pickle; lambdas and functions
defined inside other functions cannot be pickled, so handing one to a pool
method (or storing one on a serializable object) fails only at runtime — and
only on the pool path, which the fast serial tests never exercise.
"""

from __future__ import annotations

import ast
from typing import Iterator

from repro.analysis.context import FileContext
from repro.analysis.core import Finding, Rule, Severity, register_rule

#: ``Pool`` / executor methods whose callable argument is pickled.
_POOL_METHODS = {
    "map",
    "imap",
    "imap_unordered",
    "apply",
    "apply_async",
    "map_async",
    "starmap",
    "starmap_async",
    "submit",
}

#: Methods marking the enclosing class as crossing serialization boundaries.
_SERIALIZABLE_MARKERS = {"to_dict", "state_dict", "__getstate__"}


def _enclosing_functions(node: ast.AST, ctx: FileContext) -> list[ast.AST]:
    chain = []
    current = ctx.parents.get(node)
    while current is not None:
        if isinstance(current, (ast.FunctionDef, ast.AsyncFunctionDef, ast.Lambda)):
            chain.append(current)
        current = ctx.parents.get(current)
    return chain


@register_rule
class NoUnpicklableAcrossPool(Rule):
    """POOL001: no lambdas or nested functions handed to pool methods."""

    id = "POOL001"
    severity = Severity.ERROR
    summary = (
        "no lambdas or locally-defined functions across the multiprocessing "
        "pool; use module-level functions"
    )
    node_types = (ast.Call,)

    def applies_to(self, ctx: FileContext) -> bool:
        return ctx.module_in("repro.orchestration", "repro.checkpoint")

    def visit(self, node: ast.AST, ctx: FileContext) -> Iterator[Finding]:
        assert isinstance(node, ast.Call)
        func = node.func
        if not (isinstance(func, ast.Attribute) and func.attr in _POOL_METHODS):
            return
        # Resolvable origins are module-level APIs (e.g. itertools.starmap
        # would still be suspicious, but no pool is involved); only flag
        # method calls on local objects, which is how pools appear here.
        if ctx.resolve(func) is not None:
            return
        arguments = list(node.args) + [kw.value for kw in node.keywords]
        for argument in arguments:
            if isinstance(argument, ast.Lambda):
                yield self.finding(
                    ctx,
                    argument.lineno,
                    argument.col_offset,
                    f"lambda passed to pool method '{func.attr}' cannot be "
                    "pickled; use a module-level function",
                )
            elif isinstance(argument, ast.Name):
                # A name defined by a nested `def` in any enclosing function
                # is equally unpicklable.
                if self._names_local_function(argument, node, ctx):
                    yield self.finding(
                        ctx,
                        argument.lineno,
                        argument.col_offset,
                        f"locally-defined function '{argument.id}' passed to pool "
                        f"method '{func.attr}' cannot be pickled; move it to "
                        "module level",
                    )

    @staticmethod
    def _names_local_function(name: ast.Name, call: ast.Call, ctx: FileContext) -> bool:
        for scope in _enclosing_functions(call, ctx):
            if isinstance(scope, ast.Lambda):
                continue
            for stmt in ast.walk(scope):
                if (
                    isinstance(stmt, (ast.FunctionDef, ast.AsyncFunctionDef))
                    and stmt is not scope
                    and stmt.name == name.id
                ):
                    return True
        return False


@register_rule
class NoLambdaOnSerializableState(Rule):
    """POOL002: no lambdas stored on objects that cross pickle boundaries.

    A lambda assigned to ``self.x`` inside a class that implements
    ``to_dict``/``state_dict``/``__getstate__`` will break the first time the
    instance is pickled to a worker or snapshotted.
    """

    id = "POOL002"
    severity = Severity.ERROR
    summary = (
        "no lambdas stored as attributes of serializable classes "
        "(to_dict/state_dict/__getstate__)"
    )
    node_types = (ast.Assign,)

    def applies_to(self, ctx: FileContext) -> bool:
        return ctx.module_in("repro.orchestration", "repro.checkpoint")

    def visit(self, node: ast.AST, ctx: FileContext) -> Iterator[Finding]:
        assert isinstance(node, ast.Assign)
        if not isinstance(node.value, ast.Lambda):
            return
        stores_on_self = any(
            isinstance(target, ast.Attribute)
            and isinstance(target.value, ast.Name)
            and target.value.id == "self"
            for target in node.targets
        )
        if not stores_on_self:
            return
        # Find the enclosing class and check it crosses a pickle boundary.
        current = ctx.parents.get(node)
        while current is not None and not isinstance(current, ast.ClassDef):
            current = ctx.parents.get(current)
        if current is None:
            return
        marker_methods = {
            stmt.name
            for stmt in current.body
            if isinstance(stmt, (ast.FunctionDef, ast.AsyncFunctionDef))
        }
        if marker_methods.intersection(_SERIALIZABLE_MARKERS):
            yield self.finding(
                ctx,
                node.lineno,
                node.col_offset,
                f"lambda stored on serializable class {current.name} cannot be "
                "pickled or snapshotted; use a module-level function",
            )
