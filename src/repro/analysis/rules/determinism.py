"""Determinism rules: no global RNG, no wall-clock, no unordered iteration.

These are the static counterparts of the repo's dynamic determinism gates
(the seed-pinning / serial-vs-pool / interrupt-resume byte-equality tests):
they catch the three bug classes that historically break bit-identical
replays *before* the expensive gates run.
"""

from __future__ import annotations

import ast
from typing import Iterator

from repro.analysis.context import FileContext
from repro.analysis.core import Finding, Rule, Severity, register_rule

#: ``numpy.random`` attributes that construct or seed generators rather than
#: drawing from the hidden global state.  Everything else under
#: ``numpy.random`` is the legacy global-state API and is banned.
_NUMPY_RANDOM_SANCTIONED = {
    "default_rng",
    "SeedSequence",
    "Generator",
    "BitGenerator",
    "PCG64",
    "PCG64DXSM",
    "Philox",
    "MT19937",
    "SFC64",
}

#: Wall-clock callables banned outside ``repro.utils.profiling``.
_WALL_CLOCK = {
    "time.time",
    "time.time_ns",
    "time.monotonic",
    "time.monotonic_ns",
    "time.perf_counter",
    "time.perf_counter_ns",
    "time.process_time",
    "time.process_time_ns",
    "datetime.datetime.now",
    "datetime.datetime.utcnow",
    "datetime.date.today",
}


@register_rule
class NoGlobalRng(Rule):
    """DET001: draws from process-global RNG state are not replayable.

    All randomness must flow through an injected ``numpy.random.Generator``
    (see ``repro.utils.rng.derive_rng``).  ``np.random.default_rng(seed)``
    with an explicit seed is fine; the zero-argument form seeds from OS
    entropy and is flagged.
    """

    id = "DET001"
    severity = Severity.ERROR
    summary = (
        "no process-global or OS-entropy randomness; inject a seeded "
        "numpy Generator instead"
    )
    node_types = (ast.Call,)

    def applies_to(self, ctx: FileContext) -> bool:
        # `repro.utils.rng` is the sanctioned seeding site.
        return ctx.module_in("repro") and not ctx.module_in("repro.utils.rng")

    def visit(self, node: ast.AST, ctx: FileContext) -> Iterator[Finding]:
        assert isinstance(node, ast.Call)
        origin = ctx.resolve(node.func)
        if origin is None:
            return
        if origin == "os.urandom":
            yield self.finding(
                ctx,
                node.lineno,
                node.col_offset,
                "os.urandom draws OS entropy; derive seeds via repro.utils.rng",
            )
        elif origin == "random" or origin.startswith("random."):
            yield self.finding(
                ctx,
                node.lineno,
                node.col_offset,
                f"stdlib '{origin}' uses hidden global RNG state; "
                "use an injected numpy Generator",
            )
        elif origin.startswith("numpy.random."):
            tail = origin[len("numpy.random.") :]
            if tail == "default_rng" and not node.args and not node.keywords:
                yield self.finding(
                    ctx,
                    node.lineno,
                    node.col_offset,
                    "numpy.random.default_rng() without a seed draws OS entropy; "
                    "pass an explicit seed or SeedSequence",
                )
            elif tail.split(".")[0] not in _NUMPY_RANDOM_SANCTIONED:
                yield self.finding(
                    ctx,
                    node.lineno,
                    node.col_offset,
                    f"numpy.random.{tail} uses the global numpy RNG; "
                    "use an injected Generator",
                )


@register_rule
class NoWallClock(Rule):
    """DET002: wall-clock reads leak real time into simulated time.

    The simulation has its own virtual clock (``repro.simulation.timing``);
    the sanctioned wall-clock consumers are the telemetry modules —
    ``repro.utils.profiling`` (phase timers) and ``repro.observability``
    (trace timestamps, memory tracking), both of which sit explicitly outside
    the determinism contract.  References are flagged, not just calls —
    ``clock=time.perf_counter`` smuggles the clock just as effectively.
    """

    id = "DET002"
    severity = Severity.ERROR
    summary = (
        "no wall-clock reads outside the telemetry modules "
        "(repro.utils.profiling, repro.observability); simulated time "
        "comes from the virtual clock"
    )
    node_types = (ast.Attribute, ast.Name)

    def applies_to(self, ctx: FileContext) -> bool:
        return ctx.module_in("repro") and not ctx.module_in(
            "repro.utils.profiling", "repro.observability"
        )

    def visit(self, node: ast.AST, ctx: FileContext) -> Iterator[Finding]:
        # Only flag the outermost attribute chain: for `time.perf_counter`
        # the Attribute node resolves, and its inner Name (`time`) resolves
        # merely to the module — skip nodes whose parent also resolves.
        parent = ctx.parents.get(node)
        if isinstance(parent, ast.Attribute) and parent.value is node:
            return
        origin = ctx.resolve(node)
        if origin in _WALL_CLOCK:
            yield self.finding(
                ctx,
                node.lineno,
                node.col_offset,
                f"wall-clock '{origin}' referenced; use the virtual clock or "
                "repro.utils.profiling",
            )


#: Wrappers that preserve the (non-)ordering of what they wrap.
_ORDER_PRESERVING_WRAPPERS = {"enumerate", "list", "tuple", "reversed", "iter"}
#: Set-typed binary operators (union/intersection/difference/symmetric diff).
_SET_BINOPS = (ast.BitOr, ast.BitAnd, ast.Sub, ast.BitXor)


def _is_set_valued(node: ast.AST, ctx: FileContext) -> bool:
    """Conservatively: does ``node`` evaluate to a set (syntactically)?"""

    if isinstance(node, (ast.Set, ast.SetComp)):
        return True
    if isinstance(node, ast.Call) and isinstance(node.func, ast.Name):
        if node.func.id in {"set", "frozenset"} and ctx.resolve(node.func) is None:
            return True
    if isinstance(node, ast.BinOp) and isinstance(node.op, _SET_BINOPS):
        return _is_set_valued(node.left, ctx) or _is_set_valued(node.right, ctx)
    return False


@register_rule
class NoUnorderedIteration(Rule):
    """DET003: iteration order of sets is arbitrary; replay paths must sort.

    Applies to the engine/checkpoint/orchestration/scenario paths where
    iteration order feeds event order, serialized output, or hashing.
    ``dict`` iteration is insertion-ordered and allowed; ``.keys()`` is
    flagged only as the direct target of a loop over a set expression.
    """

    id = "DET003"
    severity = Severity.ERROR
    summary = (
        "no iteration over sets (or set-typed expressions) in replay-critical "
        "paths; wrap in sorted(...)"
    )
    node_types = (ast.For, ast.comprehension)

    def applies_to(self, ctx: FileContext) -> bool:
        return ctx.module_in(
            "repro.simulation",
            "repro.checkpoint",
            "repro.orchestration",
            "repro.scenarios",
        )

    def visit(self, node: ast.AST, ctx: FileContext) -> Iterator[Finding]:
        iterable = node.iter
        # Unwrap order-preserving wrappers: `for i, x in enumerate({...})`.
        while (
            isinstance(iterable, ast.Call)
            and isinstance(iterable.func, ast.Name)
            and iterable.func.id in _ORDER_PRESERVING_WRAPPERS
            and ctx.resolve(iterable.func) is None
            and iterable.args
        ):
            iterable = iterable.args[0]
        if _is_set_valued(iterable, ctx):
            anchor = iterable
            yield self.finding(
                ctx,
                anchor.lineno,
                anchor.col_offset,
                "iterating a set yields arbitrary order; wrap in sorted(...)",
            )
