"""Rendering an :class:`~repro.analysis.engine.AnalysisReport`.

Two formats: ``text`` (one ``path:line:col: RULE severity: message`` line per
finding plus a summary — what the CI gate prints) and ``json`` (a stable
machine-readable document for tooling; its schema is pinned by a test).
"""

from __future__ import annotations

import json
from typing import TYPE_CHECKING

from repro.analysis.core import Severity
from repro.exceptions import ConfigurationError

if TYPE_CHECKING:  # pragma: no cover - typing-only import
    from repro.analysis.engine import AnalysisReport

__all__ = ["JSON_REPORT_VERSION", "render_json", "render_text", "render"]

JSON_REPORT_VERSION = 1


def render_text(report: "AnalysisReport") -> str:
    """Human-readable report: one line per finding, then a summary line."""

    lines = [
        f"{finding.path}:{finding.line}:{finding.column}: "
        f"{finding.rule} {finding.severity.value}: {finding.message}"
        for finding in report.findings
    ]
    errors = sum(1 for f in report.findings if f.severity is Severity.ERROR)
    warnings = len(report.findings) - errors
    if report.findings:
        summary = (
            f"analysis FAILED: {len(report.findings)} finding(s) "
            f"({errors} error(s), {warnings} warning(s))"
        )
    else:
        summary = "analysis OK: 0 findings"
    summary += (
        f" in {report.files_scanned} file(s); "
        f"{report.suppressed} suppressed, {report.baselined} baselined"
    )
    lines.append(summary)
    return "\n".join(lines)


def render_json(report: "AnalysisReport") -> str:
    """Machine-readable report (sorted keys; schema pinned by tests)."""

    errors = sum(1 for f in report.findings if f.severity is Severity.ERROR)
    document = {
        "version": JSON_REPORT_VERSION,
        "files_scanned": report.files_scanned,
        "findings": [finding.to_dict() for finding in report.findings],
        "summary": {
            "errors": errors,
            "warnings": len(report.findings) - errors,
            "suppressed": report.suppressed,
            "baselined": report.baselined,
        },
    }
    return json.dumps(document, indent=2, sort_keys=True)


def render(report: "AnalysisReport", format: str) -> str:
    """Render ``report`` in ``format`` (``"text"`` or ``"json"``)."""

    if format == "text":
        return render_text(report)
    if format == "json":
        return render_json(report)
    raise ConfigurationError(f"unknown report format {format!r}")
