"""Inline suppression comments: ``# repro: allow[RULE-ID] reason``.

A suppression silences the named rule(s) on the line carrying the comment.
A comment on a line of its own additionally covers the next source line, so
statements too long to share a line with their justification stay readable::

    indices = np.random.default_rng().choice(...)  # repro: allow[DET001] seeded below

    # repro: allow[SER001] cache, rebuilt on load
    self._cache = {}

Multiple ids are comma-separated: ``# repro: allow[DET001,DET002] ...``.
Comments are extracted with :mod:`tokenize`, so the marker inside a string
literal is never mistaken for a suppression.
"""

from __future__ import annotations

import io
import re
import tokenize

__all__ = ["SUPPRESSION_PATTERN", "extract_suppressions"]

#: ``# repro: allow[ID]`` / ``# repro: allow[ID1, ID2] free-form reason``.
SUPPRESSION_PATTERN = re.compile(
    r"#\s*repro:\s*allow\[\s*([A-Za-z]+\d+(?:\s*,\s*[A-Za-z]+\d+)*)\s*\]"
)


def extract_suppressions(source: str) -> dict[int, frozenset[str]]:
    """Map line number -> rule ids suppressed on that line.

    Tokenization errors fall back to a line-based scan (the file already
    failed or will fail parsing anyway; suppressions should not mask that).
    """

    per_line: dict[int, set[str]] = {}

    def record(line: int, rule_ids: set[str], own_line: bool) -> None:
        per_line.setdefault(line, set()).update(rule_ids)
        if own_line:
            per_line.setdefault(line + 1, set()).update(rule_ids)

    try:
        tokens = list(tokenize.generate_tokens(io.StringIO(source).readline))
    except (tokenize.TokenError, IndentationError, SyntaxError):
        for number, text in enumerate(source.splitlines(), start=1):
            match = SUPPRESSION_PATTERN.search(text)
            if match:
                ids = {part.strip() for part in match.group(1).split(",")}
                record(number, ids, own_line=text.lstrip().startswith("#"))
        return {line: frozenset(ids) for line, ids in per_line.items()}

    for token in tokens:
        if token.type != tokenize.COMMENT:
            continue
        match = SUPPRESSION_PATTERN.search(token.string)
        if not match:
            continue
        ids = {part.strip() for part in match.group(1).split(",")}
        line = token.start[0]
        prefix = token.line[: token.start[1]]
        record(line, ids, own_line=not prefix.strip())
    return {line: frozenset(ids) for line, ids in per_line.items()}
