"""Static-analysis suite guarding the determinism and serialization contracts.

The reproduction's value rests on CI-gated determinism pillars (seed pinning,
sync-vs-seed identity, serial-vs-pool identity, interrupt-resume identity).
Those pillars are enforced *dynamically* by byte-comparing run outputs; this
package proves the underlying hygiene invariants *statically*, at lint time,
so a stray ``np.random.rand()`` or a ``to_dict`` that silently drops a new
field is caught before any sweep diverges.

The framework is a single-pass AST visitor core with a rule registry:

* every :class:`~repro.analysis.core.Rule` declares the node types it wants to
  see; the engine parses each file once and dispatches nodes to interested
  rules (markdown rules see the raw text instead);
* findings can be silenced inline with ``# repro: allow[RULE-ID] reason`` or
  grandfathered in a committed JSON baseline file;
* reporters render text (the CI gate) or JSON (machine-readable).

Run it as ``python -m repro.analysis [--format json] [--rule ID] [paths]``;
``scripts/ci.sh analysis`` wires it between the ``lint`` and ``docs`` stages.
The shipped rules are documented in ``docs/ARCHITECTURE.md`` and listed by
``python -m repro.analysis --list-rules``.
"""

from repro.analysis.baseline import Baseline
from repro.analysis.core import Finding, Rule, Severity, all_rules, get_rule, register_rule
from repro.analysis.engine import AnalysisReport, analyze_paths, analyze_source

__all__ = [
    "AnalysisReport",
    "Baseline",
    "Finding",
    "Rule",
    "Severity",
    "all_rules",
    "analyze_paths",
    "analyze_source",
    "get_rule",
    "register_rule",
]
