"""The single-pass analysis engine.

For every target file the engine builds one :class:`~repro.analysis.context.
FileContext` (source, AST, import table, parent map, suppressions), then

* walks the AST **once**, dispatching each node to the rules that registered
  interest in its type, and
* calls every applicable rule's :meth:`~repro.analysis.core.Rule.check_file`
  once (markdown rules live entirely in this hook).

Inline ``# repro: allow[RULE-ID]`` suppressions are honoured here, and an
optional :class:`~repro.analysis.baseline.Baseline` absorbs grandfathered
findings, so rules never need to think about either mechanism.
"""

from __future__ import annotations

import ast
from dataclasses import dataclass, field
from pathlib import Path
from typing import Iterable, Sequence

from repro.analysis.baseline import Baseline
from repro.analysis.context import FileContext
from repro.analysis.core import Finding, Rule, Severity, all_rules
from repro.exceptions import ConfigurationError

__all__ = ["AnalysisReport", "analyze_paths", "analyze_source", "collect_files"]

#: File suffixes the engine looks at when expanding directories.
_SCANNED_SUFFIXES = (".py", ".md")
#: Directory names never descended into.
_SKIPPED_DIRS = {"__pycache__", ".git", ".pytest_cache", "node_modules"}


@dataclass
class AnalysisReport:
    """Outcome of one analysis run.

    ``findings`` are the violations that *fail* the gate (already filtered
    for suppressions and the baseline, sorted by location).  ``suppressed``
    and ``baselined`` count what was filtered out; ``raw_findings`` holds the
    suppression-filtered, pre-baseline set (what ``--write-baseline``
    persists — inline-suppressed findings need no baseline entry).
    """

    findings: list[Finding] = field(default_factory=list)
    files_scanned: int = 0
    suppressed: int = 0
    baselined: int = 0
    raw_findings: list[Finding] = field(default_factory=list)

    @property
    def ok(self) -> bool:
        """Whether the gate passes (no unsuppressed, un-baselined findings)."""

        return not self.findings


def collect_files(paths: Sequence[str | Path]) -> list[Path]:
    """Expand ``paths`` into the sorted list of analyzable files.

    Directories are walked recursively for ``.py``/``.md`` files; explicit
    file arguments are taken as-is (any suffix).  Missing paths fail loudly.
    """

    collected: list[Path] = []
    for raw in paths:
        path = Path(raw)
        if path.is_dir():
            for suffix in _SCANNED_SUFFIXES:
                for candidate in path.rglob(f"*{suffix}"):
                    if not _SKIPPED_DIRS.intersection(candidate.parts):
                        collected.append(candidate)
        elif path.is_file():
            collected.append(path)
        else:
            raise ConfigurationError(f"analysis target {str(path)!r} does not exist")
    unique = sorted(set(collected), key=lambda p: p.as_posix())
    return unique


def _display_path(path: Path) -> str:
    """Findings report paths relative to the invocation cwd when possible."""

    try:
        return path.resolve().relative_to(Path.cwd()).as_posix()
    except ValueError:
        return path.as_posix()


def _analyze_context(ctx: FileContext, rules: Sequence[Rule]) -> list[Finding]:
    """All raw findings for one built context (no suppression filtering)."""

    applicable = [
        rule
        for rule in rules
        if ctx.path.suffix in rule.file_suffixes and rule.applies_to(ctx)
    ]
    findings: list[Finding] = []
    if ctx.tree is not None:
        dispatch: dict[type, list[Rule]] = {}
        for rule in applicable:
            for node_type in rule.node_types:
                dispatch.setdefault(node_type, []).append(rule)
        if dispatch:
            for node in ast.walk(ctx.tree):
                for rule in dispatch.get(type(node), ()):
                    findings.extend(rule.visit(node, ctx))
    for rule in applicable:
        findings.extend(rule.check_file(ctx))
    return findings


def analyze_source(
    source: str,
    filename: str = "<memory>.py",
    rules: Sequence[Rule] | None = None,
) -> list[Finding]:
    """Analyze an in-memory snippet (the unit-test entry point).

    ``filename`` controls module-scoped rules: pass a path shaped like the
    real tree (e.g. ``src/repro/simulation/engine.py``) to exercise them.
    Suppressions are honoured; no baseline is involved.
    """

    path = Path(filename)
    ctx = FileContext.build(path, path.as_posix(), source)
    selected = list(rules) if rules is not None else all_rules()
    raw = _analyze_context(ctx, selected)
    kept = [f for f in raw if not ctx.is_suppressed(f.line, f.rule)]
    return sorted(kept, key=Finding.sort_key)


def analyze_paths(
    paths: Sequence[str | Path],
    rules: Sequence[Rule] | None = None,
    baseline: Baseline | None = None,
) -> AnalysisReport:
    """Run ``rules`` (default: all registered) over ``paths``."""

    selected = list(rules) if rules is not None else all_rules()
    report = AnalysisReport()
    kept: list[Finding] = []
    for path in collect_files(paths):
        display = _display_path(path)
        try:
            source = path.read_text(encoding="utf-8")
        except (OSError, UnicodeDecodeError) as error:
            raise ConfigurationError(f"cannot read {display!r}: {error}") from error
        try:
            ctx = FileContext.build(path, display, source)
        except SyntaxError as error:
            # The lint stage byte-compiles everything first, but a direct
            # invocation must still fail loudly on an unparseable file.
            kept.append(
                Finding(
                    rule="SYNTAX",
                    severity=Severity.ERROR,
                    path=display,
                    line=int(error.lineno or 1),
                    column=int(error.offset or 0),
                    message=f"file does not parse: {error.msg}",
                )
            )
            report.files_scanned += 1
            continue
        report.files_scanned += 1
        raw = _analyze_context(ctx, selected)
        for finding in raw:
            if ctx.is_suppressed(finding.line, finding.rule):
                report.suppressed += 1
            else:
                kept.append(finding)
    kept.sort(key=Finding.sort_key)
    report.raw_findings = list(kept)
    if baseline is not None:
        kept, grandfathered = baseline.split(kept)
        report.baselined = len(grandfathered)
    report.findings = kept
    return report
