"""Per-file analysis context: source, AST, imports and name resolution.

The context is built once per file and shared by every rule, so expensive
work (parsing, the parent map, the import table, suppression extraction)
happens a single time regardless of how many rules run.
"""

from __future__ import annotations

import ast
from dataclasses import dataclass, field
from pathlib import Path

from repro.analysis.suppressions import extract_suppressions

__all__ = ["FileContext", "module_name_for"]


def module_name_for(path: Path) -> str | None:
    """Dotted module name for ``path``, or ``None`` outside the package tree.

    The name is derived purely from the path: the part after the last ``src``
    component (the repo layout), or from the first ``repro`` component when no
    ``src`` anchor is present (installed trees, test fixtures).
    """

    parts = list(path.parts)
    if not parts or not parts[-1].endswith(".py"):
        return None
    start = None
    if "src" in parts[:-1]:
        last_src = len(parts) - 2 - parts[:-1][::-1].index("src")
        start = last_src + 1
    elif "repro" in parts[:-1]:
        start = parts.index("repro")
    if start is None or start >= len(parts):
        return None
    module_parts = parts[start:]
    module_parts[-1] = module_parts[-1][: -len(".py")]
    if module_parts[-1] == "__init__":
        module_parts.pop()
    if not module_parts:
        return None
    return ".".join(module_parts)


@dataclass
class FileContext:
    """Everything rules can know about one file."""

    path: Path
    #: Path as reported in findings (relative to the invocation cwd).
    display_path: str
    #: Dotted module name (``repro.simulation.engine``) or ``None``.
    module: str | None
    source: str
    lines: list[str]
    tree: ast.Module | None = None
    #: Imported module bindings: local name -> dotted module
    #: (``import numpy as np`` -> ``{"np": "numpy"}``).
    imports: dict[str, str] = field(default_factory=dict)
    #: From-imported members: local name -> dotted origin
    #: (``from time import perf_counter as pc`` -> ``{"pc": "time.perf_counter"}``).
    import_members: dict[str, str] = field(default_factory=dict)
    #: Child node -> parent node, for ancestry queries.
    parents: dict[ast.AST, ast.AST] = field(default_factory=dict)
    #: Line number -> rule ids allowed there (see ``suppressions.py``).
    suppressions: dict[int, frozenset[str]] = field(default_factory=dict)

    @classmethod
    def build(cls, path: Path, display_path: str, source: str) -> "FileContext":
        """Create a context; python files are parsed and indexed here.

        Raises :class:`SyntaxError` when a ``.py`` file does not parse — the
        engine converts that into a reportable finding.
        """

        ctx = cls(
            path=path,
            display_path=display_path,
            module=module_name_for(path),
            source=source,
            lines=source.splitlines(),
        )
        if path.suffix == ".py":
            ctx.tree = ast.parse(source, filename=str(path))
            ctx._index_tree()
            ctx.suppressions = extract_suppressions(source)
        return ctx

    def _index_tree(self) -> None:
        assert self.tree is not None
        for parent in ast.walk(self.tree):
            for child in ast.iter_child_nodes(parent):
                self.parents[child] = parent
            if isinstance(parent, ast.Import):
                for alias in parent.names:
                    local = alias.asname or alias.name.split(".")[0]
                    # `import a.b.c` binds `a`; `import a.b as m` binds `a.b`.
                    self.imports[local] = alias.name if alias.asname else alias.name.split(".")[0]
            elif isinstance(parent, ast.ImportFrom):
                origin = self._import_from_origin(parent)
                if origin is None:
                    continue
                for alias in parent.names:
                    if alias.name == "*":
                        continue
                    local = alias.asname or alias.name
                    self.import_members[local] = f"{origin}.{alias.name}"

    def _import_from_origin(self, node: ast.ImportFrom) -> str | None:
        """Absolute dotted origin of a ``from X import ...`` statement."""

        if node.level == 0:
            return node.module
        if self.module is None:
            return None
        package_parts = self.module.split(".")
        # level 1 = the containing package of this module, each extra level
        # climbs one package higher.  A package's own module name (__init__)
        # already names its package, so one fewer part is dropped there.
        drop = node.level - 1 if self.path.name == "__init__.py" else node.level
        base = package_parts[: len(package_parts) - drop] if drop else package_parts
        if node.module:
            base = base + node.module.split(".")
        return ".".join(base) if base else None

    # -- helpers for rules ---------------------------------------------------------
    def line_text(self, line: int) -> str:
        """Source text of 1-indexed ``line`` (empty for out-of-range lines)."""

        if 1 <= line <= len(self.lines):
            return self.lines[line - 1]
        return ""

    def resolve(self, node: ast.AST) -> str | None:
        """Dotted origin of a name/attribute chain, via the import table.

        ``np.random.rand`` resolves to ``"numpy.random.rand"`` under
        ``import numpy as np``; names rooted in local variables (e.g. an
        injected ``rng``) resolve to ``None`` and are never flagged.
        """

        if isinstance(node, ast.Name):
            if node.id in self.import_members:
                return self.import_members[node.id]
            if node.id in self.imports:
                return self.imports[node.id]
            return None
        if isinstance(node, ast.Attribute):
            base = self.resolve(node.value)
            if base is None:
                return None
            return f"{base}.{node.attr}"
        return None

    def module_in(self, *prefixes: str) -> bool:
        """Whether this file's module is inside any of the dotted ``prefixes``."""

        if self.module is None:
            return False
        return any(
            self.module == prefix or self.module.startswith(prefix + ".")
            for prefix in prefixes
        )

    def is_suppressed(self, finding_line: int, rule_id: str) -> bool:
        """Whether an inline ``# repro: allow[...]`` covers ``finding_line``."""

        allowed = self.suppressions.get(finding_line)
        return allowed is not None and rule_id in allowed
