"""Rule protocol, findings and the rule registry.

A rule is a small, stateless object: it declares which AST node types it wants
to visit (:attr:`Rule.node_types`) and/or implements a whole-file check
(:meth:`Rule.check_file`), and yields :class:`Finding` objects.  Registration
is by decorator::

    @register_rule
    class NoFrobnication(Rule):
        id = "DET999"
        severity = Severity.ERROR
        summary = "no frobnication in engine code"
        node_types = (ast.Call,)

        def visit(self, node, ctx):
            ...

The engine (:mod:`repro.analysis.engine`) instantiates every registered rule
once, walks each file's AST a single time and dispatches each node to the
rules interested in its type.
"""

from __future__ import annotations

import ast
from dataclasses import dataclass
from enum import Enum
from typing import TYPE_CHECKING, Iterable

from repro.exceptions import ConfigurationError

if TYPE_CHECKING:  # pragma: no cover - typing-only import
    from repro.analysis.context import FileContext

__all__ = [
    "Finding",
    "Rule",
    "Severity",
    "all_rules",
    "get_rule",
    "register_rule",
]


class Severity(str, Enum):
    """How bad a finding is; any unsuppressed finding fails the gate."""

    WARNING = "warning"
    ERROR = "error"


@dataclass(frozen=True)
class Finding:
    """One rule violation at one source location."""

    rule: str
    severity: Severity
    path: str
    line: int
    column: int
    message: str
    #: The stripped source line, used for location-tolerant baseline matching.
    code: str = ""

    def sort_key(self) -> tuple:
        """Stable report order: by location, then rule id."""

        return (self.path, self.line, self.column, self.rule)

    def fingerprint(self) -> tuple[str, str, str]:
        """Line-number-free identity used by the baseline (survives drift)."""

        return (self.rule, self.path, self.code)

    def to_dict(self) -> dict:
        """JSON-safe representation (the JSON reporter's row schema)."""

        return {
            "rule": self.rule,
            "severity": self.severity.value,
            "path": self.path,
            "line": int(self.line),
            "column": int(self.column),
            "message": self.message,
            "code": self.code,
        }


class Rule:
    """Base class for analysis rules; subclass and :func:`register_rule`."""

    #: Unique identifier, e.g. ``"DET001"`` — what suppressions and the
    #: ``--rule`` flag refer to.
    id = "RULE000"
    severity = Severity.ERROR
    #: One-line description shown by ``--list-rules``.
    summary = ""
    #: AST node types routed to :meth:`visit` (python files only).
    node_types: tuple[type, ...] = ()
    #: File suffixes this rule applies to.
    file_suffixes: tuple[str, ...] = (".py",)

    def applies_to(self, ctx: "FileContext") -> bool:
        """Whether the rule runs on this file at all (module scoping)."""

        return True

    def visit(self, node: ast.AST, ctx: "FileContext") -> Iterable[Finding]:
        """Inspect one AST node; yield findings."""

        return ()

    def check_file(self, ctx: "FileContext") -> Iterable[Finding]:
        """Whole-file check, called once per applicable file."""

        return ()

    def finding(
        self, ctx: "FileContext", line: int, column: int, message: str
    ) -> Finding:
        """Build a :class:`Finding` for this rule at ``line``/``column``."""

        return Finding(
            rule=self.id,
            severity=self.severity,
            path=ctx.display_path,
            line=line,
            column=column,
            message=message,
            code=ctx.line_text(line).strip(),
        )


#: Rule id -> instance, in registration order.
_REGISTRY: dict[str, Rule] = {}


def register_rule(rule_class: type[Rule]) -> type[Rule]:
    """Class decorator adding one instance of ``rule_class`` to the registry."""

    instance = rule_class()
    if not instance.id or instance.id in _REGISTRY:
        raise ConfigurationError(f"duplicate or empty rule id {instance.id!r}")
    _REGISTRY[instance.id] = instance
    return rule_class


def all_rules() -> list[Rule]:
    """Every registered rule, sorted by id (imports the shipped rule set)."""

    import repro.analysis.rules  # noqa: F401  (registration side effect)

    return [_REGISTRY[rule_id] for rule_id in sorted(_REGISTRY)]


def get_rule(rule_id: str) -> Rule:
    """Look up one rule by id; raises ``ConfigurationError`` on unknown ids."""

    import repro.analysis.rules  # noqa: F401  (registration side effect)

    try:
        return _REGISTRY[rule_id]
    except KeyError:
        known = ", ".join(sorted(_REGISTRY))
        raise ConfigurationError(f"unknown rule {rule_id!r}; known rules: {known}") from None
