"""Committed baseline of grandfathered findings.

A baseline lets the gate land green on a tree with known, not-yet-fixed
findings: every finding matching a baseline entry is reported as
``baselined`` instead of failing the run.  Matching ignores line numbers —
an entry is ``(rule, path, stripped source line)`` — so unrelated edits that
shift a grandfathered line do not resurrect it.  Each entry absorbs exactly
one finding (multiset semantics): introducing a *second* identical violation
still fails.

The repo ships an empty baseline (``.analysis-baseline.json``); the intent is
that real violations get fixed and intentional exemptions use inline
``# repro: allow[...]`` comments with a reason, keeping this file empty.
"""

from __future__ import annotations

import json
from collections import Counter
from pathlib import Path
from typing import Iterable, Sequence

from repro.analysis.core import Finding
from repro.exceptions import ConfigurationError

__all__ = ["Baseline"]

BASELINE_VERSION = 1


class Baseline:
    """A multiset of grandfathered finding fingerprints."""

    def __init__(self, entries: Iterable[dict] | None = None) -> None:
        self._entries = Counter(
            (entry["rule"], entry["path"], entry.get("code", ""))
            for entry in (entries or ())
        )

    def __len__(self) -> int:
        return sum(self._entries.values())

    @classmethod
    def load(cls, path: str | Path) -> "Baseline":
        """Read a baseline file; malformed documents fail loudly."""

        try:
            document = json.loads(Path(path).read_text(encoding="utf-8"))
        except OSError as error:
            raise ConfigurationError(f"cannot read baseline {str(path)!r}: {error}") from error
        except json.JSONDecodeError as error:
            raise ConfigurationError(
                f"baseline {str(path)!r} is not valid JSON: {error}"
            ) from error
        if not isinstance(document, dict) or document.get("version") != BASELINE_VERSION:
            raise ConfigurationError(
                f"baseline {str(path)!r} is not a version-{BASELINE_VERSION} "
                "analysis baseline"
            )
        entries = document.get("entries", [])
        if not isinstance(entries, list) or not all(
            isinstance(entry, dict) and "rule" in entry and "path" in entry
            for entry in entries
        ):
            raise ConfigurationError(
                f"baseline {str(path)!r} entries must be objects with rule/path keys"
            )
        return cls(entries)

    @classmethod
    def from_findings(cls, findings: Sequence[Finding]) -> "Baseline":
        """Baseline that grandfathers exactly ``findings``."""

        baseline = cls()
        baseline._entries = Counter(finding.fingerprint() for finding in findings)
        return baseline

    def save(self, path: str | Path) -> Path:
        """Write the baseline as sorted, stable JSON (round-trips exactly)."""

        entries = []
        for (rule, file_path, code), count in sorted(self._entries.items()):
            entries.extend(
                {"rule": rule, "path": file_path, "code": code} for _ in range(count)
            )
        path = Path(path)
        path.write_text(
            json.dumps({"version": BASELINE_VERSION, "entries": entries}, indent=2)
            + "\n",
            encoding="utf-8",
        )
        return path

    def split(self, findings: Sequence[Finding]) -> tuple[list[Finding], list[Finding]]:
        """Partition ``findings`` into (fresh, baselined).

        Each baseline entry absorbs at most one finding; order is preserved.
        """

        remaining = Counter(self._entries)
        fresh: list[Finding] = []
        grandfathered: list[Finding] = []
        for finding in findings:
            key = finding.fingerprint()
            if remaining.get(key, 0) > 0:
                remaining[key] -= 1
                grandfathered.append(finding)
            else:
                fresh.append(finding)
        return fresh, grandfathered
