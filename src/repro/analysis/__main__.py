"""CLI for the static-analysis suite.

Usage::

    python -m repro.analysis [paths...]
    python -m repro.analysis --format json src
    python -m repro.analysis --rule DET001 --rule DET002 src/repro/simulation
    python -m repro.analysis --baseline .analysis-baseline.json src README.md docs
    python -m repro.analysis --write-baseline .analysis-baseline.json src
    python -m repro.analysis --list-rules

Exit codes: 0 = clean, 1 = findings, 2 = usage/configuration error.
"""

from __future__ import annotations

import argparse
import sys
from pathlib import Path
from typing import Sequence

from repro.analysis.baseline import Baseline
from repro.analysis.core import all_rules, get_rule
from repro.analysis.engine import analyze_paths
from repro.analysis.reporters import render
from repro.exceptions import ConfigurationError

#: Scanned when no paths are given (whichever of these exist).
DEFAULT_PATHS = ("src", "README.md", "docs")


def build_parser() -> argparse.ArgumentParser:
    """The ``python -m repro.analysis`` argument parser."""

    parser = argparse.ArgumentParser(
        prog="python -m repro.analysis",
        description="Static analysis for determinism and serialization contracts.",
    )
    parser.add_argument(
        "paths",
        nargs="*",
        help="files or directories to analyze (default: src README.md docs)",
    )
    parser.add_argument(
        "--format",
        choices=("text", "json"),
        default="text",
        help="report format (default: text)",
    )
    parser.add_argument(
        "--rule",
        action="append",
        default=None,
        metavar="ID",
        help="run only this rule (repeatable)",
    )
    parser.add_argument(
        "--baseline",
        default=None,
        metavar="FILE",
        help="JSON baseline of grandfathered findings to ignore",
    )
    parser.add_argument(
        "--write-baseline",
        default=None,
        metavar="FILE",
        help="write all current findings as a new baseline and exit 0",
    )
    parser.add_argument(
        "--list-rules",
        action="store_true",
        help="list registered rules and exit",
    )
    return parser


def _list_rules() -> str:
    lines = []
    for rule in all_rules():
        suffixes = ",".join(rule.file_suffixes)
        lines.append(
            f"{rule.id}  [{rule.severity.value:7s}]  ({suffixes})  {rule.summary}"
        )
    return "\n".join(lines)


def main(argv: Sequence[str] | None = None) -> int:
    """Entry point; returns the process exit code."""

    parser = build_parser()
    options = parser.parse_args(argv)
    try:
        if options.list_rules:
            print(_list_rules())
            return 0
        rules = None
        if options.rule:
            rules = [get_rule(rule_id) for rule_id in options.rule]
        paths = options.paths or [p for p in DEFAULT_PATHS if Path(p).exists()]
        if not paths:
            raise ConfigurationError(
                "no analysis targets: pass paths explicitly or run from the repo root"
            )
        baseline = Baseline.load(options.baseline) if options.baseline else None
        report = analyze_paths(paths, rules=rules, baseline=baseline)
        if options.write_baseline:
            written = Baseline.from_findings(report.raw_findings).save(
                options.write_baseline
            )
            print(
                f"wrote baseline with {len(report.raw_findings)} entr(y/ies) "
                f"to {written}"
            )
            return 0
        print(render(report, options.format))
        return 0 if report.ok else 1
    except ConfigurationError as error:
        print(f"analysis: error: {error}", file=sys.stderr)
        return 2


if __name__ == "__main__":
    raise SystemExit(main())
