"""JWINS parameter ranking: wavelet transform + accumulation (Section III-A).

The ranker maintains the accumulated importance score ``V`` of every wavelet
coefficient.  Each round it

1. adds the wavelet transform of the local model change to a working copy of
   ``V`` (Equation 3) — this is the score used for TopK selection;
2. zeroes the entries of ``V`` that were selected for sharing; and
3. after averaging, adds the wavelet transform of the *whole-round* model
   change to ``V`` (Equation 4), so that un-shared coefficients keep growing
   and shared ones restart from the change caused by averaging.
"""

from __future__ import annotations

import numpy as np

from repro.sparsification.accumulation import ResidualAccumulator
from repro.wavelets.transform import ModelTransform

__all__ = ["WaveletRanker"]


class WaveletRanker:
    """Maintains coefficient importance scores across rounds for one node."""

    def __init__(self, transform: ModelTransform, use_accumulation: bool = True) -> None:
        self.transform = transform
        self.use_accumulation = use_accumulation
        self._accumulator = ResidualAccumulator(transform.coefficient_size())

    @property
    def coefficient_size(self) -> int:
        return self._accumulator.size

    @property
    def scores(self) -> np.ndarray:
        """The persistent accumulated scores ``V`` (read-only view)."""

        return self._accumulator.scores

    def round_scores(
        self, params_start: np.ndarray, params_trained: np.ndarray
    ) -> np.ndarray:
        """Equation 3: ``V' = V + DWT(x^(t,tau) - x^(t,0))``.

        With accumulation disabled (the Figure 8 ablation) the score is just
        the wavelet transform of this round's local change.
        """

        local_change = self.transform.forward(
            np.asarray(params_trained, dtype=np.float64)
            - np.asarray(params_start, dtype=np.float64)
        )
        if not self.use_accumulation:
            return local_change
        return self._accumulator.scores + local_change

    def round_scores_from_change(self, local_change: np.ndarray) -> np.ndarray:
        """Equation 3 from a precomputed coefficient-domain local change.

        The arena engine computes ``DWT(x^(t,tau) - x^(t,0))`` for *all* nodes
        in one batched pass and hands each ranker its row; this entry point
        skips the per-node transform of :meth:`round_scores` but returns
        bit-identical scores.  The input is never mutated (a defensive copy is
        taken on the non-accumulating path), so rows of a shared stacked
        matrix are safe to pass.
        """

        local_change = np.asarray(local_change, dtype=np.float64)
        if not self.use_accumulation:
            return local_change.copy()
        return self._accumulator.scores + local_change

    def mark_shared(self, indices: np.ndarray) -> None:
        """Zero the persistent scores of coefficients that were just shared."""

        if self.use_accumulation:
            self._accumulator.reset_indices(indices)

    def end_of_round(self, params_start: np.ndarray, params_final: np.ndarray) -> None:
        """Equation 4: ``V <- V + DWT(x^(t+1,0) - x^(t,0))``."""

        if not self.use_accumulation:
            return
        round_change = self.transform.forward(
            np.asarray(params_final, dtype=np.float64)
            - np.asarray(params_start, dtype=np.float64)
        )
        self._accumulator.add(round_change)

    def end_of_round_from_change(self, round_change: np.ndarray) -> None:
        """Equation 4 from a precomputed coefficient-domain round change.

        Batched twin of :meth:`end_of_round`: the arena engine transforms the
        whole-round change of every node in one pass and feeds each ranker its
        row.  A no-op when accumulation is disabled, exactly like the per-node
        path.
        """

        if not self.use_accumulation:
            return
        self._accumulator.add(round_change)

    # -- checkpointing --------------------------------------------------------------
    def state_dict(self) -> dict:
        """The persistent accumulator state, for checkpointing."""

        return self._accumulator.state_dict()

    def load_state_dict(self, state: dict) -> None:
        """Restore state captured by :meth:`state_dict`."""

        self._accumulator.load_state_dict(state)
