"""The sharing-scheme interface: the "communication stage" of decentralized learning.

The paper stresses that JWINS only concerns the communication stage of the
train–communicate–aggregate round and is independent of the aggregation
algorithm.  This module captures that boundary: a :class:`SharingScheme`
decides *what* a node sends to its neighbors (`prepare`) and *how* received
messages are combined with the node's own model (`aggregate`).  The simulator
drives schemes through this interface only, so full sharing, random sampling,
TopK, CHOCO-SGD and JWINS are interchangeable.
"""

from __future__ import annotations

from abc import ABC, abstractmethod
from dataclasses import dataclass, field
from typing import Any, Callable, Mapping

import numpy as np

from repro.compression.sizing import PayloadSize
from repro.exceptions import SimulationError

__all__ = ["Message", "RoundContext", "SchemeFactory", "SharingScheme"]


@dataclass(frozen=True)
class Message:
    """A message sent by one node to all of its neighbors in one round.

    ``payload`` is scheme-specific (dense parameters, sparse coefficients plus
    indices, CHOCO difference updates, ...); ``size`` is the measured wire
    size of the payload, which is what the byte-metering layer accounts.

    ``shared_fraction`` is the fraction of the model this message carries,
    reported by the scheme itself in :meth:`SharingScheme.prepare` (capped at
    1.0 and measured in parameter counts, i.e. ``values sent / model size``).
    It replaces the simulator's old payload-sniffing heuristic, which guessed
    the fraction from the size of a ``payload["values"]`` entry and silently
    fell back to 1.0 for any scheme using a different payload layout (e.g. a
    purely seed- or dictionary-coded payload) — an explicit field cannot
    mis-report. The default of 1.0 matches a full-model message.
    """

    sender: int
    kind: str
    payload: dict[str, Any] = field(repr=False)
    size: PayloadSize = field(default_factory=lambda: PayloadSize(0, 0))
    shared_fraction: float = 1.0


@dataclass
class RoundContext:
    """Everything a sharing scheme may need about the current round.

    Attributes
    ----------
    round_index:
        Zero-based communication round number ``t``.
    params_start:
        Flat model parameters at the start of the round, ``x^(t,0)``.
    params_trained:
        Flat model parameters after the local training steps, ``x^(t,tau)``.
    self_weight:
        The node's own weight ``W[i][i]`` in the mixing matrix.
    neighbor_weights:
        Mapping from neighbor id to ``W[i][j]`` for the current topology.
    rng:
        Per-node, per-round generator (used e.g. by the randomized cut-off).
    now:
        Simulated time (seconds) at which the round is happening.  Under the
        synchronous mode every node shares the barrier clock; under the
        asynchronous mode each node sees its own local clock.
    node_id:
        Identifier of the node this context belongs to (``-1`` when the
        context is built outside the simulator, e.g. in unit tests).
    """

    round_index: int
    params_start: np.ndarray
    params_trained: np.ndarray
    self_weight: float
    neighbor_weights: dict[int, float]
    rng: np.random.Generator
    now: float = 0.0
    node_id: int = -1

    @property
    def model_size(self) -> int:
        return int(self.params_trained.size)


class SharingScheme(ABC):
    """Per-node state machine implementing the communication stage."""

    #: Human-readable scheme name used in reports and logs.
    name = "abstract"

    @abstractmethod
    def prepare(self, context: RoundContext) -> Message:
        """Build the message this node sends to every neighbor this round."""

    @abstractmethod
    def aggregate(self, context: RoundContext, messages: list[Message]) -> np.ndarray:
        """Combine the node's own trained model with the received messages.

        Returns the new flat parameter vector ``x^(t+1,0)`` that the node
        starts the next round from.
        """

    def finalize(self, context: RoundContext, new_params: np.ndarray) -> None:
        """Hook called after aggregation with the final round result.

        JWINS uses it for the end-of-round accumulator update (Equation 4);
        most schemes need no post-processing, hence the default no-op.
        """

    # -- checkpointing -------------------------------------------------------------
    def state_dict(self) -> dict[str, Any]:
        """The scheme's mutable cross-round state, for checkpointing.

        Stateless schemes (full sharing, random sampling) inherit this empty
        default.  Stateful schemes override it together with
        :meth:`load_state_dict`; the returned mapping must only contain
        numbers, strings, ``None``, numpy arrays and lists/dicts thereof so
        :mod:`repro.checkpoint.serialization` can round-trip it exactly.
        """

        return {}

    def load_state_dict(self, state: Mapping[str, Any]) -> None:
        """Restore state captured by :meth:`state_dict` on a fresh instance."""

        if state:
            raise SimulationError(
                f"scheme {self.name!r} is stateless but received state keys "
                f"{sorted(state)}"
            )


SchemeFactory = Callable[[int, int, int], SharingScheme]
"""Factory signature: ``factory(node_id, model_size, seed) -> SharingScheme``."""
