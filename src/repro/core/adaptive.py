"""Adaptive, band-aware parameter ranking (the paper's future-work direction).

The conclusion of the paper suggests "an adaptive version of the importance
score based on the parameter type" as future research.  This module provides a
first concrete version of that idea at the wavelet level: the accumulated
importance scores are reweighted per decomposition band before TopK selection,
so the approximation band (which summarizes whole neighbourhoods of
parameters) can be prioritized over the finest detail bands, or vice versa.
"""

from __future__ import annotations

import numpy as np

from repro.core.config import JwinsConfig
from repro.core.jwins import JwinsScheme
from repro.exceptions import ConfigurationError
from repro.wavelets.packing import CoefficientLayout
from repro.wavelets.transform import WaveletTransform

__all__ = ["AdaptiveJwinsScheme", "adaptive_jwins_factory", "apply_band_weights", "band_weights_for"]


def band_weights_for(layout: CoefficientLayout, approximation_boost: float = 2.0) -> np.ndarray:
    """Per-band weights that emphasize coarser (lower-frequency) bands.

    Band 0 is the deepest approximation band; detail bands follow from deepest
    to shallowest.  The weight decays geometrically from ``approximation_boost``
    down to 1.0 for the finest detail band.
    """

    if approximation_boost <= 0:
        raise ConfigurationError("approximation_boost must be positive")
    bands = len(layout.band_sizes)
    if bands == 1:
        return np.array([1.0])
    exponents = np.linspace(1.0, 0.0, bands)
    return approximation_boost**exponents


def apply_band_weights(
    scores: np.ndarray, layout: CoefficientLayout, weights: np.ndarray
) -> np.ndarray:
    """Scale ``scores`` band by band according to ``weights``."""

    scores = np.asarray(scores, dtype=np.float64)
    weights = np.asarray(weights, dtype=np.float64)
    if scores.size != layout.total_size:
        raise ConfigurationError(
            f"scores have {scores.size} entries, layout expects {layout.total_size}"
        )
    if weights.size != len(layout.band_sizes):
        raise ConfigurationError(
            f"expected {len(layout.band_sizes)} band weights, got {weights.size}"
        )
    adjusted = scores.copy()
    for band, weight in zip(layout.band_slices(), weights):
        adjusted[band] *= weight
    return adjusted


class AdaptiveJwinsScheme(JwinsScheme):
    """JWINS with band-weighted ranking scores.

    Requires the wavelet transform (the band structure is what the weights act
    on); configuring it with ``use_wavelet=False`` is rejected.
    """

    name = "jwins-adaptive"

    def __init__(
        self,
        node_id: int,
        model_size: int,
        seed: int,
        config: JwinsConfig | None = None,
        approximation_boost: float = 2.0,
    ) -> None:
        config = config if config is not None else JwinsConfig()
        if not config.use_wavelet:
            raise ConfigurationError("AdaptiveJwinsScheme requires the wavelet transform")
        super().__init__(node_id, model_size, seed, config)
        assert isinstance(self.transform, WaveletTransform)
        self._band_weights = band_weights_for(self.transform.layout, approximation_boost)

    def _adjust_scores(self, scores: np.ndarray) -> np.ndarray:
        assert isinstance(self.transform, WaveletTransform)
        return apply_band_weights(scores, self.transform.layout, self._band_weights)


def adaptive_jwins_factory(config: JwinsConfig | None = None, approximation_boost: float = 2.0):
    """Factory for :class:`AdaptiveJwinsScheme` nodes."""

    def factory(node_id: int, model_size: int, seed: int) -> AdaptiveJwinsScheme:
        return AdaptiveJwinsScheme(
            node_id, model_size, seed, config, approximation_boost=approximation_boost
        )

    return factory
