"""JWINS randomized communication cut-off (Section III-B).

Instead of a global sharing fraction, every node independently samples the
fraction of coefficients it shares this round ("alpha") from a distribution
chosen to respect the overall communication budget.  The paper motivates the
randomization three ways: slow-changing parameters eventually get shared, the
network is never congested by all nodes using a large alpha at once, and herd
behaviour (everyone suddenly sharing over-specialized parameters) is avoided.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.exceptions import ConfigurationError

__all__ = ["CutoffDistribution"]

#: The paper's default alpha list (Section IV-B f): uniform over these fractions.
DEFAULT_ALPHAS = (0.10, 0.15, 0.20, 0.25, 0.30, 0.40, 1.00)


@dataclass(frozen=True)
class CutoffDistribution:
    """A discrete distribution over sharing fractions ``alpha``."""

    alphas: tuple[float, ...]
    probabilities: tuple[float, ...]

    def __post_init__(self) -> None:
        if len(self.alphas) != len(self.probabilities) or not self.alphas:
            raise ConfigurationError("alphas and probabilities must be non-empty and aligned")
        if any(not 0.0 < alpha <= 1.0 for alpha in self.alphas):
            raise ConfigurationError("every alpha must lie in (0, 1]")
        if any(p < 0.0 for p in self.probabilities):
            raise ConfigurationError("probabilities must be non-negative")
        total = float(sum(self.probabilities))
        if not np.isclose(total, 1.0, atol=1e-9):
            raise ConfigurationError(f"probabilities must sum to 1, got {total}")

    # -- constructors ---------------------------------------------------------
    @classmethod
    def uniform(cls, alphas: tuple[float, ...] = DEFAULT_ALPHAS) -> "CutoffDistribution":
        """Uniform distribution over ``alphas`` (the paper's default)."""

        count = len(alphas)
        return cls(tuple(alphas), tuple(1.0 / count for _ in range(count)))

    @classmethod
    def fixed(cls, alpha: float) -> "CutoffDistribution":
        """Degenerate distribution: always share fraction ``alpha``.

        Used by the "JWINS without random cut-off" ablation and by the plain
        random-sampling / TopK baselines.
        """

        return cls((float(alpha),), (1.0,))

    @classmethod
    def budgeted(cls, budget: float) -> "CutoffDistribution":
        """The paper's two-point distribution for a low communication budget.

        For a budget ``b`` the node shares the full model with probability
        ``b / 2`` and a small fraction the rest of the time, chosen so that the
        expected shared fraction equals ``b``.  With ``b = 0.2`` this yields
        ``p(alpha=100%) = 0.1`` and ``alpha = 10%`` otherwise; with ``b = 0.1``
        it yields ``p(alpha=100%) = 0.05`` and ``alpha ~= 5%`` otherwise —
        exactly the distributions used in the CHOCO comparison (Section IV-D).
        """

        if not 0.0 < budget <= 1.0:
            raise ConfigurationError("budget must be in (0, 1]")
        if budget == 1.0:
            return cls.fixed(1.0)
        p_full = budget / 2.0
        small_alpha = (budget - p_full) / (1.0 - p_full)
        return cls((small_alpha, 1.0), (1.0 - p_full, p_full))

    # -- behaviour ------------------------------------------------------------
    def sample(self, rng: np.random.Generator) -> float:
        """Draw one sharing fraction."""

        index = rng.choice(len(self.alphas), p=self.probabilities)
        return float(self.alphas[index])

    def expected_fraction(self) -> float:
        """The mean sharing fraction (the long-run communication budget)."""

        return float(np.dot(self.alphas, self.probabilities))

    def max_fraction(self) -> float:
        return float(max(self.alphas))
