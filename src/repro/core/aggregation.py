"""Weighted averaging of sparse (partial) model vectors.

When a node only receives a subset of a neighbor's coefficients, the missing
entries are substituted with the node's own values before the weighted
(Metropolis–Hastings) averaging — this is how partial sharing is aggregated in
DecentralizePy and what Algorithm 1 line 10 ("average all received partial
wavelets with own coefficients") means in practice.  The same helper serves
the parameter domain (random sampling, TopK) and the wavelet domain (JWINS).
"""

from __future__ import annotations

from typing import Iterable

import numpy as np

from repro.exceptions import SimulationError

__all__ = ["SparseContribution", "partial_weighted_average"]


class SparseContribution:
    """One neighbor's sparse contribution: ``values`` at ``indices`` with ``weight``."""

    __slots__ = ("weight", "indices", "values")

    def __init__(self, weight: float, indices: np.ndarray, values: np.ndarray) -> None:
        self.weight = float(weight)
        self.indices = np.asarray(indices, dtype=np.int64)
        self.values = np.asarray(values, dtype=np.float64)
        if self.indices.shape != self.values.shape:
            raise SimulationError("indices and values must have the same length")


def partial_weighted_average(
    own: np.ndarray,
    self_weight: float,
    contributions: Iterable[SparseContribution],
) -> np.ndarray:
    """Weighted average of the own vector with sparse neighbor contributions.

    Each neighbor's vector is mentally "completed" by filling its unshared
    entries with the own values, then the usual weighted average is taken:

    ``result = W_ii * own + sum_j W_ij * completed_j``

    which simplifies to adding ``W_ij * (values_j - own[indices_j])`` at the
    shared positions.  The weights of the received contributions plus the own
    weight may sum to *less* than one: any missing mass (a neighbor whose
    message was dropped or who left the network) implicitly keeps the node's
    own values, which is what makes the sharing schemes robust to message loss
    and churn.  A total above one is always an error — it would amplify the
    model instead of averaging it.
    """

    own = np.asarray(own, dtype=np.float64)
    result = own.copy()
    total_weight = float(self_weight)
    for contribution in contributions:
        indices = contribution.indices
        if indices.size and (indices.min() < 0 or indices.max() >= own.size):
            raise SimulationError("contribution indices out of range")
        result[indices] += contribution.weight * (contribution.values - own[indices])
        total_weight += contribution.weight
    if total_weight > 1.0 + 1e-6:
        raise SimulationError(
            f"mixing weights must not exceed 1 for a stable average, got {total_weight}"
        )
    return result
