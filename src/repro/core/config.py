"""Configuration of the JWINS sharing scheme.

One dataclass holds every knob of JWINS: the wavelet family and decomposition
depth, the randomized cut-off distribution, which codecs compress values and
metadata, and the three ablation switches of Figure 8 (wavelet, accumulation,
randomized cut-off).
"""

from __future__ import annotations

from dataclasses import dataclass, field, replace

from repro.core.cutoff import CutoffDistribution
from repro.exceptions import ConfigurationError

__all__ = ["JwinsConfig"]


@dataclass(frozen=True)
class JwinsConfig:
    """All JWINS hyperparameters and ablation switches.

    Attributes
    ----------
    wavelet, levels:
        Wavelet family and decomposition depth used for the coefficient
        representation (Sym2, four levels in the paper).
    cutoff:
        Randomized cut-off distribution over sharing fractions.
    use_wavelet:
        When False the ranking and averaging happen directly in the parameter
        domain ("JWINS without wavelet", which the paper notes is essentially
        TopK).
    use_accumulation:
        When False the score is only this round's change ("JWINS without
        accumulation").
    use_random_cutoff:
        When False every round uses the distribution's expected fraction
        ("JWINS without random cut-off").
    index_codec:
        Metadata codec: ``"elias-gamma"`` (default) or ``"raw"`` (Figure 9's
        uncompressed baseline).
    float_codec:
        Value codec: ``"fpzip-like"`` (lossless predictive + DEFLATE, default)
        or ``"raw32"``.
    """

    wavelet: str = "sym2"
    levels: int = 4
    cutoff: CutoffDistribution = field(default_factory=CutoffDistribution.uniform)
    use_wavelet: bool = True
    use_accumulation: bool = True
    use_random_cutoff: bool = True
    index_codec: str = "elias-gamma"
    float_codec: str = "fpzip-like"

    def __post_init__(self) -> None:
        if self.levels < 0:
            raise ConfigurationError("levels must be non-negative")
        if self.index_codec not in {"elias-gamma", "raw"}:
            raise ConfigurationError(f"unknown index codec {self.index_codec!r}")
        if self.float_codec not in {"fpzip-like", "raw32"}:
            raise ConfigurationError(f"unknown float codec {self.float_codec!r}")

    # -- convenience constructors ---------------------------------------------
    @classmethod
    def paper_default(cls) -> "JwinsConfig":
        """The configuration used for Table I / Figure 4 (uniform alpha list)."""

        return cls()

    @classmethod
    def low_budget(cls, budget: float) -> "JwinsConfig":
        """The two-point alpha distribution used against CHOCO (Figure 6)."""

        return cls(cutoff=CutoffDistribution.budgeted(budget))

    def without_wavelet(self) -> "JwinsConfig":
        """Figure 8 ablation: rank and average directly in the parameter domain."""

        return replace(self, use_wavelet=False)

    def without_accumulation(self) -> "JwinsConfig":
        """Figure 8 ablation: drop the cross-round score accumulation."""

        return replace(self, use_accumulation=False)

    def without_random_cutoff(self) -> "JwinsConfig":
        """Figure 8 ablation: use a fixed sharing fraction every round."""

        return replace(self, use_random_cutoff=False)

    @property
    def expected_sharing_fraction(self) -> float:
        """Long-run fraction of coefficients shared per round."""

        return self.cutoff.expected_fraction()
