"""The JWINS sharing scheme (Algorithm 1 of the paper).

Per round, a node running JWINS

1. transforms its local model change to the wavelet domain and adds it to the
   accumulated importance scores (Equation 3);
2. samples a sharing fraction ``alpha`` from the randomized cut-off
   distribution and takes the TopK coefficient indices by accumulated score;
3. sends the *current* wavelet coefficients at those indices, plus the
   Elias-gamma-compressed index list, to every neighbor;
4. averages the received partial wavelet vectors with its own coefficients
   using the Metropolis–Hastings weights, substituting its own values for the
   coefficients a neighbor did not share;
5. inverts the wavelet transform to obtain the next round's model and updates
   the accumulator with the whole-round change (Equation 4).
"""

from __future__ import annotations

import numpy as np

from repro.compression.float_codec import FloatCodec, RawFloatCodec
from repro.compression.indices import EliasGammaIndexCodec, RawIndexCodec
from repro.compression.sizing import PayloadSize
from repro.core.aggregation import SparseContribution, partial_weighted_average
from repro.core.config import JwinsConfig
from repro.core.interface import Message, RoundContext, SharingScheme
from repro.core.ranking import WaveletRanker
from repro.exceptions import SimulationError
from repro.sparsification.base import fraction_to_count
from repro.sparsification.topk import topk_indices
from repro.wavelets.transform import IdentityTransform, ModelTransform, WaveletTransform

__all__ = ["JwinsScheme", "jwins_factory"]

MESSAGE_KIND = "jwins-partial-wavelets"


class JwinsScheme(SharingScheme):
    """Per-node JWINS state: transform, ranker, cut-off and codecs."""

    name = "jwins"

    def __init__(
        self,
        node_id: int,
        model_size: int,
        seed: int,
        config: JwinsConfig | None = None,
    ) -> None:
        self.node_id = int(node_id)
        self.config = config if config is not None else JwinsConfig()
        self.transform: ModelTransform
        if self.config.use_wavelet:
            self.transform = WaveletTransform(
                model_size, wavelet=self.config.wavelet, levels=self.config.levels
            )
        else:
            self.transform = IdentityTransform(model_size)
        self.ranker = WaveletRanker(self.transform, self.config.use_accumulation)
        self._float_codec = (
            FloatCodec() if self.config.float_codec == "fpzip-like" else RawFloatCodec()
        )
        self._index_codec = (
            EliasGammaIndexCodec() if self.config.index_codec == "elias-gamma" else RawIndexCodec()
        )
        self._fixed_alpha = self.config.cutoff.expected_fraction()
        self._own_coefficients: np.ndarray | None = None
        self.last_alpha: float | None = None

    # -- extension hook ----------------------------------------------------------
    def _adjust_scores(self, scores: np.ndarray) -> np.ndarray:
        """Hook for subclasses to reweight the ranking scores before TopK.

        The base scheme uses the accumulated scores unchanged; the adaptive
        variant (:class:`repro.core.adaptive.AdaptiveJwinsScheme`) reweights
        them per wavelet band, the direction the paper sketches as future work.
        """

        return scores

    # -- Algorithm 1, lines 5-8 ------------------------------------------------
    def prepare(self, context: RoundContext) -> Message:
        local_change = self.transform.forward(
            np.asarray(context.params_trained, dtype=np.float64)
            - np.asarray(context.params_start, dtype=np.float64)
        )
        own_coefficients = self.transform.forward(context.params_trained)
        return self.prepare_from_coefficients(context, local_change, own_coefficients)

    def prepare_from_coefficients(
        self,
        context: RoundContext,
        local_change_coefficients: np.ndarray,
        own_coefficients: np.ndarray,
    ) -> Message:
        """Algorithm 1 lines 5-8 from precomputed coefficient vectors.

        The arena engine runs the two forward DWTs (of the local change and of
        the trained model) for *all* nodes in two batched passes and hands each
        scheme its rows; :meth:`prepare` delegates here after computing the
        same two vectors one node at a time, so both engines share one code
        path and produce bit-identical messages.  ``own_coefficients`` is
        retained by reference until :meth:`aggregate` consumes it and must not
        be mutated by the caller in between.
        """

        scores = self._adjust_scores(
            self.ranker.round_scores_from_change(local_change_coefficients)
        )
        if self.config.use_random_cutoff:
            alpha = self.config.cutoff.sample(context.rng)
        else:
            alpha = self._fixed_alpha
        self.last_alpha = alpha
        count = fraction_to_count(alpha, self.ranker.coefficient_size)
        indices = topk_indices(scores, count)
        own_coefficients = np.asarray(own_coefficients, dtype=np.float64)
        self._own_coefficients = own_coefficients
        values = own_coefficients[indices]
        self.ranker.mark_shared(indices)

        compressed_values = self._float_codec.compress(values)
        encoded_indices = self._index_codec.encode(indices, self.ranker.coefficient_size)
        size = PayloadSize(
            values_bytes=compressed_values.size_bytes,
            metadata_bytes=encoded_indices.size_bytes,
        )
        payload = {
            "indices": indices,
            "values": values,
            "alpha": alpha,
            "coefficient_size": self.ranker.coefficient_size,
        }
        return Message(
            sender=self.node_id,
            kind=MESSAGE_KIND,
            payload=payload,
            size=size,
            shared_fraction=min(1.0, values.size / max(1, context.model_size)),
        )

    # -- Algorithm 1, lines 9-11 ------------------------------------------------
    def aggregate(self, context: RoundContext, messages: list[Message]) -> np.ndarray:
        averaged = self.aggregate_coefficients(context, messages)
        return self.transform.inverse(averaged)

    def aggregate_coefficients(
        self, context: RoundContext, messages: list[Message]
    ) -> np.ndarray:
        """Algorithm 1 lines 9-10 without the final inverse transform.

        Returns the partially weighted-averaged coefficient vector still in
        the transform domain.  :meth:`aggregate` immediately inverts it; the
        arena engine instead stacks the rows of all nodes and reconstructs
        them in one batched inverse-DWT pass — bit-identical either way.
        """

        if self._own_coefficients is None:
            raise SimulationError("aggregate called before prepare")
        contributions = []
        for message in messages:
            if message.kind != MESSAGE_KIND:
                raise SimulationError(
                    f"JWINS received an incompatible message of kind {message.kind!r}"
                )
            weight = context.neighbor_weights.get(message.sender)
            if weight is None:
                raise SimulationError(
                    f"received a message from non-neighbor node {message.sender}"
                )
            contributions.append(
                SparseContribution(
                    weight=weight,
                    indices=message.payload["indices"],
                    values=message.payload["values"],
                )
            )
        averaged = partial_weighted_average(
            self._own_coefficients, context.self_weight, contributions
        )
        self._own_coefficients = None
        return averaged

    # -- Algorithm 1, line 12 ----------------------------------------------------
    def finalize(self, context: RoundContext, new_params: np.ndarray) -> None:
        self.ranker.end_of_round(context.params_start, new_params)

    def finalize_from_change(self, round_change_coefficients: np.ndarray) -> None:
        """Equation 4 from a precomputed coefficient-domain round change.

        Batched twin of :meth:`finalize`: the arena engine transforms
        ``x^(t+1,0) - x^(t,0)`` for all nodes in one pass and feeds each
        scheme its row.  A no-op when accumulation is disabled.
        """

        self.ranker.end_of_round_from_change(round_change_coefficients)

    # -- checkpointing -----------------------------------------------------------
    def state_dict(self) -> dict:
        """Accumulated scores plus the in-flight round state (if any)."""

        return {
            "ranker": self.ranker.state_dict(),
            "own_coefficients": (
                None if self._own_coefficients is None else self._own_coefficients.copy()
            ),
            "last_alpha": None if self.last_alpha is None else float(self.last_alpha),
        }

    def load_state_dict(self, state) -> None:
        """Restore state captured by :meth:`state_dict`."""

        self.ranker.load_state_dict(state["ranker"])
        own = state["own_coefficients"]
        self._own_coefficients = (
            None if own is None else np.asarray(own, dtype=np.float64).copy()
        )
        alpha = state["last_alpha"]
        self.last_alpha = None if alpha is None else float(alpha)


def jwins_factory(config: JwinsConfig | None = None):
    """Return a :data:`~repro.core.interface.SchemeFactory` building JWINS nodes."""

    def factory(node_id: int, model_size: int, seed: int) -> JwinsScheme:
        return JwinsScheme(node_id, model_size, seed, config)

    return factory
