"""JWINS core: the paper's primary contribution plus the sharing-scheme interface."""

from repro.core.adaptive import (
    AdaptiveJwinsScheme,
    adaptive_jwins_factory,
    apply_band_weights,
    band_weights_for,
)
from repro.core.aggregation import SparseContribution, partial_weighted_average
from repro.core.config import JwinsConfig
from repro.core.cutoff import DEFAULT_ALPHAS, CutoffDistribution
from repro.core.interface import Message, RoundContext, SchemeFactory, SharingScheme
from repro.core.jwins import JwinsScheme, jwins_factory
from repro.core.ranking import WaveletRanker

__all__ = [
    "AdaptiveJwinsScheme",
    "adaptive_jwins_factory",
    "apply_band_weights",
    "band_weights_for",
    "SparseContribution",
    "partial_weighted_average",
    "JwinsConfig",
    "DEFAULT_ALPHAS",
    "CutoffDistribution",
    "Message",
    "RoundContext",
    "SchemeFactory",
    "SharingScheme",
    "JwinsScheme",
    "jwins_factory",
    "WaveletRanker",
]
