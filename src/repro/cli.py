"""Command-line interface for running decentralized-learning experiments.

Installed as the ``jwins-repro`` console script; also runnable as
``python -m repro.cli``.  Three subcommands::

    jwins-repro run --workload cifar10 --scheme jwins full-sharing --nodes 8
    jwins-repro sweep --preset table1 --store results/table1.jsonl --workers 4
    jwins-repro regenerate --store results/table1.jsonl --artifact table1

``run`` executes one flat comparison (the historical behaviour — invoking the
CLI without a subcommand still defaults to it, so ``jwins-repro --workload
cifar10`` keeps working).  ``sweep`` expands a declarative grid — a preset from
:mod:`repro.orchestration.artifacts` or an ad-hoc workload x scheme x seed
product — and executes it on a worker pool against a resumable JSONL store.
``regenerate`` re-emits the paper artifacts from such a store without
recomputing anything.

Environment scenarios (churn, partitions, stragglers, time-varying
topologies) attach to ``run`` and ``sweep`` via ``--scenario`` — a preset
name (see ``--list-scenarios``) or a path to a
:meth:`~repro.scenarios.ScenarioSchedule.to_dict` JSON file.
"""

from __future__ import annotations

import argparse
import json
import sys
from pathlib import Path
from typing import Callable, Sequence

from typing import Mapping

from repro.checkpoint import CheckpointManager, SimulationSnapshot, preemption
from repro.core.interface import SchemeFactory
from repro.evaluation import WORKLOADS, get_workload, summarize_results
from repro.exceptions import (
    CheckpointError,
    ConfigurationError,
    ExperimentPaused,
    ReproError,
)
from repro.scenarios import (
    SCENARIO_PRESETS,
    ScenarioSchedule,
    describe_scenarios,
    get_scenario,
)
from repro.orchestration import (
    ARTIFACTS,
    ExperimentSpec,
    ResultStore,
    SchemeSpec,
    Sweep,
    SweepObserver,
    available_schemes,
    build_scheme_factory,
    describe_schemes,
    get_artifact,
    regenerate,
    run_fork,
    run_sweep,
)
from repro.observability import (
    MetricsRegistry,
    StatusBoard,
    TraceEmitter,
    diff_traces,
    summarize_trace,
    summarize_trace_dir,
    watch_status,
)
from repro.orchestration.fork import build_forked_spec
from repro.simulation import run_experiment
from repro.utils.profiling import Profiler, format_profile
from repro.version import __version__

__all__ = ["build_cli_parser", "build_parser", "main", "scheme_factory_from_name"]

SCHEME_CHOICES = available_schemes()

SUBCOMMANDS = ("run", "sweep", "regenerate", "fork", "store", "trace", "top")

#: Exit code of a run/sweep that checkpointed itself after an interrupt
#: (mirrors the conventional 128 + SIGINT).
PAUSED_EXIT_CODE = 130


def _scheme_params_from_args(name: str, args: argparse.Namespace) -> dict:
    """The registry parameters a ``run``/``sweep`` invocation implies."""

    params: dict = {}
    if name in ("jwins", "jwins-adaptive"):
        if args.budget is not None:
            params["budget"] = args.budget
    elif name in ("random-sampling", "topk"):
        params["fraction"] = args.fraction
    elif name == "choco":
        params["fraction"] = args.budget or args.fraction
        params["gamma"] = args.gamma
    elif name == "quantized":
        params["bits"] = args.bits
    return params


def scheme_factory_from_name(name: str, args: argparse.Namespace) -> SchemeFactory:
    """Translate a CLI scheme name into a configured scheme factory."""

    if name not in SCHEME_CHOICES:
        raise SystemExit(f"unknown scheme {name!r}; choose from {', '.join(SCHEME_CHOICES)}")
    return build_scheme_factory(name, _scheme_params_from_args(name, args))


def _add_run_arguments(parser: argparse.ArgumentParser) -> None:
    """The flat experiment flags shared by ``run`` and the ad-hoc ``sweep``."""

    parser.add_argument(
        "--workload",
        default="cifar10",
        help="one of the five paper workloads (cifar10, femnist, celeba, shakespeare, movielens)",
    )
    parser.add_argument(
        "--scheme",
        nargs="+",
        default=["jwins", "full-sharing"],
        choices=SCHEME_CHOICES,
        help="one or more sharing schemes to compare",
    )
    parser.add_argument("--nodes", type=int, default=None, help="number of DL nodes")
    parser.add_argument("--degree", type=int, default=None, help="topology degree")
    parser.add_argument("--rounds", type=int, default=None, help="communication rounds")
    parser.add_argument("--seed", type=int, default=1, help="experiment seed")
    parser.add_argument(
        "--dynamic-topology",
        action="store_true",
        help="re-sample the topology every round (Figure 7 setting; shorthand "
        "for --scenario dynamic)",
    )
    parser.add_argument(
        "--scenario",
        default=None,
        metavar="NAME_OR_JSON",
        help="environment scenario: a named preset (see --list-scenarios) or a "
        "path to a ScenarioSchedule JSON file (churn, partitions, stragglers, "
        "topology rewiring)",
    )
    parser.add_argument(
        "--budget",
        type=float,
        default=None,
        help="communication budget in (0, 1]; configures JWINS' alpha distribution and CHOCO's fraction",
    )
    parser.add_argument(
        "--fraction",
        type=float,
        default=0.37,
        help="sharing fraction for random-sampling / topk (default 0.37 as in Table I)",
    )
    parser.add_argument("--gamma", type=float, default=0.6, help="CHOCO consensus step size")
    parser.add_argument("--bits", type=int, default=4, help="bits for the quantized baseline")
    parser.add_argument(
        "--execution",
        choices=("sync", "async"),
        default="sync",
        help="sync = the paper's lock-step rounds; async = event-driven gossip "
        "where heterogeneous nodes progress at their own pace",
    )
    parser.add_argument(
        "--engine",
        choices=("pernode", "arena"),
        default="pernode",
        help="node-state engine: pernode = one private model per node (the "
        "reference twin); arena = batched (N, d) state arenas with vectorized "
        "SGD/DWT passes for large deployments (byte-identical results)",
    )
    parser.add_argument(
        "--slowdown",
        type=float,
        default=1.0,
        help="async mode: the slowest node's compute slowdown factor; node speeds "
        "are drawn uniformly from [1, SLOWDOWN] (1.0 = homogeneous cluster)",
    )
    parser.add_argument(
        "--drop-probability",
        type=float,
        default=0.0,
        help="probability that each message delivery is independently dropped",
    )
    parser.add_argument(
        "--profile",
        action="store_true",
        help="time the engine phases (train/encode/aggregate/evaluate) and "
        "print a per-phase breakdown after each scheme",
    )
    parser.add_argument(
        "--metrics",
        action="store_true",
        help="collect engine/network/checkpoint counters and print the "
        "registry after the run (telemetry only; results are unaffected)",
    )
    parser.add_argument(
        "--trace",
        default=None,
        metavar="PATH",
        help="write a structured JSONL event trace (manifest, rounds, "
        "messages, evaluations, checkpoints) to PATH; schemes of one "
        "invocation share the file, back to back",
    )
    parser.add_argument(
        "--status",
        default=None,
        metavar="DIR",
        help="write an atomically updated status.json heartbeat into DIR "
        "(per-scheme progress, rounds/sec, ETA); watch it live with "
        "`jwins-repro top DIR` (telemetry only; results are unaffected)",
    )
    parser.add_argument(
        "--checkpoint-every",
        type=int,
        default=0,
        metavar="K",
        help="snapshot the full mid-run state every K completed rounds into "
        "--checkpoint-dir (0 = off); SIGINT then pauses the run at the next "
        "round boundary instead of losing it",
    )
    parser.add_argument(
        "--checkpoint-dir",
        default=None,
        metavar="DIR",
        help="directory snapshots are written to (one latest snapshot per "
        "experiment, plus a lineage.jsonl provenance log)",
    )
    parser.add_argument(
        "--resume-from",
        default=None,
        metavar="SNAPSHOT",
        help="continue a paused run from a snapshot file; the remaining "
        "rounds produce results byte-identical to an uninterrupted run",
    )
    parser.add_argument(
        "--list-workloads",
        action="store_true",
        help="print the workload registry and exit",
    )
    parser.add_argument(
        "--list-schemes",
        action="store_true",
        help="print the scheme registry and exit",
    )
    parser.add_argument(
        "--list-scenarios",
        action="store_true",
        help="print the scenario presets and exit",
    )
    parser.add_argument("--version", action="version", version=f"jwins-repro {__version__}")


def build_parser() -> argparse.ArgumentParser:
    """The flat ``run`` parser (kept for programmatic/backwards-compatible use)."""

    parser = argparse.ArgumentParser(
        prog="jwins-repro",
        description="Run decentralized-learning experiments from the JWINS reproduction.",
    )
    _add_run_arguments(parser)
    return parser


def build_cli_parser() -> argparse.ArgumentParser:
    """The full subcommand parser: ``run`` (default), ``sweep``, ``regenerate``."""

    parser = argparse.ArgumentParser(
        prog="jwins-repro",
        description="Run decentralized-learning experiments from the JWINS reproduction.",
    )
    parser.add_argument("--version", action="version", version=f"%(prog)s {__version__}")
    subparsers = parser.add_subparsers(dest="command")

    run_parser = subparsers.add_parser(
        "run", help="run one flat scheme comparison (the default subcommand)"
    )
    _add_run_arguments(run_parser)
    run_parser.set_defaults(handler=_run_command)

    sweep_parser = subparsers.add_parser(
        "sweep",
        help="expand a declarative experiment grid and execute it on a worker pool",
    )
    sweep_parser.add_argument(
        "--preset",
        choices=tuple(ARTIFACTS),
        default=None,
        help="run a predefined artifact grid instead of an ad-hoc one",
    )
    sweep_parser.add_argument(
        "--workload",
        nargs="+",
        default=["cifar10"],
        help="workload axis of an ad-hoc sweep",
    )
    sweep_parser.add_argument(
        "--scheme",
        nargs="+",
        default=["jwins", "full-sharing"],
        choices=SCHEME_CHOICES,
        help="scheme axis of an ad-hoc sweep",
    )
    sweep_parser.add_argument(
        "--seeds",
        nargs="+",
        type=int,
        default=None,
        help="seed axis (repetitions) of an ad-hoc sweep",
    )
    sweep_parser.add_argument(
        "--scenario",
        nargs="+",
        default=None,
        metavar="NAME_OR_JSON",
        help="scenario axis of an ad-hoc sweep: preset names or ScenarioSchedule "
        "JSON files (presets are sized for --nodes/--rounds, falling back to "
        "the first workload's defaults)",
    )
    sweep_parser.add_argument("--nodes", type=int, default=None, help="number of DL nodes")
    sweep_parser.add_argument("--degree", type=int, default=None, help="topology degree")
    sweep_parser.add_argument("--rounds", type=int, default=None, help="communication rounds")
    sweep_parser.add_argument(
        "--budget", type=float, default=None, help="JWINS/CHOCO communication budget"
    )
    sweep_parser.add_argument(
        "--fraction", type=float, default=0.37, help="random-sampling/topk fraction"
    )
    sweep_parser.add_argument("--gamma", type=float, default=0.6, help="CHOCO step size")
    sweep_parser.add_argument("--bits", type=int, default=4, help="quantized baseline bits")
    sweep_parser.add_argument(
        "--store",
        default="sweep-results.jsonl",
        help="JSONL result store; completed cells found here are skipped (resume)",
    )
    sweep_parser.add_argument(
        "--workers", type=int, default=1, help="worker processes (1 = in-process)"
    )
    sweep_parser.add_argument(
        "--force",
        action="store_true",
        help="re-execute cells even when the store already holds them",
    )
    sweep_parser.add_argument(
        "--scale",
        nargs="+",
        default=None,
        metavar="FIELD=VALUE",
        help="config overrides applied to every cell, e.g. `--scale num_nodes=4 "
        "rounds=2` (shrinks a preset for smoke runs; regenerate needs the same "
        "--scale to find the cells)",
    )
    sweep_parser.add_argument(
        "--dry-run",
        action="store_true",
        help="print the expanded cell list (content hash + label) and exit "
        "without executing anything or touching the store",
    )
    sweep_parser.add_argument(
        "--checkpoint-dir",
        default=None,
        metavar="DIR",
        help="enable preemptible execution: SIGINT checkpoints in-flight cells "
        "here and stops; re-running the same sweep resumes them mid-spec, "
        "byte-identical to an uninterrupted run",
    )
    sweep_parser.add_argument(
        "--checkpoint-every",
        type=int,
        default=1,
        metavar="K",
        help="per-cell snapshot cadence in completed rounds when "
        "--checkpoint-dir is set (default 1)",
    )
    sweep_parser.add_argument(
        "--profile",
        action="store_true",
        help="profile every executed cell and print an aggregated per-phase "
        "table (stored rows stay byte-identical; profiling is telemetry only)",
    )
    sweep_parser.add_argument(
        "--metrics",
        action="store_true",
        help="merge every executed cell's counters into one registry "
        "(deterministic merge, identical for any --workers) and print it",
    )
    sweep_parser.add_argument(
        "--trace",
        default=None,
        metavar="DIR",
        help="write one <spec hash>.trace.jsonl per executed cell into DIR "
        "(per-cell files keep traces stable across worker counts)",
    )
    sweep_parser.add_argument(
        "--status",
        default=None,
        metavar="DIR",
        help="write an atomically updated status.json heartbeat into DIR: "
        "per-cell state, round progress, rounds/sec, ETA, worker pid and "
        "last checkpoint round, from both the serial and the pool path; "
        "watch it live with `jwins-repro top DIR`",
    )
    sweep_parser.set_defaults(handler=_sweep_command)

    fork_parser = subparsers.add_parser(
        "fork",
        help="replay a checkpoint under a mutated config axis (e.g. a different "
        "scenario) without re-running the common prefix",
    )
    fork_parser.add_argument(
        "--snapshot", required=True, help="snapshot file to fork from"
    )
    fork_parser.add_argument(
        "--scenario",
        default=None,
        metavar="NAME_OR_JSON",
        help="scenario to replay the remaining rounds under (preset name or "
        "ScenarioSchedule JSON file)",
    )
    fork_parser.add_argument(
        "--set",
        nargs="+",
        default=None,
        metavar="FIELD=VALUE",
        help="config mutations for the forked future, e.g. `--set rounds=20 "
        "message_drop_probability=0.2` (structural fields like num_nodes are "
        "refused)",
    )
    fork_parser.add_argument(
        "--rounds", type=int, default=None, help="round budget of the forked run"
    )
    fork_parser.add_argument(
        "--store",
        default=None,
        help="JSONL store to append the forked result to (keyed by the forked "
        "spec's hash, which records the fork lineage)",
    )
    fork_parser.add_argument(
        "--checkpoint-dir",
        default=None,
        metavar="DIR",
        help="make the forked run itself checkpointable",
    )
    fork_parser.add_argument(
        "--checkpoint-every", type=int, default=0, metavar="K",
        help="snapshot cadence of the forked run (requires --checkpoint-dir)",
    )
    fork_parser.add_argument(
        "--profile",
        action="store_true",
        help="time the forked run's engine phases and print the breakdown",
    )
    fork_parser.add_argument(
        "--metrics",
        action="store_true",
        help="collect the forked run's counters and print the registry",
    )
    fork_parser.add_argument(
        "--trace",
        default=None,
        metavar="PATH",
        help="write the forked run's JSONL event trace to PATH; when PATH is "
        "an existing directory (e.g. the parent sweep's --trace dir) the file "
        "is named <forked spec hash>.trace.jsonl, which can never collide "
        "with the parent cell's trace",
    )
    fork_parser.add_argument(
        "--status",
        default=None,
        metavar="DIR",
        help="write an atomically updated status.json heartbeat for the "
        "forked run into DIR (watch with `jwins-repro top DIR`)",
    )
    fork_parser.set_defaults(handler=_fork_command)

    trace_parser = subparsers.add_parser(
        "trace", help="inspect and compare JSONL run traces written by --trace"
    )
    trace_parser.add_argument(
        "action",
        choices=("summarize", "diff"),
        help="summarize: per-run, per-phase and per-node rollups of a trace "
        "file, or a cross-cell rollup of a sweep trace directory; diff: "
        "structural comparison of two wall-stripped traces with first-"
        "divergence localization and a causal backtrace",
    )
    trace_parser.add_argument(
        "path", help="trace file (or, for summarize, a sweep trace directory)"
    )
    trace_parser.add_argument(
        "path_b",
        nargs="?",
        default=None,
        help="second trace file (diff only)",
    )
    trace_parser.add_argument(
        "--json",
        action="store_true",
        help="diff: emit the forensic report as JSON instead of text",
    )
    trace_parser.set_defaults(handler=_trace_command)

    top_parser = subparsers.add_parser(
        "top",
        help="watch a sweep's status.json heartbeat as a refreshing table",
    )
    top_parser.add_argument(
        "dir",
        help="the --status directory of a running (or finished) sweep, or a "
        "status.json path",
    )
    top_parser.add_argument(
        "--interval",
        type=float,
        default=2.0,
        metavar="SECONDS",
        help="refresh period (default: 2.0)",
    )
    top_parser.add_argument(
        "--once",
        action="store_true",
        help="render a single frame and exit (no screen clearing)",
    )
    top_parser.set_defaults(handler=_top_command)

    store_parser = subparsers.add_parser(
        "store", help="maintain a JSONL result store"
    )
    store_parser.add_argument(
        "action",
        choices=("compact",),
        help="compact: rewrite the store dropping superseded/duplicate/corrupt "
        "rows, printing a before/after summary",
    )
    store_parser.add_argument(
        "--store", required=True, help="JSONL result store to operate on"
    )
    store_parser.set_defaults(handler=_store_command)

    regen_parser = subparsers.add_parser(
        "regenerate",
        help="re-emit the paper artifacts from a result store without recomputing",
    )
    regen_parser.add_argument(
        "--store", required=True, help="JSONL result store produced by `sweep`"
    )
    regen_parser.add_argument(
        "--artifact",
        nargs="+",
        choices=tuple(ARTIFACTS),
        default=None,
        help="artifacts to re-emit (default: all)",
    )
    regen_parser.add_argument(
        "--output",
        default="benchmarks/output",
        help="directory the artifact files are written to",
    )
    regen_parser.add_argument(
        "--scale",
        nargs="+",
        default=None,
        metavar="FIELD=VALUE",
        help="the same config overrides the sweep ran with (content hashes must match)",
    )
    regen_parser.set_defaults(handler=_regenerate_command)
    return parser


def _parse_scale(entries: Sequence[str] | None, flag: str = "--scale") -> dict | None:
    """Parse ``--scale num_nodes=4 rounds=2`` pairs into an override mapping.

    ``flag`` names the CLI option in error messages (``fork`` reuses the
    parser for its ``--set`` mutations).
    """

    if entries is None:
        return None
    scale: dict = {}
    for entry in entries:
        field, separator, raw = entry.partition("=")
        if not separator or not field:
            raise SystemExit(f"{flag} entries must look like FIELD=VALUE, got {entry!r}")
        if raw.lower() in ("true", "false"):
            value: object = raw.lower() == "true"
        else:
            try:
                value = float(raw) if "." in raw or "e" in raw.lower() else int(raw)
            except ValueError:
                value = raw
        scale[field] = value
    return scale


def _resolve_scenario(value: str, num_nodes: int, rounds: int) -> ScenarioSchedule:
    """Turn a ``--scenario`` argument into a schedule, exiting cleanly on errors.

    Preset names win (so a stray local file cannot shadow ``churn``); a value
    ending in ``.jsonl`` is compiled as an availability/latency trace via
    :meth:`~repro.scenarios.ScenarioSchedule.from_trace` (clipped to the
    deployment); any other value ending in ``.json`` or naming an existing
    file is parsed as a :meth:`~repro.scenarios.ScenarioSchedule.to_dict`
    document.
    """

    path = Path(value)
    if value.lower() in SCENARIO_PRESETS:
        return get_scenario(value, num_nodes=num_nodes, rounds=rounds)
    if value.endswith(".jsonl"):
        try:
            return ScenarioSchedule.from_trace(
                path, name=path.stem, num_nodes=num_nodes, rounds=rounds
            )
        except ConfigurationError as error:
            raise SystemExit(f"invalid scenario trace {value!r}: {error}")
    if value.endswith(".json") or path.exists():
        try:
            data = json.loads(path.read_text(encoding="utf-8"))
        except OSError as error:
            raise SystemExit(f"cannot read scenario file {value!r}: {error}")
        except json.JSONDecodeError as error:
            raise SystemExit(f"scenario file {value!r} is not valid JSON: {error}")
        try:
            schedule = ScenarioSchedule.from_dict(data)
            schedule.validate_for(num_nodes, rounds=rounds)
        except ConfigurationError as error:
            raise SystemExit(f"invalid scenario file {value!r}: {error}")
        return schedule
    try:
        return get_scenario(value, num_nodes=num_nodes, rounds=rounds)
    except ConfigurationError as error:
        raise SystemExit(str(error))


def _load_snapshot(path: str) -> SimulationSnapshot:
    """Load and integrity-check a snapshot file, exiting cleanly on failure."""

    try:
        return SimulationSnapshot.load(path)
    except CheckpointError as error:
        raise SystemExit(str(error))


def _spec_for_run(
    args: argparse.Namespace, scheme_name: str, overrides: dict
) -> ExperimentSpec:
    """The :class:`ExperimentSpec` a flat ``run`` invocation is equivalent to.

    Checkpoint-enabled runs route through the spec machinery so every
    snapshot is tied to a content hash; the spec pins the CLI seed explicitly,
    which makes its resolved seed (and therefore the results) identical to
    the plain ``run_experiment`` path.
    """

    spec_overrides = dict(overrides)
    spec_overrides["execution"] = args.execution
    scenario = spec_overrides.get("scenario")
    if scenario is not None and not isinstance(scenario, Mapping):
        spec_overrides["scenario"] = scenario.to_dict()
    return ExperimentSpec(
        workload=args.workload,
        scheme=SchemeSpec(
            scheme_name, _scheme_params_from_args(scheme_name, args), label=scheme_name
        ),
        overrides=spec_overrides,
    )


# -- subcommand handlers ---------------------------------------------------------------
def _handle_list_flags(args: argparse.Namespace) -> bool:
    """Print the requested registries; returns True when the CLI should exit 0."""

    listed = False
    if getattr(args, "list_workloads", False):
        rows = [
            [name, workload.config.partition, workload.description]
            for name, workload in WORKLOADS.items()
        ]
        width = max(len(name) for name, _, _ in rows)
        for name, partition, description in rows:
            print(f"{name:{width}s}  partition={partition:8s}  {description}")
        listed = True
    if getattr(args, "list_schemes", False):
        print(describe_schemes())
        listed = True
    if getattr(args, "list_scenarios", False):
        print(describe_scenarios())
        listed = True
    return listed


def _run_command(args: argparse.Namespace) -> int:
    if _handle_list_flags(args):
        return 0
    if args.budget is not None and not 0.0 < args.budget <= 1.0:
        raise SystemExit("--budget must be in (0, 1]")
    if args.slowdown < 1.0:
        raise SystemExit("--slowdown must be >= 1")
    if not 0.0 <= args.drop_probability < 1.0:
        raise SystemExit("--drop-probability must be in [0, 1)")

    if args.scenario is not None and args.dynamic_topology:
        raise SystemExit(
            "--scenario and --dynamic-topology are mutually exclusive; "
            "use --scenario dynamic for the per-round rewiring"
        )
    if args.checkpoint_every < 0:
        raise SystemExit("--checkpoint-every must be non-negative")
    if args.checkpoint_every > 0 and args.checkpoint_dir is None:
        raise SystemExit("--checkpoint-every requires --checkpoint-dir")
    checkpointing = bool(
        args.checkpoint_every or args.checkpoint_dir or args.resume_from
    )
    if args.resume_from is not None and len(args.scheme) != 1:
        raise SystemExit("--resume-from resumes one run; pass exactly one --scheme")

    try:
        workload = get_workload(args.workload)
    except ConfigurationError as error:
        raise SystemExit(str(error))
    # Checkpoint-enabled runs rebuild the task inside spec.run(); only the
    # plain path needs it materialized here (dataset generation is the
    # expensive part of a workload).
    task = None if checkpointing else workload.make_task(seed=args.seed)
    overrides = {
        "seed": args.seed,
        "dynamic_topology": args.dynamic_topology,
        "compute_speed_range": (1.0, args.slowdown),
        "message_drop_probability": args.drop_probability,
    }
    if args.nodes is not None:
        overrides["num_nodes"] = args.nodes
    if args.degree is not None:
        overrides["degree"] = args.degree
    if args.rounds is not None:
        overrides["rounds"] = args.rounds
    if args.engine != "pernode":
        # Conditional so default invocations keep their historical spec hashes.
        overrides["engine"] = args.engine
    if args.scenario is not None:
        num_nodes = args.nodes if args.nodes is not None else workload.config.num_nodes
        rounds = args.rounds if args.rounds is not None else workload.config.rounds
        overrides["scenario"] = _resolve_scenario(args.scenario, num_nodes, rounds)
    try:
        config = workload.make_config(execution=args.execution, **overrides)
    except ConfigurationError as error:
        raise SystemExit(f"invalid configuration: {error}")

    scenario_note = "" if config.scenario is None else f" scenario={config.scenario.name}"
    engine_note = "" if config.engine == "pernode" else f" engine={config.engine}"
    print(
        f"workload={workload.name} nodes={config.num_nodes} rounds={config.rounds} "
        f"partition={config.partition} seed={config.seed} execution={config.execution}"
        f"{engine_note}{scenario_note}"
    )
    results = {}
    metrics = MetricsRegistry() if args.metrics else None
    trace = TraceEmitter(args.trace) if args.trace is not None else None
    board = None
    run_keys: dict = {}
    if args.status is not None:
        # Key the heartbeat cells by the spec hash each scheme run is
        # equivalent to, so `run` and `sweep` status files read the same way.
        board = StatusBoard(
            args.status, sweep_name=f"run:{args.workload}", workers=1
        )
        for scheme_name in args.scheme:
            run_keys[scheme_name] = _spec_for_run(
                args, scheme_name, overrides
            ).content_hash()
        board.register_cells(
            [
                (run_keys[name], f"{args.workload}/{name}", config.rounds)
                for name in args.scheme
            ]
        )
        board.start_auto_refresh()
    final_state = "failed"
    try:
        for scheme_name in args.scheme:
            print(f"running {scheme_name} ...")
            profiler = Profiler() if args.profile else None
            heartbeat = (
                None
                if board is None
                else board.heartbeat_for(
                    run_keys[scheme_name],
                    total_rounds=config.rounds,
                    registry=metrics,
                )
            )
            if checkpointing:
                spec = _spec_for_run(args, scheme_name, overrides)
                snapshot = None
                if args.resume_from is not None:
                    snapshot = _load_snapshot(args.resume_from)
                    if snapshot.spec_hash() != spec.content_hash():
                        embedded = snapshot.spec_hash()
                        raise SystemExit(
                            f"snapshot {args.resume_from!r} does not match this "
                            f"invocation: it embeds spec hash "
                            f"{'(none)' if embedded is None else embedded[:12] + '...'}, "
                            f"the command line implies {spec.content_hash()[:12]}...; "
                            "re-run with the original flags, or replay it under a "
                            "changed config with `fork`"
                        )
                previous_handler = preemption.install_preemption_handler()
                try:
                    result = spec.run(
                        checkpoint_dir=args.checkpoint_dir,
                        checkpoint_every=args.checkpoint_every,
                        snapshot=snapshot,
                        profiler=profiler,
                        metrics=metrics,
                        trace=trace,
                        heartbeat=heartbeat,
                    )
                except ExperimentPaused as paused:
                    round_index = paused.snapshot.rounds_completed
                    if board is not None:
                        board.mark_paused(run_keys[scheme_name], int(round_index))
                        final_state = "interrupted"
                    if args.checkpoint_dir is not None:
                        path = CheckpointManager(args.checkpoint_dir).path_for(
                            spec.content_hash()
                        )
                        print(
                            f"paused {scheme_name} at round {round_index}; resume with "
                            f"--resume-from {path}"
                        )
                    else:
                        print(f"paused {scheme_name} at round {round_index}")
                    return PAUSED_EXIT_CODE
                except ReproError as error:
                    raise SystemExit(f"cannot run {scheme_name}: {error}")
                finally:
                    preemption.restore_handler(previous_handler)
                    preemption.reset()
            else:
                factory = scheme_factory_from_name(scheme_name, args)
                try:
                    result = run_experiment(
                        task,
                        factory,
                        config,
                        scheme_name=scheme_name,
                        profiler=profiler,
                        metrics=metrics,
                        trace=trace,
                        heartbeat=heartbeat,
                    )
                except ReproError as error:
                    # e.g. a scenario whose topology generator cannot fit the
                    # deployment — undefined setups exit cleanly, never a traceback.
                    raise SystemExit(f"cannot run {scheme_name}: {error}")
            results[scheme_name] = result
            if board is not None:
                board.mark_done(run_keys[scheme_name], result.rounds_completed)
            if profiler is not None:
                print(f"\n[{scheme_name} profile]")
                print(
                    format_profile(
                        result.phase_seconds, result.rounds_completed, profiler.counts
                    )
                )
                print()
        final_state = "done"
    finally:
        if trace is not None:
            trace.close()
        if board is not None:
            board.finalize(final_state)

    print()
    print(summarize_results(results))
    if metrics is not None:
        print()
        print("[metrics]")
        print(metrics.render())
    if trace is not None:
        print(f"\ntrace written to {args.trace}")
    return 0


class _PrintingObserver(SweepObserver):
    """Progress lines for the ``sweep`` subcommand.

    ``on_start`` fires at submission time, which in pool mode means every
    pending cell at once — so per-cell "running" lines are only printed for
    serial runs, where submission and execution coincide.
    """

    def __init__(self, announce_starts: bool = True) -> None:
        self.announce_starts = announce_starts

    def on_skip(self, spec, result) -> None:
        print(f"skipping {spec.label} (stored, acc={100 * result.final_accuracy:.1f}%)")

    def on_start(self, spec) -> None:
        if self.announce_starts:
            print(f"running {spec.label} ...")

    def on_result(self, spec, result) -> None:
        print(f"finished {spec.label}: acc={100 * result.final_accuracy:.1f}%")

    def on_pause(self, spec, rounds_completed) -> None:
        print(f"paused {spec.label} at round {rounds_completed} (snapshot saved)")


def _build_adhoc_sweep(args: argparse.Namespace) -> Sweep:
    schemes = tuple(
        SchemeSpec(name, _scheme_params_from_args(name, args), label=name)
        for name in args.scheme
    )
    base_overrides: dict = {}
    if args.nodes is not None:
        base_overrides["num_nodes"] = args.nodes
    if args.degree is not None:
        base_overrides["degree"] = args.degree
    if args.rounds is not None:
        base_overrides["rounds"] = args.rounds
    axes: dict = {}
    if args.seeds is not None:
        axes["seed"] = tuple(args.seeds)
    if args.scenario:
        reference = get_workload(args.workload[0])  # ConfigurationError -> SystemExit
        num_nodes = args.nodes if args.nodes is not None else reference.config.num_nodes
        rounds = args.rounds if args.rounds is not None else reference.config.rounds
        axes["scenario"] = tuple(
            _resolve_scenario(name, num_nodes, rounds).to_dict()
            for name in args.scenario
        )
    return Sweep(
        name="adhoc",
        workloads=tuple(args.workload),
        schemes=schemes,
        axes=axes,
        base_overrides=base_overrides,
    )


def _print_sweep_telemetry(
    args: argparse.Namespace,
    outcome,
    metrics: MetricsRegistry | None,
) -> None:
    """Aggregated profile / metrics / trace footers of a ``sweep`` invocation.

    The per-cell phase telemetry rides back on the in-memory result objects
    (never on the stored rows), so the aggregate is a plain sum over the
    cells this invocation executed.
    """

    if args.profile:
        totals: dict[str, float] = {}
        rounds = 0
        for spec in outcome.executed:
            result = outcome.result_for(spec)
            for phase, seconds in result.phase_seconds.items():
                totals[phase] = totals.get(phase, 0.0) + seconds
            rounds += result.rounds_completed
        if totals:
            print(f"\n[profile: aggregated over {len(outcome.executed)} executed cell(s)]")
            print(format_profile(totals, rounds))
    if metrics is not None:
        print(f"\n[metrics: merged over {len(outcome.executed)} executed cell(s)]")
        print(metrics.render())
    if args.trace is not None and outcome.executed:
        print(f"\n{len(outcome.executed)} trace file(s) written to {args.trace}/")


def _sweep_command(args: argparse.Namespace) -> int:
    if args.workers < 1:
        raise SystemExit("--workers must be >= 1")
    if args.checkpoint_every < 0:
        raise SystemExit("--checkpoint-every must be non-negative")
    scale = _parse_scale(args.scale)
    try:
        if args.preset is not None:
            sweep = get_artifact(args.preset).build_sweep(scale)
        else:
            sweep = _build_adhoc_sweep(args)
            if scale:
                sweep = Sweep(
                    name=sweep.name,
                    workloads=sweep.workloads,
                    schemes=sweep.schemes,
                    axes=sweep.axes,
                    base_overrides={**sweep.base_overrides, **scale},
                )
        cells = sweep.cells()  # validate workloads/schemes/overrides before executing
    except ConfigurationError as error:
        raise SystemExit(f"invalid sweep: {error}")

    if args.dry_run:
        # Expansion preview: content hash, resolved seed and label per cell,
        # no execution and no store side effects.
        seen: set[str] = set()
        for cell in cells:
            key = cell.spec.content_hash()
            duplicate = "  (duplicate: executes once)" if key in seen else ""
            seen.add(key)
            print(f"{key}  seed={cell.spec.resolved_seed():<10d} {cell.label}{duplicate}")
        print()
        print(f"sweep={sweep.name}: {len(cells)} cell(s), {len(seen)} unique")
        return 0

    store = ResultStore(args.store)
    print(
        f"sweep={sweep.name} cells={len(sweep)} store={args.store} "
        f"workers={args.workers} (stored: {len(store)})"
    )
    metrics = MetricsRegistry() if args.metrics else None
    try:
        outcome = run_sweep(
            sweep,
            store,
            workers=args.workers,
            observer=_PrintingObserver(announce_starts=args.workers == 1),
            force=args.force,
            checkpoint_dir=args.checkpoint_dir,
            checkpoint_every=args.checkpoint_every if args.checkpoint_dir else 0,
            profile=args.profile,
            metrics=metrics,
            trace_dir=args.trace,
            status_dir=args.status,
        )
    except ConfigurationError as error:
        # e.g. an unknown --scale field, which only surfaces when a cell's
        # configuration is materialized.
        raise SystemExit(f"invalid sweep: {error}")
    print()
    print(f"executed {len(outcome.executed)} cell(s), skipped {len(outcome.skipped)}")
    _print_sweep_telemetry(args, outcome, metrics)
    if outcome.interrupted:
        print(
            f"sweep interrupted: {len(outcome.paused)} cell(s) checkpointed "
            f"mid-run; re-run the same command to resume"
        )
        return PAUSED_EXIT_CODE
    print(summarize_results(outcome.labelled_results()))
    return 0


def _fork_command(args: argparse.Namespace) -> int:
    if args.checkpoint_every < 0:
        raise SystemExit("--checkpoint-every must be non-negative")
    if args.checkpoint_every > 0 and args.checkpoint_dir is None:
        raise SystemExit("--checkpoint-every requires --checkpoint-dir")
    snapshot = _load_snapshot(args.snapshot)
    mutations: dict = dict(_parse_scale(args.set, flag="--set") or {})
    if args.rounds is not None:
        mutations["rounds"] = args.rounds
    if args.scenario is not None:
        num_nodes = int(snapshot.config.get("num_nodes", 0))
        rounds = int(mutations.get("rounds", snapshot.config.get("rounds", 0)))
        mutations["scenario"] = _resolve_scenario(
            args.scenario, num_nodes, rounds
        ).to_dict()
    profiler = Profiler() if args.profile else None
    metrics = MetricsRegistry() if args.metrics else None
    trace = None
    trace_dir = None
    if args.trace is not None:
        if Path(args.trace).is_dir():
            # A directory (typically the parent sweep's --trace dir): let
            # run_fork name the file after the *forked* spec's hash so the
            # parent cell's trace is never overwritten.
            trace_dir = args.trace
        else:
            trace = TraceEmitter(args.trace)
    board = None
    heartbeat = None
    fork_key = None
    if args.status is not None:
        try:
            forked = build_forked_spec(snapshot, mutations)
        except ReproError as error:
            raise SystemExit(f"cannot fork: {error}")
        fork_key = forked.content_hash()
        total = forked.overrides.get("rounds", snapshot.config.get("rounds"))
        board = StatusBoard(args.status, sweep_name="fork", workers=1)
        board.register_cells(
            [(fork_key, forked.label, None if total is None else int(total))]
        )
        board.start_auto_refresh()
        heartbeat = board.heartbeat_for(fork_key, registry=metrics)
    final_state = "failed"
    try:
        spec, result = run_fork(
            snapshot,
            mutations,
            checkpoint_dir=args.checkpoint_dir,
            checkpoint_every=args.checkpoint_every,
            profiler=profiler,
            metrics=metrics,
            trace=trace,
            trace_dir=trace_dir,
            heartbeat=heartbeat,
        )
        final_state = "done"
        if board is not None:
            board.mark_done(fork_key, result.rounds_completed)
    except ExperimentPaused as paused:
        if board is not None:
            board.mark_paused(fork_key, int(paused.snapshot.rounds_completed))
            final_state = "interrupted"
        print(f"paused forked run at round {paused.snapshot.rounds_completed}")
        return PAUSED_EXIT_CODE
    except ReproError as error:
        raise SystemExit(f"cannot fork: {error}")
    finally:
        if trace is not None:
            trace.close()
        if board is not None:
            board.finalize(final_state)
    lineage = spec.lineage or {}
    print(
        f"forked {spec.label} from round {lineage.get('round', snapshot.rounds_completed)}: "
        f"parent spec {str(lineage.get('parent', ''))[:12]}... -> "
        f"forked spec {spec.content_hash()[:12]}..."
    )
    if trace_dir is not None:
        print(
            f"trace written to "
            f"{Path(trace_dir) / (spec.content_hash() + '.trace.jsonl')}"
        )
    if args.store is not None:
        store = ResultStore(args.store)
        store.put(spec, result)
        print(f"stored forked result under {spec.content_hash()} in {args.store}")
    print()
    print(summarize_results({spec.label: result}))
    if profiler is not None:
        print("\n[fork profile]")
        print(
            format_profile(
                result.phase_seconds, result.rounds_completed, profiler.counts
            )
        )
    if metrics is not None:
        print("\n[metrics]")
        print(metrics.render())
    return 0


def _trace_command(args: argparse.Namespace) -> int:
    path = Path(args.path)
    if not path.exists():
        raise SystemExit(f"trace {args.path!r} does not exist")
    if args.action == "summarize":
        if args.path_b is not None:
            raise SystemExit("trace summarize takes a single path")
        try:
            print(summarize_trace_dir(path) if path.is_dir() else summarize_trace(path))
        except (OSError, json.JSONDecodeError) as error:
            raise SystemExit(f"cannot summarize trace {args.path!r}: {error}")
        return 0
    # diff
    if args.path_b is None:
        raise SystemExit("trace diff compares two traces: trace diff A B")
    path_b = Path(args.path_b)
    if not path_b.exists():
        raise SystemExit(f"trace {args.path_b!r} does not exist")
    try:
        report = diff_traces(path, path_b)
    except (OSError, json.JSONDecodeError) as error:
        raise SystemExit(f"cannot diff traces: {error}")
    if args.json:
        print(json.dumps(report.to_dict(), indent=2, sort_keys=True))
    else:
        print(report.render())
    return 0 if report.identical else 1


def _top_command(args: argparse.Namespace) -> int:
    return watch_status(args.dir, interval=args.interval, once=args.once)


def _store_command(args: argparse.Namespace) -> int:
    path = Path(args.store)
    if not path.exists():
        raise SystemExit(f"store {args.store!r} does not exist")
    store = ResultStore(path)
    try:
        summary = store.compact()
    except ConfigurationError as error:
        raise SystemExit(str(error))
    print(
        f"compacted {args.store}: {summary['lines_before']} line(s) -> "
        f"{summary['rows_after']} row(s) "
        f"(dropped {summary['superseded']} superseded, {summary['corrupt']} corrupt)"
    )
    return 0


def _regenerate_command(args: argparse.Namespace) -> int:
    store = ResultStore(args.store)
    if len(store) == 0:
        raise SystemExit(f"store {args.store!r} is empty or missing; run `jwins-repro sweep` first")
    try:
        written = regenerate(
            store, args.output, names=args.artifact, scale=_parse_scale(args.scale)
        )
    except ReproError as error:
        raise SystemExit(f"cannot regenerate: {error}")
    for path in written:
        print(f"wrote {path}")
    return 0


def main(argv: Sequence[str] | None = None) -> int:
    """CLI entry point; returns the process exit code."""

    argv = list(sys.argv[1:] if argv is None else argv)
    if not argv:
        argv = ["run"]
    elif argv[0] not in SUBCOMMANDS and argv[0] not in ("-h", "--help", "--version"):
        # Backwards compatibility: a flat invocation defaults to `run`.
        argv = ["run", *argv]
    args = build_cli_parser().parse_args(argv)
    handler: Callable[[argparse.Namespace], int] = args.handler
    return handler(args)


if __name__ == "__main__":  # pragma: no cover - exercised via the console script
    raise SystemExit(main())
