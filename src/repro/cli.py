"""Command-line interface for running decentralized-learning experiments.

Installed as the ``jwins-repro`` console script (see ``pyproject.toml``); also
runnable as ``python -m repro.cli``.  Example::

    jwins-repro --workload cifar10 --scheme jwins full-sharing --nodes 8 --rounds 16

The CLI wires together the workload registry, the scheme factories and the
simulator, then prints a comparison table — a command-line version of what
``examples/cifar_noniid_comparison.py`` does in code.
"""

from __future__ import annotations

import argparse
from typing import Callable, Sequence

from repro.baselines import (
    choco_factory,
    full_sharing_factory,
    quantized_sharing_factory,
    random_sampling_factory,
    topk_sharing_factory,
)
from repro.core import JwinsConfig, adaptive_jwins_factory, jwins_factory
from repro.core.interface import SchemeFactory
from repro.evaluation import get_workload, summarize_results
from repro.exceptions import ConfigurationError
from repro.simulation import run_experiment
from repro.version import __version__

__all__ = ["build_parser", "main", "scheme_factory_from_name"]

SCHEME_CHOICES = (
    "jwins",
    "jwins-adaptive",
    "full-sharing",
    "random-sampling",
    "topk",
    "choco",
    "quantized",
)


def scheme_factory_from_name(name: str, args: argparse.Namespace) -> SchemeFactory:
    """Translate a CLI scheme name into a configured scheme factory."""

    jwins_config = (
        JwinsConfig.low_budget(args.budget) if args.budget else JwinsConfig.paper_default()
    )
    builders: dict[str, Callable[[], SchemeFactory]] = {
        "jwins": lambda: jwins_factory(jwins_config),
        "jwins-adaptive": lambda: adaptive_jwins_factory(jwins_config),
        "full-sharing": lambda: full_sharing_factory(),
        "random-sampling": lambda: random_sampling_factory(args.fraction),
        "topk": lambda: topk_sharing_factory(args.fraction),
        "choco": lambda: choco_factory(
            fraction=args.budget or args.fraction, gamma=args.gamma
        ),
        "quantized": lambda: quantized_sharing_factory(bits=args.bits),
    }
    if name not in builders:
        raise SystemExit(f"unknown scheme {name!r}; choose from {', '.join(SCHEME_CHOICES)}")
    return builders[name]()


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="jwins-repro",
        description="Run decentralized-learning experiments from the JWINS reproduction.",
    )
    parser.add_argument("--version", action="version", version=f"%(prog)s {__version__}")
    parser.add_argument(
        "--workload",
        default="cifar10",
        help="one of the five paper workloads (cifar10, femnist, celeba, shakespeare, movielens)",
    )
    parser.add_argument(
        "--scheme",
        nargs="+",
        default=["jwins", "full-sharing"],
        choices=SCHEME_CHOICES,
        help="one or more sharing schemes to compare",
    )
    parser.add_argument("--nodes", type=int, default=None, help="number of DL nodes")
    parser.add_argument("--degree", type=int, default=None, help="topology degree")
    parser.add_argument("--rounds", type=int, default=None, help="communication rounds")
    parser.add_argument("--seed", type=int, default=1, help="experiment seed")
    parser.add_argument(
        "--dynamic-topology",
        action="store_true",
        help="re-sample the topology every round (Figure 7 setting)",
    )
    parser.add_argument(
        "--budget",
        type=float,
        default=None,
        help="communication budget in (0, 1]; configures JWINS' alpha distribution and CHOCO's fraction",
    )
    parser.add_argument(
        "--fraction",
        type=float,
        default=0.37,
        help="sharing fraction for random-sampling / topk (default 0.37 as in Table I)",
    )
    parser.add_argument("--gamma", type=float, default=0.6, help="CHOCO consensus step size")
    parser.add_argument("--bits", type=int, default=4, help="bits for the quantized baseline")
    parser.add_argument(
        "--execution",
        choices=("sync", "async"),
        default="sync",
        help="sync = the paper's lock-step rounds; async = event-driven gossip "
        "where heterogeneous nodes progress at their own pace",
    )
    parser.add_argument(
        "--slowdown",
        type=float,
        default=1.0,
        help="async mode: the slowest node's compute slowdown factor; node speeds "
        "are drawn uniformly from [1, SLOWDOWN] (1.0 = homogeneous cluster)",
    )
    parser.add_argument(
        "--drop-probability",
        type=float,
        default=0.0,
        help="probability that each message delivery is independently dropped",
    )
    return parser


def main(argv: Sequence[str] | None = None) -> int:
    """CLI entry point; returns the process exit code."""

    args = build_parser().parse_args(argv)
    if args.budget is not None and not 0.0 < args.budget <= 1.0:
        raise SystemExit("--budget must be in (0, 1]")
    if args.slowdown < 1.0:
        raise SystemExit("--slowdown must be >= 1")
    if not 0.0 <= args.drop_probability < 1.0:
        raise SystemExit("--drop-probability must be in [0, 1)")

    workload = get_workload(args.workload)
    task = workload.make_task(seed=args.seed)
    overrides = {
        "seed": args.seed,
        "dynamic_topology": args.dynamic_topology,
        "compute_speed_range": (1.0, args.slowdown),
        "message_drop_probability": args.drop_probability,
    }
    if args.nodes is not None:
        overrides["num_nodes"] = args.nodes
    if args.degree is not None:
        overrides["degree"] = args.degree
    if args.rounds is not None:
        overrides["rounds"] = args.rounds
    try:
        config = workload.make_config(execution=args.execution, **overrides)
    except ConfigurationError as error:
        raise SystemExit(f"invalid configuration: {error}")

    print(
        f"workload={workload.name} nodes={config.num_nodes} rounds={config.rounds} "
        f"partition={config.partition} seed={config.seed} execution={config.execution}"
    )
    results = {}
    for scheme_name in args.scheme:
        factory = scheme_factory_from_name(scheme_name, args)
        print(f"running {scheme_name} ...")
        results[scheme_name] = run_experiment(task, factory, config, scheme_name=scheme_name)

    print()
    print(summarize_results(results))
    return 0


if __name__ == "__main__":  # pragma: no cover - exercised via the console script
    raise SystemExit(main())
