"""Regenerating the paper's artifacts from a result store.

Each :class:`Artifact` couples a sweep definition (which cells are needed) with
a renderer that maps the stored results through :mod:`repro.evaluation.reporting`
into the exact report text the benchmark harness writes to
``benchmarks/output/``.  Regeneration is therefore a pure function of the
store: run the sweep once (``jwins-repro sweep --preset table1``), then re-emit
the tables/series any number of times (``jwins-repro regenerate``) without
recomputing anything.

The default cell scale matches the benchmark harness (8 nodes, ~16 rounds), so
a store filled by the benchmarks and one filled by the CLI are interchangeable.
Every builder/renderer takes an optional ``scale`` override mapping so tests
can shrink the grids.
"""

from __future__ import annotations

from dataclasses import dataclass
from pathlib import Path
from typing import Any, Callable, Mapping, Sequence

from repro.evaluation.reporting import format_table, table1_rows
from repro.evaluation.workloads import get_workload
from repro.exceptions import ConfigurationError
from repro.orchestration.schemes import SchemeSpec
from repro.orchestration.store import ResultStore
from repro.orchestration.sweep import Sweep, SweepCell
from repro.simulation import ExperimentResult

__all__ = [
    "ARTIFACTS",
    "Artifact",
    "TABLE1_WORKLOADS",
    "fig6_sweep",
    "fig7_sweep",
    "get_artifact",
    "regenerate",
    "render_fig6",
    "render_fig7",
    "render_table1",
    "table1_sweep",
]

TABLE1_WORKLOADS = ("cifar10", "movielens", "shakespeare", "celeba", "femnist")

#: The benchmark harness' simulator scale (see ``benchmarks/conftest.scale_down``).
_TABLE1_SCALE = {
    "num_nodes": 8,
    "degree": 4,
    "rounds": 16,
    "eval_every": 4,
    "eval_test_samples": 128,
    "seed": 1,
}

TABLE1_HEADERS = [
    "dataset",
    "full acc",
    "random acc",
    "jwins acc",
    "full sent",
    "jwins sent",
    "savings",
    "paper savings",
]


def _merge_scale(base: Mapping[str, Any], scale: Mapping[str, Any] | None) -> dict[str, Any]:
    return {**base, **(scale or {})}


def _require(store: ResultStore, cell: SweepCell, artifact: str) -> ExperimentResult:
    result = store.get(cell.spec)
    if result is None:
        raise ConfigurationError(
            f"the store holds no result for cell {cell.label!r} "
            f"(key {cell.spec.content_hash()[:12]}...); "
            f"run `jwins-repro sweep --preset {artifact}` against this store first"
        )
    return result


# -- Table I / Figure 4 ---------------------------------------------------------------
def table1_sweep(
    workloads: Sequence[str] = TABLE1_WORKLOADS,
    scale: Mapping[str, Any] | None = None,
) -> Sweep:
    """The Table I grid: every workload x {full sharing, random sampling, JWINS}."""

    return Sweep(
        name="table1",
        workloads=tuple(workloads),
        schemes=(
            SchemeSpec("full-sharing"),
            SchemeSpec("random-sampling", {"fraction": 0.37}, label="random-sampling"),
            SchemeSpec("jwins"),
        ),
        base_overrides=_merge_scale(_TABLE1_SCALE, scale),
    )


def render_table1(
    store: ResultStore,
    workloads: Sequence[str] = TABLE1_WORKLOADS,
    scale: Mapping[str, Any] | None = None,
) -> dict[str, str]:
    """Per-dataset Table I rows plus the Figure 4 accuracy series.

    Returns ``{file stem: report text}``, one entry per workload
    (``table1_fig4_<dataset>``), in the exact shape the benchmark harness
    stores under ``benchmarks/output/``.
    """

    reports: dict[str, str] = {}
    for name in workloads:
        sweep = table1_sweep(workloads=(name,), scale=scale)
        results = {
            cell.scheme.label: _require(store, cell, "table1") for cell in sweep.cells()
        }
        workload = get_workload(name)
        row = table1_rows(name, results, workload.paper.network_savings_percent)
        report = format_table(TABLE1_HEADERS, [row])
        curves = []
        for scheme, result in results.items():
            rounds, accuracy = result.accuracy_curve()
            curve = ", ".join(f"{r}:{100 * a:.0f}%" for r, a in zip(rounds, accuracy))
            curves.append(f"  {scheme:16s} {curve}")
        report += "\n\nFigure 4 accuracy curves (round:accuracy):\n" + "\n".join(curves)
        jwins = results["jwins"]
        report += (
            f"\n\nmetadata sent by JWINS: "
            f"{jwins.total_metadata_bytes / 2**20:.2f} MiB "
            f"({100 * jwins.total_metadata_bytes / jwins.total_bytes:.1f}% of its traffic)"
        )
        reports[f"table1_fig4_{name}"] = report
    return reports


# -- Figure 6: JWINS vs CHOCO under communication budgets ------------------------------
_FIG6_SCALE = {
    "num_nodes": 8,
    "degree": 4,
    "rounds": 18,
    "eval_every": 3,
    "eval_test_samples": 128,
    "seed": 1,
}

#: CHOCO's consensus step size needs per-budget tuning (paper Section IV-D).
_FIG6_BUDGETS = ((0.2, 0.6), (0.1, 0.1))


def fig6_sweep(scale: Mapping[str, Any] | None = None) -> Sweep:
    """The Figure 6 cells: full sharing plus {JWINS, CHOCO} x {20%, 10%} budgets."""

    schemes: list[SchemeSpec] = [SchemeSpec("full-sharing")]
    for budget, gamma in _FIG6_BUDGETS:
        percent = int(100 * budget)
        schemes.append(
            SchemeSpec("jwins", {"budget": budget}, label=f"jwins@{percent}%")
        )
        schemes.append(
            SchemeSpec(
                "choco", {"fraction": budget, "gamma": gamma}, label=f"choco@{percent}%"
            )
        )
    return Sweep(
        name="fig6",
        workloads=("cifar10",),
        schemes=tuple(schemes),
        base_overrides=_merge_scale(_FIG6_SCALE, scale),
        task_seed=2,
    )


def render_fig6(
    store: ResultStore, scale: Mapping[str, Any] | None = None
) -> dict[str, str]:
    """The Figure 6 budget comparison, one row per (budget, scheme) series."""

    sweep = fig6_sweep(scale=scale)
    results = {
        cell.scheme.label: _require(store, cell, "fig6") for cell in sweep.cells()
    }
    rows = []
    for label, result in results.items():
        budget = "100% (reference)" if label == "full-sharing" else label.split("@")[1]
        scheme = label.split("@")[0]
        rows.append(
            [
                budget,
                scheme,
                f"{100 * result.final_accuracy:.1f}%",
                f"{result.final_loss:.3f}",
                f"{result.average_bytes_per_node / 2**20:.2f} MiB",
                f"{result.simulated_time_seconds:.1f} s",
            ]
        )
    report = format_table(
        ["budget", "scheme", "final acc", "test loss", "bytes/node", "sim. time"], rows
    )
    report += (
        "\npaper: JWINS >= CHOCO at both budgets, with the gap growing as the budget shrinks"
    )
    return {"fig6_jwins_vs_choco": report}


# -- Figure 7: dynamic topologies ------------------------------------------------------
_FIG7_SCALE = {
    "num_nodes": 8,
    "degree": 2,
    "rounds": 16,
    "eval_every": 4,
    "eval_test_samples": 128,
    "seed": 1,
}


def fig7_sweep(scale: Mapping[str, Any] | None = None) -> Sweep:
    """The Figure 7 grid: three schemes x {static, dynamic} topologies."""

    return Sweep(
        name="fig7",
        workloads=("cifar10",),
        schemes=(
            SchemeSpec("full-sharing"),
            SchemeSpec("jwins"),
            SchemeSpec("choco", {"fraction": 0.2, "gamma": 0.6}, label="choco"),
        ),
        axes={"dynamic_topology": (False, True)},
        base_overrides=_merge_scale(_FIG7_SCALE, scale),
        task_seed=3,
    )


def render_fig7(
    store: ResultStore, scale: Mapping[str, Any] | None = None
) -> dict[str, str]:
    """The Figure 7 static-vs-dynamic comparison table."""

    sweep = fig7_sweep(scale=scale)
    rows = []
    for cell in sweep.cells():
        result = _require(store, cell, "fig7")
        kind = "dynamic" if cell.axes["dynamic_topology"] else "static"
        rows.append(
            [
                f"{cell.scheme.label} {kind}",
                f"{100 * result.final_accuracy:.1f}%",
                f"{result.final_loss:.3f}",
            ]
        )
    report = format_table(["configuration", "final acc", "test loss"], rows)
    report += "\npaper: dynamic > static for full sharing; JWINS dynamic >= static full sharing; CHOCO unsuitable"
    return {"fig7_dynamic_topology": report}


# -- registry --------------------------------------------------------------------------
@dataclass(frozen=True)
class Artifact:
    """A regenerable paper artifact: its sweep plus its renderer."""

    name: str
    description: str
    build_sweep: Callable[[Mapping[str, Any] | None], Sweep]
    render: Callable[[ResultStore, Mapping[str, Any] | None], dict[str, str]]


ARTIFACTS: dict[str, Artifact] = {
    "table1": Artifact(
        name="table1",
        description="Table I accuracies/bytes + Figure 4 series, all five workloads",
        build_sweep=lambda scale=None: table1_sweep(scale=scale),
        render=lambda store, scale=None: render_table1(store, scale=scale),
    ),
    "fig6": Artifact(
        name="fig6",
        description="Figure 6: JWINS vs CHOCO under 20%/10% communication budgets",
        build_sweep=fig6_sweep,
        render=render_fig6,
    ),
    "fig7": Artifact(
        name="fig7",
        description="Figure 7: static vs dynamically re-sampled topologies",
        build_sweep=fig7_sweep,
        render=render_fig7,
    ),
}


def get_artifact(name: str) -> Artifact:
    """Look up a paper artifact by name; raises with the available names."""

    artifact = ARTIFACTS.get(name)
    if artifact is None:
        raise ConfigurationError(
            f"unknown artifact {name!r}; available: {', '.join(ARTIFACTS)}"
        )
    return artifact


def regenerate(
    store: ResultStore,
    output_dir: str | Path,
    names: Sequence[str] | None = None,
    scale: Mapping[str, Any] | None = None,
) -> list[Path]:
    """Re-emit the named artifacts (default: all) from ``store`` into files.

    Returns the written paths (``<output_dir>/<stem>.txt``).  Raises
    :class:`~repro.exceptions.ConfigurationError` if the store is missing any
    required cell, naming the cell and the sweep preset that produces it.
    """

    output = Path(output_dir)
    output.mkdir(parents=True, exist_ok=True)
    written: list[Path] = []
    for name in names if names is not None else list(ARTIFACTS):
        artifact = get_artifact(name)
        for stem, text in artifact.render(store, scale).items():
            path = output / f"{stem}.txt"
            path.write_text(text + "\n", encoding="utf-8")
            written.append(path)
    return written
