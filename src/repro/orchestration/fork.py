"""Scenario forking: replay one trained state under many what-if futures.

A checkpoint taken at round *k* embeds the :class:`~repro.orchestration.spec.
ExperimentSpec` that produced it.  Forking builds a *mutated* spec — same
workload, scheme, seed and deployment shape, but a different value on one or
more config axes (typically the scenario schedule, the round budget or the
message-drop rate) — and resumes the snapshot under it, so the common prefix
of the run is never re-paid.

Identity rules, pinned by tests:

* a fork with **no** mutations produces a result byte-identical to a plain
  resume of the snapshot;
* any fork carries a ``lineage`` entry (parent spec hash, snapshot hash,
  fork round) that participates in the forked spec's content hash, so its
  store row can never collide with the parent's or with a from-scratch run
  of the mutated configuration.
"""

from __future__ import annotations

from pathlib import Path
from typing import TYPE_CHECKING, Any, Mapping

from repro.exceptions import CheckpointError, ConfigurationError
from repro.observability.trace import TraceEmitter
from repro.orchestration.spec import ExperimentSpec
from repro.simulation import ExperimentResult

if TYPE_CHECKING:  # pragma: no cover - typing-only import
    from repro.checkpoint.snapshot import SimulationSnapshot
    from repro.observability.metrics import MetricsRegistry
    from repro.observability.status import CellStatusWriter
    from repro.utils.profiling import Profiler

__all__ = ["build_forked_spec", "run_fork"]

#: Config fields a fork must not change: they define the deployment shape the
#: snapshot's state is only valid for.
_STRUCTURAL_FIELDS = ("num_nodes", "execution", "partition", "shards_per_node", "seed")


def build_forked_spec(
    snapshot: "SimulationSnapshot", mutations: Mapping[str, Any] | None = None
) -> ExperimentSpec:
    """The mutated spec a fork of ``snapshot`` runs under.

    ``mutations`` maps :class:`~repro.simulation.ExperimentConfig` field names
    to new values (e.g. ``{"scenario": schedule.to_dict()}``).  The parent's
    resolved experiment and task seeds are pinned explicitly so every RNG
    stream derivation after the fork point matches the parent's — without
    this, the forked spec's new content hash would re-seed the run and break
    the fork-equals-resume guarantee.
    """

    if snapshot.spec is None:
        raise CheckpointError(
            "snapshot does not embed an experiment spec (it was captured from a "
            "directly constructed Simulator); only spec-driven snapshots can fork"
        )
    parent = ExperimentSpec.from_dict(snapshot.spec)
    mutations = dict(mutations or {})
    for name in _STRUCTURAL_FIELDS:
        if name in mutations:
            raise ConfigurationError(
                f"a fork cannot change the structural config field {name!r}; "
                "it defines the deployment the snapshot's state belongs to"
            )
    overrides = dict(parent.overrides)
    overrides.update(mutations)
    overrides["seed"] = parent.resolved_seed()
    return ExperimentSpec(
        workload=parent.workload,
        scheme=parent.scheme,
        overrides=overrides,
        task_seed=parent.resolved_task_seed(),
        lineage={
            "parent": parent.content_hash(),
            "snapshot": snapshot.content_hash(),
            "round": int(snapshot.rounds_completed),
        },
    )


def run_fork(
    snapshot: "SimulationSnapshot",
    mutations: Mapping[str, Any] | None = None,
    checkpoint_dir: str | None = None,
    checkpoint_every: int = 0,
    profiler: "Profiler | None" = None,
    metrics: "MetricsRegistry | None" = None,
    trace: "TraceEmitter | None" = None,
    trace_dir: "str | Path | None" = None,
    heartbeat: "CellStatusWriter | None" = None,
) -> tuple[ExperimentSpec, ExperimentResult]:
    """Fork ``snapshot`` under ``mutations`` and run the future to completion.

    Returns the forked spec (hash-distinct from the parent whenever lineage
    or mutations differ) together with its result.  The forked run is itself
    checkpointable via ``checkpoint_dir``/``checkpoint_every``; ``profiler``,
    ``metrics``, ``trace`` and ``heartbeat`` attach run telemetry exactly as
    on a plain run (and stay outside the determinism contract).

    ``trace_dir`` derives the trace path from the **forked** spec's content
    hash (``<forked hash>.trace.jsonl``), exactly like ``run_sweep`` names
    per-cell traces.  Because lineage participates in the hash, a fork traced
    into its parent sweep's trace directory can never silently overwrite the
    parent cell's trace file.  ``trace`` and ``trace_dir`` are mutually
    exclusive (an explicit emitter already has a path).
    """

    if trace is not None and trace_dir is not None:
        raise ConfigurationError(
            "pass either an explicit trace emitter or a trace_dir, not both"
        )
    spec = build_forked_spec(snapshot, mutations)
    owns_trace = False
    if trace_dir is not None:
        trace = TraceEmitter(Path(trace_dir) / f"{spec.content_hash()}.trace.jsonl")
        owns_trace = True
    try:
        result = spec.run(
            checkpoint_dir=checkpoint_dir,
            checkpoint_every=checkpoint_every,
            snapshot=snapshot,
            verify_spec=False,
            profiler=profiler,
            metrics=metrics,
            trace=trace,
            heartbeat=heartbeat,
        )
    finally:
        if owns_trace and trace is not None:
            trace.close()
    return spec, result
