"""The unit of work the orchestration layer schedules: one experiment cell.

An :class:`ExperimentSpec` is a *declarative* description of one
``run_experiment`` call: a workload name, a scheme reference (registry name +
parameters) and a set of :class:`~repro.simulation.ExperimentConfig` field
overrides.  It is JSON-serializable both ways, so it can cross a
``multiprocessing`` boundary, live in a JSONL store and be rebuilt later.

Two properties make resumable sweeps work:

* :meth:`ExperimentSpec.content_hash` — a SHA-256 over the canonical JSON of
  the spec.  It is the store key: re-running a sweep skips cells whose hash is
  already stored, and any config change yields a fresh hash (automatic
  invalidation).
* :meth:`ExperimentSpec.resolved_seed` — deterministic per-spec seeding.  An
  explicit ``seed`` override wins; otherwise the seed is derived from the
  content hash, so distinct cells decorrelate while every re-run (serial or
  parallel, any worker count) sees the identical seed.
"""

from __future__ import annotations

import hashlib
import json
from dataclasses import dataclass, field
from typing import Any, Mapping

from typing import TYPE_CHECKING

from repro.core.interface import SchemeFactory
from repro.datasets.base import LearningTask
from repro.evaluation.workloads import Workload, get_workload
from repro.exceptions import CheckpointError, ConfigurationError
from repro.orchestration.schemes import SchemeSpec
from repro.scenarios.schedule import ScenarioSchedule
from repro.simulation import ExperimentConfig, ExperimentResult, run_experiment
from repro.simulation.timing import time_model_from_dict

if TYPE_CHECKING:  # pragma: no cover - typing-only import
    from repro.checkpoint.snapshot import SimulationSnapshot
    from repro.observability.metrics import MetricsRegistry
    from repro.observability.status import CellStatusWriter
    from repro.observability.trace import TraceEmitter
    from repro.utils.profiling import Profiler

__all__ = ["ExperimentSpec"]


def _jsonify(value: Any) -> Any:
    """Normalize ``value`` to the JSON type system (tuples become lists)."""

    if isinstance(value, Mapping):
        return {str(key): _jsonify(item) for key, item in value.items()}
    if isinstance(value, (list, tuple)):
        return [_jsonify(item) for item in value]
    if isinstance(value, (str, int, float, bool)) or value is None:
        return value
    raise ConfigurationError(
        f"override value {value!r} is not JSON-serializable; "
        "sweep overrides must be plain numbers, strings, booleans, lists or mappings"
    )


@dataclass(frozen=True)
class ExperimentSpec:
    """One cell of a sweep: ``(workload, scheme, config overrides)``.

    Attributes
    ----------
    workload:
        Name in :data:`~repro.evaluation.workloads.WORKLOADS`.
    scheme:
        The scheme to run, as a serializable :class:`SchemeSpec`.
    overrides:
        :class:`~repro.simulation.ExperimentConfig` field overrides applied on
        top of the workload's default configuration (JSON values only; the
        tuple-typed fields and a nested ``time_model`` dict are coerced back
        when the config is built).  A ``"scenario"`` override travels as the
        schedule's exact ``to_dict`` form — including Byzantine windows and
        trace-compiled outages — so hostile environments are sweepable axes
        with stable content hashes, which is what both the determinism gate
        and the scenario fuzzer (:mod:`repro.scenarios.fuzz`) rely on.
    task_seed:
        Seed for the dataset/task construction.  ``None`` (the default) ties
        it to the experiment seed, matching ``run_experiment`` call sites that
        build the task with the config's seed.
    lineage:
        Fork provenance: ``{"parent": <spec hash>, "snapshot": <snapshot
        hash>, "round": k}`` when this spec was created by replaying a
        checkpoint under a mutated config axis.  ``None`` (and absent from
        :meth:`to_dict`) for ordinary specs, so pre-existing content hashes
        are unchanged; when set it participates in the hash, making a forked
        cell distinct from both its parent and a from-scratch run of the
        mutated configuration (whose common prefix it did not re-execute).
    """

    workload: str
    scheme: SchemeSpec
    overrides: dict[str, Any] = field(default_factory=dict)
    task_seed: int | None = None
    lineage: dict[str, Any] | None = None

    def __post_init__(self) -> None:
        get_workload(self.workload)  # fail fast on typos
        object.__setattr__(self, "scheme", SchemeSpec.coerce(self.scheme))
        # Canonicalize overrides so hashing is insensitive to tuple-vs-list
        # and the spec equals its own JSON round trip.
        object.__setattr__(self, "overrides", _jsonify(dict(self.overrides)))
        if self.lineage is not None:
            object.__setattr__(self, "lineage", _jsonify(dict(self.lineage)))

    # -- identity ------------------------------------------------------------------
    def to_dict(self) -> dict[str, Any]:
        """JSON-safe representation; exact inverse of :meth:`from_dict`."""

        data = {
            "workload": self.workload,
            "scheme": self.scheme.to_dict(),
            "overrides": dict(self.overrides),
            "task_seed": self.task_seed,
        }
        if self.lineage is not None:
            data["lineage"] = dict(self.lineage)
        return data

    @classmethod
    def from_dict(cls, data: Mapping[str, Any]) -> "ExperimentSpec":
        """Rebuild a spec from :meth:`to_dict` output (hashes match exactly)."""

        return cls(
            workload=data["workload"],
            scheme=SchemeSpec.from_dict(data["scheme"]),
            overrides=dict(data.get("overrides", {})),
            task_seed=data.get("task_seed"),
            lineage=data.get("lineage"),
        )

    def canonical_json(self) -> str:
        """Canonical serialization: sorted keys, no whitespace."""

        return json.dumps(self.to_dict(), sort_keys=True, separators=(",", ":"))

    def content_hash(self) -> str:
        """SHA-256 hex digest of :meth:`canonical_json` — the store key."""

        return hashlib.sha256(self.canonical_json().encode("utf-8")).hexdigest()

    @property
    def label(self) -> str:
        """Short human-readable cell name used in logs and summaries."""

        return f"{self.workload}/{self.scheme.label}"

    # -- seeding -------------------------------------------------------------------
    def resolved_seed(self) -> int:
        """The experiment seed this spec runs under (see the module docstring)."""

        if "seed" in self.overrides:
            return int(self.overrides["seed"])
        return int(self.content_hash()[:8], 16) % (2**31 - 1) + 1

    def resolved_task_seed(self) -> int:
        """The dataset-generation seed: ``task_seed`` if set, else the run seed."""

        return self.task_seed if self.task_seed is not None else self.resolved_seed()

    # -- materialization -----------------------------------------------------------
    def build(self) -> tuple[LearningTask, SchemeFactory, ExperimentConfig, Workload]:
        """Materialize the task, scheme factory and validated configuration."""

        workload = get_workload(self.workload)
        overrides = dict(self.overrides)
        overrides["seed"] = self.resolved_seed()
        if isinstance(overrides.get("time_model"), Mapping):
            overrides["time_model"] = time_model_from_dict(overrides["time_model"])
        if isinstance(overrides.get("scenario"), Mapping):
            # Scenarios travel through sweeps as their canonical JSON form;
            # the exact from_dict round trip keeps content hashes stable.
            overrides["scenario"] = ScenarioSchedule.from_dict(overrides["scenario"])
        for name in ExperimentConfig._TUPLE_FIELDS:
            if name in overrides:
                overrides[name] = tuple(overrides[name])
        execution = overrides.pop("execution", workload.config.execution)
        try:
            config = workload.make_config(execution=execution, **overrides)
        except TypeError as error:
            raise ConfigurationError(
                f"invalid override for spec {self.label!r}: {error}"
            ) from error
        task = workload.make_task(seed=self.resolved_task_seed())
        return task, self.scheme.build(), config, workload

    def run(
        self,
        checkpoint_dir: "str | None" = None,
        checkpoint_every: int = 0,
        snapshot: "SimulationSnapshot | None" = None,
        verify_spec: bool = True,
        profiler: "Profiler | None" = None,
        metrics: "MetricsRegistry | None" = None,
        trace: "TraceEmitter | None" = None,
        heartbeat: "CellStatusWriter | None" = None,
    ) -> ExperimentResult:
        """Execute this cell and return its result.

        With ``checkpoint_dir`` set, the run becomes preemptible: snapshots
        land under the spec's content hash every ``checkpoint_every`` global
        rounds (and on a requested stop, which raises
        :class:`~repro.exceptions.ExperimentPaused`), and an existing
        snapshot for this spec is resumed automatically — mid-spec resume is
        byte-identical to an uninterrupted run.  An explicit ``snapshot``
        wins over the directory lookup; ``verify_spec=False`` relaxes the
        snapshot-belongs-to-this-spec check (the ``fork`` workflow, which
        replays a parent spec's snapshot under a mutated config).

        ``profiler``, ``metrics``, ``trace`` and ``heartbeat`` attach the
        telemetry layer (see :mod:`repro.observability`); all four stay
        outside the determinism contract.
        """

        task, factory, config, _ = self.build()
        if checkpoint_dir is None and snapshot is None and checkpoint_every <= 0:
            # The historical path, untouched: no checkpoint machinery at all.
            return run_experiment(
                task,
                factory,
                config,
                scheme_name=self.scheme.label,
                profiler=profiler,
                spec=self.to_dict(),
                metrics=metrics,
                trace=trace,
                heartbeat=heartbeat,
            )

        from repro.checkpoint.manager import CheckpointManager

        if checkpoint_every > 0 and checkpoint_dir is None:
            raise ConfigurationError(
                "checkpoint_every requires a checkpoint_dir to save snapshots into"
            )
        manager = (
            CheckpointManager(checkpoint_dir, metrics=metrics)
            if checkpoint_dir is not None
            else None
        )
        key = self.content_hash()
        if snapshot is None and manager is not None:
            snapshot = manager.load_for_spec(self)
        if snapshot is not None and verify_spec and snapshot.spec_hash() != key:
            raise CheckpointError(
                f"snapshot embeds spec hash {str(snapshot.spec_hash())[:12]}..., "
                f"this spec hashes to {key[:12]}...; refusing to resume a "
                "different experiment (use fork to replay under a changed config)"
            )
        if snapshot is not None and manager is not None:
            manager.record_lineage(
                {
                    "key": key,
                    "action": "resume",
                    "round": int(snapshot.rounds_completed),
                    "snapshot_hash": snapshot.content_hash(),
                    "spec_hash": snapshot.spec_hash(),
                }
            )
        return run_experiment(
            task,
            factory,
            config,
            scheme_name=self.scheme.label,
            profiler=profiler,
            checkpoint_every=checkpoint_every,
            checkpoint_sink=None if manager is None else manager.sink_for(key),
            resume_from=snapshot,
            spec=self.to_dict(),
            metrics=metrics,
            trace=trace,
            heartbeat=heartbeat,
        )
