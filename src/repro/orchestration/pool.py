"""Sweep execution: serial or on a ``multiprocessing`` worker pool.

:func:`run_sweep` expands a :class:`~repro.orchestration.sweep.Sweep` (or takes
pre-expanded specs), skips every cell whose content hash is already in the
:class:`~repro.orchestration.store.ResultStore` (resume), and executes the
remainder — in-process when ``workers == 1``, on a process pool otherwise.

Determinism does not depend on the worker count: each cell is an
:class:`~repro.orchestration.spec.ExperimentSpec` that carries its own seed and
is rebuilt from its serialized form inside the worker, so a 2-worker run
produces bit-identical results to a serial run (pinned by a test).

Progress is observable through :class:`SweepObserver` hooks — the resume
acceptance test counts executed specs exactly this way, and the CLI uses the
same hooks for its progress lines.
"""

from __future__ import annotations

import multiprocessing
from dataclasses import dataclass, field
from typing import Any, Sequence

from repro.orchestration.spec import ExperimentSpec
from repro.orchestration.store import ResultStore
from repro.orchestration.sweep import Sweep
from repro.simulation import ExperimentResult

__all__ = ["SweepObserver", "SweepOutcome", "run_sweep"]


class SweepObserver:
    """Progress hooks; override any subset (mirrors ``SimulationObserver``)."""

    def on_skip(self, spec: ExperimentSpec, result: ExperimentResult) -> None:
        """``spec`` was found in the store and will not be re-executed."""

    def on_start(self, spec: ExperimentSpec) -> None:
        """``spec`` was submitted for execution.

        Under serial execution (``workers == 1``) submission and execution
        coincide, so this fires immediately before the cell runs.  Under pool
        execution every pending cell is submitted up front, so this fires for
        all of them before the first result arrives — do not use start->result
        spans to time individual cells in pool mode.
        """

    def on_result(self, spec: ExperimentSpec, result: ExperimentResult) -> None:
        """``spec`` finished executing and its result was persisted."""


@dataclass
class SweepOutcome:
    """Everything a caller needs after a sweep ran.

    ``results`` covers every requested spec (stored *and* freshly executed),
    keyed by content hash; ``executed``/``skipped`` partition the *unique*
    specs by whether this invocation actually ran them (duplicate cells — the
    same content hash appearing twice in one sweep — execute once and appear
    once).
    """

    name: str
    specs: list[ExperimentSpec]
    results: dict[str, ExperimentResult] = field(default_factory=dict)
    executed: list[ExperimentSpec] = field(default_factory=list)
    skipped: list[ExperimentSpec] = field(default_factory=list)
    #: Content hash -> human-readable cell label (axis values included when the
    #: sweep declared axes, so labels are unique within one sweep).
    labels: dict[str, str] = field(default_factory=dict)

    def result_for(self, spec: ExperimentSpec) -> ExperimentResult:
        """The result stored or computed for ``spec`` (KeyError if neither)."""

        return self.results[spec.content_hash()]

    def labelled_results(self) -> dict[str, ExperimentResult]:
        """``{cell label: result}`` for every requested spec, in sweep order."""

        return {
            self.labels[spec.content_hash()]: self.results[spec.content_hash()]
            for spec in self.specs
        }


def _execute_spec(spec_dict: dict[str, Any]) -> tuple[str, dict[str, Any]]:
    """Worker entry point: rebuild the spec, run it, ship the result as a dict."""

    spec = ExperimentSpec.from_dict(spec_dict)
    return spec.content_hash(), spec.run().to_dict()


def _pool_context() -> multiprocessing.context.BaseContext:
    # fork is cheapest where available (Linux); spawn everywhere else.  Either
    # way the worker rebuilds everything from the serialized spec, so the
    # start method cannot influence results.
    methods = multiprocessing.get_all_start_methods()
    return multiprocessing.get_context("fork" if "fork" in methods else "spawn")


def run_sweep(
    sweep: Sweep | Sequence[ExperimentSpec],
    store: ResultStore | None = None,
    workers: int = 1,
    observer: SweepObserver | None = None,
    force: bool = False,
) -> SweepOutcome:
    """Execute every cell of ``sweep`` that the store does not already hold.

    Parameters
    ----------
    sweep:
        A :class:`Sweep` or an explicit spec list.
    store:
        Completed-cell persistence; defaults to a fresh in-memory store (no
        resume between calls, but the outcome still carries every result).
    workers:
        Process count; ``1`` executes in-process (fully synchronous, exception
        transparent), ``>= 2`` uses a ``multiprocessing`` pool.
    observer:
        Optional :class:`SweepObserver` receiving skip/start/result events.
    force:
        Re-execute cells even when the store already holds them (the fresh
        result overwrites the stored one).
    """

    if isinstance(sweep, Sweep):
        cells = sweep.cells()
        name, specs = sweep.name, [cell.spec for cell in cells]
        labels = {cell.spec.content_hash(): cell.label for cell in cells}
    else:
        name, specs = "adhoc", list(sweep)
        labels = {spec.content_hash(): spec.label for spec in specs}
    if store is None:
        store = ResultStore()
    if observer is None:
        observer = SweepObserver()
    if workers < 1:
        raise ValueError("workers must be >= 1")

    outcome = SweepOutcome(name=name, specs=specs, labels=labels)
    pending: list[ExperimentSpec] = []
    pending_keys: set[str] = set()
    for spec in specs:
        key = spec.content_hash()
        if key in pending_keys:
            # Duplicate cell (e.g. a repeated seed axis value): execute once,
            # the shared results entry serves every occurrence.
            continue
        stored = None if force else store.get(spec)
        if stored is not None:
            outcome.results[key] = stored
            outcome.skipped.append(spec)
            observer.on_skip(spec, stored)
        else:
            pending.append(spec)
            pending_keys.add(key)

    def record(spec: ExperimentSpec, result_dict: dict[str, Any]) -> None:
        """Persist one finished cell and notify the observer."""

        store.put(spec, result_dict)
        result = ExperimentResult.from_dict(result_dict)
        outcome.results[spec.content_hash()] = result
        outcome.executed.append(spec)
        observer.on_result(spec, result)

    if workers == 1 or len(pending) <= 1:
        for spec in pending:
            observer.on_start(spec)
            record(spec, spec.run().to_dict())
    else:
        by_key = {spec.content_hash(): spec for spec in pending}
        with _pool_context().Pool(processes=min(workers, len(pending))) as pool:
            for spec in pending:
                observer.on_start(spec)
            for key, result_dict in pool.imap(
                _execute_spec, [spec.to_dict() for spec in pending]
            ):
                record(by_key[key], result_dict)
    return outcome
