"""Sweep execution: serial or on a ``multiprocessing`` worker pool.

:func:`run_sweep` expands a :class:`~repro.orchestration.sweep.Sweep` (or takes
pre-expanded specs), skips every cell whose content hash is already in the
:class:`~repro.orchestration.store.ResultStore` (resume), and executes the
remainder — in-process when ``workers == 1``, on a process pool otherwise.

Determinism does not depend on the worker count: each cell is an
:class:`~repro.orchestration.spec.ExperimentSpec` that carries its own seed and
is rebuilt from its serialized form inside the worker, so a 2-worker run
produces bit-identical results to a serial run (pinned by a test).

With ``checkpoint_dir`` set the sweep becomes **preemptible**: ``SIGINT`` is
routed to :mod:`repro.checkpoint.preemption` (in the main process and in every
worker), in-flight cells finish their current round, snapshot themselves under
their spec hash and stop, and not-yet-started cells are abandoned.  Re-running
the same sweep resumes every paused cell *mid-spec* from its snapshot; the
resulting store is byte-identical to an uninterrupted run's — the fourth
determinism pillar.

Progress is observable through :class:`SweepObserver` hooks — the resume
acceptance test counts executed specs exactly this way, and the CLI uses the
same hooks for its progress lines.
"""

from __future__ import annotations

import multiprocessing
import os
import signal
import threading
from dataclasses import dataclass, field
from pathlib import Path
from typing import Any, Sequence

from repro.checkpoint import preemption
from repro.evaluation.workloads import get_workload
from repro.exceptions import ConfigurationError, ExperimentPaused
from repro.observability.metrics import MetricsRegistry
from repro.observability.status import CellStatusWriter, StatusBoard
from repro.observability.trace import TraceEmitter
from repro.orchestration.spec import ExperimentSpec
from repro.orchestration.store import ResultStore
from repro.orchestration.sweep import Sweep
from repro.simulation import ExperimentResult
from repro.utils.profiling import Profiler

__all__ = ["SweepObserver", "SweepOutcome", "run_sweep"]


class SweepObserver:
    """Progress hooks; override any subset (mirrors ``SimulationObserver``)."""

    def on_skip(self, spec: ExperimentSpec, result: ExperimentResult) -> None:
        """``spec`` was found in the store and will not be re-executed."""

    def on_start(self, spec: ExperimentSpec) -> None:
        """``spec`` was submitted for execution.

        Under serial execution (``workers == 1``) submission and execution
        coincide, so this fires immediately before the cell runs.  Under pool
        execution every pending cell is submitted up front, so this fires for
        all of them before the first result arrives — do not use start->result
        spans to time individual cells in pool mode.
        """

    def on_result(self, spec: ExperimentSpec, result: ExperimentResult) -> None:
        """``spec`` finished executing and its result was persisted."""

    def on_pause(self, spec: ExperimentSpec, rounds_completed: int) -> None:
        """``spec`` checkpointed itself at ``rounds_completed`` and stopped."""


@dataclass
class SweepOutcome:
    """Everything a caller needs after a sweep ran.

    ``results`` covers every requested spec (stored *and* freshly executed),
    keyed by content hash; ``executed``/``skipped`` partition the *unique*
    specs by whether this invocation actually ran them (duplicate cells — the
    same content hash appearing twice in one sweep — execute once and appear
    once).  ``paused`` holds cells that checkpointed mid-run after a
    preemption; ``interrupted`` is set when the sweep stopped before every
    cell completed — re-run the same command to resume.
    """

    name: str
    specs: list[ExperimentSpec]
    results: dict[str, ExperimentResult] = field(default_factory=dict)
    executed: list[ExperimentSpec] = field(default_factory=list)
    skipped: list[ExperimentSpec] = field(default_factory=list)
    paused: list[ExperimentSpec] = field(default_factory=list)
    interrupted: bool = False
    #: Content hash -> human-readable cell label (axis values included when the
    #: sweep declared axes, so labels are unique within one sweep).
    labels: dict[str, str] = field(default_factory=dict)

    def result_for(self, spec: ExperimentSpec) -> ExperimentResult:
        """The result stored or computed for ``spec`` (KeyError if neither)."""

        return self.results[spec.content_hash()]

    def labelled_results(self) -> dict[str, ExperimentResult]:
        """``{cell label: result}`` for every spec that has a result, in order."""

        return {
            self.labels[spec.content_hash()]: self.results[spec.content_hash()]
            for spec in self.specs
            if spec.content_hash() in self.results
        }


def _cell_trace(trace_dir: str | None, key: str) -> TraceEmitter | None:
    """The per-cell trace emitter, or ``None`` when tracing is off.

    Every cell writes its own file, named by its content hash, so the file
    set — and each file's stripped byte content — is identical for any worker
    count and any completion order.
    """

    if trace_dir is None:
        return None
    return TraceEmitter(Path(trace_dir) / f"{key}.trace.jsonl")


def _spec_total_rounds(spec: ExperimentSpec) -> int | None:
    """The cell's round budget, for status progress/ETA reporting only.

    Read from the overrides (or the workload's default config) without
    materializing the task, so computing it cannot perturb the run.
    """

    rounds = spec.overrides.get("rounds")
    if rounds is not None:
        return int(rounds)
    try:
        return int(get_workload(spec.workload).config.rounds)
    except ConfigurationError:  # pragma: no cover - spec validated at build
        return None


def _cell_heartbeat(
    status_dir: str | None, spec: ExperimentSpec, registry: MetricsRegistry | None
) -> CellStatusWriter | None:
    """The started per-cell status heartbeat, or ``None`` when status is off."""

    if status_dir is None:
        return None
    return CellStatusWriter(
        status_dir,
        spec.content_hash(),
        total_rounds=_spec_total_rounds(spec),
        label=spec.label,
        registry=registry,
    ).start()


def _execute_spec_task(
    task: tuple[dict[str, Any], str | None, int, dict[str, Any]],
) -> tuple[str, dict[str, Any]]:
    """Preemptible worker entry point.

    Returns ``(key, payload)`` with ``payload["status"]`` one of ``"done"``
    (carries the result), ``"paused"`` (the cell checkpointed and stopped) or
    ``"preempted"`` (the worker saw the interrupt before starting the cell,
    draining the queue quickly).  When the sweep's ``telemetry`` options ask
    for metrics, the payload also carries the worker registry's snapshot for
    the parent to merge.
    """

    spec_dict, checkpoint_dir, checkpoint_every, telemetry = task
    spec = ExperimentSpec.from_dict(spec_dict)
    key = spec.content_hash()
    if preemption.interrupted():
        return key, {"status": "preempted"}
    profiler = Profiler() if telemetry.get("profile") else None
    registry = MetricsRegistry() if telemetry.get("metrics") else None
    trace = _cell_trace(telemetry.get("trace_dir"), key)
    heartbeat = _cell_heartbeat(telemetry.get("status_dir"), spec, registry)
    try:
        result = spec.run(
            checkpoint_dir=checkpoint_dir,
            checkpoint_every=checkpoint_every,
            profiler=profiler,
            metrics=registry,
            trace=trace,
            heartbeat=heartbeat,
        )
    except ExperimentPaused as paused:
        payload: dict[str, Any] = {
            "status": "paused",
            "rounds_completed": int(paused.snapshot.rounds_completed),
        }
        if registry is not None:
            payload["metrics"] = registry.to_dict()
        return key, payload
    finally:
        if trace is not None:
            trace.close()
    payload = {"status": "done", "result": result.to_dict()}
    if registry is not None:
        payload["metrics"] = registry.to_dict()
    return key, payload


def _worker_initializer() -> None:
    """Pool-worker setup: route the worker's ``SIGINT`` to preemption."""

    preemption.reset()
    preemption.install_preemption_handler()


def _pool_context() -> multiprocessing.context.BaseContext:
    # fork is cheapest where available (Linux); spawn everywhere else.  Either
    # way the worker rebuilds everything from the serialized spec, so the
    # start method cannot influence results.
    methods = multiprocessing.get_all_start_methods()
    return multiprocessing.get_context("fork" if "fork" in methods else "spawn")


def run_sweep(
    sweep: Sweep | Sequence[ExperimentSpec],
    store: ResultStore | None = None,
    workers: int = 1,
    observer: SweepObserver | None = None,
    force: bool = False,
    checkpoint_dir: str | None = None,
    checkpoint_every: int = 0,
    profile: bool = False,
    metrics: MetricsRegistry | None = None,
    trace_dir: str | Path | None = None,
    status_dir: str | Path | None = None,
) -> SweepOutcome:
    """Execute every cell of ``sweep`` that the store does not already hold.

    Parameters
    ----------
    sweep:
        A :class:`Sweep` or an explicit spec list.
    store:
        Completed-cell persistence; defaults to a fresh in-memory store (no
        resume between calls, but the outcome still carries every result).
    workers:
        Process count; ``1`` executes in-process (fully synchronous, exception
        transparent), ``>= 2`` uses a ``multiprocessing`` pool.
    observer:
        Optional :class:`SweepObserver` receiving skip/start/result/pause
        events.
    force:
        Re-execute cells even when the store already holds them (the fresh
        result overwrites the stored one).
    checkpoint_dir:
        Directory for mid-spec snapshots; enables preemption (``SIGINT``
        checkpoints in-flight cells and stops the sweep) and automatic
        mid-spec resume on the next invocation.
    checkpoint_every:
        Cadence (in completed global rounds) of per-cell snapshots; requires
        ``checkpoint_dir``.
    profile:
        Attach a fresh :class:`~repro.utils.profiling.Profiler` to every
        executed cell; the phase telemetry rides back on each result object
        (``result.phase_seconds``), where the CLI aggregates it.  The store
        scrubs those fields at write time, so persisted rows stay
        byte-identical with profiling on or off.
    metrics:
        Parent :class:`~repro.observability.metrics.MetricsRegistry`.  Every
        executed cell records into a registry of its own (in-process when
        serial, shipped back as a snapshot from pool workers) and the parent
        folds the per-cell registries in with the order-independent merge —
        the merged registry is identical for any worker count.
    trace_dir:
        Directory receiving one ``<spec hash>.trace.jsonl`` per executed
        cell.  Per-cell files keep stripped traces byte-identical across
        worker counts (a shared file would interleave nondeterministically).
    status_dir:
        Directory receiving an atomically rewritten ``status.json`` heartbeat
        (see :mod:`repro.observability.status`): per-cell state, current
        round/total, rounds/sec, ETA, worker pid, last checkpoint round and
        a merged live metrics snapshot, updated from both the serial and the
        pool path.  Render it live with ``jwins-repro top <dir>``.  Pure
        wall-side telemetry — RNG order and stored bytes are unaffected.
    """

    if isinstance(sweep, Sweep):
        cells = sweep.cells()
        name, specs = sweep.name, [cell.spec for cell in cells]
        labels = {cell.spec.content_hash(): cell.label for cell in cells}
    else:
        name, specs = "adhoc", list(sweep)
        labels = {spec.content_hash(): spec.label for spec in specs}
    if store is None:
        store = ResultStore()
    if observer is None:
        observer = SweepObserver()
    if workers < 1:
        raise ValueError("workers must be >= 1")

    outcome = SweepOutcome(name=name, specs=specs, labels=labels)

    board: StatusBoard | None = None
    if status_dir is not None:
        registered: dict[str, tuple[str, str, int | None]] = {}
        for spec in specs:
            key = spec.content_hash()
            if key not in registered:
                registered[key] = (
                    key,
                    labels.get(key, spec.label),
                    _spec_total_rounds(spec),
                )
        board = StatusBoard(status_dir, sweep_name=name, workers=workers)
        board.register_cells(list(registered.values()))

    pending: list[ExperimentSpec] = []
    pending_keys: set[str] = set()
    for spec in specs:
        key = spec.content_hash()
        if key in pending_keys:
            # Duplicate cell (e.g. a repeated seed axis value): execute once,
            # the shared results entry serves every occurrence.
            continue
        stored = None if force else store.get(spec)
        if stored is not None:
            outcome.results[key] = stored
            outcome.skipped.append(spec)
            observer.on_skip(spec, stored)
            if board is not None:
                board.mark_skipped(key)
        else:
            pending.append(spec)
            pending_keys.add(key)

    def record(spec: ExperimentSpec, result_dict: dict[str, Any]) -> None:
        """Persist one finished cell and notify the observer."""

        store.put(spec, result_dict)
        result = ExperimentResult.from_dict(result_dict)
        outcome.results[spec.content_hash()] = result
        outcome.executed.append(spec)
        observer.on_result(spec, result)
        if board is not None:
            board.mark_done(spec.content_hash(), result.rounds_completed)

    preemptible = checkpoint_dir is not None
    telemetry = {
        "profile": profile,
        # Cells record into a registry whenever either consumer wants it: the
        # caller's merged registry or the status board's live snapshot.
        "metrics": metrics is not None or board is not None,
        "trace_dir": None if trace_dir is None else str(trace_dir),
        "status_dir": None if status_dir is None else str(status_dir),
    }
    if board is not None:
        board.start_auto_refresh()
    previous_handler = preemption.install_preemption_handler() if preemptible else None
    failed = False
    try:
        if workers == 1 or len(pending) <= 1:
            for spec in pending:
                if preemptible and preemption.interrupted():
                    outcome.interrupted = True
                    break
                observer.on_start(spec)
                # Per-cell registry even in-process, so gauges merge with the
                # same max semantics a pool run uses.
                registry = MetricsRegistry() if telemetry["metrics"] else None
                trace = _cell_trace(telemetry["trace_dir"], spec.content_hash())
                heartbeat = _cell_heartbeat(telemetry["status_dir"], spec, registry)
                try:
                    result = spec.run(
                        checkpoint_dir=checkpoint_dir,
                        checkpoint_every=checkpoint_every,
                        profiler=Profiler() if profile else None,
                        metrics=registry,
                        trace=trace,
                        heartbeat=heartbeat,
                    )
                except ExperimentPaused as paused:
                    outcome.paused.append(spec)
                    outcome.interrupted = True
                    observer.on_pause(spec, int(paused.snapshot.rounds_completed))
                    if board is not None:
                        board.mark_paused(
                            spec.content_hash(), int(paused.snapshot.rounds_completed)
                        )
                    break
                finally:
                    if trace is not None:
                        trace.close()
                    if registry is not None:
                        if metrics is not None:
                            metrics.merge(registry)
                        if board is not None:
                            board.merge_metrics(registry)
                record(spec, result.to_dict())
        else:
            by_key = {spec.content_hash(): spec for spec in pending}
            tasks = [
                (spec.to_dict(), checkpoint_dir, checkpoint_every, telemetry)
                for spec in pending
            ]
            initializer = _worker_initializer if preemptible else None
            with _pool_context().Pool(
                processes=min(workers, len(pending)), initializer=initializer
            ) as pool:
                if preemptible and threading.current_thread() is threading.main_thread():
                    # A SIGINT aimed at the parent alone (e.g. `kill -INT
                    # <pid>`, a scheduler reclaiming the job) must still reach
                    # the workers, or they would happily run every remaining
                    # cell.  Forward it; workers signalled twice (process-group
                    # delivery) just see an idempotent request_preempt().
                    worker_pids = [
                        process.pid for process in pool._pool if process.pid
                    ]

                    def _forward_interrupt(signum: int, frame: Any) -> None:
                        preemption.request_preempt()
                        for pid in worker_pids:
                            try:
                                os.kill(pid, signal.SIGINT)
                            except ProcessLookupError:
                                pass

                    signal.signal(signal.SIGINT, _forward_interrupt)
                for spec in pending:
                    observer.on_start(spec)
                for key, payload in pool.imap(_execute_spec_task, tasks):
                    spec = by_key[key]
                    status = payload["status"]
                    if "metrics" in payload:
                        if metrics is not None:
                            metrics.merge(payload["metrics"])
                        if board is not None:
                            board.merge_metrics(payload["metrics"])
                    if status == "done":
                        record(spec, payload["result"])
                    elif status == "paused":
                        outcome.paused.append(spec)
                        outcome.interrupted = True
                        observer.on_pause(spec, int(payload["rounds_completed"]))
                        if board is not None:
                            board.mark_paused(key, int(payload["rounds_completed"]))
                    else:  # preempted before start
                        outcome.interrupted = True
    except BaseException:
        failed = True
        raise
    finally:
        if preemptible:
            preemption.restore_handler(previous_handler)
            preemption.reset()
        if board is not None:
            board.finalize(
                "failed"
                if failed
                else ("interrupted" if outcome.interrupted else "done")
            )
    return outcome
