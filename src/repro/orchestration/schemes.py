"""Declarative scheme registry: name + JSON-safe params -> scheme factory.

The sweep subsystem cannot hold live :class:`~repro.core.interface.SchemeFactory`
callables — an :class:`~repro.orchestration.spec.ExperimentSpec` must be
hashable, serializable and reconstructible inside a worker process.  This
registry is the bridge: every scheme the CLI knows is registered here with its
tunable parameters and their defaults, and :func:`build_scheme_factory` turns a
``(name, params)`` pair back into a configured factory.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Callable, Mapping

from repro.baselines import (
    choco_factory,
    full_sharing_factory,
    quantized_sharing_factory,
    random_sampling_factory,
    topk_sharing_factory,
)
from repro.core import JwinsConfig, adaptive_jwins_factory, jwins_factory
from repro.core.interface import SchemeFactory
from repro.exceptions import ConfigurationError

__all__ = [
    "SCHEME_REGISTRY",
    "SchemeSpec",
    "available_schemes",
    "build_scheme_factory",
    "describe_schemes",
]


def _jwins_config(budget: float | None) -> JwinsConfig:
    if budget is None:
        return JwinsConfig.paper_default()
    return JwinsConfig.low_budget(budget)


def _build_jwins(budget: float | None = None) -> SchemeFactory:
    return jwins_factory(_jwins_config(budget))


def _build_jwins_adaptive(budget: float | None = None) -> SchemeFactory:
    return adaptive_jwins_factory(_jwins_config(budget))


def _build_full_sharing() -> SchemeFactory:
    return full_sharing_factory()


def _build_random_sampling(fraction: float = 0.37) -> SchemeFactory:
    return random_sampling_factory(fraction)


def _build_topk(fraction: float = 0.37) -> SchemeFactory:
    return topk_sharing_factory(fraction)


def _build_choco(fraction: float = 0.37, gamma: float = 0.6) -> SchemeFactory:
    return choco_factory(fraction=fraction, gamma=gamma)


def _build_quantized(bits: int = 4) -> SchemeFactory:
    return quantized_sharing_factory(bits=bits)


@dataclass(frozen=True)
class _RegisteredScheme:
    """One registry entry: the builder plus its declared parameters."""

    builder: Callable[..., SchemeFactory]
    params: tuple[str, ...]
    description: str


SCHEME_REGISTRY: dict[str, _RegisteredScheme] = {
    "jwins": _RegisteredScheme(
        _build_jwins,
        ("budget",),
        "JWINS with the paper-default alpha distribution (or a budgeted one)",
    ),
    "jwins-adaptive": _RegisteredScheme(
        _build_jwins_adaptive,
        ("budget",),
        "JWINS with the adaptive wavelet-level selection",
    ),
    "full-sharing": _RegisteredScheme(
        _build_full_sharing,
        (),
        "D-PSGD baseline sharing the full model every round",
    ),
    "random-sampling": _RegisteredScheme(
        _build_random_sampling,
        ("fraction",),
        "uniformly random parameter subset of the given fraction",
    ),
    "topk": _RegisteredScheme(
        _build_topk,
        ("fraction",),
        "largest-magnitude parameter subset of the given fraction",
    ),
    "choco": _RegisteredScheme(
        _build_choco,
        ("fraction", "gamma"),
        "CHOCO-SGD with TopK compression and consensus step size gamma",
    ),
    "quantized": _RegisteredScheme(
        _build_quantized,
        ("bits",),
        "uniform scalar quantization of the full model",
    ),
}


def available_schemes() -> tuple[str, ...]:
    """The registered scheme names, in registry order."""

    return tuple(SCHEME_REGISTRY)


def build_scheme_factory(name: str, params: Mapping[str, Any] | None = None) -> SchemeFactory:
    """Build a configured scheme factory from a registry name and parameters.

    Unknown names and unknown parameters raise
    :class:`~repro.exceptions.ConfigurationError` naming the valid choices, so
    a typo in a sweep spec fails at expansion time, not inside a worker.
    """

    entry = SCHEME_REGISTRY.get(name)
    if entry is None:
        raise ConfigurationError(
            f"unknown scheme {name!r}; choose from {', '.join(SCHEME_REGISTRY)}"
        )
    params = dict(params or {})
    unknown = sorted(set(params) - set(entry.params))
    if unknown:
        allowed = ", ".join(entry.params) if entry.params else "none"
        raise ConfigurationError(
            f"scheme {name!r} does not accept parameter(s) {', '.join(unknown)}; "
            f"allowed: {allowed}"
        )
    return entry.builder(**params)


def describe_schemes() -> str:
    """A human-readable listing of the registry (used by ``--list-schemes``)."""

    lines = []
    for name, entry in SCHEME_REGISTRY.items():
        params = f" (params: {', '.join(entry.params)})" if entry.params else ""
        lines.append(f"{name:16s} {entry.description}{params}")
    return "\n".join(lines)


@dataclass(frozen=True)
class SchemeSpec:
    """A scheme reference a sweep can serialize: registry name + parameters.

    ``label`` names the cell in stores, reports and result mappings; it
    defaults to the scheme name, with the parameters appended when any are
    set (``choco[fraction=0.2,gamma=0.6]``).
    """

    name: str
    params: dict[str, Any] = field(default_factory=dict)
    label: str | None = None

    def __post_init__(self) -> None:
        # Validate eagerly so a bad spec fails when it is written, and build a
        # deterministic label independent of params insertion order.
        build_scheme_factory(self.name, self.params)
        if self.label is None:
            rendered = ",".join(f"{k}={self.params[k]}" for k in sorted(self.params))
            label = self.name if not rendered else f"{self.name}[{rendered}]"
            object.__setattr__(self, "label", label)

    def build(self) -> SchemeFactory:
        """The configured factory this spec describes."""

        return build_scheme_factory(self.name, self.params)

    # -- (de)serialization ---------------------------------------------------------
    def to_dict(self) -> dict[str, Any]:
        """JSON-safe representation; exact inverse of :meth:`from_dict`."""

        return {"name": self.name, "params": dict(self.params), "label": self.label}

    @classmethod
    def from_dict(cls, data: Mapping[str, Any]) -> "SchemeSpec":
        """Rebuild a scheme spec from :meth:`to_dict` output."""

        return cls(
            name=data["name"],
            params=dict(data.get("params", {})),
            label=data.get("label"),
        )

    @classmethod
    def coerce(cls, value: "SchemeSpec | str | Mapping[str, Any]") -> "SchemeSpec":
        """Accept a :class:`SchemeSpec`, a bare name or a mapping."""

        if isinstance(value, SchemeSpec):
            return value
        if isinstance(value, str):
            return cls(name=value)
        return cls.from_dict(value)
