"""Declarative experiment grids.

A :class:`Sweep` names a grid ``{workload} x {scheme} x {config axes}`` plus a
set of base overrides shared by every cell.  :meth:`Sweep.cells` expands the
grid deterministically (workloads, then schemes, then axes in declaration
order) into :class:`SweepCell`\\ s; :meth:`Sweep.expand` is the spec-only view
the executor consumes.

Irregular grids fall out of the same model: a ragged comparison (e.g.
Figure 6's per-budget gamma tuning) is a sweep with one scheme spec per cell
and no axes, while a regular product (Table I, Figure 7's static-vs-dynamic
axis) declares axes and lets the expansion do the work.
"""

from __future__ import annotations

import itertools
from dataclasses import dataclass, field
from typing import Any, Iterable, Mapping

from repro.exceptions import ConfigurationError
from repro.orchestration.schemes import SchemeSpec
from repro.orchestration.spec import ExperimentSpec

__all__ = ["Sweep", "SweepCell"]


@dataclass(frozen=True)
class SweepCell:
    """One expanded grid cell: the spec plus the coordinates that produced it."""

    spec: ExperimentSpec
    workload: str
    scheme: SchemeSpec
    axes: dict[str, Any] = field(default_factory=dict)

    @property
    def label(self) -> str:
        """Unique-within-sweep cell name: workload/scheme plus axis values."""

        parts = [self.workload, self.scheme.label]
        parts.extend(
            f"{name}={_axis_value_label(value)}" for name, value in self.axes.items()
        )
        return "/".join(parts)


def _axis_value_label(value: Any) -> str:
    """Compact display form of one axis value.

    Structured values (e.g. a scenario schedule in its ``to_dict`` form) are
    summarized by their ``name`` field so sweep labels stay readable.
    """

    if isinstance(value, Mapping):
        return str(value.get("name", "custom"))
    return str(value)


@dataclass(frozen=True)
class Sweep:
    """A named grid of experiments.

    Attributes
    ----------
    name:
        Sweep identifier used in logs and summaries.
    workloads:
        Workload names (one grid dimension).
    schemes:
        Scheme references (second dimension); bare strings are accepted and
        coerced to :class:`SchemeSpec`.
    axes:
        Named config axes: :class:`~repro.simulation.ExperimentConfig` field
        name -> list of values.  The expansion takes the cartesian product in
        declaration order.  A ``seed`` axis is the idiomatic way to run
        repetitions.
    base_overrides:
        Config overrides shared by every cell (axis values win on conflict).
    task_seed:
        Optional fixed dataset seed for every cell (see
        :class:`~repro.orchestration.spec.ExperimentSpec`).
    """

    name: str
    workloads: tuple[str, ...]
    schemes: tuple[SchemeSpec, ...]
    axes: dict[str, tuple[Any, ...]] = field(default_factory=dict)
    base_overrides: dict[str, Any] = field(default_factory=dict)
    task_seed: int | None = None

    def __post_init__(self) -> None:
        if not self.name:
            raise ConfigurationError("a sweep needs a non-empty name")
        workloads = tuple(self.workloads)
        schemes = tuple(SchemeSpec.coerce(scheme) for scheme in self.schemes)
        if not workloads or not schemes:
            raise ConfigurationError(
                "a sweep needs at least one workload and one scheme"
            )
        labels = [scheme.label for scheme in schemes]
        if len(set(labels)) != len(labels):
            raise ConfigurationError(
                "scheme labels must be unique within a sweep; "
                "set SchemeSpec.label to disambiguate repeated schemes"
            )
        axes = {name: tuple(values) for name, values in dict(self.axes).items()}
        for axis, values in axes.items():
            if not values:
                raise ConfigurationError(f"axis {axis!r} has no values")
        object.__setattr__(self, "workloads", workloads)
        object.__setattr__(self, "schemes", schemes)
        object.__setattr__(self, "axes", axes)
        object.__setattr__(self, "base_overrides", dict(self.base_overrides))

    # -- expansion -----------------------------------------------------------------
    def cells(self) -> list[SweepCell]:
        """Expand the grid into cells, in deterministic declaration order."""

        axis_names = list(self.axes)
        axis_products: Iterable[tuple[Any, ...]] = itertools.product(
            *(self.axes[name] for name in axis_names)
        )
        cells: list[SweepCell] = []
        for axis_values in axis_products:
            point = dict(zip(axis_names, axis_values))
            for workload in self.workloads:
                for scheme in self.schemes:
                    overrides = {**self.base_overrides, **point}
                    spec = ExperimentSpec(
                        workload=workload,
                        scheme=scheme,
                        overrides=overrides,
                        task_seed=self.task_seed,
                    )
                    cells.append(SweepCell(spec, workload, scheme, point))
        return cells

    def expand(self) -> list[ExperimentSpec]:
        """The specs of :meth:`cells`, in the same order."""

        return [cell.spec for cell in self.cells()]

    def __len__(self) -> int:
        size = len(self.workloads) * len(self.schemes)
        for values in self.axes.values():
            size *= len(values)
        return size

    # -- (de)serialization ---------------------------------------------------------
    def to_dict(self) -> dict[str, Any]:
        """JSON-safe representation; exact inverse of :meth:`from_dict`."""

        return {
            "name": self.name,
            "workloads": list(self.workloads),
            "schemes": [scheme.to_dict() for scheme in self.schemes],
            "axes": {name: list(values) for name, values in self.axes.items()},
            "base_overrides": dict(self.base_overrides),
            "task_seed": self.task_seed,
        }

    @classmethod
    def from_dict(cls, data: Mapping[str, Any]) -> "Sweep":
        """Rebuild a sweep from :meth:`to_dict` output."""

        return cls(
            name=data["name"],
            workloads=tuple(data["workloads"]),
            schemes=tuple(SchemeSpec.from_dict(s) for s in data["schemes"]),
            axes={name: tuple(values) for name, values in data.get("axes", {}).items()},
            base_overrides=dict(data.get("base_overrides", {})),
            task_seed=data.get("task_seed"),
        )
