"""Experiment orchestration: declarative sweeps, a worker pool and resumable stores.

The paper's results are grids — {dataset x scheme x topology x cutoff x codec}
— and this package is the layer that runs such grids as one unit instead of
hand-rolled loops:

* :mod:`repro.orchestration.schemes` — the declarative scheme registry
  (``name + params -> SchemeFactory``) and :class:`SchemeSpec`;
* :mod:`repro.orchestration.spec` — :class:`ExperimentSpec`, the serializable,
  content-hashed unit of work with deterministic per-spec seeding;
* :mod:`repro.orchestration.sweep` — :class:`Sweep`, named axes over
  workloads/schemes/config overrides, expanded into specs;
* :mod:`repro.orchestration.store` — :class:`ResultStore`, append-only JSONL
  keyed by spec content hash (resume + invalidation for free);
* :mod:`repro.orchestration.pool` — :func:`run_sweep` on one process or a
  ``multiprocessing`` pool, with :class:`SweepObserver` progress hooks;
* :mod:`repro.orchestration.artifacts` — regenerating the paper's tables and
  figure series (Table I, Figures 6/7) from a store.

Typical use::

    from repro.orchestration import ResultStore, run_sweep, table1_sweep, regenerate

    store = ResultStore("results/table1.jsonl")
    run_sweep(table1_sweep(), store, workers=4)   # resumes if interrupted
    regenerate(store, "benchmarks/output", names=["table1"])
"""

from repro.orchestration.artifacts import (
    ARTIFACTS,
    Artifact,
    TABLE1_WORKLOADS,
    fig6_sweep,
    fig7_sweep,
    get_artifact,
    regenerate,
    render_fig6,
    render_fig7,
    render_table1,
    table1_sweep,
)
from repro.orchestration.fork import build_forked_spec, run_fork
from repro.orchestration.pool import SweepObserver, SweepOutcome, run_sweep
from repro.orchestration.schemes import (
    SCHEME_REGISTRY,
    SchemeSpec,
    available_schemes,
    build_scheme_factory,
    describe_schemes,
)
from repro.orchestration.spec import ExperimentSpec
from repro.orchestration.store import ResultStore
from repro.orchestration.sweep import Sweep, SweepCell

__all__ = [
    "ARTIFACTS",
    "Artifact",
    "ExperimentSpec",
    "ResultStore",
    "SCHEME_REGISTRY",
    "SchemeSpec",
    "Sweep",
    "SweepCell",
    "SweepObserver",
    "SweepOutcome",
    "TABLE1_WORKLOADS",
    "available_schemes",
    "build_forked_spec",
    "build_scheme_factory",
    "describe_schemes",
    "fig6_sweep",
    "fig7_sweep",
    "get_artifact",
    "regenerate",
    "render_fig6",
    "render_fig7",
    "render_table1",
    "run_fork",
    "run_sweep",
    "table1_sweep",
]
