"""Append-only JSONL store of experiment results, keyed by spec content hash.

One line per completed run::

    {"key": "<sha256 of the spec>", "spec": {...}, "result": {...}}

Append-only writes make interruption safe: a sweep killed mid-run leaves at
worst one truncated final line, which :meth:`ResultStore._load` discards, and
every completed cell before it survives.  Looking a spec up by content hash
gives resume (completed cells are skipped) and invalidation (any change to the
spec — workload, scheme parameters, config overrides — changes the hash, so
stale results are simply never matched) in one mechanism.

A store constructed without a path is purely in-memory — handy for benchmarks
and tests that only need the run/collect/render pipeline.
"""

from __future__ import annotations

import json
import os
from pathlib import Path
from typing import Any, Iterator, Mapping

from repro.exceptions import ConfigurationError
from repro.observability.contract import scrub_telemetry
from repro.orchestration.spec import ExperimentSpec
from repro.simulation import ExperimentResult

__all__ = ["ResultStore"]


class ResultStore:
    """Content-addressed persistence for sweep results."""

    def __init__(self, path: str | Path | None = None) -> None:
        self.path = Path(path) if path is not None else None
        self._records: dict[str, dict[str, Any]] = {}
        self.discarded_lines = 0
        if self.path is not None and self.path.exists():
            self._load()

    # -- loading -------------------------------------------------------------------
    def _load(self) -> None:
        assert self.path is not None
        with self.path.open("r", encoding="utf-8") as handle:
            for line in handle:
                line = line.strip()
                if not line:
                    continue
                try:
                    record = json.loads(line)
                    key = record["key"]
                    record["spec"], record["result"]
                except (json.JSONDecodeError, KeyError, TypeError):
                    # A truncated/corrupt line (interrupted writer); the cell
                    # will simply be recomputed.
                    self.discarded_lines += 1
                    continue
                self._records[key] = record  # last write wins

    # -- querying ------------------------------------------------------------------
    @staticmethod
    def key_for(spec: ExperimentSpec | str) -> str:
        """The store key of ``spec`` (a content hash, passed through if a str)."""

        return spec if isinstance(spec, str) else spec.content_hash()

    def __contains__(self, spec: ExperimentSpec | str) -> bool:
        return self.key_for(spec) in self._records

    def __len__(self) -> int:
        return len(self._records)

    def keys(self) -> Iterator[str]:
        """All stored content hashes, in insertion order."""

        return iter(self._records)

    def get(self, spec: ExperimentSpec | str) -> ExperimentResult | None:
        """The stored result for ``spec``, or ``None`` when absent."""

        record = self._records.get(self.key_for(spec))
        if record is None:
            return None
        return ExperimentResult.from_dict(record["result"])

    def get_spec(self, key: str) -> ExperimentSpec | None:
        """The stored spec under content hash ``key``, or ``None`` when absent."""

        record = self._records.get(key)
        if record is None:
            return None
        return ExperimentSpec.from_dict(record["spec"])

    def items(self) -> Iterator[tuple[ExperimentSpec, ExperimentResult]]:
        """All stored ``(spec, result)`` pairs, in insertion order."""

        for record in self._records.values():
            yield (
                ExperimentSpec.from_dict(record["spec"]),
                ExperimentResult.from_dict(record["result"]),
            )

    # -- writing -------------------------------------------------------------------
    def put(
        self,
        spec: ExperimentSpec,
        result: ExperimentResult | Mapping[str, Any],
    ) -> str:
        """Record ``result`` for ``spec``; returns the store key.

        ``result`` may already be a ``to_dict()`` mapping (workers ship dicts
        across the process boundary); both forms store identically.

        Telemetry fields (profiler seconds, memory stats — see
        :data:`repro.observability.contract.TELEMETRY_RESULT_FIELDS`) are
        scrubbed to their empty defaults before the row is written: stored
        rows are part of the determinism contract and must be byte-identical
        whether or not the run was instrumented.  The caller's ``result``
        object keeps its telemetry untouched.
        """

        result_dict = scrub_telemetry(
            result.to_dict() if isinstance(result, ExperimentResult) else result
        )
        key = spec.content_hash()
        record = {"key": key, "spec": spec.to_dict(), "result": result_dict}
        if self.path is not None:
            self.path.parent.mkdir(parents=True, exist_ok=True)
            with self.path.open("a", encoding="utf-8") as handle:
                handle.write(json.dumps(record, sort_keys=True) + "\n")
        self._records[key] = record
        return key

    # -- maintenance ---------------------------------------------------------------
    def compact(self) -> dict[str, int]:
        """Rewrite the JSONL file keeping only the live row per content hash.

        Append-only writes accumulate superseded rows (``--force`` re-runs,
        ``last write wins`` duplicates) and the odd truncated line from an
        interrupted writer.  Compaction rewrites the file atomically with
        exactly one row per key — the same row :meth:`get` already serves, in
        first-seen key order — so reads are unchanged, only the file shrinks.

        Returns a summary: ``lines_before`` (non-empty lines in the old
        file), ``rows_after``, ``superseded`` (valid rows dropped because a
        newer row shares their key) and ``corrupt`` (undecodable lines
        dropped).
        """

        if self.path is None:
            raise ConfigurationError("an in-memory store has no file to compact")
        if not self.path.exists():
            raise ConfigurationError(f"store file {str(self.path)!r} does not exist")

        lines_before = 0
        corrupt = 0
        with self.path.open("r", encoding="utf-8") as handle:
            for line in handle:
                line = line.strip()
                if not line:
                    continue
                lines_before += 1
                try:
                    record = json.loads(line)
                    record["key"], record["spec"], record["result"]
                except (json.JSONDecodeError, KeyError, TypeError):
                    corrupt += 1

        temporary = self.path.with_name(self.path.name + ".compact.tmp")
        with temporary.open("w", encoding="utf-8") as handle:
            for record in self._records.values():
                handle.write(json.dumps(record, sort_keys=True) + "\n")
        os.replace(temporary, self.path)
        rows_after = len(self._records)
        return {
            "lines_before": lines_before,
            "rows_after": rows_after,
            "superseded": lines_before - corrupt - rows_after,
            "corrupt": corrupt,
        }
