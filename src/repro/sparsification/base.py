"""Sparsifier interface.

A sparsifier turns a dense score/value vector into a set of selected indices.
JWINS uses :class:`~repro.sparsification.topk.TopKSparsifier` over accumulated
wavelet importance scores; the random-sampling baseline uses
:class:`~repro.sparsification.random_sampling.RandomSamplingSparsifier`.
"""

from __future__ import annotations

from abc import ABC, abstractmethod

import numpy as np

from repro.exceptions import ConfigurationError

__all__ = ["Sparsifier", "fraction_to_count"]


def fraction_to_count(fraction: float, size: int) -> int:
    """Convert a sharing fraction (e.g. 0.25) into a coefficient count.

    At least one element is always selected so a message is never empty.
    """

    if not 0.0 < fraction <= 1.0:
        raise ConfigurationError(f"sharing fraction must be in (0, 1], got {fraction}")
    return max(1, int(round(fraction * size)))


class Sparsifier(ABC):
    """Selects which of ``size`` coefficients to share."""

    @abstractmethod
    def select(self, scores: np.ndarray, count: int) -> np.ndarray:
        """Return the (sorted) indices of the ``count`` selected coefficients."""

    def select_fraction(self, scores: np.ndarray, fraction: float) -> np.ndarray:
        """Convenience wrapper converting a fraction into a count."""

        scores = np.asarray(scores)
        return self.select(scores, fraction_to_count(fraction, scores.size))
