"""TopK sparsification by absolute magnitude."""

from __future__ import annotations

import numpy as np

from repro.exceptions import ConfigurationError
from repro.sparsification.base import Sparsifier

__all__ = ["TopKSparsifier", "topk_indices"]


def topk_indices(scores: np.ndarray, count: int) -> np.ndarray:
    """Indices of the ``count`` largest |scores|, returned sorted ascending."""

    scores = np.asarray(scores)
    if count <= 0:
        raise ConfigurationError("count must be positive")
    if count >= scores.size:
        return np.arange(scores.size, dtype=np.int64)
    magnitudes = np.abs(scores)
    # argpartition is O(n); exact ordering inside the top-k set is irrelevant.
    selected = np.argpartition(magnitudes, scores.size - count)[scores.size - count :]
    return np.sort(selected).astype(np.int64)


class TopKSparsifier(Sparsifier):
    """Select the coefficients with the largest absolute value."""

    def select(self, scores: np.ndarray, count: int) -> np.ndarray:
        return topk_indices(scores, count)
