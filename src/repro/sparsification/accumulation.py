"""Residual accumulation of model changes.

Plain TopK keeps re-sharing the same coordinates and starves the rest of the
model.  The classical fix (Seide et al., Aji & Heafield) accumulates the
un-shared residual so that slowly-changing coordinates eventually cross the
selection threshold.  JWINS performs this accumulation in the wavelet domain
(Equations 3 and 4 of the paper); this module provides the domain-agnostic
accumulator both JWINS and the gradient-sparsification baselines reuse.
"""

from __future__ import annotations

import numpy as np

from repro.exceptions import ConfigurationError

__all__ = ["ResidualAccumulator"]


class ResidualAccumulator:
    """Accumulates per-coordinate importance scores across rounds."""

    def __init__(self, size: int) -> None:
        if size <= 0:
            raise ConfigurationError("accumulator size must be positive")
        self._scores = np.zeros(int(size), dtype=np.float64)

    @property
    def size(self) -> int:
        return int(self._scores.size)

    @property
    def scores(self) -> np.ndarray:
        """Current accumulated scores (a read-only view)."""

        view = self._scores.view()
        view.flags.writeable = False
        return view

    def add(self, delta: np.ndarray) -> np.ndarray:
        """Add ``delta`` (e.g. this round's coefficient change) to the scores."""

        delta = np.asarray(delta, dtype=np.float64).ravel()
        if delta.size != self._scores.size:
            raise ConfigurationError(
                f"delta has {delta.size} elements, accumulator holds {self._scores.size}"
            )
        self._scores += delta
        return self.scores

    def reset_indices(self, indices: np.ndarray) -> None:
        """Zero the scores of coordinates that were just shared (Equation 3)."""

        indices = np.asarray(indices, dtype=np.int64)
        if indices.size and (indices.min() < 0 or indices.max() >= self._scores.size):
            raise ConfigurationError("reset indices out of range")
        self._scores[indices] = 0.0

    def reset_all(self) -> None:
        """Clear the accumulator entirely."""

        self._scores.fill(0.0)

    # -- checkpointing --------------------------------------------------------------
    def state_dict(self) -> dict:
        """The accumulated scores, for checkpointing."""

        return {"scores": self._scores.copy()}

    def load_state_dict(self, state: dict) -> None:
        """Restore scores captured by :meth:`state_dict`."""

        scores = np.asarray(state["scores"], dtype=np.float64).ravel()
        if scores.size != self._scores.size:
            raise ConfigurationError(
                f"checkpointed accumulator holds {scores.size} scores, "
                f"this accumulator holds {self._scores.size}"
            )
        self._scores = scores.copy()
