"""Random-sampling sparsification.

A random subset of coefficients of a predefined size is selected each round.
When the selecting node and its neighbors share the pseudo-random seed, only
the seed has to travel on the wire (Section II-B2a of the paper), which is why
this baseline has essentially zero metadata cost.
"""

from __future__ import annotations

import numpy as np

from repro.compression.indices import random_indices_from_seed
from repro.exceptions import ConfigurationError
from repro.sparsification.base import Sparsifier

__all__ = ["RandomSamplingSparsifier"]


class RandomSamplingSparsifier(Sparsifier):
    """Select a uniformly random subset of coefficients from a shared seed."""

    def __init__(self, seed: int) -> None:
        self._seed = int(seed)
        self._round = 0

    @property
    def current_seed(self) -> int:
        """Seed that will be used for the next selection (changes per call)."""

        return (self._seed + self._round) & 0x7FFFFFFF

    def select(self, scores: np.ndarray, count: int) -> np.ndarray:
        scores = np.asarray(scores)
        if count <= 0:
            raise ConfigurationError("count must be positive")
        count = min(count, scores.size)
        indices = random_indices_from_seed(self.current_seed, count, scores.size)
        self._round += 1
        return indices

    def last_seed(self) -> int:
        """Seed that produced the most recent selection."""

        if self._round == 0:
            raise ConfigurationError("no selection has been made yet")
        return (self._seed + self._round - 1) & 0x7FFFFFFF
