"""Sparsification substrate: TopK, random sampling and residual accumulation."""

from repro.sparsification.accumulation import ResidualAccumulator
from repro.sparsification.base import Sparsifier, fraction_to_count
from repro.sparsification.random_sampling import RandomSamplingSparsifier
from repro.sparsification.topk import TopKSparsifier, topk_indices

__all__ = [
    "ResidualAccumulator",
    "Sparsifier",
    "fraction_to_count",
    "RandomSamplingSparsifier",
    "TopKSparsifier",
    "topk_indices",
]
