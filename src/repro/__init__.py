"""JWINS reproduction: communication-efficient decentralized learning.

This library reproduces "Get More for Less in Decentralized Learning Systems"
(ICDCS 2023).  The public API is organized in subpackages:

* :mod:`repro.core` — the JWINS sharing scheme and the sharing-scheme interface;
* :mod:`repro.baselines` — full sharing, random sampling, TopK and CHOCO-SGD;
* :mod:`repro.simulation` — the decentralized-learning round simulator;
* :mod:`repro.datasets` — the five synthetic workloads and non-IID partitioners;
* :mod:`repro.nn` — the numpy neural-network substrate;
* :mod:`repro.wavelets`, :mod:`repro.compression`, :mod:`repro.topology`,
  :mod:`repro.sparsification` — the remaining substrates;
* :mod:`repro.evaluation` — the harness regenerating the paper's tables/figures.

Quickstart::

    from repro.core import JwinsConfig, jwins_factory
    from repro.datasets import make_cifar10_task
    from repro.simulation import ExperimentConfig, run_experiment

    task = make_cifar10_task(seed=1, train_samples=512, test_samples=128)
    result = run_experiment(task, jwins_factory(JwinsConfig.paper_default()),
                            ExperimentConfig(num_nodes=8, rounds=20, seed=1))
    print(result.final_accuracy, result.total_gib)
"""

from repro.version import __version__

__all__ = ["__version__"]
