"""JWINS reproduction: communication-efficient decentralized learning.

This library reproduces "Get More for Less in Decentralized Learning Systems"
(ICDCS 2023).  The public API is organized in subpackages:

* :mod:`repro.core` — the JWINS sharing scheme and the sharing-scheme interface;
* :mod:`repro.baselines` — full sharing, random sampling, TopK and CHOCO-SGD;
* :mod:`repro.simulation` — the event-driven :class:`~repro.simulation.Simulator`
  engine with pluggable execution modes (synchronous lock-step rounds and
  asynchronous gossip over heterogeneous nodes) plus the
  :func:`~repro.simulation.run_experiment` one-call facade;
* :mod:`repro.orchestration` — declarative experiment sweeps executed on a
  ``multiprocessing`` worker pool against a resumable, content-addressed JSONL
  result store, plus regeneration of the paper's artifacts from such a store;
* :mod:`repro.scenarios` — declarative environment schedules (node churn,
  network partitions, straggler windows, topology rewiring policies) consumed
  by both execution modes;
* :mod:`repro.checkpoint` — bit-identical mid-run snapshots
  (:class:`~repro.checkpoint.SimulationSnapshot` with save/load/verify),
  preemptible execution and scenario forking: interrupt at round *k* + resume
  is byte-identical to never having stopped;
* :mod:`repro.datasets` — the five synthetic workloads and non-IID partitioners;
* :mod:`repro.nn` — the numpy neural-network substrate;
* :mod:`repro.wavelets`, :mod:`repro.compression`, :mod:`repro.topology`,
  :mod:`repro.sparsification` — the remaining substrates;
* :mod:`repro.evaluation` — the harness regenerating the paper's tables/figures.

Quickstart — one call, the paper's synchronous schedule::

    from repro.core import JwinsConfig, jwins_factory
    from repro.datasets import make_cifar10_task
    from repro.simulation import ExperimentConfig, run_experiment

    task = make_cifar10_task(seed=1, train_samples=512, test_samples=128)
    result = run_experiment(task, jwins_factory(JwinsConfig.paper_default()),
                            ExperimentConfig(num_nodes=8, rounds=20, seed=1))
    print(result.final_accuracy, result.total_gib)

The engine behind the facade is a first-class object.  Build it directly to
pick an execution mode and attach observers without editing any loop::

    from repro.simulation import ExperimentConfig, Simulator

    config = ExperimentConfig(num_nodes=8, rounds=20, seed=1,
                              execution="async",            # event-driven gossip
                              compute_speed_range=(1.0, 4.0))  # 4x stragglers
    simulator = Simulator(task, jwins_factory(JwinsConfig.paper_default()), config)
    simulator.on_evaluate(lambda record: print(record.round_index, record.test_accuracy))
    simulator.on_message(lambda message, receiver, now: None)  # delivery hook
    result = simulator.run()
    print(result.clock_skew_seconds)   # how far stragglers fell behind

See ``examples/async_gossip.py`` for a runnable side-by-side comparison.

Grids of experiments (the paper's tables and figures) run as declarative
sweeps on a worker pool, with every completed cell persisted and resumable::

    from repro.orchestration import ResultStore, run_sweep, table1_sweep, regenerate

    store = ResultStore("results/table1.jsonl")
    run_sweep(table1_sweep(), store, workers=4)   # interrupt and re-run freely
    regenerate(store, "benchmarks/output", names=["table1"])

See ``examples/parallel_sweep.py`` and the README's EXPERIMENTS section.
"""

from repro.version import __version__

__all__ = ["__version__"]
