"""Declarative scenario schedules: churn, partitions, stragglers, rewiring.

A :class:`ScenarioSchedule` describes *how the deployment's environment
evolves over rounds*, independently of any execution mode: which nodes are
offline (churn, as :class:`NodeOutage` windows), which groups of nodes are
temporarily cut off from each other (:class:`PartitionWindow`), which nodes
run slower for a while (:class:`StragglerWindow`) and how the communication
graph is generated and rewired (a
:class:`~repro.topology.policy.GeneratorPolicy`).

The schedule is *pure data*: :meth:`ScenarioSchedule.state_at` maps a round
index to an immutable :class:`ScenarioState` (active nodes, per-node partition
ids, per-node slowdowns), and both execution modes consume that state —
:class:`~repro.simulation.engine.SynchronousMode` per barrier round,
:class:`~repro.simulation.engine.AsynchronousMode` per node-local round.
Because the state is a pure function of the round index, a scenario run is as
deterministic as a plain one: same seed, same schedule, bit-identical result,
regardless of worker count or execution interleaving.

Everything round-trips exactly through ``to_dict``/``from_dict``, so
schedules can live in sweep overrides, cross process boundaries and key the
content-addressed result store.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Iterable, Mapping

from repro.exceptions import ConfigurationError
from repro.topology.policy import GeneratorPolicy

__all__ = [
    "NodeOutage",
    "PartitionWindow",
    "ScenarioSchedule",
    "ScenarioState",
    "StragglerWindow",
]


def _check_window(name: str, start_round: int, end_round: int | None) -> None:
    if start_round < 0:
        raise ConfigurationError(f"{name}: start_round must be non-negative")
    if end_round is not None and end_round <= start_round:
        raise ConfigurationError(
            f"{name}: end_round must be greater than start_round "
            f"(got [{start_round}, {end_round}))"
        )


@dataclass(frozen=True)
class NodeOutage:
    """One churn event: ``node`` is offline during ``[start_round, end_round)``.

    An offline node neither trains, sends nor receives; its model is frozen
    until it rejoins.  ``end_round=None`` means the node never comes back.
    """

    node: int
    start_round: int
    end_round: int | None = None

    def __post_init__(self) -> None:
        if self.node < 0:
            raise ConfigurationError("outage node id must be non-negative")
        _check_window("outage", self.start_round, self.end_round)

    def covers(self, round_index: int) -> bool:
        if round_index < self.start_round:
            return False
        return self.end_round is None or round_index < self.end_round

    def to_dict(self) -> dict[str, Any]:
        return {
            "node": int(self.node),
            "start_round": int(self.start_round),
            "end_round": None if self.end_round is None else int(self.end_round),
        }

    @classmethod
    def from_dict(cls, data: Mapping[str, Any]) -> "NodeOutage":
        return cls(
            node=int(data["node"]),
            start_round=int(data["start_round"]),
            end_round=data.get("end_round"),
        )


@dataclass(frozen=True)
class PartitionWindow:
    """A temporary network partition during ``[start_round, end_round)``.

    ``groups`` are disjoint sets of node ids; while the window is open,
    messages only flow between nodes of the same group.  Nodes in no group
    form one implicit remainder group (they keep talking to each other, but
    not to any listed group).
    """

    start_round: int
    end_round: int
    groups: tuple[tuple[int, ...], ...]

    def __post_init__(self) -> None:
        _check_window("partition", self.start_round, self.end_round)
        groups = tuple(tuple(sorted(int(node) for node in group)) for group in self.groups)
        if len(groups) < 2:
            raise ConfigurationError("a partition needs at least two groups")
        seen: set[int] = set()
        for group in groups:
            if not group:
                raise ConfigurationError("partition groups must be non-empty")
            if seen.intersection(group):
                raise ConfigurationError("partition groups must be disjoint")
            seen.update(group)
        object.__setattr__(self, "groups", groups)

    def covers(self, round_index: int) -> bool:
        return self.start_round <= round_index < self.end_round

    def to_dict(self) -> dict[str, Any]:
        return {
            "start_round": int(self.start_round),
            "end_round": int(self.end_round),
            "groups": [list(group) for group in self.groups],
        }

    @classmethod
    def from_dict(cls, data: Mapping[str, Any]) -> "PartitionWindow":
        return cls(
            start_round=int(data["start_round"]),
            end_round=int(data["end_round"]),
            groups=tuple(tuple(group) for group in data["groups"]),
        )


@dataclass(frozen=True)
class StragglerWindow:
    """``nodes`` compute ``slowdown``x slower during ``[start_round, end_round)``.

    Affects simulated time only (round duration under the synchronous
    barrier, per-node event timing under asynchronous gossip) — the learning
    dynamics are unchanged, which is exactly what a straggler is.
    """

    start_round: int
    end_round: int
    nodes: tuple[int, ...]
    slowdown: float

    def __post_init__(self) -> None:
        _check_window("straggler window", self.start_round, self.end_round)
        nodes = tuple(sorted(int(node) for node in self.nodes))
        if not nodes:
            raise ConfigurationError("a straggler window needs at least one node")
        if len(set(nodes)) != len(nodes):
            raise ConfigurationError("straggler nodes must be unique")
        if self.slowdown < 1.0:
            raise ConfigurationError("straggler slowdown must be >= 1")
        object.__setattr__(self, "nodes", nodes)
        object.__setattr__(self, "slowdown", float(self.slowdown))

    def covers(self, round_index: int) -> bool:
        return self.start_round <= round_index < self.end_round

    def to_dict(self) -> dict[str, Any]:
        return {
            "start_round": int(self.start_round),
            "end_round": int(self.end_round),
            "nodes": list(self.nodes),
            "slowdown": float(self.slowdown),
        }

    @classmethod
    def from_dict(cls, data: Mapping[str, Any]) -> "StragglerWindow":
        return cls(
            start_round=int(data["start_round"]),
            end_round=int(data["end_round"]),
            nodes=tuple(data["nodes"]),
            slowdown=float(data["slowdown"]),
        )


@dataclass(frozen=True)
class ScenarioState:
    """The environment one round sees: who is up, who talks to whom, who lags."""

    round_index: int
    active: tuple[int, ...]
    partition_ids: tuple[int | None, ...]
    slowdowns: tuple[float, ...]

    def is_active(self, node: int) -> bool:
        return node in self.active

    def allows(self, sender: int, receiver: int) -> bool:
        """Whether a message from ``sender`` can reach ``receiver`` this round."""

        if sender not in self.active or receiver not in self.active:
            return False
        return self.partition_ids[sender] == self.partition_ids[receiver]

    def max_slowdown(self) -> float:
        """The worst straggler factor among active nodes (1.0 when none lag)."""

        if not self.active:
            return 1.0
        return max(self.slowdowns[node] for node in self.active)


@dataclass(frozen=True)
class ScenarioSchedule:
    """A named, serializable schedule of environment events over rounds.

    The default instance (``ScenarioSchedule()``) is the trivial scenario: a
    static topology from the default generator, every node up, no partitions,
    no stragglers — byte-for-byte equivalent to a pre-scenario run.
    """

    name: str = "static"
    topology: GeneratorPolicy = field(default_factory=GeneratorPolicy)
    outages: tuple[NodeOutage, ...] = ()
    partitions: tuple[PartitionWindow, ...] = ()
    stragglers: tuple[StragglerWindow, ...] = ()

    def __post_init__(self) -> None:
        if not self.name:
            raise ConfigurationError("a scenario needs a non-empty name")
        topology = self.topology
        if isinstance(topology, Mapping):
            topology = GeneratorPolicy.from_dict(topology)
        if not isinstance(topology, GeneratorPolicy):
            raise ConfigurationError(
                "scenario topology must be a GeneratorPolicy (or its to_dict form)"
            )
        object.__setattr__(self, "topology", topology)
        object.__setattr__(self, "outages", self._coerce(self.outages, NodeOutage))
        object.__setattr__(
            self, "partitions", self._coerce(self.partitions, PartitionWindow)
        )
        object.__setattr__(
            self, "stragglers", self._coerce(self.stragglers, StragglerWindow)
        )

    @staticmethod
    def _coerce(values: Iterable[Any], cls: type) -> tuple[Any, ...]:
        coerced = []
        for value in values:
            if isinstance(value, Mapping):
                value = cls.from_dict(value)
            if not isinstance(value, cls):
                raise ConfigurationError(
                    f"expected {cls.__name__} entries, got {type(value).__name__}"
                )
            coerced.append(value)
        return tuple(coerced)

    # -- queries -------------------------------------------------------------------
    @property
    def has_events(self) -> bool:
        """Whether any churn/partition/straggler event is scheduled."""

        return bool(self.outages or self.partitions or self.stragglers)

    @property
    def is_trivial(self) -> bool:
        """No events and a static default topology (the legacy behavior)."""

        return not self.has_events and self.topology == GeneratorPolicy()

    def validate_for(self, num_nodes: int) -> None:
        """Check every referenced node id fits a ``num_nodes``-node deployment."""

        for outage in self.outages:
            if outage.node >= num_nodes:
                raise ConfigurationError(
                    f"scenario {self.name!r}: outage references node {outage.node}, "
                    f"but the deployment has {num_nodes} nodes"
                )
        for window in self.partitions:
            for group in window.groups:
                for node in group:
                    if node >= num_nodes:
                        raise ConfigurationError(
                            f"scenario {self.name!r}: partition references node "
                            f"{node}, but the deployment has {num_nodes} nodes"
                        )
        for window in self.stragglers:
            for node in window.nodes:
                if node >= num_nodes:
                    raise ConfigurationError(
                        f"scenario {self.name!r}: straggler window references node "
                        f"{node}, but the deployment has {num_nodes} nodes"
                    )

    def state_at(self, round_index: int, num_nodes: int) -> ScenarioState:
        """The :class:`ScenarioState` round ``round_index`` runs under.

        Overlapping partition windows resolve to the earliest-declared open
        window; straggler factors multiply when windows overlap on a node.
        """

        offline = {
            outage.node for outage in self.outages if outage.covers(round_index)
        }
        active = tuple(node for node in range(num_nodes) if node not in offline)
        if not active:
            raise ConfigurationError(
                f"scenario {self.name!r} leaves no active nodes at round {round_index}"
            )

        partition_ids: list[int | None] = [None] * num_nodes
        for window in self.partitions:
            if window.covers(round_index):
                for group_id, group in enumerate(window.groups):
                    for node in group:
                        partition_ids[node] = group_id
                break

        slowdowns = [1.0] * num_nodes
        for window in self.stragglers:
            if window.covers(round_index):
                for node in window.nodes:
                    slowdowns[node] *= window.slowdown

        return ScenarioState(
            round_index=round_index,
            active=active,
            partition_ids=tuple(partition_ids),
            slowdowns=tuple(slowdowns),
        )

    # -- (de)serialization ---------------------------------------------------------
    def to_dict(self) -> dict[str, Any]:
        """JSON-safe representation; exact inverse of :meth:`from_dict`."""

        return {
            "name": self.name,
            "topology": self.topology.to_dict(),
            "outages": [outage.to_dict() for outage in self.outages],
            "partitions": [window.to_dict() for window in self.partitions],
            "stragglers": [window.to_dict() for window in self.stragglers],
        }

    @classmethod
    def from_dict(cls, data: Mapping[str, Any]) -> "ScenarioSchedule":
        """Rebuild a schedule from :meth:`to_dict` output (hashes match exactly)."""

        known = {"name", "topology", "outages", "partitions", "stragglers"}
        unknown = sorted(set(data) - known)
        if unknown:
            raise ConfigurationError(
                f"unknown ScenarioSchedule field(s): {', '.join(unknown)}"
            )
        return cls(
            name=data.get("name", "static"),
            topology=GeneratorPolicy.from_dict(
                data.get("topology", GeneratorPolicy().to_dict())
            ),
            outages=tuple(data.get("outages", ())),
            partitions=tuple(data.get("partitions", ())),
            stragglers=tuple(data.get("stragglers", ())),
        )
