"""Declarative scenario schedules: churn, partitions, stragglers, adversaries.

A :class:`ScenarioSchedule` describes *how the deployment's environment
evolves over rounds*, independently of any execution mode: which nodes are
offline (churn, as :class:`NodeOutage` windows), which groups of nodes are
temporarily cut off from each other (:class:`PartitionWindow`), which nodes
run slower for a while (:class:`StragglerWindow`), which nodes send
adversarially corrupted models (:class:`ByzantineWindow`) and how the
communication graph is generated and rewired (a
:class:`~repro.topology.policy.GeneratorPolicy`).

The schedule is *pure data*: :meth:`ScenarioSchedule.state_at` maps a round
index to an immutable :class:`ScenarioState` (active nodes, per-node partition
ids, per-node slowdowns, per-node Byzantine modes), and both execution modes
consume that state —
:class:`~repro.simulation.engine.SynchronousMode` per barrier round,
:class:`~repro.simulation.engine.AsynchronousMode` per node-local round.
Because the state is a pure function of the round index, a scenario run is as
deterministic as a plain one: same seed, same schedule, bit-identical result,
regardless of worker count or execution interleaving.

Everything round-trips exactly through ``to_dict``/``from_dict``, so
schedules can live in sweep overrides, cross process boundaries and key the
content-addressed result store.
"""

from __future__ import annotations

import json
from dataclasses import dataclass, field
from pathlib import Path
from typing import Any, Iterable, Mapping

from repro.exceptions import ConfigurationError
from repro.topology.policy import GeneratorPolicy

__all__ = [
    "BYZANTINE_MODES",
    "ByzantineWindow",
    "NodeOutage",
    "PartitionWindow",
    "ScenarioSchedule",
    "ScenarioState",
    "StragglerWindow",
]

#: Supported Byzantine sender behaviors (see :class:`ByzantineWindow`).
BYZANTINE_MODES = ("random-gradient", "sign-flip", "stale-replay")


def _check_window(name: str, start_round: int, end_round: int | None) -> None:
    if start_round < 0:
        raise ConfigurationError(f"{name}: start_round must be non-negative")
    if end_round is not None and end_round <= start_round:
        raise ConfigurationError(
            f"{name}: end_round must be greater than start_round "
            f"(got [{start_round}, {end_round}))"
        )


@dataclass(frozen=True)
class NodeOutage:
    """One churn event: ``node`` is offline during ``[start_round, end_round)``.

    An offline node neither trains, sends nor receives; its model is frozen
    until it rejoins.  ``end_round=None`` means the node never comes back.
    """

    node: int
    start_round: int
    end_round: int | None = None

    def __post_init__(self) -> None:
        if self.node < 0:
            raise ConfigurationError("outage node id must be non-negative")
        _check_window("outage", self.start_round, self.end_round)

    def covers(self, round_index: int) -> bool:
        if round_index < self.start_round:
            return False
        return self.end_round is None or round_index < self.end_round

    def to_dict(self) -> dict[str, Any]:
        return {
            "node": int(self.node),
            "start_round": int(self.start_round),
            "end_round": None if self.end_round is None else int(self.end_round),
        }

    @classmethod
    def from_dict(cls, data: Mapping[str, Any]) -> "NodeOutage":
        return cls(
            node=int(data["node"]),
            start_round=int(data["start_round"]),
            end_round=data.get("end_round"),
        )


@dataclass(frozen=True)
class PartitionWindow:
    """A temporary network partition during ``[start_round, end_round)``.

    ``groups`` are disjoint sets of node ids; while the window is open,
    messages only flow between nodes of the same group.  Nodes in no group
    form one implicit remainder group (they keep talking to each other, but
    not to any listed group).
    """

    start_round: int
    end_round: int
    groups: tuple[tuple[int, ...], ...]

    def __post_init__(self) -> None:
        _check_window("partition", self.start_round, self.end_round)
        groups = tuple(tuple(sorted(int(node) for node in group)) for group in self.groups)
        if len(groups) < 2:
            raise ConfigurationError("a partition needs at least two groups")
        seen: set[int] = set()
        for group in groups:
            if not group:
                raise ConfigurationError("partition groups must be non-empty")
            if seen.intersection(group):
                raise ConfigurationError("partition groups must be disjoint")
            seen.update(group)
        object.__setattr__(self, "groups", groups)

    def covers(self, round_index: int) -> bool:
        return self.start_round <= round_index < self.end_round

    def to_dict(self) -> dict[str, Any]:
        return {
            "start_round": int(self.start_round),
            "end_round": int(self.end_round),
            "groups": [list(group) for group in self.groups],
        }

    @classmethod
    def from_dict(cls, data: Mapping[str, Any]) -> "PartitionWindow":
        return cls(
            start_round=int(data["start_round"]),
            end_round=int(data["end_round"]),
            groups=tuple(tuple(group) for group in data["groups"]),
        )


@dataclass(frozen=True)
class StragglerWindow:
    """``nodes`` compute ``slowdown``x slower during ``[start_round, end_round)``.

    Affects simulated time only (round duration under the synchronous
    barrier, per-node event timing under asynchronous gossip) — the learning
    dynamics are unchanged, which is exactly what a straggler is.
    """

    start_round: int
    end_round: int
    nodes: tuple[int, ...]
    slowdown: float

    def __post_init__(self) -> None:
        _check_window("straggler window", self.start_round, self.end_round)
        nodes = tuple(sorted(int(node) for node in self.nodes))
        if not nodes:
            raise ConfigurationError("a straggler window needs at least one node")
        if len(set(nodes)) != len(nodes):
            raise ConfigurationError("straggler nodes must be unique")
        if self.slowdown < 1.0:
            raise ConfigurationError("straggler slowdown must be >= 1")
        object.__setattr__(self, "nodes", nodes)
        object.__setattr__(self, "slowdown", float(self.slowdown))

    def covers(self, round_index: int) -> bool:
        return self.start_round <= round_index < self.end_round

    def to_dict(self) -> dict[str, Any]:
        return {
            "start_round": int(self.start_round),
            "end_round": int(self.end_round),
            "nodes": list(self.nodes),
            "slowdown": float(self.slowdown),
        }

    @classmethod
    def from_dict(cls, data: Mapping[str, Any]) -> "StragglerWindow":
        return cls(
            start_round=int(data["start_round"]),
            end_round=int(data["end_round"]),
            nodes=tuple(data["nodes"]),
            slowdown=float(data["slowdown"]),
        )


@dataclass(frozen=True)
class ByzantineWindow:
    """``nodes`` send adversarial models during ``[start_round, end_round)``.

    The corruption happens at *send time*, after local training and before the
    compression scheme encodes the payload, so every scheme faces the same
    attack (the adversary also keeps the corrupted model locally — a fully
    Byzantine participant, not just a noisy link).  ``mode`` picks the attack:

    - ``"random-gradient"``: replace the local update with seeded Gaussian
      noise of the same RMS magnitude (an unhelpful but plausible-looking
      sender).
    - ``"sign-flip"``: send the update with its sign inverted (actively
      pushes the average away from the honest direction).
    - ``"stale-replay"``: freeze the first in-window model and resend it every
      round (a replay attacker / stuck client).
    """

    start_round: int
    end_round: int
    nodes: tuple[int, ...]
    mode: str

    def __post_init__(self) -> None:
        _check_window("byzantine window", self.start_round, self.end_round)
        nodes = tuple(sorted(int(node) for node in self.nodes))
        if not nodes:
            raise ConfigurationError("a byzantine window needs at least one node")
        if len(set(nodes)) != len(nodes):
            raise ConfigurationError("byzantine nodes must be unique")
        if nodes[0] < 0:
            raise ConfigurationError("byzantine node ids must be non-negative")
        if self.mode not in BYZANTINE_MODES:
            raise ConfigurationError(
                f"unknown byzantine mode {self.mode!r}; "
                f"available: {', '.join(BYZANTINE_MODES)}"
            )
        object.__setattr__(self, "nodes", nodes)

    def covers(self, round_index: int) -> bool:
        return self.start_round <= round_index < self.end_round

    def to_dict(self) -> dict[str, Any]:
        return {
            "start_round": int(self.start_round),
            "end_round": int(self.end_round),
            "nodes": list(self.nodes),
            "mode": self.mode,
        }

    @classmethod
    def from_dict(cls, data: Mapping[str, Any]) -> "ByzantineWindow":
        return cls(
            start_round=int(data["start_round"]),
            end_round=int(data["end_round"]),
            nodes=tuple(data["nodes"]),
            mode=str(data["mode"]),
        )


@dataclass(frozen=True)
class ScenarioState:
    """The environment one round sees: who is up, who talks to whom, who lags."""

    round_index: int
    active: tuple[int, ...]
    partition_ids: tuple[int | None, ...]
    slowdowns: tuple[float, ...]
    byzantine: tuple[str | None, ...] = ()

    def is_active(self, node: int) -> bool:
        return node in self.active

    def byzantine_mode(self, node: int) -> str | None:
        """The attack ``node`` mounts this round (``None`` for honest nodes)."""

        if not self.byzantine:
            return None
        return self.byzantine[node]

    def allows(self, sender: int, receiver: int) -> bool:
        """Whether a message from ``sender`` can reach ``receiver`` this round."""

        if sender not in self.active or receiver not in self.active:
            return False
        return self.partition_ids[sender] == self.partition_ids[receiver]

    def max_slowdown(self) -> float:
        """The worst straggler factor among active nodes (1.0 when none lag)."""

        if not self.active:
            return 1.0
        return max(self.slowdowns[node] for node in self.active)


@dataclass(frozen=True)
class ScenarioSchedule:
    """A named, serializable schedule of environment events over rounds.

    The default instance (``ScenarioSchedule()``) is the trivial scenario: a
    static topology from the default generator, every node up, no partitions,
    no stragglers — byte-for-byte equivalent to a pre-scenario run.
    """

    name: str = "static"
    topology: GeneratorPolicy = field(default_factory=GeneratorPolicy)
    outages: tuple[NodeOutage, ...] = ()
    partitions: tuple[PartitionWindow, ...] = ()
    stragglers: tuple[StragglerWindow, ...] = ()
    byzantine: tuple[ByzantineWindow, ...] = ()

    def __post_init__(self) -> None:
        if not self.name:
            raise ConfigurationError("a scenario needs a non-empty name")
        topology = self.topology
        if isinstance(topology, Mapping):
            topology = GeneratorPolicy.from_dict(topology)
        if not isinstance(topology, GeneratorPolicy):
            raise ConfigurationError(
                "scenario topology must be a GeneratorPolicy (or its to_dict form)"
            )
        object.__setattr__(self, "topology", topology)
        object.__setattr__(self, "outages", self._coerce(self.outages, NodeOutage))
        object.__setattr__(
            self, "partitions", self._coerce(self.partitions, PartitionWindow)
        )
        object.__setattr__(
            self, "stragglers", self._coerce(self.stragglers, StragglerWindow)
        )
        object.__setattr__(
            self, "byzantine", self._coerce(self.byzantine, ByzantineWindow)
        )

    @staticmethod
    def _coerce(values: Iterable[Any], cls: type) -> tuple[Any, ...]:
        coerced = []
        for value in values:
            if isinstance(value, Mapping):
                value = cls.from_dict(value)
            if not isinstance(value, cls):
                raise ConfigurationError(
                    f"expected {cls.__name__} entries, got {type(value).__name__}"
                )
            coerced.append(value)
        return tuple(coerced)

    # -- queries -------------------------------------------------------------------
    @property
    def has_events(self) -> bool:
        """Whether any churn/partition/straggler/byzantine event is scheduled."""

        return bool(
            self.outages or self.partitions or self.stragglers or self.byzantine
        )

    def _windows(self) -> tuple[tuple[str, Any], ...]:
        """Every scheduled window, paired with a human-readable kind label."""

        return (
            tuple(("outage", outage) for outage in self.outages)
            + tuple(("partition", window) for window in self.partitions)
            + tuple(("straggler window", window) for window in self.stragglers)
            + tuple(("byzantine window", window) for window in self.byzantine)
        )

    @property
    def is_trivial(self) -> bool:
        """No events and a static default topology (the legacy behavior)."""

        return not self.has_events and self.topology == GeneratorPolicy()

    def validate_for(self, num_nodes: int, rounds: int | None = None) -> None:
        """Check the schedule fits a ``num_nodes`` x ``rounds`` deployment.

        Every referenced node id must exist, and — when ``rounds`` is given —
        every window must open before the run ends (a window whose
        ``start_round`` is past the last round could never fire, which is
        always a configuration mistake; windows merely *ending* past
        ``rounds`` are fine and simply get truncated by the run length).
        The error names the offending window.
        """

        for outage in self.outages:
            if outage.node >= num_nodes:
                raise ConfigurationError(
                    f"scenario {self.name!r}: outage references node {outage.node}, "
                    f"but the deployment has {num_nodes} nodes"
                )
        for window in self.partitions:
            for group in window.groups:
                for node in group:
                    if node >= num_nodes:
                        raise ConfigurationError(
                            f"scenario {self.name!r}: partition references node "
                            f"{node}, but the deployment has {num_nodes} nodes"
                        )
        for kind, window in self._windows():
            if kind in ("straggler window", "byzantine window"):
                for node in window.nodes:
                    if node >= num_nodes:
                        raise ConfigurationError(
                            f"scenario {self.name!r}: {kind} references node "
                            f"{node}, but the deployment has {num_nodes} nodes"
                        )
        if rounds is not None:
            for kind, window in self._windows():
                if window.start_round >= rounds:
                    raise ConfigurationError(
                        f"scenario {self.name!r}: {kind} "
                        f"{json.dumps(window.to_dict(), sort_keys=True)} starts at "
                        f"round {window.start_round}, but the run only has "
                        f"{rounds} round(s)"
                    )

    def state_at(self, round_index: int, num_nodes: int) -> ScenarioState:
        """The :class:`ScenarioState` round ``round_index`` runs under.

        Overlapping partition windows resolve to the earliest-declared open
        window; straggler factors multiply when windows overlap on a node;
        overlapping byzantine windows resolve per node to the
        earliest-declared open window covering that node.
        """

        offline = {
            outage.node for outage in self.outages if outage.covers(round_index)
        }
        active = tuple(node for node in range(num_nodes) if node not in offline)
        if not active:
            raise ConfigurationError(
                f"scenario {self.name!r} leaves no active nodes at round {round_index}"
            )

        partition_ids: list[int | None] = [None] * num_nodes
        for window in self.partitions:
            if window.covers(round_index):
                for group_id, group in enumerate(window.groups):
                    for node in group:
                        partition_ids[node] = group_id
                break

        slowdowns = [1.0] * num_nodes
        for window in self.stragglers:
            if window.covers(round_index):
                for node in window.nodes:
                    slowdowns[node] *= window.slowdown

        byzantine: list[str | None] = [None] * num_nodes
        for window in self.byzantine:
            if window.covers(round_index):
                for node in window.nodes:
                    if byzantine[node] is None:
                        byzantine[node] = window.mode

        return ScenarioState(
            round_index=round_index,
            active=active,
            partition_ids=tuple(partition_ids),
            slowdowns=tuple(slowdowns),
            byzantine=tuple(byzantine),
        )

    # -- (de)serialization ---------------------------------------------------------
    def to_dict(self) -> dict[str, Any]:
        """JSON-safe representation; exact inverse of :meth:`from_dict`."""

        return {
            "name": self.name,
            "topology": self.topology.to_dict(),
            "outages": [outage.to_dict() for outage in self.outages],
            "partitions": [window.to_dict() for window in self.partitions],
            "stragglers": [window.to_dict() for window in self.stragglers],
            "byzantine": [window.to_dict() for window in self.byzantine],
        }

    @classmethod
    def from_dict(cls, data: Mapping[str, Any]) -> "ScenarioSchedule":
        """Rebuild a schedule from :meth:`to_dict` output (hashes match exactly)."""

        known = {"name", "topology", "outages", "partitions", "stragglers", "byzantine"}
        unknown = sorted(set(data) - known)
        if unknown:
            raise ConfigurationError(
                f"unknown ScenarioSchedule field(s): {', '.join(unknown)}"
            )
        return cls(
            name=data.get("name", "static"),
            topology=GeneratorPolicy.from_dict(
                data.get("topology", GeneratorPolicy().to_dict())
            ),
            outages=tuple(data.get("outages", ())),
            partitions=tuple(data.get("partitions", ())),
            stragglers=tuple(data.get("stragglers", ())),
            byzantine=tuple(data.get("byzantine", ())),
        )

    # -- trace replay --------------------------------------------------------------
    @classmethod
    def from_trace(
        cls,
        rows: str | Path | Iterable[Mapping[str, Any]],
        name: str = "trace",
        topology: GeneratorPolicy | None = None,
        num_nodes: int | None = None,
        rounds: int | None = None,
    ) -> "ScenarioSchedule":
        """Compile an availability/latency trace into a schedule.

        ``rows`` is a JSONL file path or an iterable of already-parsed row
        mappings.  Each row describes one node over one round window and is
        one of two kinds:

        - availability: ``{"node": 3, "round": 7, "available": false}`` —
          the node is offline for that round.  Consecutive offline rounds
          merge into a single :class:`NodeOutage`.  ``"available": true``
          rows are accepted (traces usually log both states) and ignored.
        - latency: ``{"node": 3, "start_round": 2, "end_round": 5,
          "slowdown": 3.0}`` — the node computes ``slowdown``x slower for
          the window.  Rows sharing a window and factor merge into one
          :class:`StragglerWindow`.

        Both kinds accept either a single ``"round"`` or a
        ``"start_round"``/``"end_round"`` pair.  When ``num_nodes`` /
        ``rounds`` are given, rows outside the deployment are clipped (nodes
        past ``num_nodes`` dropped, windows truncated to ``rounds``) so one
        recorded trace replays at any smoke or paper scale.  Malformed rows
        raise :class:`~repro.exceptions.ConfigurationError` naming the row.
        """

        if isinstance(rows, (str, Path)):
            path = Path(rows)
            try:
                lines = path.read_text(encoding="utf-8").splitlines()
            except OSError as error:
                raise ConfigurationError(
                    f"cannot read trace file {path}: {error}"
                ) from error
            parsed: list[Mapping[str, Any]] = []
            for number, line in enumerate(lines, start=1):
                line = line.strip()
                if not line or line.startswith("#"):
                    continue
                try:
                    record = json.loads(line)
                except json.JSONDecodeError as error:
                    raise ConfigurationError(
                        f"trace {path} line {number}: invalid JSON ({error})"
                    ) from error
                parsed.append(record)
            rows = parsed

        offline_rounds: dict[int, list[int]] = {}
        straggler_rows: dict[tuple[int, int, float], list[int]] = {}
        for number, row in enumerate(rows, start=1):
            label = f"trace row {number} ({json.dumps(row, sort_keys=True)})"
            if not isinstance(row, Mapping):
                raise ConfigurationError(f"trace row {number}: expected an object")
            extra = sorted(
                set(row)
                - {"node", "round", "start_round", "end_round", "available", "slowdown"}
            )
            if extra:
                raise ConfigurationError(
                    f"{label}: unknown field(s) {', '.join(extra)}"
                )
            if "node" not in row:
                raise ConfigurationError(f"{label}: missing 'node'")
            node = int(row["node"])
            if "round" in row:
                if "start_round" in row or "end_round" in row:
                    raise ConfigurationError(
                        f"{label}: give either 'round' or a "
                        "'start_round'/'end_round' pair, not both"
                    )
                start, end = int(row["round"]), int(row["round"]) + 1
            elif "start_round" in row and "end_round" in row:
                start, end = int(row["start_round"]), int(row["end_round"])
            else:
                raise ConfigurationError(
                    f"{label}: needs 'round' or both 'start_round' and 'end_round'"
                )
            if start < 0 or end <= start:
                raise ConfigurationError(
                    f"{label}: window [{start}, {end}) is empty or negative"
                )
            has_avail, has_slow = "available" in row, "slowdown" in row
            if has_avail == has_slow:
                raise ConfigurationError(
                    f"{label}: needs exactly one of 'available' or 'slowdown'"
                )
            if num_nodes is not None and node >= num_nodes:
                continue
            if rounds is not None:
                end = min(end, rounds)
                if start >= end:
                    continue
            if has_avail:
                if bool(row["available"]):
                    continue
                offline_rounds.setdefault(node, []).extend(range(start, end))
            else:
                slowdown = float(row["slowdown"])
                if slowdown < 1.0:
                    raise ConfigurationError(
                        f"{label}: slowdown must be >= 1 (got {slowdown})"
                    )
                straggler_rows.setdefault((start, end, slowdown), []).append(node)

        outages: list[NodeOutage] = []
        for node in sorted(offline_rounds):
            run_start: int | None = None
            previous = None
            for round_index in sorted(set(offline_rounds[node])):
                if run_start is None:
                    run_start = round_index
                elif round_index != previous + 1:
                    outages.append(
                        NodeOutage(node=node, start_round=run_start, end_round=previous + 1)
                    )
                    run_start = round_index
                previous = round_index
            if run_start is not None:
                outages.append(
                    NodeOutage(node=node, start_round=run_start, end_round=previous + 1)
                )
        outages.sort(key=lambda outage: (outage.start_round, outage.node))

        stragglers = tuple(
            StragglerWindow(
                start_round=start,
                end_round=end,
                nodes=tuple(sorted(set(straggler_rows[(start, end, slowdown)]))),
                slowdown=slowdown,
            )
            for start, end, slowdown in sorted(straggler_rows)
        )

        return cls(
            name=name,
            topology=topology if topology is not None else GeneratorPolicy(),
            outages=tuple(outages),
            stragglers=stragglers,
        )
