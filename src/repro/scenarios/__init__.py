"""Scenario subsystem: declarative environment schedules for experiments.

The JWINS paper only varies one environmental knob (a per-round re-randomized
topology, Section IV-D); real decentralized deployments also see node churn,
network partitions, stragglers and adversarial senders.  This package
expresses all of those as one serializable
:class:`~repro.scenarios.schedule.ScenarioSchedule` consumed by both execution
modes of the simulation engine::

    from repro.scenarios import get_scenario
    from repro.simulation import ExperimentConfig, run_experiment

    config = ExperimentConfig(num_nodes=8, rounds=20,
                              scenario=get_scenario("churn", num_nodes=8, rounds=20))
    result = run_experiment(task, scheme_factory, config)
    print(result.scenario_rounds[2]["active_nodes"])  # who was up in round 2

See :mod:`repro.scenarios.presets` for the named presets behind the CLI's
``--scenario`` flag, :mod:`repro.topology.policy` for the topology
generation/rewiring policies a schedule embeds, and
:mod:`repro.scenarios.fuzz` for the seeded schedule fuzzer that property-tests
the determinism contract over random hostile schedules.
"""

from repro.scenarios.presets import (
    BUNDLED_TRACES,
    SCENARIO_PRESETS,
    bundled_trace_path,
    describe_scenarios,
    get_scenario,
)
from repro.scenarios.schedule import (
    BYZANTINE_MODES,
    ByzantineWindow,
    NodeOutage,
    PartitionWindow,
    ScenarioSchedule,
    ScenarioState,
    StragglerWindow,
)

__all__ = [
    "BUNDLED_TRACES",
    "BYZANTINE_MODES",
    "ByzantineWindow",
    "NodeOutage",
    "PartitionWindow",
    "SCENARIO_PRESETS",
    "ScenarioSchedule",
    "ScenarioState",
    "StragglerWindow",
    "bundled_trace_path",
    "describe_scenarios",
    "get_scenario",
]
