"""Named scenario presets for the CLI and the benchmark harness.

A preset is a builder ``(num_nodes, rounds) -> ScenarioSchedule``: the event
windows scale with the run length and the affected node sets scale with the
deployment size, so ``--scenario churn`` works unchanged for a 4-node smoke
run and a 96-node paper-scale run.  :func:`get_scenario` resolves a name and
validates the result against the deployment size.
"""

from __future__ import annotations

from pathlib import Path
from typing import Callable

from repro.exceptions import ConfigurationError
from repro.scenarios.schedule import (
    ByzantineWindow,
    NodeOutage,
    PartitionWindow,
    ScenarioSchedule,
    StragglerWindow,
)
from repro.topology.policy import GeneratorPolicy

__all__ = [
    "BUNDLED_TRACES",
    "SCENARIO_PRESETS",
    "bundled_trace_path",
    "describe_scenarios",
    "get_scenario",
]

#: Name -> bundled example trace file (JSONL, see ScenarioSchedule.from_trace).
BUNDLED_TRACES = {
    "diurnal": "diurnal.jsonl",
    "mobile": "mobile.jsonl",
}


def bundled_trace_path(name: str) -> Path:
    """The on-disk path of a bundled example trace (``diurnal`` or ``mobile``)."""

    if name not in BUNDLED_TRACES:
        raise ConfigurationError(
            f"unknown bundled trace {name!r}; available: {', '.join(BUNDLED_TRACES)}"
        )
    return Path(__file__).resolve().parent / "traces" / BUNDLED_TRACES[name]


def _static(num_nodes: int, rounds: int) -> ScenarioSchedule:
    return ScenarioSchedule()


def _dynamic(num_nodes: int, rounds: int) -> ScenarioSchedule:
    return ScenarioSchedule(
        name="dynamic",
        topology=GeneratorPolicy(generator="random-regular", rewire_every=1),
    )


def _small_world(num_nodes: int, rounds: int) -> ScenarioSchedule:
    return ScenarioSchedule(
        name="small-world",
        topology=GeneratorPolicy(generator="small-world", params=(("beta", 0.2),)),
    )


def _clustered(num_nodes: int, rounds: int) -> ScenarioSchedule:
    return ScenarioSchedule(
        name="clustered",
        topology=GeneratorPolicy(
            generator="clustered", params=(("bridges", 2), ("num_clusters", 2))
        ),
    )


def _churn_outages(num_nodes: int, rounds: int) -> tuple[NodeOutage, ...]:
    """Rotating two-round outages from round 2 on, one node at a time."""

    outages = []
    for position, start in enumerate(range(2, max(3, rounds), 3)):
        outages.append(
            NodeOutage(
                node=position % num_nodes, start_round=start, end_round=start + 2
            )
        )
    return tuple(outages)


def _churn(num_nodes: int, rounds: int) -> ScenarioSchedule:
    return ScenarioSchedule(name="churn", outages=_churn_outages(num_nodes, rounds))


def _partition_window(num_nodes: int, rounds: int) -> PartitionWindow:
    """The deployment splits into halves for the middle third of the run."""

    half = max(1, num_nodes // 2)
    start = max(1, rounds // 3)
    end = max(start + 1, (2 * rounds) // 3)
    return PartitionWindow(
        start_round=start,
        end_round=end,
        groups=(tuple(range(half)), tuple(range(half, num_nodes))),
    )


def _partition(num_nodes: int, rounds: int) -> ScenarioSchedule:
    return ScenarioSchedule(
        name="partition", partitions=(_partition_window(num_nodes, rounds),)
    )


def _stragglers(num_nodes: int, rounds: int) -> ScenarioSchedule:
    slow_nodes = tuple(range(max(1, num_nodes // 4)))
    start = max(1, rounds // 4)
    end = max(start + 1, (3 * rounds) // 4)
    return ScenarioSchedule(
        name="stragglers",
        stragglers=(
            StragglerWindow(
                start_round=start, end_round=end, nodes=slow_nodes, slowdown=4.0
            ),
        ),
    )


def _churn_partition(num_nodes: int, rounds: int) -> ScenarioSchedule:
    return ScenarioSchedule(
        name="churn-partition",
        outages=_churn_outages(num_nodes, rounds),
        partitions=(_partition_window(num_nodes, rounds),),
    )


def _byzantine(num_nodes: int, rounds: int) -> ScenarioSchedule:
    """The last quarter of the nodes sign-flip for the middle third of the run."""

    attackers = tuple(range(num_nodes - max(1, num_nodes // 4), num_nodes))
    start = max(1, rounds // 3)
    end = max(start + 1, (2 * rounds) // 3)
    return ScenarioSchedule(
        name="byzantine",
        byzantine=(
            ByzantineWindow(
                start_round=start, end_round=end, nodes=attackers, mode="sign-flip"
            ),
        ),
    )


def _trace_preset(trace: str) -> Callable[[int, int], ScenarioSchedule]:
    def build(num_nodes: int, rounds: int) -> ScenarioSchedule:
        return ScenarioSchedule.from_trace(
            bundled_trace_path(trace),
            name=f"trace-{trace}",
            num_nodes=num_nodes,
            rounds=rounds,
        )

    return build


#: Preset name -> (description, builder(num_nodes, rounds)).
SCENARIO_PRESETS: dict[
    str, tuple[str, Callable[[int, int], ScenarioSchedule]]
] = {
    "static": ("static random-regular topology, no events (the default)", _static),
    "dynamic": ("re-sample the random-regular topology every round (Fig. 7)", _dynamic),
    "small-world": ("static Watts-Strogatz small-world topology (beta=0.2)", _small_world),
    "clustered": ("two dense clusters joined by sparse random bridges", _clustered),
    "churn": ("rotating two-round node outages from round 2 on", _churn),
    "partition": ("network splits into halves for the middle third of the run", _partition),
    "stragglers": ("a quarter of the nodes compute 4x slower mid-run", _stragglers),
    "churn-partition": ("churn outages plus the mid-run half/half partition", _churn_partition),
    "byzantine": ("a quarter of the nodes sign-flip their updates mid-run", _byzantine),
    "trace-diurnal": ("bundled diurnal availability trace (staggered night outages)", _trace_preset("diurnal")),
    "trace-mobile": ("bundled mobile latency trace (handsets throttling off-charger)", _trace_preset("mobile")),
}


def get_scenario(name: str, num_nodes: int, rounds: int) -> ScenarioSchedule:
    """Build the named preset for a deployment of ``num_nodes`` x ``rounds``."""

    key = name.lower()
    if key not in SCENARIO_PRESETS:
        raise ConfigurationError(
            f"unknown scenario {name!r}; available: {', '.join(SCENARIO_PRESETS)}"
        )
    schedule = SCENARIO_PRESETS[key][1](num_nodes, rounds)
    schedule.validate_for(num_nodes, rounds=rounds)
    return schedule


def describe_scenarios() -> str:
    """One line per preset, for ``--list-scenarios``."""

    width = max(len(name) for name in SCENARIO_PRESETS)
    return "\n".join(
        f"{name:{width}s}  {description}"
        for name, (description, _) in SCENARIO_PRESETS.items()
    )
