"""Seeded scenario fuzzer: the determinism contract as a property test.

The five determinism oracles (seed pinning, sync-vs-seed, serial-vs-pool,
interrupt-resume, wall-stripped traces) were historically pinned on two
hand-written sweep cells.  This module turns four of them into a property
over a *distribution* of hostile schedules: a seeded generator produces
random well-formed :class:`~repro.scenarios.schedule.ScenarioSchedule`
instances (overlapping outages, nested partitions, Byzantine windows,
straggler windows, rewiring policies, boundary rounds) and every generated
schedule must survive

- ``rerun``    — executing the same spec twice yields byte-identical results,
- ``workers``  — a 2-cell sweep stores byte-identical JSONL on 1 and 2 workers,
- ``resume``   — interrupt mid-run + resume equals the uninterrupted run,
- ``trace``    — wall-stripped structured traces are byte-identical across reruns.

On failure the schedule is *shrunk* (events dropped, windows truncated, the
topology policy simplified, rounds reduced) to a minimal still-failing case
and printed as reproducible JSON, replayable with ``--replay``.

Run it directly::

    python -m repro.scenarios.fuzz --cases 25 --seed 0

``--self-test`` deliberately installs a nondeterministic Byzantine send path
(:func:`install_chaos`) and asserts the fuzzer catches and shrinks it — a
test that the alarm itself rings.
"""

from __future__ import annotations

import argparse
import itertools
import json
import sys
import tempfile
from dataclasses import dataclass, replace
from pathlib import Path
from typing import Any, Callable, Iterator, Mapping

import numpy as np

from repro.checkpoint.snapshot import SimulationSnapshot
from repro.exceptions import ExperimentPaused
from repro.observability.forensics import TraceDiff, diff_traces
from repro.observability.trace import TraceEmitter, strip_wall
from repro.orchestration.pool import run_sweep
from repro.orchestration.spec import ExperimentSpec
from repro.orchestration.store import ResultStore
from repro.scenarios.schedule import (
    BYZANTINE_MODES,
    ByzantineWindow,
    NodeOutage,
    PartitionWindow,
    ScenarioSchedule,
    StragglerWindow,
)
from repro.simulation.engine import Simulator
from repro.simulation.runner import resume_experiment
from repro.topology.policy import GeneratorPolicy
from repro.utils.rng import derive_rng

__all__ = [
    "ORACLES",
    "FuzzCase",
    "forensics_for_case",
    "generate_case",
    "install_chaos",
    "main",
    "run_case",
    "shrink_case",
]

#: Oracle names, in execution order (cheapest first).
ORACLES = ("rerun", "workers", "resume", "trace")

#: Default workload/scheme for fuzz runs — the cheapest registered workload.
DEFAULT_WORKLOAD = "movielens"
DEFAULT_SCHEME = "jwins"

#: Topology generators safe at fuzz scale (4+ nodes, degree 2).
_FUZZ_GENERATORS = ("random-regular", "ring", "fully-connected", "small-world")


# -- case model --------------------------------------------------------------------
@dataclass(frozen=True)
class FuzzCase:
    """One generated property-test case: a schedule plus its run parameters."""

    index: int
    num_nodes: int
    rounds: int
    execution: str
    drop_probability: float
    run_seed: int
    schedule: ScenarioSchedule

    def __post_init__(self) -> None:
        schedule = self.schedule
        if isinstance(schedule, Mapping):
            object.__setattr__(self, "schedule", ScenarioSchedule.from_dict(schedule))

    def to_dict(self) -> dict[str, Any]:
        """JSON-safe representation; exact inverse of :meth:`from_dict`."""

        return {
            "index": int(self.index),
            "num_nodes": int(self.num_nodes),
            "rounds": int(self.rounds),
            "execution": self.execution,
            "drop_probability": float(self.drop_probability),
            "run_seed": int(self.run_seed),
            "schedule": self.schedule.to_dict(),
        }

    @classmethod
    def from_dict(cls, data: Mapping[str, Any]) -> "FuzzCase":
        """Rebuild a case from :meth:`to_dict` output (for ``--replay``)."""

        return cls(
            index=int(data["index"]),
            num_nodes=int(data["num_nodes"]),
            rounds=int(data["rounds"]),
            execution=str(data["execution"]),
            drop_probability=float(data["drop_probability"]),
            run_seed=int(data["run_seed"]),
            schedule=ScenarioSchedule.from_dict(data["schedule"]),
        )

    def spec(self, workload: str, scheme: str, seed_offset: int = 0) -> ExperimentSpec:
        """The orchestration cell this case executes as."""

        overrides: dict[str, Any] = {
            "num_nodes": self.num_nodes,
            "degree": 2,
            "rounds": self.rounds,
            "local_steps": 1,
            "batch_size": 4,
            "eval_every": 2,
            "eval_test_samples": 32,
            "seed": self.run_seed + seed_offset,
            "execution": self.execution,
            "message_drop_probability": self.drop_probability,
            "scenario": self.schedule.to_dict(),
        }
        if self.execution == "async":
            overrides["compute_speed_range"] = [1.0, 2.0]
            overrides["link_latency_jitter_seconds"] = 0.01
        return ExperimentSpec(workload=workload, scheme=scheme, overrides=overrides)

    @property
    def summary(self) -> str:
        """One-line shape description for progress output."""

        schedule = self.schedule
        return (
            f"nodes={self.num_nodes} rounds={self.rounds} exec={self.execution} "
            f"drop={self.drop_probability:g} "
            f"outages={len(schedule.outages)} partitions={len(schedule.partitions)} "
            f"stragglers={len(schedule.stragglers)} byzantine={len(schedule.byzantine)} "
            f"rewire={schedule.topology.rewire_every}"
        )


# -- generation --------------------------------------------------------------------
def _window(rng: np.random.Generator, rounds: int) -> tuple[int, int]:
    """A well-formed window: always opens before ``rounds``, boundary-biased."""

    start = 0 if rng.random() < 0.3 else int(rng.integers(0, rounds))
    if rng.random() < 0.25:
        end = rounds  # boundary: the window runs to the very last round
    else:
        end = start + 1 + int(rng.integers(0, 3))
    return start, max(start + 1, end)


def _node_subset(rng: np.random.Generator, num_nodes: int, allow_all: bool) -> tuple[int, ...]:
    """A non-empty node subset (never every node unless ``allow_all``)."""

    upper = num_nodes if allow_all else num_nodes - 1
    size = 1 + int(rng.integers(0, upper))
    chosen = rng.choice(num_nodes, size=size, replace=False)
    return tuple(sorted(int(node) for node in chosen))


def generate_schedule(
    rng: np.random.Generator,
    num_nodes: int,
    rounds: int,
    name: str = "fuzz",
    ensure_byzantine: bool = False,
) -> ScenarioSchedule:
    """One random well-formed schedule over ``num_nodes`` x ``rounds``.

    Node 0 is kept permanently online so no combination of overlapping
    outages can empty a round (``state_at`` rejects rounds with zero active
    nodes); everything else — overlap, nesting, permanent departures, windows
    running past the end of the run — is fair game.
    """

    generator = str(rng.choice(_FUZZ_GENERATORS))
    params: tuple[tuple[str, Any], ...] = ()
    if generator == "small-world":
        params = (("beta", float(rng.choice([0.1, 0.2, 0.5]))),)
    topology = GeneratorPolicy(
        generator=generator,
        rewire_every=int(rng.choice([0, 0, 0, 1, 2, 3])),
        params=params,
    )

    outages = []
    for _ in range(int(rng.integers(0, 4))):
        start, end = _window(rng, rounds)
        outages.append(
            NodeOutage(
                node=int(rng.integers(1, num_nodes)),  # node 0 never goes down
                start_round=start,
                end_round=None if rng.random() < 0.1 else end,
            )
        )

    partitions = []
    for _ in range(int(rng.integers(0, 3))):
        start, end = _window(rng, rounds)
        order = [int(node) for node in rng.permutation(num_nodes)]
        cut = 1 + int(rng.integers(0, num_nodes - 1))
        groups: tuple[tuple[int, ...], ...]
        if num_nodes - cut >= 2 and rng.random() < 0.3:
            # Leave the tail out of every group: the implicit remainder group.
            second = cut + 1 + int(rng.integers(0, num_nodes - cut - 1))
            groups = (tuple(order[:cut]), tuple(order[cut:second]))
        else:
            groups = (tuple(order[:cut]), tuple(order[cut:]))
        partitions.append(
            PartitionWindow(start_round=start, end_round=end, groups=groups)
        )

    stragglers = []
    for _ in range(int(rng.integers(0, 3))):
        start, end = _window(rng, rounds)
        stragglers.append(
            StragglerWindow(
                start_round=start,
                end_round=end,
                nodes=_node_subset(rng, num_nodes, allow_all=True),
                slowdown=float(1.0 + rng.integers(1, 9) / 2.0),
            )
        )

    byzantine = []
    for _ in range(int(rng.integers(0, 3))):
        start, end = _window(rng, rounds)
        byzantine.append(
            ByzantineWindow(
                start_round=start,
                end_round=end,
                nodes=_node_subset(rng, num_nodes, allow_all=False),
                mode=str(rng.choice(BYZANTINE_MODES)),
            )
        )
    if ensure_byzantine and not byzantine:
        byzantine.append(
            ByzantineWindow(
                start_round=0,
                end_round=rounds,
                nodes=(num_nodes - 1,),
                mode="random-gradient",
            )
        )

    return ScenarioSchedule(
        name=name,
        topology=topology,
        outages=tuple(outages),
        partitions=tuple(partitions),
        stragglers=tuple(stragglers),
        byzantine=tuple(byzantine),
    )


def generate_case(seed: int, index: int, ensure_byzantine: bool = False) -> FuzzCase:
    """Case ``index`` of the fuzz run seeded with ``seed`` (pure function)."""

    rng = derive_rng(seed, "scenario-fuzz", index)
    num_nodes = int(rng.integers(4, 7))
    rounds = int(rng.integers(3, 7))
    return FuzzCase(
        index=index,
        num_nodes=num_nodes,
        rounds=rounds,
        execution="sync" if rng.random() < 0.5 else "async",
        drop_probability=float(rng.choice([0.0, 0.0, 0.15])),
        run_seed=int(rng.integers(1, 2**16)),
        schedule=generate_schedule(
            rng, num_nodes, rounds, name=f"fuzz-{index}", ensure_byzantine=ensure_byzantine
        ),
    )


# -- oracles -----------------------------------------------------------------------
def _result_json(spec: ExperimentSpec, trace: TraceEmitter | None = None) -> str:
    return json.dumps(spec.run(trace=trace).to_dict(), sort_keys=True)


def _oracle_rerun(case: FuzzCase, workload: str, scheme: str) -> str | None:
    spec = case.spec(workload, scheme)
    if _result_json(spec) != _result_json(spec):
        return "re-running the identical spec produced a different result"
    return None


def _oracle_workers(case: FuzzCase, workload: str, scheme: str) -> str | None:
    # Two distinct cells (consecutive seeds), because a single pending cell
    # executes in-process regardless of the worker count.
    specs = [case.spec(workload, scheme), case.spec(workload, scheme, seed_offset=1)]
    with tempfile.TemporaryDirectory() as tmp:
        serial, pooled = Path(tmp) / "serial.jsonl", Path(tmp) / "pool.jsonl"
        run_sweep(specs, ResultStore(serial), workers=1)
        run_sweep(specs, ResultStore(pooled), workers=2)
        if serial.read_bytes() != pooled.read_bytes():
            return "1-worker and 2-worker sweep stores are not byte-identical"
    return None


def _oracle_resume(case: FuzzCase, workload: str, scheme: str) -> str | None:
    spec = case.spec(workload, scheme)
    uninterrupted = _result_json(spec)

    stop_after = max(1, case.rounds // 2)
    task, factory, config, _ = spec.build()
    simulator = Simulator(
        task, factory, config, scheme_name=spec.scheme.label, spec=spec.to_dict()
    )
    simulator.on_round_end(
        lambda round_index, node_id, now: (
            simulator.request_checkpoint_stop()
            if simulator.result.rounds_completed >= stop_after
            else None
        )
    )
    try:
        simulator.run()
        return f"requested a pause at round {stop_after} but the run never stopped"
    except ExperimentPaused as paused:
        snapshot = paused.snapshot
    # Force the snapshot through its JSON form: what resumes in practice is
    # the persisted file, not the in-memory object.
    snapshot = SimulationSnapshot.from_dict(
        json.loads(json.dumps(snapshot.to_dict(), sort_keys=True))
    )
    task, factory, config, _ = spec.build()
    resumed = resume_experiment(
        task,
        factory,
        config,
        snapshot,
        scheme_name=spec.scheme.label,
        spec=spec.to_dict(),
    )
    if json.dumps(resumed.to_dict(), sort_keys=True) != uninterrupted:
        return (
            f"interrupt at round {snapshot.rounds_completed} + resume differs "
            "from the uninterrupted run"
        )
    return None


def _oracle_trace(case: FuzzCase, workload: str, scheme: str) -> str | None:
    spec = case.spec(workload, scheme)
    stripped: list[str] = []
    with tempfile.TemporaryDirectory() as tmp:
        for attempt in range(2):
            path = Path(tmp) / f"run-{attempt}.trace.jsonl"
            emitter = TraceEmitter(path)
            try:
                spec.run(trace=emitter)
            finally:
                emitter.close()
            stripped.append(strip_wall(path))
    if stripped[0] != stripped[1]:
        return "wall-stripped traces differ between identical runs"
    return None


_ORACLE_FUNCS: dict[str, Callable[[FuzzCase, str, str], str | None]] = {
    "rerun": _oracle_rerun,
    "workers": _oracle_workers,
    "resume": _oracle_resume,
    "trace": _oracle_trace,
}


def run_case(
    case: FuzzCase,
    workload: str = DEFAULT_WORKLOAD,
    scheme: str = DEFAULT_SCHEME,
    oracles: tuple[str, ...] = ORACLES,
) -> tuple[str, str] | None:
    """Run ``case`` through the oracles; ``(oracle, detail)`` on first failure."""

    for name in oracles:
        detail = _ORACLE_FUNCS[name](case, workload, scheme)
        if detail is not None:
            return name, detail
    return None


# -- shrinking ---------------------------------------------------------------------
def _without_index(values: tuple[Any, ...], index: int) -> tuple[Any, ...]:
    return values[:index] + values[index + 1 :]


def _truncated(window: Any) -> Any:
    """The same window reduced to a single round."""

    return replace(window, end_round=window.start_round + 1)


def _clip_schedule(schedule: ScenarioSchedule, rounds: int) -> ScenarioSchedule:
    """Drop every window that could no longer open in a ``rounds``-round run."""

    return replace(
        schedule,
        outages=tuple(o for o in schedule.outages if o.start_round < rounds),
        partitions=tuple(p for p in schedule.partitions if p.start_round < rounds),
        stragglers=tuple(s for s in schedule.stragglers if s.start_round < rounds),
        byzantine=tuple(b for b in schedule.byzantine if b.start_round < rounds),
    )


def _shrink_candidates(case: FuzzCase) -> Iterator[FuzzCase]:
    """Strictly-smaller variants of ``case``, most aggressive first."""

    schedule = case.schedule
    for field_name in ("byzantine", "stragglers", "partitions", "outages"):
        events = getattr(schedule, field_name)
        for index in range(len(events)):
            yield replace(
                case,
                schedule=replace(
                    schedule, **{field_name: _without_index(events, index)}
                ),
            )
    if schedule.topology != GeneratorPolicy():
        yield replace(case, schedule=replace(schedule, topology=GeneratorPolicy()))
    if case.drop_probability > 0.0:
        yield replace(case, drop_probability=0.0)
    if case.rounds > 2:
        yield replace(
            case,
            rounds=case.rounds - 1,
            schedule=_clip_schedule(schedule, case.rounds - 1),
        )
    for field_name in ("byzantine", "stragglers", "partitions", "outages"):
        events = getattr(schedule, field_name)
        for index, window in enumerate(events):
            if window.end_round is not None and window.end_round > window.start_round + 1:
                shrunk = _without_index(events, index) + (_truncated(window),)
                yield replace(case, schedule=replace(schedule, **{field_name: shrunk}))


def shrink_case(
    case: FuzzCase, still_fails: Callable[[FuzzCase], bool], max_steps: int = 100
) -> FuzzCase:
    """Greedily minimize ``case`` while ``still_fails`` holds.

    Classic delta-debugging descent: at each step take the first smaller
    variant that still reproduces the failure, stop at a fixpoint (or after
    ``max_steps`` accepted reductions).
    """

    current = case
    for _ in range(max_steps):
        for candidate in _shrink_candidates(current):
            if still_fails(candidate):
                current = candidate
                break
        else:
            return current
    return current


# -- chaos (self-test) -------------------------------------------------------------
def install_chaos() -> Callable[[], None]:
    """Deliberately break determinism in the Byzantine send path.

    Wraps :meth:`~repro.simulation.engine.Simulator.apply_byzantine` so every
    corrupted model is additionally perturbed by a process-global counter —
    run-order-dependent state of exactly the kind the determinism rules ban.
    Two executions of the same hostile schedule then diverge, which the
    ``rerun`` oracle must catch.  Returns an uninstaller; only ``--self-test``
    ever calls this.
    """

    original = Simulator.apply_byzantine
    counter = itertools.count(1)

    def chaotic(self, node_id, round_index, state, params_start, params_trained):
        corrupted = original(
            self, node_id, round_index, state, params_start, params_trained
        )
        if state.byzantine_mode(node_id) is not None:
            corrupted = corrupted + 1e-3 * next(counter)
        return corrupted

    Simulator.apply_byzantine = chaotic

    def uninstall() -> None:
        Simulator.apply_byzantine = original

    return uninstall


# -- forensics ---------------------------------------------------------------------
def forensics_for_case(
    case: FuzzCase,
    workload: str = DEFAULT_WORKLOAD,
    scheme: str = DEFAULT_SCHEME,
    oracle: str = "rerun",
) -> TraceDiff | None:
    """Root-cause a failing case: re-run it with tracing on and diff the traces.

    For the ``workers`` oracle the serial and 2-worker sweeps are repeated
    with per-cell trace directories and the first divergent cell's traces are
    compared; every other oracle re-executes the spec twice with an attached
    :class:`~repro.observability.trace.TraceEmitter` (whatever run-order
    dependent state broke the oracle breaks the second traced run the same
    way).  Returns the forensic :class:`TraceDiff` — first divergent record,
    per-field drift and causal backtrace — or ``None`` when the traced
    re-execution did not diverge (a failure specific to the oracle's own
    path, e.g. snapshot serialization, which traces cannot see).
    """

    with tempfile.TemporaryDirectory() as tmp:
        tmp_path = Path(tmp)
        if oracle == "workers":
            specs = [
                case.spec(workload, scheme),
                case.spec(workload, scheme, seed_offset=1),
            ]
            serial_dir, pool_dir = tmp_path / "serial", tmp_path / "pool"
            run_sweep(
                specs, ResultStore(tmp_path / "serial.jsonl"), workers=1,
                trace_dir=serial_dir,
            )
            run_sweep(
                specs, ResultStore(tmp_path / "pool.jsonl"), workers=2,
                trace_dir=pool_dir,
            )
            for spec in specs:
                name = f"{spec.content_hash()}.trace.jsonl"
                a, b = serial_dir / name, pool_dir / name
                if not (a.exists() and b.exists()):
                    continue
                diff = diff_traces(
                    a, b,
                    a_label=f"serial:{name[:12]}",
                    b_label=f"pool:{name[:12]}",
                )
                if not diff.identical:
                    return diff
            return None
        spec = case.spec(workload, scheme)
        paths = []
        for attempt in range(2):
            path = tmp_path / f"attempt-{attempt}.trace.jsonl"
            emitter = TraceEmitter(path)
            try:
                spec.run(trace=emitter)
            finally:
                emitter.close()
            paths.append(path)
        diff = diff_traces(paths[0], paths[1], a_label="run-1", b_label="run-2")
        return None if diff.identical else diff


# -- runner ------------------------------------------------------------------------
def _failure_report(
    seed: int, case: FuzzCase, oracle: str, detail: str, workload: str, scheme: str
) -> dict[str, Any]:
    return {
        "fuzzer": "repro.scenarios.fuzz",
        "seed": seed,
        "workload": workload,
        "scheme": scheme,
        "oracle": oracle,
        "detail": detail,
        "case": case.to_dict(),
        "replay": "python -m repro.scenarios.fuzz --replay <this file>",
    }


def _fuzz(args: argparse.Namespace) -> int:
    oracles = tuple(args.oracles.split(","))
    unknown = sorted(set(oracles) - set(ORACLES))
    if unknown:
        print(f"unknown oracle(s): {', '.join(unknown)}; available: {', '.join(ORACLES)}")
        return 2
    for index in range(args.cases):
        case = generate_case(args.seed, index, ensure_byzantine=args.self_test)
        failure = run_case(case, args.workload, args.scheme, oracles)
        if failure is None:
            print(f"case {index:3d}: ok       {case.summary}")
            continue
        oracle, detail = failure

        def still_fails(candidate: FuzzCase) -> bool:
            return _ORACLE_FUNCS[oracle](candidate, args.workload, args.scheme) is not None

        shrunk = shrink_case(case, still_fails)
        report = _failure_report(args.seed, shrunk, oracle, detail, args.workload, args.scheme)
        diff = forensics_for_case(shrunk, args.workload, args.scheme, oracle)
        if diff is not None:
            report["forensics"] = diff.to_dict()
        print(f"case {index:3d}: FAILED   {case.summary}")
        print(f"oracle {oracle!r}: {detail}")
        if diff is not None:
            print("forensic trace diff (first divergence, shrunk case):")
            print(diff.render())
        else:
            print(
                "forensics: traced re-execution did not diverge; the failure is "
                f"specific to the {oracle!r} oracle's path (not visible in traces)"
            )
        print("minimal failing case (JSON, replayable with --replay):")
        print(json.dumps(report, indent=2, sort_keys=True))
        if args.report:
            Path(args.report).write_text(
                json.dumps(report, indent=2, sort_keys=True) + "\n", encoding="utf-8"
            )
            print(f"report written to {args.report}")
        return 1
    print(f"fuzz: {args.cases} case(s) passed {len(oracles)} oracle(s) (seed {args.seed})")
    return 0


def _self_test(args: argparse.Namespace) -> int:
    """Prove the alarm rings: inject nondeterminism, demand a shrunk failure."""

    uninstall = install_chaos()
    try:
        for index in range(args.cases):
            case = generate_case(args.seed, index, ensure_byzantine=True)

            def still_fails(candidate: FuzzCase) -> bool:
                return _oracle_rerun(candidate, args.workload, args.scheme) is not None

            detail = _oracle_rerun(case, args.workload, args.scheme)
            if detail is None:
                print(f"self-test case {index}: injected nondeterminism NOT caught")
                return 1
            shrunk = shrink_case(case, still_fails)
            if not shrunk.schedule.byzantine:
                print("self-test: shrinking removed the byzantine window the bug needs")
                return 1
            diff = forensics_for_case(shrunk, args.workload, args.scheme, "rerun")
            if diff is None or diff.round is None:
                print(
                    "self-test: forensics failed to localize the injected "
                    "divergence to a round"
                )
                return 1
            report = _failure_report(
                args.seed, shrunk, "rerun", detail, args.workload, args.scheme
            )
            report["forensics"] = diff.to_dict()
            print(f"self-test case {index}: caught and shrunk to:")
            print(json.dumps(report, indent=2, sort_keys=True))
            print(
                f"self-test case {index}: forensics localized the divergence "
                f"to round {diff.round} (seq {diff.seq}, kind {diff.kind}):"
            )
            print(diff.render())
    finally:
        uninstall()
    print(f"self-test: injected nondeterminism caught on all {args.cases} case(s)")
    return 0


def _replay(args: argparse.Namespace) -> int:
    report = json.loads(Path(args.replay).read_text(encoding="utf-8"))
    case = FuzzCase.from_dict(report["case"])
    workload = report.get("workload", args.workload)
    scheme = report.get("scheme", args.scheme)
    print(f"replaying case: {case.summary}")
    failure = run_case(case, workload, scheme)
    if failure is None:
        print("replay: every oracle passed (the failure did not reproduce)")
        return 0
    oracle, detail = failure
    print(f"replay: oracle {oracle!r} still fails: {detail}")
    return 1


def main(argv: list[str] | None = None) -> int:
    """Entry point of ``python -m repro.scenarios.fuzz``."""

    parser = argparse.ArgumentParser(
        prog="python -m repro.scenarios.fuzz",
        description="Property-test the determinism contract over random hostile schedules.",
    )
    parser.add_argument("--cases", type=int, default=25, help="number of generated cases")
    parser.add_argument("--seed", type=int, default=0, help="fuzz generator seed")
    parser.add_argument("--workload", default=DEFAULT_WORKLOAD)
    parser.add_argument("--scheme", default=DEFAULT_SCHEME)
    parser.add_argument(
        "--oracles",
        default=",".join(ORACLES),
        help=f"comma-separated subset of: {', '.join(ORACLES)}",
    )
    parser.add_argument(
        "--report", default=None, help="also write a failing case's JSON to this path"
    )
    parser.add_argument(
        "--replay", default=None, help="re-run the failing case stored in this JSON file"
    )
    parser.add_argument(
        "--self-test",
        action="store_true",
        help="inject nondeterminism into the byzantine send path and require a catch",
    )
    args = parser.parse_args(argv)

    if args.replay:
        return _replay(args)
    if args.self_test:
        return _self_test(args)
    return _fuzz(args)


if __name__ == "__main__":
    sys.exit(main())
