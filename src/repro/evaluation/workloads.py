"""Workload registry: the five paper datasets at simulator scale.

Each :class:`Workload` bundles a task factory (with scaled-down sizes), the
experiment configuration used by the benchmark harness and the paper's
reference numbers from Table I, so that every benchmark can print a
paper-vs-measured comparison.
"""

from __future__ import annotations

from dataclasses import dataclass, field, replace
from typing import Callable

from repro.datasets import (
    LearningTask,
    make_celeba_task,
    make_cifar10_task,
    make_femnist_task,
    make_movielens_task,
    make_shakespeare_task,
)
from repro.exceptions import ConfigurationError
from repro.simulation.experiment import ExperimentConfig

__all__ = ["PaperReference", "Workload", "WORKLOADS", "get_workload"]


@dataclass(frozen=True)
class PaperReference:
    """Table I numbers reported by the paper for one dataset (96 nodes)."""

    full_sharing_accuracy: float
    random_sampling_accuracy: float
    jwins_accuracy: float
    full_sharing_gib: float
    jwins_gib: float
    network_savings_percent: float


@dataclass(frozen=True)
class Workload:
    """A runnable, scaled-down version of one of the paper's workloads."""

    name: str
    task_factory: Callable[[int], LearningTask]
    config: ExperimentConfig
    paper: PaperReference
    description: str = ""

    def make_task(self, seed: int) -> LearningTask:
        return self.task_factory(seed)

    def make_config(self, execution: str = "sync", **overrides) -> ExperimentConfig:
        """The workload's configuration under the given execution mode.

        ``overrides`` are passed to :func:`dataclasses.replace`, so callers
        (e.g. the CLI) can adjust nodes, rounds or heterogeneity knobs while
        keeping the workload's validated defaults.
        """

        return replace(self.config, execution=execution, **overrides)


def _cifar_task(seed: int) -> LearningTask:
    # The noise level is chosen so that, at simulator scale, the task is hard
    # enough for the paper's orderings (full ~ JWINS >> random sampling, and
    # JWINS > CHOCO at low budgets) to be clearly visible within ~20 rounds.
    return make_cifar10_task(seed, train_samples=768, test_samples=192, noise=1.8)


def _movielens_task(seed: int) -> LearningTask:
    return make_movielens_task(seed, num_users=48, num_items=64, samples_per_user=24)


def _shakespeare_task(seed: int) -> LearningTask:
    return make_shakespeare_task(seed, num_clients=32, samples_per_client=20)


def _celeba_task(seed: int) -> LearningTask:
    return make_celeba_task(seed, num_clients=48, samples_per_client=18)


def _femnist_task(seed: int) -> LearningTask:
    return make_femnist_task(seed, num_clients=48, samples_per_client=22)


WORKLOADS: dict[str, Workload] = {
    "cifar10": Workload(
        name="cifar10",
        task_factory=_cifar_task,
        config=ExperimentConfig(
            num_nodes=16,
            degree=4,
            partition="shards",
            shards_per_node=2,
            rounds=40,
            local_steps=2,
            batch_size=8,
            learning_rate=0.05,
            eval_every=5,
            eval_test_samples=192,
            seed=1,
        ),
        paper=PaperReference(58.3, 40.1, 55.3, 628.2, 231.2, 62.2),
        description="Image classification, label-shard non-IID (hardest workload).",
    ),
    "movielens": Workload(
        name="movielens",
        task_factory=_movielens_task,
        config=ExperimentConfig(
            num_nodes=16,
            degree=4,
            partition="clients",
            rounds=40,
            local_steps=2,
            batch_size=16,
            learning_rate=0.05,
            eval_every=5,
            eval_test_samples=192,
            seed=1,
        ),
        paper=PaperReference(91.7, 89.1, 92.6, 1103.5, 394.6, 64.2),
        description="Matrix-factorization recommendation, per-user non-IID.",
    ),
    "shakespeare": Workload(
        name="shakespeare",
        task_factory=_shakespeare_task,
        config=ExperimentConfig(
            num_nodes=16,
            degree=4,
            partition="clients",
            rounds=30,
            local_steps=2,
            batch_size=8,
            learning_rate=0.5,
            eval_every=5,
            eval_test_samples=128,
            seed=1,
        ),
        paper=PaperReference(35.0, 30.5, 34.5, 2127.2, 753.7, 64.6),
        description="Next-character prediction with a stacked LSTM, per-client styles.",
    ),
    "celeba": Workload(
        name="celeba",
        task_factory=_celeba_task,
        config=ExperimentConfig(
            num_nodes=16,
            degree=4,
            partition="clients",
            rounds=30,
            local_steps=2,
            batch_size=8,
            learning_rate=0.05,
            eval_every=5,
            eval_test_samples=160,
            seed=1,
        ),
        paper=PaperReference(89.7, 89.0, 90.9, 10.4, 3.8, 63.5),
        description="Binary attribute classification, per-celebrity non-IID.",
    ),
    "femnist": Workload(
        name="femnist",
        task_factory=_femnist_task,
        config=ExperimentConfig(
            num_nodes=16,
            degree=4,
            partition="clients",
            rounds=30,
            local_steps=2,
            batch_size=8,
            learning_rate=0.05,
            eval_every=5,
            eval_test_samples=160,
            seed=1,
        ),
        paper=PaperReference(80.6, 79.6, 81.6, 557.5, 199.2, 64.3),
        description="Handwritten character classification, per-writer non-IID.",
    ),
}


def get_workload(name: str) -> Workload:
    """Look up a workload by name, raising a helpful error for typos."""

    key = name.lower()
    if key not in WORKLOADS:
        raise ConfigurationError(
            f"unknown workload {name!r}; available: {', '.join(sorted(WORKLOADS))}"
        )
    return WORKLOADS[key]
