"""Evaluation harness: workloads, Figure 2/5/6/9 experiments and reporting."""

from repro.evaluation.metadata import MetadataComparison, metadata_compression_experiment
from repro.evaluation.reconstruction import (
    ReconstructionCurves,
    reconstruction_error_experiment,
    sparsified_reconstruction,
)
from repro.evaluation.reporting import format_table, summarize_results, table1_rows
from repro.evaluation.targets import TargetComparison, TargetRun, compare_to_target
from repro.evaluation.workloads import WORKLOADS, PaperReference, Workload, get_workload

__all__ = [
    "MetadataComparison",
    "metadata_compression_experiment",
    "ReconstructionCurves",
    "reconstruction_error_experiment",
    "sparsified_reconstruction",
    "format_table",
    "summarize_results",
    "table1_rows",
    "TargetComparison",
    "TargetRun",
    "compare_to_target",
    "WORKLOADS",
    "PaperReference",
    "Workload",
    "get_workload",
]
