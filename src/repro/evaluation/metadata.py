"""Figure 9: size of the sparsification metadata with and without compression.

The experiment replays the index streams a JWINS node would produce over a few
rounds and measures the total metadata size under the raw 32-bit codec versus
the delta + Elias-gamma codec, together with the size of the (compressed)
parameter payload they accompany.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.compression.float_codec import FloatCodec
from repro.compression.indices import EliasGammaIndexCodec, RawIndexCodec
from repro.core.cutoff import CutoffDistribution
from repro.sparsification.base import fraction_to_count
from repro.utils.rng import derive_rng

__all__ = ["MetadataComparison", "metadata_compression_experiment"]


@dataclass(frozen=True)
class MetadataComparison:
    """Measured payload/metadata sizes for the Figure 9 bars."""

    values_bytes: int
    raw_metadata_bytes: int
    compressed_metadata_bytes: int

    @property
    def compression_ratio(self) -> float:
        """How many times smaller the Elias-gamma metadata is than raw indices."""

        if self.compressed_metadata_bytes == 0:
            return float("inf")
        return self.raw_metadata_bytes / self.compressed_metadata_bytes

    @property
    def raw_metadata_fraction(self) -> float:
        """Fraction of the message occupied by metadata without compression."""

        total = self.values_bytes + self.raw_metadata_bytes
        return self.raw_metadata_bytes / total if total else 0.0


def metadata_compression_experiment(
    model_size: int = 20000,
    rounds: int = 20,
    cutoff: CutoffDistribution | None = None,
    seed: int = 1,
) -> MetadataComparison:
    """Measure metadata sizes for ``rounds`` of JWINS-style sparse messages."""

    cutoff = cutoff or CutoffDistribution.uniform()
    rng = derive_rng(seed, "metadata-experiment")
    float_codec = FloatCodec()
    raw_codec = RawIndexCodec()
    gamma_codec = EliasGammaIndexCodec()

    values_bytes = 0
    raw_bytes = 0
    gamma_bytes = 0
    for _ in range(rounds):
        alpha = cutoff.sample(rng)
        count = fraction_to_count(alpha, model_size)
        indices = np.sort(rng.choice(model_size, size=count, replace=False))
        values = rng.normal(scale=0.05, size=count)
        values_bytes += float_codec.compress(values).size_bytes
        raw_bytes += raw_codec.encode(indices, model_size).size_bytes
        gamma_bytes += gamma_codec.encode(indices, model_size).size_bytes
    return MetadataComparison(
        values_bytes=values_bytes,
        raw_metadata_bytes=raw_bytes,
        compressed_metadata_bytes=gamma_bytes,
    )
