"""Textual reports matching the rows/series the paper publishes.

These helpers render the measured results in the same shape as the paper's
tables (Table I) and figure series so that benchmark output can be compared
against the publication at a glance and copied into EXPERIMENTS.md.
"""

from __future__ import annotations

from typing import Iterable, Mapping, Sequence

from repro.compression.sizing import format_bytes
from repro.exceptions import ConfigurationError
from repro.simulation.metrics import ExperimentResult

__all__ = ["format_table", "summarize_results", "table1_rows"]


def format_table(headers: Sequence[str], rows: Iterable[Sequence[object]]) -> str:
    """Render a simple fixed-width text table."""

    materialized = [[str(cell) for cell in row] for row in rows]
    widths = [len(header) for header in headers]
    for row in materialized:
        for index, cell in enumerate(row):
            widths[index] = max(widths[index], len(cell))
    def _line(cells: Sequence[str]) -> str:
        return "  ".join(cell.ljust(widths[index]) for index, cell in enumerate(cells))

    lines = [_line(list(headers)), _line(["-" * width for width in widths])]
    lines.extend(_line(row) for row in materialized)
    return "\n".join(lines)


def table1_rows(
    dataset: str,
    results: Mapping[str, ExperimentResult],
    paper_savings_percent: float | None = None,
) -> list[object]:
    """One Table I row: accuracies, data sent and the network savings of JWINS.

    ``results`` must contain the keys ``"full-sharing"``, ``"random-sampling"``
    and ``"jwins"``; a missing scheme raises
    :class:`~repro.exceptions.ConfigurationError` naming the absent key(s).
    """

    required = ("full-sharing", "random-sampling", "jwins")
    missing = [key for key in required if key not in results]
    if missing:
        raise ConfigurationError(
            f"table1_rows needs results for {', '.join(required)}; "
            f"missing: {', '.join(missing)}"
        )
    full = results["full-sharing"]
    random_sampling = results["random-sampling"]
    jwins = results["jwins"]
    savings = 100.0 * (1.0 - jwins.total_bytes / full.total_bytes) if full.total_bytes else 0.0
    row = [
        dataset,
        f"{100 * full.final_accuracy:.1f}",
        f"{100 * random_sampling.final_accuracy:.1f}",
        f"{100 * jwins.final_accuracy:.1f}",
        format_bytes(full.total_bytes),
        format_bytes(jwins.total_bytes),
        f"{savings:.1f}%",
    ]
    if paper_savings_percent is not None:
        row.append(f"{paper_savings_percent:.1f}%")
    return row


def summarize_results(results: Mapping[str, ExperimentResult]) -> str:
    """A compact multi-algorithm summary used by the examples."""

    headers = ["scheme", "final acc", "best acc", "test loss", "data sent/node", "sim. time"]
    rows = []
    for name, result in results.items():
        rows.append(
            [
                name,
                f"{100 * result.final_accuracy:.1f}%",
                f"{100 * result.best_accuracy:.1f}%",
                f"{result.final_loss:.3f}",
                format_bytes(result.average_bytes_per_node),
                f"{result.simulated_time_seconds:.1f} s",
            ]
        )
    return format_table(headers, rows)
