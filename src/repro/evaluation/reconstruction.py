"""Figure 2: information loss of sparsification in different domains.

The experiment trains a single node and, after every epoch, simulates an
exchange in which only a sparsified model survives: the model is transformed
(wavelet / FFT / identity), the top fraction of coefficients (by magnitude) is
kept — for random sampling a random fraction — and the model is reconstructed
from the surviving coefficients.  The metric is the mean squared error between
the original and the reconstructed model, accumulated over epochs; the
transform with the lowest cumulative error loses the least information, which
is the argument for using the wavelet domain in JWINS.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.datasets.base import LearningTask, iterate_minibatches
from repro.nn.module import get_flat_parameters
from repro.nn.optim import SGD
from repro.sparsification.base import fraction_to_count
from repro.sparsification.topk import topk_indices
from repro.utils.rng import derive_rng
from repro.wavelets.transform import make_transform

__all__ = ["ReconstructionCurves", "reconstruction_error_experiment", "sparsified_reconstruction"]


def sparsified_reconstruction(
    parameters: np.ndarray,
    transform_name: str,
    budget: float,
    rng: np.random.Generator,
    wavelet: str = "sym2",
    levels: int = 4,
) -> np.ndarray:
    """Reconstruct ``parameters`` after keeping only a ``budget`` fraction of coefficients."""

    parameters = np.asarray(parameters, dtype=np.float64)
    if transform_name == "random-sampling":
        # Random sampling keeps a random subset of raw parameters.
        count = fraction_to_count(budget, parameters.size)
        kept = rng.choice(parameters.size, size=count, replace=False)
        sparse = np.zeros_like(parameters)
        sparse[kept] = parameters[kept]
        return sparse
    transform = make_transform(transform_name, parameters.size, wavelet=wavelet, levels=levels)
    coefficients = transform.forward(parameters)
    count = fraction_to_count(budget, coefficients.size)
    kept = topk_indices(coefficients, count)
    sparse = np.zeros_like(coefficients)
    sparse[kept] = coefficients[kept]
    return transform.inverse(sparse)


@dataclass
class ReconstructionCurves:
    """Cumulative reconstruction error per epoch for each sparsification method."""

    epochs: list[int]
    cumulative_mse: dict[str, list[float]]

    def final(self, method: str) -> float:
        return self.cumulative_mse[method][-1]

    def ranking(self) -> list[str]:
        """Methods ordered from least to most information loss."""

        return sorted(self.cumulative_mse, key=self.final)


def reconstruction_error_experiment(
    task: LearningTask,
    epochs: int = 8,
    budget: float = 0.10,
    learning_rate: float = 0.05,
    batch_size: int = 16,
    seed: int = 1,
    methods: tuple[str, ...] = ("wavelet", "fft", "random-sampling"),
) -> ReconstructionCurves:
    """Run the Figure 2 experiment on a single node.

    Returns the cumulative MSE curves for each method; in the paper (and in
    this reproduction) the wavelet transform accumulates the least error,
    followed by the FFT, with random sampling losing the most information.
    """

    model_rng = derive_rng(seed, "reconstruction", "model")
    model = task.make_model(model_rng)
    loss = task.make_loss()
    optimizer = SGD(model.parameters(), lr=learning_rate)
    batch_rng = derive_rng(seed, "reconstruction", "batches")
    sample_rng = derive_rng(seed, "reconstruction", "sampling")

    curves: dict[str, list[float]] = {method: [] for method in methods}
    cumulative: dict[str, float] = {method: 0.0 for method in methods}
    epoch_list: list[int] = []

    for epoch in range(1, epochs + 1):
        for inputs, targets in iterate_minibatches(task.train, batch_size, batch_rng):
            model.zero_grad()
            outputs = model.forward(inputs)
            loss.forward(outputs, targets)
            model.backward(loss.backward())
            optimizer.step()

        parameters = get_flat_parameters(model)
        for method in methods:
            reconstructed = sparsified_reconstruction(parameters, method, budget, sample_rng)
            mse = float(np.mean((reconstructed - parameters) ** 2))
            cumulative[method] += mse
            curves[method].append(cumulative[method])
        epoch_list.append(epoch)

    return ReconstructionCurves(epochs=epoch_list, cumulative_mse=curves)
