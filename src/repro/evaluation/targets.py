"""Run-until-target-accuracy comparisons (Figures 5 and 6).

The paper's "fair" comparison with random sampling works in two phases: run
the weaker baseline for a long budget, take the best accuracy it reaches as
the *target accuracy*, then run every algorithm until it first reaches that
target and compare communication rounds, bytes on the wire and wall-clock
time.  :func:`compare_to_target` implements that protocol on top of the
simulator.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.core.interface import SchemeFactory
from repro.datasets.base import LearningTask
from repro.simulation.experiment import ExperimentConfig
from repro.simulation.metrics import ExperimentResult
from repro.simulation.runner import run_experiment

__all__ = ["TargetComparison", "TargetRun", "compare_to_target"]


@dataclass(frozen=True)
class TargetRun:
    """How one algorithm fared against the target accuracy."""

    scheme: str
    reached: bool
    rounds_to_target: int | None
    bytes_per_node_to_target: float | None
    simulated_seconds_to_target: float | None
    final_accuracy: float
    result: ExperimentResult

    def speedup_over(self, other: "TargetRun") -> float | None:
        """Wall-clock speedup of this run over ``other`` (both must have reached)."""

        if (
            self.simulated_seconds_to_target is None
            or other.simulated_seconds_to_target is None
            or self.simulated_seconds_to_target == 0
        ):
            return None
        return other.simulated_seconds_to_target / self.simulated_seconds_to_target


@dataclass(frozen=True)
class TargetComparison:
    """The full Figure 5 / Figure 6 style comparison."""

    task: str
    target_accuracy: float
    runs: dict[str, TargetRun]

    def run(self, scheme: str) -> TargetRun:
        return self.runs[scheme]


def _to_target_run(result: ExperimentResult, target: float) -> TargetRun:
    rounds = result.rounds_to_accuracy(target)
    return TargetRun(
        scheme=result.scheme,
        reached=rounds is not None,
        rounds_to_target=rounds,
        bytes_per_node_to_target=result.bytes_to_accuracy(target),
        simulated_seconds_to_target=result.time_to_accuracy(target),
        final_accuracy=result.final_accuracy,
        result=result,
    )


def compare_to_target(
    task: LearningTask,
    reference_factory: SchemeFactory,
    reference_name: str,
    challenger_factories: dict[str, SchemeFactory],
    config: ExperimentConfig,
    reference_rounds: int | None = None,
    target_fraction_of_best: float = 1.0,
) -> TargetComparison:
    """Run the reference long, derive the target, then race the challengers.

    Parameters
    ----------
    reference_factory, reference_name:
        The algorithm whose best accuracy defines the target (random sampling
        in Figure 5, CHOCO in Figure 6).
    challenger_factories:
        The algorithms raced against the target (JWINS, full sharing, ...).
    reference_rounds:
        Round budget of the long reference run (defaults to ``config.rounds``).
    target_fraction_of_best:
        Fraction of the reference's best accuracy used as the target (1.0
        reproduces the paper's protocol; smaller values make quick runs more
        robust).
    """

    reference_config = config.with_rounds(reference_rounds or config.rounds)
    reference_result = run_experiment(task, reference_factory, reference_config, reference_name)
    target = reference_result.best_accuracy * target_fraction_of_best

    runs = {reference_name: _to_target_run(reference_result, target)}
    challenger_config = config.with_target(target, stop=True)
    for name, factory in challenger_factories.items():
        result = run_experiment(task, factory, challenger_config, name)
        runs[name] = _to_target_run(result, target)

    return TargetComparison(task=task.name, target_accuracy=target, runs=runs)
