"""Exception hierarchy for the ``repro`` library.

All exceptions raised by the library derive from :class:`ReproError` so that
callers can catch library failures with a single ``except`` clause while still
letting programming errors (``TypeError`` and friends) propagate.
"""

from __future__ import annotations


class ReproError(Exception):
    """Base class for all errors raised by the ``repro`` library."""


class ConfigurationError(ReproError):
    """Raised when an experiment or component is configured inconsistently."""


class WaveletError(ReproError):
    """Raised for invalid wavelet names, levels or signal lengths."""


class CodecError(ReproError):
    """Raised when encoding or decoding a payload fails."""


class TopologyError(ReproError):
    """Raised when a communication topology cannot be constructed."""


class DatasetError(ReproError):
    """Raised when a dataset or partitioning scheme is invalid."""


class ModelError(ReproError):
    """Raised for invalid neural-network shapes or parameters."""


class SimulationError(ReproError):
    """Raised when a decentralized-learning simulation is misconfigured."""


class CheckpointError(ReproError):
    """Raised when a simulation snapshot cannot be saved, loaded or applied."""


class ExperimentPaused(Exception):
    """Control-flow signal: a run checkpointed itself and stopped early.

    Deliberately *not* a :class:`ReproError` — catching library failures with
    ``except ReproError`` must never swallow a pause.  The snapshot that was
    just captured rides on the exception so the caller can persist or resume
    it.
    """

    def __init__(self, snapshot: object) -> None:
        super().__init__("experiment paused at a checkpoint")
        self.snapshot = snapshot
