"""Exception hierarchy for the ``repro`` library.

All exceptions raised by the library derive from :class:`ReproError` so that
callers can catch library failures with a single ``except`` clause while still
letting programming errors (``TypeError`` and friends) propagate.
"""

from __future__ import annotations


class ReproError(Exception):
    """Base class for all errors raised by the ``repro`` library."""


class ConfigurationError(ReproError):
    """Raised when an experiment or component is configured inconsistently."""


class WaveletError(ReproError):
    """Raised for invalid wavelet names, levels or signal lengths."""


class CodecError(ReproError):
    """Raised when encoding or decoding a payload fails."""


class TopologyError(ReproError):
    """Raised when a communication topology cannot be constructed."""


class DatasetError(ReproError):
    """Raised when a dataset or partitioning scheme is invalid."""


class ModelError(ReproError):
    """Raised for invalid neural-network shapes or parameters."""


class SimulationError(ReproError):
    """Raised when a decentralized-learning simulation is misconfigured."""
