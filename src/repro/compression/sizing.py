"""Payload size accounting.

Every result in the paper's evaluation is reported in bytes actually sent on
the network.  The simulator meters those bytes through this module so all
algorithms (full sharing, random sampling, CHOCO, JWINS) are measured with the
same accounting rules:

* parameter values travel through the configured float codec (Fpzip in the
  paper, the XOR/DEFLATE codec here);
* sparsification metadata travels through the configured index codec;
* every message carries a small fixed framing header.
"""

from __future__ import annotations

from dataclasses import dataclass

BYTES_PER_FLOAT32 = 4
BYTES_PER_INT32 = 4
MESSAGE_HEADER_BYTES = 32

KIB = 1024
MIB = 1024**2
GIB = 1024**3

__all__ = [
    "BYTES_PER_FLOAT32",
    "BYTES_PER_INT32",
    "GIB",
    "KIB",
    "MESSAGE_HEADER_BYTES",
    "MIB",
    "PayloadSize",
    "format_bytes",
]


@dataclass(frozen=True)
class PayloadSize:
    """Breakdown of one message's size in bytes."""

    values_bytes: int
    metadata_bytes: int
    header_bytes: int = MESSAGE_HEADER_BYTES

    @property
    def total_bytes(self) -> int:
        """Everything that crossed the wire: values + metadata + framing."""

        return self.values_bytes + self.metadata_bytes + self.header_bytes

    def __add__(self, other: "PayloadSize") -> "PayloadSize":
        return PayloadSize(
            values_bytes=self.values_bytes + other.values_bytes,
            metadata_bytes=self.metadata_bytes + other.metadata_bytes,
            header_bytes=self.header_bytes + other.header_bytes,
        )


def format_bytes(count: float) -> str:
    """Human-readable byte count using binary units (KiB/MiB/GiB/TiB)."""

    value = float(count)
    for unit in ("B", "KiB", "MiB", "GiB"):
        if abs(value) < 1024.0:
            return f"{value:.2f} {unit}"
        value /= 1024.0
    return f"{value:.2f} TiB"
