"""Lossless floating-point payload compression.

The paper compresses the transmitted model parameters with Fpzip, a lossless
predictive floating-point compressor.  Fpzip is not available offline, so this
module implements a compressor in the same spirit: parameter values are stored
as 32-bit floats, a delta/XOR predictor removes redundancy between consecutive
values, the residual bytes are transposed by byte plane (so that the highly
repetitive exponent bytes end up adjacent) and the result is entropy-coded
with DEFLATE.  The pipeline is exactly invertible, so like Fpzip it is
lossless at 32-bit precision, and its measured compressed size is what the
byte-metering layer reports.
"""

from __future__ import annotations

import lzma
import zlib
from dataclasses import dataclass

import numpy as np

from repro.exceptions import CodecError

__all__ = [
    "CompressedFloats",
    "DeflateFloatCodec",
    "Float16Codec",
    "FloatCodec",
    "LzmaFloatCodec",
    "float_compress_reference",
    "RawFloatCodec",
]


@dataclass(frozen=True)
class CompressedFloats:
    """A compressed float payload and the metadata needed to restore it."""

    codec: str
    payload: bytes
    count: int

    @property
    def size_bytes(self) -> int:
        """Size on the wire (payload plus a 4-byte element count header)."""

        return len(self.payload) + 4


class FloatCodec:
    """XOR-predictive + byte-plane-transposed + DEFLATE float compressor."""

    name = "xor-deflate"

    def __init__(self, level: int = 6) -> None:
        if not 1 <= level <= 9:
            raise CodecError("zlib compression level must be in [1, 9]")
        self.level = int(level)

    def compress(self, values: np.ndarray) -> CompressedFloats:
        """Compress ``values`` losslessly at float32 precision.

        The whole predictor/transpose pipeline is vectorized;
        :func:`float_compress_reference` is the scalar ground truth it is
        pinned against byte-for-byte.
        """

        data = np.asarray(values, dtype=np.float32).ravel()
        bits = data.view(np.uint32)
        predicted = np.zeros_like(bits)
        predicted[1:] = bits[:-1]
        residual = bits ^ predicted
        planes = residual.view(np.uint8).reshape(-1, 4).T.copy() if data.size else np.zeros((4, 0), np.uint8)
        payload = zlib.compress(planes.tobytes(), self.level)
        return CompressedFloats(codec=self.name, payload=payload, count=int(data.size))

    def decompress(self, compressed: CompressedFloats) -> np.ndarray:
        """Exactly invert :meth:`compress`, restoring the float32 values."""

        if compressed.codec != self.name:
            raise CodecError(
                f"payload was produced by {compressed.codec!r}, not {self.name!r}"
            )
        raw = zlib.decompress(compressed.payload)
        count = compressed.count
        if len(raw) != 4 * count:
            raise CodecError("decompressed payload has an unexpected size")
        if count == 0:
            return np.zeros(0, dtype=np.float32)
        planes = np.frombuffer(raw, dtype=np.uint8).reshape(4, count)
        residual = np.ascontiguousarray(planes.T).reshape(-1).view(np.uint32)
        # Inverting the XOR predictor is a cumulative XOR over the residuals.
        bits = np.bitwise_xor.accumulate(residual)
        return bits.view(np.float32).copy()


def float_compress_reference(values: np.ndarray, level: int = 6) -> CompressedFloats:
    """Scalar reference for :meth:`FloatCodec.compress` (loops, no vector ops).

    Applies the XOR predictor one value at a time and builds the byte planes
    with explicit Python loops; the equivalence tests assert its payload is
    byte-identical to the vectorized pipeline.
    """

    data = np.asarray(values, dtype=np.float32).ravel()
    words = [int(w) for w in data.view(np.uint32)]
    residuals: list[int] = []
    previous = 0
    for word in words:
        residuals.append(word ^ previous)
        previous = word
    planes = bytearray()
    for plane in range(4):  # little-endian byte planes, low byte first
        for residual in residuals:
            planes.append((residual >> (8 * plane)) & 0xFF)
    payload = zlib.compress(bytes(planes), level)
    return CompressedFloats(codec=FloatCodec.name, payload=payload, count=len(words))


class RawFloatCodec:
    """No compression: 4 bytes per value (used as a baseline in size accounting)."""

    name = "raw32"

    def compress(self, values: np.ndarray) -> CompressedFloats:
        """Store the values as raw little-endian float32 bytes."""

        data = np.asarray(values, dtype=np.float32).ravel()
        return CompressedFloats(codec=self.name, payload=data.astype("<f4").tobytes(), count=int(data.size))

    def decompress(self, compressed: CompressedFloats) -> np.ndarray:
        """Reinterpret the payload as float32 values."""

        if compressed.codec != self.name:
            raise CodecError(
                f"payload was produced by {compressed.codec!r}, not {self.name!r}"
            )
        return np.frombuffer(compressed.payload, dtype="<f4").copy()


class DeflateFloatCodec:
    """Plain DEFLATE over the raw float32 bytes (the LZ4/zlib-style baseline).

    The paper evaluated several general-purpose compressors before settling on
    Fpzip; this codec represents that family: no predictor, no byte-plane
    transposition, just an entropy coder over the raw bytes.
    """

    name = "deflate"

    def __init__(self, level: int = 6) -> None:
        if not 1 <= level <= 9:
            raise CodecError("zlib compression level must be in [1, 9]")
        self.level = int(level)

    def compress(self, values: np.ndarray) -> CompressedFloats:
        """DEFLATE the raw float32 bytes of ``values``."""

        data = np.asarray(values, dtype=np.float32).ravel()
        payload = zlib.compress(data.astype("<f4").tobytes(), self.level)
        return CompressedFloats(codec=self.name, payload=payload, count=int(data.size))

    def decompress(self, compressed: CompressedFloats) -> np.ndarray:
        """Inflate the payload back to float32 values."""

        if compressed.codec != self.name:
            raise CodecError(
                f"payload was produced by {compressed.codec!r}, not {self.name!r}"
            )
        raw = zlib.decompress(compressed.payload)
        if len(raw) != 4 * compressed.count:
            raise CodecError("decompressed payload has an unexpected size")
        return np.frombuffer(raw, dtype="<f4").copy()


class LzmaFloatCodec:
    """LZMA over the raw float32 bytes (the paper's LZMA baseline).

    Stronger compression than DEFLATE at a much higher CPU cost — the trade-off
    that made the paper prefer Fpzip.
    """

    name = "lzma"

    def __init__(self, preset: int = 1) -> None:
        if not 0 <= preset <= 9:
            raise CodecError("lzma preset must be in [0, 9]")
        self.preset = int(preset)

    def compress(self, values: np.ndarray) -> CompressedFloats:
        """LZMA-compress the raw float32 bytes of ``values``."""

        data = np.asarray(values, dtype=np.float32).ravel()
        payload = lzma.compress(data.astype("<f4").tobytes(), preset=self.preset)
        return CompressedFloats(codec=self.name, payload=payload, count=int(data.size))

    def decompress(self, compressed: CompressedFloats) -> np.ndarray:
        """Decompress the payload back to float32 values."""

        if compressed.codec != self.name:
            raise CodecError(
                f"payload was produced by {compressed.codec!r}, not {self.name!r}"
            )
        raw = lzma.decompress(compressed.payload)
        if len(raw) != 4 * compressed.count:
            raise CodecError("decompressed payload has an unexpected size")
        return np.frombuffer(raw, dtype="<f4").copy()


class Float16Codec:
    """Lossy 16-bit truncation, provided for completeness (not used by JWINS)."""

    name = "float16"

    def compress(self, values: np.ndarray) -> CompressedFloats:
        """Truncate ``values`` to float16 (lossy) and store the raw bytes."""

        data = np.asarray(values, dtype=np.float16).ravel()
        return CompressedFloats(codec=self.name, payload=data.astype("<f2").tobytes(), count=int(data.size))

    def decompress(self, compressed: CompressedFloats) -> np.ndarray:
        """Widen the stored float16 payload back to float32."""

        if compressed.codec != self.name:
            raise CodecError(
                f"payload was produced by {compressed.codec!r}, not {self.name!r}"
            )
        return np.frombuffer(compressed.payload, dtype="<f2").astype(np.float32)
