"""Codecs for the sparsification metadata (selected coefficient indices).

Three codecs are provided, matching the alternatives discussed in the paper:

* :class:`RawIndexCodec` — ships every index as a 32-bit integer.  Without any
  compression the metadata is as large as the parameter payload itself
  (Figure 9, first bar).
* :class:`EliasGammaIndexCodec` — sorts the indices, delta-encodes them and
  Elias-gamma codes the gaps (Section III-C, Figure 9 second bar).  This is
  the codec JWINS uses.
* :class:`SeedIndexCodec` — for random-sampling sparsification the indices are
  a deterministic function of a shared pseudo-random seed, so transmitting the
  seed and the count suffices (Section II-B2a).
"""

from __future__ import annotations

from abc import ABC, abstractmethod
from dataclasses import dataclass

import numpy as np

from repro.compression.elias import elias_gamma_decode_array, elias_gamma_encode
from repro.exceptions import CodecError

__all__ = [
    "EliasGammaIndexCodec",
    "EncodedIndices",
    "IndexCodec",
    "RawIndexCodec",
    "SeedIndexCodec",
    "random_indices_from_seed",
]


@dataclass(frozen=True)
class EncodedIndices:
    """An encoded index list together with everything needed to decode it."""

    codec: str
    payload: bytes
    bit_length: int
    count: int
    universe: int
    extra: tuple[int, ...] = ()

    @property
    def size_bytes(self) -> int:
        """Size of the metadata on the wire (payload plus a small fixed header)."""

        # Header: count (4 bytes) + universe (4 bytes) + bit length (4 bytes)
        # + any extra integers (4 bytes each).
        return len(self.payload) + 12 + 4 * len(self.extra)


class IndexCodec(ABC):
    """Interface of an index codec."""

    name = "abstract"

    @abstractmethod
    def encode(self, indices: np.ndarray, universe: int) -> EncodedIndices:
        """Encode ``indices`` drawn from ``range(universe)``."""

    @abstractmethod
    def decode(self, encoded: EncodedIndices) -> np.ndarray:
        """Recover the (sorted) indices from ``encoded``."""


class RawIndexCodec(IndexCodec):
    """Uncompressed 32-bit indices (the Figure 9 'no compression' baseline)."""

    name = "raw"

    def encode(self, indices: np.ndarray, universe: int) -> EncodedIndices:
        """Ship the indices verbatim as little-endian 32-bit integers."""

        values = _validate_indices(indices, universe)
        payload = values.astype("<u4").tobytes()
        return EncodedIndices(
            codec=self.name,
            payload=payload,
            bit_length=len(payload) * 8,
            count=values.size,
            universe=int(universe),
        )

    def decode(self, encoded: EncodedIndices) -> np.ndarray:
        """Read the 32-bit indices back (already sorted iff encoded sorted)."""

        if encoded.codec != self.name:
            raise CodecError(f"payload was encoded with {encoded.codec!r}, not {self.name!r}")
        return np.frombuffer(encoded.payload, dtype="<u4").astype(np.int64)


class EliasGammaIndexCodec(IndexCodec):
    """Delta + Elias gamma coding of sorted indices (the JWINS metadata codec)."""

    name = "elias-gamma"

    def encode(self, indices: np.ndarray, universe: int) -> EncodedIndices:
        """Sort, delta-encode and Elias-gamma code the index gaps."""

        values = _validate_indices(indices, universe)
        values = np.sort(values)
        if values.size and np.any(np.diff(values) == 0):
            raise CodecError("duplicate indices cannot be delta-encoded")
        # Gaps are >= 1 after sorting unique indices; shift the first index by
        # one so that every encoded integer is positive as gamma requires.
        gaps = np.diff(values, prepend=-1)
        payload, bit_length, count = elias_gamma_encode(gaps)
        return EncodedIndices(
            codec=self.name,
            payload=payload,
            bit_length=bit_length,
            count=count,
            universe=int(universe),
        )

    def decode(self, encoded: EncodedIndices) -> np.ndarray:
        """Invert :meth:`encode`: decode the gaps and integrate them back."""

        if encoded.codec != self.name:
            raise CodecError(f"payload was encoded with {encoded.codec!r}, not {self.name!r}")
        gaps = elias_gamma_decode_array(encoded.payload, encoded.bit_length, encoded.count)
        values = np.cumsum(gaps) - 1
        if values.size and (values[0] < 0 or values[-1] >= encoded.universe):
            raise CodecError("decoded indices fall outside the declared universe")
        return values


def random_indices_from_seed(seed: int, count: int, universe: int) -> np.ndarray:
    """The shared-seed index set used by random-sampling sparsification."""

    if count > universe:
        raise CodecError(f"cannot draw {count} distinct indices from a universe of {universe}")
    rng = np.random.default_rng(int(seed) & 0xFFFFFFFF)
    return np.sort(rng.choice(universe, size=count, replace=False)).astype(np.int64)


class SeedIndexCodec(IndexCodec):
    """Transmit only the pseudo-random seed instead of the index list."""

    name = "seed"

    def __init__(self, seed: int) -> None:
        self.seed = int(seed)

    def encode(self, indices: np.ndarray, universe: int) -> EncodedIndices:
        """Encode by validating the set matches the seed; ships only the seed."""

        values = _validate_indices(indices, universe)
        expected = random_indices_from_seed(self.seed, values.size, universe)
        if not np.array_equal(np.sort(values), expected):
            raise CodecError(
                "SeedIndexCodec can only encode the exact index set generated from its seed"
            )
        return EncodedIndices(
            codec=self.name,
            payload=b"",
            bit_length=0,
            count=values.size,
            universe=int(universe),
            extra=(self.seed & 0xFFFFFFFF,),
        )

    def decode(self, encoded: EncodedIndices) -> np.ndarray:
        """Regenerate the index set from the transmitted seed and count."""

        if encoded.codec != self.name:
            raise CodecError(f"payload was encoded with {encoded.codec!r}, not {self.name!r}")
        if not encoded.extra:
            raise CodecError("seed-coded indices are missing the seed")
        return random_indices_from_seed(encoded.extra[0], encoded.count, encoded.universe)


def _validate_indices(indices: np.ndarray, universe: int) -> np.ndarray:
    values = np.asarray(indices, dtype=np.int64).ravel()
    if universe <= 0:
        raise CodecError("universe must be positive")
    if values.size and (values.min() < 0 or values.max() >= universe):
        raise CodecError("indices must lie in [0, universe)")
    if np.unique(values).size != values.size:
        raise CodecError("indices must be distinct")
    return values
