"""Compression substrate: bit streams, Elias gamma, index codecs and float codecs."""

from repro.compression.bitstream import BitReader, BitWriter
from repro.compression.elias import elias_gamma_decode, elias_gamma_encode, gamma_code_length
from repro.compression.float_codec import (
    CompressedFloats,
    DeflateFloatCodec,
    Float16Codec,
    FloatCodec,
    LzmaFloatCodec,
    RawFloatCodec,
)
from repro.compression.quantization import QsgdQuantizer, QuantizedVector
from repro.compression.indices import (
    EliasGammaIndexCodec,
    EncodedIndices,
    IndexCodec,
    RawIndexCodec,
    SeedIndexCodec,
    random_indices_from_seed,
)
from repro.compression.sizing import (
    BYTES_PER_FLOAT32,
    BYTES_PER_INT32,
    GIB,
    KIB,
    MESSAGE_HEADER_BYTES,
    MIB,
    PayloadSize,
    format_bytes,
)

__all__ = [
    "BitReader",
    "BitWriter",
    "elias_gamma_decode",
    "elias_gamma_encode",
    "gamma_code_length",
    "CompressedFloats",
    "DeflateFloatCodec",
    "Float16Codec",
    "FloatCodec",
    "LzmaFloatCodec",
    "RawFloatCodec",
    "QsgdQuantizer",
    "QuantizedVector",
    "EliasGammaIndexCodec",
    "EncodedIndices",
    "IndexCodec",
    "RawIndexCodec",
    "SeedIndexCodec",
    "random_indices_from_seed",
    "BYTES_PER_FLOAT32",
    "BYTES_PER_INT32",
    "GIB",
    "KIB",
    "MESSAGE_HEADER_BYTES",
    "MIB",
    "PayloadSize",
    "format_bytes",
]
