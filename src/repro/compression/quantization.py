"""Stochastic quantization (QSGD-style).

The paper's background section distinguishes two families of ML compression:
sparsification (what JWINS does) and quantization, which represents each float
with a small number of bits.  This module implements the QSGD quantizer
(Alistarh et al., NeurIPS 2017): values are normalized by the vector's L2 norm
and rounded stochastically to one of ``2^bits - 1`` levels, which keeps the
quantizer unbiased.  It backs the :class:`~repro.baselines.quantized.QuantizedSharingScheme`
baseline and the codec-comparison benchmarks.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.exceptions import CodecError

__all__ = ["QuantizedVector", "QsgdQuantizer"]


@dataclass(frozen=True)
class QuantizedVector:
    """A QSGD-quantized vector: norm, signs and integer levels."""

    norm: float
    signs: np.ndarray
    levels: np.ndarray
    bits: int
    size: int

    @property
    def size_bytes(self) -> int:
        """Wire size: norm (4 bytes) + one sign bit and ``bits`` level bits per value."""

        payload_bits = self.size * (1 + self.bits)
        return 4 + (payload_bits + 7) // 8


class QsgdQuantizer:
    """Unbiased stochastic quantizer with ``2^bits - 1`` positive levels."""

    def __init__(self, bits: int = 4, rng: np.random.Generator | None = None) -> None:
        if not 1 <= bits <= 16:
            raise CodecError("bits must be between 1 and 16")
        self.bits = int(bits)
        self.levels = (1 << self.bits) - 1
        self._rng = rng if rng is not None else np.random.default_rng(0)

    def quantize(self, values: np.ndarray) -> QuantizedVector:
        """Quantize ``values``; the expectation of dequantize(quantize(x)) is x."""

        data = np.asarray(values, dtype=np.float64).ravel()
        norm = float(np.linalg.norm(data))
        if norm == 0.0:
            return QuantizedVector(
                norm=0.0,
                signs=np.zeros(data.size, dtype=np.int8),
                levels=np.zeros(data.size, dtype=np.int32),
                bits=self.bits,
                size=data.size,
            )
        scaled = np.abs(data) / norm * self.levels
        floor = np.floor(scaled)
        probability_up = scaled - floor
        rounded = floor + (self._rng.random(data.size) < probability_up)
        return QuantizedVector(
            norm=norm,
            signs=np.sign(data).astype(np.int8),
            levels=rounded.astype(np.int32),
            bits=self.bits,
            size=data.size,
        )

    def dequantize(self, quantized: QuantizedVector) -> np.ndarray:
        """Reconstruct the (lossy) float vector from its quantized form."""

        if quantized.bits != self.bits:
            raise CodecError(
                f"vector was quantized with {quantized.bits} bits, quantizer uses {self.bits}"
            )
        if quantized.size == 0:
            return np.zeros(0, dtype=np.float64)
        levels = (1 << quantized.bits) - 1
        return quantized.norm * quantized.signs * quantized.levels / levels
