"""Stochastic quantization (QSGD-style).

The paper's background section distinguishes two families of ML compression:
sparsification (what JWINS does) and quantization, which represents each float
with a small number of bits.  This module implements the QSGD quantizer
(Alistarh et al., NeurIPS 2017): values are normalized by the vector's L2 norm
and rounded stochastically to one of ``2^bits - 1`` levels, which keeps the
quantizer unbiased.  It backs the :class:`~repro.baselines.quantized.QuantizedSharingScheme`
baseline and the codec-comparison benchmarks.

The wire form a :class:`QuantizedVector` ships in (``norm`` header + one sign
bit and ``bits`` level bits per value) is realized by
:func:`pack_quantized`/:func:`unpack_quantized`, vectorized through
:func:`~repro.compression.bitstream.pack_bitfields`; the bit-serial
:func:`pack_quantized_reference`/:func:`unpack_quantized_reference` pair is
the byte-identical ground truth the equivalence tests compare against.
"""

from __future__ import annotations

import struct
from dataclasses import dataclass

import numpy as np

from repro.compression.bitstream import BitReader, BitWriter, pack_bitfields, unpack_bits
from repro.exceptions import CodecError

__all__ = [
    "QuantizedVector",
    "QsgdQuantizer",
    "pack_quantized",
    "pack_quantized_reference",
    "unpack_quantized",
    "unpack_quantized_reference",
]


@dataclass(frozen=True)
class QuantizedVector:
    """A QSGD-quantized vector: norm, signs and integer levels."""

    norm: float
    signs: np.ndarray
    levels: np.ndarray
    bits: int
    size: int

    @property
    def size_bytes(self) -> int:
        """Wire size: norm (4 bytes) + one sign bit and ``bits`` level bits per value."""

        payload_bits = self.size * (1 + self.bits)
        return 4 + (payload_bits + 7) // 8


class QsgdQuantizer:
    """Unbiased stochastic quantizer with ``2^bits - 1`` positive levels."""

    def __init__(self, bits: int = 4, rng: np.random.Generator | None = None) -> None:
        if not 1 <= bits <= 16:
            raise CodecError("bits must be between 1 and 16")
        self.bits = int(bits)
        self.levels = (1 << self.bits) - 1
        self._rng = rng if rng is not None else np.random.default_rng(0)

    @property
    def rng_state(self) -> dict:
        """The stochastic-rounding stream's exact state (for checkpointing)."""

        return self._rng.bit_generator.state

    @rng_state.setter
    def rng_state(self, state: dict) -> None:
        self._rng.bit_generator.state = dict(state)

    def state_dict(self) -> dict:
        """Snapshot the quantizer's mutable state (the rounding RNG stream)."""

        return {"rng_state": self.rng_state}

    def load_state_dict(self, state: dict) -> None:
        """Restore state captured by :meth:`state_dict`."""

        self.rng_state = state["rng_state"]

    def quantize(self, values: np.ndarray) -> QuantizedVector:
        """Quantize ``values``; the expectation of dequantize(quantize(x)) is x."""

        data = np.asarray(values, dtype=np.float64).ravel()
        norm = float(np.linalg.norm(data))
        if norm == 0.0:
            return QuantizedVector(
                norm=0.0,
                signs=np.zeros(data.size, dtype=np.int8),
                levels=np.zeros(data.size, dtype=np.int32),
                bits=self.bits,
                size=data.size,
            )
        scaled = np.abs(data) / norm * self.levels
        floor = np.floor(scaled)
        probability_up = scaled - floor
        rounded = floor + (self._rng.random(data.size) < probability_up)
        return QuantizedVector(
            norm=norm,
            signs=np.sign(data).astype(np.int8),
            levels=rounded.astype(np.int32),
            bits=self.bits,
            size=data.size,
        )

    def dequantize(self, quantized: QuantizedVector) -> np.ndarray:
        """Reconstruct the (lossy) float vector from its quantized form."""

        if quantized.bits != self.bits:
            raise CodecError(
                f"vector was quantized with {quantized.bits} bits, quantizer uses {self.bits}"
            )
        if quantized.size == 0:
            return np.zeros(0, dtype=np.float64)
        levels = (1 << quantized.bits) - 1
        return quantized.norm * quantized.signs * quantized.levels / levels


# -- wire (de)serialization -------------------------------------------------------------
#
# Layout: 4-byte little-endian float32 norm, then for each value one sign bit
# (1 = negative) followed by ``bits`` level bits, MSB first, final byte
# zero-padded.  This is exactly the :attr:`QuantizedVector.size_bytes`
# accounting the byte meter reports.


def pack_quantized(quantized: QuantizedVector) -> bytes:
    """Serialize a :class:`QuantizedVector` to its wire bytes (vectorized).

    Byte-identical to :func:`pack_quantized_reference`.  Zero values carry a
    zero sign bit (their sign never influences dequantization), so packing is
    deterministic regardless of how ``np.sign`` labelled them.
    """

    signs = np.asarray(quantized.signs, dtype=np.int64)
    levels = np.asarray(quantized.levels, dtype=np.int64)
    if signs.size != quantized.size or levels.size != quantized.size:
        raise CodecError("QuantizedVector signs/levels do not match its size")
    if np.any(levels >> quantized.bits != 0) or np.any(levels < 0):
        raise CodecError(f"levels do not fit in {quantized.bits} bits")
    header = struct.pack("<f", quantized.norm)
    if quantized.size == 0:
        return header
    # Interleave [sign, level, sign, level, ...] as alternating 1- and
    # ``bits``-wide fields and pack the whole stream in one shot.
    fields = np.empty(2 * quantized.size, dtype=np.int64)
    fields[0::2] = (signs < 0).astype(np.int64)
    fields[1::2] = levels
    widths = np.empty(2 * quantized.size, dtype=np.int64)
    widths[0::2] = 1
    widths[1::2] = quantized.bits
    payload, _ = pack_bitfields(fields, widths)
    return header + payload


def pack_quantized_reference(quantized: QuantizedVector) -> bytes:
    """Bit-serial reference serializer (ground truth for :func:`pack_quantized`)."""

    writer = BitWriter()
    for sign, level in zip(quantized.signs, quantized.levels):
        writer.write_bit(1 if sign < 0 else 0)
        writer.write_bits(int(level), quantized.bits)
    return struct.pack("<f", quantized.norm) + writer.getvalue()


def unpack_quantized(payload: bytes, bits: int, size: int) -> QuantizedVector:
    """Rebuild a :class:`QuantizedVector` from its wire bytes (vectorized).

    ``bits`` and ``size`` travel out of band (the byte meter already accounts
    for them in the framing header).  Restored signs are ``±1``; a packed zero
    value therefore comes back with sign ``+1`` instead of ``0``, which leaves
    ``signs * levels`` — all dequantization uses — unchanged.
    """

    if not 1 <= bits <= 16:
        raise CodecError("bits must be between 1 and 16")
    if size < 0:
        raise CodecError("size must be non-negative")
    if len(payload) < 4:
        raise CodecError("quantized payload is missing its norm header")
    (norm,) = struct.unpack("<f", payload[:4])
    stream = unpack_bits(payload[4:], size * (1 + bits))
    matrix = stream.reshape(size, 1 + bits).astype(np.int64)
    signs = np.where(matrix[:, 0] == 1, -1, 1).astype(np.int8)
    weights = np.int64(1) << np.arange(bits - 1, -1, -1, dtype=np.int64)
    levels = (matrix[:, 1:] * weights).sum(axis=1).astype(np.int32)
    return QuantizedVector(norm=float(norm), signs=signs, levels=levels, bits=bits, size=size)


def unpack_quantized_reference(payload: bytes, bits: int, size: int) -> QuantizedVector:
    """Bit-serial reference deserializer (ground truth for :func:`unpack_quantized`)."""

    if len(payload) < 4:
        raise CodecError("quantized payload is missing its norm header")
    (norm,) = struct.unpack("<f", payload[:4])
    reader = BitReader(payload[4:], size * (1 + bits))
    signs = np.empty(size, dtype=np.int8)
    levels = np.empty(size, dtype=np.int32)
    for i in range(size):
        signs[i] = -1 if reader.read_bit() else 1
        levels[i] = reader.read_bits(bits)
    return QuantizedVector(norm=float(norm), signs=signs, levels=levels, bits=bits, size=size)
