"""Elias gamma coding of positive integers.

The paper compresses the sparsification metadata (the list of selected
coefficient indices) by Elias-gamma coding the difference array of sorted
indices, the same trick used by QSGD.  Elias gamma represents a positive
integer ``n`` as ``floor(log2 n)`` zero bits followed by the binary expansion
of ``n``; small gaps therefore cost very few bits.

Two implementations are provided with byte-identical output:

* :func:`elias_gamma_encode_reference`/:func:`elias_gamma_decode_reference` —
  the original bit-serial code built on :class:`~repro.compression.bitstream.BitWriter`;
  the ground truth the equivalence tests compare against.
* :func:`elias_gamma_encode`/:func:`elias_gamma_decode` — the vectorized hot
  path.  Encoding computes every code length at once with a branch-free
  bit-smearing popcount and materializes the bitstream through
  :func:`~repro.compression.bitstream.pack_bitfields`; decoding finds each
  code's unary terminator with a vectorized leading-one scan and enumerates
  the code boundaries by pointer doubling instead of walking bit by bit.

Values at or above ``2**32`` (codes wider than 63 bits, beyond numpy's int64
shift range) are transparently routed to the reference implementation, so the
public functions are exact for the full positive int64 range.
"""

from __future__ import annotations

from typing import Iterable, Sequence

import numpy as np

from repro.compression.bitstream import BitReader, BitWriter, pack_bitfields, unpack_bits
from repro.exceptions import CodecError

__all__ = [
    "elias_gamma_decode",
    "elias_gamma_decode_array",
    "elias_gamma_decode_reference",
    "elias_gamma_encode",
    "elias_gamma_encode_reference",
    "gamma_code_length",
]

#: Largest value whose gamma code fits the vectorized int64 kernels
#: (bit_length 32 -> code width 63).
_MAX_FAST_VALUE = (1 << 32) - 1


def gamma_code_length(value: int) -> int:
    """Number of bits Elias gamma uses for ``value`` (must be >= 1)."""

    if value < 1:
        raise CodecError(f"Elias gamma requires positive integers, got {value}")
    return 2 * int(value).bit_length() - 1


def _encode_single(writer: BitWriter, value: int) -> None:
    if value < 1:
        raise CodecError(f"Elias gamma requires positive integers, got {value}")
    bits = int(value).bit_length()
    writer.write_unary(bits - 1)
    # The leading one bit acted as the unary terminator; emit the remainder.
    writer.write_bits(value - (1 << (bits - 1)), bits - 1)


def elias_gamma_encode_reference(
    values: Iterable[int] | Sequence[int] | np.ndarray,
) -> tuple[bytes, int, int]:
    """Bit-serial reference encoder (the original implementation).

    Same contract as :func:`elias_gamma_encode`; kept as the ground truth the
    vectorized encoder is compared against byte-for-byte.
    """

    writer = BitWriter()
    count = 0
    for value in np.asarray(list(values), dtype=np.int64):
        _encode_single(writer, int(value))
        count += 1
    return writer.getvalue(), writer.bit_length, count


def elias_gamma_decode_reference(payload: bytes, bit_length: int, count: int) -> list[int]:
    """Bit-serial reference decoder (the original implementation)."""

    reader = BitReader(payload, bit_length)
    values: list[int] = []
    for _ in range(count):
        zeros = reader.read_unary()
        remainder = reader.read_bits(zeros)
        values.append((1 << zeros) | remainder)
    if reader.remaining:
        raise CodecError(f"{reader.remaining} unread bits left after decoding {count} values")
    return values


def _bit_lengths(values: np.ndarray) -> np.ndarray:
    """Exact ``int.bit_length()`` of each positive int64, vectorized.

    Smears the leading one bit rightwards so the word becomes ``2**L - 1``,
    then counts the ones with a SWAR popcount — no floats involved, so the
    result is exact over the whole int64 range (unlike ``np.log2``).
    """

    x = values.astype(np.uint64)
    for shift in (1, 2, 4, 8, 16, 32):
        x |= x >> np.uint64(shift)
    m1 = np.uint64(0x5555555555555555)
    m2 = np.uint64(0x3333333333333333)
    m4 = np.uint64(0x0F0F0F0F0F0F0F0F)
    h01 = np.uint64(0x0101010101010101)
    x = x - ((x >> np.uint64(1)) & m1)
    x = (x & m2) + ((x >> np.uint64(2)) & m2)
    x = (x + (x >> np.uint64(4))) & m4
    return ((x * h01) >> np.uint64(56)).astype(np.int64)


def elias_gamma_encode(values: Iterable[int] | Sequence[int] | np.ndarray) -> tuple[bytes, int, int]:
    """Encode a sequence of positive integers.

    Returns ``(payload, bit_length, count)``; ``bit_length`` is required for an
    exact decode and ``count`` is the number of encoded integers.  The payload
    is byte-identical to :func:`elias_gamma_encode_reference`.
    """

    if isinstance(values, np.ndarray):
        data = np.asarray(values, dtype=np.int64).ravel()
    else:
        data = np.asarray(list(values), dtype=np.int64).ravel()
    if data.size == 0:
        return b"", 0, 0
    if np.any(data < 1):
        bad = int(data[data < 1][0])
        raise CodecError(f"Elias gamma requires positive integers, got {bad}")
    if int(data.max()) > _MAX_FAST_VALUE:
        return elias_gamma_encode_reference(data)
    lengths = _bit_lengths(data)
    # gamma(v) is v right-aligned in a field of 2L-1 bits: the L-1 leading
    # zeros double as the unary prefix and v's own leading one terminates it.
    payload, bit_length = pack_bitfields(data, 2 * lengths - 1)
    return payload, bit_length, int(data.size)


def elias_gamma_decode_array(payload: bytes, bit_length: int, count: int) -> np.ndarray:
    """Decode ``count`` integers from an Elias-gamma ``payload`` as an int64 array.

    The vectorized fast path of :func:`elias_gamma_decode` (which only adds a
    list conversion); callers on the hot path use this form directly.
    """

    if count < 0:
        raise CodecError("count must be non-negative")
    bits = unpack_bits(payload, bit_length)
    if count == 0:
        if bit_length:
            raise CodecError(f"{bit_length} unread bits left after decoding 0 values")
        return np.zeros(0, dtype=np.int64)

    total = int(bit_length)
    # next_one[i] = position of the first set bit at or after i (the unary
    # terminator of a code starting at i); `total` when there is none.
    # A reverse running minimum over own-position-if-set computes it in O(n).
    # (Index arrays stay int64: numpy re-casts narrower index dtypes to intp
    # on every fancy-indexing gather, which costs more than the bandwidth.)
    positions = np.arange(total)
    own = np.where(bits.astype(bool), positions, total)
    next_one = np.minimum.accumulate(own[::-1])[::-1]

    # A code starting at s has z = next_one[s] - s unary zeros and ends at
    # step(s) = next_one[s] + z + 1 = 2*next_one[s] - s + 1, where the next
    # code begins.  Iterating `step` from 0 yields every code boundary; the
    # orbit is enumerated in O(log count) vectorized gathers by pointer
    # doubling.  Sentinels: `total` = stream exhausted, `total + 1` = the code
    # overran the end of the stream.
    step = 2 * next_one - positions + 1
    step = np.where(step > total, total + 1, step)
    jump = np.concatenate([step, [total, total + 1]])

    starts = np.zeros(1, dtype=np.int64)
    doubling = jump
    while starts.size < count:
        # Truncation only ever fires on the exit iteration, so every squaring
        # below still composes over a full power-of-two prefix of the orbit.
        starts = np.concatenate([starts, doubling[starts]])[:count]
        if starts.size < count:
            doubling = doubling[doubling]
    end = int(jump[starts[count - 1]])

    if np.any(starts >= total) or end > total:
        raise CodecError("attempted to read past the end of the bit stream")
    if end < total:
        raise CodecError(f"{total - end} unread bits left after decoding {count} values")

    terminators = next_one[starts]
    widths = terminators - starts + 1  # leading one + z payload bits
    if int(widths.max()) > 63:
        return np.asarray(
            elias_gamma_decode_reference(payload, bit_length, count), dtype=np.int64
        )
    # Gather each code's value bits (terminator one included) and fold them
    # MSB-first with grouped shifted sums.
    bounds = np.concatenate([np.zeros(1, dtype=np.int64), np.cumsum(widths)[:-1]])
    positions = np.arange(int(widths.sum())) - np.repeat(bounds, widths)
    sources = np.repeat(terminators, widths) + positions
    shifts = np.repeat(widths, widths) - 1 - positions
    contributions = bits[sources].astype(np.int64) << shifts
    return np.add.reduceat(contributions, bounds)


def elias_gamma_decode(payload: bytes, bit_length: int, count: int) -> list[int]:
    """Decode ``count`` integers from an Elias-gamma ``payload``."""

    return elias_gamma_decode_array(payload, bit_length, count).tolist()
