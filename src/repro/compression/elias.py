"""Elias gamma coding of positive integers.

The paper compresses the sparsification metadata (the list of selected
coefficient indices) by Elias-gamma coding the difference array of sorted
indices, the same trick used by QSGD.  Elias gamma represents a positive
integer ``n`` as ``floor(log2 n)`` zero bits followed by the binary expansion
of ``n``; small gaps therefore cost very few bits.
"""

from __future__ import annotations

from typing import Iterable, Sequence

import numpy as np

from repro.compression.bitstream import BitReader, BitWriter
from repro.exceptions import CodecError

__all__ = [
    "elias_gamma_decode",
    "elias_gamma_encode",
    "gamma_code_length",
]


def gamma_code_length(value: int) -> int:
    """Number of bits Elias gamma uses for ``value`` (must be >= 1)."""

    if value < 1:
        raise CodecError(f"Elias gamma requires positive integers, got {value}")
    return 2 * int(value).bit_length() - 1


def _encode_single(writer: BitWriter, value: int) -> None:
    if value < 1:
        raise CodecError(f"Elias gamma requires positive integers, got {value}")
    bits = int(value).bit_length()
    writer.write_unary(bits - 1)
    # The leading one bit acted as the unary terminator; emit the remainder.
    writer.write_bits(value - (1 << (bits - 1)), bits - 1)


def elias_gamma_encode(values: Iterable[int] | Sequence[int] | np.ndarray) -> tuple[bytes, int, int]:
    """Encode a sequence of positive integers.

    Returns ``(payload, bit_length, count)``; ``bit_length`` is required for an
    exact decode and ``count`` is the number of encoded integers.
    """

    writer = BitWriter()
    count = 0
    for value in np.asarray(list(values), dtype=np.int64):
        _encode_single(writer, int(value))
        count += 1
    return writer.getvalue(), writer.bit_length, count


def elias_gamma_decode(payload: bytes, bit_length: int, count: int) -> list[int]:
    """Decode ``count`` integers from an Elias-gamma ``payload``."""

    reader = BitReader(payload, bit_length)
    values: list[int] = []
    for _ in range(count):
        zeros = reader.read_unary()
        remainder = reader.read_bits(zeros)
        values.append((1 << zeros) | remainder)
    if reader.remaining:
        raise CodecError(f"{reader.remaining} unread bits left after decoding {count} values")
    return values
