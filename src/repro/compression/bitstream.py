"""Minimal bit-level I/O used by the entropy coders.

The Elias-gamma metadata codec (Section III-C of the paper) operates on a bit
granularity; this module provides a writer that packs bits into ``bytes`` and
a reader that consumes them again.  Bits are stored most-significant first
within each byte, and the writer records the exact number of valid bits so the
reader never interprets padding.

Two interchangeable implementations live here:

* :class:`BitWriter`/:class:`BitReader` — the scalar, one-bit-at-a-time
  reference.  Easy to audit, and the ground truth the vectorized paths are
  pinned against byte-for-byte.
* :func:`pack_bitfields`/:func:`unpack_bits` — the vectorized bulk operations
  the hot path uses: an entire sequence of MSB-first bit fields is materialized
  into a ``uint8`` array with numpy shifts and packed with ``np.packbits``
  (whose big-endian bit order and zero-padded final byte match
  :meth:`BitWriter.getvalue` exactly).
"""

from __future__ import annotations

import numpy as np

from repro.exceptions import CodecError

__all__ = ["BitReader", "BitWriter", "pack_bitfields", "unpack_bits"]


class BitWriter:
    """Accumulates individual bits and unsigned integers into a byte string."""

    def __init__(self) -> None:
        self._buffer = bytearray()
        self._current = 0
        self._filled = 0
        self._bit_count = 0

    def write_bit(self, bit: int) -> None:
        """Append a single bit (0 or 1)."""

        if bit not in (0, 1):
            raise CodecError(f"bit must be 0 or 1, got {bit!r}")
        self._current = (self._current << 1) | bit
        self._filled += 1
        self._bit_count += 1
        if self._filled == 8:
            self._buffer.append(self._current)
            self._current = 0
            self._filled = 0

    def write_bits(self, value: int, width: int) -> None:
        """Append ``width`` bits of ``value``, most significant bit first."""

        if width < 0:
            raise CodecError("width must be non-negative")
        if value < 0 or (width < 64 and value >= (1 << width)):
            raise CodecError(f"value {value} does not fit in {width} bits")
        for position in range(width - 1, -1, -1):
            self.write_bit((value >> position) & 1)

    def write_unary(self, count: int) -> None:
        """Append ``count`` zero bits followed by a one bit."""

        if count < 0:
            raise CodecError("unary count must be non-negative")
        for _ in range(count):
            self.write_bit(0)
        self.write_bit(1)

    @property
    def bit_length(self) -> int:
        """Number of bits written so far."""

        return self._bit_count

    def getvalue(self) -> bytes:
        """Return the packed bytes (the final byte is zero-padded)."""

        data = bytes(self._buffer)
        if self._filled:
            data += bytes([self._current << (8 - self._filled)])
        return data


class BitReader:
    """Reads bits previously produced by :class:`BitWriter`."""

    def __init__(self, data: bytes, bit_length: int | None = None) -> None:
        self._data = bytes(data)
        self._bit_length = len(self._data) * 8 if bit_length is None else int(bit_length)
        if self._bit_length > len(self._data) * 8:
            raise CodecError("bit_length exceeds the available data")
        self._position = 0

    @property
    def remaining(self) -> int:
        """Number of unread bits."""

        return self._bit_length - self._position

    def read_bit(self) -> int:
        """Read the next bit (0 or 1)."""

        if self._position >= self._bit_length:
            raise CodecError("attempted to read past the end of the bit stream")
        byte = self._data[self._position // 8]
        bit = (byte >> (7 - self._position % 8)) & 1
        self._position += 1
        return bit

    def read_bits(self, width: int) -> int:
        """Read ``width`` bits as an unsigned integer (MSB first)."""

        value = 0
        for _ in range(width):
            value = (value << 1) | self.read_bit()
        return value

    def read_unary(self) -> int:
        """Read a unary-coded count (number of zeros before the next one)."""

        count = 0
        while self.read_bit() == 0:
            count += 1
        return count


# -- vectorized bulk operations ---------------------------------------------------------

#: Widest bit field :func:`pack_bitfields` accepts; numpy's int64 shifts are
#: undefined beyond 63 positions, so wider fields must go through the scalar
#: :class:`BitWriter` instead.
MAX_FIELD_BITS = 63


def pack_bitfields(values: np.ndarray, widths: np.ndarray) -> tuple[bytes, int]:
    """Pack ``values[i]`` into ``widths[i]`` MSB-first bits, all at once.

    The output is byte-for-byte identical to a :class:`BitWriter` receiving the
    same ``write_bits(value, width)`` calls in order: fields are concatenated
    most-significant-bit first and the final byte is zero-padded.  Returns
    ``(payload, bit_length)``.

    Raises :class:`~repro.exceptions.CodecError` if any value is negative or
    does not fit in its declared width, or if a width exceeds
    :data:`MAX_FIELD_BITS` (the int64 shift limit of the vectorized kernel).
    """

    values = np.asarray(values, dtype=np.int64).ravel()
    widths = np.asarray(widths, dtype=np.int64).ravel()
    if values.size != widths.size:
        raise CodecError(
            f"got {values.size} values but {widths.size} widths"
        )
    if values.size == 0:
        return b"", 0
    if np.any(widths < 0):
        raise CodecError("width must be non-negative")
    if np.any(widths > MAX_FIELD_BITS):
        raise CodecError(
            f"pack_bitfields supports fields up to {MAX_FIELD_BITS} bits; "
            "use BitWriter for wider fields"
        )
    # A value fits its width iff shifting the width away leaves nothing
    # (width 0 therefore only admits the value 0, as write_bits does).
    if np.any(values < 0) or np.any(values >> np.minimum(widths, 63) != 0):
        bad = int(np.flatnonzero((values < 0) | (values >> np.minimum(widths, 63) != 0))[0])
        raise CodecError(
            f"value {int(values[bad])} does not fit in {int(widths[bad])} bits"
        )

    offsets = np.concatenate([np.zeros(1, dtype=np.int64), np.cumsum(widths)])
    total_bits = int(offsets[-1])
    if total_bits == 0:
        return b"", 0
    # One row per output bit: which field it belongs to and the shift that
    # isolates it, MSB first within the field.
    field_of_bit = np.repeat(np.arange(values.size), widths)
    bit_in_field = np.arange(total_bits) - np.repeat(offsets[:-1], widths)
    shifts = np.repeat(widths, widths) - 1 - bit_in_field
    bits = ((values[field_of_bit] >> shifts) & 1).astype(np.uint8)
    return np.packbits(bits).tobytes(), total_bits


def unpack_bits(payload: bytes, bit_length: int) -> np.ndarray:
    """The first ``bit_length`` bits of ``payload`` as a ``uint8`` 0/1 array.

    MSB-first within each byte, matching :class:`BitReader`.  Raises
    :class:`~repro.exceptions.CodecError` when ``bit_length`` exceeds the
    available data, like the :class:`BitReader` constructor does.
    """

    if bit_length < 0:
        raise CodecError("bit_length must be non-negative")
    data = np.frombuffer(payload, dtype=np.uint8)
    if bit_length > data.size * 8:
        raise CodecError("bit_length exceeds the available data")
    return np.unpackbits(data, count=bit_length) if bit_length else np.zeros(0, np.uint8)
