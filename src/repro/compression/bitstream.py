"""Minimal bit-level I/O used by the entropy coders.

The Elias-gamma metadata codec (Section III-C of the paper) operates on a bit
granularity; this module provides a writer that packs bits into ``bytes`` and
a reader that consumes them again.  Bits are stored most-significant first
within each byte, and the writer records the exact number of valid bits so the
reader never interprets padding.
"""

from __future__ import annotations

from repro.exceptions import CodecError

__all__ = ["BitReader", "BitWriter"]


class BitWriter:
    """Accumulates individual bits and unsigned integers into a byte string."""

    def __init__(self) -> None:
        self._buffer = bytearray()
        self._current = 0
        self._filled = 0
        self._bit_count = 0

    def write_bit(self, bit: int) -> None:
        """Append a single bit (0 or 1)."""

        if bit not in (0, 1):
            raise CodecError(f"bit must be 0 or 1, got {bit!r}")
        self._current = (self._current << 1) | bit
        self._filled += 1
        self._bit_count += 1
        if self._filled == 8:
            self._buffer.append(self._current)
            self._current = 0
            self._filled = 0

    def write_bits(self, value: int, width: int) -> None:
        """Append ``width`` bits of ``value``, most significant bit first."""

        if width < 0:
            raise CodecError("width must be non-negative")
        if value < 0 or (width < 64 and value >= (1 << width)):
            raise CodecError(f"value {value} does not fit in {width} bits")
        for position in range(width - 1, -1, -1):
            self.write_bit((value >> position) & 1)

    def write_unary(self, count: int) -> None:
        """Append ``count`` zero bits followed by a one bit."""

        if count < 0:
            raise CodecError("unary count must be non-negative")
        for _ in range(count):
            self.write_bit(0)
        self.write_bit(1)

    @property
    def bit_length(self) -> int:
        """Number of bits written so far."""

        return self._bit_count

    def getvalue(self) -> bytes:
        """Return the packed bytes (the final byte is zero-padded)."""

        data = bytes(self._buffer)
        if self._filled:
            data += bytes([self._current << (8 - self._filled)])
        return data


class BitReader:
    """Reads bits previously produced by :class:`BitWriter`."""

    def __init__(self, data: bytes, bit_length: int | None = None) -> None:
        self._data = bytes(data)
        self._bit_length = len(self._data) * 8 if bit_length is None else int(bit_length)
        if self._bit_length > len(self._data) * 8:
            raise CodecError("bit_length exceeds the available data")
        self._position = 0

    @property
    def remaining(self) -> int:
        """Number of unread bits."""

        return self._bit_length - self._position

    def read_bit(self) -> int:
        if self._position >= self._bit_length:
            raise CodecError("attempted to read past the end of the bit stream")
        byte = self._data[self._position // 8]
        bit = (byte >> (7 - self._position % 8)) & 1
        self._position += 1
        return bit

    def read_bits(self, width: int) -> int:
        """Read ``width`` bits as an unsigned integer (MSB first)."""

        value = 0
        for _ in range(width):
            value = (value << 1) | self.read_bit()
        return value

    def read_unary(self) -> int:
        """Read a unary-coded count (number of zeros before the next one)."""

        count = 0
        while self.read_bit() == 0:
            count += 1
        return count
