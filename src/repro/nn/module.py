"""Module and parameter abstractions of the numpy neural-network substrate.

This replaces PyTorch in the original JWINS implementation.  Models are built
from :class:`Module` objects that implement an explicit ``forward``/``backward``
pair (reverse-mode differentiation without a tape), and expose their trainable
state as a list of :class:`Parameter` objects.  Decentralized learning treats
the model as a flat vector, so :func:`get_flat_parameters` /
:func:`set_flat_parameters` are the bridge every sharing scheme uses.
"""

from __future__ import annotations

from typing import Iterator

import numpy as np

from repro.exceptions import ModelError
from repro.utils.vectors import flatten_arrays, unflatten_vector

__all__ = [
    "Module",
    "Parameter",
    "Sequential",
    "get_flat_gradients",
    "get_flat_parameters",
    "set_flat_parameters",
]


class Parameter:
    """A trainable array and its accumulated gradient."""

    __slots__ = ("value", "grad", "name")

    def __init__(self, value: np.ndarray, name: str = "") -> None:
        self.value = np.asarray(value, dtype=np.float64)
        self.grad = np.zeros_like(self.value)
        self.name = name

    @property
    def shape(self) -> tuple[int, ...]:
        return tuple(self.value.shape)

    @property
    def size(self) -> int:
        return int(self.value.size)

    def zero_grad(self) -> None:
        self.grad.fill(0.0)

    def __repr__(self) -> str:  # pragma: no cover - debugging helper
        return f"Parameter(name={self.name!r}, shape={self.shape})"


class Module:
    """Base class of every layer and model.

    Subclasses register parameters and sub-modules as plain attributes; the
    recursive traversal in :meth:`parameters` and :meth:`modules` discovers
    them in attribute-definition order, which makes the flat parameter layout
    deterministic across nodes — a requirement for decentralized averaging.
    """

    def __init__(self) -> None:
        self.training = True

    # -- forward / backward -------------------------------------------------
    def forward(self, inputs: np.ndarray) -> np.ndarray:
        raise NotImplementedError

    def backward(self, grad_output: np.ndarray) -> np.ndarray:
        raise NotImplementedError

    def __call__(self, inputs: np.ndarray) -> np.ndarray:
        return self.forward(inputs)

    # -- traversal -----------------------------------------------------------
    def modules(self) -> Iterator["Module"]:
        """Yield this module and all sub-modules, depth-first."""

        yield self
        for value in vars(self).values():
            if isinstance(value, Module):
                yield from value.modules()
            elif isinstance(value, (list, tuple)):
                for item in value:
                    if isinstance(item, Module):
                        yield from item.modules()

    def parameters(self) -> list[Parameter]:
        """Return every trainable parameter in deterministic order."""

        found: list[Parameter] = []
        for module in self.modules():
            for value in vars(module).values():
                if isinstance(value, Parameter):
                    found.append(value)
                elif isinstance(value, (list, tuple)):
                    found.extend(item for item in value if isinstance(item, Parameter))
        return found

    # -- training-state helpers ----------------------------------------------
    def train(self) -> "Module":
        for module in self.modules():
            module.training = True
        return self

    def eval(self) -> "Module":
        for module in self.modules():
            module.training = False
        return self

    def zero_grad(self) -> None:
        for parameter in self.parameters():
            parameter.zero_grad()

    @property
    def num_parameters(self) -> int:
        """Total number of scalar parameters."""

        return int(sum(parameter.size for parameter in self.parameters()))

    def parameter_shapes(self) -> list[tuple[int, ...]]:
        return [parameter.shape for parameter in self.parameters()]


class Sequential(Module):
    """Compose modules by chaining their forward and backward passes."""

    def __init__(self, *layers: Module) -> None:
        super().__init__()
        self.layers = list(layers)

    def forward(self, inputs: np.ndarray) -> np.ndarray:
        output = inputs
        for layer in self.layers:
            output = layer.forward(output)
        return output

    def backward(self, grad_output: np.ndarray) -> np.ndarray:
        grad = grad_output
        for layer in reversed(self.layers):
            grad = layer.backward(grad)
        return grad


def get_flat_parameters(module: Module) -> np.ndarray:
    """Return all parameters of ``module`` as one flat float64 vector."""

    return flatten_arrays([parameter.value for parameter in module.parameters()])


def set_flat_parameters(module: Module, vector: np.ndarray) -> None:
    """Write ``vector`` back into the parameters of ``module`` (in place)."""

    parameters = module.parameters()
    shapes = [parameter.shape for parameter in parameters]
    try:
        arrays = unflatten_vector(vector, shapes)
    except ValueError as error:
        raise ModelError(str(error)) from error
    for parameter, array in zip(parameters, arrays):
        parameter.value[...] = array


def get_flat_gradients(module: Module) -> np.ndarray:
    """Return all accumulated gradients of ``module`` as one flat vector."""

    return flatten_arrays([parameter.grad for parameter in module.parameters()])
